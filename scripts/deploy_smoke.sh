#!/usr/bin/env bash
# deploy_smoke.sh <recraftd> <recraft-cli> [workdir]
#
# The real-process smoke test: boot a 3-node recraftd cluster on loopback,
# drive >=10k linearizable kv ops through it from closed-loop load clients,
# kill -9 the leader twice mid-load (the second one after it has rejoined
# from its WAL), and verify the full write history against a live read of
# every touched key via harness::KvHistoryChecker's replay.
#
# Exit 0 only if: every write was acked exactly-once (no CAS conflicts in
# the single-writer-per-key workload), the killed leader recovers from its
# data dir, and the final state matches the replayed history. Per-node logs
# land in the workdir and are dumped on failure (CI uploads them as
# artifacts).
set -u

RECRAFTD=${1:?usage: deploy_smoke.sh <recraftd> <recraft-cli> [workdir]}
CLI=${2:?usage: deploy_smoke.sh <recraftd> <recraft-cli> [workdir]}
WORK=${3:-$(mktemp -d -t deploy_smoke.XXXXXX)}

CLIENTS=4
OPS_PER_CLIENT=2500   # 4 x 2500 = 10k ops through the cluster

mkdir -p "$WORK"
BASE_PORT=$((17000 + RANDOM % 2000))
HOSTS="$WORK/hosts.txt"
: > "$HOSTS"
for i in 1 2 3; do
  echo "$i 127.0.0.1:$((BASE_PORT + i))" >> "$HOSTS"
  mkdir -p "$WORK/n$i"
done

declare -A DAEMON_PID

start_node() {
  local id=$1; shift
  "$RECRAFTD" --id "$id" --hosts "$HOSTS" --data "$WORK/n$id" "$@" \
    >> "$WORK/n$id.log" 2>&1 &
  DAEMON_PID[$id]=$!
  disown "$!"  # keep bash from reporting the cleanup kill -9
}

fail() {
  echo "deploy_smoke: FAIL: $*" >&2
  for i in 1 2 3; do
    echo "---- n$i.log (tail) ----" >&2
    tail -n 40 "$WORK/n$i.log" >&2 || true
  done
  echo "deploy_smoke: logs kept in $WORK" >&2
  cleanup_daemons
  exit 1
}

cleanup_daemons() {
  for pid in "${DAEMON_PID[@]}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup_daemons EXIT

leader() {
  "$CLI" --hosts "$HOSTS" leader 2>/dev/null
}

echo "deploy_smoke: workdir $WORK, ports $((BASE_PORT + 1))-$((BASE_PORT + 3))"
for i in 1 2 3; do
  start_node "$i" --cluster 1,2,3
done

# Wait for a leader to emerge.
LEADER=
for _ in $(seq 1 50); do
  LEADER=$(leader) && [ -n "$LEADER" ] && break
  sleep 0.2
done
[ -n "$LEADER" ] || fail "no leader elected"
echo "deploy_smoke: leader is n$LEADER"

# Load in the background; writes retry across the leader kills below, so
# the history is exactly the applied write set.
HISTORY="$WORK/history.txt"
"$CLI" --hosts "$HOSTS" load --clients "$CLIENTS" --ops "$OPS_PER_CLIENT" \
  --history "$HISTORY" > "$WORK/load.out" 2>&1 &
LOAD_PID=$!

kill_and_restart_leader() {
  local victim
  victim=$(leader) || victim=$LEADER
  [ -n "$victim" ] || victim=$LEADER
  echo "deploy_smoke: kill -9 leader n$victim mid-load"
  kill -9 "${DAEMON_PID[$victim]}" 2>/dev/null || true
  wait "${DAEMON_PID[$victim]}" 2>/dev/null || true
  sleep 1
  # Restart from the same data dir: no --cluster, boot is WAL recovery.
  RECOVERIES_BEFORE=$(grep -c "recovered from" "$WORK/n$victim.log" || true)
  start_node "$victim"
  LEADER=$victim
  # WAL replay takes a moment; wait for the recovery line before moving on
  # (also proves the rejoin actually happened before the next kill).
  for _ in $(seq 1 100); do
    NOW=$(grep -c "recovered from" "$WORK/n$victim.log" || true)
    [ "$NOW" -gt "$RECOVERIES_BEFORE" ] && return 0
    sleep 0.2
  done
  fail "restarted n$victim did not report WAL recovery"
}

sleep 2
kill_and_restart_leader
sleep 3
kill_and_restart_leader

wait "$LOAD_PID"
LOAD_RC=$?
cat "$WORK/load.out"
[ "$LOAD_RC" -eq 0 ] || fail "load exited $LOAD_RC (lost or double-applied writes?)"

# Every node must still be alive (the killed ones via their restarts).
for i in 1 2 3; do
  kill -0 "${DAEMON_PID[$i]}" 2>/dev/null || fail "n$i not running at end of load"
done

"$CLI" --hosts "$HOSTS" check --history "$HISTORY" || \
  fail "history check found divergence"

echo "deploy_smoke: PASS"
cleanup_daemons
trap - EXIT
rm -rf "$WORK"
exit 0
