// Deterministic trace replay + export.
//
// Re-runs the exact sweep world named by (--seed, --mix, --ticks) with the
// flight recorder armed — arming is pure observation, so the world is the
// same one a sweep (or a repro line) saw, digest and all — then:
//
//   * writes Chrome-trace / Perfetto JSON (--out, default trace-<seed>.json;
//     load it in ui.perfetto.dev or chrome://tracing, one track per node),
//   * prints a human-readable critical-path timeline for one client op:
//     the slowest completed op by default, or the one named by --op=<trace>.
//
//   trace --seed=1234 --mix=gray --ticks=200 --out=trace-1234.json
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "harness/sweep.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace {

bool ParseU64(const char* arg, const char* prefix, uint64_t* out) {
  size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  *out = std::strtoull(arg + n, nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using recraft::harness::RunSweepWorld;
  using recraft::harness::SweepOptions;

  SweepOptions opts;
  uint64_t seed = 1;
  uint64_t op_trace = 0;  // 0 = pick the slowest completed client op
  uint64_t capacity = recraft::obs::Recorder::kDefaultCapacity;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseU64(arg, "--seed=", &seed) ||
        ParseU64(arg, "--ticks=", &opts.chaos_ticks) ||
        ParseU64(arg, "--op=", &op_trace) ||
        ParseU64(arg, "--capacity=", &capacity)) {
      continue;
    }
    if (std::strncmp(arg, "--mix=", 6) == 0) {
      opts.mix = arg + 6;
      continue;
    }
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
      continue;
    }
    if (std::strcmp(arg, "--inject-divergence") == 0) {
      opts.inject_divergence = true;
      continue;
    }
    std::fprintf(stderr, "unknown argument: %s\n", arg);
    std::fprintf(stderr,
                 "usage: trace --seed=S [--mix=M] [--ticks=T] [--out=F]"
                 " [--op=TRACE_ID] [--capacity=N] [--inject-divergence]\n");
    return 2;
  }
  if (out_path.empty()) out_path = "trace-" + std::to_string(seed) + ".json";

  recraft::obs::Recorder recorder(static_cast<size_t>(capacity));
  opts.recorder = &recorder;
  auto v = RunSweepWorld(opts, seed);

  std::printf("world: seed=%llu mix=%s ticks=%llu digest=%016llx %s\n",
              static_cast<unsigned long long>(v.seed), v.mix.c_str(),
              static_cast<unsigned long long>(v.chaos_ticks),
              static_cast<unsigned long long>(v.digest),
              v.ok() ? "OK" : "FAIL");
  for (const auto& viol : v.violations) {
    std::printf("  violation: %s\n", viol.c_str());
  }

  auto records = recorder.Snapshot();
  std::printf("trace: %zu records (%llu emitted%s)\n", records.size(),
              static_cast<unsigned long long>(recorder.buffer().total()),
              recorder.buffer().wrapped() ? ", ring wrapped" : "");

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  recraft::obs::ExportChromeTrace(records, out);
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (op_trace == 0) op_trace = recraft::obs::SlowestClientOp(records);
  if (op_trace != 0) {
    std::printf("\ncritical path of client op trace=%llu:\n",
                static_cast<unsigned long long>(op_trace));
    recraft::obs::PrintCriticalPath(records, op_trace, std::cout);
  } else {
    std::printf("no completed client op inside the buffer window\n");
  }
  return v.ok() ? 0 : 1;
}
