// Parallel seeded chaos-sweep runner (see src/harness/sweep.h).
//
// Sweep mode (default): run seeds [first, first + N) across a thread pool,
// one world per thread; print a one-line repro for every failing world and
// exit nonzero if any failed:
//
//   sweep --seeds=2000 --mix=all --threads=8
//
// Repro mode: re-run exactly one world, single-threaded, in this process.
// The arguments are precisely the repro line a failing sweep printed
// (`--seed=S --mix=M --ticks=T digest=D`); the digest token, when present,
// is verified against the re-run so "same world" is checked, not assumed:
//
//   sweep --seed=1234 --mix=gray --ticks=200 digest=8f3a...
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/nemesis.h"
#include "harness/sweep.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace {

// At most this many failing seeds get the single-threaded traced re-run; a
// sweep where everything fails should not write hundreds of trace files.
constexpr size_t kMaxFailureTraces = 4;

bool ParseU64(const char* arg, const char* prefix, uint64_t* out) {
  size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  *out = std::strtoull(arg + n, nullptr, 10);
  return true;
}

void PrintVerdict(const recraft::harness::WorldVerdict& v) {
  std::printf("%s  seed=%llu mix=%s events=%llu ops=%llu activations=%llu\n",
              v.ok() ? "OK  " : "FAIL", static_cast<unsigned long long>(v.seed),
              v.mix.c_str(), static_cast<unsigned long long>(v.events),
              static_cast<unsigned long long>(v.client_ops),
              static_cast<unsigned long long>(v.nemesis_activations));
  for (const auto& viol : v.violations) {
    std::printf("  violation: %s\n", viol.c_str());
  }
  if (!v.ok()) std::printf("  repro: %s\n", v.ReproLine().c_str());
}

// Deterministic replay of a failing seed with the flight recorder armed:
// the digest is identical to the original run (the recorder is pure
// observation), so the exported trace shows the violating world itself.
// Returns the file it wrote, or "" on failure.
std::string WriteFailureTrace(const recraft::harness::SweepOptions& opts,
                              uint64_t seed) {
  recraft::obs::Recorder recorder;
  recraft::harness::SweepOptions traced = opts;
  traced.recorder = &recorder;
  auto v = recraft::harness::RunSweepWorld(traced, seed);
  (void)v;
  std::string path = "trace-" + std::to_string(seed) + ".json";
  std::ofstream out(path);
  if (!out) return "";
  recraft::obs::ExportChromeTrace(recorder.Snapshot(), out);
  return out ? path : "";
}

// Per-mix rollup across a sweep's verdicts: totals plus the median across
// worlds of each client-latency percentile.
void PrintStats(const recraft::harness::SweepOptions& opts,
                const std::vector<recraft::harness::WorldVerdict>& verdicts) {
  uint64_t ops = 0, events = 0, activations = 0;
  std::vector<recraft::Duration> p50s, p99s, p999s;
  for (const auto& v : verdicts) {
    ops += v.client_ops;
    events += v.events;
    activations += v.nemesis_activations;
    if (v.client_ops > 0) {
      p50s.push_back(v.lat_p50);
      p99s.push_back(v.lat_p99);
      p999s.push_back(v.lat_p999);
    }
  }
  auto median = [](std::vector<recraft::Duration>& xs) -> long long {
    if (xs.empty()) return 0;
    std::sort(xs.begin(), xs.end());
    return static_cast<long long>(xs[xs.size() / 2]);
  };
  std::printf("stats[mix=%s]: worlds=%zu client_ops=%llu events=%llu "
              "nemesis_activations=%llu\n",
              opts.mix.c_str(), verdicts.size(),
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(activations));
  std::printf("stats[mix=%s]: median-world client latency p50=%lldus "
              "p99=%lldus p999=%lldus\n",
              opts.mix.c_str(), median(p50s), median(p99s), median(p999s));
}

}  // namespace

int main(int argc, char** argv) {
  using recraft::harness::NemesisMix;
  using recraft::harness::RunSweep;
  using recraft::harness::RunSweepWorld;
  using recraft::harness::SweepOptions;

  SweepOptions opts;
  uint64_t first_seed = 1;
  uint64_t count = 256;
  uint64_t threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  uint64_t single_seed = 0;
  bool single = false;
  uint64_t expected_digest = 0;
  bool check_digest = false;
  bool stats = false;
  bool trace_failures = true;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t u = 0;
    if (ParseU64(arg, "--seeds=", &count) ||
        ParseU64(arg, "--first-seed=", &first_seed) ||
        ParseU64(arg, "--threads=", &threads) ||
        ParseU64(arg, "--ticks=", &opts.chaos_ticks)) {
      continue;
    }
    if (ParseU64(arg, "--seed=", &u)) {
      single = true;
      single_seed = u;
      continue;
    }
    if (std::strncmp(arg, "--mix=", 6) == 0) {
      opts.mix = arg + 6;
      continue;
    }
    if (std::strncmp(arg, "digest=", 7) == 0) {
      expected_digest = std::strtoull(arg + 7, nullptr, 16);
      check_digest = true;
      continue;
    }
    if (std::strcmp(arg, "--inject-divergence") == 0) {
      opts.inject_divergence = true;
      continue;
    }
    if (std::strcmp(arg, "--stats") == 0) {
      stats = true;
      continue;
    }
    if (std::strcmp(arg, "--no-trace") == 0) {
      trace_failures = false;
      continue;
    }
    if (std::strcmp(arg, "--list-mixes") == 0) {
      for (const auto& m : NemesisMix::KnownMixes()) {
        std::printf("%s\n", m.c_str());
      }
      return 0;
    }
    std::fprintf(stderr, "unknown argument: %s\n", arg);
    return 2;
  }

  if (single) {
    auto v = RunSweepWorld(opts, single_seed);
    PrintVerdict(v);
    std::printf("digest=%016llx\n", static_cast<unsigned long long>(v.digest));
    if (check_digest && v.digest != expected_digest) {
      std::printf("DIGEST MISMATCH: expected %016llx\n",
                  static_cast<unsigned long long>(expected_digest));
      return 1;
    }
    if (stats) PrintStats(opts, {v});
    if (!v.ok()) {
      if (!v.diagnostics.empty()) std::printf("%s", v.diagnostics.c_str());
      if (trace_failures) {
        std::string path = WriteFailureTrace(opts, single_seed);
        if (!path.empty()) std::printf("  trace: %s\n", path.c_str());
      }
    }
    return v.ok() ? 0 : 1;
  }

  std::printf("sweep: %llu worlds, mix=%s, ticks=%llu, %llu threads\n",
              static_cast<unsigned long long>(count), opts.mix.c_str(),
              static_cast<unsigned long long>(opts.chaos_ticks),
              static_cast<unsigned long long>(threads));
  auto result = RunSweep(opts, first_seed, static_cast<size_t>(count),
                         static_cast<size_t>(threads));
  size_t traces_written = 0;
  for (const auto& v : result.verdicts) {
    if (v.ok()) continue;
    PrintVerdict(v);
    // Re-run the failing seed single-threaded with the recorder armed and
    // park the Perfetto-loadable trace next to the repro line.
    if (trace_failures && traces_written < kMaxFailureTraces) {
      std::string path = WriteFailureTrace(opts, v.seed);
      if (!path.empty()) {
        std::printf("  trace: %s\n", path.c_str());
        ++traces_written;
      }
    }
  }
  if (stats) PrintStats(opts, result.verdicts);
  std::printf("sweep: %zu/%llu worlds passed, %zu failed\n",
              result.verdicts.size() - result.failures,
              static_cast<unsigned long long>(count), result.failures);
  return result.failures == 0 ? 0 : 1;
}
