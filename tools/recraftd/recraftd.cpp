// recraftd — the ReCraft node daemon: one core::Node run as a real process.
//
//   recraftd --id 1 --hosts phonebook.txt --data /var/lib/recraft/n1
//            --cluster 1,2,3 [--seed 1] [--tick-ms 10] [--snapshot 4096]
//
// The daemon is the thinnest possible shell around the deterministic core:
// every seam the simulator plugs fake implementations into gets the real
// one here, and nothing else changes —
//
//   net::Clock      -> net::SystemClock   (CLOCK_MONOTONIC + timer heap)
//   net::Transport  -> net::UdpTransport  (reliable-UDP links, phonebook)
//   storage::Disk   -> storage::FileDisk  (append/fdatasync/rename in --data)
//
// core::Node, WalStorage and the KV machine are byte-for-byte the code the
// seeded simulation suite verifies. Boot inspects the data directory: a
// durable image means this is a restart (recover from the WAL, rejoin);
// a blank one means genesis (--cluster required, and every member must be
// started with the same --cluster/--seed so they derive the same cluster
// uid). Crash = die: there is no graceful state handoff, kill -9 is the
// supported shutdown, and recovery is the WAL's job — that is the point.
//
// Event loop: poll(2) on the transport socket with a timeout from the
// timer heap / retransmission deadlines; timers (ticks, WAL group-commit
// flushes — and thus the node's durability callback) fire from the top of
// the loop, never from inside a mutation, matching the asynchrony contract
// the simulator enforces.
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/node.h"
#include "kv/kv_machine.h"
#include "net/phonebook.h"
#include "net/udp_clock.h"
#include "net/udp_transport.h"
#include "storage/file_disk.h"
#include "storage/wal_storage.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --id N --hosts FILE --data DIR [--cluster 1,2,3]\n"
      "          [--seed S] [--tick-ms MS] [--snapshot N] [--verbose]\n"
      "  --id N         this node's id (must appear in --hosts)\n"
      "  --hosts FILE   phonebook: '<id> <host>:<port>' per line\n"
      "  --data DIR     WAL directory (created if missing); a non-empty\n"
      "                 directory means restart-and-recover\n"
      "  --cluster IDS  genesis members (required for a blank --data;\n"
      "                 identical on every member)\n"
      "  --seed S       genesis uid seed, identical on every member (1)\n"
      "  --tick-ms MS   tick interval in real milliseconds (10)\n"
      "  --snapshot N   snapshot/compact every N applied entries (4096)\n",
      argv0);
  return 2;
}

bool ParseU64(const char* s, uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  unsigned long long v = strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseIdList(const std::string& s, std::vector<recraft::NodeId>* out) {
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    uint64_t id = 0;
    if (!ParseU64(s.substr(pos, comma - pos).c_str(), &id) ||
        id > 0xffffffffull) {
      return false;
    }
    out->push_back(static_cast<recraft::NodeId>(id));
    pos = comma + 1;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace recraft;

  uint64_t id64 = 0;
  bool have_id = false;
  std::string hosts_path;
  std::string data_dir;
  std::vector<NodeId> cluster;
  uint64_t seed = 1;
  uint64_t tick_ms = 10;
  uint64_t snapshot_every = 4096;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--id") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &id64)) return Usage(argv[0]);
      have_id = true;
    } else if (a == "--hosts") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      hosts_path = v;
    } else if (a == "--data") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      data_dir = v;
    } else if (a == "--cluster") {
      const char* v = next();
      if (v == nullptr || !ParseIdList(v, &cluster)) return Usage(argv[0]);
    } else if (a == "--seed") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &seed)) return Usage(argv[0]);
    } else if (a == "--tick-ms") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &tick_ms) || tick_ms == 0) {
        return Usage(argv[0]);
      }
    } else if (a == "--snapshot") {
      const char* v = next();
      if (v == nullptr || !ParseU64(v, &snapshot_every)) return Usage(argv[0]);
    } else if (a == "--verbose" || a == "-v") {
      verbose = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (!have_id || hosts_path.empty() || data_dir.empty()) {
    return Usage(argv[0]);
  }
  NodeId id = static_cast<NodeId>(id64);

  Logger::Global().set_level(verbose ? LogLevel::kDebug : LogLevel::kInfo);

  auto book = net::Phonebook::Load(hosts_path);
  if (!book.ok()) {
    std::fprintf(stderr, "recraftd: %s\n", book.status().message().c_str());
    return 1;
  }

  net::SystemClock clock;
  MetricRegistry metrics;
  net::UdpTransport transport(id, *book, &clock, &metrics);
  if (!transport.status().ok()) {
    std::fprintf(stderr, "recraftd: %s\n",
                 transport.status().message().c_str());
    return 1;
  }

  auto disk = std::make_shared<storage::FileDisk>(data_dir);
  storage::WalStorage storage(disk, &clock);

  // A durable image in --data decides restart vs genesis before the node
  // constructor re-Loads it (Load is idempotent: its only mutation is the
  // torn-tail cut, which recovery would make anyway).
  auto probe = storage.Load();
  if (!probe.ok()) {
    std::fprintf(stderr, "recraftd: unreadable WAL in %s: %s\n",
                 data_dir.c_str(), probe.status().message().c_str());
    return 1;
  }
  bool restart = probe->present;
  if (!restart && cluster.empty()) {
    std::fprintf(stderr,
                 "recraftd: blank --data and no --cluster: nothing to boot\n");
    return Usage(argv[0]);
  }

  core::Options opts;
  opts.tick_interval = tick_ms * kMillisecond;
  opts.snapshot_threshold = snapshot_every;
  opts.machine_factory = kv::KvMachineFactory();

  auto send = [&transport, id](NodeId to, raft::MessagePtr msg) {
    transport.Send(id, to, std::move(msg));
  };
  // Per-incarnation RNG stream (election jitter must not replay across a
  // restart); the transport session token is already boot-unique.
  Rng rng(Mix64(Mix64(seed, transport.session()), id));

  std::unique_ptr<core::Node> node;
  if (restart) {
    node = std::make_unique<core::Node>(id, opts, &storage, std::move(rng),
                                        send);
    RLOG_INFO("recraftd", "n%u recovered from %s: uid=%llu commit=%llu", id,
              data_dir.c_str(),
              static_cast<unsigned long long>(node->cluster_uid()),
              static_cast<unsigned long long>(node->commit_index()));
  } else {
    raft::ConfigState genesis;
    genesis.members = cluster;
    genesis.range = KeyRange::Full();
    genesis.uid = Mix64(seed, cluster.front());
    node = std::make_unique<core::Node>(id, opts, genesis, std::move(rng),
                                        send, &storage);
    RLOG_INFO("recraftd", "n%u genesis: %zu members uid=%llu", id,
              cluster.size(),
              static_cast<unsigned long long>(genesis.uid));
  }

  transport.Bind(id, [&node](NodeId from, const raft::Message& m,
                             obs::TraceCtx ctx) {
    node->Receive(from, m, ctx);
  });

  // Self-rearming tick, the real-time analogue of World::ScheduleTick.
  std::function<void()> tick = [&]() {
    node->Tick();
    clock.CallAfter(opts.tick_interval, tick);
  };
  clock.CallAfter(opts.tick_interval, tick);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  RLOG_INFO("recraftd", "n%u serving on port %u (pid %d)", id,
            transport.bound_port(), getpid());

  while (g_stop == 0) {
    int timeout_ms = clock.PollTimeoutMs(/*max_ms=*/100);
    if (timeout_ms < 0) timeout_ms = 100;
    TimePoint rto = transport.NextDeadline();
    if (rto != 0) {
      TimePoint now = clock.Now();
      uint64_t ms = rto <= now ? 0 : (rto - now + 999) / 1000;
      if (ms < static_cast<uint64_t>(timeout_ms)) {
        timeout_ms = static_cast<int>(ms);
      }
    }
    pollfd p{};
    p.fd = transport.fd();
    p.events = POLLIN;
    poll(&p, 1, timeout_ms);
    if ((p.revents & POLLIN) != 0) transport.OnReadable();
    transport.OnTimer();
    // Top of the loop: ticks, WAL flush completions (and through them the
    // node's durability callback) fire here and only here.
    clock.RunDue();
  }

  // Graceful-ish exit for SIGTERM/SIGINT: make pending WAL bytes durable so
  // a polite shutdown never loses acked work. SIGKILL skips this, and the
  // WAL is designed to take it.
  storage.Sync();
  RLOG_INFO("recraftd", "n%u stopped", id);
  return 0;
}
