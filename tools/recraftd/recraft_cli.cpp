// recraft-cli — client tooling for a recraftd cluster.
//
//   recraft-cli --hosts FILE put KEY VALUE
//   recraft-cli --hosts FILE get KEY
//   recraft-cli --hosts FILE del KEY
//   recraft-cli --hosts FILE cas KEY EXPECTED VALUE
//   recraft-cli --hosts FILE scan LO HI
//   recraft-cli --hosts FILE leader
//   recraft-cli --hosts FILE load  --clients N --ops M [--history FILE]
//                                  [--prefix P] [--value-bytes B]
//   recraft-cli --hosts FILE check --history FILE
//
// `load` runs N closed-loop clients (a thread + KvClient each) over
// disjoint key prefixes. Every client keeps a local model of its own keys
// and issues CAS against the model value: with one writer per key, a CAS
// conflict is impossible unless the cluster double-applied or lost a write
// — so the workload is itself a consistency probe. Acked writes are
// appended to --history in ack order (per-client seq order within it).
// Writes retry until acked (the dedup session makes retries exactly-once),
// so the history is exactly the set of applied client writes.
//
// `check` replays a history through harness::KvHistoryChecker and compares
// every replayed key against a live read of the cluster — the same
// verification the simulated crash/recovery suite applies, pointed at real
// processes. Exit 0 only if every key matches.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "harness/checkers.h"
#include "kv/service.h"
#include "net/phonebook.h"
#include "net/udp_client.h"

namespace {

using namespace recraft;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --hosts FILE [--client ID] COMMAND ...\n"
               "  put KEY VALUE | get KEY | del KEY | cas KEY EXPECTED VALUE\n"
               "  scan LO HI | leader\n"
               "  load --clients N --ops M [--history FILE] [--prefix P]\n"
               "       [--value-bytes B]\n"
               "  check --history FILE\n",
               argv0);
  return 2;
}

struct LoadStats {
  uint64_t ops = 0;
  uint64_t cas_conflicts = 0;
  uint64_t errors = 0;
  LatencyRecorder latency;
};

/// One closed-loop client: disjoint key space `<prefix>c<id>/k<j>`, local
/// model, CAS-against-model, retry-until-acked writes.
void RunLoadClient(NodeId client_id, const net::Phonebook& book,
                   uint64_t ops, const std::string& prefix,
                   size_t value_bytes, uint64_t key_space,
                   std::ofstream* history, std::mutex* history_mu,
                   LoadStats* out) {
  net::KvClient client(client_id, book);
  std::mt19937_64 rng(client_id * 0x9e3779b97f4a7c15ull + 1);
  std::map<std::string, std::string> model;  // this client's keys only
  uint64_t next_seq = 0;  // stamped here, not in Do(): history needs it

  auto value_for = [&](uint64_t seq) {
    std::string v = "v" + std::to_string(client_id) + "-" +
                    std::to_string(seq) + "-";
    while (v.size() < value_bytes) v.push_back('x');
    return v;
  };

  for (uint64_t j = 0; j < ops; ++j) {
    std::string key = prefix + "c" + std::to_string(client_id) + "/k" +
                      std::to_string(rng() % key_space);
    uint64_t dice = rng() % 100;

    kv::Command cmd;
    cmd.key = key;
    auto have = model.find(key);
    if (dice < 60 || have == model.end()) {
      cmd.op = kv::OpType::kPut;
      cmd.value = value_for(j);
    } else if (dice < 75) {
      cmd.op = kv::OpType::kCas;
      cmd.expected = have->second;
      cmd.value = value_for(j);
    } else if (dice < 85) {
      cmd.op = kv::OpType::kDelete;
    } else {
      cmd.op = kv::OpType::kGet;
    }
    if (!kv::IsReadOnly(cmd.op)) {
      cmd.client_id = client_id;
      cmd.seq = ++next_seq;
    }

    // Writes must land: the history's accuracy depends on never abandoning
    // an op that might have been applied. 10 minutes of retries covers any
    // leader kill + re-election the smoke test throws at us.
    Duration timeout = kv::IsReadOnly(cmd.op) ? 5 * kSecond : 600 * kSecond;
    TimePoint t0 = 0;
    {
      timespec ts{};
      clock_gettime(CLOCK_MONOTONIC, &ts);
      t0 = uint64_t(ts.tv_sec) * 1'000'000ull + uint64_t(ts.tv_nsec) / 1000;
    }
    kv::Response r = client.Do(cmd, timeout);
    {
      timespec ts{};
      clock_gettime(CLOCK_MONOTONIC, &ts);
      TimePoint t1 =
          uint64_t(ts.tv_sec) * 1'000'000ull + uint64_t(ts.tv_nsec) / 1000;
      out->latency.Record(t1 - t0);
    }

    switch (cmd.op) {
      case kv::OpType::kGet:
        if (!r.status.ok() && r.status.code() != Code::kNotFound) {
          ++out->errors;
        } else {
          // Read-your-writes against the local model: a single-writer key
          // must read as the model value.
          std::string expect =
              have == model.end() ? std::string() : have->second;
          std::string got = r.status.ok() ? r.value : std::string();
          if (got != expect) ++out->errors;
        }
        ++out->ops;
        continue;
      case kv::OpType::kCas:
        if (r.status.code() == Code::kConflict) {
          // Impossible with one writer per key unless the cluster lost or
          // double-applied a write.
          ++out->cas_conflicts;
          ++out->ops;
          continue;
        }
        break;
      default:
        break;
    }
    if (!r.status.ok()) {
      ++out->errors;
      ++out->ops;
      continue;
    }

    // Acked write: commit to model + history.
    if (cmd.op == kv::OpType::kDelete) {
      model.erase(key);
    } else {
      model[key] = cmd.value;
    }
    if (history != nullptr) {
      std::ostringstream line;
      switch (cmd.op) {
        case kv::OpType::kPut:
          line << "put " << cmd.client_id << ' ' << cmd.seq << ' ' << key
               << ' ' << cmd.value;
          break;
        case kv::OpType::kDelete:
          line << "del " << cmd.client_id << ' ' << cmd.seq << ' ' << key;
          break;
        case kv::OpType::kCas:
          line << "cas " << cmd.client_id << ' ' << cmd.seq << ' ' << key
               << ' ' << cmd.value << ' ' << cmd.expected;
          break;
        default:
          break;
      }
      std::lock_guard<std::mutex> lock(*history_mu);
      *history << line.str() << '\n';
      history->flush();
    }
    ++out->ops;
  }
}

int RunLoad(const net::Phonebook& book, uint64_t clients, uint64_t ops,
            const std::string& history_path, const std::string& prefix,
            size_t value_bytes) {
  std::ofstream history;
  if (!history_path.empty()) {
    history.open(history_path, std::ios::app);
    if (!history) {
      std::fprintf(stderr, "recraft-cli: cannot open %s\n",
                   history_path.c_str());
      return 1;
    }
  }
  std::mutex history_mu;
  std::vector<LoadStats> stats(clients);
  std::vector<std::thread> threads;

  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  uint64_t t0 = uint64_t(ts.tv_sec) * 1'000'000ull + uint64_t(ts.tv_nsec) / 1000;

  for (uint64_t i = 0; i < clients; ++i) {
    NodeId cid = static_cast<NodeId>(1000 + i);
    threads.emplace_back(RunLoadClient, cid, std::cref(book), ops, prefix,
                         value_bytes, /*key_space=*/64,
                         history_path.empty() ? nullptr : &history,
                         &history_mu, &stats[i]);
  }
  for (auto& t : threads) t.join();

  clock_gettime(CLOCK_MONOTONIC, &ts);
  uint64_t t1 = uint64_t(ts.tv_sec) * 1'000'000ull + uint64_t(ts.tv_nsec) / 1000;

  LoadStats total;
  for (const auto& s : stats) {
    total.ops += s.ops;
    total.cas_conflicts += s.cas_conflicts;
    total.errors += s.errors;
    total.latency.Merge(s.latency);
  }
  double secs = double(t1 - t0) / 1e6;
  std::printf(
      "load: ops=%llu secs=%.2f ops_per_sec=%.0f p50_us=%llu p99_us=%llu "
      "cas_conflicts=%llu errors=%llu\n",
      (unsigned long long)total.ops, secs,
      secs > 0 ? double(total.ops) / secs : 0.0,
      (unsigned long long)total.latency.Percentile(50),
      (unsigned long long)total.latency.Percentile(99),
      (unsigned long long)total.cas_conflicts,
      (unsigned long long)total.errors);
  return (total.cas_conflicts == 0 && total.errors == 0) ? 0 : 1;
}

int RunCheck(const net::Phonebook& book, const std::string& history_path) {
  std::ifstream in(history_path);
  if (!in) {
    std::fprintf(stderr, "recraft-cli: cannot open %s\n",
                 history_path.c_str());
    return 1;
  }
  std::vector<kv::Command> commands;
  std::string op;
  while (in >> op) {
    kv::Command c;
    in >> c.client_id >> c.seq >> c.key;
    if (op == "put") {
      c.op = kv::OpType::kPut;
      in >> c.value;
    } else if (op == "del") {
      c.op = kv::OpType::kDelete;
    } else if (op == "cas") {
      c.op = kv::OpType::kCas;
      in >> c.value >> c.expected;
    } else {
      std::fprintf(stderr, "recraft-cli: bad history op '%s'\n", op.c_str());
      return 1;
    }
    commands.push_back(std::move(c));
  }
  harness::KvHistoryChecker checker;
  std::map<std::string, std::string> expect = checker.Replay(commands);

  // Collect every key the history ever touched: keys the replay ends
  // without must read as absent.
  std::map<std::string, bool> touched;
  for (const auto& c : commands) touched[c.key] = true;

  net::KvClient client(static_cast<NodeId>(990), book);
  uint64_t checked = 0;
  uint64_t mismatches = 0;
  for (const auto& [key, unused] : touched) {
    (void)unused;
    kv::Command get;
    get.op = kv::OpType::kGet;
    get.key = key;
    kv::Response r = client.Do(get, 30 * kSecond);
    auto it = expect.find(key);
    bool should_exist = it != expect.end();
    if (r.status.code() == Code::kTimeout) {
      std::fprintf(stderr, "check: read of '%s' timed out\n", key.c_str());
      ++mismatches;
    } else if (should_exist &&
               (!r.status.ok() || r.value != it->second)) {
      std::fprintf(stderr, "check: '%s' expected '%s' got '%s' (%s)\n",
                   key.c_str(), it->second.c_str(), r.value.c_str(),
                   r.status.message().c_str());
      ++mismatches;
    } else if (!should_exist && r.status.code() != Code::kNotFound) {
      std::fprintf(stderr, "check: '%s' expected absent, got '%s' (%s)\n",
                   key.c_str(), r.value.c_str(),
                   r.status.message().c_str());
      ++mismatches;
    }
    ++checked;
  }
  std::printf("check: replayed=%zu keys=%llu mismatches=%llu\n",
              commands.size(), (unsigned long long)checked,
              (unsigned long long)mismatches);
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string hosts_path;
  // The kv dedup session is keyed by client_id: two invocations sharing an
  // id would alias each other's (id, seq) pairs and have their writes
  // swallowed as "already applied" retries. Default to a per-process id
  // well above any server or load-generator id; --client overrides.
  uint64_t client_id = (1u << 20) + (static_cast<uint32_t>(getpid()) & 0xfffff);
  std::vector<std::string> rest;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--hosts" && i + 1 < argc) {
      hosts_path = argv[++i];
    } else if (a == "--client" && i + 1 < argc) {
      client_id = strtoull(argv[++i], nullptr, 10);
    } else {
      rest.push_back(std::move(a));
    }
  }
  if (hosts_path.empty() || rest.empty()) return Usage(argv[0]);

  auto book = net::Phonebook::Load(hosts_path);
  if (!book.ok()) {
    std::fprintf(stderr, "recraft-cli: %s\n", book.status().message().c_str());
    return 1;
  }

  const std::string& cmd = rest[0];

  if (cmd == "load" || cmd == "check") {
    uint64_t clients = 4;
    uint64_t ops = 1000;
    std::string history_path;
    std::string prefix;
    uint64_t value_bytes = 64;
    for (size_t i = 1; i < rest.size(); ++i) {
      const std::string& a = rest[i];
      auto next = [&]() -> const char* {
        return i + 1 < rest.size() ? rest[++i].c_str() : nullptr;
      };
      if (a == "--clients") {
        const char* v = next();
        if (v == nullptr) return Usage(argv[0]);
        clients = strtoull(v, nullptr, 10);
      } else if (a == "--ops") {
        const char* v = next();
        if (v == nullptr) return Usage(argv[0]);
        ops = strtoull(v, nullptr, 10);
      } else if (a == "--history") {
        const char* v = next();
        if (v == nullptr) return Usage(argv[0]);
        history_path = v;
      } else if (a == "--prefix") {
        const char* v = next();
        if (v == nullptr) return Usage(argv[0]);
        prefix = v;
      } else if (a == "--value-bytes") {
        const char* v = next();
        if (v == nullptr) return Usage(argv[0]);
        value_bytes = strtoull(v, nullptr, 10);
      } else {
        return Usage(argv[0]);
      }
    }
    if (cmd == "load") {
      if (clients == 0 || ops == 0) return Usage(argv[0]);
      return RunLoad(*book, clients, ops, history_path, prefix, value_bytes);
    }
    if (history_path.empty()) return Usage(argv[0]);
    return RunCheck(*book, history_path);
  }

  net::KvClient client(static_cast<recraft::NodeId>(client_id), *book);
  kv::Command c;
  kv::Response r;

  if (cmd == "put" && rest.size() == 3) {
    c.op = kv::OpType::kPut;
    c.key = rest[1];
    c.value = rest[2];
    r = client.Do(c);
  } else if (cmd == "get" && rest.size() == 2) {
    c.op = kv::OpType::kGet;
    c.key = rest[1];
    r = client.Do(c);
  } else if (cmd == "del" && rest.size() == 2) {
    c.op = kv::OpType::kDelete;
    c.key = rest[1];
    r = client.Do(c);
  } else if (cmd == "cas" && rest.size() == 4) {
    c.op = kv::OpType::kCas;
    c.key = rest[1];
    c.expected = rest[2];
    c.value = rest[3];
    r = client.Do(c);
  } else if (cmd == "scan" && rest.size() == 3) {
    c.op = kv::OpType::kScan;
    c.key = rest[1];
    c.scan_hi = rest[2];
    r = client.Do(c);
  } else if (cmd == "leader" && rest.size() == 1) {
    c.op = kv::OpType::kGet;
    c.key = "\x01__leader_probe";
    r = client.Do(c);
    if (r.status.ok() || r.status.code() == Code::kNotFound) {
      std::printf("%u\n", client.last_leader());
      return 0;
    }
    std::fprintf(stderr, "leader: %s\n", r.status.message().c_str());
    return 1;
  } else {
    return Usage(argv[0]);
  }

  if (!r.status.ok() && r.status.code() != Code::kNotFound) {
    std::fprintf(stderr, "%s: %s\n", cmd.c_str(),
                 r.status.message().c_str());
    return 1;
  }
  if (cmd == "get") {
    if (r.status.code() == Code::kNotFound) {
      std::fprintf(stderr, "(not found)\n");
      return 1;
    }
    std::printf("%s\n", r.value.c_str());
  } else if (cmd == "scan") {
    for (const auto& [k, v] : r.entries) {
      std::printf("%s\t%s\n", k.c_str(), v.c_str());
    }
  } else {
    std::printf("ok\n");
  }
  return 0;
}
