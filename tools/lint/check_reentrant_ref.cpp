// recraft-reentrant-ref — flags a reference, pointer or iterator obtained
// from node-owned container state that is still used after a call that can
// mutate or reenter that container. This is the PR 1 use-after-free family
// (`Progress&` / `ConfigState&` held across a reentrant apply in
// HandleAppendReply / OnMemberChangeCommitted) and the PR 5 placement-driver
// variant (a `ShardInfo*` from ShardMap::Get used after the rebalancer ran
// the event loop).
//
// Model (per function body):
//   1. A *binding* is created when a reference/pointer/iterator is
//      initialized from a member-container access (an identifier ending in
//      `_` followed by `[`, `.find(`, `.at(`, `.begin()`, ...) or from a
//      known accessor (LeaderProgress, Current, Get, Lookup, ConfigOf, ...),
//      or when the declared type itself is a known container-owned record
//      type (Progress, ConfigState, ShardInfo, ...).
//   2. A call to a *reentrant* method (Propose, AdvanceCommit,
//      ApplyCommitted, MaybeSendAppend, rebalancer Split/Merge, ShardMap
//      Apply, World event-loop drivers, ...) poisons every live binding —
//      including a binding passed as an argument of that very call, which is
//      exactly the `rb_.Split(*stale_ptr, ...)` shape.
//   3. Any later mention of a poisoned binding diagnoses; re-assigning the
//      name (`p = LeaderProgress(peer)`, `it = m_.find(k)`) re-validates it,
//      which is the documented "re-fetch after such calls" idiom.
#include <array>
#include <string>
#include <vector>

#include "analysis.h"

namespace recraft::lint {
namespace {

// Methods whose execution can mutate node-owned containers or reenter the
// apply/reconfiguration machinery. Receiver-independent by design: the bug
// family is about *what runs underneath*, not who is called.
constexpr std::array kReentrantCalls = {
    // Replication / apply path (core::Node).
    "Propose", "AdvanceCommit", "ApplyCommitted", "MaybeSendAppend",
    "BroadcastAppend", "ObserveEt", "MaybeCompact",
    // Reconfiguration machinery.
    "OnMemberChangeCommitted", "CompleteSplit", "StartMerge", "StartSplit",
    "StartExchange", "OnMergeOutcomeApplied", "ProposeMergeOutcome",
    "ClearProgress", "PruneProgress",
    // Message pumps: anything that can deliver a message can do all of the
    // above transitively.
    "Receive", "Tick", "Step",
    // Harness / placement: these run the simulated event loop (and with it
    // arbitrary node code) or rewrite the shard map / world node set.
    "RunFor", "RunUntil", "RunUntilPred", "RunUntilQuiescent",
    "SplitShard", "MergeShards", "WipeNode", "CrashNode", "RestartNode",
    "CreateSpareNode", "BootstrapCluster", "BootstrapShards",
    "ReconcileRegion",
    // The Rebalancer surface: both implementations drive the whole
    // split/merge protocol through the event loop.
    "Split", "Merge",
};

// Accessors that hand out references/pointers/iterators into container-owned
// state.
constexpr std::array kAccessors = {
    "LeaderProgress", "Current", "Get", "Lookup", "ConfigOf", "MetricsOf",
    "find", "at", "begin", "rbegin", "lower_bound", "upper_bound", "front",
    "back", "emplace", "insert", "try_emplace",
};

// Record types that live inside node-owned containers: declaring a
// reference/pointer of one of these is treated as a container binding even
// when the initializer is not syntactically recognizable.
constexpr std::array kOwnedRecordTypes = {
    "Progress", "ConfigState", "ShardInfo", "PendingClient", "PendingRead",
    "MergeRuntime", "ExchangeGc", "NamingRegister",
};

template <typename Arr>
bool In(const Arr& arr, const std::string& s) {
  for (const char* e : arr) {
    if (s == e) return true;
  }
  return false;
}

struct Binding {
  std::string name;
  int decl_line = 0;
  int decl_depth = 0;
  std::string source;      // what it was bound from, for the message
  bool poisoned = false;   // a reentrant call happened since (re)binding
  int poisoned_depth = 1 << 20;  // shallowest depth of any poisoning call
  std::string poisoned_by;
  int poisoned_line = 0;
  bool reported = false;
};

class ReentrantRefCheck : public Check {
 public:
  std::string name() const override { return "recraft-reentrant-ref"; }
  std::string description() const override {
    return "reference/iterator into node-owned state used across a call "
           "that can mutate or reenter its container";
  }

  void Run(const SourceFile& f, std::vector<Diagnostic>* out) override {
    const std::vector<Token>& toks = f.tokens();
    const size_t n = toks.size();
    std::vector<Binding> live;
    std::string cur_func;

    auto member_container_access = [&](size_t from, size_t to) -> std::string {
      // Scan [from, to) for `ident_ [` / `ident_.accessor(` /
      // `expr.accessor(` / bare `Accessor(`. Returns a description or "".
      for (size_t j = from; j < to && j + 1 < n; ++j) {
        const Token& t = toks[j];
        if (t.kind != Tok::kIdent) continue;
        bool member_ish = !t.text.empty() && t.text.back() == '_';
        if (member_ish && toks[j + 1].Is("[")) return t.text + "[]";
        if (j + 2 < to && (toks[j + 1].Is(".") || toks[j + 1].Is("->")) &&
            toks[j + 2].kind == Tok::kIdent &&
            In(kAccessors, toks[j + 2].text) && j + 3 < n &&
            toks[j + 3].Is("(")) {
          return t.text + "." + toks[j + 2].text + "()";
        }
        if (In(kAccessors, t.text) && toks[j + 1].Is("(") &&
            (j == from || !(toks[j - 1].Is(".") || toks[j - 1].Is("->")))) {
          return t.text + "()";
        }
      }
      return "";
    };

    for (size_t i = 0; i + 1 < n; ++i) {
      const Token& t = toks[i];
      const std::string& fn = f.FunctionAt(i);
      if (fn != cur_func) {
        live.clear();
        cur_func = fn;
      }
      if (cur_func.empty()) continue;
      // Closing a block: drop bindings declared inside it, and — when the
      // block cannot fall through (its last statement is a jump) — undo any
      // poisoning that happened only inside it. This keeps the canonical
      //   if (needs_apply) { ApplyCommitted(); return Retry(); }
      //   use(cfg);   // cfg is only reachable if the apply did NOT run
      // shape clean without a NOLINT.
      if (t.Is("}")) {
        int d = f.DepthAt(i);
        bool jump_exit = BlockEndsWithJump(toks, i);
        for (auto it = live.begin(); it != live.end();) {
          if (it->decl_depth >= d) {
            it = live.erase(it);
            continue;
          }
          if (jump_exit && it->poisoned && it->poisoned_depth >= d) {
            it->poisoned = false;
            it->poisoned_depth = 1 << 20;
          }
          ++it;
        }
        continue;
      }
      if (t.kind != Tok::kIdent) continue;

      // --- reentrant call? ---------------------------------------------
      if (In(kReentrantCalls, t.text) && toks[i + 1].Is("(")) {
        // Flag live bindings handed to the call itself — the
        // `rb_.Split(*stale, ...)` shape, where the callee receives a
        // reference to container-owned state and then invalidates it while
        // running. Only a *direct* top-level argument (`stale`, `*stale`,
        // `&stale`) is flagged: `Propose(Payload{ref.field})` copies the
        // field during argument construction, before the callee runs, and
        // is safe. Then poison everything for post-call uses.
        size_t close = MatchParen(toks, i + 1);
        for (size_t j = i + 2; j < close; ++j) {
          if (toks[j].kind != Tok::kIdent) continue;
          if (!DirectArgUse(toks, i + 1, close, j)) continue;
          for (Binding& b : live) {
            if (b.reported || toks[j].text != b.name) continue;
            Report(f, toks[j], b, t.text, out);
          }
        }
        int call_depth = f.DepthAt(i);
        for (Binding& b : live) {
          if (!b.poisoned) {
            b.poisoned = true;
            b.poisoned_by = t.text;
            b.poisoned_line = t.line;
          }
          if (call_depth < b.poisoned_depth) b.poisoned_depth = call_depth;
        }
        i = close;  // args were handled; don't treat them as uses again
        continue;
      }

      // --- use or re-binding of a tracked name? ------------------------
      bool handled = false;
      for (Binding& b : live) {
        if (t.text != b.name) continue;
        handled = true;
        // `name = ...` re-binds (and `name.field = ...` does not).
        if (toks[i + 1].Is("=")) {
          size_t semi = i + 1;
          while (semi < n && !toks[semi].Is(";")) ++semi;
          b.poisoned = false;
          b.reported = false;
          b.source = member_container_access(i + 2, semi);
          break;
        }
        if (b.poisoned && !b.reported) Report(f, t, b, b.poisoned_by, out);
        break;
      }
      if (handled) continue;

      // --- new binding declaration? ------------------------------------
      // Patterns:  T& name = expr;   T* name = expr;   auto name = expr;
      // where T is an owned record type or expr is a container access.
      if ((t.text == "auto" || In(kOwnedRecordTypes, t.text)) ||
          (toks[i + 1].Is("&") || toks[i + 1].Is("*"))) {
        size_t j = i;
        bool ref_like = false;
        if (toks[j + 1].Is("&") || toks[j + 1].Is("*")) {
          ref_like = true;
          ++j;
        }
        if (j + 2 >= n) continue;
        const Token& name = toks[j + 1];
        if (name.kind != Tok::kIdent || !toks[j + 2].Is("=")) continue;
        // Exclude comparisons and compound tokens (lexer splits "==").
        size_t eq = j + 2;
        size_t semi = eq;
        while (semi < n && !toks[semi].Is(";") && !toks[semi].Is("{")) ++semi;
        std::string src = member_container_access(eq + 1, semi);
        bool typed_record = In(kOwnedRecordTypes, t.text) && ref_like;
        bool iterator_bind =
            t.text == "auto" && !ref_like && !src.empty() &&
            (src.find(".find()") != std::string::npos ||
             src.find(".begin()") != std::string::npos ||
             src.find(".lower_bound()") != std::string::npos ||
             src.find(".upper_bound()") != std::string::npos);
        bool ref_bind = ref_like && (!src.empty() || typed_record);
        if (!ref_bind && !iterator_bind) continue;
        Binding b;
        b.name = name.text;
        b.decl_line = name.line;
        b.decl_depth = f.DepthAt(i);
        b.source = src.empty() ? (t.text + std::string("&")) : src;
        live.push_back(std::move(b));
        i = semi;
      }
    }
  }

 private:
  // True when toks[j] is a whole top-level argument of the call whose
  // argument list spans (open, close): optionally behind one `*`/`&`, and
  // delimited by `(`/`,` before and `,`/`)` after. `Payload{x.f}` and
  // `x->field` fail this test — those read/copy during argument evaluation,
  // before the callee can invalidate anything.
  static bool DirectArgUse(const std::vector<Token>& toks, size_t open,
                           size_t close, size_t j) {
    int nest = 0;  // depth relative to the call's own parens/braces
    for (size_t k = open + 1; k < j; ++k) {
      if (toks[k].Is("(") || toks[k].Is("{") || toks[k].Is("[")) ++nest;
      else if (toks[k].Is(")") || toks[k].Is("}") || toks[k].Is("]")) --nest;
    }
    if (nest != 0) return false;
    size_t before = j - 1;
    if (toks[before].Is("*") || toks[before].Is("&")) --before;
    if (before < open) return false;
    if (!(before == open || toks[before].Is("(") || toks[before].Is(",")))
      return false;
    if (j + 1 > close) return false;
    return toks[j + 1].Is(",") || toks[j + 1].Is(")");
  }

  // True when the statement immediately preceding the `}` at toks[i] is a
  // jump (return/break/continue/throw/goto): control cannot fall out of the
  // block, so poisoning confined to it does not reach code after the `}`.
  static bool BlockEndsWithJump(const std::vector<Token>& toks, size_t i) {
    if (i == 0) return false;
    size_t last = i - 1;           // expect the `;` ending the statement
    if (!toks[last].Is(";")) return false;
    // Walk back to the start of that statement.
    size_t j = last;
    while (j > 0) {
      --j;
      if (toks[j].Is(";") || toks[j].Is("{") || toks[j].Is("}")) {
        ++j;
        break;
      }
    }
    return toks[j].IsIdent("return") || toks[j].IsIdent("break") ||
           toks[j].IsIdent("continue") || toks[j].IsIdent("throw") ||
           toks[j].IsIdent("goto");
  }

  static size_t MatchParen(const std::vector<Token>& toks, size_t open) {
    int depth = 0;
    for (size_t j = open; j < toks.size(); ++j) {
      if (toks[j].Is("(")) ++depth;
      else if (toks[j].Is(")")) {
        if (--depth == 0) return j;
      }
    }
    return toks.size() - 1;
  }

  void Report(const SourceFile& f, const Token& at, Binding& b,
              const std::string& call, std::vector<Diagnostic>* out) {
    b.reported = true;
    Diagnostic d;
    d.file = f.path();
    d.line = at.line;
    d.col = at.col;
    d.check = name();
    d.message = "'" + b.name + "' (bound from " + b.source + " at line " +
                std::to_string(b.decl_line) +
                ") is used after a call to '" + call +
                "', which can mutate or reenter its container; copy the "
                "value or re-fetch after the call (see core::Node "
                "WithProgress/LeaderProgress)";
    out->push_back(std::move(d));
  }
};

}  // namespace

std::unique_ptr<Check> MakeReentrantRefCheck() {
  return std::make_unique<ReentrantRefCheck>();
}

}  // namespace recraft::lint
