// Shared analysis substrate for recraft-tidy checks: a lexed source file with
// its suppression comments, per-token enclosing-function names, and the
// diagnostic/check plumbing.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace recraft::lint {

struct Diagnostic {
  std::string file;  // the *display* path (real path on disk)
  int line = 0;
  int col = 0;
  std::string check;    // e.g. "recraft-determinism"
  std::string message;  // human-readable explanation
};

// One `// NOLINT(check,...)[: justification]` or NOLINTNEXTLINE comment.
struct Suppression {
  int line = 0;            // line the comment sits on
  int applies_to = 0;      // line whose findings it suppresses
  std::vector<std::string> checks;  // empty or {"*"} = all recraft checks
  bool has_justification = false;
  bool MatchesCheck(const std::string& check) const;
};

class SourceFile {
 public:
  /// Loads and lexes `path`. `virtual_path` is the path checks use for
  /// directory scoping (fixtures override it via a
  /// `// RECRAFT-TIDY-PATH: src/...` first-line marker); the display path in
  /// diagnostics is always the real one. Returns nullptr on read failure.
  static std::unique_ptr<SourceFile> Load(const std::string& path);

  const std::string& path() const { return path_; }
  const std::string& virtual_path() const { return virtual_path_; }
  const std::vector<Token>& tokens() const { return tokens_; }
  const std::vector<std::string>& lines() const { return lines_; }
  const std::vector<Suppression>& suppressions() const { return nolints_; }

  /// True if the virtual path lives under any of `prefixes` (e.g. "src/core").
  bool UnderAny(const std::vector<std::string>& prefixes) const;

  /// Name of the function enclosing token `i` ("" at namespace/class scope).
  const std::string& FunctionAt(size_t i) const { return func_of_[i]; }
  /// Brace depth at token `i` (before the token is applied).
  int DepthAt(size_t i) const { return depth_of_[i]; }

  /// Names of members/locals in this file declared with an unordered
  /// associative container type.
  const std::set<std::string>& unordered_names() const {
    return unordered_names_;
  }

 private:
  void ScanNolints();
  void ComputeScopes();
  void CollectUnorderedDecls();

  std::string path_;
  std::string virtual_path_;
  std::string source_;
  std::vector<std::string> lines_;
  std::vector<Token> tokens_;
  std::vector<Suppression> nolints_;
  std::vector<std::string> func_of_;
  std::vector<int> depth_of_;
  std::set<std::string> unordered_names_;
};

class Check {
 public:
  virtual ~Check() = default;
  virtual std::string name() const = 0;
  virtual std::string description() const = 0;
  virtual void Run(const SourceFile& file, std::vector<Diagnostic>* out) = 0;
};

std::vector<std::unique_ptr<Check>> MakeAllChecks();

}  // namespace recraft::lint
