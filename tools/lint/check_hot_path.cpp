// recraft-hot-path-hygiene — the PR 3 accounting-drift family:
//
//   * `CounterSet::Add("literal")` — the string overload re-hashes the name
//     on every increment. Tick/receive paths run this millions of times per
//     simulated second; the idiom is to Intern() once (constructor /
//     InternCounters) and Add(id) — a plain array increment. The check flags
//     every string-literal Add in the scoped dirs; genuinely cold sites can
//     say so with a justified NOLINT, but in practice interning is always
//     cheap and uniform.
//   * hard-coded message byte sizes in Network::Send — `Send(from, to, msg,
//     128)` silently drifts from the real encoded size when a message grows
//     a field; bandwidth/latency accounting (and every Fig. 6-8 number
//     derived from it) then lies. The size argument must be
//     `msg.wire_bytes()` (memoized at MakeMessage since PR 3).
//
// Scope: all of src/ plus bench/ and examples/ — benches must account the
// same way the system does, or their curves are not comparable.
#include <array>
#include <string>
#include <vector>

#include "analysis.h"

namespace recraft::lint {
namespace {

const std::vector<std::string> kScopedDirs = {
    "src", "bench", "examples",
};

class HotPathHygieneCheck : public Check {
 public:
  std::string name() const override { return "recraft-hot-path-hygiene"; }
  std::string description() const override {
    return "string-literal counter Add or hard-coded wire size on a hot "
           "path (accounting drift)";
  }

  void Run(const SourceFile& f, std::vector<Diagnostic>* out) override {
    if (!f.UnderAny(kScopedDirs)) return;
    const std::vector<Token>& toks = f.tokens();
    const size_t n = toks.size();

    for (size_t i = 0; i + 2 < n; ++i) {
      const Token& t = toks[i];
      if (t.kind != Tok::kIdent) continue;

      // --- counters_.Add("name") ---------------------------------------
      if (t.text == "Add" && i > 0 &&
          (toks[i - 1].Is(".") || toks[i - 1].Is("->")) &&
          toks[i + 1].Is("(") && toks[i + 2].kind == Tok::kString) {
        Diagnostic d;
        d.file = f.path();
        d.line = toks[i + 2].line;
        d.col = toks[i + 2].col;
        d.check = name();
        d.message =
            "string-literal counter Add re-hashes the name on every "
            "increment; Intern() the id once (see Node::InternCounters) and "
            "Add(id) here";
        out->push_back(std::move(d));
        continue;
      }

      // --- net.Send(from, to, payload, <integer literal>) --------------
      if (t.text == "Send" && i > 0 &&
          (toks[i - 1].Is(".") || toks[i - 1].Is("->")) &&
          toks[i + 1].Is("(")) {
        size_t close = MatchParen(toks, i + 1);
        // Find the last top-level argument.
        size_t last_start = i + 2;
        int depth = 0;
        for (size_t j = i + 2; j < close; ++j) {
          if (toks[j].Is("(") || toks[j].Is("[") || toks[j].Is("{")) ++depth;
          else if (toks[j].Is(")") || toks[j].Is("]") || toks[j].Is("}")) {
            --depth;
          } else if (toks[j].Is(",") && depth == 0) {
            last_start = j + 1;
          }
        }
        // Hard-coded size: the final argument is a single numeric literal
        // (possibly a parenthesized / arithmetic expression of literals —
        // flag when it contains a number and no identifier).
        bool has_number = false;
        bool has_ident = false;
        for (size_t j = last_start; j < close; ++j) {
          if (toks[j].kind == Tok::kNumber) has_number = true;
          if (toks[j].kind == Tok::kIdent) has_ident = true;
        }
        if (has_number && !has_ident && close > last_start) {
          Diagnostic d;
          d.file = f.path();
          d.line = toks[last_start].line;
          d.col = toks[last_start].col;
          d.check = name();
          d.message =
              "hard-coded message byte size drifts from the encoded size "
              "when the message grows; pass msg.wire_bytes() so bandwidth "
              "accounting stays truthful";
          out->push_back(std::move(d));
        }
        i = close;
      }
    }
  }

 private:
  static size_t MatchParen(const std::vector<Token>& toks, size_t open) {
    int depth = 0;
    for (size_t j = open; j < toks.size(); ++j) {
      if (toks[j].Is("(")) ++depth;
      else if (toks[j].Is(")")) {
        if (--depth == 0) return j;
      }
    }
    return toks.size() - 1;
  }
};

// recraft-entry-copy — the PR 7 slab family: materializing a whole
// `std::vector<LogEntry>` (or deque) on the replication send / persist
// paths. Since the slab refactor, log slices are `EntrySpan` views over
// refcounted `EntrySlab`s and storage mirrors hold `EntryList`s of shared
// refs — a container-of-LogEntry type in src/core, src/raft or src/storage
// means someone re-introduced the per-peer deep copy the refactor deleted
// (~8% of e2e wall time in the PR 3 profile). The slab's own backing store
// is the one sanctioned declaration (justified NOLINT in entry_slab.h).
class EntryCopyCheck : public Check {
 public:
  std::string name() const override { return "recraft-entry-copy"; }
  std::string description() const override {
    return "whole-vector<LogEntry> materialization on a send/persist path "
           "(use EntrySpan/EntryList slab views)";
  }

  void Run(const SourceFile& f, std::vector<Diagnostic>* out) override {
    static const std::vector<std::string> kDirs = {
        "src/core", "src/raft", "src/storage",
    };
    if (!f.UnderAny(kDirs)) return;
    const std::vector<Token>& toks = f.tokens();
    for (size_t i = 0; i + 3 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Tok::kIdent ||
          (t.text != "vector" && t.text != "deque")) {
        continue;
      }
      if (!toks[i + 1].Is("<")) continue;
      // Match vector<LogEntry> and vector<raft::LogEntry>.
      size_t j = i + 2;
      if (j + 1 < toks.size() && toks[j].kind == Tok::kIdent &&
          toks[j + 1].Is("::")) {
        j += 2;
      }
      if (j + 1 >= toks.size() || toks[j].kind != Tok::kIdent ||
          toks[j].text != "LogEntry" || !toks[j + 1].Is(">")) {
        continue;
      }
      Diagnostic d;
      d.file = f.path();
      d.line = t.line;
      d.col = t.col;
      d.check = name();
      d.message =
          "a " + t.text +
          "<LogEntry> on this path deep-copies every entry per peer per "
          "send; slice the log into an EntrySpan (or mirror EntryRefs in an "
          "EntryList) so all fan-out shares one slab";
      out->push_back(std::move(d));
    }
  }
};

}  // namespace

std::unique_ptr<Check> MakeHotPathHygieneCheck() {
  return std::make_unique<HotPathHygieneCheck>();
}

std::unique_ptr<Check> MakeEntryCopyCheck() {
  return std::make_unique<EntryCopyCheck>();
}

}  // namespace recraft::lint
