// A minimal C++ lexer for recraft-tidy. It is not a compiler front end: the
// checks it feeds are token-pattern analyses with light structural awareness
// (brace depth, enclosing function), so the lexer only needs to be exact about
// the things that would otherwise corrupt a token stream — comments, string
// and character literals (including raw strings), preprocessor lines with
// continuations, and multi-character punctuators that the checks match on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace recraft::lint {

enum class Tok : uint8_t {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (including 0x..., digit separators, suffixes)
  kString,  // "..." / R"(...)" — text is the raw literal including quotes
  kChar,    // '...'
  kPunct,   // operators and punctuation, longest-match (e.g. "->", "::")
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  int line = 0;  // 1-based
  int col = 0;   // 1-based

  bool Is(const char* s) const { return text == s; }
  bool IsIdent(const char* s) const { return kind == Tok::kIdent && text == s; }
};

/// Tokenize `source`. Comments and preprocessor directives are skipped (the
/// NOLINT scanner in analysis.cc reads comments straight from the raw lines).
/// Never fails: unknown bytes become single-character punct tokens.
std::vector<Token> Lex(const std::string& source);

}  // namespace recraft::lint
