// recraft-layering — keeps the deployable core below the test scaffolding.
// The real-process deployment mode links core::Node, the raft protocol, the
// state machines and the storage/net layers into recraftd with no simulator
// in the binary; that only stays true if nothing in those layers includes a
// sim/ or harness/ header. The dependency arrow must point one way:
// src/sim and src/harness wrap the core (SimTransport, SimClock, SimDisk
// are adapters *over* core seams), never the reverse.
//
// src/shard is deliberately out of scope: the placement/rebalancer plane is
// orchestration that drives harness worlds, sitting beside the harness, not
// below it.
#include <array>
#include <string>
#include <vector>

#include "analysis.h"

namespace recraft::lint {
namespace {

// Layers that must stay simulator-free (virtual-path scoped).
const std::vector<std::string> kLayeredDirs = {
    "src/core", "src/raft", "src/sm", "src/kv", "src/storage", "src/net",
};

// Include-path prefixes that may never appear below the line.
constexpr std::array kForbiddenPrefixes = {"sim/", "harness/"};

class LayeringCheck : public Check {
 public:
  std::string name() const override { return "recraft-layering"; }
  std::string description() const override {
    return "sim/ or harness/ include below the deployable core: the "
           "simulator wraps the core's seams, never the reverse";
  }

  void Run(const SourceFile& f, std::vector<Diagnostic>* out) override {
    if (!f.UnderAny(kLayeredDirs)) return;
    const std::vector<std::string>& lines = f.lines();
    for (size_t ln = 0; ln < lines.size(); ++ln) {
      std::string inc = IncludedPath(lines[ln]);
      if (inc.empty()) continue;
      for (const char* prefix : kForbiddenPrefixes) {
        if (inc.rfind(prefix, 0) != 0) continue;
        Diagnostic d;
        d.file = f.path();
        d.line = static_cast<int>(ln + 1);
        d.col = static_cast<int>(lines[ln].find('#') + 1);
        d.check = name();
        d.message = "'" + inc + "' included from the deployable core; " +
                    std::string(prefix) +
                    " must depend on this layer, not the reverse — move "
                    "the shared seam into src/net or src/common";
        out->push_back(std::move(d));
        break;
      }
    }
  }

 private:
  /// The quoted path of a `#include "..."` directive, else "". Angle-bracket
  /// includes are system/third-party and never name project layers.
  static std::string IncludedPath(const std::string& line) {
    size_t at = line.find_first_not_of(" \t");
    if (at == std::string::npos || line[at] != '#') return "";
    at = line.find_first_not_of(" \t", at + 1);
    if (at == std::string::npos || line.compare(at, 7, "include") != 0) {
      return "";
    }
    size_t open = line.find('"', at + 7);
    if (open == std::string::npos) return "";
    size_t close = line.find('"', open + 1);
    if (close == std::string::npos) return "";
    return line.substr(open + 1, close - open - 1);
  }
};

}  // namespace

std::unique_ptr<Check> MakeLayeringCheck() {
  return std::make_unique<LayeringCheck>();
}

}  // namespace recraft::lint
