// recraft-trace-hygiene — the flight-recorder name-interning contract.
//
// Trace records are fixed-size PODs: the event name is an `obs::Name` enum
// value (interned once, stringified only at export), never a string. A
// string literal inside an Emit/BeginSpan/EndSpan call means someone tried
// to invent a dynamic event name at an emit site — which would force the
// record to own heap storage, turn the O(1) ring push into an allocation on
// hot paths (every network delivery and WAL flush emits), and break the
// closed-enum guarantee the Perfetto exporter and critical-path scorer rely
// on. Add a value to obs::Name (and its kNames row) instead.
//
// Scope: all of src/ — emit sites live in core, sim, storage, harness and
// obs itself; the contract is the same everywhere.
#include <string>
#include <vector>

#include "analysis.h"

namespace recraft::lint {
namespace {

const std::vector<std::string> kScopedDirs = {"src"};

bool IsEmitName(const std::string& s) {
  return s == "Emit" || s == "BeginSpan" || s == "EndSpan";
}

class TraceHygieneCheck : public Check {
 public:
  std::string name() const override { return "recraft-trace-hygiene"; }
  std::string description() const override {
    return "string literal in a trace emit call (event names are interned "
           "obs::Name enum values)";
  }

  void Run(const SourceFile& f, std::vector<Diagnostic>* out) override {
    if (!f.UnderAny(kScopedDirs)) return;
    const std::vector<Token>& toks = f.tokens();
    const size_t n = toks.size();
    for (size_t i = 0; i + 1 < n; ++i) {
      const Token& t = toks[i];
      // A trace emit is a method call on a recorder: `rec.Emit(` or
      // `recorder->BeginSpan(`. Free functions named Emit elsewhere in the
      // tree are not trace emits and stay out of scope.
      if (t.kind != Tok::kIdent || !IsEmitName(t.text)) continue;
      if (i == 0 || !(toks[i - 1].Is(".") || toks[i - 1].Is("->"))) continue;
      if (!toks[i + 1].Is("(")) continue;
      int depth = 0;
      for (size_t j = i + 1; j < n; ++j) {
        if (toks[j].Is("(")) ++depth;
        else if (toks[j].Is(")")) {
          if (--depth == 0) {
            i = j;
            break;
          }
        } else if (toks[j].kind == Tok::kString) {
          Diagnostic d;
          d.file = f.path();
          d.line = toks[j].line;
          d.col = toks[j].col;
          d.check = name();
          d.message =
              "trace emit with a string literal: records are fixed-size "
              "PODs keyed by the obs::Name enum — add an enum value (and "
              "its kNames row) instead of a dynamic name";
          out->push_back(std::move(d));
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Check> MakeTraceHygieneCheck() {
  return std::make_unique<TraceHygieneCheck>();
}

}  // namespace recraft::lint
