// Minimal compile_commands.json reader. recraft-tidy only needs the set of
// translation units the build actually compiles (the "file" fields); it does
// not preprocess, so flags and include paths are ignored. Headers are picked
// up separately by scanning the directories of the listed sources.
#pragma once

#include <string>
#include <vector>

namespace recraft::lint {

/// Parses `<build_dir>/compile_commands.json` and returns the absolute
/// "file" entries. Returns an empty vector (and sets *error) on failure.
std::vector<std::string> ReadCompileDb(const std::string& build_dir,
                                       std::string* error);

}  // namespace recraft::lint
