// RECRAFT-TIDY-PATH: src/core/fixture_entry_copy_positive.cc
// Positive fixtures for recraft-entry-copy — the PR 7 slab family:
// materializing whole containers of LogEntry on send/persist paths.
// Each EXPECT line must diagnose.

#include <deque>
#include <vector>

namespace raft {
struct LogEntry {
  unsigned long index = 0;
  unsigned long term = 0;
};
}  // namespace raft

namespace fixture {

using raft::LogEntry;

struct AppendEntries {
  // A message carrying an owning entry vector deep-copies per peer.
  std::vector<LogEntry> entries;  // EXPECT: recraft-entry-copy
};

class Replicator {
 public:
  void MaybeSendAppend() {
    // Materializing the slice re-copies every entry for every follower.
    std::vector<LogEntry> batch = Slice(1, 10);  // EXPECT: recraft-entry-copy
    (void)batch;
  }

 private:
  // Qualified element types are the same copy.
  std::vector<raft::LogEntry> Slice(unsigned long lo,  // EXPECT: recraft-entry-copy
                                    unsigned long hi);
};

class Storage {
  // Mirroring the log as a deque of owned entries copies on every append.
  std::deque<LogEntry> entries_;  // EXPECT: recraft-entry-copy
};

}  // namespace fixture
