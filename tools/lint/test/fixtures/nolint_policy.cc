// RECRAFT-TIDY-PATH: src/sim/fixture_nolint_policy.cc
// The suppression policy: a NOLINT naming the check *with a justification*
// is honored; a bare NOLINT is not (the finding survives, annotated, so the
// zero-finding gate still fails); a NOLINT naming a different check is
// ignored for this finding.

namespace fixture {

// Justified same-line suppression: silent.
unsigned long A() {
  return time(nullptr);  // NOLINT(recraft-determinism): fixture proves the justified-suppression path
}

// Justified NOLINTNEXTLINE: silent.
unsigned long B() {
  // NOLINTNEXTLINE(recraft-determinism): fixture proves the nextline path
  return time(nullptr);
}

// Wildcard check list with justification: silent.
unsigned long C() {
  return time(nullptr);  // NOLINT(recraft-*): fixture proves the glob path
}

// Bare NOLINT without a justification: the finding stays.
unsigned long D() {
  // NOLINTNEXTLINE(recraft-determinism)
  return time(nullptr);  // EXPECT: recraft-determinism
}

// A NOLINT for some *other* check does not suppress this one.
unsigned long E() {
  // NOLINTNEXTLINE(recraft-hot-path-hygiene): wrong check named
  return time(nullptr);  // EXPECT: recraft-determinism
}

}  // namespace fixture
