// RECRAFT-TIDY-PATH: src/harness/fixture_layering_negative.cc
// Above the line the arrow points the right way: the harness exists to
// wrap sim worlds around the core, so its sim/ includes are the design,
// not a violation. Same for src/shard (checked via the scoping list, not
// here): the placement plane drives harness worlds by construction.

#include <string>

#include "sim/event_queue.h"
#include "sim/network.h"
#include "harness/checkers.h"

namespace fixture {

struct WorldDriver {
  std::string name;
};

}  // namespace fixture
