// RECRAFT-TIDY-PATH: src/core/fixture_trace_hygiene_positive.cc
// Positive fixtures for recraft-trace-hygiene — string literals in trace
// emit calls. Event names are interned obs::Name enum values; a literal at
// an emit site means a dynamic name, which would put heap storage in a
// fixed-size POD record on hot paths. Each EXPECT line must diagnose.

namespace fixture {

enum class Name { kPropose, kApply };
struct TraceCtx {};

struct Recorder {
  void Emit(unsigned node, Name name, TraceCtx ctx = {},
            unsigned long a = 0, unsigned long b = 0);
  void Emit(unsigned node, const char* name, TraceCtx ctx = {});
  unsigned long BeginSpan(unsigned node, const char* name, TraceCtx ctx = {});
  void EndSpan(unsigned node, const char* name, unsigned long span);
};

class Node {
 public:
  void Propose() {
    rec_->Emit(id_, "propose");  // EXPECT: recraft-trace-hygiene
  }

  void StartElection() {
    span_ = rec_->BeginSpan(id_,
                            "election");  // EXPECT: recraft-trace-hygiene
  }

  void BecomeLeader() {
    rec_->EndSpan(id_, "election", span_);  // EXPECT: recraft-trace-hygiene
  }

  void Apply(Recorder& rec) {
    // Receiver via `.` is an emit site too.
    rec.Emit(id_, "apply");  // EXPECT: recraft-trace-hygiene
  }

 private:
  Recorder* rec_ = nullptr;
  unsigned id_ = 0;
  unsigned long span_ = 0;
};

}  // namespace fixture
