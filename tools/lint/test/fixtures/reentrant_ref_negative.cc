// RECRAFT-TIDY-PATH: src/core/fixture_reentrant_negative.cc
// Negative fixtures for recraft-reentrant-ref: all of these are the
// *sanctioned* idioms and must stay silent.

struct Progress {
  int next;
  int match;
};
struct ShardInfo {
  int id;
  int keys;
};

class Node {
 public:
  // Copy the value out before the reentrant call — the PR 5 fix.
  void SplitHot(int id, int key) {
    const ShardInfo* found = map_.Get(id);
    ShardInfo shard = *found;
    rb_.Split(shard, key);
    Observe(shard.keys);
  }

  // Re-fetch after the reentrant call — the documented LeaderProgress idiom.
  void HandleAppendReply(int from, int index) {
    Progress* pr = LeaderProgress(from);
    pr->match = index;
    AdvanceCommit();
    pr = LeaderProgress(from);
    if (pr != nullptr) pr->next = index + 1;
  }

  // Finish every use of the reference before the reentrant call.
  void HandleHeartbeat(int from) {
    Progress& pr = progress_[from];
    pr.match = pr.next - 1;
    AdvanceCommit();
  }

  // The WithProgress idiom: the reference only lives inside the callback and
  // the reentrant call runs after it returns.
  void HandleReply(int from, int index) {
    WithProgress(from, [&](Progress& pr) { pr.match = index; });
    AdvanceCommit();
  }

  // Iterator re-fetched after Propose.
  void ResolvePending(int idx) {
    auto it = pending_.find(idx);
    Propose(idx);
    it = pending_.find(idx);
    Observe(it->second);
  }

  // A reference that goes out of scope before the reentrant call.
  void Scoped(int from) {
    {
      Progress& pr = progress_[from];
      pr.next = 1;
    }
    AdvanceCommit();
    Observe(from);
  }

  // The reentrant call sits in a block that cannot fall through: the later
  // use only runs when the apply did NOT happen (core::Node::ObserveEt).
  void JumpExit(int from, bool leaving) {
    Progress& pr = progress_[from];
    if (leaving) {
      AdvanceCommit();
      return;
    }
    Observe(pr.match);
  }

  // A field copied *into* the call's argument construction is read during
  // argument evaluation, before the callee can invalidate anything
  // (core::Node::ProposeSplitLeaveJoint's Propose(ConfSplitNew{cfg.split})).
  void CopyIntoArg(int from) {
    Progress& pr = progress_[from];
    Propose(Wrap{pr.match}.v);
  }

 private:
  struct Wrap {
    int v;
  };
  struct Map {
    Progress& operator[](int);
  };
  struct PendingMap {
    struct Iter {
      int first;
      int second;
      Iter* operator->() { return this; }
    };
    Iter find(int);
  };
  struct ShardMap {
    const ShardInfo* Get(int);
  };
  struct Rebalancer {
    void Split(const ShardInfo&, int);
  };
  template <typename Fn>
  bool WithProgress(int, Fn&&);
  void AdvanceCommit();
  int Propose(int);
  void Observe(int);
  Progress* LeaderProgress(int);
  Map progress_;
  PendingMap pending_;
  ShardMap map_;
  Rebalancer rb_;
};
