// RECRAFT-TIDY-PATH: tests/fixture_determinism_out_of_scope.cc
// recraft-determinism is scoped to the deterministic core (src/sim, src/core,
// src/raft, src/shard, src/storage, src/sm, src/harness). Outside it —
// tests, tools — wall-clock and ambient state are legitimate, so this whole
// file must stay silent even though every construct here would diagnose
// under src/sim.

unsigned long WallClockIsFineInTests() {
  unsigned long a = time(nullptr);
  return a + rand();
}

const char* EnvIsFineInTests() { return getenv("RECRAFT_TEST_SEED"); }
