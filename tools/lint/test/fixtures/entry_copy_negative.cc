// RECRAFT-TIDY-PATH: src/core/fixture_entry_copy_negative.cc
// Negative fixtures for recraft-entry-copy: the slab idioms and the
// containers the check must not confuse with entry copies. Must stay silent.

#include <memory>
#include <vector>

namespace raft {
struct LogEntry {
  unsigned long index = 0;
};
struct EntrySpan {};
class EntryList {};
struct EntryRef {};
}  // namespace raft

namespace fixture {

struct AppendEntries {
  // The slab view: a span over refcounted slabs, no per-peer copy.
  raft::EntrySpan entries;
};

class Replicator {
 public:
  raft::EntrySpan Slice(unsigned long lo, unsigned long hi);

  void MaybeSendAppend() {
    raft::EntrySpan batch = Slice(1, 10);
    (void)batch;
  }

 private:
  raft::EntryList entries_;  // shared refs into the log's slabs
};

// Other element types are not entry copies.
struct Metrics {
  std::vector<unsigned long> samples;
  std::vector<raft::EntryRef> refs;  // a ref vector shares, not copies
};

// A single owned entry (boot replay, WAL decode) is not a whole-container
// materialization.
raft::LogEntry DecodeOne(const std::vector<unsigned char>& bytes);

}  // namespace fixture
