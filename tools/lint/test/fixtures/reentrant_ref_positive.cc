// RECRAFT-TIDY-PATH: src/core/fixture_reentrant_positive.cc
// Positive fixtures for recraft-reentrant-ref: every EXPECT line must
// produce exactly one diagnostic. These reproduce the two real bug shapes
// the check exists for — reintroducing either into src/ must fail the gate.

struct Progress {
  int next;
  int match;
  int inflight;
};
struct ConfigState {
  int epoch;
};
struct ShardInfo {
  int id;
  int keys;
};

class Node {
 public:
  // The PR 1 family: a Progress& obtained from the leader's tracking map is
  // held across AdvanceCommit(), which can apply a committed member change,
  // clear progress_ and leave the reference dangling.
  void HandleAppendReply(int from, int index) {
    Progress& pr = progress_[from];
    pr.match = index;
    AdvanceCommit();
    pr.next = pr.match + 1;  // EXPECT: recraft-reentrant-ref
  }

  // Same family via the pointer-returning accessor.
  void HandleInstallSnapshotReply(int from, int index) {
    Progress* pr = LeaderProgress(from);
    pr->inflight = 0;
    MaybeSendAppend(from, false);
    pr->match = index;  // EXPECT: recraft-reentrant-ref
  }

  // A ConfigState& from the tracker stack held across the reentrant apply —
  // the OnMemberChangeCommitted shape.
  void OnMemberChangeCommitted(int epoch) {
    const ConfigState& cfg = tracker_.Current();
    ApplyCommitted();
    Observe(cfg.epoch + epoch);  // EXPECT: recraft-reentrant-ref
  }

  // An iterator into a member map crossing Propose (which can reenter the
  // apply path synchronously on a single-node group).
  void ResolvePending(int idx) {
    auto it = pending_.find(idx);
    Propose(idx);
    Observe(it->second);  // EXPECT: recraft-reentrant-ref
  }

 private:
  struct Map {
    Progress& operator[](int);
    int* find(int);
  };
  struct PendingMap {
    struct Iter {
      int first;
      int second;
      Iter* operator->() { return this; }
    };
    Iter find(int);
  };
  struct Tracker {
    const ConfigState& Current();
  };
  void AdvanceCommit();
  void ApplyCommitted();
  void MaybeSendAppend(int, bool);
  int Propose(int);
  void Observe(int);
  Progress* LeaderProgress(int);
  Map progress_;
  PendingMap pending_;
  Tracker tracker_;
};

class PlacementDriver {
 public:
  // The PR 5 placement-driver shape: a ShardInfo* out of the shard map is
  // passed into the rebalancer, which runs the event loop and rewrites the
  // very map the pointer points into.
  void SplitHot(int id, int key) {
    const ShardInfo* found = map_.Get(id);
    rb_.Split(*found, key);  // EXPECT: recraft-reentrant-ref
  }

  // ...and the use-after-the-call variant.
  void MergeCold(int left, int right) {
    const ShardInfo* lp = map_.Get(left);
    rb_.Merge(left, right);
    Observe(lp->keys);  // EXPECT: recraft-reentrant-ref
  }

 private:
  struct ShardMap {
    const ShardInfo* Get(int);
  };
  struct Rebalancer {
    void Split(const ShardInfo&, int);
    void Merge(int, int);
  };
  void Observe(int);
  ShardMap map_;
  Rebalancer rb_;
};
