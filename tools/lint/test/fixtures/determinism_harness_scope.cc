// RECRAFT-TIDY-PATH: src/harness/fixture_determinism_harness_scope.cc
// The harness layer (worlds, clients, nemeses, the sweep runner) is part of
// the deterministic scope: a sweep world's verdict must replay bit-for-bit
// from its (seed, mix, ticks) repro line, so ambient state is banned here
// exactly as in src/sim.

#include <chrono>
#include <unordered_map>

namespace fixture {

// A nemesis drawing phase lengths from the wall clock would make every
// sweep verdict unreproducible.
unsigned long NemesisPhaseFromWallClock() {
  return time(nullptr);  // EXPECT: recraft-determinism
}

long SweepSeedFromClock() {
  auto t = std::chrono::steady_clock::now();  // EXPECT: recraft-determinism
  (void)t;
  return rand();  // EXPECT: recraft-determinism
}

// Unordered iteration picking fault victims leaks address order into the
// executed schedule.
class VictimPicker {
 public:
  int Sum() const {
    int sum = 0;
    for (const auto& [id, load] : nodes_) {  // EXPECT: recraft-determinism
      sum += id + load;
    }
    return sum;
  }

 private:
  std::unordered_map<int, int> nodes_;
};

}  // namespace fixture
