// RECRAFT-TIDY-PATH: src/core/fixture_trace_hygiene_negative.cc
// Negative fixtures for recraft-trace-hygiene: enum-keyed emits are the
// sanctioned idiom, and non-recorder calls that merely share a method name
// are out of scope. Nothing here may diagnose.

namespace fixture {

enum class Name { kPropose, kElection };
enum class Outcome { kOk };
struct TraceCtx {};

struct Recorder {
  void Emit(unsigned node, Name name, TraceCtx ctx = {},
            unsigned long a = 0, unsigned long b = 0);
  unsigned long BeginSpan(unsigned node, Name name, TraceCtx ctx = {},
                          unsigned long a = 0);
  void EndSpan(unsigned node, Name name, unsigned long span,
               Outcome outcome = Outcome::kOk);
};

// A free function named Emit is not a trace emit (no receiver).
void Emit(const char* message);

class Node {
 public:
  void Propose() {
    if (rec_ != nullptr) {
      rec_->Emit(id_, Name::kPropose, TraceCtx{}, 1, 2);
    }
  }

  void StartElection() {
    span_ = rec_->BeginSpan(id_, Name::kElection, TraceCtx{}, term_);
  }

  void BecomeLeader() {
    rec_->EndSpan(id_, Name::kElection, span_, Outcome::kOk);
    Emit("became leader");  // free function: out of scope
  }

 private:
  Recorder* rec_ = nullptr;
  unsigned id_ = 0;
  unsigned long term_ = 0;
  unsigned long span_ = 0;
};

}  // namespace fixture
