// RECRAFT-TIDY-PATH: src/sim/fixture_determinism_negative.cc
// Negative fixtures for recraft-determinism: sanctioned constructs inside
// the deterministic core. Must stay silent.

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

class Rng {
 public:
  explicit Rng(unsigned long seed) : state_(seed) {}
  unsigned long Next() { return state_ = state_ * 6364136223846793005UL + 1; }

 private:
  unsigned long state_;
};

// Seeded, world-owned randomness is the sanctioned source.
unsigned long SeededDraw(Rng& rng) { return rng.Next(); }

// The simulated clock is a plain value threaded through the world.
long SimNow(long now_us) { return now_us + 500; }

// A member *method* named like a banned function is fine: the ban is on the
// ambient free functions only.
class Ticker {
 public:
  long time() const { return now_; }
  long clock() const { return now_; }
  void Set(long t) { now_ = t; }

 private:
  long now_ = 0;
};

long UseMemberTime(const Ticker& t) { return t.time() + t.clock(); }

// Ordered containers iterate deterministically.
int SumOrdered(const std::map<int, int>& m) {
  int total = 0;
  for (const auto& [k, v] : m) total += v;
  return total;
}

// Point lookups into unordered containers are order-free and fine.
class Index {
 public:
  bool Contains(int k) const { return lookup_.find(k) != lookup_.end(); }
  int Get(int k) const {
    auto it = lookup_.find(k);
    return it == lookup_.end() ? -1 : it->second;
  }

 private:
  std::unordered_map<int, int> lookup_;
};

// std::hash over value types is stable for a given libstdc++; only pointer
// hashing is address-dependent.
unsigned long HashKey(const std::string& key) {
  return std::hash<std::string>{}(key);
}

// reinterpret_cast between pointer types (codec framing) is not an
// address-to-value leak.
const unsigned char* Frame(const char* buf) {
  return reinterpret_cast<const unsigned char*>(buf);
}

}  // namespace fixture
