// RECRAFT-TIDY-PATH: src/sim/fixture_determinism_positive.cc
// Positive fixtures for recraft-determinism: each EXPECT line leaks ambient
// state into the deterministic core and must diagnose.

#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

unsigned long WallClock() {
  unsigned long a = time(nullptr);  // EXPECT: recraft-determinism
  return a;
}

long MonotonicNow() {
  auto t = std::chrono::steady_clock::now();  // EXPECT: recraft-determinism
  (void)t;
  auto u = std::chrono::system_clock::now();  // EXPECT: recraft-determinism
  (void)u;
  return 0;
}

int UnseededRandomness() {
  int r = rand();  // EXPECT: recraft-determinism
  std::random_device rd;  // EXPECT: recraft-determinism
  return r + static_cast<int>(rd());
}

const char* AmbientConfig() {
  return getenv("RECRAFT_MODE");  // EXPECT: recraft-determinism
}

struct Node {
  int id;
};

bool OrderByAddress(const Node* a, const Node* b) {
  auto x = reinterpret_cast<uintptr_t>(a);  // EXPECT: recraft-determinism
  auto y = reinterpret_cast<uintptr_t>(b);  // EXPECT: recraft-determinism
  return x < y;
}

unsigned long HashPointer(const Node* n) {
  return std::hash<const Node*>{}(n);  // EXPECT: recraft-determinism
}

class Quorum {
 public:
  int Total() const {
    int total = 0;
    for (const auto& [node, weight] : acks_) {  // EXPECT: recraft-determinism
      total += weight;
    }
    return total;
  }

  int First() const {
    for (auto it = seen_.begin(); it != seen_.end(); ++it) {  // EXPECT: recraft-determinism
      return *it;
    }
    return -1;
  }

 private:
  std::unordered_map<int, int> acks_;
  std::unordered_set<int> seen_;
};

}  // namespace fixture
