// RECRAFT-TIDY-PATH: src/obs/fixture_determinism_obs_scope.cc
// The flight recorder is digest-neutral by contract: it observes the
// deterministic world without perturbing it, so src/obs is inside the
// recraft-determinism scope. A recorder reading a wall clock or drawing
// randomness of its own would stamp records that differ across replays of
// the same seed — sim time must arrive via Recorder::BindClock.

#include <chrono>

namespace fixture {

struct TraceRecord {
  unsigned long ts = 0;
  unsigned long a = 0;
};

class Recorder {
 public:
  TraceRecord Stamp() {
    TraceRecord r;
    r.ts = time(nullptr);  // EXPECT: recraft-determinism
    auto t = std::chrono::steady_clock::now();  // EXPECT: recraft-determinism
    (void)t;
    r.a = rand();  // EXPECT: recraft-determinism
    return r;
  }
};

}  // namespace fixture
