// RECRAFT-TIDY-PATH: src/core/fixture_layering_positive.cc
// The deployable core (src/{core,raft,sm,kv,storage,net}) links into
// recraftd with no simulator in the binary; a sim/ or harness/ include
// below the line inverts the adapter relationship and drags the test
// scaffolding into production links.

#include <vector>

#include "common/types.h"      // project includes below the line are fine
#include "net/transport.h"     // the seam itself is the legal direction
#include "sim/event_queue.h"   // EXPECT: recraft-layering
#include "harness/world.h"     // EXPECT: recraft-layering

namespace fixture {

struct Node {
  std::vector<int> peers;
};

}  // namespace fixture
