// RECRAFT-TIDY-PATH: src/net/udp_fixture_determinism_exempt.cc
// The udp_* files are the real-world half of the net seam: reading
// CLOCK_MONOTONIC and talking to the kernel is their entire purpose, so
// the src/net/udp_ prefix is exempt from recraft-determinism. Nothing here
// may diagnose.

#include <ctime>

namespace fixture {

class SystemClockImpl {
 public:
  unsigned long NowUs() {
    timespec ts{};
    clock_gettime(0, &ts);  // the exemption: no EXPECT line
    return static_cast<unsigned long>(ts.tv_nsec) / 1000;
  }
};

}  // namespace fixture
