// RECRAFT-TIDY-PATH: src/net/fixture_determinism_net_scope.cc
// The sim-facing half of src/net — seam headers, wire codec, the
// reliable-link engine — runs inside deterministic worlds (time arrives as
// a parameter, never read), so it sits inside the recraft-determinism
// scope like the core it serves.

namespace fixture {

class LinkEngine {
 public:
  unsigned long Jitter() {
    return rand();  // EXPECT: recraft-determinism
  }
};

}  // namespace fixture
