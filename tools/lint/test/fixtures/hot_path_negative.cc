// RECRAFT-TIDY-PATH: src/core/fixture_hot_path_negative.cc
// Negative fixtures for recraft-hot-path-hygiene: the sanctioned idioms.
// Must stay silent.

#include <memory>
#include <string>

namespace fixture {

struct CounterSet {
  void Add(const char* name, unsigned long n = 1);
  void Add(unsigned int id, unsigned long n = 1);
  unsigned int Intern(const char* name);
  unsigned long Get(const char* name) const;
};

struct Message {
  unsigned long wire_bytes() const;
};

struct Network {
  void Send(int from, int to, std::shared_ptr<const void> payload,
            unsigned long bytes);
};

class Node {
 public:
  Node() {
    // Interning by literal is the idiom — it happens once.
    cid_tick_ = counters_.Intern("node.tick");
  }

  void Tick() { counters_.Add(cid_tick_); }

  void Receive(int from, const Message& msg,
               std::shared_ptr<const void> payload) {
    counters_.Add(cid_tick_, 2);
    // The size argument comes from the message — no drift possible.
    net_->Send(id_, from, payload, msg.wire_bytes());
  }

  // Reading a counter by name is cold reporting, not a hot-path increment.
  unsigned long Report() const { return counters_.Get("node.tick"); }

 private:
  CounterSet counters_;
  Network* net_;
  unsigned int cid_tick_ = 0;
  int id_ = 0;
};

}  // namespace fixture
