// RECRAFT-TIDY-PATH: src/core/fixture_hot_path_positive.cc
// Positive fixtures for recraft-hot-path-hygiene — the PR 3
// accounting-drift family. Each EXPECT line must diagnose.

#include <memory>
#include <string>

namespace fixture {

struct CounterSet {
  void Add(const char* name, unsigned long n = 1);
  void Add(unsigned int id, unsigned long n = 1);
  unsigned int Intern(const char* name);
};

struct Network {
  void Send(int from, int to, std::shared_ptr<const void> payload,
            unsigned long bytes);
};

class Node {
 public:
  void Tick() {
    counters_.Add("node.tick");  // EXPECT: recraft-hot-path-hygiene
  }

  void Receive(int from, std::shared_ptr<const void> payload) {
    counters_.Add("msg.recv", 2);  // EXPECT: recraft-hot-path-hygiene
    net_->Send(id_, from, payload,
               128);  // EXPECT: recraft-hot-path-hygiene
  }

  void Broadcast(std::shared_ptr<const void> payload) {
    // Arithmetic of literals is still a hard-coded size.
    net_->Send(id_, 0, payload, 64 + 24);  // EXPECT: recraft-hot-path-hygiene
  }

 private:
  CounterSet counters_;
  Network* net_;
  int id_ = 0;
};

}  // namespace fixture
