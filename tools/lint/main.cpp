// recraft-tidy — project-specific static checks for the recraft codebase,
// clang-tidy style: named checks, `// NOLINT(check): justification`
// suppressions, file:line:col diagnostics, nonzero exit on any finding so CI
// can gate on zero.
//
//   recraft-tidy [-p <build-dir>] [--checks=[-]a,b] [paths...]
//       Analyze the translation units from <build-dir>/compile_commands.json
//       (plus headers found under `paths`), restricted to files under
//       `paths`. Without -p, `paths` are scanned directly (recursively, for
//       .h/.hpp/.cc/.cpp).
//   recraft-tidy --self-test <fixture...>
//       Fixture mode: each fixture encodes its expected diagnostics as
//       `// EXPECT: <check-name>` trailing comments; the run fails if any
//       expected diagnostic is missing (including those of a check disabled
//       via --checks — that is how the CTest guard tests prove each check
//       is load-bearing) or any unexpected one appears.
//
// Suppression policy: a finding is suppressed only by a NOLINT/NOLINTNEXTLINE
// naming its check *with a justification* (`// NOLINT(recraft-x): why this
// is safe`). A bare NOLINT leaves the finding live and annotates it, so "shut
// the tool up" commits still fail the gate with a reason to write down.
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis.h"
#include "compile_db.h"

namespace recraft::lint {
namespace {

namespace fs = std::filesystem;

struct Options {
  std::string build_dir;
  std::vector<std::string> paths;
  std::vector<std::string> enabled;   // empty = all
  std::vector<std::string> disabled;
  bool self_test = false;
  bool list_checks = false;
  bool quiet = false;
};

bool HasSourceExt(const fs::path& p) {
  std::string e = p.extension().string();
  return e == ".h" || e == ".hpp" || e == ".cc" || e == ".cpp";
}

void CollectFrom(const fs::path& root, std::set<std::string>* out) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    out->insert(fs::weakly_canonical(root, ec).string());
    return;
  }
  if (!fs::is_directory(root, ec)) return;
  for (auto it = fs::recursive_directory_iterator(root, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) break;
    if (it->is_regular_file(ec) && HasSourceExt(it->path())) {
      out->insert(fs::weakly_canonical(it->path(), ec).string());
    }
  }
}

bool UnderAnyPath(const std::string& file,
                  const std::vector<std::string>& roots) {
  if (roots.empty()) return true;
  std::error_code ec;
  std::string f = fs::weakly_canonical(fs::path(file), ec).string();
  for (const std::string& r : roots) {
    std::string root = fs::weakly_canonical(fs::path(r), ec).string();
    if (f == root) return true;
    if (f.size() > root.size() && f.compare(0, root.size(), root) == 0 &&
        f[root.size()] == '/') {
      return true;
    }
  }
  return false;
}

// `// EXPECT: check-a, check-b` — expected diagnostics for self-test mode.
std::multimap<int, std::string> ParseExpectations(const SourceFile& f) {
  std::multimap<int, std::string> out;
  const std::string marker = "EXPECT:";
  for (size_t ln = 0; ln < f.lines().size(); ++ln) {
    const std::string& s = f.lines()[ln];
    size_t at = s.find(marker);
    if (at == std::string::npos) continue;
    std::string rest = s.substr(at + marker.size());
    size_t b = 0;
    while (b != std::string::npos) {
      size_t e = rest.find(',', b);
      std::string item = rest.substr(
          b, e == std::string::npos ? std::string::npos : e - b);
      size_t i0 = item.find_first_not_of(" \t");
      size_t i1 = item.find_last_not_of(" \t\r");
      if (i0 != std::string::npos) {
        out.emplace(static_cast<int>(ln + 1), item.substr(i0, i1 - i0 + 1));
      }
      b = e == std::string::npos ? e : e + 1;
    }
  }
  return out;
}

class Driver {
 public:
  explicit Driver(const Options& opts) : opts_(opts) {
    for (auto& c : MakeAllChecks()) {
      bool on = true;
      if (!opts_.enabled.empty()) {
        on = std::find(opts_.enabled.begin(), opts_.enabled.end(),
                       c->name()) != opts_.enabled.end();
      }
      if (std::find(opts_.disabled.begin(), opts_.disabled.end(),
                    c->name()) != opts_.disabled.end()) {
        on = false;
      }
      if (on) checks_.push_back(std::move(c));
      else all_check_names_.push_back(c->name());
    }
  }

  int ListChecks() {
    for (auto& c : MakeAllChecks()) {
      std::cout << c->name() << " — " << c->description() << "\n";
    }
    return 0;
  }

  // Returns diagnostics that survive suppression; `suppressed` counts the
  // justified NOLINTs honored.
  std::vector<Diagnostic> Analyze(const SourceFile& f, int* suppressed) {
    std::vector<Diagnostic> raw;
    for (auto& c : checks_) c->Run(f, &raw);
    std::vector<Diagnostic> live;
    for (Diagnostic& d : raw) {
      const Suppression* match = nullptr;
      for (const Suppression& s : f.suppressions()) {
        if (s.applies_to == d.line && s.MatchesCheck(d.check)) {
          match = &s;
          break;
        }
      }
      if (match != nullptr && match->has_justification) {
        if (suppressed != nullptr) ++*suppressed;
        continue;
      }
      if (match != nullptr) {
        d.message +=
            " [NOLINT without justification — write `// NOLINT(" + d.check +
            "): <why this is safe>`]";
      }
      live.push_back(std::move(d));
    }
    std::sort(live.begin(), live.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                return std::tie(a.line, a.col, a.check) <
                       std::tie(b.line, b.col, b.check);
              });
    return live;
  }

  int RunLint() {
    std::set<std::string> files;
    if (!opts_.build_dir.empty()) {
      std::string err;
      std::vector<std::string> db = ReadCompileDb(opts_.build_dir, &err);
      if (db.empty()) {
        std::cerr << "recraft-tidy: " << err << "\n";
        return 2;
      }
      for (const std::string& fpath : db) {
        if (UnderAnyPath(fpath, opts_.paths)) files.insert(fpath);
      }
      // Headers are not translation units; pick them up from the path roots.
      for (const std::string& p : opts_.paths) {
        std::set<std::string> here;
        CollectFrom(p, &here);
        for (const std::string& h : here) {
          if (fs::path(h).extension() == ".h" ||
              fs::path(h).extension() == ".hpp") {
            files.insert(h);
          }
        }
      }
    } else {
      for (const std::string& p : opts_.paths) CollectFrom(p, &files);
    }
    if (files.empty()) {
      std::cerr << "recraft-tidy: no input files\n";
      return 2;
    }

    int findings = 0;
    int suppressed = 0;
    int nfiles = 0;
    for (const std::string& path : files) {
      auto f = SourceFile::Load(path);
      if (f == nullptr) {
        std::cerr << "recraft-tidy: cannot read " << path << "\n";
        return 2;
      }
      ++nfiles;
      for (const Diagnostic& d : Analyze(*f, &suppressed)) {
        ++findings;
        std::cout << d.file << ":" << d.line << ":" << d.col
                  << ": warning: " << d.message << " [" << d.check << "]\n";
      }
    }
    if (!opts_.quiet) {
      std::cerr << "recraft-tidy: " << findings << " finding(s), "
                << suppressed << " suppressed (justified NOLINT), " << nfiles
                << " file(s), " << checks_.size() << " check(s)\n";
    }
    return findings == 0 ? 0 : 1;
  }

  int RunSelfTest() {
    std::set<std::string> files;
    for (const std::string& p : opts_.paths) CollectFrom(p, &files);
    if (files.empty()) {
      std::cerr << "recraft-tidy: no fixtures found\n";
      return 2;
    }
    int failures = 0;
    int checked = 0;
    for (const std::string& path : files) {
      auto f = SourceFile::Load(path);
      if (f == nullptr) {
        std::cerr << "recraft-tidy: cannot read " << path << "\n";
        return 2;
      }
      std::multimap<int, std::string> expect = ParseExpectations(*f);
      std::vector<Diagnostic> got = Analyze(*f, nullptr);
      checked += static_cast<int>(expect.size());

      // Every expectation must be matched by a diagnostic, every diagnostic
      // by an expectation. Expectations for disabled checks are *not*
      // exempt: running the self-test with a check disabled must fail, which
      // is how the CTest guards prove each check pulls its weight.
      std::multiset<std::pair<int, std::string>> want_set;
      for (auto& [line, check] : expect) want_set.emplace(line, check);
      for (const Diagnostic& d : got) {
        auto it = want_set.find({d.line, d.check});
        if (it != want_set.end()) {
          want_set.erase(it);
        } else {
          ++failures;
          std::cerr << "UNEXPECTED " << path << ":" << d.line << ": ["
                    << d.check << "] " << d.message << "\n";
        }
      }
      for (auto& [line, check] : want_set) {
        ++failures;
        std::cerr << "MISSED    " << path << ":" << line << ": expected ["
                  << check << "] but no diagnostic was produced\n";
      }
    }
    std::cerr << "recraft-tidy self-test: " << checked << " expectation(s), "
              << failures << " failure(s)\n";
    return failures == 0 ? 0 : 1;
  }

  const Options& opts_;
  std::vector<std::unique_ptr<Check>> checks_;
  std::vector<std::string> all_check_names_;
};

int Main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "-p" && i + 1 < argc) {
      opts.build_dir = argv[++i];
    } else if (a.rfind("--checks=", 0) == 0) {
      std::string list = a.substr(9);
      size_t b = 0;
      while (b <= list.size()) {
        size_t e = list.find(',', b);
        std::string item =
            list.substr(b, e == std::string::npos ? std::string::npos : e - b);
        if (!item.empty()) {
          if (item[0] == '-') opts.disabled.push_back(item.substr(1));
          else opts.enabled.push_back(item);
        }
        if (e == std::string::npos) break;
        b = e + 1;
      }
    } else if (a == "--self-test") {
      opts.self_test = true;
    } else if (a == "--list-checks") {
      opts.list_checks = true;
    } else if (a == "--quiet") {
      opts.quiet = true;
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: recraft-tidy [-p build-dir] [--checks=[-]a,b] "
                   "[--list-checks] [--self-test] [--quiet] paths...\n";
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "recraft-tidy: unknown option " << a << "\n";
      return 2;
    } else {
      opts.paths.push_back(a);
    }
  }

  Driver driver(opts);
  if (opts.list_checks) return driver.ListChecks();
  if (opts.self_test) return driver.RunSelfTest();
  return driver.RunLint();
}

}  // namespace
}  // namespace recraft::lint

int main(int argc, char** argv) { return recraft::lint::Main(argc, argv); }
