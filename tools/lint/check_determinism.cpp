// recraft-determinism — keeps the deterministic core pure. A simulated run
// must be a pure function of (seed, configuration): the executed schedule is
// hashed by determinism_test into bit-for-bit digests, and the planned
// multi-thousand-seed sweeps replay failures from a (seed, digest) line
// alone. Inside the deterministic subsystems this check therefore flags
// every source of ambient nondeterminism:
//
//   * wall-clock reads: time(), clock(), gettimeofday(), clock_gettime(),
//     std::chrono::{system,steady,high_resolution}_clock::now()
//   * unseeded randomness: rand(), srand(), rand_r(), drand48(), random(),
//     std::random_device
//   * environment reads: getenv()/secure_getenv() (config must flow through
//     Options structs so it is part of the seed-reproducible input)
//   * pointer identity as a value: reinterpret_cast of a pointer to
//     uintptr_t/intptr_t and std::hash<T*> — address-dependent ordering or
//     hashing changes across runs under ASLR
//   * iteration over unordered_{map,set} — the visit order is
//     address/hash-seed dependent; anything state-affecting done in such a
//     loop leaks that order into the schedule. Iterate an ordered container,
//     sort the keys first, or suppress with a justification proving the loop
//     body is order-independent.
#include <array>
#include <string>
#include <vector>

#include "analysis.h"

namespace recraft::lint {
namespace {

// Directories forming the deterministic core (virtual-path scoped).
// src/harness is in scope too: the nemesis/sweep layer promises per-seed
// digest-identical replays, so it must be as clock/rand-free as the core.
// src/obs is in scope for the same reason as src/harness: the flight
// recorder promises digest-neutral observation, so it must never draw a
// clock or RNG of its own (sim time arrives via Recorder::BindClock).
// src/net is split down the middle: the seam headers and the reliable-link
// engine are driven by the simulator (times arrive as parameters, so they
// stay in the gate), while the udp_* files ARE the real-world half — their
// whole job is reading CLOCK_MONOTONIC and the kernel — and are exempted
// by filename prefix below.
const std::vector<std::string> kScopedDirs = {
    "src/sim", "src/core",    "src/raft", "src/shard",   "src/storage",
    "src/sm",  "src/harness", "src/obs",  "src/net",
};

// Path prefixes inside the scoped dirs that are exempt: the real-socket /
// real-clock implementations of the net seam (and nothing else).
const std::vector<std::string> kExemptPrefixes = {
    "src/net/udp_",
};

bool ExemptPath(const std::string& virtual_path) {
  for (const std::string& p : kExemptPrefixes) {
    size_t at = virtual_path.find(p);
    if (at != std::string::npos && (at == 0 || virtual_path[at - 1] == '/')) {
      return true;
    }
  }
  return false;
}

// Identifiers that are banned when used as a call: `name(...)` with no
// object receiver (a method named `time` on a sim type is fine).
constexpr std::array kBannedCalls = {
    "time", "clock", "gettimeofday", "clock_gettime", "timespec_get", "rand",
    "srand", "rand_r", "drand48", "lrand48", "mrand48", "random", "getenv",
    "secure_getenv",
};

// Identifiers banned on sight (type or namespace members).
constexpr std::array kBannedIdents = {
    "random_device", "system_clock", "steady_clock", "high_resolution_clock",
};

template <typename Arr>
bool In(const Arr& arr, const std::string& s) {
  for (const char* e : arr) {
    if (s == e) return true;
  }
  return false;
}

class DeterminismCheck : public Check {
 public:
  std::string name() const override { return "recraft-determinism"; }
  std::string description() const override {
    return "wall-clock, unseeded randomness, environment reads, pointer "
           "identity or unordered iteration in the deterministic core";
  }

  void Run(const SourceFile& f, std::vector<Diagnostic>* out) override {
    if (!f.UnderAny(kScopedDirs)) return;
    if (ExemptPath(f.virtual_path())) return;
    const std::vector<Token>& toks = f.tokens();
    const size_t n = toks.size();

    for (size_t i = 0; i + 1 < n; ++i) {
      const Token& t = toks[i];
      if (t.kind != Tok::kIdent) continue;

      bool member_access =
          i > 0 && (toks[i - 1].Is(".") || toks[i - 1].Is("->"));

      // Banned free-function calls. `rng_.random(` is fine (member_access);
      // `long time() const {...}` — a member *named* like a banned function
      // — is a declaration, not a call: preceded by a type identifier, or
      // followed past the `)` by a function-definition tail.
      if (!member_access && In(kBannedCalls, t.text) && toks[i + 1].Is("(") &&
          !LooksLikeDeclaration(toks, i)) {
        Emit(f, t, "call to '" + t.text +
                       "' injects ambient state into the deterministic "
                       "core; derive it from the world seed / sim clock "
                       "instead",
             out);
        continue;
      }

      // Banned identifiers.
      if (In(kBannedIdents, t.text)) {
        Emit(f, t, "'" + t.text +
                       "' is nondeterministic across runs; use the "
                       "world-seeded recraft::Rng / the simulated clock",
             out);
        continue;
      }

      // Pointer identity -> integer.
      if (t.text == "reinterpret_cast" && toks[i + 1].Is("<")) {
        size_t j = i + 2;
        bool to_int = false;
        for (; j < n && !toks[j].Is(">") && j < i + 8; ++j) {
          const std::string& s = toks[j].text;
          if (s == "uintptr_t" || s == "intptr_t") to_int = true;
        }
        if (to_int) {
          Emit(f, t,
               "pointer identity converted to an integer is "
               "address-dependent (ASLR) and must not order, hash or key "
               "anything in the deterministic core",
               out);
          continue;
        }
      }

      // std::hash<T*>.
      if (t.text == "hash" && toks[i + 1].Is("<")) {
        size_t j = i + 2;
        int depth = 1;
        bool ptr = false;
        for (; j < n && depth > 0 && j < i + 16; ++j) {
          if (toks[j].Is("<")) ++depth;
          else if (toks[j].Is(">")) --depth;
          else if (toks[j].Is("*") && depth == 1) ptr = true;
        }
        if (ptr) {
          Emit(f, t,
               "std::hash over a pointer type hashes addresses; the result "
               "is not stable across runs",
               out);
          continue;
        }
      }

      // Range-for / iterator loops over unordered containers declared in
      // this file.
      if (t.text == "for" && toks[i + 1].Is("(")) {
        size_t close = MatchParen(toks, i + 1);
        for (size_t j = i + 2; j < close; ++j) {
          if (toks[j].kind != Tok::kIdent) continue;
          if (!f.unordered_names().count(toks[j].text)) continue;
          // Either the range expression of a range-for (`: name)`), or an
          // iterator init (`name.begin()`) in a classic for.
          bool range_expr = j > 0 && toks[j - 1].Is(":");
          bool iter_init = j + 2 < close &&
                           (toks[j + 1].Is(".") || toks[j + 1].Is("->")) &&
                           (toks[j + 2].IsIdent("begin") ||
                            toks[j + 2].IsIdent("cbegin"));
          if (range_expr || iter_init) {
            Emit(f, toks[j],
                 "iteration over unordered container '" + toks[j].text +
                     "' has hash-seed/address-dependent order; iterate an "
                     "ordered view (or justify order-independence with a "
                     "NOLINT)",
                 out);
            break;
          }
        }
        i = close;
      }
    }
  }

 private:
  // True if `toks[i] (` is a function declaration/definition of that name
  // rather than a call.
  static bool LooksLikeDeclaration(const std::vector<Token>& toks, size_t i) {
    if (i > 0 && toks[i - 1].kind == Tok::kIdent) {
      const std::string& p = toks[i - 1].text;
      // These keywords precede calls, not declarators.
      if (p != "return" && p != "case" && p != "else" && p != "do" &&
          p != "co_return" && p != "co_await" && p != "co_yield") {
        return true;  // `long time(...)` — a declared name
      }
    }
    size_t close = MatchParen(toks, i + 1);
    if (close + 1 < toks.size()) {
      const Token& after = toks[close + 1];
      if (after.Is("{") || after.IsIdent("const") ||
          after.IsIdent("noexcept") || after.IsIdent("override")) {
        return true;  // `Ticker::time() const {` — a definition tail
      }
    }
    return false;
  }

  static size_t MatchParen(const std::vector<Token>& toks, size_t open) {
    int depth = 0;
    for (size_t j = open; j < toks.size(); ++j) {
      if (toks[j].Is("(")) ++depth;
      else if (toks[j].Is(")")) {
        if (--depth == 0) return j;
      }
    }
    return toks.size() - 1;
  }

  void Emit(const SourceFile& f, const Token& at, std::string msg,
            std::vector<Diagnostic>* out) {
    Diagnostic d;
    d.file = f.path();
    d.line = at.line;
    d.col = at.col;
    d.check = name();
    d.message = std::move(msg);
    out->push_back(std::move(d));
  }
};

}  // namespace

std::unique_ptr<Check> MakeDeterminismCheck() {
  return std::make_unique<DeterminismCheck>();
}

}  // namespace recraft::lint
