#include "lexer.h"

#include <cctype>

namespace recraft::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators the checks care about; longest match first.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", ".*",
};

}  // namespace

std::vector<Token> Lex(const std::string& src) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = src.size();
  int line = 1;
  int col = 1;

  auto advance = [&](size_t k) {
    for (size_t j = 0; j < k && i < n; ++j, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  while (i < n) {
    char c = src[i];

    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      advance(1);
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') advance(1);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      advance(2);
      while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) {
        advance(1);
      }
      advance(2);
      continue;
    }
    // Preprocessor directive: skip the (continued) line. Only when '#' is the
    // first non-blank character of the line (col tracking makes this cheap to
    // approximate: we just ate whitespace, so check backwards for newline).
    if (c == '#') {
      size_t b = i;
      while (b > 0 && (src[b - 1] == ' ' || src[b - 1] == '\t')) --b;
      if (b == 0 || src[b - 1] == '\n') {
        while (i < n) {
          if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
            advance(2);
            continue;
          }
          if (src[i] == '\n') break;
          advance(1);
        }
        continue;
      }
    }

    Token t;
    t.line = line;
    t.col = col;

    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(' && src[p] != '\n' && delim.size() < 16) {
        delim.push_back(src[p++]);
      }
      if (p < n && src[p] == '(') {
        std::string close = ")" + delim + "\"";
        size_t end = src.find(close, p + 1);
        size_t stop = (end == std::string::npos) ? n : end + close.size();
        t.kind = Tok::kString;
        t.text = src.substr(i, stop - i);
        advance(stop - i);
        out.push_back(std::move(t));
        continue;
      }
    }

    if (c == '"' || c == '\'') {
      char quote = c;
      size_t start = i;
      advance(1);
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) advance(2);
        else if (src[i] == '\n') break;  // unterminated; bail at EOL
        else advance(1);
      }
      if (i < n && src[i] == quote) advance(1);
      t.kind = quote == '"' ? Tok::kString : Tok::kChar;
      t.text = src.substr(start, i - start);
      out.push_back(std::move(t));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      size_t start = i;
      while (i < n && (IsIdentChar(src[i]) || src[i] == '.' || src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        advance(1);
      }
      t.kind = Tok::kNumber;
      t.text = src.substr(start, i - start);
      out.push_back(std::move(t));
      continue;
    }

    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(src[i])) advance(1);
      t.kind = Tok::kIdent;
      t.text = src.substr(start, i - start);
      out.push_back(std::move(t));
      continue;
    }

    t.kind = Tok::kPunct;
    bool matched = false;
    for (const char* p : kPuncts) {
      size_t len = std::char_traits<char>::length(p);
      if (src.compare(i, len, p) == 0) {
        t.text = p;
        advance(len);
        out.push_back(std::move(t));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    t.text = std::string(1, c);
    advance(1);
    out.push_back(std::move(t));
  }

  Token end;
  end.kind = Tok::kEnd;
  end.line = line;
  end.col = col;
  out.push_back(std::move(end));
  return out;
}

}  // namespace recraft::lint
