#include "compile_db.h"

#include <fstream>
#include <sstream>

namespace recraft::lint {
namespace {

// Decodes the JSON string whose opening quote is at src[*pos]; advances *pos
// past the closing quote. compile_commands.json only ever escapes \" \\ \/
// \n \t in practice; unknown escapes pass through literally.
std::string ParseJsonString(const std::string& src, size_t* pos) {
  std::string out;
  size_t i = *pos + 1;
  while (i < src.size() && src[i] != '"') {
    if (src[i] == '\\' && i + 1 < src.size()) {
      char e = src[i + 1];
      switch (e) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        default: out.push_back(e); break;
      }
      i += 2;
    } else {
      out.push_back(src[i++]);
    }
  }
  *pos = i < src.size() ? i + 1 : i;
  return out;
}

}  // namespace

std::vector<std::string> ReadCompileDb(const std::string& build_dir,
                                       std::string* error) {
  std::string path = build_dir + "/compile_commands.json";
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open " + path +
               " (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)";
    }
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string src = buf.str();

  // Scan for `"file"` keys and their string values; entry "directory" values
  // are remembered so relative "file" paths can be absolutized.
  std::vector<std::string> files;
  std::string directory;
  size_t i = 0;
  while (i < src.size()) {
    if (src[i] != '"') {
      ++i;
      continue;
    }
    size_t key_at = i;
    std::string key = ParseJsonString(src, &i);
    // Only treat it as a key if the next non-space char is ':'.
    size_t j = i;
    while (j < src.size() && (src[j] == ' ' || src[j] == '\n' ||
                              src[j] == '\t' || src[j] == '\r')) {
      ++j;
    }
    if (j >= src.size() || src[j] != ':') continue;
    ++j;
    while (j < src.size() && (src[j] == ' ' || src[j] == '\n' ||
                              src[j] == '\t' || src[j] == '\r')) {
      ++j;
    }
    if (j >= src.size() || src[j] != '"') {
      (void)key_at;
      continue;  // value is an array/number; irrelevant keys
    }
    i = j;
    std::string value = ParseJsonString(src, &i);
    if (key == "directory") {
      directory = value;
    } else if (key == "file") {
      if (!value.empty() && value[0] != '/' && !directory.empty()) {
        value = directory + "/" + value;
      }
      files.push_back(std::move(value));
    }
  }
  if (files.empty() && error != nullptr) {
    *error = path + " contains no file entries";
  }
  return files;
}

}  // namespace recraft::lint
