#include "analysis.h"

namespace recraft::lint {

std::unique_ptr<Check> MakeReentrantRefCheck();
std::unique_ptr<Check> MakeDeterminismCheck();
std::unique_ptr<Check> MakeHotPathHygieneCheck();
std::unique_ptr<Check> MakeEntryCopyCheck();
std::unique_ptr<Check> MakeTraceHygieneCheck();
std::unique_ptr<Check> MakeLayeringCheck();

std::vector<std::unique_ptr<Check>> MakeAllChecks() {
  std::vector<std::unique_ptr<Check>> out;
  out.push_back(MakeReentrantRefCheck());
  out.push_back(MakeDeterminismCheck());
  out.push_back(MakeHotPathHygieneCheck());
  out.push_back(MakeEntryCopyCheck());
  out.push_back(MakeTraceHygieneCheck());
  out.push_back(MakeLayeringCheck());
  return out;
}

}  // namespace recraft::lint
