#include "analysis.h"

#include <fstream>
#include <sstream>

namespace recraft::lint {
namespace {

// Keywords that introduce a parenthesized condition, not a function call.
bool IsControlKeyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "static_assert" || s == "assert" ||
         s == "new" || s == "delete";
}

}  // namespace

bool Suppression::MatchesCheck(const std::string& check) const {
  for (const std::string& c : checks) {
    if (c == "*" || c == check) return true;
    // "recraft-*" style prefix glob.
    if (!c.empty() && c.back() == '*' &&
        check.compare(0, c.size() - 1, c, 0, c.size() - 1) == 0) {
      return true;
    }
  }
  return false;
}

std::unique_ptr<SourceFile> SourceFile::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  std::ostringstream buf;
  buf << in.rdbuf();

  auto f = std::make_unique<SourceFile>();
  f->path_ = path;
  f->virtual_path_ = path;
  f->source_ = buf.str();

  std::string cur;
  for (char c : f->source_) {
    if (c == '\n') {
      f->lines_.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) f->lines_.push_back(cur);

  // Fixture scoping override: `// RECRAFT-TIDY-PATH: src/core/foo.cc`.
  if (!f->lines_.empty()) {
    const std::string marker = "RECRAFT-TIDY-PATH:";
    size_t at = f->lines_[0].find(marker);
    if (at != std::string::npos) {
      std::string rest = f->lines_[0].substr(at + marker.size());
      size_t b = rest.find_first_not_of(" \t");
      size_t e = rest.find_last_not_of(" \t\r");
      if (b != std::string::npos) {
        f->virtual_path_ = rest.substr(b, e - b + 1);
      }
    }
  }

  f->tokens_ = Lex(f->source_);
  f->ScanNolints();
  f->ComputeScopes();
  f->CollectUnorderedDecls();
  return f;
}

bool SourceFile::UnderAny(const std::vector<std::string>& prefixes) const {
  for (const std::string& p : prefixes) {
    size_t at = virtual_path_.find(p);
    if (at == std::string::npos) continue;
    // Must match at a path-component boundary and extend to one.
    bool starts_ok = at == 0 || virtual_path_[at - 1] == '/';
    size_t end = at + p.size();
    bool ends_ok = end == virtual_path_.size() || virtual_path_[end] == '/';
    if (starts_ok && ends_ok) return true;
  }
  return false;
}

void SourceFile::ScanNolints() {
  for (size_t ln = 0; ln < lines_.size(); ++ln) {
    const std::string& s = lines_[ln];
    for (const char* kw : {"NOLINTNEXTLINE", "NOLINT"}) {
      size_t at = s.find(kw);
      if (at == std::string::npos) continue;
      // "NOLINT" also matches inside "NOLINTNEXTLINE"; take the right one.
      bool nextline = s.compare(at, 14, "NOLINTNEXTLINE") == 0;
      if (!nextline && std::string(kw) == "NOLINTNEXTLINE") continue;

      Suppression sup;
      sup.line = static_cast<int>(ln + 1);
      sup.applies_to = sup.line + (nextline ? 1 : 0);
      size_t p = at + (nextline ? 14 : 6);
      if (p < s.size() && s[p] == '(') {
        size_t close = s.find(')', p);
        if (close != std::string::npos) {
          std::string list = s.substr(p + 1, close - p - 1);
          std::string item;
          std::istringstream is(list);
          while (std::getline(is, item, ',')) {
            size_t b = item.find_first_not_of(" \t");
            size_t e = item.find_last_not_of(" \t");
            if (b != std::string::npos) {
              sup.checks.push_back(item.substr(b, e - b + 1));
            }
          }
          p = close + 1;
        }
      } else {
        sup.checks.push_back("*");
      }
      // Justification: a `: non-empty text` after the check list.
      size_t colon = s.find(':', p);
      if (colon != std::string::npos &&
          s.find_first_not_of(" \t", colon + 1) != std::string::npos) {
        sup.has_justification = true;
      }
      nolints_.push_back(std::move(sup));
      break;  // one suppression comment per line is enough
    }
  }
}

// Computes, per token, the brace depth and the name of the enclosing
// function. Heuristic: at each '{' we look backwards for the
// `name ( params ) [qualifiers]` introducer, skipping over constructor
// initializer lists; scopes that don't look like functions (class bodies,
// namespaces, plain blocks) inherit the surrounding function name (empty at
// file scope).
void SourceFile::ComputeScopes() {
  const size_t n = tokens_.size();
  func_of_.assign(n, "");
  depth_of_.assign(n, 0);

  struct Scope {
    std::string func;
  };
  std::vector<Scope> stack;

  auto match_paren_back = [&](size_t close) -> size_t {
    // tokens_[close] == ")"; returns index of matching "(" or SIZE_MAX.
    int depth = 0;
    for (size_t j = close;; --j) {
      if (tokens_[j].kind == Tok::kPunct) {
        if (tokens_[j].text == ")") ++depth;
        else if (tokens_[j].text == "(") {
          if (--depth == 0) return j;
        }
      }
      if (j == 0) break;
    }
    return static_cast<size_t>(-1);
  };

  auto function_name_before = [&](size_t brace) -> std::string {
    // Walk backwards from the '{' over trailing qualifiers to a ')'.
    size_t j = brace;
    while (j > 0) {
      --j;
      const Token& t = tokens_[j];
      if (t.kind == Tok::kIdent &&
          (t.text == "const" || t.text == "noexcept" || t.text == "override" ||
           t.text == "final" || t.text == "mutable" || t.text == "try")) {
        continue;
      }
      // Trailing return type / init-list element boundary handling below.
      break;
    }
    // Skip over `-> Type` trailing returns: back up through idents, ::, <>,
    // &, * until we find ')' or give up.
    size_t guard = 0;
    while (j > 0 && tokens_[j].text != ")" && guard++ < 24) {
      const Token& t = tokens_[j];
      if (t.kind == Tok::kIdent || t.text == "::" || t.text == "<" ||
          t.text == ">" || t.text == "&" || t.text == "*" || t.text == "->") {
        --j;
        continue;
      }
      return "";
    }
    if (tokens_[j].text != ")") return "";

    // Possibly multiple paren groups backwards across a ctor init list:
    // `Ctor(args) : a_(x), b_{y} {`.
    for (int hops = 0; hops < 64; ++hops) {
      size_t open = match_paren_back(j);
      if (open == static_cast<size_t>(-1) || open == 0) return "";
      const Token& before = tokens_[open - 1];
      if (before.kind != Tok::kIdent || IsControlKeyword(before.text)) {
        return "";
      }
      // Init-list member? `: name (...)` or `, name (...)`.
      if (open >= 2) {
        const Token& pre = tokens_[open - 2];
        if (pre.text == "," || pre.text == ":") {
          // Continue backwards to the previous ')' before `pre name (`.
          size_t k = open - 2;
          while (k > 0 && tokens_[k].text != ")") {
            // Init lists contain only idents, commas, braces-free exprs; if
            // we hit ; or { we mis-guessed.
            if (tokens_[k].text == ";" || tokens_[k].text == "{") return "";
            --k;
          }
          if (tokens_[k].text != ")") return "";
          j = k;
          continue;
        }
      }
      return before.text;
    }
    return "";
  };

  std::string current;
  for (size_t i = 0; i < n; ++i) {
    depth_of_[i] = static_cast<int>(stack.size());
    func_of_[i] = current;
    const Token& t = tokens_[i];
    if (t.kind != Tok::kPunct) continue;
    if (t.text == "{") {
      std::string fn = function_name_before(i);
      stack.push_back({fn.empty() ? current : fn});
      current = stack.back().func;
    } else if (t.text == "}") {
      if (!stack.empty()) stack.pop_back();
      current = stack.empty() ? "" : stack.back().func;
    }
  }
}

void SourceFile::CollectUnorderedDecls() {
  const size_t n = tokens_.size();
  for (size_t i = 0; i + 1 < n; ++i) {
    const Token& t = tokens_[i];
    if (t.kind != Tok::kIdent) continue;
    if (t.text != "unordered_map" && t.text != "unordered_set" &&
        t.text != "unordered_multimap" && t.text != "unordered_multiset") {
      continue;
    }
    // Skip the template argument list, then expect the declared name.
    size_t j = i + 1;
    if (j >= n || !tokens_[j].Is("<")) continue;
    int depth = 0;
    for (; j < n; ++j) {
      if (tokens_[j].text == "<") ++depth;
      else if (tokens_[j].text == ">") {
        if (--depth == 0) {
          ++j;
          break;
        }
      } else if (tokens_[j].text == ">>") {
        depth -= 2;
        if (depth <= 0) {
          ++j;
          break;
        }
      } else if (tokens_[j].text == ";") {
        break;  // e.g. `using X = unordered_map<...>;` mid-scan safety
      }
    }
    if (j >= n || tokens_[j].kind != Tok::kIdent) continue;
    const Token& name = tokens_[j];
    if (j + 1 < n && (tokens_[j + 1].text == ";" || tokens_[j + 1].text == "=" ||
                      tokens_[j + 1].text == "{")) {
      unordered_names_.insert(name.text);
    }
  }
}

}  // namespace recraft::lint
