// Persistence-subsystem performance: batched append/fsync throughput and
// full recovery replay speed. Two modes, mirroring bench/simcore_events:
//
//   $ ./storage_wal                      # google-benchmark micros
//   $ ./storage_wal --json [path]        # fixed-size suite -> JSON
//   $ ./storage_wal --json --smoke       # CTest-sized run
//
// The --json suite times synchronous (fsync-per-record) appends, group-
// committed appends at several batch sizes (amortization is the headline
// number), snapshot install, and a cold-boot recovery replay, and writes
// BENCH_storage.json so CI can track the trajectory alongside
// BENCH_simperf.json.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "kv/service.h"
#include "storage/codec.h"
#include "storage/sim_disk.h"
#include "storage/wal_storage.h"

#if __has_include(<benchmark/benchmark.h>) && defined(RECRAFT_HAVE_BENCHMARK)
#include <benchmark/benchmark.h>
#define RECRAFT_GBENCH 1
#endif

namespace recraft::bench {
namespace {

using Clock = std::chrono::steady_clock;
using storage::HardState;
using storage::SimDisk;
using storage::WalStorage;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

raft::LogEntry MakeEntry(Index index, size_t value_bytes) {
  kv::Command cmd;
  cmd.op = kv::OpType::kPut;
  cmd.key = "key-" + std::to_string(index % 100000);
  cmd.value.assign(value_bytes, 'v');
  cmd.client_id = 1;
  cmd.seq = index;
  raft::LogEntry e;
  e.index = index;
  e.term = 1;
  e.payload = kv::EncodeCommand(cmd);
  return e;
}

// ---------------------------------------------------------------------------
// Workload kernels (shared by --json and the google-benchmark micros).

/// Append `n` entries; flush every `batch` appends (batch == 1 models
/// fsync-per-record, larger batches model group commit).
struct AppendWorkload {
  std::shared_ptr<SimDisk> disk = std::make_shared<SimDisk>();
  WalStorage wal;
  Index next = 1;
  size_t batch;
  size_t value_bytes;

  AppendWorkload(size_t batch_size, size_t vbytes)
      : wal(disk, nullptr,
            [] {
              WalStorage::Options o;
              o.flush_interval = 1000;  // manual flush: we drive the batch
              o.rewrite_slack_bytes = 1ull << 30;  // isolate append cost
              return o;
            }()),
        batch(batch_size),
        value_bytes(vbytes) {}

  void Step() {
    for (size_t i = 0; i < batch; ++i) {
      wal.OnLogAppend(MakeEntry(next++, value_bytes));
    }
    wal.Sync();
  }
};

/// Build a WAL with `entries` entries (plus a mid-stream snapshot) and time
/// a cold recovery replay from the disk bytes.
struct RecoveryWorkload {
  std::shared_ptr<SimDisk> disk = std::make_shared<SimDisk>();
  size_t entries;

  explicit RecoveryWorkload(size_t n, size_t value_bytes) : entries(n) {
    WalStorage::Options o;
    o.flush_interval = 1000;
    o.rewrite_slack_bytes = 1ull << 30;
    WalStorage wal(disk, nullptr, o);
    wal.PersistHardState(HardState{1, 2, 0});
    for (Index i = 1; i <= n; ++i) {
      wal.OnLogAppend(MakeEntry(i, value_bytes));
      if (i % 4096 == 0) wal.Sync();
    }
    wal.PersistHardState(HardState{1, 2, n});
    wal.Sync();
  }

  size_t Replay() const {
    WalStorage::Options o;
    o.flush_interval = 1000;
    WalStorage fresh(disk, nullptr, o);
    auto img = fresh.Load();
    return img.ok() ? img->entries.size() : 0;
  }
};

// ---------------------------------------------------------------------------
// --json mode.

struct JsonResult {
  std::string name;
  double value = 0;
  std::string unit;
};

void RunJsonSuite(const std::string& path, bool smoke) {
  std::vector<JsonResult> results;
  const size_t n = smoke ? 20000 : 200000;
  const size_t value_bytes = 128;

  double sync_rate = 0;
  {
    AppendWorkload work(1, value_bytes);
    auto t0 = Clock::now();
    for (size_t i = 0; i < n; ++i) work.Step();
    double dt = SecondsSince(t0);
    sync_rate = static_cast<double>(n) / dt;
    std::printf("append fsync-per-record : %10.0f entries/s (%zu fsyncs)\n",
                sync_rate, static_cast<size_t>(work.disk->stats().flushes));
    results.push_back({"append_sync_entries_per_sec", sync_rate, "1/s"});
  }
  double batched_rate = 0;
  for (size_t batch : {size_t{16}, size_t{128}}) {
    AppendWorkload work(batch, value_bytes);
    auto t0 = Clock::now();
    for (size_t i = 0; i < n / batch; ++i) work.Step();
    double dt = SecondsSince(t0);
    double rate = static_cast<double>((n / batch) * batch) / dt;
    std::printf("append group-commit %4zu: %10.0f entries/s (%zu fsyncs)\n",
                batch, rate, static_cast<size_t>(work.disk->stats().flushes));
    results.push_back({"append_batched_" + std::to_string(batch) +
                           "_entries_per_sec",
                       rate, "1/s"});
    batched_rate = rate;
  }
  if (sync_rate > 0) {
    results.push_back(
        {"group_commit_speedup", batched_rate / sync_rate, "x"});
  }
  {
    RecoveryWorkload work(n, value_bytes);
    auto t0 = Clock::now();
    size_t replayed = work.Replay();
    double dt = SecondsSince(t0);
    double rate = static_cast<double>(replayed) / dt;
    std::printf("recovery replay         : %10.0f entries/s (%zu entries, "
                "%.1f MiB wal)\n",
                rate, replayed,
                static_cast<double>(work.disk->DurableSize("wal")) /
                    (1024.0 * 1024.0));
    results.push_back({"recovery_replay_entries_per_sec", rate, "1/s"});
    results.push_back(
        {"recovery_replayed_entries", static_cast<double>(replayed), "1"});
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  for (size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f, "  \"%s\": {\"value\": %.3f, \"unit\": \"%s\"}%s\n",
                 results[i].name.c_str(), results[i].value,
                 results[i].unit.c_str(),
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

// ---------------------------------------------------------------------------
// google-benchmark micros.

#ifdef RECRAFT_GBENCH
void BM_AppendSync(benchmark::State& state) {
  AppendWorkload work(1, 128);
  for (auto _ : state) work.Step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AppendSync);

void BM_AppendGroupCommit(benchmark::State& state) {
  AppendWorkload work(static_cast<size_t>(state.range(0)), 128);
  for (auto _ : state) work.Step();
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AppendGroupCommit)->Arg(16)->Arg(128);

void BM_RecoveryReplay(benchmark::State& state) {
  RecoveryWorkload work(static_cast<size_t>(state.range(0)), 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(work.Replay());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecoveryReplay)->Arg(10000);
#endif  // RECRAFT_GBENCH

}  // namespace
}  // namespace recraft::bench

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  std::string path = "BENCH_storage.json";
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (json) {
    recraft::bench::RunJsonSuite(path, smoke);
    return 0;
  }
#ifdef RECRAFT_GBENCH
  int pargc = static_cast<int>(passthrough.size());
  ::benchmark::Initialize(&pargc, passthrough.data());
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
#else
  std::fprintf(stderr,
               "google-benchmark not available; use --json [path] mode\n");
  return 0;
#endif
}
