// Real-network performance: the reliable-UDP link in isolation, then the
// full daemon stack end to end. Two modes, mirroring bench/storage_wal:
//
//   $ ./net_loopback --json [path] --recraftd PATH   # suite -> JSON
//   $ ./net_loopback --json --smoke --recraftd PATH  # CTest-sized run
//
// The --json suite measures, all over 127.0.0.1:
//
//   * link micro — two in-process UdpTransports: one-way small-message
//     throughput through the windowed reliable link, and ping-pong RTT
//     p50/p99 (the floor under every consensus message exchange);
//   * e2e — a forked 3-process recraftd cluster driven by closed-loop
//     net::KvClient threads: client_ops_per_sec and per-op latency
//     p50/p99, the real-deployment analogue of bench/kv_service.
//
// Results land in BENCH_net.json so CI tracks the networking trajectory
// alongside the sim/storage/kv JSONs. Without --recraftd the e2e section
// is skipped (the link micro still runs).
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "kv/service.h"
#include "net/phonebook.h"
#include "net/udp_client.h"
#include "net/udp_clock.h"
#include "net/udp_transport.h"
#include "raft/messages.h"

namespace recraft::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct JsonResult {
  std::string name;
  double value = 0;
  std::string unit;
};

// ---------------------------------------------------------------------------
// Link micro: two UdpTransports in one process, real loopback sockets.

struct LinkPair {
  net::SystemClock clock;
  MetricRegistry m1, m2;
  std::unique_ptr<net::UdpTransport> t1, t2;

  LinkPair() {
    net::Phonebook placeholder = *net::Phonebook::Parse("9 127.0.0.1:1\n");
    uint16_t port1 = 0;
    uint16_t port2 = 0;
    {
      // Ephemeral probes learn two free ports, then release them so the
      // real transports can bind.
      net::UdpTransport probe1(1, placeholder, &clock, nullptr);
      net::UdpTransport probe2(2, placeholder, &clock, nullptr);
      port1 = probe1.bound_port();
      port2 = probe2.bound_port();
    }
    std::string book = "1 127.0.0.1:" + std::to_string(port1) +
                       "\n2 127.0.0.1:" + std::to_string(port2) + "\n";
    auto parsed = net::Phonebook::Parse(book);
    t1 = std::make_unique<net::UdpTransport>(1, *parsed, &clock, &m1);
    t2 = std::make_unique<net::UdpTransport>(2, *parsed, &clock, &m2);
    if (!t1->status().ok() || !t2->status().ok()) {
      std::fprintf(stderr, "net_loopback: socket setup failed\n");
      std::exit(1);
    }
  }

  void Pump() {
    t1->OnReadable();
    t2->OnReadable();
    t1->OnTimer();
    t2->OnTimer();
  }
};

/// One-way throughput: blast `n` small messages 1 -> 2 through the windowed
/// link (the window paces the socket; retransmission covers any kernel-side
/// drops) and busy-pump both ends until all arrive.
double LinkThroughput(size_t n, std::vector<JsonResult>* results) {
  LinkPair pair;
  size_t got = 0;
  pair.t2->Bind(2, [&got](NodeId, const raft::Message&, obs::TraceCtx) {
    ++got;
  });
  auto t0 = Clock::now();
  for (size_t i = 0; i < n; ++i) {
    raft::AppendReply r;
    r.from = 1;
    r.match = i;
    pair.t1->Send(1, 2, raft::MakeMessage(r));
  }
  while (got < n) pair.Pump();
  double dt = SecondsSince(t0);
  double rate = static_cast<double>(n) / dt;
  const net::ReliableLink* link = pair.t1->link(2);
  std::printf("link one-way throughput : %10.0f msgs/s (%zu msgs, "
              "%llu retransmits)\n",
              rate, n,
              static_cast<unsigned long long>(
                  link != nullptr ? link->counters().retransmits : 0));
  results->push_back({"link_msgs_per_sec", rate, "1/s"});
  return rate;
}

/// Ping-pong RTT: node 2 echoes from its delivery callback; one exchange in
/// flight at a time, so each sample is a clean message round trip through
/// encode -> socket -> reassemble -> decode, twice.
void LinkRtt(size_t rounds, std::vector<JsonResult>* results) {
  LinkPair pair;
  pair.t2->Bind(2, [&pair](NodeId, const raft::Message& m, obs::TraceCtx) {
    pair.t2->Send(2, 1, raft::MakeMessage(std::get<raft::AppendReply>(m)));
  });
  size_t pongs = 0;
  pair.t1->Bind(1, [&pongs](NodeId, const raft::Message&, obs::TraceCtx) {
    ++pongs;
  });
  LatencyRecorder rtt;
  for (size_t i = 0; i < rounds; ++i) {
    raft::AppendReply ping;
    ping.from = 1;
    ping.match = i;
    auto t0 = Clock::now();
    pair.t1->Send(1, 2, raft::MakeMessage(ping));
    size_t want = pongs + 1;
    while (pongs < want) pair.Pump();
    rtt.Record(static_cast<Duration>(SecondsSince(t0) * 1e6));
  }
  std::printf("link ping-pong RTT      : p50 %llu us, p99 %llu us "
              "(%zu rounds)\n",
              static_cast<unsigned long long>(rtt.Percentile(50)),
              static_cast<unsigned long long>(rtt.Percentile(99)), rounds);
  results->push_back(
      {"link_rtt_p50_us", static_cast<double>(rtt.Percentile(50)), "us"});
  results->push_back(
      {"link_rtt_p99_us", static_cast<double>(rtt.Percentile(99)), "us"});
}

// ---------------------------------------------------------------------------
// End to end: a forked 3-process recraftd cluster on loopback.

pid_t SpawnDaemon(const std::string& exe, NodeId id, const std::string& hosts,
                  const std::string& data, const std::string& log) {
  pid_t pid = fork();
  if (pid != 0) return pid;
  int fd = open(log.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd >= 0) {
    dup2(fd, 1);
    dup2(fd, 2);
    close(fd);
  }
  std::string id_s = std::to_string(id);
  execl(exe.c_str(), exe.c_str(), "--id", id_s.c_str(), "--hosts",
        hosts.c_str(), "--data", data.c_str(), "--cluster", "1,2,3",
        static_cast<char*>(nullptr));
  _exit(127);
}

struct E2eStats {
  uint64_t ops = 0;
  uint64_t errors = 0;
  LatencyRecorder latency;
};

/// Closed-loop client: 80% puts / 20% gets over a private key range, one op
/// in flight at a time (KvClient stamps the dedup session on writes).
void RunE2eClient(NodeId client_id, const net::Phonebook& book, uint64_t ops,
                  E2eStats* out) {
  net::KvClient client(client_id, book);
  for (uint64_t j = 0; j < ops; ++j) {
    kv::Command cmd;
    cmd.key = "bench/c" + std::to_string(client_id) + "/k" +
              std::to_string(j % 64);
    if (j % 5 == 4) {
      cmd.op = kv::OpType::kGet;
    } else {
      cmd.op = kv::OpType::kPut;
      cmd.value.assign(64, 'v');
    }
    auto t0 = Clock::now();
    kv::Response r = client.Do(cmd, 30 * kSecond);
    out->latency.Record(static_cast<Duration>(SecondsSince(t0) * 1e6));
    if (!r.status.ok() && r.status.code() != Code::kNotFound) ++out->errors;
    ++out->ops;
  }
}

bool RunE2e(const std::string& recraftd, uint64_t clients,
            uint64_t ops_per_client, std::vector<JsonResult>* results) {
  namespace fs = std::filesystem;
  char tmpl[] = "/tmp/net_loopback.XXXXXX";
  const char* work_c = mkdtemp(tmpl);
  if (work_c == nullptr) {
    std::fprintf(stderr, "net_loopback: mkdtemp failed\n");
    return false;
  }
  fs::path work(work_c);

  uint16_t base_port =
      static_cast<uint16_t>(21000 + (getpid() * 7) % 2000);
  std::string hosts_text;
  for (NodeId id = 1; id <= 3; ++id) {
    hosts_text += std::to_string(id) + " 127.0.0.1:" +
                  std::to_string(base_port + id) + "\n";
    fs::create_directories(work / ("n" + std::to_string(id)));
  }
  std::string hosts_path = (work / "hosts.txt").string();
  std::FILE* hf = std::fopen(hosts_path.c_str(), "w");
  std::fputs(hosts_text.c_str(), hf);
  std::fclose(hf);

  std::vector<pid_t> daemons;
  for (NodeId id = 1; id <= 3; ++id) {
    std::string n = "n" + std::to_string(id);
    daemons.push_back(SpawnDaemon(recraftd, id, hosts_path,
                                  (work / n).string(),
                                  (work / (n + ".log")).string()));
  }
  auto shutdown = [&daemons] {
    for (pid_t pid : daemons) kill(pid, SIGKILL);
    for (pid_t pid : daemons) waitpid(pid, nullptr, 0);
  };

  auto book = net::Phonebook::Parse(hosts_text);

  // Wait for a leader: the same probe read recraft-cli's `leader` uses.
  bool up = false;
  {
    net::KvClient probe(static_cast<NodeId>(3999), *book);
    for (int attempt = 0; attempt < 60 && !up; ++attempt) {
      kv::Command c;
      c.op = kv::OpType::kGet;
      c.key = "\x01__leader_probe";
      kv::Response r = probe.Do(c, 500 * kMillisecond);
      up = r.status.ok() || r.status.code() == Code::kNotFound;
    }
  }
  if (!up) {
    std::fprintf(stderr, "net_loopback: no leader; daemon logs in %s\n",
                 work_c);
    shutdown();
    return false;
  }

  std::vector<E2eStats> stats(clients);
  std::vector<std::thread> threads;
  auto t0 = Clock::now();
  for (uint64_t i = 0; i < clients; ++i) {
    threads.emplace_back(RunE2eClient, static_cast<NodeId>(3000 + i),
                         std::cref(*book), ops_per_client, &stats[i]);
  }
  for (auto& t : threads) t.join();
  double dt = SecondsSince(t0);

  shutdown();
  fs::remove_all(work);

  E2eStats total;
  for (const auto& s : stats) {
    total.ops += s.ops;
    total.errors += s.errors;
    total.latency.Merge(s.latency);
  }
  double rate = static_cast<double>(total.ops) / dt;
  std::printf("e2e 3-process cluster   : %10.0f ops/s, p50 %llu us, "
              "p99 %llu us (%llu ops, %llu errors)\n",
              rate,
              static_cast<unsigned long long>(total.latency.Percentile(50)),
              static_cast<unsigned long long>(total.latency.Percentile(99)),
              static_cast<unsigned long long>(total.ops),
              static_cast<unsigned long long>(total.errors));
  results->push_back({"e2e_client_ops_per_sec", rate, "1/s"});
  results->push_back({"e2e_op_p50_us",
                      static_cast<double>(total.latency.Percentile(50)),
                      "us"});
  results->push_back({"e2e_op_p99_us",
                      static_cast<double>(total.latency.Percentile(99)),
                      "us"});
  return total.errors == 0;
}

// ---------------------------------------------------------------------------

void WriteJson(const std::string& path,
               const std::vector<JsonResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  for (size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f, "  \"%s\": {\"value\": %.3f, \"unit\": \"%s\"}%s\n",
                 results[i].name.c_str(), results[i].value,
                 results[i].unit.c_str(),
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace recraft::bench

int main(int argc, char** argv) {
  std::string path = "BENCH_net.json";
  std::string recraftd;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 < argc && argv[i + 1][0] != '-') path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--recraftd") == 0 && i + 1 < argc) {
      recraftd = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json [path]] [--smoke] [--recraftd PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<recraft::bench::JsonResult> results;
  recraft::bench::LinkThroughput(smoke ? 20000 : 200000, &results);
  recraft::bench::LinkRtt(smoke ? 1000 : 10000, &results);

  bool ok = true;
  if (!recraftd.empty()) {
    ok = recraft::bench::RunE2e(recraftd, /*clients=*/4,
                                smoke ? 500 : 5000, &results);
  } else {
    std::printf("e2e section skipped (no --recraftd)\n");
  }

  recraft::bench::WriteJson(path, results);
  return ok ? 0 : 1;
}
