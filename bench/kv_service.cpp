// Service-API microbench: what a linearizable read costs on each path.
//
//   $ ./kv_service                 # full run, human-readable
//   $ ./kv_service --json [path]   # also write BENCH_kv.json
//   $ ./kv_service --smoke         # CTest-sized run
//
// Three closed-loop fleets drive a 3-node cluster: gets through the log
// (every read = a log entry + replication fan-out), gets through ReadIndex
// (one probe round amortized over a batch, zero log entries — asserted),
// and bounded scans. Closed-loop fleets converge to the same ops/sim-s on
// both read paths (clients are latency-bound, not throughput-bound), so the
// headline is the *protocol* cost: AppendEntries RPCs per 1000 ops, and the
// reduction factor ReadIndex buys. A store-side section measures the
// engine itself (gets/scans per wall second, no simulator in the loop).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "harness/client.h"
#include "harness/world.h"
#include "kv/kv.h"

namespace recraft {
namespace {

using harness::ClientFleet;
using harness::ClientOptions;
using harness::Router;
using harness::World;
using harness::WorldOptions;

struct JsonResult {
  std::string name;
  double value = 0;
  std::string unit;
};

struct RunStats {
  double ops_per_sim_sec = 0;
  uint64_t log_entries_added = 0;
  uint64_t ops = 0;
  double appends_per_kop = 0;  // leader AppendEntries RPCs per 1000 ops
  Duration lat_p50 = 0;        // pooled client latency (sim microseconds)
  Duration lat_p99 = 0;
  Duration lat_p999 = 0;
};

RunStats RunFleet(uint64_t seed, size_t preload, Duration run_for,
                  ClientOptions copts) {
  WorldOptions wopts;
  wopts.seed = seed;
  World w(wopts);
  auto c = w.CreateCluster(3);
  if (!w.WaitForLeader(c)) {
    std::fprintf(stderr, "no leader\n");
    std::exit(1);
  }
  char key[32];
  for (size_t i = 0; i < preload; ++i) {
    std::snprintf(key, sizeof(key), "k%08zu", i % copts.key_space);
    if (!w.Put(c, key, std::string(copts.value_bytes, 'v')).ok()) {
      std::fprintf(stderr, "preload failed\n");
      std::exit(1);
    }
  }
  Router router;
  router.SetClusters({Router::Entry{c, KeyRange::Full()}});
  ClientFleet fleet(w, router, 8, copts);
  NodeId leader = w.LeaderOf(c);
  const Index log_before = w.node(leader).last_log_index();
  const uint64_t appends_before =
      w.node(leader).counters().Get("repl.append_sent");
  const TimePoint t0 = w.now();
  fleet.Start();
  w.RunFor(run_for);
  fleet.Stop();
  w.RunFor(100 * kMillisecond);  // drain in-flight replies

  RunStats out;
  out.ops = fleet.TotalOps();
  out.ops_per_sim_sec = static_cast<double>(out.ops) /
                        (static_cast<double>(w.now() - t0) / kSecond);
  LatencyRecorder pooled = fleet.PooledLatency();
  if (pooled.count() > 0) {
    out.lat_p50 = pooled.Percentile(50.0);
    out.lat_p99 = pooled.Percentile(99.0);
    out.lat_p999 = pooled.Percentile(99.9);
  }
  NodeId l = w.LeaderOf(c);
  if (l == leader && out.ops > 0) {
    out.log_entries_added = w.node(l).last_log_index() - log_before;
    out.appends_per_kop =
        1000.0 *
        static_cast<double>(w.node(l).counters().Get("repl.append_sent") -
                            appends_before) /
        static_cast<double>(out.ops);
  }
  return out;
}

int Run(bool json, const std::string& path, bool smoke) {
  const Duration run_for = (smoke ? 2 : 8) * kSecond;
  const size_t preload = smoke ? 500 : 2000;
  std::vector<JsonResult> results;

  ClientOptions base;
  base.key_space = preload;
  base.value_bytes = 64;
  base.batch_size = 4;

  auto wall0 = std::chrono::steady_clock::now();

  ClientOptions log_reads = base;
  log_reads.get_fraction = 1.0;
  log_reads.reads_via_log = true;
  RunStats log_run = RunFleet(11, preload, run_for, log_reads);
  std::printf(
      "gets via log       : %10.0f ops/sim-s (%llu log entries, "
      "%.0f appends/kop)\n",
      log_run.ops_per_sim_sec,
      static_cast<unsigned long long>(log_run.log_entries_added),
      log_run.appends_per_kop);
  results.push_back({"logread_gets_per_sim_sec", log_run.ops_per_sim_sec,
                     "1/s"});
  results.push_back({"logread_appends_per_kop", log_run.appends_per_kop,
                     "1"});

  ClientOptions ri_reads = base;
  ri_reads.get_fraction = 1.0;
  RunStats ri_run = RunFleet(11, preload, run_for, ri_reads);
  std::printf(
      "gets via ReadIndex : %10.0f ops/sim-s (%llu log entries, "
      "%.0f appends/kop)\n",
      ri_run.ops_per_sim_sec,
      static_cast<unsigned long long>(ri_run.log_entries_added),
      ri_run.appends_per_kop);
  results.push_back({"readindex_gets_per_sim_sec", ri_run.ops_per_sim_sec,
                     "1/s"});
  results.push_back({"readindex_appends_per_kop", ri_run.appends_per_kop,
                     "1"});
  results.push_back({"readindex_log_entries",
                     static_cast<double>(ri_run.log_entries_added), "1"});
  if (ri_run.log_entries_added != 0) {
    std::fprintf(stderr,
                 "FAIL: ReadIndex gets appended %llu log entries (want 0)\n",
                 static_cast<unsigned long long>(ri_run.log_entries_added));
    return 1;
  }
  // The headline: how many replication RPCs ReadIndex saves per op. (The
  // old `readindex_speedup` ops/s ratio sat at ~1.0x — closed-loop fleets
  // equalize throughput, so it measured nothing.)
  if (ri_run.appends_per_kop > 0) {
    double reduction = log_run.appends_per_kop / ri_run.appends_per_kop;
    std::printf("append reduction   : %10.1fx fewer AppendEntries per op\n",
                reduction);
    results.push_back({"append_reduction", reduction, "x"});
  }

  // Client-latency distribution under a skewed YCSB-style workload: 50/50
  // get/put, Zipfian theta 0.99 (most traffic on a few hot keys). The
  // percentile axes come from the same pooled LatencyRecorder the sweep
  // verdicts report, so bench and chaos numbers are comparable.
  ClientOptions zipf = base;
  zipf.get_fraction = 0.5;
  zipf.zipf_theta = 0.99;
  RunStats zipf_run = RunFleet(13, preload, run_for, zipf);
  std::printf(
      "zipf 50/50 (θ=.99) : %10.0f ops/sim-s  lat p50=%lldus p99=%lldus "
      "p999=%lldus\n",
      zipf_run.ops_per_sim_sec, static_cast<long long>(zipf_run.lat_p50),
      static_cast<long long>(zipf_run.lat_p99),
      static_cast<long long>(zipf_run.lat_p999));
  results.push_back({"zipf_ops_per_sim_sec", zipf_run.ops_per_sim_sec, "1/s"});
  results.push_back(
      {"zipf_client_lat_p50_us", static_cast<double>(zipf_run.lat_p50), "us"});
  results.push_back(
      {"zipf_client_lat_p99_us", static_cast<double>(zipf_run.lat_p99), "us"});
  results.push_back({"zipf_client_lat_p999_us",
                     static_cast<double>(zipf_run.lat_p999), "us"});

  ClientOptions scans = base;
  scans.scan_fraction = 1.0;
  scans.scan_limit = 16;
  RunStats scan_run = RunFleet(12, preload, run_for, scans);
  double entries_per_sec =
      scan_run.ops_per_sim_sec * static_cast<double>(scans.scan_limit);
  std::printf("scans (limit 16)   : %10.0f scans/sim-s (~%.0f entries/s)\n",
              scan_run.ops_per_sim_sec, entries_per_sec);
  results.push_back({"scans_per_sim_sec", scan_run.ops_per_sim_sec, "1/s"});
  results.push_back({"scan_entries_per_sim_sec", entries_per_sec, "1/s"});

  // Store-side axes: the engine alone, per wall second — this is where the
  // B+-tree swap shows up directly (the sim-side numbers above are protocol-
  // latency-bound and barely move with engine speed).
  {
    const size_t store_keys = smoke ? 50000 : 500000;
    kv::Store store;
    char k[24];
    kv::Command cmd;
    cmd.op = kv::OpType::kPut;
    cmd.value = std::string(64, 'v');
    for (size_t i = 0; i < store_keys; ++i) {
      std::snprintf(k, sizeof(k), "k%010zu", i);
      cmd.key = k;
      store.Apply(cmd);
    }
    Rng rng(31);
    const size_t gets = store_keys * 2;
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < gets; ++i) {
      std::snprintf(k, sizeof(k), "k%010llu",
                    static_cast<unsigned long long>(
                        rng.Uniform(0, store_keys - 1)));
      (void)store.Get(k);
    }
    double gsecs = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    double store_gets =
        gsecs > 0 ? static_cast<double>(gets) / gsecs : 0;
    const size_t nscans = store_keys / 100;
    uint64_t scanned = 0;
    t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < nscans; ++i) {
      std::snprintf(k, sizeof(k), "k%010llu",
                    static_cast<unsigned long long>(
                        rng.Uniform(0, store_keys - 1)));
      scanned += store.Scan(k, "", 100).size();
    }
    double ssecs = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    double store_scan_entries =
        ssecs > 0 ? static_cast<double>(scanned) / ssecs : 0;
    std::printf(
        "store (%zu keys)  : %10.0f gets/wall-s, %.0f scan entries/wall-s\n",
        store.size(), store_gets, store_scan_entries);
    results.push_back({"store_gets_per_wall_sec", store_gets, "1/s"});
    results.push_back(
        {"store_scan_entries_per_wall_sec", store_scan_entries, "1/s"});
  }

  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall0)
                    .count();
  results.push_back({"bench_wall_seconds", wall, "s"});

  if (json) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    for (size_t i = 0; i < results.size(); ++i) {
      std::fprintf(f, "  \"%s\": {\"value\": %.3f, \"unit\": \"%s\"}%s\n",
                   results[i].name.c_str(), results[i].value,
                   results[i].unit.c_str(),
                   i + 1 == results.size() ? "" : ",");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace recraft

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  std::string path = "BENCH_kv.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  return recraft::Run(json, path, smoke);
}
