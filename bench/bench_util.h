// Shared configuration for the paper-reproduction benches: a "cloud
// profile" world that approximates the paper's testbed (§VII): ~5 ms one-way
// datacenter-ish latency (so a consensus step lands near the measured
// 11.4 ms), bandwidth-limited snapshot transfers (Cinder-on-Ceph volumes are
// slow), 512 B requests, 100 ms election timeouts.
#pragma once

#include <cstdio>
#include <string>

#include "harness/checkers.h"
#include "harness/client.h"
#include "harness/world.h"

namespace recraft::bench {

inline harness::WorldOptions CloudProfile(uint64_t seed = 1) {
  harness::WorldOptions o;
  o.seed = seed;
  o.net.base_latency = 5 * kMillisecond;
  o.net.jitter = 500;  // +/- 0.5 ms
  o.net.bandwidth_bytes_per_sec = 32ULL << 20;  // 32 MB/s volume-ish
  o.node.tick_interval = 10 * kMillisecond;
  o.node.heartbeat_ticks = 2;              // 20 ms heartbeats
  o.node.election_timeout_min_ticks = 10;  // 100-200 ms
  o.node.election_timeout_max_ticks = 20;
  return o;
}

inline harness::ClientOptions PaperClient() {
  harness::ClientOptions c;
  c.value_bytes = 512;  // the paper uses 512 B requests
  c.key_space = 100000;
  return c;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline double Ms(Duration d) { return static_cast<double>(d) / 1000.0; }
inline double Sec(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

}  // namespace recraft::bench
