// Figure 5: the number of additional votes ReCraft requires during the
// intermediate membership-change configuration, compared to the best and
// worst cases of Raft's joint consensus, for every reconfiguration between
// cluster sizes 2..9.
//
// ReCraft's intermediate quorum: Q_new-q = max(N_old, N_new) - Q_old + 1.
// JC best:  V = max(Q_old, Q_new); worst: V = |N_new - N_old| +
// min(Q_old, Q_new). Values are analytic; a sample of cells is cross-checked
// against the implementation's QuorumSpec accounting.
#include "bench/bench_util.h"
#include "raft/config.h"

namespace recraft::bench {
namespace {

using raft::AddResizeQuorum;
using raft::JointBestVotes;
using raft::JointWorstVotes;
using raft::MajorityOf;
using raft::RemoveResizeQuorum;

int RecraftVotes(size_t n_old, size_t n_new) {
  size_t q = n_new > n_old ? AddResizeQuorum(n_old, n_new - n_old)
                           : RemoveResizeQuorum(n_old);
  // A one-step change whose Q_new-q equals the new majority skips the
  // intermediate configuration entirely.
  if (q == MajorityOf(n_new)) q = MajorityOf(n_new);
  return static_cast<int>(q);
}

void PrintMatrix(const char* title, bool versus_best) {
  std::printf("\n%s\n         ", title);
  for (size_t n_old = 2; n_old <= 9; ++n_old) {
    std::printf("Cold=%zu ", n_old);
  }
  std::printf("\n");
  for (size_t n_new = 2; n_new <= 9; ++n_new) {
    std::printf("Cnew=%zu  ", n_new);
    for (size_t n_old = 2; n_old <= 9; ++n_old) {
      if (n_old == n_new) {
        std::printf("%6s ", "-");
        continue;
      }
      // 5 -> 2 style shrinks (r >= Q_old) need chained removals; mark them.
      if (n_new < n_old && n_old - n_new >= MajorityOf(n_old)) {
        std::printf("%6s ", "multi");
        continue;
      }
      int rc = RecraftVotes(n_old, n_new);
      int jc = static_cast<int>(versus_best ? JointBestVotes(n_old, n_new)
                                            : JointWorstVotes(n_old, n_new));
      std::printf("%6d ", rc - jc);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace recraft::bench

int main() {
  using namespace recraft::bench;
  using namespace recraft::raft;
  PrintHeader(
      "Figure 5: extra votes of ReCraft vs joint consensus (negative = "
      "ReCraft needs fewer)");
  PrintMatrix("Compared to JC best cases:", /*versus_best=*/true);
  PrintMatrix("Compared to JC worst cases:", /*versus_best=*/false);

  // Cross-check a few cells against the implementation's quorum machinery.
  std::printf("\ncross-checks against QuorumSpec:\n");
  {
    // Fig. 1: 2 -> 5. ReCraft C_new-q: fixed quorum 4 of 5.
    auto rc = QuorumSpec::Fixed({1, 2, 3, 4, 5}, AddResizeQuorum(2, 3));
    auto jc = QuorumSpec::JointOldNew({1, 2}, {1, 2, 3, 4, 5});
    std::printf("  2->5: ReCraft needs %zu votes; JC best %zu / worst %zu\n",
                rc.MinSatisfyingVotes(), jc.MinSatisfyingVotes(),
                JointWorstVotes(2, 5));
  }
  {
    // 5 -> 3 removal.
    auto rc = QuorumSpec::Fixed({1, 2, 3}, RemoveResizeQuorum(5));
    auto jc = QuorumSpec::JointOldNew({1, 2, 3, 4, 5}, {1, 2, 3});
    std::printf("  5->3: ReCraft needs %zu votes; JC best %zu / worst %zu\n",
                rc.MinSatisfyingVotes(), jc.MinSatisfyingVotes(),
                JointWorstVotes(5, 3));
  }
  return 0;
}
