// §VII-E: membership change performance. The cost is dominated by the number
// of consensus steps; this bench measures the average consensus-step commit
// latency and then, for each practical transition between cluster sizes 2-5,
// the steps and wall time taken by the AR-RPC (one node per step), Raft
// joint consensus (two steps) and ReCraft's Add/RemoveAndResize (+
// ResizeQuorum when needed).
#include "bench/bench_util.h"

namespace recraft::bench {
namespace {

struct SchemeResult {
  int steps = -1;
  double ms = 0;
};

std::vector<NodeId> TargetMembers(std::vector<NodeId> current, size_t to,
                                  std::vector<NodeId>& spares) {
  std::vector<NodeId> target = current;
  while (target.size() > to) target.pop_back();
  while (target.size() < to) {
    target.push_back(spares.back());
    spares.pop_back();
  }
  return target;
}

bool Settled(harness::World& w, const std::vector<NodeId>& target,
             Duration timeout) {
  std::vector<NodeId> goal = target;
  std::sort(goal.begin(), goal.end());
  return w.RunUntil(
      [&]() {
        NodeId l = w.LeaderOf(goal);
        if (l == kNoNode) return false;
        const auto& n = w.node(l);
        return n.config().members == goal && n.config().fixed_quorum == 0 &&
               !n.config().ReconfigPending() &&
               n.commit_index() >= n.log().last_index();
      },
      timeout);
}

/// Run one transition with the given scheme; returns steps and latency.
SchemeResult RunTransition(const char* scheme, size_t from, size_t to,
                           uint64_t seed) {
  auto opts = CloudProfile(seed);
  opts.node.auto_resize_quorum = true;
  opts.node.auto_joint_leave = true;
  harness::World w(opts);
  auto cluster = w.CreateCluster(from);
  if (!w.WaitForLeader(cluster)) return {};
  if (!w.Put(cluster, "warm", "x").ok()) return {};
  std::vector<NodeId> spares;
  for (int i = 0; i < 8; ++i) spares.push_back(w.CreateSpareNode());
  auto target = TargetMembers(cluster, to, spares);

  SchemeResult res;
  TimePoint t0 = w.now();
  std::string s = scheme;
  if (s == "recraft") {
    auto steps = w.AdminResizeTo(cluster, target, 60 * kSecond);
    if (!steps.ok()) return {};
    if (!Settled(w, target, 30 * kSecond)) return {};
    // Count the chained ResizeQuorum steps from the leader's log.
    NodeId l = w.LeaderOf(target);
    int conf_steps = 0;
    const auto& log = w.node(l).log();
    for (Index i = log.first_index(); i <= log.last_index(); ++i) {
      if (std::holds_alternative<raft::ConfMember>(log.At(i).payload)) {
        ++conf_steps;
      }
    }
    res.steps = conf_steps;
  } else if (s == "ar-rpc") {
    // One node at a time.
    std::vector<NodeId> current = cluster;
    int steps = 0;
    while (current != target) {
      std::vector<NodeId> next = current;
      raft::MemberChange mc;
      bool add = false;
      for (NodeId n : target) {
        if (std::find(current.begin(), current.end(), n) == current.end()) {
          mc.kind = raft::MemberChangeKind::kAddServer;
          mc.nodes = {n};
          next.push_back(n);
          add = true;
          break;
        }
      }
      if (!add) {
        for (NodeId n : current) {
          if (std::find(target.begin(), target.end(), n) == target.end()) {
            mc.kind = raft::MemberChangeKind::kRemoveServer;
            mc.nodes = {n};
            next.erase(std::remove(next.begin(), next.end(), n), next.end());
            break;
          }
        }
      }
      if (!w.AdminMemberChange(current, mc, 20 * kSecond).ok()) return {};
      ++steps;
      if (!Settled(w, next, 20 * kSecond)) return {};
      current = next;
      std::sort(current.begin(), current.end());
      std::sort(target.begin(), target.end());
    }
    res.steps = steps;
  } else {  // joint consensus
    raft::MemberChange mc;
    mc.kind = raft::MemberChangeKind::kJointEnter;
    mc.nodes = target;
    if (!w.AdminMemberChange(cluster, mc, 30 * kSecond).ok()) return {};
    if (!Settled(w, target, 30 * kSecond)) return {};
    res.steps = 2;  // C_old,new then C_new
  }
  res.ms = Ms(w.now() - t0);
  return res;
}

}  // namespace
}  // namespace recraft::bench

int main() {
  using namespace recraft;
  using namespace recraft::bench;
  PrintHeader("Sec VII-E: membership change — consensus steps and latency");

  // Average consensus step latency (commit of one entry under load-free
  // 3-node cluster), the paper's 11.4 ms analogue.
  {
    harness::World w(CloudProfile(7));
    auto c = w.CreateCluster(3);
    (void)w.WaitForLeader(c);
    (void)w.Put(c, "w", "x");
    TimePoint t0 = w.now();
    const int kOps = 50;
    for (int i = 0; i < kOps; ++i) {
      (void)w.Put(c, "k" + std::to_string(i), "v");
    }
    std::printf("consensus step latency: %.1f ms (paper: 11.4 ms)\n",
                Ms(w.now() - t0) / kOps);
  }

  std::printf("\n%-8s | %-18s | %-18s | %-18s\n", "change", "AR-RPC",
              "JointConsensus", "ReCraft");
  std::printf("%-8s | %-8s %-9s | %-8s %-9s | %-8s %-9s\n", "", "steps",
              "ms", "steps", "ms", "steps", "ms");
  struct Case {
    size_t from, to;
  };
  for (Case c : {Case{3, 4}, Case{3, 5}, Case{2, 5}, Case{4, 3}, Case{5, 3},
                 Case{5, 2}}) {
    auto ar = RunTransition("ar-rpc", c.from, c.to, 100 + c.from * 10 + c.to);
    auto jc = RunTransition("jc", c.from, c.to, 200 + c.from * 10 + c.to);
    auto rc =
        RunTransition("recraft", c.from, c.to, 300 + c.from * 10 + c.to);
    std::printf("%zu -> %zu   | %-8d %-9.1f | %-8d %-9.1f | %-8d %-9.1f\n",
                c.from, c.to, ar.steps, ar.ms, jc.steps, jc.ms, rc.steps,
                rc.ms);
  }
  std::printf(
      "\npaper: ReCraft <= both baselines for sizes 2..5, except 5 -> 2 "
      "(one extra step vs JC)\n");
  return 0;
}
