// Table I: the minimum number of node failures that completely stops a
// split or merge, for ReCraft (per protocol phase) and the TC emulation
// (non-replicated CM vs replicated CM).
//
// Each cell is verified empirically: the bench injects the claimed-minimal
// failure pattern and checks the operation stalls, and injects one fewer
// failure and checks the operation completes. Subcluster sizes are 3
// (f_sub = 1); the initial 2-way cluster has 6 nodes (f_old = 2).
#include "bench/bench_util.h"
#include "tc/cluster_manager.h"

namespace recraft::bench {
namespace {

constexpr Duration kVerdictWindow = 30 * kSecond;

struct Setup {
  std::unique_ptr<harness::World> w;
  std::vector<NodeId> cluster;
  std::vector<std::vector<NodeId>> groups;
  std::vector<std::string> keys{"k00050000"};
};

Setup MakeSplitSetup(uint64_t seed) {
  Setup s;
  s.w = std::make_unique<harness::World>(CloudProfile(seed));
  s.cluster = s.w->CreateCluster(6);
  (void)s.w->WaitForLeader(s.cluster);
  (void)s.w->Put(s.cluster, "a", "1");
  s.groups = {{s.cluster[0], s.cluster[1], s.cluster[2]},
              {s.cluster[3], s.cluster[4], s.cluster[5]}};
  return s;
}

bool SplitCompleted(harness::World& w, const std::vector<NodeId>& cluster) {
  for (NodeId id : cluster) {
    if (w.IsCrashed(id)) continue;
    if (w.node(id).epoch() == 0) return false;
  }
  return true;
}

/// Fire a split asynchronously and crash `victims` while the protocol is in
/// `phase` ("joint" = before C_joint commits, "leaving" = after C_new is
/// appended). Returns true if the split still completed on the survivors.
bool RunSplitWithCrashes(uint64_t seed, const char* phase,
                         std::function<std::vector<NodeId>(const Setup&,
                                                           NodeId leader)>
                             pick_victims) {
  Setup s = MakeSplitSetup(seed);
  auto& w = *s.w;
  NodeId leader = w.LeaderOf(s.cluster);
  raft::AdminSplit body;
  body.groups = s.groups;
  body.split_keys = s.keys;
  raft::ClientRequest req;
  req.req_id = w.NextReqId();
  req.from = harness::kAdminId;
  req.body = body;
  auto msg = raft::MakeMessage(raft::Message(req));
  w.net().Send(harness::kAdminId, leader, msg, msg.wire_bytes());
  if (std::string(phase) == "joint") {
    // Crash before C_joint can commit: immediately after the proposal.
    w.RunUntil(
        [&]() {
          return w.node(leader).config().mode != raft::ConfigMode::kStable;
        },
        5 * kSecond);
  } else {
    w.RunUntil(
        [&]() {
          for (NodeId id : s.cluster) {
            if (w.node(id).config().mode == raft::ConfigMode::kSplitLeaving) {
              return true;
            }
          }
          return false;
        },
        5 * kSecond);
  }
  for (NodeId v : pick_victims(s, leader)) w.Crash(v);
  w.RunUntil([&]() { return SplitCompleted(w, s.cluster); }, kVerdictWindow);
  return SplitCompleted(w, s.cluster);
}

/// `count` victims from the cluster avoiding the leader (the minimum-failure
/// analysis concerns quorum loss, not killing the request in flight —
/// ReCraft tolerates leader failures too, via the Raft recovery the other
/// cells exercise).
std::vector<NodeId> VictimsAvoidingLeader(const std::vector<NodeId>& from,
                                          NodeId leader, size_t count) {
  std::vector<NodeId> v;
  for (NodeId id : from) {
    if (id != leader && v.size() < count) v.push_back(id);
  }
  return v;
}

bool MergeCompleted(harness::World& w, const std::vector<NodeId>& all) {
  int ok = 0;
  for (NodeId id : all) {
    if (w.IsCrashed(id)) continue;
    const auto& n = w.node(id);
    if (n.config().members == all && !n.merge_exchange_pending()) ++ok;
  }
  return ok >= 4;  // a quorum of the 6-node merged cluster is live
}

bool RunMergeWithCrashes(uint64_t seed, int crash_in_sub,
                         size_t crash_count) {
  auto w = std::make_unique<harness::World>(CloudProfile(seed));
  auto ranges = *KeyRange::Full().SplitAt({"k00050000"});
  auto c1 = w->CreateCluster(3, ranges[0]);
  auto c2 = w->CreateCluster(3, ranges[1]);
  (void)w->WaitForLeader(c1);
  (void)w->WaitForLeader(c2);
  (void)w->Put(c1, "a", "1");
  (void)w->Put(c2, "z", "2");
  std::vector<NodeId> all = c1;
  all.insert(all.end(), c2.begin(), c2.end());
  std::sort(all.begin(), all.end());

  auto plan = w->MakeMergeDraft({c1, c2});
  if (!plan.ok()) return false;
  raft::ClientRequest req;
  req.req_id = w->NextReqId();
  req.from = harness::kAdminId;
  req.body = raft::AdminMerge{*plan};
  auto msg = raft::MakeMessage(raft::Message(req));
  w->net().Send(harness::kAdminId, w->LeaderOf(c1), msg, msg.wire_bytes());
  // Crash during the 2PC (prepare underway).
  w->RunUntil(
      [&]() {
        for (NodeId id : c1) {
          if (w->node(id).config().merge_tx.has_value()) return true;
        }
        return false;
      },
      5 * kSecond);
  const auto& sub = crash_in_sub == 0 ? c1 : c2;
  for (size_t i = 0; i < crash_count && i < sub.size(); ++i) {
    w->Crash(sub[i]);
  }
  w->RunUntil([&]() { return MergeCompleted(*w, all); }, kVerdictWindow);
  return MergeCompleted(*w, all);
}

const char* Verdict(bool completed) { return completed ? "completes" : "STOPS"; }

}  // namespace
}  // namespace recraft::bench

int main() {
  using namespace recraft::bench;
  using namespace recraft;
  PrintHeader("Table I: minimum node failures to stop a 2-way split/merge "
              "(3-node subclusters: f_sub = 1; 6-node source: f_old = 2)");

  // --- ReCraft split, phase 1 (enter joint): needs f_old + 1 = 3 ---------
  {
    bool with_fold =
        RunSplitWithCrashes(11, "joint", [](const Setup& s, NodeId leader) {
          return VictimsAvoidingLeader(s.cluster, leader, 2);  // f_old = 2
        });
    bool with_fold1 =
        RunSplitWithCrashes(12, "joint", [](const Setup& s, NodeId leader) {
          return VictimsAvoidingLeader(s.cluster, leader, 3);
        });
    std::printf("RC split phase 1:  %d failures -> %s; %d failures -> %s "
                "(paper: f_old+1 = 3)\n",
                2, Verdict(with_fold), 3, Verdict(with_fold1));
  }

  // --- ReCraft split, phase 2 (leave joint): needs N(f_sub + 1) = 4 ------
  {
    // One whole subcluster down (2 failures in one sub): the OTHER side
    // still completes, so the operation as a whole is not stopped.
    bool one_sub =
        RunSplitWithCrashes(13, "leaving", [](const Setup& s, NodeId leader) {
          // Disable the subcluster the leader is NOT in.
          const auto& sub = std::find(s.groups[0].begin(), s.groups[0].end(),
                                      leader) != s.groups[0].end()
                                ? s.groups[1]
                                : s.groups[0];
          return std::vector<NodeId>{sub[0], sub[1]};
        });
    // f_sub+1 in EVERY subcluster (4 failures): nothing can finish.
    bool all_subs =
        RunSplitWithCrashes(14, "leaving", [](const Setup& s, NodeId leader) {
          auto v = VictimsAvoidingLeader(s.groups[0], leader, 2);
          auto v2 = VictimsAvoidingLeader(s.groups[1], leader, 2);
          v.insert(v.end(), v2.begin(), v2.end());
          return v;
        });
    std::printf("RC split phase 2:  one sub disabled (2) -> %s on survivors; "
                "all subs disabled (4) -> %s (paper: N(f_sub+1) = 4)\n",
                Verdict(one_sub), Verdict(all_subs));
  }

  // --- ReCraft merge: f_sub + 1 = 2 in any subcluster stops it -----------
  {
    bool fsub = RunMergeWithCrashes(15, 1, 1);   // 1 failure: tolerated
    bool fsub1 = RunMergeWithCrashes(16, 1, 2);  // 2 failures: stops
    std::printf("RC merge (2PC):    1 failure -> %s; 2 failures in one sub "
                "-> %s (paper: f_sub+1 = 2)\n",
                Verdict(fsub), Verdict(fsub1));
  }

  // --- TC with a non-replicated CM: 1 failure (the CM) stops everything --
  {
    Setup s = MakeSplitSetup(17);
    tc::SplitOp op;
    op.source_members = s.cluster;
    op.groups = s.groups;
    op.ranges = *KeyRange::Full().SplitAt(s.keys);
    tc::ClusterManager cm(*s.w, 800);
    cm.StartSplit(op);
    s.w->Crash(800);
    s.w->RunUntil([&]() { return cm.done(); }, kVerdictWindow);
    std::printf("TC split, CM:      1 failure (the CM) -> %s (paper: 1)\n",
                Verdict(cm.done()));
  }

  // --- TC with a replicated CM: f_cm + 1 needed -----------------------------
  {
    Setup s = MakeSplitSetup(18);
    tc::SplitOp op;
    op.source_members = s.cluster;
    op.groups = s.groups;
    op.ranges = *KeyRange::Full().SplitAt(s.keys);
    tc::ClusterManager primary(*s.w, 800);
    tc::ClusterManager standby(*s.w, 801);
    standby.MonitorAsStandby(800);
    standby.StartSplit(op);
    primary.StartSplit(op);
    s.w->RunFor(100 * kMillisecond);
    s.w->Crash(800);  // f_cm = 1 tolerated by the standby
    s.w->RunUntil([&]() { return standby.done(); }, 60 * kSecond);
    bool survived = standby.done();
    std::printf("TC split, CM-repl: primary CM crash -> %s via standby "
                "takeover (paper: f_cm+1)\n",
                Verdict(survived));
  }
  return 0;
}
