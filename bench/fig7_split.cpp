// Figure 7: split performance.
//  (a) Throughput over time of a 6-node (9-node) cluster splitting into two
//      (three) 3-node subclusters at the 30 s mark, under 128 closed-loop
//      clients issuing uniform-random 512 B puts.
//  (b) Split latency of ReCraft (RC) vs the TiKV/CockroachDB emulation
//      (TC, broken into remove / snapshot / restart) for 2- and 3-way
//      splits with 100 / 1 K / 10 K preloaded KV pairs.
#include "bench/bench_util.h"
#include "tc/cluster_manager.h"

namespace recraft::bench {
namespace {

void ThroughputTimeline(int ways, Duration phase = 30 * kSecond) {
  auto opts = CloudProfile(70 + ways);
  // The paper's leaders are storage-bound (512 B writes on Ceph): model a
  // ~1.5 K req/s per-leader ceiling so splitting multiplies throughput.
  opts.node.max_client_requests_per_tick = 15;
  harness::World w(opts);
  size_t n = 3 * static_cast<size_t>(ways);
  auto cluster = w.CreateCluster(n);
  if (!w.WaitForLeader(cluster)) return;

  std::vector<std::string> keys = ways == 2
                                      ? std::vector<std::string>{"k00050000"}
                                      : std::vector<std::string>{"k00033000",
                                                                 "k00066000"};
  std::vector<std::vector<NodeId>> groups;
  for (int i = 0; i < ways; ++i) {
    groups.emplace_back(cluster.begin() + i * 3, cluster.begin() + (i + 1) * 3);
  }

  harness::Router router;
  router.SetClusters({harness::Router::Entry{cluster, KeyRange::Full()}});
  auto copts = PaperClient();
  // Bucket completions per subcluster range for the per-series plot.
  std::vector<ThroughputSeries> per_sub(static_cast<size_t>(ways));
  ThroughputSeries total;
  auto ranges = *KeyRange::Full().SplitAt(keys);
  copts.on_op_complete = [&](const std::string& key, TimePoint when) {
    total.Record(when);
    for (size_t i = 0; i < ranges.size(); ++i) {
      if (ranges[i].Contains(key)) {
        per_sub[i].Record(when);
        break;
      }
    }
  };
  harness::ClientFleet fleet(w, router, 128, copts);
  fleet.Start();

  w.RunFor(phase);
  TimePoint split_at = w.now();
  Status s = w.AdminSplit(cluster, groups, keys, 20 * kSecond);
  // Update the routing overlay, as etcd's redirection layer would.
  std::vector<harness::Router::Entry> entries;
  for (int i = 0; i < ways; ++i) {
    entries.push_back(
        harness::Router::Entry{groups[static_cast<size_t>(i)],
                               ranges[static_cast<size_t>(i)]});
  }
  router.SetClusters(entries);
  TimePoint end = split_at + phase;
  if (w.now() < end) w.RunFor(end - w.now());
  fleet.Stop();

  std::printf("\nsplit to %d (split issued at t=%.1fs, status=%s)\n", ways,
              Sec(split_at), s.ToString().c_str());
  std::printf("%-6s %-10s", "t(s)", "All");
  for (int i = 0; i < ways; ++i) std::printf(" Csub.%-5d", i + 1);
  std::printf("  (K req/s)\n");
  uint64_t windows = 2 * static_cast<uint64_t>(Sec(phase));
  for (uint64_t t = 0; t < windows; ++t) {
    std::printf("%-6llu %-10.2f", static_cast<unsigned long long>(t),
                total.Rate(t) / 1000.0);
    for (int i = 0; i < ways; ++i) {
      std::printf(" %-10.2f", per_sub[static_cast<size_t>(i)].Rate(t) / 1000.0);
    }
    std::printf("\n");
  }
}

struct LatencyRow {
  int ways;
  size_t kv_pairs;
  double rc_ms;
  double tc_remove_ms, tc_snapshot_ms, tc_restart_ms, tc_total_ms;
};

LatencyRow LatencyPoint(int ways, size_t kv_pairs) {
  LatencyRow row{ways, kv_pairs, 0, 0, 0, 0, 0};
  std::vector<std::string> keys =
      ways == 2 ? std::vector<std::string>{"k00050000"}
                : std::vector<std::string>{"k00033000", "k00066000"};
  auto ranges = *KeyRange::Full().SplitAt(keys);

  // --- ReCraft ---
  {
    auto opts = CloudProfile(500 + static_cast<uint64_t>(ways) * 10 + kv_pairs);
    harness::World w(opts);
    size_t n = 3 * static_cast<size_t>(ways);
    auto cluster = w.CreateCluster(n);
    if (!w.WaitForLeader(cluster)) return row;
    if (!w.Preload(cluster, kv_pairs, 512).ok()) return row;
    std::vector<std::vector<NodeId>> groups;
    for (int i = 0; i < ways; ++i) {
      groups.emplace_back(cluster.begin() + i * 3,
                          cluster.begin() + (i + 1) * 3);
    }
    TimePoint t0 = w.now();
    Status s = w.AdminSplit(cluster, groups, keys, 60 * kSecond);
    // Completion: every node left the old configuration (epoch bumped).
    w.RunUntil(
        [&]() {
          for (NodeId id : cluster) {
            if (w.node(id).epoch() == 0) return false;
          }
          return true;
        },
        30 * kSecond);
    if (s.ok()) row.rc_ms = Ms(w.now() - t0);
  }

  // --- TC emulation ---
  {
    auto opts = CloudProfile(900 + static_cast<uint64_t>(ways) * 10 + kv_pairs);
    harness::World w(opts);
    size_t n = 3 * static_cast<size_t>(ways);
    auto cluster = w.CreateCluster(n);
    if (!w.WaitForLeader(cluster)) return row;
    if (!w.Preload(cluster, kv_pairs, 512).ok()) return row;
    tc::SplitOp op;
    op.source_members = cluster;
    for (int i = 0; i < ways; ++i) {
      op.groups.emplace_back(cluster.begin() + i * 3,
                             cluster.begin() + (i + 1) * 3);
    }
    op.ranges = ranges;
    auto t = tc::RunTcSplit(w, 800, op, {}, 300 * kSecond);
    if (t.ok()) {
      row.tc_remove_ms = Ms(t->remove);
      row.tc_snapshot_ms = Ms(t->snapshot);
      row.tc_restart_ms = Ms(t->restart + t->range_change);
      row.tc_total_ms = Ms(t->total);
    }
  }
  return row;
}

}  // namespace
}  // namespace recraft::bench

int main(int argc, char** argv) {
  using namespace recraft::bench;
  // --smoke: a few-second single-config run for the CI bench-smoke job.
  bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  PrintHeader("Figure 7a: throughput before/after split (128 clients)");
  ThroughputTimeline(2, smoke ? 3 * recraft::kSecond : 30 * recraft::kSecond);
  if (!smoke) ThroughputTimeline(3);

  PrintHeader("Figure 7b: split latency, ReCraft (RC) vs TC emulation");
  std::printf("%-8s %-10s %-12s %-12s %-12s %-12s %-12s %-8s\n", "a-b",
              "RC(ms)", "TC-rm(ms)", "TC-snap(ms)", "TC-rst(ms)",
              "TC-total", "TC/RC", "");
  for (int ways : smoke ? std::vector<int>{2} : std::vector<int>{2, 3}) {
    for (size_t kv : smoke ? std::vector<size_t>{100u}
                           : std::vector<size_t>{100u, 1000u, 10000u}) {
      auto r = LatencyPoint(ways, kv);
      std::printf("%d-%-6zu %-10.1f %-12.1f %-12.1f %-12.1f %-12.1f %-12.1fx\n",
                  ways, kv, r.rc_ms, r.tc_remove_ms, r.tc_snapshot_ms,
                  r.tc_restart_ms, r.tc_total_ms,
                  r.rc_ms > 0 ? r.tc_total_ms / r.rc_ms : 0.0);
    }
  }
  std::printf("\npaper: RC nearly constant (two consensus steps); TC ~21x "
              "slower, dominated by data migration\n");
  return 0;
}
