// Figure 6: latency vs throughput of a 3-node cluster with ReCraft features
// enabled vs a plain Raft/etcd configuration. The paper's claim: the curves
// coincide — ReCraft adds no overhead to regular operation.
//
// Closed-loop clients are swept; each point reports the steady-state
// throughput (K req/s) and mean latency after warmup.
#include "bench/bench_util.h"

namespace recraft::bench {
namespace {

struct Point {
  size_t clients;
  double kreq_per_sec;
  double mean_latency_ms;
};

Point RunPoint(bool enable_recraft, size_t n_clients) {
  auto opts = CloudProfile(/*seed=*/1000 + n_clients);
  opts.node.enable_recraft = enable_recraft;
  harness::World w(opts);
  auto cluster = w.CreateCluster(3);
  if (!w.WaitForLeader(cluster)) return {n_clients, 0, 0};

  harness::Router router;
  router.SetClusters({harness::Router::Entry{cluster, KeyRange::Full()}});
  auto copts = PaperClient();
  harness::ClientFleet fleet(w, router, n_clients, copts);
  fleet.Start();

  const Duration warmup = 3 * kSecond;
  const Duration window = 10 * kSecond;
  w.RunFor(warmup);
  uint64_t ops_before = fleet.TotalOps();
  w.RunFor(window);
  uint64_t ops = fleet.TotalOps() - ops_before;
  fleet.Stop();

  auto lat = fleet.PooledLatency();
  Point p;
  p.clients = n_clients;
  p.kreq_per_sec = static_cast<double>(ops) / Sec(window) / 1000.0;
  p.mean_latency_ms = lat.MeanUs() / 1000.0;
  return p;
}

}  // namespace
}  // namespace recraft::bench

int main() {
  using namespace recraft::bench;
  PrintHeader("Figure 6: etcd performance with ReCraft vs Raft");
  std::printf("%-10s %-22s %-22s %-22s %-22s\n", "clients",
              "ReCraft-etcd K req/s", "ReCraft-etcd lat(ms)",
              "etcd K req/s", "etcd lat(ms)");
  double max_gap = 0;
  for (size_t n : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    Point rc = RunPoint(true, n);
    Point base = RunPoint(false, n);
    std::printf("%-10zu %-22.2f %-22.2f %-22.2f %-22.2f\n", n,
                rc.kreq_per_sec, rc.mean_latency_ms, base.kreq_per_sec,
                base.mean_latency_ms);
    if (base.kreq_per_sec > 0) {
      max_gap = std::max(
          max_gap, std::abs(rc.kreq_per_sec - base.kreq_per_sec) /
                       base.kreq_per_sec);
    }
  }
  std::printf("\nmax relative throughput gap: %.1f%% (paper: identical "
              "curves)\n",
              max_gap * 100.0);
  return 0;
}
