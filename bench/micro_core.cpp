// Microbenchmarks (google-benchmark) for the building blocks: log append /
// slice, KV apply, snapshot serialization, quorum checks, event queue and
// network throughput. These are not paper figures; they document the
// simulator's own capacity.
#include <benchmark/benchmark.h>

#include "harness/world.h"
#include "kv/kv.h"
#include "raft/config.h"
#include "raft/log.h"
#include "sim/event_queue.h"

namespace recraft {
namespace {

void BM_LogAppend(benchmark::State& state) {
  for (auto _ : state) {
    raft::RaftLog log;
    for (Index i = 1; i <= 1000; ++i) {
      raft::LogEntry e;
      e.index = i;
      e.term = 1;
      e.payload = raft::NoOp{};
      log.Append(std::move(e));
    }
    benchmark::DoNotOptimize(log.last_index());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LogAppend);

void BM_LogSlice(benchmark::State& state) {
  raft::RaftLog log;
  for (Index i = 1; i <= 10000; ++i) {
    raft::LogEntry e;
    e.index = i;
    e.term = 1;
    e.payload = raft::NoOp{};
    log.Append(std::move(e));
  }
  for (auto _ : state) {
    auto s = log.Slice(5000, 5128);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_LogSlice);

void BM_KvApply(benchmark::State& state) {
  kv::Store store;
  kv::Command cmd;
  cmd.op = kv::OpType::kPut;
  cmd.value = std::string(512, 'x');
  uint64_t i = 0;
  for (auto _ : state) {
    cmd.key = "key" + std::to_string(i++ % 10000);
    benchmark::DoNotOptimize(store.Apply(cmd));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KvApply);

void BM_SnapshotSerialize(benchmark::State& state) {
  kv::Store store;
  for (int i = 0; i < state.range(0); ++i) {
    kv::Command cmd;
    cmd.op = kv::OpType::kPut;
    cmd.key = "key" + std::to_string(i);
    cmd.value = std::string(512, 'v');
    (void)store.Apply(cmd);
  }
  auto snap = store.TakeSnapshot();
  for (auto _ : state) {
    auto bytes = snap->Serialize();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(snap->SerializedBytes()));
}
BENCHMARK(BM_SnapshotSerialize)->Arg(100)->Arg(1000)->Arg(10000);

void BM_QuorumSatisfied(benchmark::State& state) {
  std::vector<raft::SubCluster> subs(3);
  for (int i = 0; i < 3; ++i) {
    for (NodeId n = 1; n <= 3; ++n) {
      subs[static_cast<size_t>(i)].members.push_back(
          static_cast<NodeId>(i * 3) + n);
    }
  }
  auto q = raft::QuorumSpec::JointSubs(subs);
  std::set<NodeId> acks{1, 2, 4, 5, 7, 8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Satisfied(acks));
  }
}
BENCHMARK(BM_QuorumSatisfied);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int fired = 0;
    for (int i = 0; i < 10000; ++i) {
      q.Schedule(static_cast<Duration>(i % 100), [&fired]() { ++fired; });
    }
    q.RunUntil(1000);
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_SimulatedClusterSecond(benchmark::State& state) {
  // How much wall time one simulated second of an idle 3-node cluster
  // costs — the constant factor behind every other bench.
  for (auto _ : state) {
    harness::WorldOptions opts;
    opts.seed = 1;
    harness::World w(opts);
    auto c = w.CreateCluster(3);
    w.RunFor(1 * kSecond);
    benchmark::DoNotOptimize(w.LeaderOf(c));
  }
}
BENCHMARK(BM_SimulatedClusterSecond);

}  // namespace
}  // namespace recraft

BENCHMARK_MAIN();
