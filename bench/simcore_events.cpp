// Simulator-core performance: how many events per second the discrete-event
// core can schedule, cancel and fire, and what that buys end to end. Two
// modes:
//
//   $ ./simcore_events                      # google-benchmark micros
//   $ ./simcore_events --json [path]        # fixed-size suite -> JSON
//   $ ./simcore_events --json --smoke       # CTest-sized run
//
// The --json suite hand-times the schedule/cancel/fire churn micro, a pure
// schedule+fire throughput loop, a network fan-out loop, and a
// message-heavy shard-plane world (events/sec of the whole simulator), and
// writes BENCH_simperf.json so CI can track the perf trajectory.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "kv/kv.h"
#include "shard/shard_map.h"
#include "sim/event_queue.h"
#include "sim/network.h"

#if __has_include(<benchmark/benchmark.h>) && defined(RECRAFT_HAVE_BENCHMARK)
#include <benchmark/benchmark.h>
#define RECRAFT_GBENCH 1
#endif

namespace recraft::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Workload kernels, shared by the --json timing loops and the
// google-benchmark micros so the two harnesses can never drift apart in
// what they measure.

// Schedule/cancel/fire churn — the timer-race pattern (arm a timer, cancel
// it when the awaited message arrives, re-arm) interleaved with fired work
// events. One step: 1 cancel + 2 schedules + 1 pop = 4 queue ops.
struct ChurnWorkload {
  static constexpr size_t kTimers = 4096;
  static constexpr double kOpsPerStep = 4.0;

  sim::EventQueue q;
  Rng rng{7};
  std::vector<sim::EventId> timers;
  uint64_t fired = 0;
  size_t cursor = 0;

  ChurnWorkload() {
    timers.reserve(kTimers);
    for (size_t i = 0; i < kTimers; ++i) {
      timers.push_back(
          q.Schedule(1 + rng.Uniform(0, 9999), [this]() { ++fired; }));
    }
  }
  void Step() {
    q.Cancel(timers[cursor]);  // the race the timer lost
    timers[cursor] =
        q.Schedule(1 + rng.Uniform(0, 9999), [this]() { ++fired; });  // re-arm
    q.Schedule(1 + rng.Uniform(0, 99), [this]() { ++fired; });  // the winner
    q.RunOne();
    cursor = (cursor + 1) % kTimers;
  }
};

// Pure schedule + fire throughput in bursts against a long-lived queue
// (worlds keep one queue for the whole run, so the pool is warm in steady
// state). One step: schedule `batch` events, drain them.
struct ScheduleFireWorkload {
  static constexpr size_t kBatch = 10000;

  sim::EventQueue q;
  Rng rng{11};
  uint64_t fired = 0;

  void Step() {
    for (size_t i = 0; i < kBatch; ++i) {
      q.Schedule(rng.Uniform(0, 999), [this]() { ++fired; });
    }
    q.RunFor(1000);
  }
};

// Network fan-out — one sender multicasting to every receiver, the per-send
// hot path (counters, crash/partition checks, latency, delivery). One step:
// one multicast burst, drained.
struct FanoutWorkload {
  sim::EventQueue events;
  sim::Network net;
  NodeId receivers;
  uint64_t delivered = 0;
  std::shared_ptr<int> payload = std::make_shared<int>(0);

  explicit FanoutWorkload(NodeId n_receivers)
      : net(events,
            []() {
              sim::NetworkOptions o;
              o.jitter = 50;
              return o;
            }(),
            Rng(3)),
        receivers(n_receivers) {
    for (NodeId n = 1; n <= receivers; ++n) {
      net.Register(n,
                   [this](NodeId, std::shared_ptr<const void>, size_t,
                          obs::TraceCtx) {
                     ++delivered;
                   });
    }
  }
  void Step() {
    // The payload is synthetic (no wire encoding): this bench measures the
    // event core, not a protocol, so a fixed nominal size is the point.
    // NOLINTNEXTLINE(recraft-hot-path-hygiene): synthetic payload, no message object
    for (NodeId n = 1; n <= receivers; ++n) net.Send(0, n, payload, 128);
    events.RunFor(2 * kMillisecond);  // drain the burst
  }
};

double ChurnOpsPerSec(size_t iters) {
  ChurnWorkload w;
  auto t0 = Clock::now();
  for (size_t i = 0; i < iters; ++i) w.Step();
  double secs = SecondsSince(t0);
  return secs > 0
             ? ChurnWorkload::kOpsPerStep * static_cast<double>(iters) / secs
             : 0;
}

double ScheduleFireEventsPerSec(size_t batches) {
  ScheduleFireWorkload w;
  auto t0 = Clock::now();
  for (size_t b = 0; b < batches; ++b) w.Step();
  double secs = SecondsSince(t0);
  return secs > 0 ? static_cast<double>(w.fired) / secs : 0;
}

double FanoutDeliveriesPerSec(size_t rounds, NodeId receivers) {
  FanoutWorkload w(receivers);
  auto t0 = Clock::now();
  for (size_t r = 0; r < rounds; ++r) w.Step();
  double secs = SecondsSince(t0);
  return secs > 0 ? static_cast<double>(w.delivered) / secs : 0;
}

// ---------------------------------------------------------------------------
// Store-engine micros: the B+-tree fast path in isolation, at a population
// the shard-plane e2e never reaches (>= 1M keys in full mode). Keys are a
// bijective scramble of the index (odd-constant multiply mod 2^32) so load
// order is effectively random — sorted bulk insertion would flatter a
// B+-tree — while every probe hits an existing key.
struct StoreMicroResult {
  size_t keys = 0;
  double put_ops_per_sec = 0;   // overwrite puts at full population
  double get_ops_per_sec = 0;   // point reads (the ReadIndex serve path)
  double scan_entries_per_sec = 0;
};

uint32_t ScrambleKey(size_t i) {
  return static_cast<uint32_t>(i) * 2654435761u;  // Knuth; bijective mod 2^32
}

StoreMicroResult RunStoreMicro(size_t n_keys) {
  kv::Store store;
  char buf[24];
  const std::string value(64, 'v');
  kv::Command cmd;
  cmd.op = kv::OpType::kPut;
  cmd.value = value;
  for (size_t i = 0; i < n_keys; ++i) {
    std::snprintf(buf, sizeof(buf), "k%010u", ScrambleKey(i));
    cmd.key = buf;
    store.Apply(cmd);
  }

  StoreMicroResult res;
  res.keys = store.size();
  Rng rng(21);

  const size_t put_ops = n_keys / 2;
  auto t0 = Clock::now();
  for (size_t i = 0; i < put_ops; ++i) {
    std::snprintf(buf, sizeof(buf), "k%010u",
                  ScrambleKey(rng.Uniform(0, n_keys - 1)));
    cmd.key = buf;
    store.Apply(cmd);
  }
  double secs = SecondsSince(t0);
  res.put_ops_per_sec = secs > 0 ? static_cast<double>(put_ops) / secs : 0;

  const size_t get_ops = n_keys;
  uint64_t hits = 0;
  t0 = Clock::now();
  for (size_t i = 0; i < get_ops; ++i) {
    std::snprintf(buf, sizeof(buf), "k%010u",
                  ScrambleKey(rng.Uniform(0, n_keys - 1)));
    hits += store.Get(buf).ok() ? 1 : 0;
  }
  secs = SecondsSince(t0);
  res.get_ops_per_sec = secs > 0 ? static_cast<double>(get_ops) / secs : 0;
  if (hits != get_ops) {
    std::fprintf(stderr, "store micro: %llu/%llu gets hit (want all)\n",
                 static_cast<unsigned long long>(hits),
                 static_cast<unsigned long long>(get_ops));
  }

  const size_t scans = n_keys / 200;
  uint64_t entries = 0;
  t0 = Clock::now();
  for (size_t i = 0; i < scans; ++i) {
    std::snprintf(buf, sizeof(buf), "k%010u",
                  ScrambleKey(rng.Uniform(0, n_keys - 1)));
    entries += store.Scan(buf, "", 100).size();
  }
  secs = SecondsSince(t0);
  res.scan_entries_per_sec =
      secs > 0 ? static_cast<double>(entries) / secs : 0;
  return res;
}

// ---------------------------------------------------------------------------
// End to end: a message-heavy shard plane — every client op is a fan of
// ClientRequest/AppendEntries/replies, so events/sec here is the simulator's
// whole-stack capacity, the constant factor behind every paper figure.
struct E2eResult {
  double sim_seconds = 0;
  double wall_seconds = 0;
  double events_per_sec = 0;
  double client_ops_per_sec = 0;
  uint64_t events = 0;
  Duration lat_p50 = 0;   // pooled client latency, sim microseconds
  Duration lat_p99 = 0;   // (whole run incl. warmup; closed-loop clients)
  Duration lat_p999 = 0;
};

E2eResult RunShardPlane(Duration sim_time) {
  harness::WorldOptions opts;
  opts.seed = 0x51e5;
  opts.net.base_latency = 1 * kMillisecond;
  harness::World w(opts);
  auto boundaries = shard::UniformKeyBoundaries("k", 100000, 4);
  auto ids = w.BootstrapShards(4, 3, boundaries);
  if (!ids.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n",
                 ids.status().ToString().c_str());
    return {};
  }
  harness::Router router(&w.shard_map());
  auto copts = PaperClient();
  copts.batch_size = 4;
  harness::ClientFleet fleet(w, router, 24, copts);
  fleet.Start();
  w.RunFor(1 * kSecond);  // warmup: elect, populate, settle routes
  uint64_t ev0 = w.events().events_executed();
  uint64_t ops0 = fleet.TotalOps();
  TimePoint t0 = w.now();
  auto w0 = Clock::now();
  w.RunFor(sim_time);
  E2eResult res;
  res.wall_seconds = SecondsSince(w0);
  res.sim_seconds = Sec(w.now() - t0);
  res.events = w.events().events_executed() - ev0;
  if (res.wall_seconds > 0) {
    res.events_per_sec =
        static_cast<double>(res.events) / res.wall_seconds;
    res.client_ops_per_sec =
        static_cast<double>(fleet.TotalOps() - ops0) / res.wall_seconds;
  }
  LatencyRecorder pooled = fleet.PooledLatency();
  if (pooled.count() > 0) {
    res.lat_p50 = pooled.Percentile(50.0);
    res.lat_p99 = pooled.Percentile(99.0);
    res.lat_p999 = pooled.Percentile(99.9);
  }
  fleet.Stop();
  return res;
}

int RunJson(const std::string& path, bool smoke) {
  const size_t churn_iters = smoke ? 200000 : 2000000;
  const size_t sf_batches = smoke ? 50 : 400;
  const size_t fan_rounds = smoke ? 4000 : 40000;
  const size_t store_keys = smoke ? (1u << 17) : (1u << 20);  // full: >= 1M
  const Duration e2e_sim = smoke ? 1 * kSecond : 4 * kSecond;

  PrintHeader("simcore_events (json mode)");
  double churn = ChurnOpsPerSec(churn_iters);
  std::printf("  churn (schedule/cancel/fire):  %.3fM ops/s\n", churn / 1e6);
  double sf = ScheduleFireEventsPerSec(sf_batches);
  std::printf("  schedule+fire:                 %.3fM events/s\n", sf / 1e6);
  double fan = FanoutDeliveriesPerSec(fan_rounds, 64);
  std::printf("  network fan-out:               %.3fM deliveries/s\n",
              fan / 1e6);
  StoreMicroResult st = RunStoreMicro(store_keys);
  std::printf(
      "  store @ %zu keys: %.3fM puts/s, %.3fM gets/s, %.3fM scan "
      "entries/s\n",
      st.keys, st.put_ops_per_sec / 1e6, st.get_ops_per_sec / 1e6,
      st.scan_entries_per_sec / 1e6);
  E2eResult e2e = RunShardPlane(e2e_sim);
  std::printf(
      "  e2e shard plane: %.2fs sim in %.2fs wall — %.3fM events/s, "
      "%.0f client ops/s\n",
      e2e.sim_seconds, e2e.wall_seconds, e2e.events_per_sec / 1e6,
      e2e.client_ops_per_sec);
  std::printf(
      "  e2e client latency (sim): p50=%lldus p99=%lldus p999=%lldus\n",
      static_cast<long long>(e2e.lat_p50),
      static_cast<long long>(e2e.lat_p99),
      static_cast<long long>(e2e.lat_p999));

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"simcore_events\",\n"
               "  \"smoke\": %s,\n"
               "  \"micro\": {\n"
               "    \"churn_ops_per_sec\": %.0f,\n"
               "    \"schedule_fire_events_per_sec\": %.0f,\n"
               "    \"fanout_deliveries_per_sec\": %.0f\n"
               "  },\n"
               "  \"store\": {\n"
               "    \"keys\": %zu,\n"
               "    \"put_ops_per_sec\": %.0f,\n"
               "    \"get_ops_per_sec\": %.0f,\n"
               "    \"scan_entries_per_sec\": %.0f\n"
               "  },\n"
               "  \"e2e\": {\n"
               "    \"shards\": 4,\n"
               "    \"clients\": 24,\n"
               "    \"sim_seconds\": %.3f,\n"
               "    \"wall_seconds\": %.3f,\n"
               "    \"events\": %llu,\n"
               "    \"events_per_sec\": %.0f,\n"
               "    \"client_ops_per_sec\": %.0f,\n"
               "    \"client_lat_p50_us\": %lld,\n"
               "    \"client_lat_p99_us\": %lld,\n"
               "    \"client_lat_p999_us\": %lld\n"
               "  }\n"
               "}\n",
               smoke ? "true" : "false", churn, sf, fan, st.keys,
               st.put_ops_per_sec, st.get_ops_per_sec,
               st.scan_entries_per_sec, e2e.sim_seconds, e2e.wall_seconds,
               static_cast<unsigned long long>(e2e.events),
               e2e.events_per_sec, e2e.client_ops_per_sec,
               static_cast<long long>(e2e.lat_p50),
               static_cast<long long>(e2e.lat_p99),
               static_cast<long long>(e2e.lat_p999));
  std::fclose(f);
  std::printf("  wrote %s\n", path.c_str());
  return e2e.events > 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// google-benchmark micros (kept separate from --json so `ctest -L bench`
// stays cheap while interactive runs get proper statistical treatment).
#ifdef RECRAFT_GBENCH

void BM_ScheduleFire(benchmark::State& state) {
  ScheduleFireWorkload w;
  for (auto _ : state) {
    w.Step();
    benchmark::DoNotOptimize(w.fired);
  }
  state.SetItemsProcessed(state.iterations() *
                          ScheduleFireWorkload::kBatch);
}
BENCHMARK(BM_ScheduleFire);

void BM_ChurnCancelFire(benchmark::State& state) {
  ChurnWorkload w;
  for (auto _ : state) {
    w.Step();
    benchmark::DoNotOptimize(w.fired);
  }
  state.SetItemsProcessed(static_cast<int64_t>(
      static_cast<double>(state.iterations()) * ChurnWorkload::kOpsPerStep));
}
BENCHMARK(BM_ChurnCancelFire);

void BM_NetworkFanout(benchmark::State& state) {
  FanoutWorkload w(static_cast<NodeId>(state.range(0)));
  for (auto _ : state) {
    w.Step();
    benchmark::DoNotOptimize(w.delivered);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NetworkFanout)->Arg(8)->Arg(64);

void BM_CounterAddByName(benchmark::State& state) {
  CounterSet c;
  for (auto _ : state) {
    c.Add("net.sent");  // NOLINT(recraft-hot-path-hygiene): this bench measures the by-name path against BM_CounterAddById
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAddByName);

#endif  // RECRAFT_GBENCH

}  // namespace
}  // namespace recraft::bench

int main(int argc, char** argv) {
  std::string json_path = "BENCH_simperf.json";
  bool json = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  if (json || smoke) {
    return recraft::bench::RunJson(json_path, smoke);
  }
#ifdef RECRAFT_GBENCH
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
#else
  std::fprintf(stderr,
               "google-benchmark not available; run with --json instead\n");
  return recraft::bench::RunJson(json_path, smoke);
#endif
}
