// Figure 8: merge performance.
//  (a) Throughput over time of two (three) 3-node clusters merging into one
//      6-node (9-node) cluster at the 30 s mark, under a light load
//      (2 clients) — merging is done when clusters are underutilized.
//  (b) Merge latency of ReCraft (RC, broken into 2PC transaction and
//      snapshot exchange) vs the TC emulation (snapshot coalescing and
//      node rejoin) for 2- and 3-way merges with 100 / 1 K / 10 K pairs.
#include "bench/bench_util.h"
#include "tc/cluster_manager.h"

namespace recraft::bench {
namespace {

std::vector<std::vector<NodeId>> MakeAdjacentClusters(
    harness::World& w, int ways, const std::vector<KeyRange>& ranges) {
  std::vector<std::vector<NodeId>> clusters;
  for (int i = 0; i < ways; ++i) {
    clusters.push_back(w.CreateCluster(3, ranges[static_cast<size_t>(i)]));
  }
  return clusters;
}

void ThroughputTimeline(int ways, Duration phase = 30 * kSecond) {
  auto opts = CloudProfile(80 + ways);
  opts.node.max_client_requests_per_tick = 15;  // same ceiling as Fig. 7a
  harness::World w(opts);
  std::vector<std::string> keys =
      ways == 2 ? std::vector<std::string>{"k00050000"}
                : std::vector<std::string>{"k00033000", "k00066000"};
  auto ranges = *KeyRange::Full().SplitAt(keys);
  auto clusters = MakeAdjacentClusters(w, ways, ranges);
  std::vector<NodeId> all;
  for (auto& c : clusters) {
    if (!w.WaitForLeader(c)) return;
    all.insert(all.end(), c.begin(), c.end());
  }
  std::sort(all.begin(), all.end());

  harness::Router router;
  std::vector<harness::Router::Entry> entries;
  for (int i = 0; i < ways; ++i) {
    entries.push_back(harness::Router::Entry{clusters[static_cast<size_t>(i)],
                                             ranges[static_cast<size_t>(i)]});
  }
  router.SetClusters(entries);

  auto copts = PaperClient();
  std::vector<ThroughputSeries> per_sub(static_cast<size_t>(ways));
  ThroughputSeries total;
  copts.on_op_complete = [&](const std::string& key, TimePoint when) {
    total.Record(when);
    for (size_t i = 0; i < ranges.size(); ++i) {
      if (ranges[i].Contains(key)) {
        per_sub[i].Record(when);
        break;
      }
    }
  };
  harness::ClientFleet fleet(w, router, 2, copts);
  fleet.Start();

  w.RunFor(phase);
  TimePoint merge_at = w.now();
  Status s = w.AdminMerge(clusters, {}, 60 * kSecond);
  router.SetClusters({harness::Router::Entry{all, KeyRange::Full()}});
  TimePoint end = merge_at + phase;
  if (w.now() < end) w.RunFor(end - w.now());
  fleet.Stop();

  std::printf("\nmerge %d (merge issued at t=%.1fs, status=%s)\n", ways,
              Sec(merge_at), s.ToString().c_str());
  std::printf("%-6s %-10s", "t(s)", "All");
  for (int i = 0; i < ways; ++i) std::printf(" Csub.%-5d", i + 1);
  std::printf("  (K req/s)\n");
  uint64_t windows = 2 * static_cast<uint64_t>(Sec(phase));
  for (uint64_t t = 0; t < windows; ++t) {
    std::printf("%-6llu %-10.3f", static_cast<unsigned long long>(t),
                total.Rate(t) / 1000.0);
    for (int i = 0; i < ways; ++i) {
      std::printf(" %-10.3f", per_sub[static_cast<size_t>(i)].Rate(t) / 1000.0);
    }
    std::printf("\n");
  }
}

struct LatencyRow {
  int ways;
  size_t kv_pairs;
  double rc_tx_ms, rc_snapshot_ms, rc_total_ms;
  double tc_snapshot_ms, tc_rejoin_ms, tc_total_ms;
};

LatencyRow LatencyPoint(int ways, size_t kv_pairs) {
  LatencyRow row{ways, kv_pairs, 0, 0, 0, 0, 0, 0};
  std::vector<std::string> keys =
      ways == 2 ? std::vector<std::string>{"k00050000"}
                : std::vector<std::string>{"k00033000", "k00066000"};
  auto ranges = *KeyRange::Full().SplitAt(keys);

  // --- ReCraft ---
  {
    auto opts = CloudProfile(600 + static_cast<uint64_t>(ways) * 10 + kv_pairs);
    harness::World w(opts);
    auto clusters = MakeAdjacentClusters(w, ways, ranges);
    std::vector<NodeId> all;
    for (size_t i = 0; i < clusters.size(); ++i) {
      if (!w.WaitForLeader(clusters[i])) return row;
      // Preload each cluster's share of keys within its range.
      size_t per = kv_pairs / clusters.size();
      std::string prefix =
          "k000" + std::to_string(3 + i * 3);  // keys inside range i
      // Preload directly within the right range using the range's lo.
      std::string value(512, 'v');
      for (size_t k = 0; k < per; ++k) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%s%06zu",
                      (ranges[i].lo().empty() ? "k00000000" : ranges[i].lo())
                          .c_str(),
                      k);
        if (!w.Put(clusters[i], buf, value).ok()) return row;
      }
      all.insert(all.end(), clusters[i].begin(), clusters[i].end());
    }
    std::sort(all.begin(), all.end());
    TimePoint t0 = w.now();
    Status s = w.AdminMerge(clusters, {}, 120 * kSecond);
    TimePoint t1 = w.now();  // 2PC decision committed (admin reply)
    // Service resumption: the merged cluster has an elected leader that
    // completed its snapshot exchange — it serves requests from here on
    // (laggards catch up in the background, as in the paper's etcd runs).
    w.RunUntil(
        [&]() {
          NodeId l = w.LeaderOf(all);
          if (l == kNoNode) return false;
          const auto& n = w.node(l);
          return n.config().members == all && !n.merge_exchange_pending();
        },
        120 * kSecond);
    if (s.ok()) {
      row.rc_tx_ms = Ms(t1 - t0);
      row.rc_snapshot_ms = Ms(w.now() - t1);
      row.rc_total_ms = Ms(w.now() - t0);
    }
  }

  // --- TC emulation ---
  {
    auto opts = CloudProfile(700 + static_cast<uint64_t>(ways) * 10 + kv_pairs);
    harness::World w(opts);
    auto clusters = MakeAdjacentClusters(w, ways, ranges);
    for (size_t i = 0; i < clusters.size(); ++i) {
      if (!w.WaitForLeader(clusters[i])) return row;
      size_t per = kv_pairs / clusters.size();
      std::string value(512, 'v');
      for (size_t k = 0; k < per; ++k) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%s%06zu",
                      (ranges[i].lo().empty() ? "k00000000" : ranges[i].lo())
                          .c_str(),
                      k);
        if (!w.Put(clusters[i], buf, value).ok()) return row;
      }
    }
    tc::MergeOp op;
    op.clusters = clusters;
    op.ranges = ranges;
    auto t = tc::RunTcMerge(w, 800, op, {}, 600 * kSecond);
    if (t.ok()) {
      row.tc_snapshot_ms = Ms(t->snapshot + t->inject);
      row.tc_rejoin_ms = Ms(t->rejoin + t->terminate);
      row.tc_total_ms = Ms(t->total);
    }
  }
  return row;
}

}  // namespace
}  // namespace recraft::bench

int main(int argc, char** argv) {
  using namespace recraft::bench;
  // --smoke: a few-second single-config run for the CI bench-smoke job.
  bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  PrintHeader("Figure 8a: throughput before/after merge (2 clients)");
  ThroughputTimeline(2, smoke ? 3 * recraft::kSecond : 30 * recraft::kSecond);
  if (!smoke) ThroughputTimeline(3);

  PrintHeader("Figure 8b: merge latency, ReCraft (RC) vs TC emulation");
  std::printf("%-8s %-11s %-12s %-11s %-13s %-13s %-11s %-8s\n", "a-b",
              "RC-TX(ms)", "RC-snap(ms)", "RC-total", "TC-snap(ms)",
              "TC-rejoin(ms)", "TC-total", "TC/RC");
  for (int ways : smoke ? std::vector<int>{2} : std::vector<int>{2, 3}) {
    for (size_t kv : smoke ? std::vector<size_t>{100u}
                           : std::vector<size_t>{100u, 1000u, 10000u}) {
      auto r = LatencyPoint(ways, kv);
      std::printf(
          "%d-%-6zu %-11.1f %-12.1f %-11.1f %-13.1f %-13.1f %-11.1f %-8.1fx\n",
          ways, kv, r.rc_tx_ms, r.rc_snapshot_ms, r.rc_total_ms,
          r.tc_snapshot_ms, r.tc_rejoin_ms, r.tc_total_ms,
          r.rc_total_ms > 0 ? r.tc_total_ms / r.rc_total_ms : 0.0);
    }
  }
  std::printf("\npaper: RC 2PC constant; data exchange dominates; TC 1.7x to "
              "20x slower depending on data size\n");
  return 0;
}
