// Shard-plane throughput: N shards (>= 8) serve a closed-loop client fleet
// while the placement driver continuously rebalances — every round splits
// the largest shard and merges the coldest adjacent pair — through either
// the native ReCraft path or the TC external-cluster-manager baseline,
// behind the same Rebalancer interface. Reports aggregate ops/s, tail
// latency, wrong-shard retries healed by map refetches, and per-op
// rebalancing counts for both modes.
//
//   $ ./shardplane_throughput [--smoke] [--mode native|tc|both]
//                             [--shards N] [--rounds R] [--clients C]
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>

#include "bench/bench_util.h"
#include "shard/placement.h"

namespace recraft::bench {
namespace {

struct PlaneConfig {
  size_t shards = 8;
  size_t rounds = 4;
  size_t clients = 48;
  Duration window = 2 * kSecond;
  uint64_t key_space = 100000;
};

struct PlaneResult {
  bool ok = false;
  double ops_per_sec = 0;
  double p50_ms = 0, p99_ms = 0, p999_ms = 0;
  uint64_t splits = 0, merges = 0;
  uint64_t wrong_shard = 0;
  std::string error;
};

PlaneResult RunPlane(const char* mode, const PlaneConfig& cfg) {
  PlaneResult res;
  harness::WorldOptions opts;
  opts.seed = 0x5ead + cfg.shards;
  opts.net.base_latency = 1 * kMillisecond;
  // A modest per-leader admission ceiling (the paper's storage-bound
  // leaders): aggregate throughput then actually depends on shard count.
  opts.node.max_client_requests_per_tick = 50;
  harness::World w(opts);

  auto boundaries =
      shard::UniformKeyBoundaries("k", cfg.key_space, cfg.shards);
  auto ids = w.BootstrapShards(cfg.shards, 3, boundaries);
  if (!ids.ok()) {
    res.error = "bootstrap: " + ids.status().ToString();
    return res;
  }

  std::unique_ptr<shard::Rebalancer> rb;
  if (std::strcmp(mode, "native") == 0) {
    rb = std::make_unique<shard::NativeRebalancer>(w, 120 * kSecond);
  } else {
    rb = std::make_unique<shard::TcRebalancer>(w, 120 * kSecond);
  }
  shard::PlacementOptions popts;
  // Force continuous rebalancing: any shard is big enough to split, any
  // adjacent pair cold enough to merge; the min/max window keeps the plane
  // oscillating around its configured size without dropping below it.
  popts.split_threshold_keys = 1;
  popts.merge_threshold_keys = std::numeric_limits<size_t>::max() / 2;
  popts.min_shards = cfg.shards;
  popts.max_shards = cfg.shards + 2;
  shard::PlacementDriver driver(w, w.shard_map(), *rb, popts);

  harness::Router router(&w.shard_map());
  auto copts = PaperClient();
  copts.key_space = cfg.key_space;
  copts.batch_size = 4;  // rounds grouped per shard
  copts.on_op_complete = [&](const std::string& key, TimePoint) {
    driver.RecordOp(key);
  };
  harness::ClientFleet fleet(w, router, cfg.clients, copts);
  fleet.Start();

  // Warmup: populate stores so median split keys exist.
  w.RunFor(cfg.window);
  uint64_t ops_start = fleet.TotalOps();
  TimePoint t_start = w.now();

  for (size_t r = 0; r < cfg.rounds; ++r) {
    auto report = driver.Step();  // clients keep running during the ops
    for (const auto& a : report.actions) {
      std::printf("    [%s r%zu] %s\n", mode, r, a.c_str());
    }
    w.RunFor(cfg.window);
  }
  fleet.Stop();

  double secs = Sec(w.now() - t_start);
  res.ok = true;
  res.ops_per_sec =
      secs > 0 ? static_cast<double>(fleet.TotalOps() - ops_start) / secs : 0;
  auto lat = fleet.PooledLatency();
  if (lat.count() > 0) {
    res.p50_ms = Ms(lat.Percentile(50));
    res.p99_ms = Ms(lat.Percentile(99));
    res.p999_ms = Ms(lat.Percentile(99.9));
  }
  res.splits = driver.splits_done();
  res.merges = driver.merges_done();
  res.wrong_shard = fleet.TotalWrongShardRetries();
  if (w.shard_map().size() < cfg.shards) {
    res.ok = false;
    res.error = "plane shrank below configured shard count";
  }
  if (Status s = w.shard_map().CheckInvariants(); !s.ok()) {
    res.ok = false;
    res.error = "map invariants: " + s.ToString();
  }
  return res;
}

void PrintRow(const char* mode, const PlaneResult& r) {
  if (!r.ok) {
    std::printf("%-8s FAILED: %s\n", mode, r.error.c_str());
    return;
  }
  std::printf("%-8s %10.0f %9.2f %9.2f %9.2f %7llu %7llu %11llu\n", mode,
              r.ops_per_sec, r.p50_ms, r.p99_ms, r.p999_ms,
              static_cast<unsigned long long>(r.splits),
              static_cast<unsigned long long>(r.merges),
              static_cast<unsigned long long>(r.wrong_shard));
}

}  // namespace
}  // namespace recraft::bench

int main(int argc, char** argv) {
  using namespace recraft::bench;
  PlaneConfig cfg;
  const char* mode = "both";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      cfg.rounds = 2;
      cfg.clients = 12;
      cfg.window = 1 * recraft::kSecond;
    } else if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      mode = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      cfg.shards = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      cfg.rounds = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      cfg.clients = static_cast<size_t>(std::atoi(argv[++i]));
    }
  }

  PrintHeader("Shard plane: throughput under continuous split/merge "
              "rebalancing (" +
              std::to_string(cfg.shards) + " shards, " +
              std::to_string(cfg.clients) + " clients)");
  std::printf("%-8s %10s %9s %9s %9s %7s %7s %11s\n", "mode", "ops/s",
              "p50(ms)", "p99(ms)", "p99.9(ms)", "splits", "merges",
              "wrong-shard");
  bool all_ok = true;
  if (std::strcmp(mode, "both") == 0 || std::strcmp(mode, "native") == 0) {
    auto r = RunPlane("native", cfg);
    PrintRow("native", r);
    all_ok = all_ok && r.ok;
  }
  if (std::strcmp(mode, "both") == 0 || std::strcmp(mode, "tc") == 0) {
    auto r = RunPlane("tc", cfg);
    PrintRow("tc", r);
    all_ok = all_ok && r.ok;
  }
  std::printf("\nnative rebalances through the groups' own consensus; tc "
              "re-runs the same policy through the external cluster-manager "
              "script.\n");
  return all_ok ? 0 : 1;
}
