// Ablations of the design choices DESIGN.md calls out:
//  1. CommitNotify multicast off: sibling subclusters must discover the
//     split commit through elections + pull — completion latency grows.
//  2. Pull recovery off: a subcluster that misses SplitLeaveJoint can never
//     save itself — the liveness the paper proves is lost.
//  3. Per-follower pipelining depth: throughput under concurrent clients.
#include "bench/bench_util.h"

namespace recraft::bench {
namespace {

/// Split a 6-node cluster with the leader's sibling group partitioned away
/// right at SplitLeaveJoint; heal afterwards and measure how long the
/// missed-out subcluster needs to complete.
struct MissedSubResult {
  bool completed = false;
  double recovery_ms = 0;
};

MissedSubResult MissedSubcluster(bool commit_notify, bool pull,
                                 uint64_t seed) {
  auto opts = CloudProfile(seed);
  opts.node.enable_commit_notify = commit_notify;
  opts.node.enable_pull = pull;
  harness::World w(opts);
  auto c = w.CreateCluster(6);
  if (!w.WaitForLeader(c)) return {};
  (void)w.Put(c, "a", "1");
  std::vector<NodeId> g1{c[0], c[1], c[2]}, g2{c[3], c[4], c[5]};
  NodeId leader = w.LeaderOf(c);
  if (std::find(g1.begin(), g1.end(), leader) == g1.end()) std::swap(g1, g2);

  raft::AdminSplit body;
  body.groups = {g1, g2};
  body.split_keys = {"k00050000"};
  raft::ClientRequest req;
  req.req_id = w.NextReqId();
  req.from = harness::kAdminId;
  req.body = body;
  auto msg = raft::MakeMessage(raft::Message(req));
  w.net().Send(harness::kAdminId, leader, msg, msg.wire_bytes());
  w.RunUntil(
      [&]() {
        return w.node(leader).config().mode == raft::ConfigMode::kSplitLeaving;
      },
      5 * kSecond);
  w.net().SetPartitions({g1, g2});
  // g1 completes alone.
  w.RunUntil(
      [&]() {
        for (NodeId id : g1) {
          if (w.node(id).epoch() != 1) return false;
        }
        return true;
      },
      20 * kSecond);
  w.net().ClearPartitions();
  TimePoint healed = w.now();
  MissedSubResult r;
  r.completed = w.RunUntil(
      [&]() {
        for (NodeId id : g2) {
          if (w.node(id).epoch() != 1) return false;
        }
        return w.LeaderOf(g2) != kNoNode;
      },
      30 * kSecond);
  r.recovery_ms = Ms(w.now() - healed);
  return r;
}

double ThroughputWithInflight(size_t max_inflight, uint64_t seed) {
  auto opts = CloudProfile(seed);
  opts.node.max_inflight_appends = max_inflight;
  harness::World w(opts);
  auto cluster = w.CreateCluster(3);
  if (!w.WaitForLeader(cluster)) return 0;
  harness::Router router;
  router.SetClusters({harness::Router::Entry{cluster, KeyRange::Full()}});
  harness::ClientFleet fleet(w, router, 64, PaperClient());
  fleet.Start();
  w.RunFor(2 * kSecond);
  uint64_t before = fleet.TotalOps();
  w.RunFor(8 * kSecond);
  uint64_t ops = fleet.TotalOps() - before;
  fleet.Stop();
  return static_cast<double>(ops) / 8.0;
}

}  // namespace
}  // namespace recraft::bench

namespace recraft::bench {
namespace {

/// Normal (fault-free) split: how long after the leader's subcluster
/// completes does the *sibling* subcluster complete? With CommitNotify the
/// siblings learn of the commit immediately; without it they must time out,
/// campaign, receive a PULL response and catch up.
double SiblingCompletionLagMs(bool commit_notify, uint64_t seed) {
  auto opts = CloudProfile(seed);
  opts.node.enable_commit_notify = commit_notify;
  harness::World w(opts);
  auto c = w.CreateCluster(6);
  if (!w.WaitForLeader(c)) return -1;
  (void)w.Put(c, "a", "1");
  std::vector<NodeId> g1{c[0], c[1], c[2]}, g2{c[3], c[4], c[5]};
  NodeId leader = w.LeaderOf(c);
  if (std::find(g1.begin(), g1.end(), leader) == g1.end()) std::swap(g1, g2);
  raft::AdminSplit body;
  body.groups = {g1, g2};
  body.split_keys = {"k00050000"};
  raft::ClientRequest req;
  req.req_id = w.NextReqId();
  req.from = harness::kAdminId;
  req.body = body;
  auto msg = raft::MakeMessage(raft::Message(req));
  w.net().Send(harness::kAdminId, leader, msg, msg.wire_bytes());
  if (!w.RunUntil([&]() { return w.node(leader).epoch() == 1; },
                  20 * kSecond)) {
    return -1;
  }
  TimePoint leader_done = w.now();
  bool ok = w.RunUntil(
      [&]() {
        for (NodeId id : g2) {
          if (w.node(id).epoch() != 1) return false;
        }
        return w.LeaderOf(g2) != kNoNode;
      },
      30 * kSecond);
  return ok ? Ms(w.now() - leader_done) : -1;
}

}  // namespace
}  // namespace recraft::bench

int main() {
  using namespace recraft::bench;
  PrintHeader("Ablation 1: CommitNotify multicast (sibling subcluster "
              "completion lag in a fault-free split)");
  {
    double on = 0, off = 0;
    for (uint64_t s = 0; s < 3; ++s) {
      on += SiblingCompletionLagMs(true, 40 + s);
      off += SiblingCompletionLagMs(false, 50 + s);
    }
    std::printf("  notify ON : sibling completes %.0f ms after the leader\n",
                on / 3);
    std::printf("  notify OFF: sibling completes %.0f ms after the leader "
                "(election timeout + pull)\n",
                off / 3);
  }

  PrintHeader("Ablation 2: pull recovery (liveness of a missed subcluster)");
  {
    auto with_pull = MissedSubcluster(true, true, 23);
    auto without = MissedSubcluster(true, false, 24);
    std::printf("  pull ON : missed subcluster completed=%d (%.0f ms)\n",
                with_pull.completed, with_pull.recovery_ms);
    std::printf("  pull OFF: missed subcluster completed=%d (paper: stuck "
                "forever — liveness lost)\n",
                without.completed);
  }

  PrintHeader("Ablation 3: replication pipelining depth (64 clients)");
  for (size_t depth : {1u, 4u, 16u, 64u}) {
    std::printf("  max_inflight=%-3zu -> %.0f req/s\n", depth,
                ThroughputWithInflight(depth, 30 + depth));
  }
  return 0;
}
