#include "shard/shard_map.h"

#include <algorithm>
#include <cstdio>

namespace recraft::shard {

std::string ShardInfo::ToString() const {
  std::string s = "shard#" + std::to_string(id) + " " + range.ToString() + " {";
  for (size_t i = 0; i < members.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(members[i]);
  }
  s += "} E" + std::to_string(epoch);
  return s;
}

Status ShardMap::Validate(const std::map<std::string, ShardInfo>& m) {
  if (m.empty()) return Rejected("shard map must not be empty");
  std::vector<ShardId> ids;
  const ShardInfo* prev = nullptr;
  for (const auto& [lo, info] : m) {
    if (info.id == kNoShard) return Rejected("shard without an id");
    ids.push_back(info.id);
    if (info.members.empty()) {
      return Rejected("shard " + std::to_string(info.id) + " has no members");
    }
    if (info.range.empty()) {
      return Rejected("shard " + std::to_string(info.id) + " has empty range");
    }
    if (info.range.lo() != lo) {
      return Internal("shard map key does not match range.lo");
    }
    if (prev == nullptr) {
      if (!lo.empty()) {
        return Rejected("coverage gap before " + info.range.ToString());
      }
    } else if (!prev->range.AdjacentBefore(info.range)) {
      return Rejected("gap/overlap between " + prev->range.ToString() +
                      " and " + info.range.ToString());
    }
    prev = &info;
  }
  if (!prev->range.hi_is_inf()) {
    return Rejected("coverage gap after " + prev->range.ToString());
  }
  std::sort(ids.begin(), ids.end());
  if (std::adjacent_find(ids.begin(), ids.end()) != ids.end()) {
    return Rejected("duplicate shard id");
  }
  return OkStatus();
}

Status ShardMap::Install(std::map<std::string, ShardInfo> next,
                         ShardId next_id) {
  if (Status s = Validate(next); !s.ok()) return s;
  by_lo_ = std::move(next);
  next_id_ = next_id;
  ++version_;  // exactly one bump per applied mutation
  return OkStatus();
}

Status ShardMap::Bootstrap(std::vector<ShardInfo> shards) {
  std::map<std::string, ShardInfo> next;
  ShardId next_id = next_id_;
  for (ShardInfo& s : shards) {
    if (s.id == kNoShard) s.id = next_id++;
    std::sort(s.members.begin(), s.members.end());
    std::string lo = s.range.lo();
    if (!next.emplace(std::move(lo), std::move(s)).second) {
      return Rejected("two shards share the same range.lo");
    }
  }
  return Install(std::move(next), next_id);
}

Status ShardMap::Apply(const ShardMapDelta& delta) {
  std::map<std::string, ShardInfo> next = by_lo_;
  ShardId next_id = next_id_;
  for (ShardId id : delta.remove) {
    auto it = std::find_if(next.begin(), next.end(),
                           [id](const auto& kv) { return kv.second.id == id; });
    if (it == next.end()) {
      return Rejected("delta removes unknown shard " + std::to_string(id));
    }
    next.erase(it);
  }
  for (ShardInfo add : delta.add) {
    if (add.id == kNoShard) add.id = next_id++;
    std::sort(add.members.begin(), add.members.end());
    std::string lo = add.range.lo();
    if (!next.emplace(std::move(lo), std::move(add)).second) {
      return Rejected("delta adds a shard over an occupied range.lo");
    }
  }
  return Install(std::move(next), next_id);
}

ShardInfo* ShardMap::FindById(ShardId id) {
  for (auto& [lo, info] : by_lo_) {
    if (info.id == id) return &info;
  }
  return nullptr;
}

Status ShardMap::UpdateMembership(ShardId id, std::vector<NodeId> members,
                                  uint32_t epoch) {
  if (members.empty()) return Rejected("membership delta with no members");
  ShardInfo* info = FindById(id);
  if (info == nullptr) {
    return Rejected("membership delta for unknown shard " + std::to_string(id));
  }
  std::sort(members.begin(), members.end());
  info->members = std::move(members);
  info->epoch = std::max(info->epoch, epoch);
  if (info->leader_hint != kNoNode &&
      !std::binary_search(info->members.begin(), info->members.end(),
                          info->leader_hint)) {
    info->leader_hint = kNoNode;
  }
  ++version_;
  return OkStatus();
}

void ShardMap::UpdateLeaderHint(ShardId id, NodeId leader) {
  ShardInfo* info = FindById(id);
  if (info != nullptr) info->leader_hint = leader;
}

const ShardInfo* ShardMap::Lookup(const std::string& key) const {
  auto it = by_lo_.upper_bound(key);
  if (it == by_lo_.begin()) return nullptr;
  --it;
  return it->second.range.CompareKey(key) == 0 ? &it->second : nullptr;
}

const ShardInfo* ShardMap::Get(ShardId id) const {
  return const_cast<ShardMap*>(this)->FindById(id);
}

std::vector<ShardInfo> ShardMap::Shards() const {
  std::vector<ShardInfo> out;
  out.reserve(by_lo_.size());
  for (const auto& [lo, info] : by_lo_) out.push_back(info);
  return out;
}

std::string ShardMap::ToString() const {
  std::string s = "map v" + std::to_string(version_) + ":";
  for (const auto& [lo, info] : by_lo_) s += "\n  " + info.ToString();
  return s;
}

std::vector<std::string> UniformKeyBoundaries(const std::string& prefix,
                                              uint64_t key_space,
                                              size_t n_shards) {
  std::vector<std::string> keys;
  char buf[48];
  for (size_t i = 1; i < n_shards; ++i) {
    uint64_t k = key_space * i / n_shards;
    std::snprintf(buf, sizeof(buf), "%s%08llu", prefix.c_str(),
                  static_cast<unsigned long long>(k));
    keys.emplace_back(buf);
  }
  return keys;
}

}  // namespace recraft::shard
