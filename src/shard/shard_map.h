// The shard map: an epoch-versioned registry of which consensus group
// serves which key range. It is the data-plane counterpart of the paper's
// etcd overlay / naming layer: routing clients cache a copy and refetch it
// when a reply proves the copy stale (kWrongShard, or a higher-epoch reply
// with a different serving range), and the placement driver mutates it with
// atomic split / merge / membership deltas.
//
// Invariants (checked on every mutation; a delta that would violate them is
// rejected without changing the map):
//   * the shards' ranges cover the full key space exactly once — no gap,
//     no overlap, first lo = -inf, last hi = +inf;
//   * every shard has at least one member and a unique non-zero id;
//   * the map version increases by exactly one per applied mutation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/key_range.h"
#include "common/status.h"
#include "common/types.h"

namespace recraft::shard {

using ShardId = uint32_t;
inline constexpr ShardId kNoShard = 0;

struct ShardInfo {
  ShardId id = kNoShard;  // assigned by the map when 0
  KeyRange range;
  std::vector<NodeId> members;  // kept sorted
  NodeId leader_hint = kNoNode;
  uint32_t epoch = 0;  // consensus epoch of the serving group (a hint)
  ClusterUid uid = 0;
  std::string ToString() const;
};

/// An atomic mutation: drop the shards in `remove`, insert the shards in
/// `add`. The surviving ranges must still tile the key space.
struct ShardMapDelta {
  std::vector<ShardId> remove;
  std::vector<ShardInfo> add;
};

class ShardMap {
 public:
  uint64_t version() const { return version_; }
  size_t size() const { return by_lo_.size(); }
  bool empty() const { return by_lo_.empty(); }

  /// Replace the whole map (initial placement). Assigns ids to entries
  /// with id == kNoShard.
  Status Bootstrap(std::vector<ShardInfo> shards);

  /// Apply a split/merge delta atomically: validated against the full
  /// invariant set first; on failure the map (and version) are untouched.
  Status Apply(const ShardMapDelta& delta);

  /// Membership delta for one shard (after an add/remove on its group).
  Status UpdateMembership(ShardId id, std::vector<NodeId> members,
                          uint32_t epoch);

  /// Record a fresher leader hint. Hints are advisory: no version bump.
  void UpdateLeaderHint(ShardId id, NodeId leader);

  /// The shard covering `key` (binary search over range.lo), or nullptr —
  /// which only happens on an empty map, given full coverage.
  const ShardInfo* Lookup(const std::string& key) const;
  const ShardInfo* Get(ShardId id) const;
  /// All shards in key-range order.
  std::vector<ShardInfo> Shards() const;

  /// Re-verify the invariants of the current content (tests; mutation paths
  /// already enforce them).
  Status CheckInvariants() const { return Validate(by_lo_); }
  std::string ToString() const;

 private:
  static Status Validate(const std::map<std::string, ShardInfo>& m);
  /// Validate `next` and swap it in under a bumped version.
  Status Install(std::map<std::string, ShardInfo> next, ShardId next_id);
  ShardInfo* FindById(ShardId id);

  std::map<std::string, ShardInfo> by_lo_;  // keyed by range.lo
  uint64_t version_ = 0;
  ShardId next_id_ = 1;
};

/// Boundary keys partitioning the zero-padded decimal key population the
/// workload clients generate ("<prefix>%08llu", see ClosedLoopClient) into
/// `n_shards` near-equal spans. Returns n_shards - 1 keys.
std::vector<std::string> UniformKeyBoundaries(const std::string& prefix,
                                              uint64_t key_space,
                                              size_t n_shards);

}  // namespace recraft::shard
