#include "shard/placement.h"

#include <algorithm>

namespace recraft::shard {

PlacementDriver::PlacementDriver(harness::World& world, ShardMap& map,
                                 Rebalancer& rb, PlacementOptions opts)
    : world_(world), map_(map), rb_(rb), opts_(opts) {}

void PlacementDriver::RecordOp(const std::string& key) {
  const ShardInfo* s = map_.Lookup(key);
  if (s != nullptr) ++ops_since_step_[s->id];
}

PlacementDriver::ShardMetrics PlacementDriver::MetricsOf(
    const ShardInfo& s) const {
  ShardMetrics m;
  NodeId probe = world_.LeaderOf(s.members);
  if (probe == kNoNode) {
    for (NodeId id : s.members) {
      if (world_.HasNode(id) && !world_.IsCrashed(id)) {
        probe = id;
        break;
      }
    }
  }
  // Re-validate before dereferencing: CrashNode destroys the node *object*
  // (not just its network presence), so a probe picked from a stale member
  // list — or raced by crash chaos while a rebalance step ran the event
  // loop — must be skipped, not dereferenced.
  if (probe != kNoNode && world_.HasNode(probe) && !world_.IsCrashed(probe)) {
    m.keys = world_.node(probe).machine().Size();
    m.bytes = world_.node(probe).machine().ApproxBytes();
  }
  auto it = ops_since_step_.find(s.id);
  if (it != ops_since_step_.end()) m.ops = it->second;
  return m;
}

Result<std::string> PlacementDriver::PickSplitKey(const ShardInfo& s) const {
  NodeId leader = world_.LeaderOf(s.members);
  if (leader == kNoNode || !world_.HasNode(leader) ||
      world_.IsCrashed(leader)) {
    return Unavailable("shard has no live leader");
  }
  return world_.node(leader).machine().SplitHint(0.5);
}

std::vector<NodeId> PlacementDriver::TakeSpares(size_t n) {
  std::vector<NodeId> out;
  while (out.size() < n && !spares_.empty()) {
    out.push_back(spares_.front());
    spares_.pop_front();
  }
  while (out.size() < n) out.push_back(world_.CreateSpareNode());
  return out;
}

void PlacementDriver::ReleaseFreed(const std::vector<NodeId>& freed) {
  for (NodeId id : freed) {
    if (opts_.recycle_freed) {
      // Best effort: a node that cannot be wiped right now (e.g. crashed)
      // is simply not pooled; splits fall back to fresh spares.
      if (!world_.WipeNode(id).ok()) continue;
    }
    spares_.push_back(id);
  }
}

void PlacementDriver::ReconcileRegion(const std::vector<ShardId>& ids,
                                      const KeyRange& region,
                                      const std::vector<NodeId>& probes) {
  // Collect the live groups currently claiming (parts of) the region.
  std::map<ClusterUid, ShardInfo> found;
  for (NodeId n : probes) {
    if (!world_.HasNode(n) || world_.IsCrashed(n)) continue;
    const raft::ConfigState& cfg = world_.node(n).config();
    if (cfg.members.empty() || cfg.range.empty()) continue;
    if (!cfg.range.Overlaps(region)) continue;
    ShardInfo& info = found[cfg.uid];
    info.range = cfg.range;
    info.members = cfg.members;
    info.uid = cfg.uid;
    info.epoch = std::max(info.epoch, world_.node(n).epoch());
  }
  std::vector<ShardInfo> pieces;
  pieces.reserve(found.size());
  for (auto& [uid, info] : found) pieces.push_back(info);
  std::sort(pieces.begin(), pieces.end(),
            [](const ShardInfo& a, const ShardInfo& b) {
              return a.range.lo() < b.range.lo();
            });
  if (pieces.empty() || pieces.front().range.lo() != region.lo()) return;
  for (size_t i = 0; i + 1 < pieces.size(); ++i) {
    if (!pieces[i].range.AdjacentBefore(pieces[i + 1].range)) return;
  }
  const KeyRange& last = pieces.back().range;
  if (last.hi_is_inf() != region.hi_is_inf()) return;
  if (!region.hi_is_inf() && last.hi() != region.hi()) return;
  for (ShardInfo& p : pieces) p.leader_hint = world_.LeaderOf(p.members);
  ShardMapDelta delta;
  delta.remove = ids;
  delta.add = std::move(pieces);
  (void)map_.Apply(delta);
}

Status PlacementDriver::SplitShard(ShardId id, std::string split_key) {
  const ShardInfo* found = map_.Get(id);
  if (found == nullptr) return NotFound("unknown shard");
  ShardInfo shard = *found;  // the map may mutate under us below
  if (split_key.empty()) {
    auto k = PickSplitKey(shard);
    if (!k.ok()) return k.status();
    split_key = *k;
  }
  if (shard.range.CompareKey(split_key) != 0 || split_key == shard.range.lo()) {
    return Rejected("split key not strictly inside " + shard.range.ToString());
  }
  std::vector<NodeId> extra;
  if (shard.members.size() < 2 * opts_.nodes_per_shard) {
    extra = TakeSpares(2 * opts_.nodes_per_shard - shard.members.size());
  }
  auto res = rb_.Split(shard, split_key, extra);
  if (!res.ok()) {
    // The operation may still have (partially) committed — e.g. the split
    // succeeded but the leader wait timed out. Rebuild the affected map
    // entry from the live configurations, then return unconsumed spares.
    std::vector<NodeId> probes = shard.members;
    probes.insert(probes.end(), extra.begin(), extra.end());
    ReconcileRegion({id}, shard.range, probes);
    for (NodeId n : extra) {
      bool consumed = false;
      for (const ShardInfo& s : map_.Shards()) {
        if (std::binary_search(s.members.begin(), s.members.end(), n)) {
          consumed = true;
          break;
        }
      }
      if (!consumed) spares_.push_back(n);
    }
    return res.status();
  }
  ShardMapDelta delta;
  delta.remove = {id};
  delta.add = res->shards;
  if (Status s = map_.Apply(delta); !s.ok()) return s;
  ops_since_step_.erase(id);
  ReleaseFreed(res->freed);
  ++splits_done_;
  return OkStatus();
}

Status PlacementDriver::MergeShards(ShardId left_id, ShardId right_id) {
  const ShardInfo* lp = map_.Get(left_id);
  const ShardInfo* rp = map_.Get(right_id);
  if (lp == nullptr || rp == nullptr) return NotFound("unknown shard");
  ShardInfo left = *lp, right = *rp;
  if (!left.range.AdjacentBefore(right.range)) {
    return Rejected("shards are not adjacent in key order");
  }
  auto res = rb_.Merge(left, right);
  if (!res.ok()) {
    // The merge may still have committed (e.g. the resume wait timed out):
    // rebuild both entries from the live configurations over their span.
    auto region = KeyRange::MergeAdjacent({left.range, right.range});
    if (region.ok()) {
      std::vector<NodeId> probes = left.members;
      probes.insert(probes.end(), right.members.begin(), right.members.end());
      ReconcileRegion({left_id, right_id}, *region, probes);
    }
    return res.status();
  }
  ShardMapDelta delta;
  delta.remove = {left_id, right_id};
  delta.add = res->shards;
  if (Status s = map_.Apply(delta); !s.ok()) return s;
  ops_since_step_.erase(left_id);
  ops_since_step_.erase(right_id);
  ReleaseFreed(res->freed);
  ++merges_done_;
  return OkStatus();
}

void PlacementDriver::PublishMetrics() {
  metrics_.gauge("placement.shards").Set(static_cast<int64_t>(map_.size()));
  metrics_.gauge("placement.spares")
      .Set(static_cast<int64_t>(spares_.size()));
  for (const ShardInfo& s : map_.Shards()) {
    ShardMetrics m = MetricsOf(s);
    const std::string prefix = "shard." + std::to_string(s.id);
    metrics_.gauge(prefix + ".keys").Set(static_cast<int64_t>(m.keys));
    metrics_.gauge(prefix + ".bytes").Set(static_cast<int64_t>(m.bytes));
    metrics_.histogram("placement.shard_keys").Record(m.keys);
  }
}

PlacementDriver::StepReport PlacementDriver::Step() {
  StepReport report;
  // Publish first: the snapshot reflects the metrics this pass decides on,
  // and the per-shard op windows are still intact (cleared at the end).
  PublishMetrics();
  for (const auto& [id, ops] : ops_since_step_) {
    // NOLINTNEXTLINE(recraft-hot-path-hygiene): once per policy pass, and the per-shard name is dynamic by design
    metrics_.counters().Add("shard." + std::to_string(id) + ".ops", ops);
  }

  // -- split pass: the biggest shard over a threshold ----------------------
  if (map_.size() < opts_.max_shards &&
      (opts_.split_threshold_keys > 0 || opts_.split_threshold_ops > 0)) {
    ShardId pick = kNoShard;
    size_t pick_keys = 0;
    for (const ShardInfo& s : map_.Shards()) {
      ShardMetrics m = MetricsOf(s);
      bool hot = (opts_.split_threshold_keys > 0 &&
                  m.keys >= opts_.split_threshold_keys) ||
                 (opts_.split_threshold_ops > 0 &&
                  m.ops >= opts_.split_threshold_ops);
      if (hot && (pick == kNoShard || m.keys > pick_keys)) {
        pick = s.id;
        pick_keys = m.keys;
      }
    }
    if (pick != kNoShard) {
      Status s = SplitShard(pick);
      if (s.ok()) {
        ++report.splits;
        report.actions.push_back("split shard#" + std::to_string(pick));
      } else {
        report.actions.push_back("split shard#" + std::to_string(pick) +
                                 " failed: " + s.ToString());
      }
    }
  }

  // -- merge pass: the coldest adjacent pair under the threshold -----------
  if (map_.size() > opts_.min_shards && opts_.merge_threshold_keys > 0) {
    auto shards = map_.Shards();  // re-read: the split pass may have changed it
    ShardId pick_l = kNoShard, pick_r = kNoShard;
    size_t pick_total = 0;
    for (size_t i = 0; i + 1 < shards.size(); ++i) {
      size_t total =
          MetricsOf(shards[i]).keys + MetricsOf(shards[i + 1]).keys;
      if (total > opts_.merge_threshold_keys) continue;
      if (pick_l == kNoShard || total < pick_total) {
        pick_l = shards[i].id;
        pick_r = shards[i + 1].id;
        pick_total = total;
      }
    }
    if (pick_l != kNoShard) {
      Status s = MergeShards(pick_l, pick_r);
      if (s.ok()) {
        ++report.merges;
        report.actions.push_back("merged shard#" + std::to_string(pick_l) +
                                 " + shard#" + std::to_string(pick_r));
      } else {
        report.actions.push_back("merge shard#" + std::to_string(pick_l) +
                                 " + shard#" + std::to_string(pick_r) +
                                 " failed: " + s.ToString());
      }
    }
  }

  // Load windows are per-step.
  ops_since_step_.clear();
  return report;
}

}  // namespace recraft::shard
