// The placement driver: the policy loop that turns per-shard size/load
// metrics into split and merge decisions and drives them through a
// Rebalancer (native ReCraft or the TC baseline), updating the hosted
// shard map with an atomic delta after each completed operation. Freed
// nodes are wiped and pooled as spares that staff future splits, so a
// long-running plane recycles its fleet instead of growing it.
#pragma once

#include <deque>
#include <map>
#include <string>

#include "common/metrics.h"
#include "harness/world.h"
#include "shard/rebalancer.h"
#include "shard/shard_map.h"

namespace recraft::shard {

struct PlacementOptions {
  /// Split a shard once its group holds at least this many keys (0 = size
  /// never triggers a split).
  size_t split_threshold_keys = 4096;
  /// Split a shard once it served at least this many ops since the last
  /// Step (0 = load never triggers a split).
  uint64_t split_threshold_ops = 0;
  /// Merge an adjacent pair whose combined key count is at most this.
  size_t merge_threshold_keys = 512;
  size_t min_shards = 1;
  size_t max_shards = 64;
  /// Target group size; splits take spares to staff both halves at this.
  size_t nodes_per_shard = 3;
  /// Wipe freed nodes back to blank spares before pooling them.
  bool recycle_freed = true;
};

class PlacementDriver {
 public:
  PlacementDriver(harness::World& world, ShardMap& map, Rebalancer& rb,
                  PlacementOptions opts = {});

  /// Load-accounting hook; wire it to ClientOptions::on_op_complete.
  void RecordOp(const std::string& key);

  struct StepReport {
    int splits = 0;
    int merges = 0;
    std::vector<std::string> actions;  // human-readable decisions/errors
  };
  /// One policy pass: at most one split and one merge, picked from current
  /// metrics. The op runs synchronously on the world's event loop, so
  /// client traffic keeps flowing while the shard reconfigures.
  StepReport Step();

  /// Policy-bypassing drives, shared by tests and the bench. An empty
  /// split key means "median key of the shard's store".
  Status SplitShard(ShardId id, std::string split_key = {});
  Status MergeShards(ShardId left_id, ShardId right_id);

  size_t spare_count() const { return spares_.size(); }
  void AddSpare(NodeId id) { spares_.push_back(id); }
  uint64_t splits_done() const { return splits_done_; }
  uint64_t merges_done() const { return merges_done_; }

  struct ShardMetrics {
    size_t keys = 0;
    size_t bytes = 0;  // machine ApproxBytes() at the probed replica
    uint64_t ops = 0;  // since the last Step
  };

  /// Refresh the registry from the live shard map: per-shard keys/bytes
  /// gauges, cumulative per-shard op counters, and a `shards` gauge. Step()
  /// publishes before acting, so after a Step the snapshot shows the state
  /// the decisions were made from; callers may also publish on demand.
  void PublishMetrics();
  const MetricRegistry& metrics() const { return metrics_; }
  MetricRegistry& metrics() { return metrics_; }

 private:
  ShardMetrics MetricsOf(const ShardInfo& s) const;
  Result<std::string> PickSplitKey(const ShardInfo& s) const;
  std::vector<NodeId> TakeSpares(size_t n);
  void ReleaseFreed(const std::vector<NodeId>& freed);
  /// After a failed rebalance whose operation may still have committed
  /// (e.g. a leader-wait timeout), rebuild the map entries `ids` covering
  /// `region` from the live configurations of `probes`. Applies a delta
  /// only when the observed groups tile the region exactly; otherwise the
  /// map is left untouched (a later reconcile or retry will catch up).
  void ReconcileRegion(const std::vector<ShardId>& ids, const KeyRange& region,
                       const std::vector<NodeId>& probes);

  harness::World& world_;
  ShardMap& map_;
  Rebalancer& rb_;
  PlacementOptions opts_;
  std::deque<NodeId> spares_;
  std::map<ShardId, uint64_t> ops_since_step_;
  uint64_t splits_done_ = 0;
  uint64_t merges_done_ = 0;
  MetricRegistry metrics_;
};

}  // namespace recraft::shard
