#include "shard/rebalancer.h"

#include <algorithm>

#include "tc/cluster_manager.h"

namespace recraft::shard {

namespace {

/// Read back a group's authoritative state into a shard entry (id left for
/// the map to assign).
ShardInfo DescribeGroup(harness::World& w, const std::vector<NodeId>& members) {
  ShardInfo s;
  raft::ConfigState cfg = w.ConfigOf(members);
  s.members = cfg.members;
  std::sort(s.members.begin(), s.members.end());
  s.range = cfg.range;
  s.uid = cfg.uid;
  NodeId leader = w.LeaderOf(s.members);
  s.leader_hint = leader;
  if (leader != kNoNode) s.epoch = w.node(leader).epoch();
  return s;
}

/// Halve a sorted member list into two groups for a split.
void HalveMembers(const std::vector<NodeId>& members,
                  std::vector<NodeId>* left, std::vector<NodeId>* right) {
  size_t half = members.size() / 2;
  left->assign(members.begin(), members.begin() + half);
  right->assign(members.begin() + half, members.end());
}

/// One vanilla AR-RPC membership step, retried the way the admin-tool
/// script would: "P1: uncommitted configuration entry" just means the
/// previous step has not committed yet, and "already/not a member" means a
/// retransmitted step already took effect.
Status ArRpcStep(harness::World& w, const std::vector<NodeId>& members,
                 raft::MemberChangeKind kind, NodeId node, Duration timeout) {
  TimePoint deadline = w.now() + timeout;
  bool want_member = kind == raft::MemberChangeKind::kAddServer;
  for (;;) {
    raft::MemberChange mc;
    mc.kind = kind;
    mc.nodes = {node};
    Status s = w.AdminMemberChange(
        members, mc, deadline > w.now() ? deadline - w.now() : 0);
    if (s.ok()) break;
    // A retransmitted step that already took effect is rejected with
    // exactly these validation messages (same idempotency rule as the CM).
    if (s.code() == Code::kRejected &&
        (s.message().find("already a member") != std::string::npos ||
         s.message().find("not a member") != std::string::npos)) {
      break;
    }
    if (s.code() != Code::kRejected || w.now() >= deadline) return s;
    w.RunFor(100 * kMillisecond);
  }
  bool settled = w.RunUntil(
      [&]() {
        raft::ConfigState cfg = w.ConfigOf(members);
        return cfg.IsMember(node) == want_member;
      },
      deadline > w.now() ? deadline - w.now() : 0);
  return settled ? OkStatus()
                 : Timeout("AR-RPC membership step did not settle");
}

}  // namespace

// ---------------------------------------------------------------------------
// Native (ReCraft) path.

Result<RebalanceResult> NativeRebalancer::Split(
    const ShardInfo& shard, const std::string& split_key,
    const std::vector<NodeId>& extra_nodes) {
  std::vector<NodeId> members = shard.members;
  if (!extra_nodes.empty()) {
    // Grow first (AddAndResize, one consensus step) so both halves are
    // fully staffed after the split.
    std::vector<NodeId> target = members;
    target.insert(target.end(), extra_nodes.begin(), extra_nodes.end());
    std::sort(target.begin(), target.end());
    auto steps = world_.AdminResizeTo(members, target, op_timeout_);
    if (!steps.ok()) return steps.status();
    members = target;
  }
  if (members.size() < 2) return Rejected("not enough members to split");
  std::sort(members.begin(), members.end());
  std::vector<NodeId> left, right;
  HalveMembers(members, &left, &right);

  Status s = world_.AdminSplit(members, {left, right}, {split_key}, op_timeout_);
  if (!s.ok()) return s;
  if (!world_.WaitForLeader(left, op_timeout_) ||
      !world_.WaitForLeader(right, op_timeout_)) {
    return Timeout("split subclusters did not elect leaders");
  }
  RebalanceResult out;
  out.shards = {DescribeGroup(world_, left), DescribeGroup(world_, right)};
  return out;
}

Result<RebalanceResult> NativeRebalancer::Merge(const ShardInfo& left,
                                                const ShardInfo& right) {
  // Resize-at-merge: resume with the left group's members only, freeing the
  // right group's nodes for future splits (§III-C.2).
  std::vector<NodeId> resume = left.members;
  std::sort(resume.begin(), resume.end());
  Status s = world_.AdminMerge({left.members, right.members}, resume,
                               op_timeout_);
  if (!s.ok()) return s;
  bool served = world_.RunUntil(
      [&]() {
        for (NodeId id : resume) {
          if (world_.IsCrashed(id)) return false;
          const auto& n = world_.node(id);
          if (n.config().members != resume || n.merge_exchange_pending()) {
            return false;
          }
        }
        return world_.LeaderOf(resume) != kNoNode;
      },
      op_timeout_);
  if (!served) return Timeout("merged shard did not resume serving");
  RebalanceResult out;
  out.shards = {DescribeGroup(world_, resume)};
  out.freed = right.members;
  return out;
}

// ---------------------------------------------------------------------------
// TC baseline.

Result<RebalanceResult> TcRebalancer::Split(
    const ShardInfo& shard, const std::string& split_key,
    const std::vector<NodeId>& extra_nodes) {
  std::vector<NodeId> members = shard.members;
  // The admin-tool script grows the cluster one AR-RPC at a time.
  for (NodeId n : extra_nodes) {
    Status s = ArRpcStep(world_, members, raft::MemberChangeKind::kAddServer,
                         n, op_timeout_);
    if (!s.ok()) return s;
    members.push_back(n);
  }
  if (members.size() < 2) return Rejected("not enough members to split");
  std::sort(members.begin(), members.end());
  std::vector<NodeId> left, right;
  HalveMembers(members, &left, &right);
  auto ranges = shard.range.SplitAt({split_key});
  if (!ranges.ok()) return ranges.status();

  tc::SplitOp op;
  op.source_members = members;
  op.groups = {left, right};
  op.ranges = *ranges;
  tc::TcOptions topts;
  topts.op_salt = next_salt_++;
  auto timings = tc::RunTcSplit(world_, next_cm_id_++, op, topts, op_timeout_);
  if (!timings.ok()) return timings.status();
  if (!world_.WaitForLeader(left, op_timeout_) ||
      !world_.WaitForLeader(right, op_timeout_)) {
    return Timeout("TC split groups did not elect leaders");
  }
  RebalanceResult out;
  out.shards = {DescribeGroup(world_, left), DescribeGroup(world_, right)};
  return out;
}

Result<RebalanceResult> TcRebalancer::Merge(const ShardInfo& left,
                                            const ShardInfo& right) {
  tc::MergeOp op;
  op.clusters = {left.members, right.members};
  op.ranges = {left.range, right.range};
  tc::TcOptions topts;
  topts.op_salt = next_salt_++;
  auto timings = tc::RunTcMerge(world_, next_cm_id_++, op, topts, op_timeout_);
  if (!timings.ok()) return timings.status();

  // The CM script rejoined the absorbed nodes into the survivor; shrink
  // back to the survivor's original staffing (again AR-RPC style) so the
  // freed nodes can staff future splits, mirroring the native path.
  std::vector<NodeId> survivors = left.members;
  std::vector<NodeId> current = survivors;
  current.insert(current.end(), right.members.begin(), right.members.end());
  std::sort(current.begin(), current.end());
  for (NodeId n : right.members) {
    current.erase(std::remove(current.begin(), current.end(), n),
                  current.end());
    Status s = ArRpcStep(world_, current, raft::MemberChangeKind::kRemoveServer,
                         n, op_timeout_);
    if (!s.ok()) return s;
  }
  if (!world_.WaitForLeader(survivors, op_timeout_)) {
    return Timeout("TC merged shard did not elect a leader");
  }
  RebalanceResult out;
  out.shards = {DescribeGroup(world_, survivors)};
  out.freed = right.members;
  return out;
}

}  // namespace recraft::shard
