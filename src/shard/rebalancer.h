// One interface over the paper's two reconfiguration mechanisms, so the
// placement driver (and the shardplane bench) can run an identical policy
// over the native ReCraft path and the TiKV/CockroachDB-style external
// cluster-manager baseline — the comparison the paper makes for a single
// operation, here runnable continuously over many shards.
#pragma once

#include <memory>

#include "harness/world.h"
#include "shard/shard_map.h"

namespace recraft::shard {

/// Outcome of one rebalancing operation: the shard entries now covering the
/// affected span (ids left unassigned; the caller applies them to the map
/// as a delta) and the nodes that no longer serve any shard.
struct RebalanceResult {
  std::vector<ShardInfo> shards;
  std::vector<NodeId> freed;
};

class Rebalancer {
 public:
  virtual ~Rebalancer() = default;
  virtual const char* name() const = 0;

  /// Split `shard` in two at `split_key` (strictly inside its range).
  /// `extra_nodes` are caught-up spares the operation may consume to staff
  /// the second group when the shard is too small to divide.
  virtual Result<RebalanceResult> Split(
      const ShardInfo& shard, const std::string& split_key,
      const std::vector<NodeId>& extra_nodes) = 0;

  /// Merge two adjacent shards; left.range immediately precedes right.range.
  virtual Result<RebalanceResult> Merge(const ShardInfo& left,
                                        const ShardInfo& right) = 0;
};

/// ReCraft-native: splits and merges run through the participating groups'
/// own consensus (AdminSplit / AdminMerge with resize-at-merge); merges
/// resume with the left group's members and free the right group's.
class NativeRebalancer : public Rebalancer {
 public:
  explicit NativeRebalancer(harness::World& world,
                            Duration op_timeout = 60 * kSecond)
      : world_(world), op_timeout_(op_timeout) {}

  const char* name() const override { return "native"; }
  Result<RebalanceResult> Split(const ShardInfo& shard,
                                const std::string& split_key,
                                const std::vector<NodeId>& extra_nodes) override;
  Result<RebalanceResult> Merge(const ShardInfo& left,
                                const ShardInfo& right) override;

 private:
  harness::World& world_;
  Duration op_timeout_;
};

/// TC baseline: the same operations scripted by an external cluster manager
/// (membership changes + snapshot migration + node restarts), one fresh CM
/// actor per operation. After a TC merge the rejoined nodes are removed
/// again AR-RPC-style so both paths keep shards at their staffed size and
/// return the same freed set.
class TcRebalancer : public Rebalancer {
 public:
  explicit TcRebalancer(harness::World& world,
                        Duration op_timeout = 120 * kSecond,
                        NodeId first_cm_id = 500000)
      : world_(world), op_timeout_(op_timeout), next_cm_id_(first_cm_id) {}

  const char* name() const override { return "tc"; }
  Result<RebalanceResult> Split(const ShardInfo& shard,
                                const std::string& split_key,
                                const std::vector<NodeId>& extra_nodes) override;
  Result<RebalanceResult> Merge(const ShardInfo& left,
                                const ShardInfo& right) override;

 private:
  harness::World& world_;
  Duration op_timeout_;
  NodeId next_cm_id_;
  uint64_t next_salt_ = 1;
};

}  // namespace recraft::shard
