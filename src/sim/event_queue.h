// Deterministic discrete-event scheduler. All activity in a run — message
// deliveries, node ticks, client arrivals, fault-injection actions — is an
// event on this queue. Events at the same timestamp fire in scheduling order
// (FIFO by sequence number), so a run is fully reproducible from its seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace recraft::sim {

using EventId = uint64_t;
inline constexpr EventId kNoEvent = 0;

class EventQueue {
 public:
  /// Schedule `fn` to run at now() + delay. Returns an id usable with Cancel.
  EventId Schedule(Duration delay, std::function<void()> fn);

  /// Schedule at an absolute time (must be >= now()).
  EventId ScheduleAt(TimePoint when, std::function<void()> fn);

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// no-op (timers race with the events that cancel them).
  void Cancel(EventId id);

  TimePoint now() const { return now_; }
  bool empty() const { return live_count_ == 0; }
  size_t pending() const { return live_count_; }

  /// Run the earliest pending event; returns false when the queue is empty.
  bool RunOne();

  /// Run events until simulated time reaches `deadline` (inclusive of events
  /// at exactly `deadline`) or the queue drains. now() advances to `deadline`.
  void RunUntil(TimePoint deadline);

  /// Run events until `pred()` becomes true or `deadline` passes. Returns
  /// true if the predicate was satisfied. The predicate is checked after
  /// every event.
  bool RunUntilPred(const std::function<bool()>& pred, TimePoint deadline);

  /// Run for `d` more simulated time.
  void RunFor(Duration d) { RunUntil(now_ + d); }

  uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    TimePoint t;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;
    }
  };

  void PurgeCancelledTop();
  bool PopAndRun();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  TimePoint now_ = 0;
  EventId next_id_ = 1;
  size_t live_count_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace recraft::sim
