// Deterministic discrete-event scheduler. All activity in a run — message
// deliveries, node ticks, client arrivals, fault-injection actions — is an
// event on this queue. Events at the same timestamp fire in scheduling order
// (FIFO by sequence number), so a run is fully reproducible from its seed.
//
// The executed (time, sequence) trace and the order of RNG draws are frozen
// contracts: the chaos/property suite is schedule-sensitive, so any change
// to tie-breaking or pop order shows up as test flakes. The determinism
// regression test compares `execution_digest()` across two same-seed runs.
//
// Internals are built for events/sec (the simulator core is the bottleneck
// of every bench):
//   - a calendar queue: a ring of 2048 buckets of 64 us, each a small
//     binary min-heap of 24-byte POD entries ordered by (time, seq), plus an
//     overflow heap for events beyond the ~131 ms near horizon. Pops scan an
//     occupancy bitmap from the current bucket, so cost tracks the handful
//     of events near `now` instead of the whole pending set.
//   - O(1) cancellation: an EventId packs (pool slot, generation); Cancel
//     bumps the slot's generation, instantly invalidating the queued entry
//     (purged lazily when its bucket drains) and releasing the callable.
//     Cancelling a fired, cancelled or unknown id is a free no-op — nothing
//     is ever inserted into a side set (the old implementation leaked ids
//     cancelled after firing).
//   - pooled, move-only event records: callables live in recycled pool
//     slots with 48 bytes of inline storage, so the steady state (message
//     deliveries, ticks, timer churn) allocates nothing per event.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.h"

namespace recraft::sim {

using EventId = uint64_t;
inline constexpr EventId kNoEvent = 0;

/// A move-only callable with inline storage. Closures up to kInlineBytes
/// (enough for a network delivery: this + endpoints + payload shared_ptr +
/// size) are stored in place; larger ones fall back to a single heap
/// allocation. Unlike std::function it never copies the callable, so firing
/// invokes the exact object that was scheduled.
class EventFn {
 public:
  static constexpr size_t kInlineBytes = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  /* implicit */ EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_))
          D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { Reset(); }

  /// Destroy the held callable (and release whatever it captured).
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    assert(ops_ != nullptr);
    ops_->invoke(buf_);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
      [](void* dst, void* src) {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
      [](void* dst, void* src) {
        D** s = std::launder(reinterpret_cast<D**>(src));
        ::new (dst) D*(*s);
      },
      [](void* p) { delete *std::launder(reinterpret_cast<D**>(p)); },
  };

  void MoveFrom(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

class EventQueue {
 public:
  EventQueue();

  /// Schedule `fn` to run at now() + delay. Returns an id usable with Cancel.
  EventId Schedule(Duration delay, EventFn fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Schedule at an absolute time (must be >= now()).
  EventId ScheduleAt(TimePoint when, EventFn fn);

  /// Cancel a pending event: O(1), destroys the callable immediately.
  /// Cancelling an already-fired, already-cancelled or unknown id is a
  /// no-op (timers race with the events that cancel them).
  void Cancel(EventId id);

  TimePoint now() const { return now_; }
  /// Stable pointer to the simulated clock, for observers (the flight
  /// recorder timestamps records through it without a virtual call).
  const TimePoint* now_ptr() const { return &now_; }
  bool empty() const { return live_ == 0; }
  size_t pending() const { return live_; }

  /// Run the earliest pending event; returns false when the queue is empty.
  bool RunOne();

  /// Run events until simulated time reaches `deadline` (inclusive of events
  /// at exactly `deadline`) or the queue drains. now() advances to `deadline`.
  void RunUntil(TimePoint deadline);

  /// Run events until `pred()` becomes true or `deadline` passes. Returns
  /// true if the predicate was satisfied. The predicate is checked after
  /// every event.
  bool RunUntilPred(const std::function<bool()>& pred, TimePoint deadline);

  /// Run for `d` more simulated time.
  void RunFor(Duration d) { RunUntil(now_ + d); }

  uint64_t events_executed() const { return executed_; }

  /// Rolling hash over the executed (time, seq) trace. Two runs of the same
  /// seeded scenario must produce identical digests — the determinism
  /// regression the schedule-sensitive suites rely on.
  uint64_t execution_digest() const { return digest_; }

  /// Number of pool slots ever allocated (high-water mark of concurrently
  /// pending events). Exposed so tests can assert cancellation churn does
  /// not grow internal state without bound.
  size_t pool_slots() const { return pool_.size(); }

 private:
  // A queued reference to a pooled event record. POD; bucket heaps order by
  // (t, seq). `gen` detects cancellation: the entry is stale (skipped and
  // discarded) once the pool slot's generation moved on.
  struct Entry {
    TimePoint t;
    uint64_t seq;
    uint32_t slot;
    uint32_t gen;
  };

  struct Rec {
    EventFn fn;
    uint32_t gen = 0;  // odd = live, even = free; ids embed the live value
    uint32_t next_free = kNilSlot;
  };

  static constexpr uint32_t kNilSlot = 0xffffffffu;
  static constexpr int kBucketBits = 6;        // 64 us per bucket
  static constexpr size_t kNumBuckets = 2048;  // ~131 ms near horizon
  static constexpr size_t kBucketMask = kNumBuckets - 1;
  static constexpr size_t kBitmapWords = kNumBuckets / 64;

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  uint32_t AllocSlot(EventFn fn);
  void FreeSlot(uint32_t slot);
  void InsertEntry(const Entry& e);
  void WheelInsert(const Entry& e);
  void PurgeFarTop();
  void PurgeBucketTop(size_t idx);
  size_t ScanOccupied(size_t start) const;

  /// Find the earliest live pending entry (purging stale ones and migrating
  /// far events on the way); false when nothing is pending. Caches the
  /// entry's location for TakeLocated().
  bool Locate(Entry* out);
  /// Remove the entry Locate() just found from its heap.
  void TakeLocated();
  /// Consume the entry: free its slot, advance time, invoke the callable.
  void Fire(const Entry& e);

  std::vector<std::vector<Entry>> wheel_;  // kNumBuckets min-heaps
  uint64_t occupied_[kBitmapWords] = {};
  size_t wheel_size_ = 0;       // entries (incl. stale) across all buckets
  std::vector<Entry> far_;      // min-heap of events beyond the horizon
  uint64_t cursor_ = 0;         // bucket number; wheel covers [cursor, +N)

  std::vector<Rec> pool_;
  uint32_t free_head_ = kNilSlot;

  bool loc_far_ = false;  // location cache for TakeLocated()
  size_t loc_idx_ = 0;

  TimePoint now_ = 0;
  uint64_t next_seq_ = 1;
  size_t live_ = 0;
  uint64_t executed_ = 0;
  uint64_t digest_ = 0x9e3779b97f4a7c15ULL;
};

}  // namespace recraft::sim
