#include "sim/transport.h"

#include <memory>
#include <utility>

namespace recraft::sim {

void SimTransport::Bind(NodeId node, net::ReceiveFn fn) {
  net_->Register(node, [fn = std::move(fn)](
                           NodeId from, std::shared_ptr<const void> payload,
                           size_t /*bytes*/, obs::TraceCtx ctx) {
    fn(from, *std::static_pointer_cast<const raft::Message>(payload), ctx);
  });
}

void SimTransport::Send(NodeId from, NodeId to, const raft::MessagePtr& msg) {
  net_->Send(from, to, msg, msg.wire_bytes(), msg.trace_ctx());
}

}  // namespace recraft::sim
