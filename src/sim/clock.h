// net::Clock over the deterministic EventQueue. A pure pass-through:
// CallAfter is exactly events->Schedule (same delay, same scheduling order,
// same event ids — EventId and net::TimerId are both uint64_t with a zero
// sentinel), so code that moves from scheduling events directly to arming
// timers through this seam leaves the executed schedule, and therefore the
// execution digest, bit-identical.
#pragma once

#include "net/clock.h"
#include "sim/event_queue.h"

namespace recraft::sim {

class SimClock final : public net::Clock {
 public:
  explicit SimClock(EventQueue* events) : events_(events) {}

  TimePoint Now() const override { return events_->now(); }

  net::TimerId CallAfter(Duration delay, std::function<void()> fn) override {
    return events_->Schedule(delay, std::move(fn));
  }

  void Cancel(net::TimerId id) override { events_->Cancel(id); }

 private:
  EventQueue* events_;
};

}  // namespace recraft::sim
