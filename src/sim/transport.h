// net::Transport over the simulated Network. A pass-through adapter: Send
// forwards the message record, its memoized wire size and its trace context
// to Network::Send with the same arguments the harness used to pass
// directly, so the RNG draw order (drop test, then jitter) and the event
// schedule — and therefore the execution digest — are bit-identical to the
// pre-seam wiring. Bind wraps the seam's typed ReceiveFn into the network's
// opaque DeliveryHandler; the cast back to raft::Message happens here and
// nowhere above.
//
// Fault injection (partitions, drops, link overrides, crashes) stays on
// sim::Network itself — the seam carries messages, the simulator owns the
// physics. Harness code that injects faults keeps talking to the Network.
#pragma once

#include "net/transport.h"
#include "sim/network.h"

namespace recraft::sim {

class SimTransport final : public net::Transport {
 public:
  explicit SimTransport(Network* net) : net_(net) {}

  void Bind(NodeId node, net::ReceiveFn fn) override;
  void Unbind(NodeId node) override { net_->Unregister(node); }
  void Send(NodeId from, NodeId to, const raft::MessagePtr& msg) override;

 private:
  Network* net_;
};

}  // namespace recraft::sim
