#include "sim/network.h"

#include <algorithm>

#include "common/logging.h"

namespace recraft::sim {

void Network::Register(NodeId node, DeliveryHandler handler) {
  handlers_[node] = std::move(handler);
}

void Network::Unregister(NodeId node) { handlers_.erase(node); }

bool Network::CanCommunicate(NodeId a, NodeId b) const {
  if (a == b) return true;
  if (blocked_.count({std::min(a, b), std::max(a, b)}) > 0) return false;
  if (!group_of_.empty()) {
    // Nodes absent from every group (admin, clients, the naming service)
    // are unaffected by the partition and reach everyone.
    auto ga = group_of_.find(a);
    auto gb = group_of_.find(b);
    if (ga != group_of_.end() && gb != group_of_.end() &&
        ga->second != gb->second) {
      return false;
    }
  }
  return true;
}

Duration Network::DeliveryDelay(NodeId from, NodeId to, size_t bytes) {
  Duration base;
  auto it = link_latency_.find({from, to});
  if (it != link_latency_.end()) {
    base = it->second;
  } else if (from == to) {
    base = opts_.loopback_latency;
  } else {
    base = opts_.base_latency;
    if (opts_.jitter > 0) base += rng_.Uniform(0, 2 * opts_.jitter);
  }
  Duration transfer = 0;
  if (opts_.bandwidth_bytes_per_sec > 0) {
    transfer = static_cast<Duration>(static_cast<double>(bytes) /
                                     static_cast<double>(opts_.bandwidth_bytes_per_sec) *
                                     static_cast<double>(kSecond));
  }
  return base + transfer;
}

void Network::Send(NodeId from, NodeId to, std::shared_ptr<const void> payload,
                   size_t bytes) {
  counters_.Add("net.sent");
  counters_.Add("net.bytes", bytes);
  if (crashed_.count(from) > 0) {
    counters_.Add("net.dropped.src_crashed");
    return;
  }
  if (!CanCommunicate(from, to)) {
    counters_.Add("net.dropped.partition");
    return;
  }
  if (opts_.drop_probability > 0 && from != to &&
      rng_.Chance(opts_.drop_probability)) {
    counters_.Add("net.dropped.random");
    return;
  }
  Duration delay = DeliveryDelay(from, to, bytes);
  events_.Schedule(delay, [this, from, to, payload = std::move(payload),
                           bytes]() {
    if (crashed_.count(to) > 0) {
      counters_.Add("net.dropped.dst_crashed");
      return;
    }
    // Re-check reachability at delivery time: a partition raised while the
    // message was in flight also loses it (conservative, like TCP resets).
    if (!CanCommunicate(from, to)) {
      counters_.Add("net.dropped.partition");
      return;
    }
    auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      counters_.Add("net.dropped.unregistered");
      return;
    }
    counters_.Add("net.delivered");
    it->second(from, payload, bytes);
  });
}

void Network::Block(NodeId a, NodeId b) {
  blocked_.insert({std::min(a, b), std::max(a, b)});
}

void Network::Unblock(NodeId a, NodeId b) {
  blocked_.erase({std::min(a, b), std::max(a, b)});
}

void Network::SetPartitions(const std::vector<std::vector<NodeId>>& groups) {
  group_of_.clear();
  int g = 0;
  for (const auto& group : groups) {
    for (NodeId n : group) group_of_[n] = g;
    ++g;
  }
}

void Network::SetLinkLatency(NodeId from, NodeId to, Duration latency) {
  link_latency_[{from, to}] = latency;
}

void Network::ClearLinkLatency(NodeId from, NodeId to) {
  link_latency_.erase({from, to});
}

}  // namespace recraft::sim
