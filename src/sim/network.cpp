#include "sim/network.h"

#include <algorithm>

#include "common/logging.h"

namespace recraft::sim {

namespace {

template <typename T>
void EnsureIndex(std::vector<T>& v, NodeId id, T fill) {
  if (id >= v.size()) v.resize(static_cast<size_t>(id) + 1, fill);
}

}  // namespace

Network::Network(EventQueue& events, NetworkOptions opts, Rng rng)
    : events_(events), opts_(opts), rng_(rng) {
  cid_.sent = counters_.Intern("net.sent");
  cid_.bytes = counters_.Intern("net.bytes");
  cid_.delivered = counters_.Intern("net.delivered");
  cid_.drop_src_crashed = counters_.Intern("net.dropped.src_crashed");
  cid_.drop_dst_crashed = counters_.Intern("net.dropped.dst_crashed");
  cid_.drop_partition = counters_.Intern("net.dropped.partition");
  cid_.drop_oneway = counters_.Intern("net.dropped.oneway");
  cid_.drop_random = counters_.Intern("net.dropped.random");
  cid_.drop_unregistered = counters_.Intern("net.dropped.unregistered");
}

void Network::Register(NodeId node, DeliveryHandler handler) {
  EnsureIndex(handlers_, node, DeliveryHandler{});
  handlers_[node] = std::move(handler);
}

void Network::Unregister(NodeId node) {
  if (node < handlers_.size()) handlers_[node] = nullptr;
}

void Network::Crash(NodeId node) {
  EnsureIndex(crashed_, node, uint8_t{0});
  crashed_[node] = 1;
}

bool Network::CanCommunicate(NodeId a, NodeId b) const {
  if (a == b) return true;
  if (!blocked_.empty() &&
      blocked_.count(PackLink(std::min(a, b), std::max(a, b))) > 0) {
    return false;
  }
  if (partitions_active_) {
    // Nodes absent from every group (admin, clients, the naming service)
    // are unaffected by the partition and reach everyone.
    int32_t ga = GroupOf(a);
    int32_t gb = GroupOf(b);
    if (ga >= 0 && gb >= 0 && ga != gb) return false;
  }
  return true;
}

bool Network::CanDeliver(NodeId from, NodeId to) const {
  if (!CanCommunicate(from, to)) return false;
  return blocked_oneway_.empty() ||
         blocked_oneway_.count(PackLink(from, to)) == 0;
}

Duration Network::DeliveryDelay(NodeId from, NodeId to, size_t bytes) {
  Duration base;
  bool overridden = false;
  if (!link_latency_.empty()) {
    auto it = link_latency_.find(PackLink(from, to));
    if (it != link_latency_.end()) {
      base = it->second;
      overridden = true;
    }
  }
  if (!overridden) {
    if (from == to) {
      base = opts_.loopback_latency;
    } else {
      base = opts_.base_latency;
      if (opts_.jitter > 0) base += rng_.Uniform(0, 2 * opts_.jitter);
    }
  }
  Duration transfer = 0;
  if (opts_.bandwidth_bytes_per_sec > 0) {
    transfer = static_cast<Duration>(static_cast<double>(bytes) /
                                     static_cast<double>(opts_.bandwidth_bytes_per_sec) *
                                     static_cast<double>(kSecond));
  }
  return base + transfer;
}

void Network::Send(NodeId from, NodeId to, std::shared_ptr<const void> payload,
                   size_t bytes, obs::TraceCtx ctx) {
  counters_.Add(cid_.sent);
  counters_.Add(cid_.bytes, bytes);
  if (recorder_ != nullptr) {
    recorder_->Emit(from, obs::Name::kNetSend, ctx, to, bytes);
  }
  if (IsCrashed(from)) {
    counters_.Add(cid_.drop_src_crashed);
    if (recorder_ != nullptr) {
      recorder_->Emit(from, obs::Name::kNetDropSrcCrashed, ctx, to, bytes);
    }
    return;
  }
  if (!CanCommunicate(from, to)) {
    counters_.Add(cid_.drop_partition);
    if (recorder_ != nullptr) {
      recorder_->Emit(from, obs::Name::kNetDropPartition, ctx, to, bytes);
    }
    return;
  }
  if (!blocked_oneway_.empty() &&
      blocked_oneway_.count(PackLink(from, to)) > 0) {
    counters_.Add(cid_.drop_oneway);
    if (recorder_ != nullptr) {
      recorder_->Emit(from, obs::Name::kNetDropOneWay, ctx, to, bytes);
    }
    return;
  }
  double drop_p = opts_.drop_probability;
  bool drop_overridden = false;
  if (!link_drop_.empty()) {
    auto it = link_drop_.find(PackLink(from, to));
    if (it != link_drop_.end()) {
      drop_p = it->second;
      drop_overridden = true;
    }
  }
  if (drop_p > 0 && from != to) {
    // A per-link override of 1.0 is certain loss: skip the draw so arming
    // and disarming total one-way loss cannot perturb the RNG stream.
    if ((drop_overridden && drop_p >= 1.0) || rng_.Chance(drop_p)) {
      counters_.Add(cid_.drop_random);
      if (recorder_ != nullptr) {
        recorder_->Emit(from, obs::Name::kNetDropRandom, ctx, to, bytes);
      }
      return;
    }
  }
  Duration delay = DeliveryDelay(from, to, bytes);
  events_.Schedule(delay, [this, from, to, payload = std::move(payload),
                           bytes, ctx]() {
    if (IsCrashed(to)) {
      counters_.Add(cid_.drop_dst_crashed);
      if (recorder_ != nullptr) {
        recorder_->Emit(to, obs::Name::kNetDropDstCrashed, ctx, from, bytes);
      }
      return;
    }
    // Re-check reachability at delivery time: a partition or one-way block
    // raised while the message was in flight also loses it (conservative,
    // like TCP resets).
    if (!CanDeliver(from, to)) {
      counters_.Add(cid_.drop_partition);
      if (recorder_ != nullptr) {
        recorder_->Emit(to, obs::Name::kNetDropPartition, ctx, from, bytes);
      }
      return;
    }
    if (to >= handlers_.size() || !handlers_[to]) {
      counters_.Add(cid_.drop_unregistered);
      if (recorder_ != nullptr) {
        recorder_->Emit(to, obs::Name::kNetDropUnregistered, ctx, from,
                        bytes);
      }
      return;
    }
    counters_.Add(cid_.delivered);
    if (recorder_ != nullptr) {
      recorder_->Emit(to, obs::Name::kNetDeliver, ctx, from, bytes);
    }
    handlers_[to](from, payload, bytes, ctx);
  });
}

void Network::Block(NodeId a, NodeId b) {
  blocked_.insert(PackLink(std::min(a, b), std::max(a, b)));
}

void Network::Unblock(NodeId a, NodeId b) {
  blocked_.erase(PackLink(std::min(a, b), std::max(a, b)));
}

void Network::BlockOneWay(NodeId from, NodeId to) {
  blocked_oneway_.insert(PackLink(from, to));
}

void Network::UnblockOneWay(NodeId from, NodeId to) {
  blocked_oneway_.erase(PackLink(from, to));
}

void Network::HealAll() {
  partitions_active_ = false;
  blocked_.clear();
  blocked_oneway_.clear();
  link_latency_.clear();
  link_drop_.clear();
}

void Network::SetPartitions(const std::vector<std::vector<NodeId>>& groups) {
  std::fill(group_of_.begin(), group_of_.end(), -1);
  int32_t g = 0;
  for (const auto& group : groups) {
    for (NodeId n : group) {
      EnsureIndex(group_of_, n, int32_t{-1});
      group_of_[n] = g;
    }
    ++g;
  }
  partitions_active_ = true;
}

void Network::SetLinkLatency(NodeId from, NodeId to, Duration latency) {
  link_latency_[PackLink(from, to)] = latency;
}

void Network::ClearLinkLatency(NodeId from, NodeId to) {
  link_latency_.erase(PackLink(from, to));
}

void Network::SetLinkDropProbability(NodeId from, NodeId to, double p) {
  link_drop_[PackLink(from, to)] = p;
}

void Network::ClearLinkDropProbability(NodeId from, NodeId to) {
  link_drop_.erase(PackLink(from, to));
}

}  // namespace recraft::sim
