#include "sim/event_queue.h"

#include <cassert>

namespace recraft::sim {

EventId EventQueue::Schedule(Duration delay, std::function<void()> fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId EventQueue::ScheduleAt(TimePoint when, std::function<void()> fn) {
  assert(when >= now_);
  EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(fn)});
  ++live_count_;
  return id;
}

void EventQueue::Cancel(EventId id) {
  if (id == kNoEvent) return;
  // Lazily discarded when popped; the id set stays small because fired
  // events remove themselves from it.
  cancelled_.insert(id);
}

void EventQueue::PurgeCancelledTop() {
  while (!queue_.empty()) {
    auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    queue_.pop();
    --live_count_;
  }
}

bool EventQueue::PopAndRun() {
  PurgeCancelledTop();
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  --live_count_;
  now_ = ev.t;
  ++executed_;
  ev.fn();
  return true;
}

bool EventQueue::RunOne() { return PopAndRun(); }

void EventQueue::RunUntil(TimePoint deadline) {
  for (;;) {
    PurgeCancelledTop();
    if (queue_.empty() || queue_.top().t > deadline) break;
    PopAndRun();
  }
  if (now_ < deadline) now_ = deadline;
}

bool EventQueue::RunUntilPred(const std::function<bool()>& pred,
                              TimePoint deadline) {
  if (pred()) return true;
  for (;;) {
    PurgeCancelledTop();
    if (queue_.empty() || queue_.top().t > deadline) break;
    if (!PopAndRun()) break;
    if (pred()) return true;
  }
  if (now_ < deadline) now_ = deadline;
  return pred();
}

}  // namespace recraft::sim
