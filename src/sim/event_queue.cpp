#include "sim/event_queue.h"

#include <algorithm>
#include <bit>

#include "common/rng.h"

namespace recraft::sim {

EventQueue::EventQueue() : wheel_(kNumBuckets) {}

uint32_t EventQueue::AllocSlot(EventFn fn) {
  uint32_t slot;
  if (free_head_ != kNilSlot) {
    slot = free_head_;
    free_head_ = pool_[slot].next_free;
  } else {
    slot = static_cast<uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  Rec& r = pool_[slot];
  ++r.gen;  // even (free) -> odd (live)
  r.fn = std::move(fn);
  return slot;
}

void EventQueue::FreeSlot(uint32_t slot) {
  Rec& r = pool_[slot];
  ++r.gen;      // odd (live) -> even (free): outstanding ids/entries die
  r.fn.Reset();  // release captures promptly (payloads, liveness tokens)
  r.next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::WheelInsert(const Entry& e) {
  size_t i = (e.t >> kBucketBits) & kBucketMask;
  auto& v = wheel_[i];
  v.push_back(e);
  std::push_heap(v.begin(), v.end(), Later{});
  occupied_[i >> 6] |= 1ULL << (i & 63);
  ++wheel_size_;
}

void EventQueue::InsertEntry(const Entry& e) {
  // Near events go to their calendar bucket; events beyond the wheel's
  // window — or (rarely, after an empty-wheel jump) behind it — overflow
  // into the far heap, which Locate() compares against and harvests from.
  if ((e.t >> kBucketBits) - cursor_ < kNumBuckets) {
    WheelInsert(e);
  } else {
    far_.push_back(e);
    std::push_heap(far_.begin(), far_.end(), Later{});
  }
}

EventId EventQueue::ScheduleAt(TimePoint when, EventFn fn) {
  assert(when >= now_);
  if (when < now_) when = now_;
  uint32_t slot = AllocSlot(std::move(fn));
  uint32_t gen = pool_[slot].gen;
  InsertEntry(Entry{when, next_seq_++, slot, gen});
  ++live_;
  return (static_cast<EventId>(slot) << 32) | gen;
}

void EventQueue::Cancel(EventId id) {
  if (id == kNoEvent) return;
  uint32_t slot = static_cast<uint32_t>(id >> 32);
  uint32_t gen = static_cast<uint32_t>(id);
  if (slot >= pool_.size()) return;
  Rec& r = pool_[slot];
  if (r.gen != gen) return;  // already fired, cancelled or recycled: no-op
  FreeSlot(slot);            // the queued Entry goes stale; purged lazily
  --live_;
}

void EventQueue::PurgeFarTop() {
  while (!far_.empty() && pool_[far_.front().slot].gen != far_.front().gen) {
    std::pop_heap(far_.begin(), far_.end(), Later{});
    far_.pop_back();
  }
}

void EventQueue::PurgeBucketTop(size_t idx) {
  auto& v = wheel_[idx];
  while (!v.empty() && pool_[v.front().slot].gen != v.front().gen) {
    std::pop_heap(v.begin(), v.end(), Later{});
    v.pop_back();
    --wheel_size_;
  }
}

size_t EventQueue::ScanOccupied(size_t start) const {
  size_t w0 = start >> 6;
  uint64_t head = occupied_[w0] & (~0ULL << (start & 63));
  if (head != 0) return (w0 << 6) + static_cast<size_t>(std::countr_zero(head));
  // Wrap around; the final iteration rescans w0's low bits.
  for (size_t k = 1; k <= kBitmapWords; ++k) {
    size_t w = (w0 + k) & (kBitmapWords - 1);
    if (occupied_[w] != 0) {
      return (w << 6) + static_cast<size_t>(std::countr_zero(occupied_[w]));
    }
  }
  return kNumBuckets;
}

bool EventQueue::Locate(Entry* out) {
  PurgeFarTop();
  if (wheel_size_ == 0) {
    if (far_.empty()) return false;
    // Jump an idle wheel forward to the far heap's era so its events can be
    // bucketed instead of heap-popped one by one.
    uint64_t fb = far_.front().t >> kBucketBits;
    if (fb > cursor_) cursor_ = fb;
  }
  // Harvest far events that now fall inside the wheel window.
  for (;;) {
    PurgeFarTop();
    if (far_.empty()) break;
    const Entry top = far_.front();
    if ((top.t >> kBucketBits) - cursor_ >= kNumBuckets) break;
    std::pop_heap(far_.begin(), far_.end(), Later{});
    far_.pop_back();
    WheelInsert(top);
  }
  // Earliest wheel entry: first occupied bucket at/after the cursor.
  bool have_wheel = false;
  Entry wc{};
  const size_t start = cursor_ & kBucketMask;
  for (;;) {
    size_t i = ScanOccupied(start);
    if (i == kNumBuckets) break;
    PurgeBucketTop(i);
    if (wheel_[i].empty()) {
      occupied_[i >> 6] &= ~(1ULL << (i & 63));
      continue;
    }
    wc = wheel_[i].front();
    have_wheel = true;
    cursor_ += (i - start) & kBucketMask;
    loc_far_ = false;
    loc_idx_ = i;
    break;
  }
  // A far entry can only win when it sits behind the wheel window (inserted
  // after an empty-wheel jump); compare directly so order is always exact.
  if (!far_.empty()) {
    const Entry& ft = far_.front();
    if (!have_wheel || Later{}(wc, ft)) {
      *out = ft;
      loc_far_ = true;
      return true;
    }
  }
  if (!have_wheel) return false;
  *out = wc;
  return true;
}

void EventQueue::TakeLocated() {
  if (loc_far_) {
    std::pop_heap(far_.begin(), far_.end(), Later{});
    far_.pop_back();
  } else {
    auto& v = wheel_[loc_idx_];
    std::pop_heap(v.begin(), v.end(), Later{});
    v.pop_back();
    --wheel_size_;
    if (v.empty()) occupied_[loc_idx_ >> 6] &= ~(1ULL << (loc_idx_ & 63));
  }
}

void EventQueue::Fire(const Entry& e) {
  EventFn fn = std::move(pool_[e.slot].fn);
  FreeSlot(e.slot);  // the id dies before the callable runs, like a pop
  --live_;
  now_ = e.t;
  ++executed_;
  digest_ = Mix64(digest_, Mix64(e.t, e.seq));
  fn();
}

bool EventQueue::RunOne() {
  Entry e;
  if (!Locate(&e)) return false;
  TakeLocated();
  Fire(e);
  return true;
}

void EventQueue::RunUntil(TimePoint deadline) {
  Entry e;
  while (Locate(&e) && e.t <= deadline) {
    TakeLocated();
    Fire(e);
  }
  if (now_ < deadline) now_ = deadline;
}

bool EventQueue::RunUntilPred(const std::function<bool()>& pred,
                              TimePoint deadline) {
  if (pred()) return true;
  Entry e;
  while (Locate(&e) && e.t <= deadline) {
    TakeLocated();
    Fire(e);
    if (pred()) return true;
  }
  if (now_ < deadline) now_ = deadline;
  return pred();
}

}  // namespace recraft::sim
