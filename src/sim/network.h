// Simulated message network. Supports per-link latency with jitter, finite
// bandwidth (size-dependent transfer delay), probabilistic drops, pairwise
// blocks, group partitions and crashed endpoints. Payloads are opaque to the
// network; the harness is the single place that casts them back to the
// protocol message type.
//
// Send/deliver is the simulator's hottest path (one per message, several per
// client op), so the per-message state is flat: handlers, crash flags and
// partition groups are dense vectors indexed by NodeId, pairwise state lives
// in hash sets of packed link keys behind an empty() check, and the traffic
// counters are pre-interned CounterSet handles. The order of RNG draws per
// Send (drop test, then jitter) is part of the determinism contract — see
// event_queue.h.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/types.h"
#include "obs/trace.h"
#include "sim/event_queue.h"

namespace recraft::sim {

struct NetworkOptions {
  Duration base_latency = 500;     // one-way, microseconds
  Duration jitter = 100;           // +/- uniform jitter, microseconds
  Duration loopback_latency = 10;  // self-delivery
  uint64_t bandwidth_bytes_per_sec = 1ULL << 30;  // 1 GiB/s
  double drop_probability = 0.0;   // uniform message loss
};

/// A delivery callback: (from, payload, bytes, ctx). Payload lifetime is
/// managed by shared ownership; handlers cast it to the protocol message
/// type. `ctx` is the sender's causal trace context, forwarded unchanged —
/// pure annotation, ignored by handlers that don't trace.
using DeliveryHandler =
    std::function<void(NodeId from, std::shared_ptr<const void> payload,
                       size_t bytes, obs::TraceCtx ctx)>;

class Network {
 public:
  Network(EventQueue& events, NetworkOptions opts, Rng rng);

  /// Register/replace the handler invoked when a message reaches `node`.
  void Register(NodeId node, DeliveryHandler handler);
  void Unregister(NodeId node);

  /// Queue a message for delivery. Applies partitions, drops, latency and
  /// bandwidth. Delivery is skipped if the destination is crashed or
  /// unregistered *at delivery time*. `ctx` rides along to the handler for
  /// causal tracing; it never affects routing, delay or the RNG stream.
  void Send(NodeId from, NodeId to, std::shared_ptr<const void> payload,
            size_t bytes, obs::TraceCtx ctx = {});

  // --- fault injection -------------------------------------------------
  void Crash(NodeId node);
  void Restart(NodeId node) {
    if (node < crashed_.size()) crashed_[node] = 0;
  }
  bool IsCrashed(NodeId node) const {
    return node < crashed_.size() && crashed_[node] != 0;
  }

  /// Block both directions between a and b.
  void Block(NodeId a, NodeId b);
  void Unblock(NodeId a, NodeId b);

  /// Block one direction only: messages from -> to are lost, to -> from
  /// still flow. This is the gray-failure primitive (a NIC that can send
  /// but not receive, an asymmetric routing blackhole).
  void BlockOneWay(NodeId from, NodeId to);
  void UnblockOneWay(NodeId from, NodeId to);

  /// Partition the world into groups; nodes in different groups cannot
  /// communicate. Nodes not mentioned in any group (clients, admin, the
  /// naming service) are unaffected and reach everyone. Replaces any
  /// previous partition.
  void SetPartitions(const std::vector<std::vector<NodeId>>& groups);
  void ClearPartitions() { partitions_active_ = false; }

  /// Heal every injected connectivity fault in one call: partitions,
  /// pairwise blocks (both kinds) and per-link latency/drop overrides.
  /// ClearPartitions alone famously does NOT clear pairwise Blocks — tests
  /// and nemeses that mean "make the network whole again" use this. The
  /// global drop_probability is configuration, not a fault, and is left
  /// untouched (reset it with set_drop_probability(0)).
  void HealAll();

  void set_drop_probability(double p) { opts_.drop_probability = p; }
  const NetworkOptions& options() const { return opts_; }

  /// Arm (non-null) or disarm (null) the flight recorder for the send,
  /// drop and deliver paths. Observation only — see obs/trace.h.
  void set_recorder(obs::Recorder* rec) { recorder_ = rec; }

  /// Override latency for a specific ordered link (one direction).
  void SetLinkLatency(NodeId from, NodeId to, Duration latency);
  void ClearLinkLatency(NodeId from, NodeId to);

  /// Override the drop probability for one ordered link (one direction);
  /// takes precedence over the global drop_probability for that link. The
  /// RNG draw order is unchanged while no override is installed, and an
  /// override of 1.0 draws nothing (loss is certain, like a block).
  void SetLinkDropProbability(NodeId from, NodeId to, double p);
  void ClearLinkDropProbability(NodeId from, NodeId to);

  // --- introspection ----------------------------------------------------
  CounterSet& counters() { return counters_; }
  const CounterSet& counters() const { return counters_; }
  bool CanCommunicate(NodeId a, NodeId b) const;
  /// Directional reachability: CanCommunicate minus one-way blocks.
  bool CanDeliver(NodeId from, NodeId to) const;
  size_t blocked_link_count() const {
    return blocked_.size() + blocked_oneway_.size();
  }
  size_t link_override_count() const {
    return link_latency_.size() + link_drop_.size();
  }

 private:
  static uint64_t PackLink(NodeId a, NodeId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }
  int32_t GroupOf(NodeId n) const {
    return n < group_of_.size() ? group_of_[n] : -1;
  }
  Duration DeliveryDelay(NodeId from, NodeId to, size_t bytes);

  EventQueue& events_;
  NetworkOptions opts_;
  Rng rng_;
  std::vector<DeliveryHandler> handlers_;        // indexed by NodeId
  std::vector<uint8_t> crashed_;                 // indexed by NodeId
  std::unordered_set<uint64_t> blocked_;         // PackLink(min, max)
  std::unordered_set<uint64_t> blocked_oneway_;  // PackLink(from, to)
  std::vector<int32_t> group_of_;                // -1 = in no group
  bool partitions_active_ = false;
  std::unordered_map<uint64_t, Duration> link_latency_;  // PackLink(from, to)
  std::unordered_map<uint64_t, double> link_drop_;       // PackLink(from, to)
  CounterSet counters_;
  obs::Recorder* recorder_ = nullptr;

  // Pre-interned handles for the per-message counters.
  struct {
    CounterSet::Id sent, bytes, delivered;
    CounterSet::Id drop_src_crashed, drop_dst_crashed;
    CounterSet::Id drop_partition, drop_oneway, drop_random;
    CounterSet::Id drop_unregistered;
  } cid_;
};

}  // namespace recraft::sim
