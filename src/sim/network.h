// Simulated message network. Supports per-link latency with jitter, finite
// bandwidth (size-dependent transfer delay), probabilistic drops, pairwise
// blocks, group partitions and crashed endpoints. Payloads are opaque to the
// network; the harness is the single place that casts them back to the
// protocol message type.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace recraft::sim {

struct NetworkOptions {
  Duration base_latency = 500;     // one-way, microseconds
  Duration jitter = 100;           // +/- uniform jitter, microseconds
  Duration loopback_latency = 10;  // self-delivery
  uint64_t bandwidth_bytes_per_sec = 1ULL << 30;  // 1 GiB/s
  double drop_probability = 0.0;   // uniform message loss
};

/// A delivery callback: (from, payload, bytes). Payload lifetime is managed
/// by shared ownership; handlers cast it to the protocol message type.
using DeliveryHandler =
    std::function<void(NodeId from, std::shared_ptr<const void> payload,
                       size_t bytes)>;

class Network {
 public:
  Network(EventQueue& events, NetworkOptions opts, Rng rng)
      : events_(events), opts_(opts), rng_(rng) {}

  /// Register/replace the handler invoked when a message reaches `node`.
  void Register(NodeId node, DeliveryHandler handler);
  void Unregister(NodeId node);

  /// Queue a message for delivery. Applies partitions, drops, latency and
  /// bandwidth. Delivery is skipped if the destination is crashed or
  /// unregistered *at delivery time*.
  void Send(NodeId from, NodeId to, std::shared_ptr<const void> payload,
            size_t bytes);

  // --- fault injection -------------------------------------------------
  void Crash(NodeId node) { crashed_.insert(node); }
  void Restart(NodeId node) { crashed_.erase(node); }
  bool IsCrashed(NodeId node) const { return crashed_.count(node) > 0; }

  /// Block both directions between a and b.
  void Block(NodeId a, NodeId b);
  void Unblock(NodeId a, NodeId b);

  /// Partition the world into groups; nodes in different groups cannot
  /// communicate. Nodes not mentioned in any group (clients, admin, the
  /// naming service) are unaffected and reach everyone. Replaces any
  /// previous partition.
  void SetPartitions(const std::vector<std::vector<NodeId>>& groups);
  void ClearPartitions() { group_of_.clear(); }

  void set_drop_probability(double p) { opts_.drop_probability = p; }
  const NetworkOptions& options() const { return opts_; }

  /// Override latency for a specific ordered link (one direction).
  void SetLinkLatency(NodeId from, NodeId to, Duration latency);
  void ClearLinkLatency(NodeId from, NodeId to);

  // --- introspection ----------------------------------------------------
  CounterSet& counters() { return counters_; }
  bool CanCommunicate(NodeId a, NodeId b) const;

 private:
  Duration DeliveryDelay(NodeId from, NodeId to, size_t bytes);

  EventQueue& events_;
  NetworkOptions opts_;
  Rng rng_;
  std::unordered_map<NodeId, DeliveryHandler> handlers_;
  std::set<NodeId> crashed_;
  std::set<std::pair<NodeId, NodeId>> blocked_;  // normalized (min,max)
  std::unordered_map<NodeId, int> group_of_;     // empty = no partition
  std::map<std::pair<NodeId, NodeId>, Duration> link_latency_;
  CounterSet counters_;
};

}  // namespace recraft::sim
