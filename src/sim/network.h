// Simulated message network. Supports per-link latency with jitter, finite
// bandwidth (size-dependent transfer delay), probabilistic drops, pairwise
// blocks, group partitions and crashed endpoints. Payloads are opaque to the
// network; the harness is the single place that casts them back to the
// protocol message type.
//
// Send/deliver is the simulator's hottest path (one per message, several per
// client op), so the per-message state is flat: handlers, crash flags and
// partition groups are dense vectors indexed by NodeId, pairwise state lives
// in hash sets of packed link keys behind an empty() check, and the traffic
// counters are pre-interned CounterSet handles. The order of RNG draws per
// Send (drop test, then jitter) is part of the determinism contract — see
// event_queue.h.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace recraft::sim {

struct NetworkOptions {
  Duration base_latency = 500;     // one-way, microseconds
  Duration jitter = 100;           // +/- uniform jitter, microseconds
  Duration loopback_latency = 10;  // self-delivery
  uint64_t bandwidth_bytes_per_sec = 1ULL << 30;  // 1 GiB/s
  double drop_probability = 0.0;   // uniform message loss
};

/// A delivery callback: (from, payload, bytes). Payload lifetime is managed
/// by shared ownership; handlers cast it to the protocol message type.
using DeliveryHandler =
    std::function<void(NodeId from, std::shared_ptr<const void> payload,
                       size_t bytes)>;

class Network {
 public:
  Network(EventQueue& events, NetworkOptions opts, Rng rng);

  /// Register/replace the handler invoked when a message reaches `node`.
  void Register(NodeId node, DeliveryHandler handler);
  void Unregister(NodeId node);

  /// Queue a message for delivery. Applies partitions, drops, latency and
  /// bandwidth. Delivery is skipped if the destination is crashed or
  /// unregistered *at delivery time*.
  void Send(NodeId from, NodeId to, std::shared_ptr<const void> payload,
            size_t bytes);

  // --- fault injection -------------------------------------------------
  void Crash(NodeId node);
  void Restart(NodeId node) {
    if (node < crashed_.size()) crashed_[node] = 0;
  }
  bool IsCrashed(NodeId node) const {
    return node < crashed_.size() && crashed_[node] != 0;
  }

  /// Block both directions between a and b.
  void Block(NodeId a, NodeId b);
  void Unblock(NodeId a, NodeId b);

  /// Partition the world into groups; nodes in different groups cannot
  /// communicate. Nodes not mentioned in any group (clients, admin, the
  /// naming service) are unaffected and reach everyone. Replaces any
  /// previous partition.
  void SetPartitions(const std::vector<std::vector<NodeId>>& groups);
  void ClearPartitions() { partitions_active_ = false; }

  void set_drop_probability(double p) { opts_.drop_probability = p; }
  const NetworkOptions& options() const { return opts_; }

  /// Override latency for a specific ordered link (one direction).
  void SetLinkLatency(NodeId from, NodeId to, Duration latency);
  void ClearLinkLatency(NodeId from, NodeId to);

  // --- introspection ----------------------------------------------------
  CounterSet& counters() { return counters_; }
  bool CanCommunicate(NodeId a, NodeId b) const;

 private:
  static uint64_t PackLink(NodeId a, NodeId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }
  int32_t GroupOf(NodeId n) const {
    return n < group_of_.size() ? group_of_[n] : -1;
  }
  Duration DeliveryDelay(NodeId from, NodeId to, size_t bytes);

  EventQueue& events_;
  NetworkOptions opts_;
  Rng rng_;
  std::vector<DeliveryHandler> handlers_;        // indexed by NodeId
  std::vector<uint8_t> crashed_;                 // indexed by NodeId
  std::unordered_set<uint64_t> blocked_;         // PackLink(min, max)
  std::vector<int32_t> group_of_;                // -1 = in no group
  bool partitions_active_ = false;
  std::unordered_map<uint64_t, Duration> link_latency_;  // PackLink(from, to)
  CounterSet counters_;

  // Pre-interned handles for the per-message counters.
  struct {
    CounterSet::Id sent, bytes, delivered;
    CounterSet::Id drop_src_crashed, drop_dst_crashed;
    CounterSet::Id drop_partition, drop_random, drop_unregistered;
  } cid_;
};

}  // namespace recraft::sim
