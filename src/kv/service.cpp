#include "kv/service.h"

#include "common/codec.h"

namespace recraft::kv {

sm::Command EncodeCommand(const Command& cmd) {
  sm::Command out;
  out.key = cmd.key;
  Encoder enc;
  enc.PutU8(kCommandFormat);
  enc.PutU8(static_cast<uint8_t>(cmd.op));
  enc.PutU64(cmd.client_id);
  enc.PutU64(cmd.seq);
  enc.PutString(cmd.value);
  enc.PutString(cmd.expected);
  enc.PutString(cmd.scan_hi);
  enc.PutU32(cmd.scan_limit);
  out.body = enc.Take();
  // Bandwidth accounting matches the pre-sm typed payloads byte-for-byte
  // (24 + key + value for the classic ops), so existing deterministic
  // schedules replay unchanged.
  out.wire_hint = static_cast<uint32_t>(cmd.WireBytes());
  return out;
}

Result<Command> DecodeCommand(const sm::Command& cmd) {
  Decoder dec(cmd.body);
  auto fmt = dec.GetU8();
  if (!fmt.ok()) return fmt.status();
  if (*fmt != kCommandFormat) return Rejected("not a kv command body");
  auto op = dec.GetU8();
  if (!op.ok()) return op.status();
  if (*op > static_cast<uint8_t>(OpType::kScan)) {
    return Internal("kv: bad OpType");
  }
  Command out;
  out.op = static_cast<OpType>(*op);
  out.key = cmd.key;
  auto client = dec.GetU64();
  if (!client.ok()) return client.status();
  out.client_id = *client;
  auto seq = dec.GetU64();
  if (!seq.ok()) return seq.status();
  out.seq = *seq;
  auto value = dec.GetString();
  if (!value.ok()) return value.status();
  out.value = std::move(*value);
  auto expected = dec.GetString();
  if (!expected.ok()) return expected.status();
  out.expected = std::move(*expected);
  auto hi = dec.GetString();
  if (!hi.ok()) return hi.status();
  out.scan_hi = std::move(*hi);
  auto limit = dec.GetU32();
  if (!limit.ok()) return limit.status();
  out.scan_limit = *limit;
  return out;
}

std::string EncodeScanBatch(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(entries.size()));
  for (const auto& [k, v] : entries) {
    enc.PutString(k);
    enc.PutString(v);
  }
  auto bytes = enc.Take();
  return std::string(bytes.begin(), bytes.end());
}

Result<std::vector<std::pair<std::string, std::string>>> DecodeScanBatch(
    const std::string& payload) {
  Decoder dec(payload);  // view, no copy: payload outlives the decode
  auto n = dec.GetU32();
  if (!n.ok()) return n.status();
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(*n);
  for (uint32_t i = 0; i < *n; ++i) {
    auto k = dec.GetString();
    if (!k.ok()) return k.status();
    auto v = dec.GetString();
    if (!v.ok()) return v.status();
    out.emplace_back(std::move(*k), std::move(*v));
  }
  return out;
}

Response DecodeResponse(OpType op, Status status, const std::string& payload) {
  Response r;
  r.status = std::move(status);
  if (op == OpType::kScan) {
    if (r.status.ok()) {
      auto batch = DecodeScanBatch(payload);
      if (batch.ok()) {
        r.entries = std::move(*batch);
      } else {
        // A corrupt/foreign batch must not read as "empty range".
        r.status = batch.status();
      }
    }
  } else {
    r.value = payload;
  }
  return r;
}

}  // namespace recraft::kv
