#include "kv/kv_machine.h"

#include "kv/service.h"

namespace recraft::kv {

sm::CmdResult KvMachine::Apply(const sm::Command& cmd) {
  auto decoded = DecodeCommand(cmd);
  if (!decoded.ok()) return {decoded.status(), {}};
  OpResult res = store_.Apply(*decoded);
  return {std::move(res.status), std::move(res.value)};
}

sm::CmdResult KvMachine::Query(const sm::Command& query) const {
  auto decoded = DecodeCommand(query);
  if (!decoded.ok()) return {decoded.status(), {}};
  switch (decoded->op) {
    case OpType::kGet: {
      auto got = store_.Get(decoded->key);
      if (!got.ok()) return {got.status(), {}};
      return {OkStatus(), std::move(*got)};
    }
    case OpType::kScan: {
      if (!store_.range().Contains(decoded->key)) {
        return {OutOfRange(decoded->key), {}};
      }
      auto batch = store_.Scan(
          decoded->key, decoded->scan_hi,
          decoded->scan_limit == 0 ? kDefaultScanLimit : decoded->scan_limit);
      return {OkStatus(), EncodeScanBatch(batch)};
    }
    default:
      return {Rejected("mutating op on the read path"), {}};
  }
}

sm::SnapshotPtr KvMachine::Wrap(const kv::SnapshotPtr& snap) {
  auto out = std::make_shared<sm::Snapshot>();
  out->range = snap->range;
  out->data = snap->Serialize();
  out->items = snap->data.size();
  out->wire_bytes = snap->SerializedBytes();
  return out;
}

Result<kv::Snapshot> KvMachine::Unwrap(const sm::Snapshot& snap) {
  return kv::Snapshot::Deserialize(snap.data);
}

sm::SnapshotPtr KvMachine::TakeSnapshot() const {
  return Wrap(store_.TakeSnapshot());
}

Result<sm::SnapshotPtr> KvMachine::TakeSnapshot(const KeyRange& sub) const {
  auto snap = store_.TakeSnapshot(sub);
  if (!snap.ok()) return snap.status();
  return Wrap(*snap);
}

Status KvMachine::Restore(const sm::Snapshot& snap) {
  auto parsed = Unwrap(snap);
  if (!parsed.ok()) return parsed.status();
  store_.Restore(*parsed);
  return OkStatus();
}

Status KvMachine::Rebase(const KeyRange& range) {
  store_.Rebase(range);
  return OkStatus();
}

Status KvMachine::MergeIn(const sm::Snapshot& snap) {
  auto parsed = Unwrap(snap);
  if (!parsed.ok()) return parsed.status();
  return store_.MergeIn(*parsed);
}

sm::MachineFactory KvMachineFactory() {
  return [](const KeyRange& range) -> sm::MachinePtr {
    return std::make_unique<KvMachine>(range);
  };
}

}  // namespace recraft::kv
