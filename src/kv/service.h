// The typed client-facing service surface of the KV state machine, and the
// codec that maps it onto the opaque sm::Command / result-payload boundary.
//
// Request side: kv::Command (kv.h) is the typed request — Put / Get /
// Delete / CAS / Scan. EncodeCommand turns it into an sm::Command whose
// `key` is the routing coordinate and whose `body` only the KV machine
// decodes; wire_hint pins the simulator's bandwidth accounting to the same
// sizes the pre-sm system charged, so schedules are reproducible across the
// refactor.
//
// Response side: Response carries the decoded result — a status, a value
// (gets, CAS-mismatch echoes) and the entry batch (scans). Scan batches are
// encoded into the opaque result payload by EncodeScanBatch and decoded by
// DecodeScanBatch.
//
// Read routing: IsReadOnly(op) tells the client whether the op may use the
// leader's ReadIndex path (raft::ReadRequest — quorum-confirmed, served
// from applied state, zero log entries) instead of a log append.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "kv/kv.h"
#include "sm/state_machine.h"

namespace recraft::kv {

/// Scans with scan_limit == 0 are capped here.
inline constexpr size_t kDefaultScanLimit = 64;

/// Format tag leading every KV command body, so a foreign machine's bytes
/// (or a corrupt entry) are rejected instead of misparsed.
inline constexpr uint8_t kCommandFormat = 0x4b;  // 'K'

/// True for ops that must not mutate — eligible for the ReadIndex path.
inline bool IsReadOnly(OpType op) {
  return op == OpType::kGet || op == OpType::kScan;
}

/// Typed response decoded from a ClientReply (or a raw result payload).
struct Response {
  Status status;
  std::string value;  // gets; CAS mismatch: the actual current value
  std::vector<std::pair<std::string, std::string>> entries;  // scans
};

sm::Command EncodeCommand(const Command& cmd);
Result<Command> DecodeCommand(const sm::Command& cmd);

std::string EncodeScanBatch(
    const std::vector<std::pair<std::string, std::string>>& entries);
Result<std::vector<std::pair<std::string, std::string>>> DecodeScanBatch(
    const std::string& payload);

/// Decode (status, opaque payload) into the typed Response for `op`.
Response DecodeResponse(OpType op, Status status, const std::string& payload);

}  // namespace recraft::kv
