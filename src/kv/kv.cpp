#include "kv/kv.h"

#include <algorithm>
#include <iterator>

#include "kv/service.h"

namespace recraft::kv {

namespace {
size_t EntryBytes(const std::string& k, const std::string& v) {
  return k.size() + v.size() + 16;  // keys+values plus per-entry overhead
}
const std::string kEmpty;
}  // namespace

size_t Snapshot::SerializedBytes() const {
  size_t n = 64;  // header: range, counts
  n += range.lo().size() + range.hi().size();
  for (const auto& [k, v] : data) n += 8 + k.size() + v.size();
  n += sessions.size() * 48;
  return n;
}

std::vector<uint8_t> Snapshot::Serialize() const {
  Encoder enc;
  enc.PutString(range.lo());
  enc.PutString(range.hi());
  enc.PutBool(range.hi_is_inf());
  enc.PutU64(data.size());
  for (const auto& [k, v] : data) {
    enc.PutString(k);
    enc.PutString(v);
  }
  enc.PutU64(sessions.size());
  for (const auto& [id, s] : sessions) {
    enc.PutU64(id);
    enc.PutU64(s.last_seq);
    enc.PutU8(static_cast<uint8_t>(s.last_result.status.code()));
    enc.PutString(s.last_result.value);
  }
  return enc.Take();
}

Result<Snapshot> Snapshot::Deserialize(const std::vector<uint8_t>& bytes) {
  Decoder dec(bytes);
  Snapshot out;
  auto lo = dec.GetString();
  if (!lo.ok()) return lo.status();
  auto hi = dec.GetString();
  if (!hi.ok()) return hi.status();
  auto inf = dec.GetBool();
  if (!inf.ok()) return inf.status();
  out.range = *inf ? KeyRange(*lo, "") : KeyRange(*lo, *hi);
  auto n = dec.GetU64();
  if (!n.ok()) return n.status();
  for (uint64_t i = 0; i < *n; ++i) {
    auto k = dec.GetString();
    if (!k.ok()) return k.status();
    auto v = dec.GetString();
    if (!v.ok()) return v.status();
    out.data.emplace(std::move(*k), std::move(*v));
  }
  auto ns = dec.GetU64();
  if (!ns.ok()) return ns.status();
  for (uint64_t i = 0; i < *ns; ++i) {
    auto id = dec.GetU64();
    if (!id.ok()) return id.status();
    auto seq = dec.GetU64();
    if (!seq.ok()) return seq.status();
    auto code = dec.GetU8();
    if (!code.ok()) return code.status();
    auto val = dec.GetString();
    if (!val.ok()) return val.status();
    Session s;
    s.last_seq = *seq;
    s.last_result.status = Status(static_cast<Code>(*code));
    s.last_result.value = std::move(*val);
    out.sessions.emplace(*id, std::move(s));
  }
  return out;
}

OpResult Store::Apply(const Command& cmd) {
  // Session dedup before anything else: a retry of an already-applied
  // command must return the original result even if the range has changed
  // since (the session table travels with the data).
  Session* sess = nullptr;
  if (cmd.client_id != 0) {
    sess = &sessions_[cmd.client_id];
    if (cmd.seq != 0 && cmd.seq <= sess->last_seq) {
      return sess->last_result;
    }
  }

  OpResult res;
  if (!range_.Contains(cmd.key)) {
    res.status = OutOfRange("key " + cmd.key + " outside " + range_.ToString());
  } else {
    switch (cmd.op) {
      case OpType::kPut: {
        auto it = data_.find(cmd.key);
        if (it != data_.end()) {
          approx_bytes_ -= EntryBytes(it->first, it->second);
          it->second = cmd.value;
        } else {
          data_.emplace(cmd.key, cmd.value);
        }
        approx_bytes_ += EntryBytes(cmd.key, cmd.value);
        res.status = OkStatus();
        break;
      }
      case OpType::kGet: {
        auto it = data_.find(cmd.key);
        if (it == data_.end()) {
          res.status = NotFound(cmd.key);
        } else {
          res.status = OkStatus();
          res.value = it->second;
        }
        break;
      }
      case OpType::kDelete: {
        auto it = data_.find(cmd.key);
        if (it == data_.end()) {
          res.status = NotFound(cmd.key);
        } else {
          approx_bytes_ -= EntryBytes(it->first, it->second);
          data_.erase(it);
          res.status = OkStatus();
        }
        break;
      }
      case OpType::kCas: {
        // expected "" means "key must be absent" (insert-if-absent); a
        // mismatch returns kConflict with the current value as the result.
        auto it = data_.find(cmd.key);
        const std::string& current = it == data_.end() ? kEmpty : it->second;
        if (current != cmd.expected) {
          res.status = Conflict("cas mismatch on " + cmd.key);
          res.value = current;
          break;
        }
        if (it != data_.end()) {
          approx_bytes_ -= EntryBytes(it->first, it->second);
          it->second = cmd.value;
        } else {
          data_.emplace(cmd.key, cmd.value);
        }
        approx_bytes_ += EntryBytes(cmd.key, cmd.value);
        res.status = OkStatus();
        break;
      }
      case OpType::kScan: {
        // Scans can travel through the log too (the legacy read path); the
        // batch is encoded into the result payload by the service codec.
        res.status = OkStatus();
        res.value = EncodeScanBatch(
            Scan(cmd.key, cmd.scan_hi,
                 cmd.scan_limit == 0 ? kDefaultScanLimit : cmd.scan_limit));
        break;
      }
    }
  }

  if (sess != nullptr && cmd.seq != 0) {
    sess->last_seq = cmd.seq;
    sess->last_result = res;
  }
  return res;
}

Result<std::string> Store::KeyAtFraction(double fraction) const {
  if (data_.size() < 2) return Rejected("too few keys to pick a split point");
  if (fraction <= 0.0 || fraction >= 1.0) {
    return Rejected("fraction must be in (0,1)");
  }
  size_t idx = static_cast<size_t>(static_cast<double>(data_.size()) * fraction);
  idx = std::min(std::max<size_t>(idx, 1), data_.size() - 1);
  auto it = data_.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(idx));
  // Map keys are unique and >= range().lo(), and idx >= 1, so it->first is
  // strictly greater than the smallest key and therefore > lo; keys are
  // stored only when inside the range, so it is also < hi.
  return it->first;
}

Result<std::string> Store::Get(const std::string& key) const {
  if (!range_.Contains(key)) return OutOfRange(key);
  auto it = data_.find(key);
  if (it == data_.end()) return NotFound(key);
  return it->second;
}

std::vector<std::pair<std::string, std::string>> Store::Scan(
    const std::string& lo, const std::string& hi, size_t limit) const {
  std::vector<std::pair<std::string, std::string>> out;
  auto it = data_.lower_bound(std::max(lo, range_.lo()));
  for (; it != data_.end() && out.size() < limit; ++it) {
    if (!hi.empty() && it->first >= hi) break;
    if (!range_.Contains(it->first)) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

SnapshotPtr Store::TakeSnapshot() const {
  auto snap = std::make_shared<Snapshot>();
  snap->range = range_;
  snap->data = data_;
  snap->sessions = sessions_;
  return snap;
}

Result<SnapshotPtr> Store::TakeSnapshot(const KeyRange& sub) const {
  if (!range_.ContainsRange(sub)) {
    return Rejected("snapshot range " + sub.ToString() + " not within " +
                    range_.ToString());
  }
  auto snap = std::make_shared<Snapshot>();
  snap->range = sub;
  auto it = data_.lower_bound(sub.lo());
  for (; it != data_.end() && sub.Contains(it->first); ++it) {
    snap->data.emplace(it->first, it->second);
  }
  snap->sessions = sessions_;
  return SnapshotPtr(std::move(snap));
}

void Store::Restore(const Snapshot& snap) {
  range_ = snap.range;
  data_ = snap.data;
  sessions_ = snap.sessions;
  approx_bytes_ = 0;
  for (const auto& [k, v] : data_) approx_bytes_ += EntryBytes(k, v);
}

Status Store::RestrictRange(const KeyRange& sub) {
  if (!range_.ContainsRange(sub)) {
    return Rejected("restrict range " + sub.ToString() + " not within " +
                    range_.ToString());
  }
  Rebase(sub);
  return OkStatus();
}

void Store::Rebase(const KeyRange& range) {
  range_ = range;
  for (auto it = data_.begin(); it != data_.end();) {
    if (!range.Contains(it->first)) {
      approx_bytes_ -= EntryBytes(it->first, it->second);
      it = data_.erase(it);
    } else {
      ++it;
    }
  }
}

Status Store::MergeIn(const Snapshot& snap) {
  if (range_.Overlaps(snap.range)) {
    return Rejected("merge ranges overlap: " + range_.ToString() + " / " +
                    snap.range.ToString());
  }
  auto merged = KeyRange::MergeAdjacent({range_, snap.range});
  if (!merged.ok()) return merged.status();
  range_ = *merged;
  for (const auto& [k, v] : snap.data) {
    data_.emplace(k, v);
    approx_bytes_ += EntryBytes(k, v);
  }
  for (const auto& [id, s] : snap.sessions) {
    auto [it, inserted] = sessions_.emplace(id, s);
    if (!inserted && s.last_seq > it->second.last_seq) it->second = s;
  }
  return OkStatus();
}

}  // namespace recraft::kv
