#include "kv/kv.h"

#include <algorithm>
#include <cassert>

#include "kv/service.h"

namespace recraft::kv {

namespace {
size_t EntryBytes(const std::string& k, const std::string& v) {
  return k.size() + v.size() + 16;  // keys+values plus per-entry overhead
}
size_t EntryBytes(const std::string& k, size_t value_size) {
  return k.size() + value_size + 16;
}
const std::string kEmpty;
}  // namespace

std::string& SnapshotData::operator[](const std::string& key) {
  auto it = std::lower_bound(
      begin(), end(), key,
      [](const value_type& e, const std::string& k) { return e.first < k; });
  if (it != end() && it->first == key) return it->second;
  return emplace(it, key, std::string())->second;
}

const std::string& SnapshotData::at(const std::string& key) const {
  auto it = std::lower_bound(
      begin(), end(), key,
      [](const value_type& e, const std::string& k) { return e.first < k; });
  assert(it != end() && it->first == key);
  return it->second;
}

size_t Snapshot::SerializedBytes() const {
  if (serialized_bytes_memo_ != 0) return serialized_bytes_memo_;
  size_t n = 64;  // header: range, counts
  n += range.lo().size() + range.hi().size();
  for (const auto& [k, v] : data) n += 8 + k.size() + v.size();
  n += sessions.size() * 48;
  serialized_bytes_memo_ = n;  // n >= 64, so 0 stays a safe "unset" sentinel
  return n;
}

std::vector<uint8_t> Snapshot::Serialize() const {
  Encoder enc;
  enc.PutString(range.lo());
  enc.PutString(range.hi());
  enc.PutBool(range.hi_is_inf());
  enc.PutU64(data.size());
  for (const auto& [k, v] : data) {
    enc.PutString(k);
    enc.PutString(v);
  }
  enc.PutU64(sessions.size());
  for (const auto& [id, s] : sessions) {
    enc.PutU64(id);
    enc.PutU64(s.last_seq);
    enc.PutU8(static_cast<uint8_t>(s.last_result.status.code()));
    enc.PutString(s.last_result.value);
  }
  return enc.Take();
}

Result<Snapshot> Snapshot::Deserialize(const std::vector<uint8_t>& bytes) {
  Decoder dec(bytes);
  Snapshot out;
  auto lo = dec.GetString();
  if (!lo.ok()) return lo.status();
  auto hi = dec.GetString();
  if (!hi.ok()) return hi.status();
  auto inf = dec.GetBool();
  if (!inf.ok()) return inf.status();
  out.range = *inf ? KeyRange(*lo, "") : KeyRange(*lo, *hi);
  auto n = dec.GetU64();
  if (!n.ok()) return n.status();
  out.data.reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto k = dec.GetString();
    if (!k.ok()) return k.status();
    auto v = dec.GetString();
    if (!v.ok()) return v.status();
    // Honest serializers emit key order, so appending keeps `data` sorted.
    out.data.emplace_back(std::move(*k), std::move(*v));
  }
  auto ns = dec.GetU64();
  if (!ns.ok()) return ns.status();
  for (uint64_t i = 0; i < *ns; ++i) {
    auto id = dec.GetU64();
    if (!id.ok()) return id.status();
    auto seq = dec.GetU64();
    if (!seq.ok()) return seq.status();
    auto code = dec.GetU8();
    if (!code.ok()) return code.status();
    auto val = dec.GetString();
    if (!val.ok()) return val.status();
    Session s;
    s.last_seq = *seq;
    s.last_result.status = Status(static_cast<Code>(*code));
    s.last_result.value = std::move(*val);
    out.sessions.emplace(*id, std::move(s));
  }
  return out;
}

OpResult Store::Apply(const Command& cmd) {
  // Session dedup before anything else: a retry of an already-applied
  // command must return the original result even if the range has changed
  // since (the session table travels with the data).
  Session* sess = nullptr;
  if (cmd.client_id != 0) {
    sess = &sessions_[cmd.client_id];
    if (cmd.seq != 0 && cmd.seq <= sess->last_seq) {
      return sess->last_result;
    }
  }

  OpResult res;
  if (!range_.Contains(cmd.key)) {
    res.status = OutOfRange("key " + cmd.key + " outside " + range_.ToString());
  } else {
    switch (cmd.op) {
      case OpType::kPut: {
        // Single-descent upsert: the tree hands back the value slot.
        auto [val, inserted] = data_.GetOrInsert(cmd.key);
        if (!inserted) approx_bytes_ -= EntryBytes(cmd.key, val->size());
        *val = cmd.value;
        approx_bytes_ += EntryBytes(cmd.key, cmd.value);
        res.status = OkStatus();
        break;
      }
      case OpType::kGet: {
        const std::string* val = data_.Find(cmd.key);
        if (val == nullptr) {
          res.status = NotFound(cmd.key);
        } else {
          res.status = OkStatus();
          res.value = *val;
        }
        break;
      }
      case OpType::kDelete: {
        size_t value_size = 0;
        if (!data_.Erase(cmd.key, &value_size)) {
          res.status = NotFound(cmd.key);
        } else {
          approx_bytes_ -= EntryBytes(cmd.key, value_size);
          res.status = OkStatus();
        }
        break;
      }
      case OpType::kCas: {
        // expected "" means "key must be absent" (insert-if-absent); a
        // mismatch returns kConflict with the current value as the result.
        const std::string* current = data_.Find(cmd.key);
        if ((current == nullptr ? kEmpty : *current) != cmd.expected) {
          res.status = Conflict("cas mismatch on " + cmd.key);
          res.value = current == nullptr ? kEmpty : *current;
          break;
        }
        auto [val, inserted] = data_.GetOrInsert(cmd.key);
        if (!inserted) approx_bytes_ -= EntryBytes(cmd.key, val->size());
        *val = cmd.value;
        approx_bytes_ += EntryBytes(cmd.key, cmd.value);
        res.status = OkStatus();
        break;
      }
      case OpType::kScan: {
        // Scans can travel through the log too (the legacy read path); the
        // batch is encoded into the result payload by the service codec.
        res.status = OkStatus();
        res.value = EncodeScanBatch(
            Scan(cmd.key, cmd.scan_hi,
                 cmd.scan_limit == 0 ? kDefaultScanLimit : cmd.scan_limit));
        break;
      }
    }
  }

  if (sess != nullptr && cmd.seq != 0) {
    sess->last_seq = cmd.seq;
    sess->last_result = res;
  }
  return res;
}

Result<std::string> Store::KeyAtFraction(double fraction) const {
  if (data_.size() < 2) return Rejected("too few keys to pick a split point");
  if (fraction <= 0.0 || fraction >= 1.0) {
    return Rejected("fraction must be in (0,1)");
  }
  size_t idx = static_cast<size_t>(static_cast<double>(data_.size()) * fraction);
  idx = std::min(std::max<size_t>(idx, 1), data_.size() - 1);
  // Stored keys are unique and >= range().lo(), and idx >= 1, so the ranked
  // key is strictly greater than the smallest key and therefore > lo; keys
  // are stored only when inside the range, so it is also < hi. Rank select
  // is O(log n) via the tree's subtree counts (was std::advance, O(n)).
  return data_.AtRank(idx).key;
}

Result<std::string> Store::Get(const std::string& key) const {
  if (!range_.Contains(key)) return OutOfRange(key);
  const std::string* val = data_.Find(key);
  if (val == nullptr) return NotFound(key);
  return *val;
}

std::vector<std::pair<std::string, std::string>> Store::Scan(
    const std::string& lo, const std::string& hi, size_t limit) const {
  std::vector<std::pair<std::string, std::string>> out;
  auto it = data_.LowerBound(std::max(lo, range_.lo()));
  for (; it.valid() && out.size() < limit; it.Next()) {
    if (!hi.empty() && it.key() >= hi) break;
    if (!range_.Contains(it.key())) break;
    out.emplace_back(it.key(), it.value());
  }
  return out;
}

SnapshotPtr Store::TakeSnapshot() const {
  auto snap = std::make_shared<Snapshot>();
  snap->range = range_;
  snap->data.reserve(data_.size());
  for (auto it = data_.Begin(); it.valid(); it.Next()) {
    snap->data.emplace_back(it.key(), it.value());  // key order by iteration
  }
  snap->sessions = sessions_;
  return snap;
}

Result<SnapshotPtr> Store::TakeSnapshot(const KeyRange& sub) const {
  if (!range_.ContainsRange(sub)) {
    return Rejected("snapshot range " + sub.ToString() + " not within " +
                    range_.ToString());
  }
  auto snap = std::make_shared<Snapshot>();
  snap->range = sub;
  auto it = data_.LowerBound(sub.lo());
  for (; it.valid() && sub.Contains(it.key()); it.Next()) {
    snap->data.emplace_back(it.key(), it.value());
  }
  snap->sessions = sessions_;
  return SnapshotPtr(std::move(snap));
}

void Store::Restore(const Snapshot& snap) {
  range_ = snap.range;
  std::vector<BTreeMap::Item> items;
  items.reserve(snap.data.size());
  approx_bytes_ = 0;
  for (const auto& [k, v] : snap.data) {
    approx_bytes_ += EntryBytes(k, v);
    items.push_back(BTreeMap::Item{k, v});
  }
  data_.BuildFromSorted(std::move(items));  // snapshot data is key-sorted
  sessions_ = snap.sessions;
}

Status Store::RestrictRange(const KeyRange& sub) {
  if (!range_.ContainsRange(sub)) {
    return Rejected("restrict range " + sub.ToString() + " not within " +
                    range_.ToString());
  }
  Rebase(sub);
  return OkStatus();
}

void Store::Rebase(const KeyRange& range) {
  range_ = range;
  // Collect the surviving items in order and bulk-rebuild: cheaper and
  // simpler than per-key deletion for what is a rare, bulk operation.
  std::vector<BTreeMap::Item> keep;
  keep.reserve(data_.size());
  approx_bytes_ = 0;
  for (auto it = data_.Begin(); it.valid(); it.Next()) {
    if (!range.Contains(it.key())) continue;
    approx_bytes_ += EntryBytes(it.key(), it.value());
    keep.push_back(BTreeMap::Item{it.key(), it.value()});
  }
  data_.BuildFromSorted(std::move(keep));
}

Status Store::MergeIn(const Snapshot& snap) {
  if (range_.Overlaps(snap.range)) {
    return Rejected("merge ranges overlap: " + range_.ToString() + " / " +
                    snap.range.ToString());
  }
  auto merged = KeyRange::MergeAdjacent({range_, snap.range});
  if (!merged.ok()) return merged.status();
  range_ = *merged;
  for (const auto& [k, v] : snap.data) {
    // Ranges are disjoint, so these keys are new; keep-existing semantics
    // (emplace) are preserved by GetOrInsert's insert-if-absent.
    auto [val, inserted] = data_.GetOrInsert(k);
    if (inserted) *val = v;
    approx_bytes_ += EntryBytes(k, v);
  }
  for (const auto& [id, s] : snap.sessions) {
    auto [it, inserted] = sessions_.emplace(id, s);
    if (!inserted && s.last_seq > it->second.last_seq) it->second = s;
  }
  return OkStatus();
}

}  // namespace recraft::kv
