// A B+-tree-style sorted string map — the storage engine behind kv::Store.
//
// PR 3's profile put ~36% of e2e wall time in std::map<string,string>::find:
// a red-black tree chases one cache miss per comparison, ~17 levels deep at
// 100k keys. This structure keeps the ordered semantics the store's callers
// depend on (snapshots serialize in key order, Scan / KeyAtFraction walk
// sorted keys) while cutting a point lookup to 3-4 node hops with linear key
// search inside each node:
//
//   * Leaves hold sorted item arrays and are chained (prev/next) for ordered
//     iteration and scans.
//   * Inner nodes hold child pointers plus separator keys; descent is a
//     linear scan of at most kInnerCap-1 separators. Separator invariant:
//     every key under child[i+1] is >= keys[i], every key under child[i] is
//     < keys[i] (erase laziness may leave separators below the actual
//     subtree minimum, which preserves both bounds).
//   * Every node carries its subtree item count, so rank selection
//     (AtRank — the KeyAtFraction split-point picker) is O(log n) instead
//     of std::advance's O(n).
//   * Deletion is lazy: emptied nodes are unlinked, but no rebalancing or
//     borrowing — the tree never grows in height from deletes, and the
//     randomized differential harness in kv_test pins the semantics against
//     a std::map reference model.
//
// Not thread-safe; the simulator is single-threaded by construction.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace recraft::kv {

class BTreeMap {
 public:
  struct Item {
    std::string key;
    std::string value;
  };

  BTreeMap();
  ~BTreeMap();
  BTreeMap(const BTreeMap& other);
  BTreeMap& operator=(const BTreeMap& other);
  BTreeMap(BTreeMap&& other) noexcept;
  BTreeMap& operator=(BTreeMap&& other) noexcept;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void Clear();

  /// Value for `key`, or nullptr. One descent, no allocation.
  const std::string* Find(const std::string& key) const;

  /// Insert `key` with an empty value if absent; returns the value slot and
  /// whether it was inserted. One descent for the upsert fast path (the
  /// returned pointer is valid until the next mutation).
  std::pair<std::string*, bool> GetOrInsert(const std::string& key);

  /// Erase `key`; reports the erased value's size through `value_size`
  /// (byte accounting) when found.
  bool Erase(const std::string& key, size_t* value_size = nullptr);

  /// The item at `rank` (0-based) in key order. O(log n) via subtree counts.
  const Item& AtRank(size_t rank) const;

  /// Replace the contents with `items`, which must be sorted by key with no
  /// duplicates. O(n) bottom-up build (snapshot Restore, range rebuilds).
  void BuildFromSorted(std::vector<Item> items);

 private:
  // Node fan-outs: a leaf's item array and an inner node's separator array
  // both scan linearly, so they are sized to a couple of cache lines.
  static constexpr int kLeafCap = 16;   // max items per leaf (splits at cap)
  static constexpr int kInnerCap = 16;  // max children per inner node
  static constexpr int kBulkFill = 12;  // fill factor for bulk builds

  struct Node {
    uint16_t count = 0;   // leaf: items; inner: children
    bool leaf = false;
    uint64_t items = 0;   // total items in this subtree (rank selection)
  };
  struct Leaf : Node {
    Item slots[kLeafCap];
    Leaf* next = nullptr;
    Leaf* prev = nullptr;
  };
  struct Inner : Node {
    std::string keys[kInnerCap - 1];  // keys[i] separates child i / i+1
    Node* child[kInnerCap] = {};
  };

  /// Child slot the descent for `key` takes: the rightmost child whose
  /// separator lower-bound admits the key.
  static int ChildIndex(const Inner* n, const std::string& key) {
    int i = 0;
    while (i < n->count - 1 && key >= n->keys[i]) ++i;
    return i;
  }

 public:
  /// Forward iterator over items in key order (walks the leaf chain).
  class Iterator {
   public:
    bool valid() const { return leaf_ != nullptr; }
    const std::string& key() const { return leaf_->slots[pos_].key; }
    const std::string& value() const { return leaf_->slots[pos_].value; }
    void Next() {
      if (++pos_ >= leaf_->count) {
        leaf_ = leaf_->next;
        pos_ = 0;
      }
    }

   private:
    friend class BTreeMap;
    Iterator(const Leaf* leaf, uint16_t pos) : leaf_(leaf), pos_(pos) {}
    const Leaf* leaf_ = nullptr;
    uint16_t pos_ = 0;
  };

  Iterator Begin() const {
    return {first_leaf_->count > 0 ? first_leaf_ : nullptr, 0};
  }

  /// First item with key >= `key` (invalid iterator when none).
  Iterator LowerBound(const std::string& key) const {
    const Node* n = root_;
    while (!n->leaf) {
      const Inner* in = static_cast<const Inner*>(n);
      n = in->child[ChildIndex(in, key)];
    }
    const Leaf* l = static_cast<const Leaf*>(n);
    for (uint16_t i = 0; i < l->count; ++i) {
      if (l->slots[i].key >= key) return {l, i};
    }
    // Past this leaf's last key: the next leaf's first key is the bound
    // (its subtree separator exceeds `key`, or there is none).
    return {l->next, 0};
  }

 private:
  struct InsertResult {
    std::string* value = nullptr;
    bool inserted = false;
    Node* split_right = nullptr;  // non-null: this level split
    std::string split_key;        // min key of split_right's subtree
  };

  void InitEmpty();
  static void FreeRec(Node* n);
  void UnlinkLeaf(Leaf* l);
  InsertResult InsertRec(Node* n, const std::string& key);
  bool EraseRec(Node* n, const std::string& key, size_t* value_size);

  Node* root_ = nullptr;
  Leaf* first_leaf_ = nullptr;
  size_t size_ = 0;
};

}  // namespace recraft::kv
