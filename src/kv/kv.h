// Key-value state machine replicated by the consensus layer. Mirrors the
// etcd layer of the paper: an ordered map restricted to a key range, with
// per-client sessions for exactly-once command application and snapshot
// support (serialize / restore / range-restrict / merge).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/codec.h"
#include "common/key_range.h"
#include "common/status.h"
#include "common/types.h"
#include "kv/btree.h"

namespace recraft::kv {

enum class OpType : uint8_t {
  kPut = 0,
  kGet = 1,
  kDelete = 2,
  kCas = 3,   // compare-and-swap: expected -> value (expected "" = absent)
  kScan = 4,  // bounded range read [key, scan_hi) capped at scan_limit
};

/// The typed KV request — the service layer's Request type. Writes (Put /
/// Delete / CAS) travel through the log as opaque sm::Command bytes; reads
/// (Get / Scan) are normally served via the leader's ReadIndex path (see
/// kv/service.h for the encoding and core::Node for the protocol).
struct Command {
  OpType op = OpType::kPut;
  std::string key;
  std::string value;       // puts and CAS (the desired value)
  std::string expected;    // CAS only: required current value ("" = absent)
  std::string scan_hi;     // scans only: exclusive upper bound ("" = range end)
  uint32_t scan_limit = 0; // scans only: max entries (0 = service default)
  uint64_t client_id = 0;  // 0 = no session (no dedup)
  uint64_t seq = 0;        // per-client sequence number

  size_t WireBytes() const {
    switch (op) {
      case OpType::kCas:
        return 32 + key.size() + value.size() + expected.size();
      case OpType::kScan:
        return 32 + key.size() + scan_hi.size();
      default:
        return 24 + key.size() + value.size();
    }
  }
};

struct OpResult {
  Status status;
  std::string value;  // gets: the value; scans: the encoded entry batch
};

/// Per-client dedup record: the last applied sequence number and its result,
/// so a retried command is answered without re-applying.
struct Session {
  uint64_t last_seq = 0;
  OpResult last_result;
};

/// Snapshot payload: (key, value) pairs sorted by key — the invariant every
/// producer (TakeSnapshot, Deserialize) upholds and every consumer (Restore's
/// bulk build, MergeIn, serialization order) relies on. A flat sorted vector
/// instead of a std::map: snapshot construction is a straight ordered copy
/// with no per-node allocation, and iteration is cache-linear. The keyed
/// accessors do sorted lookup/insert for convenience call sites (tests,
/// admin tooling) — hot paths build in order and never use them.
class SnapshotData : public std::vector<std::pair<std::string, std::string>> {
 public:
  using Base = std::vector<std::pair<std::string, std::string>>;
  using Base::Base;
  using Base::at;
  using Base::operator[];

  /// Value for `key`, inserting (sorted) when absent.
  std::string& operator[](const std::string& key);
  /// Value for `key`; the key must be present.
  const std::string& at(const std::string& key) const;
};

/// An immutable point-in-time state of a store. Shared by pointer: snapshot
/// "transfer" in the simulator moves the pointer while the network charges
/// for the serialized byte size. Treated as frozen once shared (SnapshotPtr
/// is pointer-to-const): SerializedBytes memoizes on first call.
struct Snapshot {
  KeyRange range;
  SnapshotData data;
  std::map<uint64_t, Session> sessions;

  /// On-wire size for bandwidth accounting. Computed once and cached — the
  /// network charges this at every hop of a snapshot transfer, and the old
  /// implementation re-walked every entry per charge site.
  size_t SerializedBytes() const;
  std::vector<uint8_t> Serialize() const;
  static Result<Snapshot> Deserialize(const std::vector<uint8_t>& bytes);

 private:
  mutable size_t serialized_bytes_memo_ = 0;  // 0 = not yet computed
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

/// The mutable state machine. Not thread-safe; the simulator is single-
/// threaded by construction.
class Store {
 public:
  explicit Store(KeyRange range = KeyRange::Full()) : range_(std::move(range)) {}

  /// Apply a command. Commands outside the store's range are rejected with
  /// kOutOfRange. Session-bearing commands are applied at most once: a
  /// command with seq <= the session's last_seq returns the recorded result.
  OpResult Apply(const Command& cmd);

  /// Point read against the applied state (the ReadIndex serve path and
  /// tests; reads can also travel through the log as kGet commands).
  Result<std::string> Get(const std::string& key) const;

  /// Bounded range read: up to `limit` entries with lo <= key < hi (hi ""
  /// means "to the end of the store's range"), clamped to range().
  std::vector<std::pair<std::string, std::string>> Scan(
      const std::string& lo, const std::string& hi, size_t limit) const;

  const KeyRange& range() const { return range_; }
  size_t size() const { return data_.size(); }
  size_t ApproxBytes() const { return approx_bytes_; }

  /// The stored key at `fraction` (in (0,1)) of the sorted key population —
  /// the placement driver's split-point picker (fraction 0.5 = median).
  /// The returned key is strictly inside range() (valid as a split key);
  /// fails when fewer than two distinct keys exist.
  Result<std::string> KeyAtFraction(double fraction) const;

  /// Point-in-time copy of the whole store.
  SnapshotPtr TakeSnapshot() const;

  /// Point-in-time copy restricted to `sub` (sub must be inside range()).
  Result<SnapshotPtr> TakeSnapshot(const KeyRange& sub) const;

  /// Replace all state with the snapshot's.
  void Restore(const Snapshot& snap);

  /// Shrink to `sub` (a subrange of the current range), discarding keys
  /// outside it. Used when a subcluster completes a split.
  Status RestrictRange(const KeyRange& sub);

  /// Force the range to `range` (need not nest with the current range),
  /// discarding keys outside it — the TC install-and-rebase step. Unlike a
  /// snapshot round trip this touches no surviving entry.
  void Rebase(const KeyRange& range);

  /// Absorb a snapshot of an adjacent, disjoint range (merge data exchange).
  /// Sessions are unioned keeping the larger last_seq per client.
  Status MergeIn(const Snapshot& snap);

 private:
  KeyRange range_;
  BTreeMap data_;  // the B+-tree fast path (see kv/btree.h)
  std::map<uint64_t, Session> sessions_;
  size_t approx_bytes_ = 0;
};

}  // namespace recraft::kv
