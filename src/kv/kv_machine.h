// kv::Store adapted to the sm::StateMachine boundary: the KV map is *one*
// state machine the consensus core can replicate, no longer a hard-wired
// dependency. Commands arrive as opaque bytes (kv/service.h encoding),
// snapshots as the store's own serialized format wrapped in sm::Snapshot
// (wire_bytes preserves the historical bandwidth accounting).
#pragma once

#include "kv/kv.h"
#include "sm/state_machine.h"

namespace recraft::kv {

class KvMachine final : public sm::StateMachine {
 public:
  explicit KvMachine(KeyRange range) : store_(std::move(range)) {}

  const char* Name() const override { return "kv"; }

  sm::CmdResult Apply(const sm::Command& cmd) override;
  sm::CmdResult Query(const sm::Command& query) const override;

  const KeyRange& range() const override { return store_.range(); }
  size_t Size() const override { return store_.size(); }
  size_t ApproxBytes() const override { return store_.ApproxBytes(); }
  Result<std::string> SplitHint(double fraction) const override {
    return store_.KeyAtFraction(fraction);
  }

  sm::SnapshotPtr TakeSnapshot() const override;
  Result<sm::SnapshotPtr> TakeSnapshot(const KeyRange& sub) const override;
  Status Restore(const sm::Snapshot& snap) override;
  void Reset(const KeyRange& range) override { store_ = Store(range); }
  Status Rebase(const KeyRange& range) override;
  Status RestrictRange(const KeyRange& sub) override {
    return store_.RestrictRange(sub);
  }
  Status MergeIn(const sm::Snapshot& snap) override;

  /// Direct access for tests, checkers and benches (never the consensus
  /// core). See harness's KvStoreOf for the checked downcast.
  const Store& store() const { return store_; }
  Store& store() { return store_; }

  /// Wrap a structured store snapshot in the opaque boundary type.
  static sm::SnapshotPtr Wrap(const kv::SnapshotPtr& snap);
  /// Parse opaque snapshot bytes back into the structured form.
  static Result<kv::Snapshot> Unwrap(const sm::Snapshot& snap);

 private:
  Store store_;
};

/// Factory the harness installs by default (core::Options::machine_factory).
sm::MachineFactory KvMachineFactory();

}  // namespace recraft::kv
