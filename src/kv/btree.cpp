#include "kv/btree.h"

#include <algorithm>

namespace recraft::kv {

void BTreeMap::InitEmpty() {
  Leaf* l = new Leaf();
  l->leaf = true;
  root_ = l;
  first_leaf_ = l;
  size_ = 0;
}

BTreeMap::BTreeMap() { InitEmpty(); }

void BTreeMap::FreeRec(Node* n) {
  if (!n->leaf) {
    Inner* in = static_cast<Inner*>(n);
    for (int i = 0; i < in->count; ++i) FreeRec(in->child[i]);
    delete in;
  } else {
    delete static_cast<Leaf*>(n);
  }
}

BTreeMap::~BTreeMap() {
  if (root_ != nullptr) FreeRec(root_);
}

void BTreeMap::Clear() {
  FreeRec(root_);
  InitEmpty();
}

BTreeMap::BTreeMap(const BTreeMap& other) {
  InitEmpty();
  std::vector<Item> items;
  items.reserve(other.size_);
  for (Iterator it = other.Begin(); it.valid(); it.Next()) {
    items.push_back(Item{it.key(), it.value()});
  }
  BuildFromSorted(std::move(items));
}

BTreeMap& BTreeMap::operator=(const BTreeMap& other) {
  if (this == &other) return *this;
  std::vector<Item> items;
  items.reserve(other.size_);
  for (Iterator it = other.Begin(); it.valid(); it.Next()) {
    items.push_back(Item{it.key(), it.value()});
  }
  BuildFromSorted(std::move(items));
  return *this;
}

BTreeMap::BTreeMap(BTreeMap&& other) noexcept
    : root_(other.root_), first_leaf_(other.first_leaf_), size_(other.size_) {
  other.root_ = nullptr;
  other.first_leaf_ = nullptr;
  other.size_ = 0;
  other.InitEmpty();
}

BTreeMap& BTreeMap::operator=(BTreeMap&& other) noexcept {
  if (this == &other) return *this;
  FreeRec(root_);
  root_ = other.root_;
  first_leaf_ = other.first_leaf_;
  size_ = other.size_;
  other.root_ = nullptr;
  other.first_leaf_ = nullptr;
  other.size_ = 0;
  other.InitEmpty();
  return *this;
}

const std::string* BTreeMap::Find(const std::string& key) const {
  const Node* n = root_;
  while (!n->leaf) {
    const Inner* in = static_cast<const Inner*>(n);
    n = in->child[ChildIndex(in, key)];
  }
  const Leaf* l = static_cast<const Leaf*>(n);
  for (uint16_t i = 0; i < l->count; ++i) {
    // Linear search, early exit on the sorted array — the slots are hot in
    // cache by the time the descent lands here.
    int c = l->slots[i].key.compare(key);
    if (c == 0) return &l->slots[i].value;
    if (c > 0) break;
  }
  return nullptr;
}

BTreeMap::InsertResult BTreeMap::InsertRec(Node* n, const std::string& key) {
  InsertResult res;
  if (n->leaf) {
    Leaf* l = static_cast<Leaf*>(n);
    int pos = 0;
    while (pos < l->count) {
      int c = l->slots[pos].key.compare(key);
      if (c == 0) {
        res.value = &l->slots[pos].value;
        return res;
      }
      if (c > 0) break;
      ++pos;
    }
    for (int i = l->count; i > pos; --i) {
      l->slots[i] = std::move(l->slots[i - 1]);
    }
    l->slots[pos].key = key;
    l->slots[pos].value.clear();
    ++l->count;
    l->items = l->count;
    res.inserted = true;
    if (l->count == kLeafCap) {
      // Split at capacity; the new right leaf takes the upper half.
      Leaf* r = new Leaf();
      r->leaf = true;
      const int half = kLeafCap / 2;
      for (int i = half; i < kLeafCap; ++i) {
        r->slots[i - half] = std::move(l->slots[i]);
      }
      l->count = half;
      l->items = half;
      r->count = kLeafCap - half;
      r->items = r->count;
      r->next = l->next;
      r->prev = l;
      if (r->next != nullptr) r->next->prev = r;
      l->next = r;
      res.split_right = r;
      res.split_key = r->slots[0].key;
      res.value = pos < half ? &l->slots[pos].value
                             : &r->slots[pos - half].value;
    } else {
      res.value = &l->slots[pos].value;
    }
    return res;
  }

  Inner* in = static_cast<Inner*>(n);
  int idx = ChildIndex(in, key);
  res = InsertRec(in->child[idx], key);
  if (res.inserted) ++in->items;
  if (res.split_right != nullptr) {
    // Adopt the child's split: new child goes right of idx.
    for (int i = in->count - 1; i > idx; --i) {
      in->child[i + 1] = in->child[i];
      in->keys[i] = std::move(in->keys[i - 1]);
    }
    in->child[idx + 1] = res.split_right;
    in->keys[idx] = std::move(res.split_key);
    ++in->count;
    res.split_right = nullptr;
    res.split_key.clear();
    if (in->count == kInnerCap) {
      Inner* r = new Inner();
      const int half = kInnerCap / 2;
      for (int i = half; i < kInnerCap; ++i) {
        r->child[i - half] = in->child[i];
        in->child[i] = nullptr;
      }
      for (int i = half; i < kInnerCap - 1; ++i) {
        r->keys[i - half] = std::move(in->keys[i]);
      }
      r->count = kInnerCap - half;
      in->count = half;
      res.split_key = std::move(in->keys[half - 1]);
      in->keys[half - 1].clear();
      uint64_t moved = 0;
      for (int i = 0; i < r->count; ++i) moved += r->child[i]->items;
      r->items = moved;
      in->items -= moved;
      res.split_right = r;
    }
  }
  return res;
}

std::pair<std::string*, bool> BTreeMap::GetOrInsert(const std::string& key) {
  InsertResult res = InsertRec(root_, key);
  if (res.split_right != nullptr) {
    Inner* nr = new Inner();
    nr->count = 2;
    nr->child[0] = root_;
    nr->child[1] = res.split_right;
    nr->keys[0] = std::move(res.split_key);
    nr->items = root_->items + res.split_right->items;
    root_ = nr;
  }
  if (res.inserted) ++size_;
  return {res.value, res.inserted};
}

void BTreeMap::UnlinkLeaf(Leaf* l) {
  if (l->prev != nullptr) l->prev->next = l->next;
  if (l->next != nullptr) l->next->prev = l->prev;
  if (first_leaf_ == l) first_leaf_ = l->next;
}

bool BTreeMap::EraseRec(Node* n, const std::string& key, size_t* value_size) {
  if (n->leaf) {
    Leaf* l = static_cast<Leaf*>(n);
    int pos = 0;
    while (pos < l->count) {
      int c = l->slots[pos].key.compare(key);
      if (c == 0) break;
      if (c > 0) return false;
      ++pos;
    }
    if (pos == l->count) return false;
    if (value_size != nullptr) *value_size = l->slots[pos].value.size();
    for (int i = pos; i < l->count - 1; ++i) {
      l->slots[i] = std::move(l->slots[i + 1]);
    }
    l->slots[l->count - 1] = Item{};
    --l->count;
    l->items = l->count;
    return true;
  }

  Inner* in = static_cast<Inner*>(n);
  int idx = ChildIndex(in, key);
  Node* child = in->child[idx];
  if (!EraseRec(child, key, value_size)) return false;
  --in->items;
  if (child->count == 0) {
    // Lazy structural maintenance: only fully emptied nodes are removed.
    if (child->leaf) {
      UnlinkLeaf(static_cast<Leaf*>(child));
      delete static_cast<Leaf*>(child);
    } else {
      delete static_cast<Inner*>(child);
    }
    for (int i = idx; i < in->count - 1; ++i) {
      in->child[i] = in->child[i + 1];
    }
    in->child[in->count - 1] = nullptr;
    // Drop the separator flanking the removed child (the survivors' bounds
    // still hold; see the invariant note in the header).
    const int drop = idx > 0 ? idx - 1 : 0;
    for (int i = drop; i < in->count - 2; ++i) {
      in->keys[i] = std::move(in->keys[i + 1]);
    }
    if (in->count >= 2) in->keys[in->count - 2].clear();
    --in->count;
  }
  return true;
}

bool BTreeMap::Erase(const std::string& key, size_t* value_size) {
  if (!EraseRec(root_, key, value_size)) return false;
  --size_;
  // Collapse trivial roots so lookups don't pay for dead levels.
  while (!root_->leaf && root_->count == 1) {
    Inner* old = static_cast<Inner*>(root_);
    root_ = old->child[0];
    delete old;
  }
  if (!root_->leaf && root_->count == 0) {
    // The last item under an inner root vanished (possible only via chains
    // of single-child inner nodes): restart from a fresh leaf.
    delete static_cast<Inner*>(root_);
    InitEmpty();
    size_ = 0;
  }
  return true;
}

const BTreeMap::Item& BTreeMap::AtRank(size_t rank) const {
  assert(rank < size_);
  const Node* n = root_;
  while (!n->leaf) {
    const Inner* in = static_cast<const Inner*>(n);
    int i = 0;
    while (rank >= in->child[i]->items) {
      rank -= in->child[i]->items;
      ++i;
    }
    n = in->child[i];
  }
  return static_cast<const Leaf*>(n)->slots[rank];
}

void BTreeMap::BuildFromSorted(std::vector<Item> items) {
  FreeRec(root_);
  root_ = nullptr;
  first_leaf_ = nullptr;
  size_ = items.size();
  if (items.empty()) {
    InitEmpty();
    return;
  }

  // Level 0: pack leaves at the bulk fill factor and chain them.
  struct Built {
    Node* node;
    const std::string* min_key;  // smallest key under the subtree
  };
  std::vector<Built> level;
  level.reserve(items.size() / kBulkFill + 1);
  Leaf* prev = nullptr;
  for (size_t i = 0; i < items.size();) {
    Leaf* l = new Leaf();
    l->leaf = true;
    int take = static_cast<int>(
        std::min<size_t>(kBulkFill, items.size() - i));
    for (int j = 0; j < take; ++j) {
      l->slots[j] = std::move(items[i + j]);
    }
    l->count = static_cast<uint16_t>(take);
    l->items = static_cast<uint64_t>(take);
    l->prev = prev;
    if (prev != nullptr) {
      prev->next = l;
    } else {
      first_leaf_ = l;
    }
    prev = l;
    level.push_back(Built{l, &l->slots[0].key});
    i += static_cast<size_t>(take);
  }

  // Upper levels: group children, separator = min key of the right child.
  while (level.size() > 1) {
    std::vector<Built> next;
    next.reserve(level.size() / kBulkFill + 1);
    for (size_t i = 0; i < level.size();) {
      Inner* in = new Inner();
      int take = static_cast<int>(
          std::min<size_t>(kBulkFill, level.size() - i));
      // Avoid a trailing single-child inner node: steal one from this group.
      if (level.size() - i - static_cast<size_t>(take) == 1) --take;
      for (int j = 0; j < take; ++j) {
        in->child[j] = level[i + j].node;
        in->items += level[i + j].node->items;
        if (j > 0) in->keys[j - 1] = *level[i + j].min_key;
      }
      in->count = static_cast<uint16_t>(take);
      next.push_back(Built{in, level[i].min_key});
      i += static_cast<size_t>(take);
    }
    level = std::move(next);
  }
  root_ = level.front().node;
}

}  // namespace recraft::kv
