// The replicated-state-machine boundary of the system. The paper's
// split/merge reconfiguration protocol is state-machine-generic — nothing in
// C_prep / C_tx / the snapshot exchange depends on the payload being a KV
// map — and this interface is where that genericity becomes real: the
// consensus core (core::Node), the log (raft::LogEntry), the persistence
// codec and the harness all speak *opaque command bytes in / opaque result
// bytes out* plus the handful of range-structured operations the
// reconfiguration protocols need (snapshot take/restore, RestrictRange,
// MergeIn, SplitHint).
//
// The one concession to the system's range-partitioned nature: every
// command carries its key-space coordinate (`Command::key`). The consensus
// layer is range-aware by construction (splits, merges and routing all
// speak KeyRange), so the coordinate lives beside the opaque body — it lets
// a leader reject mis-routed commands (kWrongShard) without decoding them.
//
// Implementations: kv::KvMachine (src/kv/kv_machine.h) wraps the ordered KV
// store; sm::QueueMachine (queue_machine.h) is a deliberately different
// machine (ordered per-topic event queues with destructive dequeues) that
// keeps the boundary honest in tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/key_range.h"
#include "common/status.h"
#include "common/types.h"

namespace recraft::sm {

/// A client command carried as a consensus log entry payload. The body is
/// opaque to everything between the service client and the state machine.
struct Command {
  /// Key-space coordinate for routing and the leader's range check. "" is
  /// a legal coordinate (the lowest — only the leftmost shard serves it).
  std::string key;
  /// Machine-defined encoding of the operation.
  std::vector<uint8_t> body;
  /// On-wire size for the simulator's bandwidth accounting, fixed by the
  /// encoding service (0 falls back to a generic estimate). Persisted with
  /// the entry so replayed logs charge identical bytes.
  uint32_t wire_hint = 0;

  size_t WireBytes() const {
    return wire_hint != 0 ? wire_hint : 16 + key.size() + body.size();
  }
};

/// The machine's answer to a command or query: a status plus opaque result
/// bytes the service layer decodes (a value, a scan batch, a queue head...).
struct CmdResult {
  Status status;
  std::string payload;
};

/// An immutable point-in-time state of a machine, serialized by the machine
/// itself. Shared by pointer: snapshot "transfer" in the simulator moves the
/// pointer while the network charges wire_bytes.
struct Snapshot {
  KeyRange range;              // the key span this snapshot covers
  std::vector<uint8_t> data;   // machine-serialized state
  uint64_t items = 0;          // item count (metrics, logs)
  /// Bandwidth-accounting size, set by the machine (0 -> generic estimate).
  size_t wire_bytes = 0;

  size_t SerializedBytes() const {
    return wire_bytes != 0 ? wire_bytes : 64 + data.size();
  }
};
using SnapshotPtr = std::shared_ptr<const Snapshot>;

/// The replicated state machine. Not thread-safe; the simulator is single-
/// threaded by construction. Apply() runs exactly the committed log order on
/// every replica; Query() is the ReadIndex serve path and MUST NOT mutate.
class StateMachine {
 public:
  virtual ~StateMachine() = default;

  virtual const char* Name() const = 0;

  /// Apply a committed command. Exactly-once semantics for retried commands
  /// (client sessions) are the machine's responsibility — a retry committed
  /// at a later index must return the recorded result, not re-execute.
  virtual CmdResult Apply(const Command& cmd) = 0;

  /// Execute a read-only command against the applied state (the ReadIndex
  /// path: no log entry, no session bookkeeping). Mutating queries are a
  /// machine bug; implementations must reject bodies that would mutate.
  virtual CmdResult Query(const Command& query) const = 0;

  // --- metrics (placement driver, compaction policy, logs) ----------------
  virtual const KeyRange& range() const = 0;
  virtual size_t Size() const = 0;         // item count
  virtual size_t ApproxBytes() const = 0;  // resident byte estimate

  /// A key at `fraction` (in (0,1)) of the machine's populated key space —
  /// the placement driver's split-point picker (0.5 = median). The returned
  /// key must be strictly inside range(); fails when the population is too
  /// small to split.
  virtual Result<std::string> SplitHint(double fraction) const = 0;

  // --- snapshots (replication, compaction, merge exchange) ----------------
  virtual SnapshotPtr TakeSnapshot() const = 0;
  /// Point-in-time state restricted to `sub` (must be inside range()).
  virtual Result<SnapshotPtr> TakeSnapshot(const KeyRange& sub) const = 0;
  /// Replace all state with the snapshot's (adopting its range).
  virtual Status Restore(const Snapshot& snap) = 0;

  // --- reconfiguration hooks (split / merge / bootstrap) ------------------
  /// Wipe all state and adopt `range` (genesis replay, merged-log genesis).
  virtual void Reset(const KeyRange& range) = 0;
  /// Force the machine's range to `range` (need not nest with the current
  /// range), discarding items outside it. The TC baseline's
  /// install-snapshot-and-rebase step.
  virtual Status Rebase(const KeyRange& range) = 0;
  /// Shrink to `sub` (a validated subrange of the current range), discarding
  /// items outside it. Split completion.
  virtual Status RestrictRange(const KeyRange& sub) = 0;
  /// Absorb a snapshot of an adjacent, disjoint range (merge data
  /// exchange). Session/dedup state is unioned by the machine.
  virtual Status MergeIn(const Snapshot& snap) = 0;
};

using MachinePtr = std::unique_ptr<StateMachine>;

/// Constructs a fresh machine over `range`. The node keeps the factory so
/// boot-from-storage and TC re-bootstraps can rebuild the machine type the
/// world was configured with.
using MachineFactory = std::function<MachinePtr(const KeyRange&)>;

}  // namespace recraft::sm
