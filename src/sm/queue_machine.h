// A deliberately non-KV state machine: ordered per-topic event queues with
// destructive dequeues. Topics are the key-space coordinate (so splits,
// merges and routing work unchanged); each topic holds a FIFO of opaque
// event payloads. Dequeue is NOT idempotent — exactly-once application
// under client retries (sessions) and strict apply-order are load-bearing,
// which is precisely what makes this machine a good witness that the
// consensus core is state-machine-generic: any kv:: assumption left in the
// core, log, codec or harness breaks its integration tests.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "sm/state_machine.h"

namespace recraft::sm {

/// Queue command opcodes (first byte of the body after the format tag).
enum class QueueOp : uint8_t {
  kEnqueue = 0,  // append payload to the topic's queue
  kDequeue = 1,  // pop the topic's head (result payload = the event)
  kPeek = 2,     // read-only: the head without popping
  kLen = 3,      // read-only: decimal queue length
};

/// Format tag leading every queue command body.
inline constexpr uint8_t kQueueCommandFormat = 0x51;  // 'Q'

struct QueueRequest {
  QueueOp op = QueueOp::kEnqueue;
  std::string topic;
  std::string payload;     // enqueue only
  uint64_t client_id = 0;  // 0 = no session
  uint64_t seq = 0;
};

Command EncodeQueueRequest(const QueueRequest& req);
Result<QueueRequest> DecodeQueueRequest(const Command& cmd);
inline bool IsReadOnly(QueueOp op) {
  return op == QueueOp::kPeek || op == QueueOp::kLen;
}

class QueueMachine final : public StateMachine {
 public:
  explicit QueueMachine(KeyRange range) : range_(std::move(range)) {}

  const char* Name() const override { return "queue"; }

  CmdResult Apply(const Command& cmd) override;
  CmdResult Query(const Command& query) const override;

  const KeyRange& range() const override { return range_; }
  /// Total queued events across topics (drives split thresholds).
  size_t Size() const override { return total_events_; }
  size_t ApproxBytes() const override { return approx_bytes_; }
  Result<std::string> SplitHint(double fraction) const override;

  SnapshotPtr TakeSnapshot() const override;
  Result<SnapshotPtr> TakeSnapshot(const KeyRange& sub) const override;
  Status Restore(const Snapshot& snap) override;
  void Reset(const KeyRange& range) override;
  Status Rebase(const KeyRange& range) override;
  Status RestrictRange(const KeyRange& sub) override;
  Status MergeIn(const Snapshot& snap) override;

  // Test probes.
  size_t TopicCount() const { return topics_.size(); }
  size_t TopicDepth(const std::string& topic) const {
    auto it = topics_.find(topic);
    return it == topics_.end() ? 0 : it->second.size();
  }

 private:
  struct Session {
    uint64_t last_seq = 0;
    CmdResult last_result;
  };

  CmdResult Execute(const QueueRequest& req);
  void Prune(const KeyRange& keep);

  KeyRange range_;
  std::map<std::string, std::deque<std::string>> topics_;
  std::map<uint64_t, Session> sessions_;
  size_t total_events_ = 0;
  size_t approx_bytes_ = 0;
};

MachineFactory QueueMachineFactory();

}  // namespace recraft::sm
