#include "sm/queue_machine.h"

#include <algorithm>

#include "common/codec.h"

namespace recraft::sm {

namespace {
size_t EventBytes(const std::string& topic, const std::string& payload) {
  return topic.size() / 4 + payload.size() + 24;
}
}  // namespace

Command EncodeQueueRequest(const QueueRequest& req) {
  Command out;
  out.key = req.topic;
  Encoder enc;
  enc.PutU8(kQueueCommandFormat);
  enc.PutU8(static_cast<uint8_t>(req.op));
  enc.PutU64(req.client_id);
  enc.PutU64(req.seq);
  enc.PutString(req.payload);
  out.body = enc.Take();
  out.wire_hint =
      static_cast<uint32_t>(24 + req.topic.size() + req.payload.size());
  return out;
}

Result<QueueRequest> DecodeQueueRequest(const Command& cmd) {
  Decoder dec(cmd.body);
  auto fmt = dec.GetU8();
  if (!fmt.ok()) return fmt.status();
  if (*fmt != kQueueCommandFormat) return Rejected("not a queue command body");
  auto op = dec.GetU8();
  if (!op.ok()) return op.status();
  if (*op > static_cast<uint8_t>(QueueOp::kLen)) {
    return Internal("queue: bad op");
  }
  QueueRequest out;
  out.op = static_cast<QueueOp>(*op);
  out.topic = cmd.key;
  auto client = dec.GetU64();
  if (!client.ok()) return client.status();
  out.client_id = *client;
  auto seq = dec.GetU64();
  if (!seq.ok()) return seq.status();
  out.seq = *seq;
  auto payload = dec.GetString();
  if (!payload.ok()) return payload.status();
  out.payload = std::move(*payload);
  return out;
}

CmdResult QueueMachine::Execute(const QueueRequest& req) {
  CmdResult res;
  if (!range_.Contains(req.topic)) {
    res.status = OutOfRange("topic " + req.topic + " outside " +
                            range_.ToString());
    return res;
  }
  switch (req.op) {
    case QueueOp::kEnqueue: {
      topics_[req.topic].push_back(req.payload);
      ++total_events_;
      approx_bytes_ += EventBytes(req.topic, req.payload);
      res.status = OkStatus();
      break;
    }
    case QueueOp::kDequeue: {
      auto it = topics_.find(req.topic);
      if (it == topics_.end() || it->second.empty()) {
        res.status = NotFound("queue empty: " + req.topic);
        break;
      }
      res.status = OkStatus();
      res.payload = std::move(it->second.front());
      it->second.pop_front();
      --total_events_;
      approx_bytes_ -= EventBytes(req.topic, res.payload);
      if (it->second.empty()) topics_.erase(it);
      break;
    }
    case QueueOp::kPeek:
    case QueueOp::kLen: {
      res.status = Rejected("read-only op on the apply path");
      break;
    }
  }
  return res;
}

CmdResult QueueMachine::Apply(const Command& cmd) {
  auto req = DecodeQueueRequest(cmd);
  if (!req.ok()) return {req.status(), {}};
  // Session dedup first: a retried dequeue must return the original event,
  // never pop a second one — the queue machine is where non-idempotent
  // apply semantics keep the exactly-once layer honest.
  Session* sess = nullptr;
  if (req->client_id != 0) {
    sess = &sessions_[req->client_id];
    if (req->seq != 0 && req->seq <= sess->last_seq) {
      return sess->last_result;
    }
  }
  CmdResult res = Execute(*req);
  if (sess != nullptr && req->seq != 0) {
    sess->last_seq = req->seq;
    sess->last_result = res;
  }
  return res;
}

CmdResult QueueMachine::Query(const Command& query) const {
  auto req = DecodeQueueRequest(query);
  if (!req.ok()) return {req.status(), {}};
  if (!range_.Contains(req->topic)) {
    return {OutOfRange(req->topic), {}};
  }
  auto it = topics_.find(req->topic);
  switch (req->op) {
    case QueueOp::kPeek: {
      if (it == topics_.end() || it->second.empty()) {
        return {NotFound("queue empty: " + req->topic), {}};
      }
      return {OkStatus(), it->second.front()};
    }
    case QueueOp::kLen: {
      size_t n = it == topics_.end() ? 0 : it->second.size();
      return {OkStatus(), std::to_string(n)};
    }
    default:
      return {Rejected("mutating op on the read path"), {}};
  }
}

Result<std::string> QueueMachine::SplitHint(double fraction) const {
  if (topics_.size() < 2) return Rejected("too few topics to split");
  if (fraction <= 0.0 || fraction >= 1.0) {
    return Rejected("fraction must be in (0,1)");
  }
  size_t idx =
      static_cast<size_t>(static_cast<double>(topics_.size()) * fraction);
  idx = std::min(std::max<size_t>(idx, 1), topics_.size() - 1);
  auto it = topics_.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(idx));
  return it->first;
}

SnapshotPtr QueueMachine::TakeSnapshot() const {
  return *TakeSnapshot(range_);
}

Result<SnapshotPtr> QueueMachine::TakeSnapshot(const KeyRange& sub) const {
  if (!range_.ContainsRange(sub)) {
    return Rejected("snapshot range " + sub.ToString() + " not within " +
                    range_.ToString());
  }
  auto snap = std::make_shared<Snapshot>();
  snap->range = sub;
  Encoder enc;
  size_t topic_count = 0;
  size_t items = 0;
  for (const auto& [topic, events] : topics_) {
    if (sub.Contains(topic)) ++topic_count;
  }
  enc.PutU64(topic_count);
  for (const auto& [topic, events] : topics_) {
    if (!sub.Contains(topic)) continue;
    enc.PutString(topic);
    enc.PutU64(events.size());
    for (const auto& e : events) enc.PutString(e);
    items += events.size();
  }
  enc.PutU64(sessions_.size());
  for (const auto& [id, s] : sessions_) {
    enc.PutU64(id);
    enc.PutU64(s.last_seq);
    enc.PutU8(static_cast<uint8_t>(s.last_result.status.code()));
    enc.PutString(s.last_result.payload);
  }
  snap->data = enc.Take();
  snap->items = items;
  snap->wire_bytes = 64 + snap->data.size();
  return SnapshotPtr(std::move(snap));
}

Status QueueMachine::Restore(const Snapshot& snap) {
  Decoder dec(snap.data);
  auto nt = dec.GetU64();
  if (!nt.ok()) return nt.status();
  std::map<std::string, std::deque<std::string>> topics;
  size_t total = 0;
  size_t bytes = 0;
  for (uint64_t i = 0; i < *nt; ++i) {
    auto topic = dec.GetString();
    if (!topic.ok()) return topic.status();
    auto ne = dec.GetU64();
    if (!ne.ok()) return ne.status();
    auto& q = topics[*topic];
    for (uint64_t j = 0; j < *ne; ++j) {
      auto e = dec.GetString();
      if (!e.ok()) return e.status();
      bytes += EventBytes(*topic, *e);
      q.push_back(std::move(*e));
      ++total;
    }
  }
  auto ns = dec.GetU64();
  if (!ns.ok()) return ns.status();
  std::map<uint64_t, Session> sessions;
  for (uint64_t i = 0; i < *ns; ++i) {
    auto id = dec.GetU64();
    if (!id.ok()) return id.status();
    auto seq = dec.GetU64();
    if (!seq.ok()) return seq.status();
    auto code = dec.GetU8();
    if (!code.ok()) return code.status();
    auto payload = dec.GetString();
    if (!payload.ok()) return payload.status();
    Session s;
    s.last_seq = *seq;
    s.last_result.status = Status(static_cast<Code>(*code));
    s.last_result.payload = std::move(*payload);
    sessions.emplace(*id, std::move(s));
  }
  range_ = snap.range;
  topics_ = std::move(topics);
  sessions_ = std::move(sessions);
  total_events_ = total;
  approx_bytes_ = bytes;
  return OkStatus();
}

void QueueMachine::Reset(const KeyRange& range) {
  range_ = range;
  topics_.clear();
  sessions_.clear();
  total_events_ = 0;
  approx_bytes_ = 0;
}

void QueueMachine::Prune(const KeyRange& keep) {
  for (auto it = topics_.begin(); it != topics_.end();) {
    if (!keep.Contains(it->first)) {
      total_events_ -= it->second.size();
      for (const auto& e : it->second) {
        approx_bytes_ -= EventBytes(it->first, e);
      }
      it = topics_.erase(it);
    } else {
      ++it;
    }
  }
}

Status QueueMachine::Rebase(const KeyRange& range) {
  range_ = range;
  Prune(range);
  return OkStatus();
}

Status QueueMachine::RestrictRange(const KeyRange& sub) {
  if (!range_.ContainsRange(sub)) {
    return Rejected("restrict range " + sub.ToString() + " not within " +
                    range_.ToString());
  }
  return Rebase(sub);
}

Status QueueMachine::MergeIn(const Snapshot& snap) {
  if (range_.Overlaps(snap.range)) {
    return Rejected("merge ranges overlap: " + range_.ToString() + " / " +
                    snap.range.ToString());
  }
  auto merged = KeyRange::MergeAdjacent({range_, snap.range});
  if (!merged.ok()) return merged.status();
  QueueMachine other(snap.range);
  if (Status s = other.Restore(snap); !s.ok()) return s;
  range_ = *merged;
  for (auto& [topic, events] : other.topics_) {
    auto& q = topics_[topic];
    for (auto& e : events) {
      approx_bytes_ += EventBytes(topic, e);
      q.push_back(std::move(e));
      ++total_events_;
    }
  }
  // Sessions union keeping the larger last_seq per client (same rule as the
  // KV machine: the session table travels with the data).
  for (auto& [id, s] : other.sessions_) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      sessions_.emplace(id, std::move(s));
    } else if (s.last_seq > it->second.last_seq) {
      it->second = std::move(s);
    }
  }
  return OkStatus();
}

MachineFactory QueueMachineFactory() {
  return [](const KeyRange& range) -> MachinePtr {
    return std::make_unique<QueueMachine>(range);
  };
}

}  // namespace recraft::sm
