// Synchronous KV client over UdpTransport — the client half of the
// real-process deployment mode. One KvClient = one client identity: its
// own UDP socket (bound ephemerally; servers learn the reply address from
// the first datagram), its own kv session (client_id/seq dedup, so retried
// writes apply exactly once), and a blocking Do() that drives a private
// poll loop until the reply arrives or the deadline passes.
//
// Leader routing: Do() remembers which node last answered as leader,
// follows kNotLeader leader hints, and rotates through the phonebook on
// per-attempt timeouts — the retry loop every Raft client ends up writing.
//
// recraft-cli and bench/net_loopback both sit on this; load generators run
// one KvClient per logical client (each is single-threaded and
// self-contained, so a thread per client composes safely).
//
// Lives under the src/net/udp_ determinism-gate exemption (sockets, real
// clock) like the transport it wraps.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "kv/service.h"
#include "net/phonebook.h"
#include "net/udp_clock.h"
#include "net/udp_transport.h"

namespace recraft::net {

class KvClient {
 public:
  struct Options {
    /// Per-attempt reply wait before rotating to another node.
    Duration attempt_timeout = 250 * kMillisecond;
    ReliableLink::Options link;
  };

  /// `client_id` must not collide with any server id in `book` (servers
  /// key reliable links by peer id). `book` lists the cluster to talk to.
  KvClient(NodeId client_id, Phonebook book, Options opts);
  KvClient(NodeId client_id, Phonebook book);  // default Options

  /// Socket state; a failed bind makes every Do() return it.
  const Status& status() const { return transport_->status(); }

  /// Execute one op. Writes get this session's client_id/seq stamped
  /// (unless the caller pre-set them) and are retried — across leader
  /// changes — until acked or `timeout` elapses; the dedup session makes
  /// the retries exactly-once. Reads retry the same way but carry no
  /// session (they never mutate).
  kv::Response Do(kv::Command cmd, Duration timeout = 5 * kSecond);

  /// The node that served the last successful op (kNoNode before any).
  NodeId last_leader() const { return leader_; }

  NodeId id() const { return self_; }
  MetricRegistry& metrics() { return metrics_; }

 private:
  void Pump(int timeout_ms);

  NodeId self_;
  Phonebook book_;
  std::vector<NodeId> targets_;
  Options opts_;
  MetricRegistry metrics_;
  SystemClock clock_;
  std::unique_ptr<UdpTransport> transport_;

  uint64_t next_req_ = 0;
  uint64_t next_seq_ = 0;
  NodeId leader_ = kNoNode;
  std::map<uint64_t, raft::ClientReply> replies_;
};

}  // namespace recraft::net
