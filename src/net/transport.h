// The message-passing half of the net:: seam. A Transport moves
// raft::Message values between named endpoints; everything below the
// simulator addresses peers only by NodeId and never knows whether a send
// becomes a calendar-queue event or a UDP datagram. Two implementations:
//
//   * sim::SimTransport (src/sim/transport.h) — a pass-through adapter over
//     sim::Network. Same RNG draws, same event schedule, so the seeded
//     suite's execution digests are bit-identical to pre-seam wiring.
//   * net::UdpTransport (src/net/udp_transport.h) — non-blocking UDP
//     sockets plus a retransmitting reliable-link layer; messages are
//     encoded with net/wire.h and reassembled on the far side.
//
// Delivery contract (both implementations): Send never invokes a receive
// callback synchronously — delivery happens from the owning event/poll
// loop — and a bound endpoint sees each peer's messages at most once, in
// an order the protocol must tolerate (the sim can drop and reorder; the
// reliable link is exactly-once in-order per peer). core::Node's SendFn
// requires exactly this asynchrony.
#pragma once

#include <functional>

#include "common/types.h"
#include "obs/trace_ctx.h"
#include "raft/messages.h"

namespace recraft::net {

/// Delivery callback for a bound endpoint. `m` is borrowed for the duration
/// of the call; `ctx` is the sender's causal trace context, forwarded
/// unchanged (pure annotation).
using ReceiveFn =
    std::function<void(NodeId from, const raft::Message& m, obs::TraceCtx ctx)>;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Register (or replace) the local endpoint `node`; `fn` is invoked from
  /// the transport's loop for each delivered message.
  virtual void Bind(NodeId node, ReceiveFn fn) = 0;
  virtual void Unbind(NodeId node) = 0;

  /// Queue `msg` for delivery from `from` to `to`. Never delivers
  /// synchronously. The transport shares ownership of the message record,
  /// so callers may drop their MessagePtr immediately.
  virtual void Send(NodeId from, NodeId to, const raft::MessagePtr& msg) = 0;
};

}  // namespace recraft::net
