// Retransmitting perfect-link protocol over one unordered, lossy,
// duplicating datagram channel to a single peer — the classic reliable-link
// layer under UdpTransport. Per direction it provides exactly-once,
// in-order message delivery via:
//
//   * sequence numbers per chunk, a fixed in-flight window (64, matching
//     the 64-bit selective-ack bitmap),
//   * cumulative + selective acks: every DATA received triggers an ACK
//     carrying (highest in-order seq, bitmap of the 64 seqs above it),
//   * retransmission with exponential backoff: unacked chunks retransmit at
//     rto_initial, doubling up to rto_max, abandoned after
//     max_transmissions attempts (the peer is gone or has moved on),
//   * a dedup window on the receive side: seqs at or below the cumulative
//     point (or already buffered) are acked again and dropped,
//   * session tokens: a restarted sender picks a new session value, and the
//     receiver resets its ordering state instead of discarding the reborn
//     peer's fresh seq space as duplicates. Stale-session ACKs are ignored.
//   * a stream base in every DATA frame: the lowest seq the sender can
//     still retransmit. A receiver with no state for the sender's session
//     — it restarted, or the sender predates it — joins the stream at the
//     base instead of waiting forever for seqs consumed by a previous
//     incarnation (the one deadlock sessions alone cannot break: a
//     long-lived sender whose peer rebooted mid-stream). A synced receiver
//     uses base advances to jump gaps the sender abandoned.
//
// Messages larger than max_payload fragment into consecutive chunks (the
// more-fragments flag); in-order delivery makes reassembly a concatenation.
// The first-fragment flag marks message starts, so a receiver joining
// mid-stream discards headless tails instead of splicing them into the
// next message. Whole messages are delivered or dropped, never truncated.
//
// This class is a PURE protocol engine — no sockets, no clocks, no RNG; it
// lives inside the recraft-determinism gate. Time enters exclusively
// through `now` parameters, datagrams leave through an EmitFn, decoded
// messages leave through a DeliverFn. UdpTransport owns the impure half
// (src/net/udp_transport.*, exempt by path); tests drive this engine
// directly with scripted clocks and channels.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace recraft::net {

class ReliableLink {
 public:
  struct Options {
    /// Max chunk payload bytes per datagram (header excluded). Keeps each
    /// frame under a loopback/LAN-safe UDP size.
    size_t max_payload = 1200;
    /// First retransmission timeout; doubles per retry up to rto_max.
    Duration rto_initial = 50 * kMillisecond;
    Duration rto_max = 2 * kSecond;
    /// In-flight chunk window. Capped at 64 (the SACK bitmap width).
    size_t window = 64;
    /// Give up on a chunk after this many transmissions (~50s at the
    /// default rto ladder). The stream base then advances past it, so a
    /// live receiver skips the gap instead of wedging.
    uint32_t max_transmissions = 30;
  };

  struct Counters {
    uint64_t datagrams_sent = 0;     // DATA frames (first transmissions)
    uint64_t datagrams_received = 0; // DATA frames accepted or deduped
    uint64_t retransmits = 0;        // DATA frames re-sent after timeout
    uint64_t acks_sent = 0;
    uint64_t acks_received = 0;
    uint64_t duplicates_dropped = 0; // dedup-window hits
    uint64_t out_of_window_dropped = 0;
    uint64_t messages_sent = 0;      // application messages queued
    uint64_t messages_delivered = 0; // application messages reassembled
    uint64_t sessions_reset = 0;     // peer restarts observed
    uint64_t chunks_abandoned = 0;   // gave up after max_transmissions
    uint64_t messages_skipped = 0;   // receiver discarded a headless tail
  };

  /// Datagram kinds (first header byte).
  enum FrameType : uint8_t { kData = 1, kAck = 2 };

  /// DATA flag bits.
  enum Flags : uint8_t {
    kMoreFragments = 1,  // message continues in the next seq
    kFirstFragment = 2,  // this chunk starts a message
  };

  struct Header {
    FrameType type = kData;
    NodeId src = kNoNode;
    uint64_t session = 0;
  };
  static constexpr size_t kHeaderBytes = 1 + 4 + 8;  // type, src, session
  // DATA adds seq, stream base, flags.
  static constexpr size_t kDataHeaderBytes = kHeaderBytes + 8 + 8 + 1;

  /// Parse the common frame header (the transport routes on src).
  static Result<Header> PeekHeader(const uint8_t* data, size_t len);

  /// Hand a finished outbound datagram to the channel (the transport's
  /// sendto, or a test's scripted lossy queue).
  using EmitFn = std::function<void(const std::vector<uint8_t>& datagram)>;
  /// Hand a reassembled inbound message up the stack.
  using DeliverFn = std::function<void(std::vector<uint8_t> message)>;

  /// `self` stamps outgoing frames; `session` must be fresh per process
  /// incarnation (the transport derives it from boot time + pid).
  ReliableLink(NodeId self, uint64_t session, Options opts);

  /// Queue one message for reliable delivery and transmit whatever the
  /// window admits. Never delivers synchronously.
  void SendMessage(const std::vector<uint8_t>& message, TimePoint now,
                   const EmitFn& emit);

  /// Process one inbound datagram from the peer (either direction's frame:
  /// DATA delivers + acks, ACK clears in-flight + frees window).
  void OnDatagram(const uint8_t* data, size_t len, TimePoint now,
                  const EmitFn& emit, const DeliverFn& deliver);

  /// Retransmit expired chunks and fill the window from the backlog.
  /// Call at (or after) NextDeadline().
  void OnTimer(TimePoint now, const EmitFn& emit);

  /// Earliest retransmission deadline, or 0 when nothing is in flight.
  TimePoint NextDeadline() const;

  const Counters& counters() const { return counters_; }
  size_t in_flight() const { return in_flight_.size(); }
  size_t backlog() const { return backlog_.size(); }

 private:
  struct Chunk {
    std::vector<uint8_t> frame;  // fully framed datagram, ready to re-send
    TimePoint sent_at = 0;
    Duration rto = 0;
    uint32_t transmissions = 0;
  };

  std::vector<uint8_t> FrameChunk(uint64_t seq, uint8_t flags,
                                  const uint8_t* payload, size_t len) const;
  /// Lowest seq still retransmittable (next_seq_ when nothing is queued).
  uint64_t StreamBase() const;
  void Emit(std::vector<uint8_t>& frame, const EmitFn& emit);
  void SendAck(const EmitFn& emit);
  void TransmitFromBacklog(TimePoint now, const EmitFn& emit);
  void HandleData(const uint8_t* data, size_t len, uint64_t session,
                  const EmitFn& emit, const DeliverFn& deliver);
  void HandleAck(const uint8_t* data, size_t len, uint64_t session);
  void AdvanceTo(uint64_t new_cum);
  void DeliverInOrder(const DeliverFn& deliver);

  NodeId self_;
  uint64_t session_;  // our send-side incarnation token
  Options opts_;

  // --- send side -----------------------------------------------------------
  uint64_t next_seq_ = 1;
  std::map<uint64_t, Chunk> in_flight_;  // seq -> chunk awaiting ack
  /// Framed chunks (seq pre-assigned) waiting for window space.
  std::deque<std::pair<uint64_t, std::vector<uint8_t>>> backlog_;

  // --- receive side --------------------------------------------------------
  uint64_t peer_session_ = 0;      // 0 = none seen yet
  /// False until the first DATA of the peer's session anchors cum_received_
  /// at its stream base.
  bool synced_ = false;
  uint64_t cum_received_ = 0;      // highest in-order seq received
  /// True while partial_ holds a message whose first fragment we saw; a
  /// tail collected without its head (mid-stream join, abandoned gap) is
  /// discarded at the final fragment instead of delivered truncated.
  bool collecting_ = false;
  std::map<uint64_t, std::vector<uint8_t>> ooo_;  // out-of-order payloads
  std::map<uint64_t, uint8_t> ooo_flags_;
  std::vector<uint8_t> partial_;   // fragments of the message being rebuilt

  Counters counters_;
};

}  // namespace recraft::net
