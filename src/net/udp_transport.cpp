#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>

#include "common/codec.h"
#include "common/logging.h"
#include "net/wire.h"

namespace recraft::net {

namespace {

// Fresh per process incarnation: a restarted daemon must not look like a
// continuation of its previous seq space to peers (see ReliableLink's
// session handling).
uint64_t FreshSession() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  uint64_t t = static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
               static_cast<uint64_t>(ts.tv_nsec);
  uint64_t s = t ^ (static_cast<uint64_t>(getpid()) << 32);
  return s == 0 ? 1 : s;  // 0 is the link's "no session yet" sentinel
}

Result<sockaddr_in> Resolve(const Endpoint& ep) {
  sockaddr_in out{};
  out.sin_family = AF_INET;
  out.sin_port = htons(ep.port);
  if (inet_pton(AF_INET, ep.host.c_str(), &out.sin_addr) == 1) return out;

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_DGRAM;
  addrinfo* res = nullptr;
  int rc = getaddrinfo(ep.host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    return Unavailable(StrFormat("resolve %s: %s", ep.host.c_str(),
                                 gai_strerror(rc)));
  }
  out.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  freeaddrinfo(res);
  return out;
}

bool SameAddr(const sockaddr_in& a, const sockaddr_in& b) {
  return a.sin_addr.s_addr == b.sin_addr.s_addr && a.sin_port == b.sin_port;
}

}  // namespace

UdpTransport::UdpTransport(NodeId self, Phonebook book, Clock* clock,
                           MetricRegistry* metrics, Options opts)
    : self_(self),
      book_(std::move(book)),
      clock_(clock),
      metrics_(metrics),
      opts_(opts),
      session_(FreshSession()) {
  if (metrics_ != nullptr) {
    CounterSet& c = metrics_->counters();
    ids_.datagrams_sent = c.Intern("net.datagrams_sent");
    ids_.datagrams_received = c.Intern("net.datagrams_received");
    ids_.retransmits = c.Intern("net.retransmits");
    ids_.acks_sent = c.Intern("net.acks_sent");
    ids_.acks_received = c.Intern("net.acks_received");
    ids_.duplicates_dropped = c.Intern("net.duplicates_dropped");
    ids_.out_of_window_dropped = c.Intern("net.out_of_window_dropped");
    ids_.messages_sent = c.Intern("net.messages_sent");
    ids_.messages_delivered = c.Intern("net.messages_delivered");
    ids_.sessions_reset = c.Intern("net.sessions_reset");
    ids_.chunks_abandoned = c.Intern("net.chunks_abandoned");
    ids_.messages_skipped = c.Intern("net.messages_skipped");
    ids_.decode_errors = c.Intern("net.decode_errors");
    ids_.garbage_dropped = c.Intern("net.garbage_dropped");
    ids_.unknown_peer_dropped = c.Intern("net.unknown_peer_dropped");
    ids_.send_errors = c.Intern("net.send_errors");
  }

  // Daemons bind at their phonebook endpoint; ids with no entry (clients)
  // bind ephemerally — servers learn their reply address from the source
  // of the first datagram.
  sockaddr_in bind_addr{};
  bind_addr.sin_family = AF_INET;
  const Endpoint* me = book_.Find(self_);
  if (me != nullptr) {
    auto addr = Resolve(*me);
    if (!addr.ok()) {
      status_ = addr.status();
      return;
    }
    bind_addr = *addr;
  }

  fd_ = socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    status_ = Internal(StrFormat("socket: %s", strerror(errno)));
    return;
  }
  // No SO_REUSEADDR: on UDP it permits a second daemon to double-bind the
  // port and silently split the datagram stream with a stale incarnation.
  // A loud bind failure is the correct outcome.
  if (bind(fd_, reinterpret_cast<const sockaddr*>(&bind_addr),
           sizeof(bind_addr)) != 0) {
    status_ = Internal(StrFormat(
        "bind %s:%u: %s", me != nullptr ? me->host.c_str() : "*",
        me != nullptr ? me->port : 0, strerror(errno)));
    close(fd_);
    fd_ = -1;
    return;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) close(fd_);
}

void UdpTransport::Bind(NodeId id, ReceiveFn fn) {
  bound_id_ = id;
  receive_ = std::move(fn);
}

void UdpTransport::Unbind(NodeId id) {
  if (id != bound_id_) return;
  bound_id_ = kNoNode;
  receive_ = nullptr;
}

UdpTransport::Peer* UdpTransport::GetPeer(NodeId id,
                                          const sockaddr_in* learned) {
  auto it = peers_.find(id);
  if (it == peers_.end()) {
    it = peers_
             .emplace(std::piecewise_construct, std::forward_as_tuple(id),
                      std::forward_as_tuple(self_, session_, opts_.link))
             .first;
    if (const Endpoint* ep = book_.Find(id)) {
      auto addr = Resolve(*ep);
      if (addr.ok()) {
        it->second.addr = *addr;
        it->second.addr_known = true;
      }
    }
  }
  Peer& p = it->second;
  if (learned != nullptr &&
      (!p.addr_known || !SameAddr(p.addr, *learned))) {
    // First contact from a non-phonebook peer (a client), or a peer that
    // came back on a different port. The datagram's source is the truth.
    p.addr = *learned;
    p.addr_known = true;
  }
  return &p;
}

void UdpTransport::Transmit(NodeId to, const std::vector<uint8_t>& datagram) {
  if (shim_) {
    shim_(to, datagram, [this](NodeId t, const std::vector<uint8_t>& d) {
      RawSend(t, d);
    });
  } else {
    RawSend(to, datagram);
  }
}

void UdpTransport::RawSend(NodeId to, const std::vector<uint8_t>& datagram) {
  auto it = peers_.find(to);
  if (it == peers_.end() || !it->second.addr_known || fd_ < 0) {
    if (metrics_ != nullptr) {
      metrics_->counters().Add(ids_.unknown_peer_dropped);
    }
    return;
  }
  ssize_t n = sendto(fd_, datagram.data(), datagram.size(), 0,
                     reinterpret_cast<const sockaddr*>(&it->second.addr),
                     sizeof(it->second.addr));
  if (n < 0 && metrics_ != nullptr) {
    // EAGAIN (full socket buffer) behaves like loss; the link retransmits.
    metrics_->counters().Add(ids_.send_errors);
  }
}

void UdpTransport::Send(NodeId from, NodeId to, const raft::MessagePtr& msg) {
  (void)from;  // frames carry self_; one process speaks for one node
  if (!msg || fd_ < 0) return;

  Encoder enc;
  obs::TraceCtx ctx = msg.trace_ctx();
  enc.PutU64(ctx.trace_id);
  enc.PutU64(ctx.parent_span);
  EncodeMessage(enc, *msg);

  Peer* p = GetPeer(to, nullptr);
  if (!p->addr_known) {
    // No phonebook entry and never heard from them: undeliverable.
    if (metrics_ != nullptr) {
      metrics_->counters().Add(ids_.unknown_peer_dropped);
    }
    return;
  }
  p->link.SendMessage(enc.buffer(), clock_->Now(),
                      [this, to](const std::vector<uint8_t>& d) {
                        Transmit(to, d);
                      });
  SyncCounters();
}

void UdpTransport::Deliver(NodeId from, std::vector<uint8_t> message) {
  Decoder dec(message.data(), message.size());
  auto trace_id = dec.GetU64();
  auto parent_span = dec.GetU64();
  if (!trace_id.ok() || !parent_span.ok()) {
    if (metrics_ != nullptr) metrics_->counters().Add(ids_.decode_errors);
    return;
  }
  auto decoded = DecodeMessage(dec);
  if (!decoded.ok()) {
    if (metrics_ != nullptr) metrics_->counters().Add(ids_.decode_errors);
    RLOG_WARN("udp", "undecodable message from %u: %s", from,
              decoded.status().message().c_str());
    return;
  }
  obs::TraceCtx ctx;
  ctx.trace_id = *trace_id;
  ctx.parent_span = *parent_span;
  decoded->set_trace_ctx(ctx);
  if (receive_) receive_(from, **decoded, ctx);
}

void UdpTransport::OnReadable() {
  if (fd_ < 0) return;
  uint8_t buf[65536];
  for (;;) {
    sockaddr_in src{};
    socklen_t slen = sizeof(src);
    ssize_t n = recvfrom(fd_, buf, sizeof(buf), 0,
                         reinterpret_cast<sockaddr*>(&src), &slen);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained
    }
    auto h = ReliableLink::PeekHeader(buf, static_cast<size_t>(n));
    if (!h.ok()) {
      if (metrics_ != nullptr) metrics_->counters().Add(ids_.garbage_dropped);
      continue;
    }
    NodeId peer = h->src;
    Peer* p = GetPeer(peer, &src);
    p->link.OnDatagram(
        buf, static_cast<size_t>(n), clock_->Now(),
        [this, peer](const std::vector<uint8_t>& d) { Transmit(peer, d); },
        [this, peer](std::vector<uint8_t> m) { Deliver(peer, std::move(m)); });
  }
  SyncCounters();
}

void UdpTransport::OnTimer() {
  TimePoint now = clock_->Now();
  for (auto& [id, p] : peers_) {
    p.link.OnTimer(now, [this, id = id](const std::vector<uint8_t>& d) {
      Transmit(id, d);
    });
  }
  SyncCounters();
}

TimePoint UdpTransport::NextDeadline() const {
  TimePoint best = 0;
  for (const auto& [id, p] : peers_) {
    TimePoint dl = p.link.NextDeadline();
    if (dl != 0 && (best == 0 || dl < best)) best = dl;
  }
  return best;
}

const ReliableLink* UdpTransport::link(NodeId peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? nullptr : &it->second.link;
}

void UdpTransport::SyncCounters() {
  if (metrics_ == nullptr) return;
  CounterSet& c = metrics_->counters();
  for (auto& [id, p] : peers_) {
    const ReliableLink::Counters& now = p.link.counters();
    ReliableLink::Counters& old = p.synced;
    c.Add(ids_.datagrams_sent, now.datagrams_sent - old.datagrams_sent);
    c.Add(ids_.datagrams_received,
          now.datagrams_received - old.datagrams_received);
    c.Add(ids_.retransmits, now.retransmits - old.retransmits);
    c.Add(ids_.acks_sent, now.acks_sent - old.acks_sent);
    c.Add(ids_.acks_received, now.acks_received - old.acks_received);
    c.Add(ids_.duplicates_dropped,
          now.duplicates_dropped - old.duplicates_dropped);
    c.Add(ids_.out_of_window_dropped,
          now.out_of_window_dropped - old.out_of_window_dropped);
    c.Add(ids_.messages_sent, now.messages_sent - old.messages_sent);
    c.Add(ids_.messages_delivered,
          now.messages_delivered - old.messages_delivered);
    c.Add(ids_.sessions_reset, now.sessions_reset - old.sessions_reset);
    c.Add(ids_.chunks_abandoned, now.chunks_abandoned - old.chunks_abandoned);
    c.Add(ids_.messages_skipped, now.messages_skipped - old.messages_skipped);
    old = now;
  }
}

}  // namespace recraft::net
