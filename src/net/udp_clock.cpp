#include "net/udp_clock.h"

#include <ctime>

namespace recraft::net {

namespace {

uint64_t MonotonicNs() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

SystemClock::SystemClock() : base_ns_(MonotonicNs()) {}

TimePoint SystemClock::Now() const { return (MonotonicNs() - base_ns_) / 1000; }

TimerId SystemClock::CallAfter(Duration delay, std::function<void()> fn) {
  TimerId id = next_id_++;
  TimePoint deadline = Now() + delay;
  if (deadline == 0) deadline = 1;  // 0 is NextDeadline's "none" sentinel
  heap_.push(Timer{deadline, id});
  fns_.emplace(id, std::move(fn));
  return id;
}

void SystemClock::Cancel(TimerId id) {
  if (id == kNoTimer) return;
  fns_.erase(id);  // the heap entry becomes a tombstone, skipped on pop
}

size_t SystemClock::RunDue() {
  size_t fired = 0;
  TimePoint now = Now();  // fixed snapshot: callbacks arming 0-delay timers
                          // run on the NEXT RunDue, never recurse here
  while (!heap_.empty() && heap_.top().deadline <= now) {
    Timer t = heap_.top();
    heap_.pop();
    auto it = fns_.find(t.id);
    if (it == fns_.end()) continue;  // cancelled
    std::function<void()> fn = std::move(it->second);
    fns_.erase(it);
    fn();
    ++fired;
  }
  return fired;
}

TimePoint SystemClock::NextDeadline() const {
  // Skim cancelled tombstones off the top so pollers do not spin on them.
  auto* self = const_cast<SystemClock*>(this);
  while (!self->heap_.empty() &&
         self->fns_.find(self->heap_.top().id) == self->fns_.end()) {
    self->heap_.pop();
  }
  return heap_.empty() ? 0 : heap_.top().deadline;
}

int SystemClock::PollTimeoutMs(int max_ms) const {
  TimePoint dl = NextDeadline();
  if (dl == 0 && pending() == 0) return -1;
  TimePoint now = Now();
  if (dl <= now) return 0;
  uint64_t ms = (dl - now + 999) / 1000;
  if (ms > static_cast<uint64_t>(max_ms)) return max_ms;
  return static_cast<int>(ms);
}

}  // namespace recraft::net
