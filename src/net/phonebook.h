// The hosts config for real-process deployments: a text file mapping node
// ids to UDP endpoints, one `<id> <host>:<port>` per line (`#` comments,
// blank lines ignored). Every process in a cluster reads the same phonebook
// and derives both its own bind address and everyone else's send address
// from it — there is no discovery protocol; the file IS the topology.
//
//   # recraftd cluster
//   1 127.0.0.1:7101
//   2 127.0.0.1:7102
//   3 127.0.0.1:7103
//
// Parsing is pure (string in, map out) and strict: duplicate ids, missing
// ports and junk lines are errors, because a typo here becomes a silent
// split-brain at runtime. Hostname resolution happens later, in
// UdpTransport (the impure half).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace recraft::net {

struct Endpoint {
  std::string host;   // dotted quad or hostname; resolved by the transport
  uint16_t port = 0;

  bool operator==(const Endpoint&) const = default;
};

class Phonebook {
 public:
  /// Parse phonebook text. Errors name the offending line.
  static Result<Phonebook> Parse(const std::string& text);

  /// Read and parse `path`.
  static Result<Phonebook> Load(const std::string& path);

  /// nullptr when `id` has no entry.
  const Endpoint* Find(NodeId id) const;

  /// All node ids, ascending.
  std::vector<NodeId> ids() const;

  size_t size() const { return entries_.size(); }
  const std::map<NodeId, Endpoint>& entries() const { return entries_; }

 private:
  std::map<NodeId, Endpoint> entries_;
};

}  // namespace recraft::net
