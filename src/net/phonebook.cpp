#include "net/phonebook.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace recraft::net {

namespace {

// Trim ASCII whitespace from both ends.
std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

Status LineError(int lineno, const std::string& why) {
  return Internal(StrFormat("phonebook line %d: %s", lineno, why.c_str()));
}

}  // namespace

Result<Phonebook> Phonebook::Parse(const std::string& text) {
  Phonebook book;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;

    std::istringstream fields(line);
    std::string id_str;
    std::string addr;
    std::string extra;
    fields >> id_str >> addr;
    if (addr.empty()) {
      return LineError(lineno, "expected '<id> <host>:<port>'");
    }
    if (fields >> extra) {
      return LineError(lineno, "trailing junk '" + extra + "'");
    }

    uint64_t id = 0;
    for (char c : id_str) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return LineError(lineno, "node id '" + id_str + "' is not a number");
      }
      id = id * 10 + static_cast<uint64_t>(c - '0');
      if (id > 0xffffffffull) return LineError(lineno, "node id out of range");
    }

    size_t colon = addr.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == addr.size()) {
      return LineError(lineno, "address '" + addr + "' is not host:port");
    }
    Endpoint ep;
    ep.host = addr.substr(0, colon);
    uint64_t port = 0;
    for (size_t i = colon + 1; i < addr.size(); ++i) {
      char c = addr[i];
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return LineError(lineno, "port in '" + addr + "' is not a number");
      }
      port = port * 10 + static_cast<uint64_t>(c - '0');
      if (port > 65535) return LineError(lineno, "port out of range");
    }
    if (port == 0) return LineError(lineno, "port 0 is not bindable");
    ep.port = static_cast<uint16_t>(port);

    auto [it, inserted] =
        book.entries_.emplace(static_cast<NodeId>(id), std::move(ep));
    (void)it;
    if (!inserted) {
      return LineError(lineno, "duplicate entry for node " + id_str);
    }
  }
  if (book.entries_.empty()) return Internal("phonebook: no entries");
  return book;
}

Result<Phonebook> Phonebook::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Internal("phonebook: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str());
}

const Endpoint* Phonebook::Find(NodeId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<NodeId> Phonebook::ids() const {
  std::vector<NodeId> out;
  out.reserve(entries_.size());
  for (const auto& [id, ep] : entries_) out.push_back(id);
  return out;
}

}  // namespace recraft::net
