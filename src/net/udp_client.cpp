#include "net/udp_client.h"

#include <poll.h>

#include <algorithm>

namespace recraft::net {

KvClient::KvClient(NodeId client_id, Phonebook book)
    : KvClient(client_id, std::move(book), Options()) {}

KvClient::KvClient(NodeId client_id, Phonebook book, Options opts)
    : self_(client_id), book_(std::move(book)), opts_(opts) {
  targets_ = book_.ids();
  // If the phonebook also lists us (a client with a fixed port), don't try
  // to talk to ourselves.
  targets_.erase(std::remove(targets_.begin(), targets_.end(), self_),
                 targets_.end());
  UdpTransport::Options topts;
  topts.link = opts_.link;
  transport_ = std::make_unique<UdpTransport>(self_, book_, &clock_,
                                              &metrics_, topts);
  transport_->Bind(self_, [this](NodeId, const raft::Message& m,
                                 obs::TraceCtx) {
    if (const auto* reply = std::get_if<raft::ClientReply>(&m)) {
      replies_[reply->req_id] = *reply;
      // Late duplicates for already-consumed req_ids land here and are
      // never looked up again; req_ids are monotone, oldest is stalest.
      while (replies_.size() > 1024) replies_.erase(replies_.begin());
    }
  });
}

void KvClient::Pump(int timeout_ms) {
  pollfd p{};
  p.fd = transport_->fd();
  p.events = POLLIN;
  // Wake for the earlier of the caller's budget and a link retransmission.
  TimePoint dl = transport_->NextDeadline();
  if (dl != 0) {
    TimePoint now = clock_.Now();
    uint64_t ms = dl <= now ? 0 : (dl - now + 999) / 1000;
    if (ms < static_cast<uint64_t>(timeout_ms)) {
      timeout_ms = static_cast<int>(ms);
    }
  }
  poll(&p, 1, timeout_ms);
  if ((p.revents & POLLIN) != 0) transport_->OnReadable();
  transport_->OnTimer();
  clock_.RunDue();
}

kv::Response KvClient::Do(kv::Command cmd, Duration timeout) {
  kv::Response out;
  if (!transport_->status().ok()) {
    out.status = transport_->status();
    return out;
  }
  if (targets_.empty()) {
    out.status = Unavailable("kv-client: empty phonebook");
    return out;
  }

  bool read_only = kv::IsReadOnly(cmd.op);
  if (!read_only && cmd.client_id == 0) {
    cmd.client_id = self_;
    cmd.seq = ++next_seq_;
  }
  kv::OpType op = cmd.op;

  uint64_t req_id = ++next_req_;
  raft::ClientRequest req;
  req.req_id = req_id;
  req.from = self_;
  if (read_only) {
    req.body = raft::ReadRequest{kv::EncodeCommand(cmd)};
  } else {
    req.body = kv::EncodeCommand(cmd);
  }
  raft::MessagePtr msg = raft::MakeMessage(std::move(req));

  size_t target_ix = 0;
  if (leader_ != kNoNode) {
    auto it = std::find(targets_.begin(), targets_.end(), leader_);
    if (it != targets_.end()) {
      target_ix = static_cast<size_t>(it - targets_.begin());
    }
  }

  TimePoint deadline = clock_.Now() + timeout;
  for (;;) {
    NodeId target = targets_[target_ix];
    transport_->Send(self_, target, msg);

    TimePoint attempt_deadline =
        std::min(deadline, clock_.Now() + opts_.attempt_timeout);
    bool move_on = false;  // rotate targets at attempt end
    while (!move_on && clock_.Now() < attempt_deadline) {
      Pump(/*timeout_ms=*/10);
      auto it = replies_.find(req_id);
      if (it == replies_.end()) continue;
      raft::ClientReply reply = std::move(it->second);
      replies_.erase(it);
      switch (reply.status.code()) {
        case Code::kNotLeader:
          if (reply.leader_hint != kNoNode && reply.leader_hint != target) {
            auto hit = std::find(targets_.begin(), targets_.end(),
                                 reply.leader_hint);
            if (hit != targets_.end()) {
              target_ix = static_cast<size_t>(hit - targets_.begin());
              move_on = true;  // resend to the hinted leader right away
              continue;
            }
          }
          move_on = true;  // no usable hint: rotate
          target_ix = (target_ix + 1) % targets_.size();
          continue;
        case Code::kBusy:
        case Code::kTimeout:
        case Code::kUnavailable:
          // Transient on that node (e.g. mid-election); let the attempt
          // window expire, then retry — same req_id, same kv seq, so the
          // dedup session absorbs any double-apply.
          continue;
        default:
          leader_ = target;
          return kv::DecodeResponse(op, reply.status, reply.value);
      }
    }
    if (clock_.Now() >= deadline) {
      replies_.erase(req_id);
      out.status = Timeout("kv-client: no reply within deadline");
      return out;
    }
    if (!move_on) {
      leader_ = kNoNode;
      target_ix = (target_ix + 1) % targets_.size();
    }
  }
}

}  // namespace recraft::net
