// Wire format for raft::Message over a real transport. The simulator never
// serializes (payloads travel as shared pointers); UdpTransport does, so
// every variant gets an explicit, append-only tag here and its fields ride
// the same storage/codec encoders the WAL uses — one binary dialect for
// disk and wire.
//
// DecodeMessage treats truncation and unknown tags as errors, never UB: a
// datagram that passed the reliable link's framing can still be from a
// different build, and recovery-grade paranoia is cheap. Decoded
// AppendEntries/PullReply spans are rebuilt into a fresh EntrySlab — the
// refcounted zero-copy sharing is a within-process optimization; across
// processes the bytes are the truth.
#pragma once

#include "common/codec.h"
#include "common/status.h"
#include "raft/messages.h"

namespace recraft::net {

/// Serialize `m` (tag + fields). Appends to `enc`.
void EncodeMessage(Encoder& enc, const raft::Message& m);

/// Parse one message. Consumes exactly the bytes EncodeMessage produced.
Result<raft::MessagePtr> DecodeMessage(Decoder& dec);

}  // namespace recraft::net
