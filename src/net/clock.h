// The clock half of the net:: seam. Everything below the simulator — the
// consensus core's tick machinery, WalStorage's group-commit flush timer —
// reads time and arms timers through this interface, never through
// sim::EventQueue or an OS clock directly. Two implementations:
//
//   * sim::SimClock (src/sim/clock.h)      — forwards to the deterministic
//     EventQueue; Now() is simulated time and CallAfter is an event, so a
//     seeded run stays a pure function of (seed, configuration) and the
//     executed schedule (and its digest) is bit-identical to the
//     pre-seam wiring.
//   * net::SystemClock (src/net/udp_clock.h) — the real-process deployment
//     mode: a monotonic OS clock plus a timer heap pumped by recraftd's
//     poll loop.
//
// The contract both implementations honor: CallAfter never invokes `fn`
// synchronously (it runs from the owning event/poll loop), timers fire in
// deadline order, and Cancel of a fired/unknown id is a free no-op. Code
// below the seam relies on the asynchrony — WalStorage's flush timer pokes
// the node through the durable callback, which must happen from the top of
// the loop, never from inside a mutation call.
#pragma once

#include <functional>

#include "common/types.h"

namespace recraft::net {

/// Handle to a pending timer. 0 is "no timer" for every implementation
/// (sim::EventQueue's kNoEvent is 0; SystemClock starts ids at 1).
using TimerId = uint64_t;
inline constexpr TimerId kNoTimer = 0;

class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds. Simulated time for SimClock; monotonic
  /// process-relative time for SystemClock. Only differences are meaningful.
  virtual TimePoint Now() const = 0;

  /// Run `fn` once, `delay` microseconds from Now(), from the owning loop —
  /// never synchronously from inside this call.
  virtual TimerId CallAfter(Duration delay, std::function<void()> fn) = 0;

  /// Cancel a pending timer. Cancelling a fired, cancelled or unknown id is
  /// a no-op (timers race with the events that cancel them).
  virtual void Cancel(TimerId id) = 0;
};

}  // namespace recraft::net
