// net::SystemClock — the real-time implementation of the net::Clock seam
// used by recraftd. Now() reads CLOCK_MONOTONIC (microseconds since process
// start, so TimePoint stays small and log-friendly like sim time); timers
// sit in a min-heap that the daemon's poll loop drains explicitly:
//
//   poll(fds, n, clock.PollTimeoutMs());
//   clock.RunDue();
//
// Nothing fires from signal handlers or background threads — exactly the
// asynchrony contract net::Clock documents (CallAfter never runs fn
// synchronously; fn runs from RunDue, i.e. the top of the event loop),
// which is also what sim::SimClock provides. Code written against the seam
// cannot tell the two apart except by reading faster clocks.
//
// This file is under the src/net/udp_ determinism-gate exemption: it is
// the one place in src/ allowed to read a wall clock.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "net/clock.h"

namespace recraft::net {

class SystemClock final : public Clock {
 public:
  SystemClock();

  /// Microseconds of CLOCK_MONOTONIC elapsed since construction.
  TimePoint Now() const override;

  TimerId CallAfter(Duration delay, std::function<void()> fn) override;
  void Cancel(TimerId id) override;

  /// Run every timer whose deadline is at or before Now(). Callbacks may
  /// schedule or cancel further timers. Returns the number fired.
  size_t RunDue();

  /// Earliest pending deadline, or 0 when no timers are armed.
  TimePoint NextDeadline() const;

  /// NextDeadline() as a poll(2) timeout: -1 for "no timers", otherwise
  /// milliseconds until the earliest deadline, rounded up, clamped to
  /// [0, max_ms].
  int PollTimeoutMs(int max_ms = 1000) const;

  size_t pending() const { return fns_.size(); }

 private:
  struct Timer {
    TimePoint deadline = 0;
    TimerId id = kNoTimer;
    // Ties break by id: FIFO among equal deadlines, like the sim queue.
    bool operator>(const Timer& o) const {
      if (deadline != o.deadline) return deadline > o.deadline;
      return id > o.id;
    }
  };

  uint64_t base_ns_ = 0;  // CLOCK_MONOTONIC at construction
  TimerId next_id_ = 1;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> heap_;
  // fn lives here so Cancel can drop it without a heap walk; a heap entry
  // whose id is absent is a cancelled tombstone, skipped on pop.
  std::unordered_map<TimerId, std::function<void()>> fns_;
};

}  // namespace recraft::net
