// net::UdpTransport — the real-network implementation of the net::Transport
// seam: one non-blocking UDP socket bound at this process's phonebook
// endpoint, with a ReliableLink per peer turning the lossy datagram channel
// into the exactly-once ordered delivery core::Node was written against.
//
// Wire shape per application message (before the link fragments it):
//
//   [u64 trace_id][u64 parent_span][net::EncodeMessage bytes]
//
// so causal tracing survives the process boundary. Peer addresses come from
// the phonebook; peers NOT in the phonebook (clients) are learned from the
// source address of their first datagram — the reply path needs no client
// registry. Session tokens (boot-time ^ pid) let links detect a restarted
// peer and reset ordering state instead of discarding its fresh seq space.
//
// Threading/asynchrony: single-threaded, poll-driven. The owner's event
// loop calls OnReadable() when fd() is readable and OnTimer() at (or after)
// NextDeadline(); receive callbacks fire from inside OnReadable, never from
// Send — the same no-synchronous-delivery contract the simulator provides.
//
// Per-link counters (send/recv/retransmit/dedup/...) are folded into the
// MetricRegistry after every socket interaction, under pre-interned ids.
//
// This file is under the src/net/udp_ determinism-gate exemption: syscalls,
// wall clocks and kernel buffering make it inherently nondeterministic;
// everything protocol-shaped lives in ReliableLink/wire (in-gate, pure).
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "net/clock.h"
#include "net/phonebook.h"
#include "net/reliable_link.h"
#include "net/transport.h"

namespace recraft::net {

class UdpTransport final : public Transport {
 public:
  struct Options {
    ReliableLink::Options link;
  };

  /// Binds a UDP socket at `book`'s entry for `self`, or ephemerally when
  /// `self` has no entry (clients: servers learn the reply address from
  /// the datagram source). status() reports failures — callers must check
  /// before polling. `clock` supplies `now` for the links; `metrics`
  /// (optional) receives the per-link counters.
  UdpTransport(NodeId self, Phonebook book, Clock* clock,
               MetricRegistry* metrics, Options opts = {});
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Socket/bind outcome; not ok() means fd() is unusable.
  const Status& status() const { return status_; }

  // --- net::Transport -------------------------------------------------------
  // One process serves one bound node; a second Bind replaces the first.
  void Bind(NodeId id, ReceiveFn fn) override;
  void Unbind(NodeId id) override;
  void Send(NodeId from, NodeId to, const raft::MessagePtr& msg) override;

  // --- event-loop surface ---------------------------------------------------
  int fd() const { return fd_; }
  /// Drain the socket; delivers complete messages to the bound receiver.
  void OnReadable();
  /// Retransmit expired chunks across all links.
  void OnTimer();
  /// Earliest link retransmission deadline, or 0 when nothing is in flight.
  TimePoint NextDeadline() const;

  // --- test shim ------------------------------------------------------------
  /// The path a finished datagram takes to the kernel. Tests interpose a
  /// shim to drop, duplicate, or stash-and-release datagrams; `forward` is
  /// the real sendto. Production leaves this unset.
  using RawSendFn =
      std::function<void(NodeId to, const std::vector<uint8_t>& datagram)>;
  using SendShim = std::function<void(NodeId to, std::vector<uint8_t> datagram,
                                      const RawSendFn& forward)>;
  void set_send_shim(SendShim shim) { shim_ = std::move(shim); }

  uint64_t session() const { return session_; }
  /// Link state toward `peer` (nullptr before any traffic). Test-facing.
  const ReliableLink* link(NodeId peer) const;
  /// Local bound port (useful when the phonebook said port 0... it cannot;
  /// useful for logging).
  uint16_t bound_port() const { return bound_port_; }

 private:
  struct Peer {
    sockaddr_in addr{};
    bool addr_known = false;
    ReliableLink link;
    ReliableLink::Counters synced;  // last values folded into metrics_

    Peer(NodeId self, uint64_t session, const ReliableLink::Options& o)
        : link(self, session, o) {}
  };

  struct CounterIds {
    CounterSet::Id datagrams_sent = 0;
    CounterSet::Id datagrams_received = 0;
    CounterSet::Id retransmits = 0;
    CounterSet::Id acks_sent = 0;
    CounterSet::Id acks_received = 0;
    CounterSet::Id duplicates_dropped = 0;
    CounterSet::Id out_of_window_dropped = 0;
    CounterSet::Id messages_sent = 0;
    CounterSet::Id messages_delivered = 0;
    CounterSet::Id sessions_reset = 0;
    CounterSet::Id chunks_abandoned = 0;
    CounterSet::Id messages_skipped = 0;
    CounterSet::Id decode_errors = 0;
    CounterSet::Id garbage_dropped = 0;
    CounterSet::Id unknown_peer_dropped = 0;
    CounterSet::Id send_errors = 0;
  };

  Peer* GetPeer(NodeId id, const sockaddr_in* learned);
  void Transmit(NodeId to, const std::vector<uint8_t>& datagram);
  void RawSend(NodeId to, const std::vector<uint8_t>& datagram);
  void Deliver(NodeId from, std::vector<uint8_t> message);
  void SyncCounters();

  NodeId self_;
  Phonebook book_;
  Clock* clock_;
  MetricRegistry* metrics_;  // may be null
  Options opts_;
  uint64_t session_ = 0;

  int fd_ = -1;
  uint16_t bound_port_ = 0;
  Status status_ = OkStatus();

  NodeId bound_id_ = kNoNode;
  ReceiveFn receive_;
  std::map<NodeId, Peer> peers_;
  SendShim shim_;
  CounterIds ids_;
};

}  // namespace recraft::net
