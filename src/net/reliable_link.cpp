#include "net/reliable_link.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace recraft::net {

namespace {

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

void StoreU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
void StoreU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }

// DATA frame field offsets after the common header.
constexpr size_t kSeqOff = ReliableLink::kHeaderBytes;
constexpr size_t kBaseOff = kSeqOff + 8;
constexpr size_t kFlagsOff = kBaseOff + 8;

}  // namespace

ReliableLink::ReliableLink(NodeId self, uint64_t session, Options opts)
    : self_(self), session_(session), opts_(opts) {
  opts_.window = std::min<size_t>(opts_.window, 64);
  if (opts_.window == 0) opts_.window = 1;
  if (opts_.max_payload == 0) opts_.max_payload = 1200;
  if (opts_.rto_initial == 0) opts_.rto_initial = kMillisecond;
  if (opts_.rto_max < opts_.rto_initial) opts_.rto_max = opts_.rto_initial;
  if (opts_.max_transmissions == 0) opts_.max_transmissions = 1;
}

Result<ReliableLink::Header> ReliableLink::PeekHeader(const uint8_t* data,
                                                      size_t len) {
  if (len < kHeaderBytes) return Internal("link: short frame");
  Header h;
  if (data[0] != kData && data[0] != kAck) {
    return Internal("link: unknown frame type");
  }
  h.type = static_cast<FrameType>(data[0]);
  h.src = LoadU32(data + 1);
  h.session = LoadU64(data + 5);
  return h;
}

std::vector<uint8_t> ReliableLink::FrameChunk(uint64_t seq, uint8_t flags,
                                              const uint8_t* payload,
                                              size_t len) const {
  std::vector<uint8_t> frame(kDataHeaderBytes + len);
  frame[0] = kData;
  StoreU32(frame.data() + 1, self_);
  StoreU64(frame.data() + 5, session_);
  StoreU64(frame.data() + kSeqOff, seq);
  // The stream base is stamped at emit time — it keeps moving as acks and
  // abandonments retire older chunks.
  frame[kFlagsOff] = flags;
  std::memcpy(frame.data() + kDataHeaderBytes, payload, len);
  return frame;
}

uint64_t ReliableLink::StreamBase() const {
  if (!in_flight_.empty()) return in_flight_.begin()->first;
  if (!backlog_.empty()) return backlog_.front().first;
  return next_seq_;
}

void ReliableLink::Emit(std::vector<uint8_t>& frame, const EmitFn& emit) {
  StoreU64(frame.data() + kBaseOff, StreamBase());
  emit(frame);
}

void ReliableLink::SendMessage(const std::vector<uint8_t>& message,
                               TimePoint now, const EmitFn& emit) {
  ++counters_.messages_sent;
  size_t off = 0;
  bool first = true;
  do {
    size_t take = std::min(opts_.max_payload, message.size() - off);
    bool more = off + take < message.size();
    uint8_t flags = static_cast<uint8_t>((more ? kMoreFragments : 0) |
                                         (first ? kFirstFragment : 0));
    uint64_t seq = next_seq_++;
    backlog_.emplace_back(seq,
                          FrameChunk(seq, flags, message.data() + off, take));
    off += take;
    first = false;
  } while (off < message.size());
  TransmitFromBacklog(now, emit);
}

void ReliableLink::TransmitFromBacklog(TimePoint now, const EmitFn& emit) {
  while (!backlog_.empty() && in_flight_.size() < opts_.window) {
    auto [seq, frame] = std::move(backlog_.front());
    backlog_.pop_front();
    Chunk c;
    c.frame = std::move(frame);
    c.sent_at = now;
    c.rto = opts_.rto_initial;
    c.transmissions = 1;
    auto it = in_flight_.emplace(seq, std::move(c)).first;
    Emit(it->second.frame, emit);
    ++counters_.datagrams_sent;
  }
}

void ReliableLink::OnDatagram(const uint8_t* data, size_t len, TimePoint now,
                              const EmitFn& emit, const DeliverFn& deliver) {
  auto h = PeekHeader(data, len);
  if (!h.ok()) return;  // garbage on the wire: drop
  if (h->type == kData) {
    HandleData(data, len, h->session, emit, deliver);
  } else {
    HandleAck(data, len, h->session);
    // Acks free window space; push backlog out immediately.
    TransmitFromBacklog(now, emit);
  }
}

void ReliableLink::AdvanceTo(uint64_t new_cum) {
  if (new_cum <= cum_received_) return;
  cum_received_ = new_cum;
  // Jumping a gap invalidates whatever partial message straddled it, and
  // any buffered chunks the jump passed.
  if (collecting_ || !partial_.empty()) ++counters_.messages_skipped;
  partial_.clear();
  collecting_ = false;
  ooo_.erase(ooo_.begin(), ooo_.upper_bound(cum_received_));
  auto it = ooo_flags_.begin();
  while (it != ooo_flags_.end() && it->first <= cum_received_) {
    it = ooo_flags_.erase(it);
  }
}

void ReliableLink::HandleData(const uint8_t* data, size_t len,
                              uint64_t session, const EmitFn& emit,
                              const DeliverFn& deliver) {
  if (len < kDataHeaderBytes) return;
  if (session != peer_session_) {
    // A reborn peer starts a fresh seq space under a fresh session token;
    // honoring the old session's ordering would deadlock both sides.
    if (peer_session_ != 0) ++counters_.sessions_reset;
    peer_session_ = session;
    synced_ = false;
    cum_received_ = 0;
    collecting_ = false;
    ooo_.clear();
    ooo_flags_.clear();
    partial_.clear();
  }
  ++counters_.datagrams_received;
  uint64_t seq = LoadU64(data + kSeqOff);
  uint64_t base = LoadU64(data + kBaseOff);
  uint8_t flags = data[kFlagsOff];
  const uint8_t* payload = data + kDataHeaderBytes;
  size_t payload_len = len - kDataHeaderBytes;

  if (!synced_) {
    // First DATA of this session: join the stream at the sender's base —
    // everything below it was consumed by a previous incarnation of us (or
    // abandoned) and will never be retransmitted.
    synced_ = true;
    cum_received_ = base > 0 ? base - 1 : 0;
  } else if (base > 0 && base - 1 > cum_received_) {
    // The sender abandoned chunks we were waiting for; waiting longer would
    // wedge the stream on a gap nobody will fill.
    AdvanceTo(base - 1);
  }

  if (seq <= cum_received_ || ooo_.count(seq) != 0) {
    ++counters_.duplicates_dropped;
    SendAck(emit);  // our previous ack was likely lost; repeat it
    return;
  }
  if (seq > cum_received_ + 64) {
    // Beyond the SACK horizon: unbufferable (the ack could not describe
    // it). The sender's window should prevent this; a stray late frame
    // after a cum advance cannot reach here (it would be <= cum).
    ++counters_.out_of_window_dropped;
    SendAck(emit);
    return;
  }
  ooo_.emplace(seq, std::vector<uint8_t>(payload, payload + payload_len));
  ooo_flags_.emplace(seq, flags);
  DeliverInOrder(deliver);
  SendAck(emit);
}

void ReliableLink::DeliverInOrder(const DeliverFn& deliver) {
  auto it = ooo_.find(cum_received_ + 1);
  while (it != ooo_.end()) {
    uint64_t seq = it->first;
    uint8_t flags = ooo_flags_[seq];
    if ((flags & kFirstFragment) != 0) {
      // Defensive: a message start while a partial is open means the open
      // message's tail was lost to an abandoned gap.
      if (collecting_ && !partial_.empty()) ++counters_.messages_skipped;
      partial_.clear();
      collecting_ = true;
    }
    if (collecting_) {
      partial_.insert(partial_.end(), it->second.begin(), it->second.end());
    }
    ooo_.erase(it);
    ooo_flags_.erase(seq);
    cum_received_ = seq;
    if ((flags & kMoreFragments) == 0) {  // final fragment
      if (collecting_) {
        ++counters_.messages_delivered;
        std::vector<uint8_t> msg;
        msg.swap(partial_);
        deliver(std::move(msg));
      } else {
        // A tail whose head predates us (mid-stream join): advance past
        // it, deliver nothing — whole messages or none.
        ++counters_.messages_skipped;
      }
      collecting_ = false;
      partial_.clear();
    }
    it = ooo_.find(cum_received_ + 1);
  }
}

void ReliableLink::SendAck(const EmitFn& emit) {
  std::vector<uint8_t> frame(kHeaderBytes + 16);
  frame[0] = kAck;
  StoreU32(frame.data() + 1, self_);
  // Echo the peer's session so a reborn peer ignores acks meant for its
  // previous life.
  StoreU64(frame.data() + 5, peer_session_);
  StoreU64(frame.data() + kHeaderBytes, cum_received_);
  uint64_t sack = 0;
  for (const auto& [seq, payload] : ooo_) {
    uint64_t delta = seq - cum_received_;  // in (1, 64]
    if (delta >= 1 && delta <= 64) sack |= uint64_t{1} << (delta - 1);
  }
  StoreU64(frame.data() + kHeaderBytes + 8, sack);
  emit(frame);
  ++counters_.acks_sent;
}

void ReliableLink::HandleAck(const uint8_t* data, size_t len,
                             uint64_t session) {
  if (len < kHeaderBytes + 16) return;
  if (session != session_) return;  // ack for a previous incarnation of us
  ++counters_.acks_received;
  uint64_t cum = LoadU64(data + kHeaderBytes);
  uint64_t sack = LoadU64(data + kHeaderBytes + 8);
  // Everything at or below the cumulative point is delivered.
  in_flight_.erase(in_flight_.begin(), in_flight_.upper_bound(cum));
  // Selectively acked chunks sit in the peer's reorder buffer: stop
  // retransmitting them (they still advance only via cum, but they are
  // safe).
  for (uint64_t bit = 0; bit < 64 && sack >> bit; ++bit) {
    if ((sack >> bit) & 1) in_flight_.erase(cum + 1 + bit);
  }
}

void ReliableLink::OnTimer(TimePoint now, const EmitFn& emit) {
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    Chunk& chunk = it->second;
    if (chunk.sent_at + chunk.rto > now) {
      ++it;
      continue;
    }
    if (chunk.transmissions >= opts_.max_transmissions) {
      // The peer is gone or has moved on. Dropping the chunk advances the
      // stream base; a live receiver jumps the gap at the next DATA frame.
      ++counters_.chunks_abandoned;
      it = in_flight_.erase(it);
      continue;
    }
    ++counters_.retransmits;
    ++chunk.transmissions;
    chunk.sent_at = now;
    chunk.rto = std::min(chunk.rto * 2, opts_.rto_max);
    ++it;
  }
  // Retransmit after the abandonment sweep so every frame carries the
  // freshest stream base.
  for (auto& [seq, chunk] : in_flight_) {
    if (chunk.sent_at == now && chunk.transmissions > 1) {
      Emit(chunk.frame, emit);
    }
  }
  TransmitFromBacklog(now, emit);
}

TimePoint ReliableLink::NextDeadline() const {
  TimePoint best = 0;
  for (const auto& [seq, chunk] : in_flight_) {
    TimePoint due = chunk.sent_at + chunk.rto;
    if (best == 0 || due < best) best = due;
  }
  return best;
}

}  // namespace recraft::net
