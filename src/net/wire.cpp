#include "net/wire.h"

#include <memory>
#include <utility>

#include "raft/entry_slab.h"
#include "storage/codec.h"

namespace recraft::net {

namespace {

using storage::DecodeConfigState;
using storage::DecodeKeyRange;
using storage::DecodeLogEntry;
using storage::DecodeMemberChange;
using storage::DecodeMergePlan;
using storage::DecodeRaftSnapshot;
using storage::DecodeSmSnapshot;
using storage::DecodeSplitPlan;
using storage::EncodeConfigState;
using storage::EncodeKeyRange;
using storage::EncodeLogEntry;
using storage::EncodeMemberChange;
using storage::EncodeMergePlan;
using storage::EncodeRaftSnapshot;
using storage::EncodeSmSnapshot;
using storage::EncodeSplitPlan;

// Append-only message tags. Never renumber; retire by skipping.
enum WireTag : uint8_t {
  kTagRequestVote = 1,
  kTagVoteReply = 2,
  kTagAppendEntries = 3,
  kTagAppendReply = 4,
  kTagInstallSnapshot = 5,
  kTagInstallSnapshotReply = 6,
  kTagCommitNotify = 7,
  kTagPullRequest = 8,
  kTagPullReply = 9,
  kTagMergePrepareReq = 10,
  kTagMergePrepareReply = 11,
  kTagMergeCommitReq = 12,
  kTagMergeCommitReply = 13,
  kTagMergeFinalize = 14,
  kTagExchangeDone = 15,
  kTagSnapPullReq = 16,
  kTagSnapPullReply = 17,
  kTagReadIndexProbe = 18,
  kTagReadIndexAck = 19,
  kTagClientRequest = 20,
  kTagClientReply = 21,
  kTagRangeSnapReq = 22,
  kTagRangeSnapReply = 23,
  kTagBootstrapReq = 24,
  kTagBootstrapAck = 25,
  kTagNamingRegister = 26,
  kTagNamingLookupReq = 27,
  kTagNamingLookupReply = 28,
};

// ClientBody variant tags (same append-only discipline).
enum BodyTag : uint8_t {
  kBodyCommand = 1,
  kBodyRead = 2,
  kBodySplit = 3,
  kBodyMerge = 4,
  kBodyMember = 5,
  kBodySetRange = 6,
};

// --- small pieces ----------------------------------------------------------

void PutEntrySpan(Encoder& enc, const raft::EntrySpan& span) {
  enc.PutU32(static_cast<uint32_t>(span.size()));
  for (const raft::LogEntry& e : span) EncodeLogEntry(enc, e);
}

Result<raft::EntrySpan> GetEntrySpan(Decoder& dec) {
  auto count = dec.GetU32();
  if (!count.ok()) return count.status();
  raft::EntrySpan span;
  if (*count == 0) return span;
  auto slab = std::make_shared<raft::EntrySlab>(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto e = DecodeLogEntry(dec);
    if (!e.ok()) return e.status();
    slab->PushBack(std::move(*e));
  }
  span.PushSegment(std::move(slab), 0, *count);
  return span;
}

void PutRaftSnapshotPtr(Encoder& enc, const raft::RaftSnapshotPtr& snap) {
  enc.PutBool(snap != nullptr);
  if (snap != nullptr) EncodeRaftSnapshot(enc, *snap);
}

Result<raft::RaftSnapshotPtr> GetRaftSnapshotPtr(Decoder& dec) {
  auto has = dec.GetBool();
  if (!has.ok()) return has.status();
  if (!*has) return raft::RaftSnapshotPtr();
  auto snap = DecodeRaftSnapshot(dec);
  if (!snap.ok()) return snap.status();
  return raft::RaftSnapshotPtr(
      std::make_shared<raft::RaftSnapshot>(std::move(*snap)));
}

void PutSmSnapshotPtr(Encoder& enc, const sm::SnapshotPtr& snap) {
  enc.PutBool(snap != nullptr);
  if (snap != nullptr) EncodeSmSnapshot(enc, *snap);
}

Result<sm::SnapshotPtr> GetSmSnapshotPtr(Decoder& dec) {
  auto has = dec.GetBool();
  if (!has.ok()) return has.status();
  if (!*has) return sm::SnapshotPtr();
  auto snap = DecodeSmSnapshot(dec);
  if (!snap.ok()) return snap.status();
  return sm::SnapshotPtr(std::make_shared<sm::Snapshot>(std::move(*snap)));
}

void PutStatus(Encoder& enc, const Status& s) {
  enc.PutU8(static_cast<uint8_t>(s.code()));
  enc.PutString(s.message());
}

// Out-parameter because Result<Status> would make the value and error
// constructors the same overload.
Status GetStatus(Decoder& dec, Status* out) {
  auto code = dec.GetU8();
  if (!code.ok()) return code.status();
  auto msg = dec.GetString();
  if (!msg.ok()) return msg.status();
  if (*code > static_cast<uint8_t>(Code::kWrongShard)) {
    return Internal("wire: unknown status code");
  }
  *out = *code == 0 ? OkStatus()
                    : Status(static_cast<Code>(*code), std::move(*msg));
  return OkStatus();
}

void PutCommand(Encoder& enc, const sm::Command& c) {
  enc.PutString(c.key);
  enc.PutBytes(c.body);
  enc.PutU32(c.wire_hint);
}

Result<sm::Command> GetCommand(Decoder& dec) {
  sm::Command c;
  auto key = dec.GetString();
  if (!key.ok()) return key.status();
  auto body = dec.GetBytes();
  if (!body.ok()) return body.status();
  auto hint = dec.GetU32();
  if (!hint.ok()) return hint.status();
  c.key = std::move(*key);
  c.body = std::move(*body);
  c.wire_hint = *hint;
  return c;
}

void PutClientBody(Encoder& enc, const raft::ClientBody& body) {
  std::visit(
      [&enc](const auto& b) {
        using B = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<B, sm::Command>) {
          enc.PutU8(kBodyCommand);
          PutCommand(enc, b);
        } else if constexpr (std::is_same_v<B, raft::ReadRequest>) {
          enc.PutU8(kBodyRead);
          PutCommand(enc, b.query);
        } else if constexpr (std::is_same_v<B, raft::AdminSplit>) {
          enc.PutU8(kBodySplit);
          enc.PutU32(static_cast<uint32_t>(b.groups.size()));
          for (const auto& g : b.groups) storage::EncodeNodeVec(enc, g);
          enc.PutU32(static_cast<uint32_t>(b.split_keys.size()));
          for (const auto& k : b.split_keys) enc.PutString(k);
        } else if constexpr (std::is_same_v<B, raft::AdminMerge>) {
          enc.PutU8(kBodyMerge);
          EncodeMergePlan(enc, b.draft);
        } else if constexpr (std::is_same_v<B, raft::AdminMember>) {
          enc.PutU8(kBodyMember);
          EncodeMemberChange(enc, b.change);
        } else if constexpr (std::is_same_v<B, raft::AdminSetRange>) {
          enc.PutU8(kBodySetRange);
          EncodeKeyRange(enc, b.range);
          PutSmSnapshotPtr(enc, b.absorb);
        }
      },
      body);
}

Result<raft::ClientBody> GetClientBody(Decoder& dec) {
  auto tag = dec.GetU8();
  if (!tag.ok()) return tag.status();
  switch (*tag) {
    case kBodyCommand: {
      auto c = GetCommand(dec);
      if (!c.ok()) return c.status();
      return raft::ClientBody(std::move(*c));
    }
    case kBodyRead: {
      auto c = GetCommand(dec);
      if (!c.ok()) return c.status();
      raft::ReadRequest r;
      r.query = std::move(*c);
      return raft::ClientBody(std::move(r));
    }
    case kBodySplit: {
      raft::AdminSplit s;
      auto ngroups = dec.GetU32();
      if (!ngroups.ok()) return ngroups.status();
      for (uint32_t i = 0; i < *ngroups; ++i) {
        auto g = storage::DecodeNodeVec(dec);
        if (!g.ok()) return g.status();
        s.groups.push_back(std::move(*g));
      }
      auto nkeys = dec.GetU32();
      if (!nkeys.ok()) return nkeys.status();
      for (uint32_t i = 0; i < *nkeys; ++i) {
        auto k = dec.GetString();
        if (!k.ok()) return k.status();
        s.split_keys.push_back(std::move(*k));
      }
      return raft::ClientBody(std::move(s));
    }
    case kBodyMerge: {
      auto p = DecodeMergePlan(dec);
      if (!p.ok()) return p.status();
      raft::AdminMerge m;
      m.draft = std::move(*p);
      return raft::ClientBody(std::move(m));
    }
    case kBodyMember: {
      auto c = DecodeMemberChange(dec);
      if (!c.ok()) return c.status();
      raft::AdminMember m;
      m.change = std::move(*c);
      return raft::ClientBody(std::move(m));
    }
    case kBodySetRange: {
      raft::AdminSetRange sr;
      auto r = DecodeKeyRange(dec);
      if (!r.ok()) return r.status();
      auto snap = GetSmSnapshotPtr(dec);
      if (!snap.ok()) return snap.status();
      sr.range = std::move(*r);
      sr.absorb = std::move(*snap);
      return raft::ClientBody(std::move(sr));
    }
    default:
      return Internal("wire: unknown client body tag");
  }
}

void PutNamingRegister(Encoder& enc, const raft::NamingRegister& r) {
  enc.PutU64(r.uid);
  enc.PutU32(r.epoch);
  storage::EncodeNodeVec(enc, r.members);
  EncodeKeyRange(enc, r.range);
}

Result<raft::NamingRegister> GetNamingRegister(Decoder& dec) {
  raft::NamingRegister r;
  auto uid = dec.GetU64();
  if (!uid.ok()) return uid.status();
  auto epoch = dec.GetU32();
  if (!epoch.ok()) return epoch.status();
  auto members = storage::DecodeNodeVec(dec);
  if (!members.ok()) return members.status();
  auto range = DecodeKeyRange(dec);
  if (!range.ok()) return range.status();
  r.uid = *uid;
  r.epoch = *epoch;
  r.members = std::move(*members);
  r.range = std::move(*range);
  return r;
}

}  // namespace

// --- encode ----------------------------------------------------------------

void EncodeMessage(Encoder& enc, const raft::Message& m) {
  std::visit(
      [&enc](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, raft::RequestVote>) {
          enc.PutU8(kTagRequestVote);
          enc.PutU64(v.et);
          enc.PutU32(v.candidate);
          enc.PutU64(v.last_idx);
          enc.PutU64(v.last_term);
        } else if constexpr (std::is_same_v<T, raft::VoteReply>) {
          enc.PutU8(kTagVoteReply);
          enc.PutU64(v.et);
          enc.PutU32(v.from);
          enc.PutBool(v.granted);
          enc.PutBool(v.pull);
        } else if constexpr (std::is_same_v<T, raft::AppendEntries>) {
          enc.PutU8(kTagAppendEntries);
          enc.PutU64(v.et);
          enc.PutU32(v.leader);
          enc.PutU64(v.prev_idx);
          enc.PutU64(v.prev_term);
          PutEntrySpan(enc, v.entries);
          enc.PutU64(v.commit);
        } else if constexpr (std::is_same_v<T, raft::AppendReply>) {
          enc.PutU8(kTagAppendReply);
          enc.PutU64(v.et);
          enc.PutU32(v.from);
          enc.PutBool(v.ok);
          enc.PutU64(v.match);
          enc.PutU64(v.conflict_hint);
        } else if constexpr (std::is_same_v<T, raft::InstallSnapshot>) {
          enc.PutU8(kTagInstallSnapshot);
          enc.PutU64(v.et);
          enc.PutU32(v.leader);
          PutRaftSnapshotPtr(enc, v.snap);
        } else if constexpr (std::is_same_v<T, raft::InstallSnapshotReply>) {
          enc.PutU8(kTagInstallSnapshotReply);
          enc.PutU64(v.et);
          enc.PutU32(v.from);
          enc.PutU64(v.applied);
        } else if constexpr (std::is_same_v<T, raft::CommitNotify>) {
          enc.PutU8(kTagCommitNotify);
          enc.PutU64(v.et);
          enc.PutU32(v.from);
          enc.PutU64(v.cnew_index);
          enc.PutU64(v.cnew_term);
        } else if constexpr (std::is_same_v<T, raft::PullRequest>) {
          enc.PutU8(kTagPullRequest);
          enc.PutU32(v.from);
          enc.PutU32(v.epoch);
          enc.PutU64(v.next_idx);
        } else if constexpr (std::is_same_v<T, raft::PullReply>) {
          enc.PutU8(kTagPullReply);
          enc.PutU32(v.from);
          enc.PutU32(v.epoch);
          PutEntrySpan(enc, v.entries);
          enc.PutU64(v.commit);
          enc.PutBool(v.capped);
          PutRaftSnapshotPtr(enc, v.snap);
        } else if constexpr (std::is_same_v<T, raft::MergePrepareReq>) {
          enc.PutU8(kTagMergePrepareReq);
          enc.PutU32(v.from);
          EncodeMergePlan(enc, v.plan);
        } else if constexpr (std::is_same_v<T, raft::MergePrepareReply>) {
          enc.PutU8(kTagMergePrepareReply);
          enc.PutU32(v.from);
          enc.PutU64(v.tx);
          enc.PutU32(static_cast<uint32_t>(v.source_index));
          enc.PutBool(v.ok);
          enc.PutBool(v.retry);
          enc.PutU32(v.leader_hint);
          enc.PutU32(v.epoch);
        } else if constexpr (std::is_same_v<T, raft::MergeCommitReq>) {
          enc.PutU8(kTagMergeCommitReq);
          enc.PutU32(v.from);
          enc.PutU64(v.tx);
          enc.PutBool(v.commit);
          EncodeMergePlan(enc, v.plan);
        } else if constexpr (std::is_same_v<T, raft::MergeCommitReply>) {
          enc.PutU8(kTagMergeCommitReply);
          enc.PutU32(v.from);
          enc.PutU64(v.tx);
          enc.PutU32(static_cast<uint32_t>(v.source_index));
          enc.PutBool(v.ok);
          enc.PutBool(v.retry);
          enc.PutU32(v.leader_hint);
        } else if constexpr (std::is_same_v<T, raft::MergeFinalize>) {
          enc.PutU8(kTagMergeFinalize);
          enc.PutU32(v.from);
          enc.PutU64(v.tx);
        } else if constexpr (std::is_same_v<T, raft::ExchangeDone>) {
          enc.PutU8(kTagExchangeDone);
          enc.PutU32(v.from);
          enc.PutU64(v.tx);
        } else if constexpr (std::is_same_v<T, raft::SnapPullReq>) {
          enc.PutU8(kTagSnapPullReq);
          enc.PutU32(v.from);
          enc.PutU64(v.tx);
          enc.PutU32(static_cast<uint32_t>(v.source_index));
        } else if constexpr (std::is_same_v<T, raft::SnapPullReply>) {
          enc.PutU8(kTagSnapPullReply);
          enc.PutU32(v.from);
          enc.PutU64(v.tx);
          enc.PutU32(static_cast<uint32_t>(v.source_index));
          enc.PutBool(v.ready);
          PutSmSnapshotPtr(enc, v.snap);
        } else if constexpr (std::is_same_v<T, raft::ReadIndexProbe>) {
          enc.PutU8(kTagReadIndexProbe);
          enc.PutU64(v.et);
          enc.PutU32(v.from);
          enc.PutU64(v.seq);
        } else if constexpr (std::is_same_v<T, raft::ReadIndexAck>) {
          enc.PutU8(kTagReadIndexAck);
          enc.PutU64(v.et);
          enc.PutU32(v.from);
          enc.PutU64(v.seq);
          enc.PutBool(v.ok);
        } else if constexpr (std::is_same_v<T, raft::ClientRequest>) {
          enc.PutU8(kTagClientRequest);
          enc.PutU64(v.req_id);
          enc.PutU32(v.from);
          PutClientBody(enc, v.body);
        } else if constexpr (std::is_same_v<T, raft::ClientReply>) {
          enc.PutU8(kTagClientReply);
          enc.PutU64(v.req_id);
          enc.PutU32(v.from);
          PutStatus(enc, v.status);
          enc.PutString(v.value);
          enc.PutU32(v.leader_hint);
          EncodeKeyRange(enc, v.serving_range);
          enc.PutU32(v.epoch);
        } else if constexpr (std::is_same_v<T, raft::RangeSnapReq>) {
          enc.PutU8(kTagRangeSnapReq);
          enc.PutU32(v.from);
          EncodeKeyRange(enc, v.range);
        } else if constexpr (std::is_same_v<T, raft::RangeSnapReply>) {
          enc.PutU8(kTagRangeSnapReply);
          enc.PutU32(v.from);
          enc.PutBool(v.ok);
          enc.PutBool(v.retry);
          enc.PutU32(v.leader_hint);
          EncodeKeyRange(enc, v.range);
          PutSmSnapshotPtr(enc, v.snap);
        } else if constexpr (std::is_same_v<T, raft::BootstrapReq>) {
          enc.PutU8(kTagBootstrapReq);
          enc.PutU32(v.from);
          enc.PutU64(v.op_id);
          EncodeConfigState(enc, v.genesis);
          PutSmSnapshotPtr(enc, v.data);
        } else if constexpr (std::is_same_v<T, raft::BootstrapAck>) {
          enc.PutU8(kTagBootstrapAck);
          enc.PutU32(v.from);
          enc.PutU64(v.op_id);
        } else if constexpr (std::is_same_v<T, raft::NamingRegister>) {
          enc.PutU8(kTagNamingRegister);
          PutNamingRegister(enc, v);
        } else if constexpr (std::is_same_v<T, raft::NamingLookupReq>) {
          enc.PutU8(kTagNamingLookupReq);
          enc.PutU32(v.from);
        } else if constexpr (std::is_same_v<T, raft::NamingLookupReply>) {
          enc.PutU8(kTagNamingLookupReply);
          enc.PutU32(static_cast<uint32_t>(v.clusters.size()));
          for (const auto& c : v.clusters) PutNamingRegister(enc, c);
        }
      },
      m);
}

// --- decode ----------------------------------------------------------------

// The per-message bodies below mirror the encode order field by field; the
// RET macro keeps the error plumbing from drowning the structure.
#define GETF(var, expr)            \
  auto var = (expr);               \
  if (!var.ok()) return var.status()

Result<raft::MessagePtr> DecodeMessage(Decoder& dec) {
  GETF(tag, dec.GetU8());
  switch (*tag) {
    case kTagRequestVote: {
      raft::RequestVote v;
      GETF(et, dec.GetU64());
      GETF(cand, dec.GetU32());
      GETF(li, dec.GetU64());
      GETF(lt, dec.GetU64());
      v.et = *et;
      v.candidate = *cand;
      v.last_idx = *li;
      v.last_term = *lt;
      return raft::MakeMessage(std::move(v));
    }
    case kTagVoteReply: {
      raft::VoteReply v;
      GETF(et, dec.GetU64());
      GETF(from, dec.GetU32());
      GETF(granted, dec.GetBool());
      GETF(pull, dec.GetBool());
      v.et = *et;
      v.from = *from;
      v.granted = *granted;
      v.pull = *pull;
      return raft::MakeMessage(std::move(v));
    }
    case kTagAppendEntries: {
      raft::AppendEntries v;
      GETF(et, dec.GetU64());
      GETF(leader, dec.GetU32());
      GETF(pi, dec.GetU64());
      GETF(pt, dec.GetU64());
      GETF(entries, GetEntrySpan(dec));
      GETF(commit, dec.GetU64());
      v.et = *et;
      v.leader = *leader;
      v.prev_idx = *pi;
      v.prev_term = *pt;
      v.entries = std::move(*entries);
      v.commit = *commit;
      return raft::MakeMessage(std::move(v));
    }
    case kTagAppendReply: {
      raft::AppendReply v;
      GETF(et, dec.GetU64());
      GETF(from, dec.GetU32());
      GETF(ok, dec.GetBool());
      GETF(match, dec.GetU64());
      GETF(hint, dec.GetU64());
      v.et = *et;
      v.from = *from;
      v.ok = *ok;
      v.match = *match;
      v.conflict_hint = *hint;
      return raft::MakeMessage(std::move(v));
    }
    case kTagInstallSnapshot: {
      raft::InstallSnapshot v;
      GETF(et, dec.GetU64());
      GETF(leader, dec.GetU32());
      GETF(snap, GetRaftSnapshotPtr(dec));
      v.et = *et;
      v.leader = *leader;
      v.snap = std::move(*snap);
      return raft::MakeMessage(std::move(v));
    }
    case kTagInstallSnapshotReply: {
      raft::InstallSnapshotReply v;
      GETF(et, dec.GetU64());
      GETF(from, dec.GetU32());
      GETF(applied, dec.GetU64());
      v.et = *et;
      v.from = *from;
      v.applied = *applied;
      return raft::MakeMessage(std::move(v));
    }
    case kTagCommitNotify: {
      raft::CommitNotify v;
      GETF(et, dec.GetU64());
      GETF(from, dec.GetU32());
      GETF(ci, dec.GetU64());
      GETF(ct, dec.GetU64());
      v.et = *et;
      v.from = *from;
      v.cnew_index = *ci;
      v.cnew_term = *ct;
      return raft::MakeMessage(std::move(v));
    }
    case kTagPullRequest: {
      raft::PullRequest v;
      GETF(from, dec.GetU32());
      GETF(epoch, dec.GetU32());
      GETF(ni, dec.GetU64());
      v.from = *from;
      v.epoch = *epoch;
      v.next_idx = *ni;
      return raft::MakeMessage(std::move(v));
    }
    case kTagPullReply: {
      raft::PullReply v;
      GETF(from, dec.GetU32());
      GETF(epoch, dec.GetU32());
      GETF(entries, GetEntrySpan(dec));
      GETF(commit, dec.GetU64());
      GETF(capped, dec.GetBool());
      GETF(snap, GetRaftSnapshotPtr(dec));
      v.from = *from;
      v.epoch = *epoch;
      v.entries = std::move(*entries);
      v.commit = *commit;
      v.capped = *capped;
      v.snap = std::move(*snap);
      return raft::MakeMessage(std::move(v));
    }
    case kTagMergePrepareReq: {
      raft::MergePrepareReq v;
      GETF(from, dec.GetU32());
      GETF(plan, DecodeMergePlan(dec));
      v.from = *from;
      v.plan = std::move(*plan);
      return raft::MakeMessage(std::move(v));
    }
    case kTagMergePrepareReply: {
      raft::MergePrepareReply v;
      GETF(from, dec.GetU32());
      GETF(tx, dec.GetU64());
      GETF(si, dec.GetU32());
      GETF(ok, dec.GetBool());
      GETF(retry, dec.GetBool());
      GETF(hint, dec.GetU32());
      GETF(epoch, dec.GetU32());
      v.from = *from;
      v.tx = *tx;
      v.source_index = static_cast<int>(*si);
      v.ok = *ok;
      v.retry = *retry;
      v.leader_hint = *hint;
      v.epoch = *epoch;
      return raft::MakeMessage(std::move(v));
    }
    case kTagMergeCommitReq: {
      raft::MergeCommitReq v;
      GETF(from, dec.GetU32());
      GETF(tx, dec.GetU64());
      GETF(commit, dec.GetBool());
      GETF(plan, DecodeMergePlan(dec));
      v.from = *from;
      v.tx = *tx;
      v.commit = *commit;
      v.plan = std::move(*plan);
      return raft::MakeMessage(std::move(v));
    }
    case kTagMergeCommitReply: {
      raft::MergeCommitReply v;
      GETF(from, dec.GetU32());
      GETF(tx, dec.GetU64());
      GETF(si, dec.GetU32());
      GETF(ok, dec.GetBool());
      GETF(retry, dec.GetBool());
      GETF(hint, dec.GetU32());
      v.from = *from;
      v.tx = *tx;
      v.source_index = static_cast<int>(*si);
      v.ok = *ok;
      v.retry = *retry;
      v.leader_hint = *hint;
      return raft::MakeMessage(std::move(v));
    }
    case kTagMergeFinalize: {
      raft::MergeFinalize v;
      GETF(from, dec.GetU32());
      GETF(tx, dec.GetU64());
      v.from = *from;
      v.tx = *tx;
      return raft::MakeMessage(std::move(v));
    }
    case kTagExchangeDone: {
      raft::ExchangeDone v;
      GETF(from, dec.GetU32());
      GETF(tx, dec.GetU64());
      v.from = *from;
      v.tx = *tx;
      return raft::MakeMessage(std::move(v));
    }
    case kTagSnapPullReq: {
      raft::SnapPullReq v;
      GETF(from, dec.GetU32());
      GETF(tx, dec.GetU64());
      GETF(si, dec.GetU32());
      v.from = *from;
      v.tx = *tx;
      v.source_index = static_cast<int>(*si);
      return raft::MakeMessage(std::move(v));
    }
    case kTagSnapPullReply: {
      raft::SnapPullReply v;
      GETF(from, dec.GetU32());
      GETF(tx, dec.GetU64());
      GETF(si, dec.GetU32());
      GETF(ready, dec.GetBool());
      GETF(snap, GetSmSnapshotPtr(dec));
      v.from = *from;
      v.tx = *tx;
      v.source_index = static_cast<int>(*si);
      v.ready = *ready;
      v.snap = std::move(*snap);
      return raft::MakeMessage(std::move(v));
    }
    case kTagReadIndexProbe: {
      raft::ReadIndexProbe v;
      GETF(et, dec.GetU64());
      GETF(from, dec.GetU32());
      GETF(seq, dec.GetU64());
      v.et = *et;
      v.from = *from;
      v.seq = *seq;
      return raft::MakeMessage(std::move(v));
    }
    case kTagReadIndexAck: {
      raft::ReadIndexAck v;
      GETF(et, dec.GetU64());
      GETF(from, dec.GetU32());
      GETF(seq, dec.GetU64());
      GETF(ok, dec.GetBool());
      v.et = *et;
      v.from = *from;
      v.seq = *seq;
      v.ok = *ok;
      return raft::MakeMessage(std::move(v));
    }
    case kTagClientRequest: {
      raft::ClientRequest v;
      GETF(rid, dec.GetU64());
      GETF(from, dec.GetU32());
      GETF(body, GetClientBody(dec));
      v.req_id = *rid;
      v.from = *from;
      v.body = std::move(*body);
      return raft::MakeMessage(std::move(v));
    }
    case kTagClientReply: {
      raft::ClientReply v;
      GETF(rid, dec.GetU64());
      GETF(from, dec.GetU32());
      Status status_rc = GetStatus(dec, &v.status);
      if (!status_rc.ok()) return status_rc;
      GETF(value, dec.GetString());
      GETF(hint, dec.GetU32());
      GETF(range, DecodeKeyRange(dec));
      GETF(epoch, dec.GetU32());
      v.req_id = *rid;
      v.from = *from;
      v.value = std::move(*value);
      v.leader_hint = *hint;
      v.serving_range = std::move(*range);
      v.epoch = *epoch;
      return raft::MakeMessage(std::move(v));
    }
    case kTagRangeSnapReq: {
      raft::RangeSnapReq v;
      GETF(from, dec.GetU32());
      GETF(range, DecodeKeyRange(dec));
      v.from = *from;
      v.range = std::move(*range);
      return raft::MakeMessage(std::move(v));
    }
    case kTagRangeSnapReply: {
      raft::RangeSnapReply v;
      GETF(from, dec.GetU32());
      GETF(ok, dec.GetBool());
      GETF(retry, dec.GetBool());
      GETF(hint, dec.GetU32());
      GETF(range, DecodeKeyRange(dec));
      GETF(snap, GetSmSnapshotPtr(dec));
      v.from = *from;
      v.ok = *ok;
      v.retry = *retry;
      v.leader_hint = *hint;
      v.range = std::move(*range);
      v.snap = std::move(*snap);
      return raft::MakeMessage(std::move(v));
    }
    case kTagBootstrapReq: {
      raft::BootstrapReq v;
      GETF(from, dec.GetU32());
      GETF(oid, dec.GetU64());
      GETF(genesis, DecodeConfigState(dec));
      GETF(data, GetSmSnapshotPtr(dec));
      v.from = *from;
      v.op_id = *oid;
      v.genesis = std::move(*genesis);
      v.data = std::move(*data);
      return raft::MakeMessage(std::move(v));
    }
    case kTagBootstrapAck: {
      raft::BootstrapAck v;
      GETF(from, dec.GetU32());
      GETF(oid, dec.GetU64());
      v.from = *from;
      v.op_id = *oid;
      return raft::MakeMessage(std::move(v));
    }
    case kTagNamingRegister: {
      GETF(reg, GetNamingRegister(dec));
      return raft::MakeMessage(std::move(*reg));
    }
    case kTagNamingLookupReq: {
      raft::NamingLookupReq v;
      GETF(from, dec.GetU32());
      v.from = *from;
      return raft::MakeMessage(std::move(v));
    }
    case kTagNamingLookupReply: {
      raft::NamingLookupReply v;
      GETF(n, dec.GetU32());
      for (uint32_t i = 0; i < *n; ++i) {
        GETF(reg, GetNamingRegister(dec));
        v.clusters.push_back(std::move(*reg));
      }
      return raft::MakeMessage(std::move(v));
    }
    default:
      return Internal("wire: unknown message tag");
  }
}

#undef GETF

}  // namespace recraft::net
