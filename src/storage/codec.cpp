#include "storage/codec.h"

namespace recraft::storage {

namespace {

// Propagate a Decoder failure out of the enclosing Decode function.
#define RECRAFT_DEC(var, expr)              \
  auto var##_res = (expr);                  \
  if (!var##_res.ok()) return var##_res.status(); \
  auto& var = *var##_res

struct Crc32Table {
  uint32_t t[256];
  constexpr Crc32Table() : t{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};
constexpr Crc32Table kCrcTable{};

// Payload variant tags — part of the durable format; append-only.
enum PayloadTag : uint8_t {
  kTagNoOp = 0,
  kTagCommand = 1,
  kTagConfInit = 2,
  kTagSplitJoint = 3,
  kTagSplitNew = 4,
  kTagMember = 5,
  kTagMergeTx = 6,
  kTagMergeOutcome = 7,
  kTagSetRange = 8,
  kTagAbortSettled = 9,
};

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t n) {
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = kCrcTable.t[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void EncodeKeyRange(Encoder& enc, const KeyRange& r) {
  enc.PutString(r.lo());
  enc.PutString(r.hi());
  enc.PutBool(r.hi_is_inf());
}

Result<KeyRange> DecodeKeyRange(Decoder& dec) {
  RECRAFT_DEC(lo, dec.GetString());
  RECRAFT_DEC(hi, dec.GetString());
  RECRAFT_DEC(inf, dec.GetBool());
  if (inf) return KeyRange(lo, "");
  if (hi.empty()) return Internal("codec: finite range with empty hi");
  return KeyRange(lo, hi);
}

void EncodeNodeVec(Encoder& enc, const std::vector<NodeId>& v) {
  enc.PutU32(static_cast<uint32_t>(v.size()));
  for (NodeId n : v) enc.PutU32(n);
}

Result<std::vector<NodeId>> DecodeNodeVec(Decoder& dec) {
  RECRAFT_DEC(n, dec.GetU32());
  std::vector<NodeId> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    RECRAFT_DEC(id, dec.GetU32());
    out.push_back(id);
  }
  return out;
}

void EncodeSubCluster(Encoder& enc, const raft::SubCluster& s) {
  EncodeNodeVec(enc, s.members);
  EncodeKeyRange(enc, s.range);
  enc.PutU64(s.uid);
}

Result<raft::SubCluster> DecodeSubCluster(Decoder& dec) {
  raft::SubCluster out;
  RECRAFT_DEC(members, DecodeNodeVec(dec));
  out.members = std::move(members);
  RECRAFT_DEC(range, DecodeKeyRange(dec));
  out.range = std::move(range);
  RECRAFT_DEC(uid, dec.GetU64());
  out.uid = uid;
  return out;
}

void EncodeSplitPlan(Encoder& enc, const raft::SplitPlan& p) {
  enc.PutU32(static_cast<uint32_t>(p.subs.size()));
  for (const auto& s : p.subs) EncodeSubCluster(enc, s);
}

Result<raft::SplitPlan> DecodeSplitPlan(Decoder& dec) {
  raft::SplitPlan out;
  RECRAFT_DEC(n, dec.GetU32());
  for (uint32_t i = 0; i < n; ++i) {
    RECRAFT_DEC(s, DecodeSubCluster(dec));
    out.subs.push_back(std::move(s));
  }
  return out;
}

void EncodeMergePlan(Encoder& enc, const raft::MergePlan& p) {
  enc.PutU64(p.tx);
  enc.PutU32(static_cast<uint32_t>(p.sources.size()));
  for (const auto& s : p.sources) EncodeSubCluster(enc, s);
  enc.PutU32(static_cast<uint32_t>(p.coordinator));
  enc.PutU32(p.new_epoch);
  enc.PutU64(p.new_uid);
  EncodeKeyRange(enc, p.new_range);
  EncodeNodeVec(enc, p.resume_members);
}

Result<raft::MergePlan> DecodeMergePlan(Decoder& dec) {
  raft::MergePlan out;
  RECRAFT_DEC(tx, dec.GetU64());
  out.tx = tx;
  RECRAFT_DEC(n, dec.GetU32());
  for (uint32_t i = 0; i < n; ++i) {
    RECRAFT_DEC(s, DecodeSubCluster(dec));
    out.sources.push_back(std::move(s));
  }
  RECRAFT_DEC(coord, dec.GetU32());
  out.coordinator = static_cast<int>(coord);
  RECRAFT_DEC(epoch, dec.GetU32());
  out.new_epoch = epoch;
  RECRAFT_DEC(uid, dec.GetU64());
  out.new_uid = uid;
  RECRAFT_DEC(range, DecodeKeyRange(dec));
  out.new_range = std::move(range);
  RECRAFT_DEC(resume, DecodeNodeVec(dec));
  out.resume_members = std::move(resume);
  return out;
}

void EncodeMemberChange(Encoder& enc, const raft::MemberChange& mc) {
  enc.PutU8(static_cast<uint8_t>(mc.kind));
  EncodeNodeVec(enc, mc.nodes);
}

Result<raft::MemberChange> DecodeMemberChange(Decoder& dec) {
  raft::MemberChange out;
  RECRAFT_DEC(kind, dec.GetU8());
  if (kind > static_cast<uint8_t>(raft::MemberChangeKind::kJointLeave)) {
    return Internal("codec: bad MemberChangeKind");
  }
  out.kind = static_cast<raft::MemberChangeKind>(kind);
  RECRAFT_DEC(nodes, DecodeNodeVec(dec));
  out.nodes = std::move(nodes);
  return out;
}

void EncodeConfigState(Encoder& enc, const raft::ConfigState& c) {
  enc.PutU8(static_cast<uint8_t>(c.mode));
  EncodeNodeVec(enc, c.members);
  enc.PutU64(c.fixed_quorum);
  EncodeKeyRange(enc, c.range);
  enc.PutU64(c.uid);
  EncodeSplitPlan(enc, c.split);
  enc.PutU64(c.joint_index);
  enc.PutU64(c.cnew_index);
  enc.PutBool(c.vanilla_joint);
  EncodeNodeVec(enc, c.jc_old);
  enc.PutBool(c.merge_tx.has_value());
  if (c.merge_tx) EncodeMergePlan(enc, *c.merge_tx);
  enc.PutU64(c.merge_tx_index);
  enc.PutBool(c.merge_decision_ok);
  enc.PutU64(c.merge_outcome_index);
  enc.PutBool(c.merge_outcome_commit);
  enc.PutBool(c.merge_outcome_plan.has_value());
  if (c.merge_outcome_plan) EncodeMergePlan(enc, *c.merge_outcome_plan);
}

Result<raft::ConfigState> DecodeConfigState(Decoder& dec) {
  raft::ConfigState out;
  RECRAFT_DEC(mode, dec.GetU8());
  if (mode > static_cast<uint8_t>(raft::ConfigMode::kSplitLeaving)) {
    return Internal("codec: bad ConfigMode");
  }
  out.mode = static_cast<raft::ConfigMode>(mode);
  RECRAFT_DEC(members, DecodeNodeVec(dec));
  out.members = std::move(members);
  RECRAFT_DEC(fixed, dec.GetU64());
  out.fixed_quorum = static_cast<size_t>(fixed);
  RECRAFT_DEC(range, DecodeKeyRange(dec));
  out.range = std::move(range);
  RECRAFT_DEC(uid, dec.GetU64());
  out.uid = uid;
  RECRAFT_DEC(split, DecodeSplitPlan(dec));
  out.split = std::move(split);
  RECRAFT_DEC(joint_index, dec.GetU64());
  out.joint_index = joint_index;
  RECRAFT_DEC(cnew_index, dec.GetU64());
  out.cnew_index = cnew_index;
  RECRAFT_DEC(vjoint, dec.GetBool());
  out.vanilla_joint = vjoint;
  RECRAFT_DEC(jc_old, DecodeNodeVec(dec));
  out.jc_old = std::move(jc_old);
  RECRAFT_DEC(has_tx, dec.GetBool());
  if (has_tx) {
    RECRAFT_DEC(tx, DecodeMergePlan(dec));
    out.merge_tx = std::move(tx);
  }
  RECRAFT_DEC(tx_index, dec.GetU64());
  out.merge_tx_index = tx_index;
  RECRAFT_DEC(decision, dec.GetBool());
  out.merge_decision_ok = decision;
  RECRAFT_DEC(oc_index, dec.GetU64());
  out.merge_outcome_index = oc_index;
  RECRAFT_DEC(oc_commit, dec.GetBool());
  out.merge_outcome_commit = oc_commit;
  RECRAFT_DEC(has_oc, dec.GetBool());
  if (has_oc) {
    RECRAFT_DEC(oc, DecodeMergePlan(dec));
    out.merge_outcome_plan = std::move(oc);
  }
  return out;
}

void EncodeReconfigRecord(Encoder& enc, const raft::ReconfigRecord& r) {
  enc.PutU8(static_cast<uint8_t>(r.kind));
  enc.PutU32(r.epoch);
  enc.PutU64(r.uid);
  EncodeNodeVec(enc, r.members);
  EncodeKeyRange(enc, r.range);
  enc.PutU64(r.boundary_index);
}

Result<raft::ReconfigRecord> DecodeReconfigRecord(Decoder& dec) {
  raft::ReconfigRecord out;
  RECRAFT_DEC(kind, dec.GetU8());
  if (kind > static_cast<uint8_t>(raft::ReconfigRecord::Kind::kMember)) {
    return Internal("codec: bad ReconfigRecord kind");
  }
  out.kind = static_cast<raft::ReconfigRecord::Kind>(kind);
  RECRAFT_DEC(epoch, dec.GetU32());
  out.epoch = epoch;
  RECRAFT_DEC(uid, dec.GetU64());
  out.uid = uid;
  RECRAFT_DEC(members, DecodeNodeVec(dec));
  out.members = std::move(members);
  RECRAFT_DEC(range, DecodeKeyRange(dec));
  out.range = std::move(range);
  RECRAFT_DEC(boundary, dec.GetU64());
  out.boundary_index = boundary;
  return out;
}

void EncodeSmSnapshot(Encoder& enc, const sm::Snapshot& s) {
  // The machine's own serialized image, embedded as one length-prefixed
  // blob, plus the range/metrics wrapper the consensus layer needs.
  EncodeKeyRange(enc, s.range);
  enc.PutBytes(s.data);
  enc.PutU64(s.items);
  enc.PutU64(s.wire_bytes);
}

Result<sm::Snapshot> DecodeSmSnapshot(Decoder& dec) {
  sm::Snapshot out;
  RECRAFT_DEC(range, DecodeKeyRange(dec));
  out.range = std::move(range);
  RECRAFT_DEC(data, dec.GetBytes());
  out.data = std::move(data);
  RECRAFT_DEC(items, dec.GetU64());
  out.items = items;
  RECRAFT_DEC(wire, dec.GetU64());
  out.wire_bytes = static_cast<size_t>(wire);
  return out;
}

void EncodeLogEntry(Encoder& enc, const raft::LogEntry& e) {
  enc.PutU64(e.index);
  enc.PutU64(e.term);
  std::visit(
      [&enc](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, raft::NoOp>) {
          enc.PutU8(kTagNoOp);
        } else if constexpr (std::is_same_v<T, sm::Command>) {
          enc.PutU8(kTagCommand);
          enc.PutString(body.key);
          enc.PutBytes(body.body);
          enc.PutU32(body.wire_hint);
        } else if constexpr (std::is_same_v<T, raft::ConfInit>) {
          enc.PutU8(kTagConfInit);
          EncodeNodeVec(enc, body.members);
          EncodeKeyRange(enc, body.range);
          enc.PutU64(body.uid);
        } else if constexpr (std::is_same_v<T, raft::ConfSplitJoint>) {
          enc.PutU8(kTagSplitJoint);
          EncodeSplitPlan(enc, body.plan);
        } else if constexpr (std::is_same_v<T, raft::ConfSplitNew>) {
          enc.PutU8(kTagSplitNew);
          EncodeSplitPlan(enc, body.plan);
        } else if constexpr (std::is_same_v<T, raft::ConfMember>) {
          enc.PutU8(kTagMember);
          EncodeMemberChange(enc, body.change);
        } else if constexpr (std::is_same_v<T, raft::ConfMergeTx>) {
          enc.PutU8(kTagMergeTx);
          EncodeMergePlan(enc, body.plan);
          enc.PutBool(body.decision_ok);
        } else if constexpr (std::is_same_v<T, raft::ConfMergeOutcome>) {
          enc.PutU8(kTagMergeOutcome);
          EncodeMergePlan(enc, body.plan);
          enc.PutBool(body.commit);
        } else if constexpr (std::is_same_v<T, raft::ConfSetRange>) {
          enc.PutU8(kTagSetRange);
          EncodeKeyRange(enc, body.range);
          enc.PutBool(body.absorb != nullptr);
          if (body.absorb) EncodeSmSnapshot(enc, *body.absorb);
        } else if constexpr (std::is_same_v<T, raft::ConfAbortSettled>) {
          enc.PutU8(kTagAbortSettled);
          enc.PutU64(body.tx);
        }
      },
      e.payload);
}

Result<raft::LogEntry> DecodeLogEntry(Decoder& dec) {
  raft::LogEntry out;
  RECRAFT_DEC(index, dec.GetU64());
  out.index = index;
  RECRAFT_DEC(term, dec.GetU64());
  out.term = term;
  RECRAFT_DEC(tag, dec.GetU8());
  switch (tag) {
    case kTagNoOp:
      out.payload = raft::NoOp{};
      break;
    case kTagCommand: {
      sm::Command cmd;
      RECRAFT_DEC(key, dec.GetString());
      cmd.key = std::move(key);
      RECRAFT_DEC(body, dec.GetBytes());
      cmd.body = std::move(body);
      RECRAFT_DEC(hint, dec.GetU32());
      cmd.wire_hint = hint;
      out.payload = std::move(cmd);
      break;
    }
    case kTagConfInit: {
      raft::ConfInit init;
      RECRAFT_DEC(members, DecodeNodeVec(dec));
      init.members = std::move(members);
      RECRAFT_DEC(range, DecodeKeyRange(dec));
      init.range = std::move(range);
      RECRAFT_DEC(uid, dec.GetU64());
      init.uid = uid;
      out.payload = std::move(init);
      break;
    }
    case kTagSplitJoint: {
      RECRAFT_DEC(plan, DecodeSplitPlan(dec));
      out.payload = raft::ConfSplitJoint{std::move(plan)};
      break;
    }
    case kTagSplitNew: {
      RECRAFT_DEC(plan, DecodeSplitPlan(dec));
      out.payload = raft::ConfSplitNew{std::move(plan)};
      break;
    }
    case kTagMember: {
      RECRAFT_DEC(mc, DecodeMemberChange(dec));
      out.payload = raft::ConfMember{std::move(mc)};
      break;
    }
    case kTagMergeTx: {
      RECRAFT_DEC(plan, DecodeMergePlan(dec));
      RECRAFT_DEC(ok, dec.GetBool());
      out.payload = raft::ConfMergeTx{std::move(plan), ok};
      break;
    }
    case kTagMergeOutcome: {
      RECRAFT_DEC(plan, DecodeMergePlan(dec));
      RECRAFT_DEC(commit, dec.GetBool());
      out.payload = raft::ConfMergeOutcome{std::move(plan), commit};
      break;
    }
    case kTagSetRange: {
      raft::ConfSetRange sr;
      RECRAFT_DEC(range, DecodeKeyRange(dec));
      sr.range = std::move(range);
      RECRAFT_DEC(has_absorb, dec.GetBool());
      if (has_absorb) {
        RECRAFT_DEC(snap, DecodeSmSnapshot(dec));
        sr.absorb = std::make_shared<const sm::Snapshot>(std::move(snap));
      }
      out.payload = std::move(sr);
      break;
    }
    case kTagAbortSettled: {
      RECRAFT_DEC(tx, dec.GetU64());
      out.payload = raft::ConfAbortSettled{tx};
      break;
    }
    default:
      return Internal("codec: unknown payload tag");
  }
  return out;
}

void EncodeRaftSnapshot(Encoder& enc, const raft::RaftSnapshot& s) {
  enc.PutU64(s.last_index);
  enc.PutU64(s.last_term);
  enc.PutBool(s.state != nullptr);
  if (s.state) EncodeSmSnapshot(enc, *s.state);
  EncodeConfigState(enc, s.config);
  enc.PutU32(static_cast<uint32_t>(s.history.size()));
  for (const auto& rec : s.history) EncodeReconfigRecord(enc, rec);
  enc.PutU32(static_cast<uint32_t>(s.unsettled_aborts.size()));
  for (const auto& [tx, plan] : s.unsettled_aborts) {
    enc.PutU64(tx);
    EncodeMergePlan(enc, plan);
  }
}

Result<raft::RaftSnapshot> DecodeRaftSnapshot(Decoder& dec) {
  raft::RaftSnapshot out;
  RECRAFT_DEC(last_index, dec.GetU64());
  out.last_index = last_index;
  RECRAFT_DEC(last_term, dec.GetU64());
  out.last_term = last_term;
  RECRAFT_DEC(has_state, dec.GetBool());
  if (has_state) {
    RECRAFT_DEC(snap, DecodeSmSnapshot(dec));
    out.state = std::make_shared<const sm::Snapshot>(std::move(snap));
  }
  RECRAFT_DEC(config, DecodeConfigState(dec));
  out.config = std::move(config);
  RECRAFT_DEC(nh, dec.GetU32());
  for (uint32_t i = 0; i < nh; ++i) {
    RECRAFT_DEC(rec, DecodeReconfigRecord(dec));
    out.history.push_back(std::move(rec));
  }
  RECRAFT_DEC(na, dec.GetU32());
  for (uint32_t i = 0; i < na; ++i) {
    RECRAFT_DEC(tx, dec.GetU64());
    RECRAFT_DEC(plan, DecodeMergePlan(dec));
    out.unsettled_aborts.emplace(tx, std::move(plan));
  }
  return out;
}

#undef RECRAFT_DEC

}  // namespace recraft::storage
