// A deterministic simulated disk for the persistence subsystem. Holds named
// byte files with a durable region and a pending (written-but-not-fsynced)
// region; Flush() moves pending bytes to the durable region and charges
// simulated I/O latency to a busy-time accumulator so benches can report
// how much disk time a workload would have spent. Crashing discards pending
// bytes — optionally keeping a prefix, which is how torn tail records and
// partially flushed batches are injected (a real crash can land mid-way
// through the sector writes of an fsync that never returned).
//
// Determinism: the disk draws no randomness and schedules no events; all
// timing flows through the owning WalStorage's use of the EventQueue, so a
// run remains a pure function of its seed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/disk.h"

namespace recraft::storage {

class SimDisk final : public Disk {
 public:
  struct Options {
    Duration fsync_latency = 100;                       // per flush, us
    uint64_t throughput_bytes_per_sec = 512ull << 20;   // sequential write
  };

  SimDisk() : SimDisk(Options()) {}
  explicit SimDisk(Options opts) : opts_(opts) {}

  /// Append bytes to a file's pending region (not durable until Flush).
  void Append(const std::string& file,
              const std::vector<uint8_t>& bytes) override;

  /// Make a file's pending bytes durable (fsync). Charges I/O latency.
  void Flush(const std::string& file) override;

  /// Atomically replace a file's contents, durable immediately (models
  /// write-temp + fsync + rename). Old content survives a crash up to the
  /// moment of the rename; the replacement is all-or-nothing.
  void WriteAtomic(const std::string& file,
                   std::vector<uint8_t> bytes) override;

  void Delete(const std::string& file) override;
  bool Exists(const std::string& file) const override;
  /// Durable contents (pending bytes are invisible to readers — recovery
  /// only ever sees what survived the crash).
  const std::vector<uint8_t>& ReadDurable(
      const std::string& file) const override;
  size_t DurableSize(const std::string& file) const override;
  size_t PendingSize(const std::string& file) const override;
  std::vector<std::string> List(const std::string& prefix) const override;

  // --- latency injection (nemesis hooks) ----------------------------------
  /// Add `extra` microseconds to every fsync completion (a disk-latency
  /// spike: a shared SSD hiccup, a rebuilding RAID). The owning WalStorage
  /// defers each group commit by this amount; the charge also lands in
  /// io_busy so benches see it. 0 restores normal latency.
  void SetExtraFsyncLatency(Duration extra) { extra_fsync_latency_ = extra; }
  Duration extra_fsync_latency() const override {
    return extra_fsync_latency_;
  }
  /// Stall fsyncs entirely (the classic gray failure: writes buffer but
  /// never reach the platter). While stalled the owning WalStorage keeps
  /// batching pending records and re-arming its flush timer; durability —
  /// and everything gated on it (acks, the leader's own commit vote) —
  /// waits until the stall clears.
  void SetFsyncStalled(bool stalled) { fsync_stalled_ = stalled; }
  bool fsync_stalled() const override { return fsync_stalled_; }

  // --- crash injection ----------------------------------------------------
  /// Crash: every file loses its pending region.
  void CrashAll();
  /// Crash, but `keep_pending_bytes` of `file`'s pending prefix reached the
  /// platter first (torn/partial write injection). Other files lose all
  /// pending bytes.
  void CrashKeepingPrefix(const std::string& file, size_t keep_pending_bytes);
  /// Truncate durable contents to `len` bytes. Doubles as an injection
  /// helper (simulates the tail sectors of the last acknowledged write
  /// being lost or torn — the snapshot/log divergence and torn-tail crash
  /// points) and as recovery's torn-tail cut.
  void TruncateDurable(const std::string& file, size_t len) override;
  /// Injection helper: flip one durable byte (checksum-detectable rot).
  void CorruptDurable(const std::string& file, size_t offset);

  const Stats& stats() const override { return stats_; }
  size_t file_count() const { return files_.size(); }

 private:
  struct File {
    std::vector<uint8_t> durable;
    std::vector<uint8_t> pending;
  };

  void ChargeWrite(size_t bytes);

  Options opts_;
  std::map<std::string, File> files_;
  Stats stats_;
  Duration extra_fsync_latency_ = 0;
  bool fsync_stalled_ = false;
  static const std::vector<uint8_t> kEmpty;
};

}  // namespace recraft::storage
