// The durable-medium seam under WalStorage. A Disk holds named byte files,
// each with a durable region and a pending (written-but-not-yet-synced)
// region; Flush() is the durability barrier. Two implementations:
//
//   * SimDisk (sim_disk.h)   — deterministic in-memory model with injectable
//     crash points, latency spikes and fsync stalls; what every simulated
//     world runs on.
//   * FileDisk (file_disk.h) — real files in a directory via
//     write/fdatasync, for the recraftd deployment mode; "crashing" a
//     FileDisk is SIGKILLing the process, which loses the page-cache
//     pending region exactly as the model prescribes.
//
// WalStorage is written against this interface only; it decides *when* to
// flush (group commit, vote barriers), the Disk decides *what that costs*.
// Crash injection stays on SimDisk — a real disk's crash is the OS's to
// deliver, not ours to fake.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace recraft::storage {

class Disk {
 public:
  struct Stats {
    uint64_t flushes = 0;           // fsync count (durability barriers)
    uint64_t flushed_bytes = 0;     // bytes made durable by flushes
    uint64_t atomic_writes = 0;     // whole-file atomic replacements
    uint64_t appended_bytes = 0;    // bytes entering the pending region
    Duration io_busy = 0;           // time spent writing (simulated or real)
    uint64_t crash_lost_bytes = 0;  // pending bytes discarded by crashes
  };

  virtual ~Disk() = default;

  /// Append bytes to a file's pending region (not durable until Flush).
  virtual void Append(const std::string& file,
                      const std::vector<uint8_t>& bytes) = 0;

  /// Make a file's pending bytes durable (fsync).
  virtual void Flush(const std::string& file) = 0;

  /// Atomically replace a file's contents, durable on return (write-temp +
  /// fsync + rename). Old content survives a crash up to the moment of the
  /// rename; the replacement is all-or-nothing.
  virtual void WriteAtomic(const std::string& file,
                           std::vector<uint8_t> bytes) = 0;

  virtual void Delete(const std::string& file) = 0;
  virtual bool Exists(const std::string& file) const = 0;
  /// Durable contents (pending bytes are invisible to readers — recovery
  /// only ever sees what survived a crash). The reference stays valid until
  /// the next mutation of the same file.
  virtual const std::vector<uint8_t>& ReadDurable(
      const std::string& file) const = 0;
  virtual size_t DurableSize(const std::string& file) const = 0;
  virtual size_t PendingSize(const std::string& file) const = 0;
  virtual std::vector<std::string> List(const std::string& prefix) const = 0;

  /// Truncate a file's durable contents to `len` bytes, durably. Recovery
  /// uses this to cut a torn tail off the WAL so post-recovery appends land
  /// at the end of the replayable prefix.
  virtual void TruncateDurable(const std::string& file, size_t len) = 0;

  /// Gray-failure posture, polled by WalStorage's flush timer. Real disks
  /// report "healthy"; SimDisk's nemesis hooks override these.
  virtual Duration extra_fsync_latency() const { return 0; }
  virtual bool fsync_stalled() const { return false; }

  virtual const Stats& stats() const = 0;
};

}  // namespace recraft::storage
