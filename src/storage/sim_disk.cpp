#include "storage/sim_disk.h"

#include <algorithm>
#include <cstddef>

namespace recraft::storage {

const std::vector<uint8_t> SimDisk::kEmpty{};

void SimDisk::ChargeWrite(size_t bytes) {
  stats_.io_busy += opts_.fsync_latency + extra_fsync_latency_;
  if (opts_.throughput_bytes_per_sec > 0) {
    stats_.io_busy += static_cast<Duration>(
        (static_cast<unsigned __int128>(bytes) * kSecond) /
        opts_.throughput_bytes_per_sec);
  }
}

void SimDisk::Append(const std::string& file,
                     const std::vector<uint8_t>& bytes) {
  auto& f = files_[file];
  f.pending.insert(f.pending.end(), bytes.begin(), bytes.end());
  stats_.appended_bytes += bytes.size();
}

void SimDisk::Flush(const std::string& file) {
  auto it = files_.find(file);
  if (it == files_.end()) return;
  File& f = it->second;
  ++stats_.flushes;
  stats_.flushed_bytes += f.pending.size();
  ChargeWrite(f.pending.size());
  f.durable.insert(f.durable.end(), f.pending.begin(), f.pending.end());
  f.pending.clear();
}

void SimDisk::WriteAtomic(const std::string& file,
                          std::vector<uint8_t> bytes) {
  ++stats_.atomic_writes;
  ChargeWrite(bytes.size());
  File& f = files_[file];
  f.durable = std::move(bytes);
  f.pending.clear();
}

void SimDisk::Delete(const std::string& file) { files_.erase(file); }

bool SimDisk::Exists(const std::string& file) const {
  return files_.count(file) > 0;
}

const std::vector<uint8_t>& SimDisk::ReadDurable(
    const std::string& file) const {
  auto it = files_.find(file);
  return it == files_.end() ? kEmpty : it->second.durable;
}

size_t SimDisk::DurableSize(const std::string& file) const {
  auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.durable.size();
}

size_t SimDisk::PendingSize(const std::string& file) const {
  auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.pending.size();
}

std::vector<std::string> SimDisk::List(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [name, f] : files_) {
    if (name.compare(0, prefix.size(), prefix) == 0) out.push_back(name);
  }
  return out;
}

void SimDisk::CrashAll() { CrashKeepingPrefix("", 0); }

void SimDisk::CrashKeepingPrefix(const std::string& file,
                                 size_t keep_pending_bytes) {
  for (auto& [name, f] : files_) {
    size_t keep = name == file
                      ? std::min(keep_pending_bytes, f.pending.size())
                      : 0;
    if (keep > 0) {
      f.durable.insert(f.durable.end(), f.pending.begin(),
                       f.pending.begin() + static_cast<ptrdiff_t>(keep));
    }
    stats_.crash_lost_bytes += f.pending.size() - keep;
    f.pending.clear();
  }
}

void SimDisk::TruncateDurable(const std::string& file, size_t len) {
  auto it = files_.find(file);
  if (it == files_.end()) return;
  auto& d = it->second.durable;
  if (len < d.size()) d.resize(len);
}

void SimDisk::CorruptDurable(const std::string& file, size_t offset) {
  auto it = files_.find(file);
  if (it == files_.end()) return;
  auto& d = it->second.durable;
  if (offset < d.size()) d[offset] ^= 0xa5u;
}

}  // namespace recraft::storage
