// The pluggable persistence interface of the node: everything a ReCraft
// node must be able to rebuild after losing all volatile state — hard state
// (term / vote / commit), the log, the compaction snapshot, the sealed
// merge-exchange snapshots, and the exchange runtime metadata — flows
// through this interface. Two backends:
//
//   * InMemoryStorage — the "durable medium" is the object itself. No
//     serialization, no latency; used to exercise the boot-from-storage
//     path (World::CrashNode / RestartNode) without byte-level modeling.
//   * WalStorage      — group-committed, write-batched records over a
//     deterministic SimDisk, with CRC-framed replay and injectable crash
//     points (wal_storage.h).
//
// Durability contract the node relies on:
//   - DurableIndex(): log entries at or below it survive any crash. The
//     node defers follower acks and the leader's own commit-quorum vote
//     until the entries they cover are durable, so a committed entry is
//     durable on a full quorum — Raft's safety argument carries over to
//     crash-recovery runs unchanged.
//   - PersistHardState flushes synchronously whenever term or vote changed
//     (a node must never forget a granted vote), and may batch pure
//     commit-index advances.
//   - InstallSnapshot / PersistSealed / PersistExchangeMeta are atomic and
//     synchronous (rare, bulk writes).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "raft/entry.h"
#include "raft/entry_slab.h"
#include "raft/log.h"
#include "raft/messages.h"

namespace recraft::storage {

/// Raft's durable per-node triple, plus the commit index (an optimization:
/// replay applies straight to the persisted commit point at boot instead of
/// waiting to rediscover it from the next leader).
struct HardState {
  uint64_t term = 0;  // EpochTerm raw
  NodeId voted_for = kNoNode;
  Index commit = 0;

  bool operator==(const HardState&) const = default;
};

/// Durable image of a merge's post-commit exchange GC bookkeeping.
struct ExchangeGcImage {
  TxId tx = 0;
  std::vector<NodeId> resumed;
  std::vector<NodeId> targets;
  std::vector<NodeId> done;
  bool self_done = false;
};

/// Durable merge-exchange runtime: the pending plan (a resumed member whose
/// store is not yet assembled) and the GC state for sealed snapshots.
struct ExchangeMeta {
  std::optional<raft::MergePlan> pending_plan;
  std::vector<ExchangeGcImage> gc;
};

/// Everything recovery can reconstruct from the durable medium alone.
struct BootImage {
  bool present = false;  // false: blank disk (fresh node)
  HardState hard;
  raft::RaftSnapshotPtr snap;  // may be null
  Index base_index = 0;        // log base (snapshot position)
  uint64_t base_term = 0;
  /// Contiguous above base. A zero-copy view over the backend's slabs —
  /// valid for as long as the image is held (slab slots are immutable).
  raft::EntrySpan entries;
  std::map<std::pair<TxId, int>, sm::SnapshotPtr> sealed;
  ExchangeMeta exchange;
};

/// Deterministic crash points for fault injection. All of them model what a
/// real disk can do to writes that were *in flight* (never acknowledged) at
/// the moment of the crash.
enum class CrashPoint : uint8_t {
  /// Pending (unflushed) bytes are lost cleanly at a batch boundary.
  kLosePending = 0,
  /// The tail record of the in-flight batch reaches the platter half-way:
  /// recovery must detect the torn record (CRC) and discard it.
  kTornTail,
  /// A whole-record prefix of the in-flight batch survives, the rest is
  /// lost: recovery accepts exactly the surviving records.
  kPartialBatch,
  /// The snapshot blob is durable but the WAL marker tying the log to it is
  /// lost (crash between snapshot install and log truncation): recovery
  /// must fall back to the previous snapshot + the longer log.
  kSnapLogDivergence,
};

struct CrashSpec {
  CrashPoint point = CrashPoint::kLosePending;
};

class Storage : public raft::LogSink {
 public:
  ~Storage() override = default;

  virtual void PersistHardState(const HardState& hs) = 0;
  /// Make `snap` the durable snapshot (atomic). Does not touch the log —
  /// the caller compacts/resets through the RaftLog, which forwards here.
  virtual void InstallSnapshot(const raft::RaftSnapshotPtr& snap) = 0;
  virtual void PersistSealed(TxId tx, int source,
                             const sm::SnapshotPtr& snap) = 0;
  virtual void PruneSealed(TxId tx) = 0;
  virtual void PersistExchangeMeta(const ExchangeMeta& meta) = 0;
  /// Drop every durable trace of this node (the TC baseline's wipe).
  virtual void WipeAll() = 0;

  /// Reconstruct the durable state. Replay mutates nothing except
  /// discarding a detected torn tail (an idempotent cut, so a crash during
  /// replay — a double crash — recovers to the identical image; without
  /// the cut, post-recovery writes would land behind the garbage and be
  /// unreadable after the next crash).
  virtual Result<BootImage> Load() = 0;

  /// Highest log index whose entries are all durable (snapshot or flushed
  /// WAL). The node's ack/commit gating pivots on this.
  virtual Index DurableIndex() const = 0;

  /// Force pending writes durable now (tests, benches).
  virtual void Sync() = 0;

  /// Apply a crash: discard or mangle not-yet-durable writes per the spec.
  /// The instance is dead afterwards; recovery opens a fresh one over the
  /// same medium.
  virtual void Crash(const CrashSpec& spec) = 0;

  /// Invoked from the top of the event loop whenever DurableIndex advances
  /// asynchronously (a group-commit flush completed). Never invoked
  /// synchronously from inside a mutation call.
  void SetDurableCallback(std::function<void()> cb) {
    durable_cb_ = std::move(cb);
  }

 protected:
  std::function<void()> durable_cb_;
};

using StoragePtr = std::unique_ptr<Storage>;

/// Storage whose durable medium is the object itself: state survives the
/// *node* object's destruction (World::CrashNode) but not the process. No
/// batching — everything is durable the moment the call returns, so
/// DurableIndex always equals the log end and the node's ack gating
/// collapses to the in-memory fast path.
class InMemoryStorage final : public Storage {
 public:
  // LogSink. Appends adopt the log's slab slot by reference — the "durable
  // medium" mirrors the same immutable slots the log cache points at.
  void OnLogAppend(const raft::EntryRef& e) override;
  void OnLogTruncateFrom(Index i) override;
  void OnLogCompactTo(Index i, uint64_t term) override;
  void OnLogReset(Index base, uint64_t term) override;

  void PersistHardState(const HardState& hs) override;
  void InstallSnapshot(const raft::RaftSnapshotPtr& snap) override;
  void PersistSealed(TxId tx, int source,
                     const sm::SnapshotPtr& snap) override;
  void PruneSealed(TxId tx) override;
  void PersistExchangeMeta(const ExchangeMeta& meta) override;
  void WipeAll() override;
  Result<BootImage> Load() override;
  Index DurableIndex() const override;
  void Sync() override {}
  void Crash(const CrashSpec& spec) override;

 private:
  bool present_ = false;
  HardState hard_;
  raft::RaftSnapshotPtr snap_;
  Index base_index_ = 0;
  uint64_t base_term_ = 0;
  raft::EntryList entries_;
  std::map<std::pair<TxId, int>, sm::SnapshotPtr> sealed_;
  ExchangeMeta meta_;
};

}  // namespace recraft::storage
