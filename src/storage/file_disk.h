// Real-file Disk backend: a flat directory of files driven through
// write/fdatasync, for the recraftd deployment mode. The durable/pending
// split maps onto the OS page cache — Append write()s immediately (bytes
// the kernel may or may not have persisted when the process dies), Flush is
// fdatasync (the durability barrier WalStorage's group commit and vote
// barriers rely on), WriteAtomic is write-temp + fdatasync + rename +
// directory fsync.
//
// Construction scans the directory and caches every file's on-disk
// contents as the durable region: after a kill -9, whatever the kernel
// retained IS the durable truth, and WalStorage's CRC-framed replay drops
// any torn tail. The cache makes ReadDurable free and is kept in sync by
// the write path (this process is the file's only writer).
//
// Deliberately synchronous and single-threaded, like everything below the
// net:: seam — recraftd's poll loop is the only caller. File names are the
// WAL layout's ("wal", "snap-<gen>", "seal-<tx>-<src>", "exmeta"): flat,
// no separators, no traversal.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/disk.h"

namespace recraft::storage {

class FileDisk final : public Disk {
 public:
  /// Creates `dir` if missing and loads every existing file into the
  /// durable cache. Fatal-logs and aborts on I/O errors — a node that
  /// cannot trust its disk must not serve.
  explicit FileDisk(std::string dir);
  ~FileDisk() override;

  FileDisk(const FileDisk&) = delete;
  FileDisk& operator=(const FileDisk&) = delete;

  void Append(const std::string& file,
              const std::vector<uint8_t>& bytes) override;
  void Flush(const std::string& file) override;
  void WriteAtomic(const std::string& file,
                   std::vector<uint8_t> bytes) override;
  void Delete(const std::string& file) override;
  bool Exists(const std::string& file) const override;
  const std::vector<uint8_t>& ReadDurable(
      const std::string& file) const override;
  size_t DurableSize(const std::string& file) const override;
  size_t PendingSize(const std::string& file) const override;
  std::vector<std::string> List(const std::string& prefix) const override;
  void TruncateDurable(const std::string& file, size_t len) override;

  const Stats& stats() const override { return stats_; }
  const std::string& dir() const { return dir_; }

 private:
  struct File {
    std::vector<uint8_t> durable;  // bytes covered by the last fdatasync
    std::vector<uint8_t> pending;  // written-but-not-yet-synced tail bytes
    int fd = -1;                   // append handle, opened lazily
  };

  std::string PathOf(const std::string& file) const;
  File& OpenForAppend(const std::string& file);
  void SyncDir();

  std::string dir_;
  int dir_fd_ = -1;
  std::map<std::string, File> files_;
  Stats stats_;
  static const std::vector<uint8_t> kEmpty;
};

}  // namespace recraft::storage
