#include "storage/file_disk.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace recraft::storage {

const std::vector<uint8_t> FileDisk::kEmpty;

namespace {

[[noreturn]] void DieErrno(const char* op, const std::string& path) {
  RLOG_ERROR("disk", "%s(%s): %s", op, path.c_str(), std::strerror(errno));
  std::fprintf(stderr, "filedisk: %s(%s): %s\n", op, path.c_str(),
               std::strerror(errno));
  std::abort();
}

void WriteFully(int fd, const uint8_t* data, size_t len,
                const std::string& path) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      DieErrno("write", path);
    }
    off += static_cast<size_t>(n);
  }
}

std::vector<uint8_t> ReadFully(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) DieErrno("open", path);
  std::vector<uint8_t> out;
  uint8_t buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      DieErrno("read", path);
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return out;
}

}  // namespace

FileDisk::FileDisk(std::string dir) : dir_(std::move(dir)) {
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    DieErrno("mkdir", dir_);
  }
  dir_fd_ = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd_ < 0) DieErrno("open", dir_);
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) DieErrno("opendir", dir_);
  while (struct dirent* ent = ::readdir(d)) {
    std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    // A crash between WriteAtomic's temp write and its rename leaves a
    // ".tmp" orphan; it was never the durable file, discard it.
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      ::unlink(PathOf(name).c_str());
      continue;
    }
    File f;
    f.durable = ReadFully(PathOf(name));
    files_.emplace(std::move(name), std::move(f));
  }
  ::closedir(d);
}

FileDisk::~FileDisk() {
  for (auto& [name, f] : files_) {
    if (f.fd >= 0) ::close(f.fd);
  }
  if (dir_fd_ >= 0) ::close(dir_fd_);
}

std::string FileDisk::PathOf(const std::string& file) const {
  return dir_ + "/" + file;
}

FileDisk::File& FileDisk::OpenForAppend(const std::string& file) {
  File& f = files_[file];
  if (f.fd < 0) {
    f.fd = ::open(PathOf(file).c_str(),
                  O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (f.fd < 0) DieErrno("open", PathOf(file));
  }
  return f;
}

void FileDisk::Append(const std::string& file,
                      const std::vector<uint8_t>& bytes) {
  File& f = OpenForAppend(file);
  WriteFully(f.fd, bytes.data(), bytes.size(), PathOf(file));
  f.pending.insert(f.pending.end(), bytes.begin(), bytes.end());
  stats_.appended_bytes += bytes.size();
}

void FileDisk::Flush(const std::string& file) {
  auto it = files_.find(file);
  if (it == files_.end()) return;
  File& f = it->second;
  if (f.fd >= 0 && ::fdatasync(f.fd) != 0) DieErrno("fdatasync", PathOf(file));
  ++stats_.flushes;
  stats_.flushed_bytes += f.pending.size();
  f.durable.insert(f.durable.end(), f.pending.begin(), f.pending.end());
  f.pending.clear();
}

void FileDisk::WriteAtomic(const std::string& file,
                           std::vector<uint8_t> bytes) {
  const std::string tmp_path = PathOf(file) + ".tmp";
  int fd = ::open(tmp_path.c_str(),
                  O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) DieErrno("open", tmp_path);
  WriteFully(fd, bytes.data(), bytes.size(), tmp_path);
  if (::fdatasync(fd) != 0) DieErrno("fdatasync", tmp_path);
  ::close(fd);
  if (::rename(tmp_path.c_str(), PathOf(file).c_str()) != 0) {
    DieErrno("rename", tmp_path);
  }
  SyncDir();
  // Any open append handle now points at the unlinked old inode.
  File& f = files_[file];
  if (f.fd >= 0) {
    ::close(f.fd);
    f.fd = -1;
  }
  f.durable = std::move(bytes);
  f.pending.clear();
  ++stats_.atomic_writes;
  stats_.flushed_bytes += f.durable.size();
}

void FileDisk::Delete(const std::string& file) {
  auto it = files_.find(file);
  if (it == files_.end()) return;
  if (it->second.fd >= 0) ::close(it->second.fd);
  files_.erase(it);
  if (::unlink(PathOf(file).c_str()) != 0 && errno != ENOENT) {
    DieErrno("unlink", PathOf(file));
  }
  SyncDir();
}

bool FileDisk::Exists(const std::string& file) const {
  return files_.count(file) > 0;
}

const std::vector<uint8_t>& FileDisk::ReadDurable(
    const std::string& file) const {
  auto it = files_.find(file);
  return it == files_.end() ? kEmpty : it->second.durable;
}

size_t FileDisk::DurableSize(const std::string& file) const {
  return ReadDurable(file).size();
}

size_t FileDisk::PendingSize(const std::string& file) const {
  auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.pending.size();
}

std::vector<std::string> FileDisk::List(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [name, f] : files_) {
    if (name.compare(0, prefix.size(), prefix) == 0) out.push_back(name);
  }
  return out;
}

void FileDisk::TruncateDurable(const std::string& file, size_t len) {
  auto it = files_.find(file);
  if (it == files_.end()) return;
  File& f = it->second;
  // Recovery calls this before any post-boot appends, so the cut is within
  // the durable region; drop unsynced tail bytes along with it.
  if (f.fd >= 0) {
    ::close(f.fd);
    f.fd = -1;
  }
  if (::truncate(PathOf(file).c_str(), static_cast<off_t>(len)) != 0) {
    DieErrno("truncate", PathOf(file));
  }
  int fd = ::open(PathOf(file).c_str(), O_WRONLY | O_CLOEXEC);
  if (fd >= 0) {
    ::fdatasync(fd);
    ::close(fd);
  }
  if (f.durable.size() > len) f.durable.resize(len);
  f.pending.clear();
}

void FileDisk::SyncDir() {
  if (dir_fd_ >= 0) ::fsync(dir_fd_);
}

}  // namespace recraft::storage
