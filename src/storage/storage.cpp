#include "storage/storage.h"

#include <algorithm>
#include <cassert>

namespace recraft::storage {

void InMemoryStorage::OnLogAppend(const raft::EntryRef& e) {
  present_ = true;
  assert(e->index == base_index_ + entries_.size() + 1);
  entries_.PushShared(e);  // adopts the log's slab slot, no entry copy
}

void InMemoryStorage::OnLogTruncateFrom(Index i) {
  present_ = true;
  while (!entries_.empty() && entries_.back().index >= i) {
    entries_.PopBack();
  }
}

void InMemoryStorage::OnLogCompactTo(Index i, uint64_t term) {
  present_ = true;
  while (!entries_.empty() && entries_.front().index <= i) {
    entries_.PopFront();
  }
  base_index_ = i;
  base_term_ = term;
}

void InMemoryStorage::OnLogReset(Index base, uint64_t term) {
  present_ = true;
  entries_.Clear();
  base_index_ = base;
  base_term_ = term;
}

void InMemoryStorage::PersistHardState(const HardState& hs) {
  present_ = true;
  hard_ = hs;
}

void InMemoryStorage::InstallSnapshot(const raft::RaftSnapshotPtr& snap) {
  present_ = true;
  snap_ = snap;
}

void InMemoryStorage::PersistSealed(TxId tx, int source,
                                    const sm::SnapshotPtr& snap) {
  present_ = true;
  sealed_[{tx, source}] = snap;
}

void InMemoryStorage::PruneSealed(TxId tx) {
  for (auto it = sealed_.lower_bound({tx, -1});
       it != sealed_.end() && it->first.first == tx;) {
    it = sealed_.erase(it);
  }
}

void InMemoryStorage::PersistExchangeMeta(const ExchangeMeta& meta) {
  present_ = true;
  meta_ = meta;
}

void InMemoryStorage::WipeAll() {
  present_ = false;
  hard_ = HardState{};
  snap_.reset();
  base_index_ = 0;
  base_term_ = 0;
  entries_.Clear();
  sealed_.clear();
  meta_ = ExchangeMeta{};
}

Result<BootImage> InMemoryStorage::Load() {
  BootImage img;
  img.present = present_;
  img.hard = hard_;
  img.snap = snap_;
  img.base_index = base_index_;
  img.base_term = base_term_;
  img.entries = entries_.Span(0, entries_.size());
  img.sealed = sealed_;
  img.exchange = meta_;
  return img;
}

Index InMemoryStorage::DurableIndex() const {
  return base_index_ + entries_.size();
}

void InMemoryStorage::Crash(const CrashSpec& spec) {
  // Everything was durable the moment it was written; a crash loses
  // nothing. Byte-level crash points need WalStorage.
  (void)spec;
}

}  // namespace recraft::storage
