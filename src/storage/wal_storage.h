// Write-ahead-log storage backend over a Disk (SimDisk in simulated
// worlds, FileDisk under recraftd).
//
// Layout on the disk:
//   "wal"             append-only record stream (framing below)
//   "snap-<gen>"      consensus snapshot blobs, atomic, monotone generation
//   "seal-<tx>-<src>" sealed merge-exchange state-machine snapshots, atomic
//   "exmeta"          exchange runtime metadata, atomic
//
// WAL record framing: [u32 len][u32 crc32(payload)][payload], where the
// payload starts with a one-byte record type. Replay walks the stream and
// stops at the first truncated or CRC-failing record — a torn tail write is
// detected and discarded, never replayed as garbage. Because group commit
// preserves write order and a crash loses only a suffix of the unflushed
// bytes, the surviving prefix is always a consistent history.
//
// Group commit: mutations append records to the disk's pending region and
// arm a flush timer on the net::Clock (flush_interval); when it fires, one
// fsync makes every batched record durable and the node is poked
// through the durable callback (acks and commit-quorum votes are gated on
// DurableIndex, see storage.h). flush_interval == 0 degenerates to a
// synchronous flush per mutation batch. Term/vote changes and every blob
// write flush synchronously regardless — a node must never forget a vote.
//
// The WAL file is checkpoint-rewritten (atomically) when compaction has
// left more dead bytes than live state, so it cannot grow without bound.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "common/codec.h"
#include "net/clock.h"
#include "obs/trace.h"
#include "storage/disk.h"
#include "storage/storage.h"

namespace recraft::storage {

class WalStorage final : public Storage {
 public:
  struct Options {
    /// Group-commit window. 0 = flush synchronously inside every mutation.
    Duration flush_interval = 0;
    /// Rewrite the WAL once its file is this much larger than the live
    /// state it encodes (dead records from compacted/overwritten history).
    size_t rewrite_slack_bytes = 256 * 1024;
    /// Keep this many snapshot generations for divergence recovery.
    uint32_t snapshots_to_keep = 2;
  };

  struct Stats {
    // Write side.
    uint64_t records = 0;          // WAL records appended
    uint64_t entry_records = 0;    // of which log-entry appends
    uint64_t sync_flushes = 0;     // synchronous barriers (votes, blobs)
    uint64_t batch_flushes = 0;    // group-commit timer flushes
    uint64_t snapshots_written = 0;
    uint64_t wal_rewrites = 0;
    // Recovery side (filled by Load()).
    uint64_t replayed_records = 0;
    uint64_t replayed_entries = 0;
    uint64_t dropped_tail_bytes = 0;  // bytes after the first bad record
    bool tore_tail = false;           // trailing garbage was detected
    bool snapshot_fallback = false;   // newest snapshot gen was unusable
  };

  WalStorage(std::shared_ptr<Disk> disk, net::Clock* clock)
      : WalStorage(std::move(disk), clock, Options()) {}
  WalStorage(std::shared_ptr<Disk> disk, net::Clock* clock, Options opts);
  ~WalStorage() override;

  WalStorage(const WalStorage&) = delete;
  WalStorage& operator=(const WalStorage&) = delete;

  // LogSink. Appends encode the WAL record from the log's slab slot and
  // mirror it into the model by reference — one durable framing, no deep
  // copy into the mirror.
  void OnLogAppend(const raft::EntryRef& e) override;
  void OnLogTruncateFrom(Index i) override;
  void OnLogCompactTo(Index i, uint64_t term) override;
  void OnLogReset(Index base, uint64_t term) override;

  void PersistHardState(const HardState& hs) override;
  void InstallSnapshot(const raft::RaftSnapshotPtr& snap) override;
  void PersistSealed(TxId tx, int source,
                     const sm::SnapshotPtr& snap) override;
  void PruneSealed(TxId tx) override;
  void PersistExchangeMeta(const ExchangeMeta& meta) override;
  void WipeAll() override;
  Result<BootImage> Load() override;
  Index DurableIndex() const override;
  void Sync() override;
  void Crash(const CrashSpec& spec) override;

  const Stats& stats() const { return stats_; }
  const Disk& disk() const { return *disk_; }
  size_t wal_file_bytes() const;

  /// Arm the flight recorder for flush instants; `owner` labels the records
  /// with the node this WAL belongs to. Pure observation — does not change
  /// flush scheduling or the durable byte stream.
  void SetRecorder(obs::Recorder* rec, NodeId owner) {
    recorder_ = rec;
    recorder_node_ = owner;
  }

 private:
  // Record types — part of the durable format; append-only.
  enum RecordType : uint8_t {
    kRecHardState = 1,
    kRecAppend = 2,
    kRecTruncateFrom = 3,
    kRecReset = 4,
    kRecCompactTo = 5,
    kRecSnapInstalled = 6,
  };

  // In-memory mirror of the durable logical state, maintained so the WAL
  // can be checkpoint-rewritten compactly and DurableIndex tracked.
  struct Model {
    HardState hard;
    uint32_t snap_gen = 0;  // 0 = no snapshot
    Index snap_index = 0;
    uint64_t snap_term = 0;
    Index base_index = 0;
    uint64_t base_term = 0;
    raft::EntryList entries;  // shares the log's slabs on the append path
    Index last_index() const { return base_index + entries.size(); }
  };

  static std::string SnapFile(uint32_t gen);
  static std::string SealFile(TxId tx, int source);

  static std::vector<uint8_t> FrameRecord(const Encoder& payload);
  void AppendRecord(const Encoder& payload, bool force_sync);
  void ArmFlush();
  /// Flush-timer body: honors the disk's injected fsync stall (re-poll
  /// until it clears) and latency spike (defer this batch once), so gray
  /// disk behavior flows through the event schedule, never wall clock.
  void OnFlushTimer();
  Duration StallPollInterval() const;
  void FlushNow(bool from_timer);
  void MaybeRewriteWal();
  std::vector<uint8_t> EncodeCheckpoint() const;
  /// Replay the durable WAL bytes into `model`; updates recovery stats.
  void ReplayWal(const std::vector<uint8_t>& bytes, Model* model);

  std::shared_ptr<Disk> disk_;
  net::Clock* clock_;  // may be null (unit tests drive Sync())
  Options opts_;
  Model model_;
  Index durable_index_ = 0;
  uint64_t pending_records_ = 0;
  /// Byte offsets (within the total wal stream) where each pending record
  /// starts — the crash injector cuts at or inside these.
  std::vector<size_t> pending_record_offsets_;
  size_t wal_len_ = 0;  // durable + pending bytes
  size_t last_snap_record_off_ = 0;
  size_t live_bytes_estimate_ = 0;
  net::TimerId flush_event_ = net::kNoTimer;
  bool flush_deferred_ = false;  // latency spike applied to this batch
  obs::Recorder* recorder_ = nullptr;
  NodeId recorder_node_ = 0;
  Stats stats_;
};

}  // namespace recraft::storage
