#include "storage/wal_storage.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "storage/codec.h"
#include "storage/sim_disk.h"

namespace recraft::storage {

namespace {
constexpr char kWalFile[] = "wal";
constexpr char kExMetaFile[] = "exmeta";
constexpr size_t kRecordHeaderBytes = 8;  // u32 len + u32 crc
}  // namespace

WalStorage::WalStorage(std::shared_ptr<Disk> disk, net::Clock* clock,
                       Options opts)
    : disk_(std::move(disk)), clock_(clock), opts_(opts) {
  assert(disk_ != nullptr);
}

WalStorage::~WalStorage() {
  if (clock_ != nullptr && flush_event_ != net::kNoTimer) {
    clock_->Cancel(flush_event_);
  }
}

std::string WalStorage::SnapFile(uint32_t gen) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "snap-%u", gen);
  return buf;
}

std::string WalStorage::SealFile(TxId tx, int source) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "seal-%llu-%d",
                static_cast<unsigned long long>(tx), source);
  return buf;
}

size_t WalStorage::wal_file_bytes() const { return wal_len_; }

std::vector<uint8_t> WalStorage::FrameRecord(const Encoder& payload) {
  const auto& body = payload.buffer();
  Encoder frame;
  frame.PutU32(static_cast<uint32_t>(body.size()));
  frame.PutU32(Crc32(body));
  std::vector<uint8_t> out = frame.Take();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

void WalStorage::AppendRecord(const Encoder& payload, bool force_sync) {
  std::vector<uint8_t> frame = FrameRecord(payload);
  pending_record_offsets_.push_back(wal_len_);
  wal_len_ += frame.size();
  disk_->Append(kWalFile, frame);
  ++stats_.records;
  ++pending_records_;
  if (force_sync || opts_.flush_interval == 0) {
    FlushNow(/*from_timer=*/false);
  } else if (clock_ != nullptr) {
    ArmFlush();
  }
  // clock_ == nullptr with a flush interval: manual mode — the owner
  // drives durability with Sync() (unit tests, crash injection setups).
}

void WalStorage::ArmFlush() {
  if (flush_event_ != net::kNoTimer) return;
  flush_event_ =
      clock_->CallAfter(opts_.flush_interval, [this]() { OnFlushTimer(); });
}

Duration WalStorage::StallPollInterval() const {
  return opts_.flush_interval > 0 ? opts_.flush_interval : 100;
}

void WalStorage::OnFlushTimer() {
  flush_event_ = net::kNoTimer;
  if (disk_->fsync_stalled()) {
    // The platter is unreachable: keep batching pending records and poll
    // until the stall heals. DurableIndex freezes, so follower acks and the
    // leader's own commit vote wait — delayed, never unsafe.
    flush_event_ =
        clock_->CallAfter(StallPollInterval(), [this]() { OnFlushTimer(); });
    return;
  }
  if (disk_->extra_fsync_latency() > 0 && !flush_deferred_) {
    // A latency spike defers this group commit once by the injected amount;
    // the next timer firing flushes whatever accumulated meanwhile.
    flush_deferred_ = true;
    flush_event_ = clock_->CallAfter(disk_->extra_fsync_latency(),
                                     [this]() { OnFlushTimer(); });
    return;
  }
  flush_deferred_ = false;
  FlushNow(/*from_timer=*/true);
}

void WalStorage::FlushNow(bool from_timer) {
  flush_deferred_ = false;
  if (pending_records_ > 0) {
    disk_->Flush(kWalFile);
    if (recorder_ != nullptr) {
      recorder_->Emit(recorder_node_, obs::Name::kWalFlush, obs::TraceCtx{},
                      pending_records_, from_timer ? 0 : 1);
    }
    if (from_timer) {
      ++stats_.batch_flushes;
    } else {
      ++stats_.sync_flushes;
    }
    pending_records_ = 0;
    pending_record_offsets_.clear();
    durable_index_ = model_.last_index();
  }
  // The callback is only safe from the top of the event loop: timer fires
  // and explicit Sync() qualify, mid-mutation synchronous flushes do not.
  if (from_timer && durable_cb_) durable_cb_();
}

void WalStorage::Sync() {
  FlushNow(/*from_timer=*/false);
  if (durable_cb_) durable_cb_();
}

Index WalStorage::DurableIndex() const {
  return std::min(durable_index_, model_.last_index());
}

// --- LogSink ---------------------------------------------------------------

void WalStorage::OnLogAppend(const raft::EntryRef& e) {
  assert(e->index == model_.last_index() + 1);
  Encoder enc;
  enc.PutU8(kRecAppend);
  EncodeLogEntry(enc, *e);
  model_.entries.PushShared(e);  // mirror by slab reference, no deep copy
  ++stats_.entry_records;
  AppendRecord(enc, /*force_sync=*/false);
}

void WalStorage::OnLogTruncateFrom(Index i) {
  Encoder enc;
  enc.PutU8(kRecTruncateFrom);
  enc.PutU64(i);
  while (!model_.entries.empty() && model_.entries.back().index >= i) {
    model_.entries.PopBack();
  }
  durable_index_ = std::min(durable_index_, model_.last_index());
  AppendRecord(enc, /*force_sync=*/false);
}

void WalStorage::OnLogCompactTo(Index i, uint64_t term) {
  Encoder enc;
  enc.PutU8(kRecCompactTo);
  enc.PutU64(i);
  enc.PutU64(term);
  while (!model_.entries.empty() && model_.entries.front().index <= i) {
    model_.entries.PopFront();
  }
  model_.base_index = i;
  model_.base_term = term;
  // Entries at or below the compaction point are covered by the snapshot
  // blob (installed synchronously before the log compacts).
  durable_index_ = std::max(durable_index_, i);
  AppendRecord(enc, /*force_sync=*/false);
  MaybeRewriteWal();
}

void WalStorage::OnLogReset(Index base, uint64_t term) {
  Encoder enc;
  enc.PutU8(kRecReset);
  enc.PutU64(base);
  enc.PutU64(term);
  model_.entries.Clear();
  model_.base_index = base;
  model_.base_term = term;
  durable_index_ = base;
  AppendRecord(enc, /*force_sync=*/false);
  MaybeRewriteWal();
}

// --- non-log state ---------------------------------------------------------

void WalStorage::PersistHardState(const HardState& hs) {
  // A node must never forget a granted vote or an adopted term; pure
  // commit-index advances may ride the next group commit.
  bool sync = hs.term != model_.hard.term ||
              hs.voted_for != model_.hard.voted_for;
  model_.hard = hs;
  Encoder enc;
  enc.PutU8(kRecHardState);
  enc.PutU64(hs.term);
  enc.PutU32(hs.voted_for);
  enc.PutU64(hs.commit);
  AppendRecord(enc, sync);
}

void WalStorage::InstallSnapshot(const raft::RaftSnapshotPtr& snap) {
  assert(snap != nullptr);
  uint32_t gen = model_.snap_gen + 1;
  Encoder blob;
  EncodeRaftSnapshot(blob, *snap);
  disk_->WriteAtomic(SnapFile(gen), blob.Take());  // durable before marker
  ++stats_.snapshots_written;
  if (gen > opts_.snapshots_to_keep) {
    disk_->Delete(SnapFile(gen - opts_.snapshots_to_keep));
  }
  model_.snap_gen = gen;
  model_.snap_index = snap->last_index;
  model_.snap_term = snap->last_term;
  Encoder enc;
  enc.PutU8(kRecSnapInstalled);
  enc.PutU32(gen);
  enc.PutU64(snap->last_index);
  enc.PutU64(snap->last_term);
  last_snap_record_off_ = wal_len_;
  // Deliberately batched: the window until the next flush is the
  // "crash between snapshot install and log truncation" crash point.
  AppendRecord(enc, /*force_sync=*/false);
}

void WalStorage::PersistSealed(TxId tx, int source,
                               const sm::SnapshotPtr& snap) {
  assert(snap != nullptr);
  Encoder enc;
  EncodeSmSnapshot(enc, *snap);
  disk_->WriteAtomic(SealFile(tx, source), enc.Take());
}

void WalStorage::PruneSealed(TxId tx) {
  char prefix[48];
  std::snprintf(prefix, sizeof(prefix), "seal-%llu-",
                static_cast<unsigned long long>(tx));
  for (const auto& name : disk_->List(prefix)) disk_->Delete(name);
}

void WalStorage::PersistExchangeMeta(const ExchangeMeta& meta) {
  Encoder enc;
  enc.PutBool(meta.pending_plan.has_value());
  if (meta.pending_plan) EncodeMergePlan(enc, *meta.pending_plan);
  enc.PutU32(static_cast<uint32_t>(meta.gc.size()));
  for (const auto& gc : meta.gc) {
    enc.PutU64(gc.tx);
    EncodeNodeVec(enc, gc.resumed);
    EncodeNodeVec(enc, gc.targets);
    EncodeNodeVec(enc, gc.done);
    enc.PutBool(gc.self_done);
  }
  disk_->WriteAtomic(kExMetaFile, enc.Take());
}

void WalStorage::WipeAll() {
  for (const auto& name : disk_->List("")) disk_->Delete(name);
  model_ = Model{};
  durable_index_ = 0;
  pending_records_ = 0;
  pending_record_offsets_.clear();
  wal_len_ = 0;
  last_snap_record_off_ = 0;
}

// --- checkpoint rewrite ----------------------------------------------------

std::vector<uint8_t> WalStorage::EncodeCheckpoint() const {
  // A compact, replayable equivalent of the live model: snapshot marker,
  // base reset, every live entry, final hard state.
  std::vector<uint8_t> out;
  auto put = [&out](const Encoder& payload) {
    std::vector<uint8_t> frame = FrameRecord(payload);
    out.insert(out.end(), frame.begin(), frame.end());
  };
  if (model_.snap_gen > 0) {
    Encoder enc;
    enc.PutU8(kRecSnapInstalled);
    enc.PutU32(model_.snap_gen);
    enc.PutU64(model_.snap_index);
    enc.PutU64(model_.snap_term);
    put(enc);
  }
  {
    Encoder enc;
    enc.PutU8(kRecReset);
    enc.PutU64(model_.base_index);
    enc.PutU64(model_.base_term);
    put(enc);
  }
  for (size_t i = 0; i < model_.entries.size(); ++i) {
    Encoder enc;
    enc.PutU8(kRecAppend);
    EncodeLogEntry(enc, model_.entries.At(i));
    put(enc);
  }
  {
    Encoder enc;
    enc.PutU8(kRecHardState);
    enc.PutU64(model_.hard.term);
    enc.PutU32(model_.hard.voted_for);
    enc.PutU64(model_.hard.commit);
    put(enc);
  }
  return out;
}

void WalStorage::MaybeRewriteWal() {
  if (wal_len_ <= opts_.rewrite_slack_bytes) return;
  std::vector<uint8_t> checkpoint = EncodeCheckpoint();
  if (checkpoint.size() * 2 >= wal_len_) return;  // not enough dead weight
  wal_len_ = checkpoint.size();
  last_snap_record_off_ = 0;  // the snapshot marker leads the checkpoint
  pending_records_ = 0;
  pending_record_offsets_.clear();
  disk_->WriteAtomic(kWalFile, std::move(checkpoint));
  durable_index_ = model_.last_index();  // atomic replace is durable
  ++stats_.wal_rewrites;
}

// --- crash injection -------------------------------------------------------

void WalStorage::Crash(const CrashSpec& spec) {
  if (clock_ != nullptr && flush_event_ != net::kNoTimer) {
    clock_->Cancel(flush_event_);
    flush_event_ = net::kNoTimer;
  }
  // Crash *injection* is a simulated-disk concept; a FileDisk-backed node
  // crashes by dying (SIGKILL) and the kernel decides what survived.
  auto* sim = dynamic_cast<SimDisk*>(disk_.get());
  if (sim == nullptr) return;
  const size_t pending_bytes = disk_->PendingSize(kWalFile);
  const size_t pending_start = wal_len_ - pending_bytes;
  switch (spec.point) {
    case CrashPoint::kLosePending:
      sim->CrashAll();
      break;
    case CrashPoint::kTornTail: {
      if (pending_record_offsets_.empty()) {
        sim->CrashAll();
        break;
      }
      // Every whole record before the last, plus a torn half of the last.
      size_t last_off = pending_record_offsets_.back();
      size_t torn = std::max<size_t>(1, (wal_len_ - last_off) / 2);
      sim->CrashKeepingPrefix(kWalFile, last_off - pending_start + torn);
      break;
    }
    case CrashPoint::kPartialBatch: {
      if (pending_record_offsets_.empty()) {
        sim->CrashAll();
        break;
      }
      // A whole-record prefix of the batch survives; the tail records of
      // the batch are lost cleanly.
      size_t keep_records = pending_record_offsets_.size() / 2;
      size_t cut = keep_records < pending_record_offsets_.size()
                       ? pending_record_offsets_[keep_records]
                       : wal_len_;
      sim->CrashKeepingPrefix(kWalFile, cut - pending_start);
      break;
    }
    case CrashPoint::kSnapLogDivergence:
      // Only meaningful while the snapshot marker is still in flight —
      // that IS the "between snapshot install and log truncation" window.
      // Once the marker was fsynced it is acknowledged state and no crash
      // may take it back; degrade to a clean pending loss then.
      if (model_.snap_gen > 0 && last_snap_record_off_ >= pending_start) {
        // The blob survived (it was written atomically first); the marker
        // and everything queued behind it are lost.
        sim->CrashKeepingPrefix(kWalFile,
                                  last_snap_record_off_ - pending_start);
      } else {
        sim->CrashAll();
      }
      break;
  }
}

// --- recovery --------------------------------------------------------------

void WalStorage::ReplayWal(const std::vector<uint8_t>& bytes, Model* model) {
  size_t pos = 0;
  const size_t n = bytes.size();
  while (pos + kRecordHeaderBytes <= n) {
    uint32_t len;
    uint32_t crc;
    std::memcpy(&len, bytes.data() + pos, 4);
    std::memcpy(&crc, bytes.data() + pos + 4, 4);
    if (pos + kRecordHeaderBytes + len > n) break;  // truncated tail record
    const uint8_t* body = bytes.data() + pos + kRecordHeaderBytes;
    if (Crc32(body, len) != crc) break;  // torn or rotted record
    std::vector<uint8_t> payload(body, body + len);
    Decoder dec(payload);
    auto type = dec.GetU8();
    if (!type.ok()) break;
    bool ok = true;
    switch (*type) {
      case kRecHardState: {
        auto term = dec.GetU64();
        auto vote = dec.GetU32();
        auto commit = dec.GetU64();
        if (!term.ok() || !vote.ok() || !commit.ok()) {
          ok = false;
          break;
        }
        model->hard = HardState{*term, *vote, *commit};
        break;
      }
      case kRecAppend: {
        auto e = DecodeLogEntry(dec);
        if (!e.ok()) {
          ok = false;
          break;
        }
        // Defensive: an append below the current end implies a lost
        // truncate record, which suffix-loss cannot produce — but recover
        // by honoring the later write anyway.
        while (!model->entries.empty() &&
               model->entries.back().index >= e->index) {
          model->entries.PopBack();
        }
        if (e->index != model->last_index() + 1) {
          ok = false;  // gap: unreachable via suffix loss, treat as corrupt
          break;
        }
        model->entries.PushOwned(std::move(*e));
        ++stats_.replayed_entries;
        break;
      }
      case kRecTruncateFrom: {
        auto i = dec.GetU64();
        if (!i.ok()) {
          ok = false;
          break;
        }
        while (!model->entries.empty() && model->entries.back().index >= *i) {
          model->entries.PopBack();
        }
        break;
      }
      case kRecReset: {
        auto base = dec.GetU64();
        auto term = dec.GetU64();
        if (!base.ok() || !term.ok()) {
          ok = false;
          break;
        }
        model->entries.Clear();
        model->base_index = *base;
        model->base_term = *term;
        break;
      }
      case kRecCompactTo: {
        auto i = dec.GetU64();
        auto term = dec.GetU64();
        if (!i.ok() || !term.ok()) {
          ok = false;
          break;
        }
        while (!model->entries.empty() &&
               model->entries.front().index <= *i) {
          model->entries.PopFront();
        }
        model->base_index = *i;
        model->base_term = *term;
        break;
      }
      case kRecSnapInstalled: {
        auto gen = dec.GetU32();
        auto idx = dec.GetU64();
        auto term = dec.GetU64();
        if (!gen.ok() || !idx.ok() || !term.ok()) {
          ok = false;
          break;
        }
        model->snap_gen = *gen;
        model->snap_index = *idx;
        model->snap_term = *term;
        if (*idx > model->base_index) {
          while (!model->entries.empty() &&
                 model->entries.front().index <= *idx) {
            model->entries.PopFront();
          }
          model->base_index = *idx;
          model->base_term = *term;
        }
        last_snap_record_off_ = pos;
        break;
      }
      default:
        ok = false;
        break;
    }
    if (!ok) break;
    ++stats_.replayed_records;
    pos += kRecordHeaderBytes + len;
  }
  if (pos < n) {
    stats_.tore_tail = true;
    stats_.dropped_tail_bytes = n - pos;
  }
}

Result<BootImage> WalStorage::Load() {
  const std::vector<uint8_t>& bytes = disk_->ReadDurable(kWalFile);
  Model m;
  ReplayWal(bytes, &m);
  const size_t replayable = bytes.size() - stats_.dropped_tail_bytes;
  if (stats_.tore_tail) {
    // Cut the torn/garbage tail off the durable file NOW: records appended
    // after this recovery must land at the end of the *replayable* prefix,
    // or a second crash would silently drop everything written since (the
    // next replay would stop at the old torn record again).
    disk_->TruncateDurable(kWalFile, replayable);
  }

  BootImage img;
  img.present = !bytes.empty() || !disk_->List("").empty();

  // Resolve the snapshot blob. If the newest generation is unreadable,
  // fall back generation by generation (an injected divergence can leave a
  // blob the WAL never references — that one is simply ignored, while a
  // missing/corrupt referenced blob falls back to its predecessor plus the
  // longer log retained in the WAL).
  raft::RaftSnapshotPtr snap;
  uint32_t gen = m.snap_gen;
  while (gen > 0) {
    const auto& blob = disk_->ReadDurable(SnapFile(gen));
    if (!blob.empty()) {
      Decoder dec(blob);
      auto decoded = DecodeRaftSnapshot(dec);
      if (decoded.ok()) {
        snap = std::make_shared<raft::RaftSnapshot>(std::move(*decoded));
        break;
      }
    }
    stats_.snapshot_fallback = true;
    --gen;
  }
  if (m.snap_gen > 0 && snap == nullptr) {
    // The WAL references a snapshot but no blob generation is readable:
    // the log below the base is unrecoverable.
    return Internal("wal: no readable snapshot blob for gen " +
                    std::to_string(m.snap_gen));
  }
  if (snap == nullptr && bytes.empty()) {
    // Empty (or fully torn) WAL: fall back to the newest readable blob so
    // a divergence injection right after a checkpoint cannot cause total
    // amnesia.
    uint32_t best = 0;
    for (const auto& name : disk_->List("snap-")) {
      best = std::max(best, static_cast<uint32_t>(
                                std::strtoul(name.c_str() + 5, nullptr, 10)));
    }
    while (best > 0) {
      const auto& blob = disk_->ReadDurable(SnapFile(best));
      Decoder dec(blob);
      auto decoded = DecodeRaftSnapshot(dec);
      if (!blob.empty() && decoded.ok()) {
        snap = std::make_shared<raft::RaftSnapshot>(std::move(*decoded));
        m.snap_gen = best;
        m.snap_index = snap->last_index;
        m.snap_term = snap->last_term;
        m.base_index = snap->last_index;
        m.base_term = snap->last_term;
        stats_.snapshot_fallback = true;
        break;
      }
      --best;
    }
  }
  if (snap != nullptr && snap->last_index < m.base_index) {
    return Internal("wal: snapshot older than log base");
  }

  img.hard = m.hard;
  img.snap = snap;
  img.base_index = m.base_index;
  img.base_term = m.base_term;
  // Zero-copy: the image's span holds refs into the replayed model's slabs,
  // which survive the move into model_ below (shared ownership).
  img.entries = m.entries.Span(0, m.entries.size());

  // Sealed merge-exchange snapshots.
  for (const auto& name : disk_->List("seal-")) {
    unsigned long long tx = 0;
    int src = -1;
    if (std::sscanf(name.c_str(), "seal-%llu-%d", &tx, &src) != 2) continue;
    const auto& blob = disk_->ReadDurable(name);
    Decoder dec(blob);
    auto decoded = DecodeSmSnapshot(dec);
    if (!decoded.ok()) continue;  // corrupt seal: peers still hold copies
    img.sealed[{static_cast<TxId>(tx), src}] =
        std::make_shared<const sm::Snapshot>(std::move(*decoded));
  }

  // Exchange runtime metadata.
  if (disk_->Exists(kExMetaFile)) {
    const auto& blob = disk_->ReadDurable(kExMetaFile);
    Decoder dec(blob);
    auto has_plan = dec.GetBool();
    if (has_plan.ok()) {
      bool meta_ok = true;
      if (*has_plan) {
        auto plan = DecodeMergePlan(dec);
        if (plan.ok()) {
          img.exchange.pending_plan = std::move(*plan);
        } else {
          meta_ok = false;
        }
      }
      auto ngc = dec.GetU32();
      if (meta_ok && ngc.ok()) {
        for (uint32_t i = 0; i < *ngc; ++i) {
          ExchangeGcImage gc;
          auto tx = dec.GetU64();
          auto resumed = DecodeNodeVec(dec);
          auto targets = DecodeNodeVec(dec);
          auto done = DecodeNodeVec(dec);
          auto self_done = dec.GetBool();
          if (!tx.ok() || !resumed.ok() || !targets.ok() || !done.ok() ||
              !self_done.ok()) {
            break;
          }
          gc.tx = *tx;
          gc.resumed = std::move(*resumed);
          gc.targets = std::move(*targets);
          gc.done = std::move(*done);
          gc.self_done = *self_done;
          img.exchange.gc.push_back(std::move(gc));
        }
      }
    }
  }

  // Adopt the recovered state as the live model so subsequent mutations
  // and checkpoints continue from it. New records start at the end of the
  // replayable prefix (the torn tail, if any, was truncated above).
  model_ = std::move(m);
  durable_index_ = model_.last_index();
  wal_len_ = replayable;
  pending_records_ = 0;
  pending_record_offsets_.clear();
  return img;
}

}  // namespace recraft::storage
