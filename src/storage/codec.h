// Binary serialization for everything the persistence subsystem writes to
// disk: log entries (every payload variant), hard state, configuration
// state, merge plans, reconfiguration history and full consensus snapshots.
// Built on the common Encoder/Decoder (little-endian, length-prefixed) plus
// a CRC32 used by the WAL record framing to detect torn tail writes.
//
// The encoding is the durable format — recovery after a crash parses these
// bytes with no access to the dead process's memory — so every Decode
// returns a Result and treats truncation/garbage as an error, never UB.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "common/codec.h"
#include "raft/entry.h"
#include "raft/messages.h"

namespace recraft::storage {

/// CRC-32 (IEEE 802.3 polynomial, reflected). Guards each WAL record's
/// payload so a torn tail write is detected instead of replayed as garbage.
uint32_t Crc32(const uint8_t* data, size_t n);
inline uint32_t Crc32(const std::vector<uint8_t>& v) {
  return Crc32(v.data(), v.size());
}

// --- building blocks -------------------------------------------------------

void EncodeKeyRange(Encoder& enc, const KeyRange& r);
Result<KeyRange> DecodeKeyRange(Decoder& dec);

void EncodeNodeVec(Encoder& enc, const std::vector<NodeId>& v);
Result<std::vector<NodeId>> DecodeNodeVec(Decoder& dec);

void EncodeSubCluster(Encoder& enc, const raft::SubCluster& s);
Result<raft::SubCluster> DecodeSubCluster(Decoder& dec);

void EncodeSplitPlan(Encoder& enc, const raft::SplitPlan& p);
Result<raft::SplitPlan> DecodeSplitPlan(Decoder& dec);

void EncodeMergePlan(Encoder& enc, const raft::MergePlan& p);
Result<raft::MergePlan> DecodeMergePlan(Decoder& dec);

void EncodeMemberChange(Encoder& enc, const raft::MemberChange& mc);
Result<raft::MemberChange> DecodeMemberChange(Decoder& dec);

void EncodeConfigState(Encoder& enc, const raft::ConfigState& c);
Result<raft::ConfigState> DecodeConfigState(Decoder& dec);

void EncodeReconfigRecord(Encoder& enc, const raft::ReconfigRecord& r);
Result<raft::ReconfigRecord> DecodeReconfigRecord(Decoder& dec);

void EncodeSmSnapshot(Encoder& enc, const sm::Snapshot& s);
Result<sm::Snapshot> DecodeSmSnapshot(Decoder& dec);

// --- top-level durable objects ---------------------------------------------

void EncodeLogEntry(Encoder& enc, const raft::LogEntry& e);
Result<raft::LogEntry> DecodeLogEntry(Decoder& dec);

void EncodeRaftSnapshot(Encoder& enc, const raft::RaftSnapshot& s);
Result<raft::RaftSnapshot> DecodeRaftSnapshot(Decoder& dec);

}  // namespace recraft::storage
