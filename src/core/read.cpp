// The linearizable read path (ReadIndex, Raft dissertation §6.4), adapted to
// ReCraft's reconfigurations. A leader serving a read must prove that no
// newer leader has committed writes it has not seen; instead of appending a
// no-op per read (a log entry, a WAL flush and a replication fan-out), it
//
//   1. captures read_index = commit_ when the read arrives,
//   2. confirms its leadership with one probe round — an *election* quorum
//      of same-term ReadIndexAcks, so the confirming set intersects every
//      quorum a competing candidate would need (including the split's joint
//      quorums while one is in progress),
//   3. serves the read from the applied state machine once applied_ has
//      reached read_index.
//
// Reads batch: one probe round confirms every read registered before the
// round was launched. Reads that arrive while a round is in flight join the
// next round — an ack vouches for leadership at the moment the follower
// sent it, which must postdate the read's registration.
//
// A deposed leader cannot serve stale data: followers that moved to a
// higher term answer the probe with their term (ok=false), which steps the
// old leader down and fails its pending reads with kNotLeader; a fully
// partitioned leader steps down via CheckQuorum. Either way the client
// retries at the new leader.
#include "common/logging.h"
#include "core/node.h"

namespace recraft::core {

void Node::HandleReadRequest(NodeId from, uint64_t req_id,
                             const raft::ReadRequest& m) {
  if (role_ != Role::kLeader) {
    ReplyToClient(from, req_id, NotLeader());
    return;
  }
  if (!EffectiveRange().Contains(m.query.key)) {
    ReplyToClient(from, req_id,
                  WrongShard("key " + m.query.key + " outside " +
                             EffectiveRange().ToString()));
    return;
  }
  // Once a merge outcome is in the log the data is sealed and will be
  // replaced by the merged store; reads block with writes (§III-C.2).
  if (config_.Current().merge_outcome_index > 0) {
    ReplyToClient(from, req_id, Busy("merge in progress"));
    return;
  }
  // Raft §6.4 step 1 — the read barrier: a freshly elected leader's
  // commit_ can lag entries the previous leader committed and acked (it
  // learns the true commit point only by committing an entry of its own
  // term — the no-op proposed in BecomeLeader). Until then read_index
  // would under-read; the probe round proves term leadership, not
  // commit-index freshness. The client retries on kBusy and the no-op
  // commits within a round trip.
  if (log_.TermAt(commit_) != term_) {
    counters_.Add(cid_.read_barrier_wait);
    ReplyToClient(from, req_id, Busy("read barrier: current-term commit "
                                     "pending"));
    return;
  }
  counters_.Add(cid_.read_accepted);
  PendingRead pr;
  pr.req_id = req_id;
  pr.client = from;
  pr.query = m.query;
  pr.read_index = commit_;
  pr.ctx = cur_ctx_;
  std::set<NodeId> self{id_};
  if (raft::ElectionQuorum(config_.Current()).Satisfied(self)) {
    // Single-node quorum: our own ack is the proof; the round it needs is
    // already confirmed by construction.
    pr.seq = read_confirmed_;
  } else {
    // The next round to be launched — never an in-flight or confirmed one,
    // whose acks could predate this registration.
    pr.seq = read_seq_ + 1;
  }
  pending_reads_.push_back(std::move(pr));
  ServeConfirmedReads();  // serves single-node reads, launches the probe
}

void Node::BroadcastReadProbe() {
  raft::ReadIndexProbe probe;
  probe.et = term_;
  probe.from = id_;
  probe.seq = read_seq_;
  counters_.Add(cid_.read_probe_sent);
  for (NodeId peer : ReplicationTargets()) {
    Send(peer, probe);
  }
}

void Node::MaybeLaunchReadProbe() {
  if (role_ != Role::kLeader || read_probe_inflight_) return;
  bool waiting = false;
  for (const PendingRead& pr : pending_reads_) {
    if (pr.seq > read_confirmed_) {
      waiting = true;
      break;
    }
  }
  if (!waiting) return;
  ++read_seq_;
  read_acks_.clear();
  // A configuration whose election quorum this node satisfies alone (a
  // shrunk single-node cluster) confirms instantly — there is no one to
  // probe and no competing leader to fear.
  std::set<NodeId> self{id_};
  if (raft::ElectionQuorum(config_.Current()).Satisfied(self)) {
    read_confirmed_ = read_seq_;
    read_probe_inflight_ = false;
    ServeConfirmedReads();  // bounded: rounds only confirm forward
    return;
  }
  read_probe_inflight_ = true;
  read_retry_countdown_ = opts_.read_probe_retry_ticks;
  if (opts_.recorder != nullptr && read_span_ == 0) {
    read_span_ = opts_.recorder->BeginSpan(id_, obs::Name::kReadRound,
                                           cur_ctx_, read_seq_);
  }
  BroadcastReadProbe();
}

void Node::ReadTick() {
  if (!read_probe_inflight_) return;
  if (--read_retry_countdown_ > 0) return;
  read_retry_countdown_ = opts_.read_probe_retry_ticks;
  counters_.Add(cid_.read_probe_retry);
  BroadcastReadProbe();
}

void Node::HandleReadIndexProbe(NodeId from, const raft::ReadIndexProbe& m) {
  EpochTerm met(m.et);
  if (met.raw() < term_) {
    // Stale leader: our term in the nack deposes it.
    raft::ReadIndexAck nack;
    nack.et = term_;
    nack.from = id_;
    nack.seq = m.seq;
    nack.ok = false;
    Send(from, std::move(nack));
    return;
  }
  if (met.raw() > term_) {
    if (!ObserveEt(met, from)) return;  // epoch gap -> pull recovery
    if (met.raw() > term_) return;
  }
  // Same epoch-term: the probe doubles as a heartbeat.
  if (role_ != Role::kFollower || leader_ != from) {
    BecomeFollower(met, from);
  }
  ResetElectionTimer();
  silent_ticks_ = 0;
  raft::ReadIndexAck ack;
  ack.et = term_;
  ack.from = id_;
  ack.seq = m.seq;
  ack.ok = true;
  Send(from, std::move(ack));
}

void Node::HandleReadIndexAck(NodeId from, const raft::ReadIndexAck& m) {
  EpochTerm met(m.et);
  if (met.raw() > term_) {
    // A higher term nack: step down (BecomeFollower inside ObserveEt fails
    // the pending reads with kNotLeader through FailPendingClients).
    if (!ObserveEt(met, from)) return;
    if (met.raw() > term_) return;
  }
  if (role_ != Role::kLeader || m.et != term_ || !m.ok) return;
  if (!read_probe_inflight_ || m.seq != read_seq_) return;
  // The ack is also evidence of a live follower for the CheckQuorum lease.
  WithProgress(from, [](Progress& p) { p.ticks_since_ack = 0; });
  read_acks_.insert(from);
  std::set<NodeId> acks = read_acks_;
  acks.insert(id_);
  if (!raft::ElectionQuorum(config_.Current()).Satisfied(acks)) return;
  read_confirmed_ = read_seq_;
  read_probe_inflight_ = false;
  if (opts_.recorder != nullptr && read_span_ != 0) {
    opts_.recorder->EndSpan(id_, obs::Name::kReadRound, read_span_,
                            obs::Outcome::kOk, read_seq_);
    read_span_ = 0;
  }
  counters_.Add(cid_.read_quorum_confirmed);
  ServeConfirmedReads();
}

void Node::ServeConfirmedReads() {
  // Reads are FIFO and both seq and read_index are monotone in registration
  // order, so an unservable front blocks the tail by construction.
  while (!pending_reads_.empty()) {
    PendingRead& pr = pending_reads_.front();
    if (pr.seq > read_confirmed_) break;     // round not confirmed yet
    if (pr.read_index > applied_) break;     // apply catch-up (rare)
    sm::CmdResult res = machine_->Query(pr.query);
    counters_.Add(cid_.read_served);
    ReplyToClient(pr.client, pr.req_id, std::move(res.status),
                  std::move(res.payload), pr.ctx);
    pending_reads_.pop_front();
  }
  MaybeLaunchReadProbe();
}

void Node::FailPendingReads(Code code) {
  for (const PendingRead& pr : pending_reads_) {
    ReplyToClient(pr.client, pr.req_id, Status(code), {}, pr.ctx);
  }
  pending_reads_.clear();
  read_probe_inflight_ = false;
  read_acks_.clear();
  if (opts_.recorder != nullptr && read_span_ != 0) {
    opts_.recorder->EndSpan(id_, obs::Name::kReadRound, read_span_,
                            obs::Outcome::kLost);
    read_span_ = 0;
  }
}

}  // namespace recraft::core
