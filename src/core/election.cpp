// Leader election with epoch-aware voting and the PULL response of §III-B:
// a voter whose epoch exceeds the candidate's tells it to pull committed
// entries instead of campaigning in a configuration that has moved on.
#include "common/logging.h"
#include "core/node.h"

namespace recraft::core {

namespace {
std::vector<NodeId> QuorumUnion(const raft::QuorumSpec& q) {
  std::set<NodeId> all;
  for (const auto& g : q.groups()) all.insert(g.members.begin(), g.members.end());
  return {all.begin(), all.end()};
}
}  // namespace

void Node::StartElection() {
  counters_.Add(cid_.election_started);
  if (opts_.recorder != nullptr) {
    // A re-campaign means the previous round went nowhere: close it lost.
    if (election_span_ != 0) {
      opts_.recorder->EndSpan(id_, obs::Name::kElection, election_span_,
                              obs::Outcome::kLost, term_);
    }
    election_span_ = opts_.recorder->BeginSpan(id_, obs::Name::kElection,
                                               cur_ctx_, term_);
  }
  role_ = Role::kCandidate;
  leader_ = kNoNode;
  term_ = EpochTerm(term_).NextTerm().raw();
  voted_for_ = id_;
  votes_.clear();
  votes_.insert(id_);
  ResetElectionTimer();

  auto quorum = raft::ElectionQuorum(config_.Current());
  RLOG_DEBUG("elect", "n%u starts election at %s with %s", id_,
             current_et().ToString().c_str(), quorum.ToString().c_str());
  if (quorum.Satisfied(votes_)) {
    BecomeLeader();
    return;
  }
  raft::RequestVote rv;
  rv.et = term_;
  rv.candidate = id_;
  rv.last_idx = log_.last_index();
  rv.last_term = log_.last_term();
  for (NodeId n : QuorumUnion(quorum)) {
    if (n != id_) Send(n, rv);
  }
}

void Node::HandleRequestVote(NodeId from, const raft::RequestVote& m) {
  EpochTerm met(m.et);
  EpochTerm cur(term_);

  if (met.raw() < cur.raw()) {
    raft::VoteReply reply;
    reply.et = term_;
    reply.from = id_;
    reply.granted = false;
    // §III-B HandleVote: a lower-epoch candidate is told to pull, as is a
    // same-epoch candidate that is no longer a member (it slept through its
    // own removal, §V). Only a node that fully completed its
    // reconfiguration (stable, not mid-exchange) advertises itself.
    bool can_serve = config_.Current().mode == raft::ConfigMode::kStable &&
                     !exchange_.has_value();
    reply.pull = can_serve && (met.epoch() < cur.epoch() ||
                               !config_.Current().IsMember(m.candidate));
    Send(from, std::move(reply));
    return;
  }

  if (met.raw() > cur.raw()) {
    if (!ObserveEt(met, from)) {
      // Epoch gap we cannot bridge yet: pull recovery was started; do not
      // vote in a configuration we do not understand.
      raft::VoteReply reply;
      reply.et = term_;
      reply.from = id_;
      reply.granted = false;
      Send(from, std::move(reply));
      return;
    }
    cur = current_et();
  }

  // Leader stickiness (Raft dissertation §4.2.3): ignore vote requests
  // shortly after hearing from a live leader, so removed or partitioned
  // nodes cannot depose a healthy leader.
  if (leader_ != kNoNode && leader_ != from &&
      ticks_since_heard_ < opts_.election_timeout_min_ticks) {
    raft::VoteReply reply;
    reply.et = term_;
    reply.from = id_;
    reply.granted = false;
    Send(from, std::move(reply));
    return;
  }

  bool up_to_date =
      m.last_term > log_.last_term() ||
      (m.last_term == log_.last_term() && m.last_idx >= log_.last_index());
  bool granted = met.raw() == term_ &&
                 (voted_for_ == kNoNode || voted_for_ == m.candidate) &&
                 up_to_date;
  if (granted) {
    voted_for_ = m.candidate;
    ResetElectionTimer();
    counters_.Add(cid_.election_votes_granted);
  }
  raft::VoteReply reply;
  reply.et = term_;
  reply.from = id_;
  reply.granted = granted;
  // A candidate that is not a member of our configuration campaigns on a
  // stale view of the world (e.g. it slept through its own removal, §V):
  // tell it to pull our committed state and find out.
  if (!granted && config_.Current().mode == raft::ConfigMode::kStable &&
      !exchange_.has_value() && !config_.Current().IsMember(m.candidate)) {
    reply.pull = true;
  }
  Send(from, std::move(reply));
}

void Node::HandleVoteReply(NodeId from, const raft::VoteReply& m) {
  EpochTerm met(m.et);
  if (m.pull && pull_target_ == kNoNode && role_ == Role::kCandidate) {
    // EnterElection (§III-B, line 42): stop campaigning and pull. The
    // responder may be at a higher epoch (we missed a split/merge) or the
    // same epoch (we were removed); either way it has what we lack.
    StartPull(from);
  }
  if (met.raw() > term_) {
    if (!ObserveEt(met, from)) return;
  }
  if (role_ != Role::kCandidate || m.et != term_) return;
  if (!m.granted) return;
  votes_.insert(from);
  if (raft::ElectionQuorum(config_.Current()).Satisfied(votes_)) {
    BecomeLeader();
  }
}

void Node::BecomeLeader() {
  counters_.Add(cid_.election_won);
  if (opts_.recorder != nullptr && election_span_ != 0) {
    opts_.recorder->EndSpan(id_, obs::Name::kElection, election_span_,
                            obs::Outcome::kOk, term_);
    election_span_ = 0;
  }
  RLOG_INFO("elect", "n%u becomes leader at %s (%s)", id_,
            current_et().ToString().c_str(),
            config_.Current().ToString().c_str());
  role_ = Role::kLeader;
  leader_ = id_;
  votes_.clear();
  ClearProgress();
  for (NodeId n : ReplicationTargets()) {
    if (n == id_) continue;
    Progress p;
    p.next = log_.last_index() + 1;
    progress_[n] = p;
  }
  heartbeat_countdown_ = opts_.heartbeat_ticks;
  // Commit an entry in our own term right away: establishes P3 and flushes
  // commits of earlier terms (Raft §5.4.2).
  auto idx = Propose(raft::NoOp{});
  (void)idx;
  BroadcastAppend(/*heartbeat=*/true);
  // A coordinator cluster's new leader resumes an interrupted merge 2PC
  // from its committed log (§III-C "Handling Failures").
  ResumeMergeAsLeader();
}

}  // namespace recraft::core
