// Log replication, commit-quorum accounting (including the split's mixed
// quorums), snapshot install and log compaction.
//
// Reentrancy hazard, and the discipline this file follows: AdvanceCommit ->
// ApplyCommitted can apply a committed reconfiguration (split completion,
// merge transition, member removal, leader step-down) that tears down and
// rebuilds progress_ underneath the caller. Therefore no reference or
// iterator into progress_ may survive a call into the apply path. Handlers
// mutate tracking fields inside WithProgress (debug-asserted against
// invalidation), then run AdvanceCommit / MaybeSendAppend afterwards;
// MaybeSendAppend re-resolves its peer through LeaderProgress.
#include <algorithm>

#include "common/logging.h"
#include "core/node.h"

namespace recraft::core {

std::vector<NodeId> Node::ReplicationTargets() const {
  const auto& cfg = config_.Current();
  std::set<NodeId> t(cfg.members.begin(), cfg.members.end());
  // Under vanilla joint consensus entries must reach both configurations.
  if (cfg.vanilla_joint) t.insert(cfg.jc_old.begin(), cfg.jc_old.end());
  t.erase(id_);
  return {t.begin(), t.end()};
}

void Node::BroadcastAppend(bool heartbeat) {
  for (NodeId peer : ReplicationTargets()) {
    MaybeSendAppend(peer, heartbeat);
  }
}

Node::Progress* Node::LeaderProgress(NodeId peer) {
  if (role_ != Role::kLeader) return nullptr;
  auto it = progress_.find(peer);
  if (it != progress_.end()) return &it->second;
  // Track only current replication targets (created lazily so newly added
  // members start replicating without waiting for a re-election). A blind
  // progress_[peer] here would resurrect tracking state for a peer that a
  // just-applied reconfiguration removed — its stale reply races the apply —
  // and leak replication traffic across the membership boundary.
  const auto targets = ReplicationTargets();
  if (std::find(targets.begin(), targets.end(), peer) == targets.end()) {
    counters_.Add(cid_.repl_stale_peer_dropped);
    return nullptr;
  }
  return &progress_[peer];
}

void Node::ClearProgress() {
  ++progress_gen_;
  progress_.clear();
}

void Node::PruneProgress() {
  if (role_ != Role::kLeader) return;
  const auto targets = ReplicationTargets();
  bool erased = false;
  for (auto it = progress_.begin(); it != progress_.end();) {
    if (std::find(targets.begin(), targets.end(), it->first) ==
        targets.end()) {
      it = progress_.erase(it);
      erased = true;
    } else {
      ++it;
    }
  }
  if (erased) ++progress_gen_;
}

void Node::MaybeSendAppend(NodeId peer, bool force_empty) {
  // Applying a committed entry can demote us mid-call (merge resumption,
  // split completion, self-removal): never emit replication traffic unless
  // still the leader, and never to a peer outside the current configuration.
  Progress* pp = LeaderProgress(peer);
  if (pp == nullptr) return;
  Progress& p = *pp;
  if (p.snapshotting && !force_empty) return;

  const auto& cfg = config_.Current();
  Index cap = log_.last_index();
  Index commit_cap = commit_;
  if (cfg.mode == raft::ConfigMode::kSplitLeaving) {
    // §III-B SplitLeaveJoint: entries after the split C_new entry belong to
    // the leader's own subcluster; members of other subclusters receive the
    // log only up to C_new.
    int my_sub = cfg.split.SubOf(id_);
    int peer_sub = cfg.split.SubOf(peer);
    if (peer_sub != my_sub) {
      cap = std::min(cap, cfg.cnew_index);
      commit_cap = std::min(commit_cap, cfg.cnew_index);
    }
  }

  if (p.next <= log_.base_index()) {
    if (p.snapshotting) return;
    raft::InstallSnapshot is;
    is.et = term_;
    is.leader = id_;
    is.snap = snapshot_ ? snapshot_ : BuildSnapshot();
    p.snapshotting = true;
    counters_.Add(cid_.repl_snapshot_sent);
    Send(peer, std::move(is));
    return;
  }

  // Zero-copy fan-out: the span shares the log's slabs, so sending the same
  // batch to every peer costs segment descriptors, not entry deep-copies.
  raft::EntrySpan entries;
  if (p.next <= cap) {
    Index hi = std::min(cap, p.next + opts_.max_entries_per_append - 1);
    entries = log_.Slice(p.next, hi);
  }
  if (entries.empty() && !force_empty) return;
  if (!entries.empty() && p.inflight >= opts_.max_inflight_appends &&
      !force_empty) {
    return;
  }

  raft::AppendEntries ae;
  ae.et = term_;
  ae.leader = id_;
  ae.prev_idx = p.next - 1;
  ae.prev_term = log_.TermAt(ae.prev_idx);
  ae.commit = commit_cap;
  if (!entries.empty()) {
    p.next = entries.back().index + 1;  // optimistic pipelining
    ++p.inflight;
  }
  ae.entries = std::move(entries);
  counters_.Add(cid_.append_sent);
  Send(peer, std::move(ae));
}

void Node::HandleAppendEntries(NodeId from, const raft::AppendEntries& m) {
  EpochTerm met(m.et);
  if (met.raw() < term_) {
    raft::AppendReply reply;
    reply.et = term_;
    reply.from = id_;
    reply.ok = false;
    Send(from, std::move(reply));
    return;
  }
  if (met.raw() > term_) {
    if (!ObserveEt(met, from)) return;  // epoch gap -> pull recovery
    if (met.raw() > term_) return;      // still behind after completing
  }
  // Same epoch-term: acknowledge the leader.
  if (role_ != Role::kFollower || leader_ != from) {
    BecomeFollower(met, from);
  }
  ResetElectionTimer();
  silent_ticks_ = 0;

  raft::AppendReply reply;
  reply.et = term_;
  reply.from = id_;

  if (!log_.Matches(m.prev_idx, m.prev_term)) {
    reply.ok = false;
    reply.match = commit_;
    // Conflict hint: skip back over the whole conflicting-term run, never
    // below the committed prefix (which always matches the leader's log).
    Index hint;
    if (m.prev_idx > log_.last_index()) {
      hint = log_.last_index() + 1;
    } else {
      hint = m.prev_idx;
      uint64_t t = log_.TermAt(hint);
      while (hint > commit_ + 1 && hint > log_.first_index() &&
             log_.TermAt(hint - 1) == t) {
        --hint;
      }
    }
    reply.conflict_hint = std::max<Index>(hint, commit_ + 1);
    Send(from, std::move(reply));
    return;
  }

  Index last_new = m.prev_idx;
  for (const auto& e : m.entries) {
    last_new = e.index;
    if (log_.Matches(e.index, e.term)) continue;
    if (e.index <= commit_) {
      // A conflicting committed entry would violate Log Matching; this
      // indicates a protocol bug — surface it loudly in tests.
      counters_.Add(cid_.invariant_committed_conflict);
      RLOG_ERROR("repl", "n%u: conflicting entry at committed index %llu",
                 id_, static_cast<unsigned long long>(e.index));
      reply.ok = false;
      Send(from, std::move(reply));
      return;
    }
    if (e.index <= log_.last_index()) {
      log_.TruncateFrom(e.index);
      config_.OnTruncate(e.index);
      DropPendingAcks();  // queued claims about the old suffix are void
      counters_.Add(cid_.repl_truncations);
    }
    log_.Append(e);
    config_.OnAppend(e);
  }

  if (m.commit > commit_) {
    commit_ = std::min(m.commit, last_new);
    ApplyCommitted();
  }
  reply.ok = true;
  reply.match = last_new;
  // Durability gate: the ack must not claim `match` before every entry at
  // or below it is durable — the leader counts this ack toward commit, and
  // a committed entry must survive any crash of a full quorum. With no
  // storage (or a synchronous backend) the gate is already satisfied.
  const Index durable =
      storage_ == nullptr ? last_new
                          : std::min(log_.last_index(), storage_->DurableIndex());
  if (last_new <= durable) {
    Send(from, std::move(reply));
  } else {
    counters_.Add(cid_.storage_ack_deferred);
    if (opts_.recorder != nullptr && cur_ctx_.valid()) {
      opts_.recorder->Emit(id_, obs::Name::kAckDeferred, cur_ctx_, last_new);
    }
    pending_acks_.push_back(
        PendingAck{from, reply, log_.TermAt(last_new), cur_ctx_});
  }
}

void Node::HandleAppendReply(NodeId from, const raft::AppendReply& m) {
  EpochTerm met(m.et);
  if (met.raw() > term_) {
    if (!ObserveEt(met, from)) return;
    if (met.raw() > term_) return;
  }
  if (role_ != Role::kLeader || m.et != term_) return;
  // All tracking-field updates happen inside WithProgress; the reentrant
  // calls run after, once no Progress& is live. AdvanceCommit can apply a
  // committed reconfiguration that clears progress_ — the original
  // heap-use-after-free held `p` across exactly that call.
  bool advanced = false;
  bool force_retry = false;
  bool tracked = WithProgress(from, [&](Progress& p) {
    p.ticks_since_ack = 0;
    if (p.inflight > 0) --p.inflight;
    if (m.ok) {
      if (m.match > p.match) {
        p.match = m.match;
        advanced = true;
      }
      if (p.next <= p.match) p.next = p.match + 1;
    } else {
      Index hint = m.conflict_hint != 0 ? m.conflict_hint : p.next - 1;
      p.next =
          std::max<Index>(1, std::min(p.next > 1 ? p.next - 1 : 1, hint));
      if (p.next <= p.match) p.next = p.match + 1;
      p.inflight = 0;
      force_retry = true;
    }
  });
  if (!tracked) return;
  if (advanced) AdvanceCommit();
  // Re-resolves `from` through LeaderProgress: we may have stepped down or
  // changed configuration while applying above.
  MaybeSendAppend(from, force_retry);
}

void Node::HandleInstallSnapshot(NodeId from, const raft::InstallSnapshot& m) {
  EpochTerm met(m.et);
  if (met.raw() < term_) {
    raft::InstallSnapshotReply reply;
    reply.et = term_;
    reply.from = id_;
    reply.applied = 0;
    Send(from, std::move(reply));
    return;
  }
  if (!m.snap) return;
  // A snapshot is itself the recovery vehicle: unlike other RPCs we accept
  // it across epoch gaps directly (it carries the full config + history).
  bool stale = m.snap->config.uid == config_.Current().uid &&
               m.snap->last_index <= commit_ &&
               met.epoch() == current_et().epoch();
  if (!stale) {
    InstallSnapshotState(*m.snap, met);
  } else if (met.raw() > term_) {
    BecomeFollower(met, from);
  }
  leader_ = from;
  ResetElectionTimer();
  raft::InstallSnapshotReply reply;
  reply.et = term_;
  reply.from = id_;
  reply.applied = commit_;
  Send(from, std::move(reply));
}

void Node::HandleInstallSnapshotReply(NodeId from,
                                      const raft::InstallSnapshotReply& m) {
  EpochTerm met(m.et);
  if (met.raw() > term_) {
    if (!ObserveEt(met, from)) return;
    if (met.raw() > term_) return;
  }
  if (role_ != Role::kLeader || m.et != term_) return;
  bool tracked = WithProgress(from, [&](Progress& p) {
    p.ticks_since_ack = 0;
    p.snapshotting = false;
    if (m.applied > p.match) p.match = m.applied;
    p.next = std::max(p.next, p.match + 1);
  });
  if (!tracked) return;
  // The Progress& dies above: AdvanceCommit can apply a committed
  // reconfiguration that clears progress_.
  AdvanceCommit();
  MaybeSendAppend(from, false);
}

void Node::AdvanceCommit() {
  if (role_ != Role::kLeader) return;
  const auto& cfg = config_.Current();
  Index last = log_.last_index();
  // The leader's own vote counts only up to its durable horizon: counting
  // an unflushed entry toward commit would let a crash erase a committed
  // entry from the only quorum that held it. Without storage (or with a
  // synchronous backend) this is simply last_index().
  const Index self_match =
      storage_ == nullptr ? last : std::min(last, storage_->DurableIndex());
  Index new_commit = commit_;
  for (Index i = commit_ + 1; i <= last; ++i) {
    auto q = raft::CommitQuorum(cfg, i, id_);
    std::set<NodeId> acks;
    if (i <= self_match) acks.insert(id_);
    for (const auto& [n, p] : progress_) {
      if (p.match >= i) acks.insert(n);
    }
    if (!q.Satisfied(acks)) break;
    new_commit = i;
  }
  // Raft §5.4.2: only entries of the leader's current term commit by quorum
  // counting; earlier entries commit transitively. Terms are monotone in the
  // log, so checking the top of the advanced range suffices.
  if (new_commit > commit_ && log_.TermAt(new_commit) == term_) {
    commit_ = new_commit;
    counters_.Add(cid_.commits);
    ApplyCommitted();
    MaybeCompact();
    // Propagate the new commit index promptly (matters for split/merge
    // completion latency).
    BroadcastAppend(/*heartbeat=*/true);
    heartbeat_countdown_ = opts_.heartbeat_ticks;
  }
}

Result<Index> Node::Propose(raft::Payload payload) {
  if (role_ != Role::kLeader) return NotLeader();
  raft::LogEntry e;
  e.index = log_.last_index() + 1;
  e.term = term_;
  e.payload = std::move(payload);
  bool is_config = e.IsConfig();
  log_.Append(e);
  if (is_config && !config_.OnAppend(log_.At(e.index))) {
    log_.TruncateFrom(e.index);
    return Rejected("invalid configuration transition");
  }
  counters_.Add(cid_.proposed);
  AdvanceCommit();  // single-node quorums commit immediately
  BroadcastAppend(false);
  return e.index;
}

raft::RaftSnapshotPtr Node::BuildSnapshot() const {
  auto snap = std::make_shared<raft::RaftSnapshot>();
  snap->last_index = applied_;
  snap->last_term = log_.TermAt(applied_);
  snap->state = machine_->TakeSnapshot();
  snap->config = config_.StateAtOrBefore(applied_);
  snap->history = history_;
  snap->unsettled_aborts = unsettled_aborts_;
  return snap;
}

void Node::MaybeCompact() {
  if (opts_.snapshot_threshold == 0) return;
  if (applied_ - log_.base_index() < opts_.snapshot_threshold) return;
  snapshot_ = BuildSnapshot();
  // Snapshot first, then truncate: a crash between the two leaves a longer
  // log plus a snapshot it subsumes — recoverable either way. The opposite
  // order could lose the compacted prefix.
  if (storage_ != nullptr) storage_->InstallSnapshot(snapshot_);
  log_.CompactTo(snapshot_->last_index, snapshot_->last_term);
  counters_.Add(cid_.log_compactions);
}

}  // namespace recraft::core
