// The ReCraft merge protocol (§III-C): a cluster-level two-phase commit
// whose prepare/commit decisions are themselves committed through each
// participating cluster's Raft log, followed by a snapshot exchange and
// resumption of the merged cluster at (E_new, term 0).
//
// The cluster contacted by the admin becomes the coordinator; its leader
// drives the 2PC and, because every step is recorded in the coordinator
// cluster's log, any new leader of that cluster resumes an interrupted
// transaction (ResumeMergeAsLeader) — the coordinator is as robust as a
// Raft cluster, unlike TiKV/CockroachDB's external cluster manager.
#include "common/logging.h"
#include "core/node.h"

namespace recraft::core {

namespace {
KeyRange MergedRange(const raft::MergePlan& plan) {
  std::vector<KeyRange> parts;
  parts.reserve(plan.sources.size());
  for (const auto& s : plan.sources) parts.push_back(s.range);
  auto merged = KeyRange::MergeAdjacent(parts);
  return merged.ok() ? *merged : KeyRange::Empty();
}

/// Initial per-source contact map: the first member of every non-coordinator
/// source (rotated later by MergeTick / leader hints).
std::map<int, NodeId> DefaultContacts(const raft::MergePlan& plan) {
  std::map<int, NodeId> contacts;
  for (size_t j = 0; j < plan.sources.size(); ++j) {
    if (static_cast<int>(j) == plan.coordinator) continue;
    contacts[static_cast<int>(j)] = plan.sources[j].members.front();
  }
  return contacts;
}

raft::MergeCommitReq MakeCommitReq(NodeId from, const raft::MergePlan& plan,
                                   bool commit) {
  raft::MergeCommitReq req;
  req.from = from;
  req.tx = plan.tx;
  req.commit = commit;
  req.plan = plan;
  return req;
}
}  // namespace

Status Node::StartMerge(const raft::AdminMerge& req, uint64_t req_id,
                        NodeId client) {
  if (!opts_.enable_recraft) return Rejected("recraft features disabled");
  if (role_ != Role::kLeader) return NotLeader();
  if (Status s = CheckReconfigPreconditions(); !s.ok()) return s;
  if (merge_.phase != MergePhase::kIdle) return Busy("merge already running");

  raft::MergePlan plan = req.draft;
  if (plan.tx == 0) return Rejected("merge needs a transaction id");
  if (plan.sources.size() < 2) return Rejected("merge needs >= 2 clusters");
  if (plan.coordinator < 0 ||
      plan.coordinator >= static_cast<int>(plan.sources.size())) {
    return Rejected("bad coordinator index");
  }
  const auto& cfg = config_.Current();
  const auto& coord = plan.sources[static_cast<size_t>(plan.coordinator)];
  if (coord.members != cfg.members || !(coord.range == cfg.range)) {
    return Rejected("coordinator source does not match this cluster");
  }
  KeyRange merged = MergedRange(plan);
  if (merged.empty()) return Rejected("source ranges are not adjacent");
  if (!plan.resume_members.empty()) {
    // Resize-at-merge safety (§III-C.2): the resumed set must contain every
    // member of at least one source so its quorums overlap a source quorum.
    auto all = plan.AllMembers();
    for (NodeId n : plan.resume_members) {
      if (!std::binary_search(all.begin(), all.end(), n)) {
        return Rejected("resume member not in any source");
      }
    }
    bool covers_one = false;
    for (const auto& s : plan.sources) {
      bool all_in = true;
      for (NodeId n : s.members) {
        if (std::find(plan.resume_members.begin(), plan.resume_members.end(),
                      n) == plan.resume_members.end()) {
          all_in = false;
          break;
        }
      }
      if (all_in) {
        covers_one = true;
        break;
      }
    }
    if (!covers_one) {
      return Rejected("resume set must contain all members of some source");
    }
  }
  plan.new_uid = raft::DeriveMergeUid(plan.tx);
  plan.new_range = merged;

  // MergePrepare (Fig. 4): commit the local OK decision to our own cluster,
  // then fan the prepare out to the other clusters. The runtime must be set
  // up *before* proposing: a single-node coordinator cluster commits and
  // applies CTX' synchronously inside Propose, and OnMergeTxApplied only
  // records local_tx_applied if it finds the runtime already in kPreparing
  // — set up afterwards, the 2PC would stall forever.
  merge_ = MergeRuntime{};
  merge_.phase = MergePhase::kPreparing;
  merge_.plan = plan;
  merge_.retry_countdown = opts_.merge_retry_ticks;
  merge_.admin_req_id = req_id;
  merge_.admin_client = client;
  merge_.contact = DefaultContacts(plan);
  if (opts_.recorder != nullptr) {
    merge_span_ = opts_.recorder->BeginSpan(id_, obs::Name::kMerge, cur_ctx_,
                                            plan.tx);
  }
  auto idx = Propose(raft::ConfMergeTx{plan, /*decision_ok=*/true});
  if (!idx.ok()) {
    merge_ = MergeRuntime{};
    if (opts_.recorder != nullptr && merge_span_ != 0) {
      opts_.recorder->EndSpan(id_, obs::Name::kMerge, merge_span_,
                              obs::Outcome::kError, plan.tx);
      merge_span_ = 0;
    }
    return idx.status();
  }
  SendPrepares();
  counters_.Add(cid_.merge_started);
  return OkStatus();
}

void Node::SendPrepares() {
  for (size_t j = 0; j < merge_.plan.sources.size(); ++j) {
    int sj = static_cast<int>(j);
    if (sj == merge_.plan.coordinator) continue;
    if (merge_.prepare_replies.count(sj) > 0) continue;
    if (opts_.recorder != nullptr && merge_span_ != 0) {
      opts_.recorder->Emit(id_, obs::Name::kMergePrepareSent, obs::TraceCtx{},
                           merge_.plan.tx, static_cast<uint64_t>(sj));
    }
    raft::MergePrepareReq req;
    req.from = id_;
    req.plan = merge_.plan;
    Send(merge_.contact[sj], std::move(req));
  }
}

void Node::SendCommits() {
  for (size_t j = 0; j < merge_.plan.sources.size(); ++j) {
    int sj = static_cast<int>(j);
    if (sj == merge_.plan.coordinator) continue;
    if (merge_.commit_acks.count(sj) > 0) continue;
    if (opts_.recorder != nullptr && merge_span_ != 0) {
      opts_.recorder->Emit(id_, obs::Name::kMergeCommitSent, obs::TraceCtx{},
                           merge_.plan.tx, merge_.outcome_is_commit ? 1 : 0);
    }
    Send(merge_.contact[sj],
         MakeCommitReq(id_, merge_.plan, merge_.outcome_is_commit));
  }
}

void Node::MergeTick() {
  if (merge_.phase == MergePhase::kIdle) return;
  if (--merge_.retry_countdown > 0) return;
  merge_.retry_countdown = opts_.merge_retry_ticks;
  // Rotate contacts for sources that have not answered, then retransmit
  // (handlers are idempotent by transaction id).
  for (auto& [sj, contact] : merge_.contact) {
    bool answered = merge_.phase == MergePhase::kPreparing
                        ? merge_.prepare_replies.count(sj) > 0
                        : merge_.commit_acks.count(sj) > 0;
    if (answered) continue;
    const auto& members = merge_.plan.sources[static_cast<size_t>(sj)].members;
    auto it = std::find(members.begin(), members.end(), contact);
    contact = members[(static_cast<size_t>(it - members.begin()) + 1) %
                      members.size()];
  }
  if (merge_.phase == MergePhase::kPreparing) {
    SendPrepares();
  } else {
    SendCommits();
  }
}

// --------------------------------------------------------------------------
// Participant side.

void Node::HandleMergePrepareReq(NodeId from, const raft::MergePrepareReq& m) {
  const auto& cfg = config_.Current();
  // Already merged under this transaction: the prepare is a stale retry.
  if (cfg.uid == m.plan.new_uid) return;
  if (role_ != Role::kLeader) {
    raft::MergePrepareReply reply;
    reply.from = id_;
    reply.tx = m.plan.tx;
    reply.source_index = m.plan.SourceOf(id_);
    reply.retry = true;
    reply.leader_hint = leader_;
    Send(from, std::move(reply));
    return;
  }
  int my_source = m.plan.SourceOf(id_);
  if (my_source < 0 || my_source == m.plan.coordinator) return;

  if (cfg.merge_tx.has_value()) {
    if (cfg.merge_tx->tx == m.plan.tx) {
      // Duplicate prepare: if our CTX' already committed, re-send the
      // recorded decision; otherwise the reply fires when it applies.
      if (cfg.merge_tx_index <= commit_) {
        raft::MergePrepareReply reply;
        reply.from = id_;
        reply.tx = m.plan.tx;
        reply.source_index = my_source;
        reply.ok = cfg.merge_decision_ok;
        reply.epoch = current_et().epoch();
        Send(from, std::move(reply));
      }
      return;
    }
    // A different merge is in flight: vote NO without recording (presumed
    // abort is safe — this transaction cannot commit without our OK).
    raft::MergePrepareReply reply;
    reply.from = id_;
    reply.tx = m.plan.tx;
    reply.source_index = my_source;
    reply.ok = false;
    Send(from, std::move(reply));
    return;
  }

  Status pre = CheckReconfigPreconditions();
  if (!pre.ok()) {
    if (pre.code() == Code::kBusy) {
      // P3 not established yet (fresh leader): the no-op is in flight;
      // have the coordinator retry shortly.
      raft::MergePrepareReply reply;
      reply.from = id_;
      reply.tx = m.plan.tx;
      reply.source_index = my_source;
      reply.retry = true;
      reply.leader_hint = id_;
      Send(from, std::move(reply));
    } else {
      // P1 violated (reconfiguration in progress): vote NO, unrecorded.
      raft::MergePrepareReply reply;
      reply.from = id_;
      reply.tx = m.plan.tx;
      reply.source_index = my_source;
      reply.ok = false;
      Send(from, std::move(reply));
    }
    return;
  }
  // HandleMergePrepare (Fig. 4 lines 29-36): commit CTX' with the local OK
  // decision; the reply is sent once it applies.
  auto idx = Propose(raft::ConfMergeTx{m.plan, /*decision_ok=*/true});
  if (!idx.ok()) {
    raft::MergePrepareReply reply;
    reply.from = id_;
    reply.tx = m.plan.tx;
    reply.source_index = my_source;
    reply.retry = true;
    Send(from, std::move(reply));
  }
  counters_.Add(cid_.merge_prepared);
}

void Node::OnMergeTxApplied(const raft::ConfMergeTx& tx, Index index) {
  (void)index;
  if (role_ != Role::kLeader) return;
  const raft::MergePlan& plan = tx.plan;
  int my_source = plan.SourceOf(id_);
  if (my_source == plan.coordinator) {
    if (merge_.phase == MergePhase::kPreparing &&
        merge_.plan.tx == plan.tx) {
      merge_.local_tx_applied = true;
      MaybeFinishPrepare();
    }
    return;
  }
  // Participant leader: the decision is durable; answer the coordinator.
  // The reply goes to every coordinator-cluster member — whichever is the
  // current coordinator leader picks it up (robust to leader changes).
  raft::MergePrepareReply reply;
  reply.from = id_;
  reply.tx = plan.tx;
  reply.source_index = my_source;
  reply.ok = tx.decision_ok;
  reply.epoch = current_et().epoch();
  for (NodeId n :
       plan.sources[static_cast<size_t>(plan.coordinator)].members) {
    Send(n, reply);
  }
}

void Node::HandleMergeCommitReq(NodeId from, const raft::MergeCommitReq& m) {
  const auto& cfg = config_.Current();
  if (cfg.uid == m.plan.new_uid) {
    // Already transitioned: ack from any member, leader or not.
    raft::MergeCommitReply reply;
    reply.from = id_;
    reply.tx = m.tx;
    reply.source_index = m.plan.SourceOf(id_);
    reply.ok = true;
    Send(from, std::move(reply));
    return;
  }
  if (role_ != Role::kLeader) {
    raft::MergeCommitReply reply;
    reply.from = id_;
    reply.tx = m.tx;
    reply.source_index = m.plan.SourceOf(id_);
    reply.retry = true;
    reply.leader_hint = leader_;
    Send(from, std::move(reply));
    return;
  }
  int my_source = m.plan.SourceOf(id_);
  if (!cfg.merge_tx.has_value() || cfg.merge_tx->tx != m.tx) {
    if (!m.commit) {
      // Abort retransmission for a transaction we already resolved (the
      // C_abort applied and cleared it) or never recorded. By leader
      // completeness a leader without the CTX' record holds no pending
      // obligation for this tx, so the abort is settled here: ack it.
      raft::MergeCommitReply reply;
      reply.from = id_;
      reply.tx = m.tx;
      reply.source_index = my_source;
      reply.ok = true;
      Send(from, std::move(reply));
      return;
    }
    // We never saw (or already resolved) this transaction.
    raft::MergeCommitReply reply;
    reply.from = id_;
    reply.tx = m.tx;
    reply.source_index = my_source;
    reply.retry = true;
    Send(from, std::move(reply));
    return;
  }
  if (cfg.merge_outcome_index > 0) {
    // Outcome already proposed; ack fires when it applies.
    return;
  }
  auto idx = Propose(raft::ConfMergeOutcome{m.plan, m.commit});
  (void)idx;
  counters_.Add(cid_.merge_commit_received);
}

// --------------------------------------------------------------------------
// Coordinator side.

void Node::HandleMergePrepareReply(NodeId from,
                                   const raft::MergePrepareReply& m) {
  if (role_ != Role::kLeader || merge_.phase != MergePhase::kPreparing) return;
  if (m.tx != merge_.plan.tx) return;
  if (m.retry) {
    if (m.leader_hint != kNoNode && m.leader_hint != from) {
      merge_.contact[m.source_index] = m.leader_hint;
      SendPrepares();
    }
    return;
  }
  if (m.source_index < 0) return;
  merge_.prepare_replies.emplace(m.source_index, m);
  MaybeFinishPrepare();
}

void Node::MaybeFinishPrepare() {
  // Reentrancy note: ProposeMergeOutcome below can commit + apply the
  // outcome synchronously and reset merge_ (which owns prepare_replies).
  // The iteration over prepare_replies must therefore finish before that
  // call — keep the loop and the proposal strictly sequential.
  if (merge_.phase != MergePhase::kPreparing || !merge_.local_tx_applied) {
    return;
  }
  size_t expected = merge_.plan.sources.size() - 1;
  if (merge_.prepare_replies.size() < expected) return;
  bool unanimous = true;
  uint32_t max_epoch = current_et().epoch();
  for (const auto& [sj, reply] : merge_.prepare_replies) {
    unanimous = unanimous && reply.ok;
    max_epoch = std::max(max_epoch, reply.epoch);
  }
  // Resumption epoch: E_new = E_max + 1, collected during phase one
  // (§III-C.2 "Resumption").
  merge_.plan.new_epoch = max_epoch + 1;
  ProposeMergeOutcome(unanimous);
}

void Node::ProposeMergeOutcome(bool commit) {
  merge_.phase = MergePhase::kCommitting;
  merge_.outcome_is_commit = commit;
  merge_.retry_countdown = opts_.merge_retry_ticks;
  // Keep local copies: on a single-node coordinator cluster Propose commits
  // and applies the outcome synchronously, and OnMergeOutcomeApplied may
  // reset merge_ (abort path) before we fan the decision out.
  const raft::MergePlan plan = merge_.plan;
  const std::map<int, NodeId> contacts = merge_.contact;
  auto idx = Propose(raft::ConfMergeOutcome{plan, commit});
  if (!idx.ok()) {
    RLOG_ERROR("merge", "n%u failed to propose outcome: %s", id_,
               idx.status().ToString().c_str());
    return;
  }
  counters_.Add(commit ? "merge.outcome_commit" : "merge.outcome_abort");
  if (merge_.phase == MergePhase::kCommitting && merge_.plan.tx == plan.tx) {
    SendCommits();
    return;
  }
  // The synchronous apply already resolved the transaction locally and tore
  // the runtime down (abort, or commit finished by collected acks). Tell
  // the participants once from the captured state so recorded CTX' holders
  // are not left waiting; MergeTick no longer retries for this tx.
  for (const auto& [sj, contact] : contacts) {
    (void)sj;
    Send(contact, MakeCommitReq(id_, plan, commit));
  }
}

void Node::HandleMergeCommitReply(NodeId from,
                                  const raft::MergeCommitReply& m) {
  if (role_ != Role::kLeader || merge_.phase != MergePhase::kCommitting) {
    return;
  }
  if (m.tx != merge_.plan.tx) return;
  if (m.retry) {
    if (m.source_index >= 0 && m.leader_hint != kNoNode &&
        m.leader_hint != from) {
      merge_.contact[m.source_index] = m.leader_hint;
      SendCommits();
    }
    return;
  }
  if (!m.ok) return;
  int sj = m.source_index;
  if (sj < 0) {
    // The ack came from a node that cannot name its source: a leader that
    // joined the participant group after it transitioned (commit) or after
    // the transaction cleared (abort) is not in the plan. Attribute the
    // ack to the source we are currently contacting through that node.
    for (const auto& [j, contact] : merge_.contact) {
      if (contact == m.from) {
        sj = j;
        break;
      }
    }
  }
  if (sj < 0) return;
  merge_.commit_acks.insert(sj);
  if (merge_.outcome_applied_self &&
      merge_.commit_acks.size() == merge_.plan.sources.size() - 1) {
    FinishMergeAsCoordinator();
  }
}

void Node::OnMergeOutcomeApplied(const raft::ConfMergeOutcome& oc,
                                 Index index) {
  const raft::MergePlan& plan = oc.plan;
  if (opts_.recorder != nullptr) {
    opts_.recorder->Emit(id_, obs::Name::kMergeOutcomeApplied, obs::TraceCtx{},
                         plan.tx, oc.commit ? 1 : 0);
  }
  if (!oc.commit) {
    // C_abort: clear the pending transaction; normal operation resumes.
    raft::ConfigState cleared = config_.Current();
    cleared.merge_tx.reset();
    cleared.merge_tx_index = 0;
    cleared.merge_decision_ok = false;
    cleared.merge_outcome_index = 0;
    cleared.merge_outcome_commit = false;
    cleared.merge_outcome_plan.reset();
    config_.ForceState(std::move(cleared), index);
    counters_.Add(cid_.merge_aborted);
    int my_source = plan.SourceOf(id_);
    if (my_source == plan.coordinator) {
      // Every coordinator-source member (not just the current leader)
      // remembers the unsettled abort: the cleared config no longer records
      // the tx, so this map is what a *later* leader resumes retransmission
      // from (ResumeUnsettledAbort). Erased cluster-wide when the
      // ConfAbortSettled marker applies.
      unsettled_aborts_[plan.tx] = plan;
      // Coordinator leader: answer the admin now (the outcome is final),
      // but keep the kCommitting runtime alive — mirroring the commit path
      // — until every participant acks the abort. A participant that
      // recorded CTX' would otherwise depend on the one-shot abort fan-out:
      // if that message is lost, its pending transaction blocks every
      // future reconfiguration forever. MergeTick keeps retransmitting.
      if (role_ == Role::kLeader) {
        if (merge_.phase == MergePhase::kIdle || merge_.plan.tx != plan.tx) {
          // Fresh leader that applied the abort before ResumeMergeAsLeader
          // rebuilt the runtime (outcome committed during our election).
          merge_ = MergeRuntime{};
          merge_.plan = plan;
          merge_.retry_countdown = opts_.merge_retry_ticks;
          merge_.contact = DefaultContacts(plan);
        }
        if (merge_.admin_client != kNoNode) {
          ReplyToClient(merge_.admin_client, merge_.admin_req_id,
                        Rejected("merge aborted by participant vote"));
          merge_.admin_client = kNoNode;
        }
        merge_.phase = MergePhase::kCommitting;
        merge_.outcome_is_commit = false;
        merge_.outcome_applied_self = true;
        if (merge_.commit_acks.size() == merge_.plan.sources.size() - 1) {
          FinishMergeAsCoordinator();
        } else {
          SendCommits();
        }
      }
      return;
    }
    // Participant leaders ack the abort so the coordinator can finish.
    if (role_ == Role::kLeader) {
      raft::MergeCommitReply reply;
      reply.from = id_;
      reply.tx = plan.tx;
      reply.source_index = my_source;
      reply.ok = true;
      for (NodeId n :
           plan.sources[static_cast<size_t>(plan.coordinator)].members) {
        Send(n, reply);
      }
    }
    return;
  }

  // Replay during catch-up, not live protocol: a merged cluster's log
  // *begins* with its committed outcome entry, so a node added after the
  // merge (e.g. a recycled spare) replays it while its effective
  // configuration — applied wait-free on append — is already at or past
  // the merged cluster. Running the protocol here would re-transition and,
  // for a non-resumed "participant", retire the node with an empty store
  // mid-membership. Treat the entry as the cluster's genesis instead:
  // adopt the merged range for a blank store (the ConfInit replay rule).
  if (config_.Current().uid == plan.new_uid || plan.SourceOf(id_) < 0) {
    if (machine_->range().empty() || machine_->Size() == 0) {
      machine_->Reset(plan.new_range);
    }
    return;
  }

  // C_new committed: seal this node's data at the pre-merge boundary so the
  // exchanged snapshots of every member of this source are identical.
  // Idempotent: a boot-time replay of the outcome entry must not overwrite
  // the sealed (pre-merge) snapshot with the current store.
  int sealed_source = plan.SourceOf(id_);
  if (exchange_store_.count({plan.tx, sealed_source}) == 0) {
    auto sealed = machine_->TakeSnapshot();
    exchange_store_[{plan.tx, sealed_source}] = sealed;
    // Durable before the transition resets the log: after the reset the
    // sealed blob is the *only* copy of this node's pre-merge data.
    if (storage_ != nullptr) {
      storage_->PersistSealed(plan.tx, sealed_source, sealed);
    }
  }
  // Answer anyone who asked before we sealed.
  auto waiters = exchange_waiters_.find({plan.tx, sealed_source});
  if (waiters != exchange_waiters_.end()) {
    raft::SnapPullReply push;
    push.from = id_;
    push.tx = plan.tx;
    push.source_index = sealed_source;
    push.ready = true;
    push.snap = exchange_store_[{plan.tx, sealed_source}];
    for (NodeId n : waiters->second) Send(n, push);
    exchange_waiters_.erase(waiters);
  }

  int my_source = plan.SourceOf(id_);
  if (my_source == plan.coordinator) {
    // Coordinator cluster applies last (§III-C.1). The leader waits for all
    // 2PC acks, then multicasts MergeFinalize; followers wait for that
    // signal (or infer from E_new traffic in ObserveEt).
    if (role_ == Role::kLeader) {
      if (merge_.phase == MergePhase::kIdle || merge_.plan.tx != plan.tx) {
        // Fresh leader that applied the outcome before ResumeMergeAsLeader
        // rebuilt the runtime (it runs on election; this path covers the
        // outcome committing during our own election round).
        merge_.phase = MergePhase::kCommitting;
        merge_.plan = plan;
        merge_.outcome_is_commit = true;
        merge_.retry_countdown = opts_.merge_retry_ticks;
        merge_.contact = DefaultContacts(plan);
        SendCommits();
      }
      merge_.plan = plan;  // adopt the final plan (with new_epoch)
      merge_.outcome_applied_self = true;
      if (merge_.commit_acks.size() == merge_.plan.sources.size() - 1) {
        FinishMergeAsCoordinator();
      }
    }
    return;
  }

  // Participant: ack the coordinator, then transition immediately.
  if (role_ == Role::kLeader) {
    raft::MergeCommitReply reply;
    reply.from = id_;
    reply.tx = plan.tx;
    reply.source_index = my_source;
    reply.ok = true;
    for (NodeId n :
         plan.sources[static_cast<size_t>(plan.coordinator)].members) {
      Send(n, reply);
    }
  }
  TransitionToMerged(plan);
}

void Node::FinishMergeAsCoordinator() {
  raft::MergePlan plan = merge_.plan;
  if (!merge_.outcome_is_commit) {
    // Abort fully acknowledged: every participant resolved its CTX'. The
    // admin was answered when the abort applied; tear down and replicate a
    // settle marker so every member (and any future leader) drops its
    // retransmission bookkeeping.
    if (merge_.admin_client != kNoNode) {
      ReplyToClient(merge_.admin_client, merge_.admin_req_id,
                    Rejected("merge aborted by participant vote"));
    }
    const TxId tx = plan.tx;
    merge_ = MergeRuntime{};
    if (opts_.recorder != nullptr && merge_span_ != 0) {
      opts_.recorder->EndSpan(id_, obs::Name::kMerge, merge_span_,
                              obs::Outcome::kAborted, tx);
      merge_span_ = 0;
    }
    counters_.Add(cid_.merge_abort_finalized);
    if (unsettled_aborts_.count(tx) > 0) {
      auto idx = Propose(raft::ConfAbortSettled{tx});
      if (!idx.ok()) {
        RLOG_WARN("merge", "n%u could not propose abort settle: %s", id_,
                  idx.status().ToString().c_str());
      }
    }
    return;
  }
  if (merge_.admin_client != kNoNode) {
    ReplyToClient(merge_.admin_client, merge_.admin_req_id, OkStatus());
  }
  raft::MergeFinalize fin;
  fin.from = id_;
  fin.tx = plan.tx;
  for (NodeId n :
       plan.sources[static_cast<size_t>(plan.coordinator)].members) {
    if (n != id_) Send(n, fin);
  }
  merge_ = MergeRuntime{};
  if (opts_.recorder != nullptr && merge_span_ != 0) {
    opts_.recorder->EndSpan(id_, obs::Name::kMerge, merge_span_,
                            obs::Outcome::kOk, plan.tx);
    merge_span_ = 0;
  }
  counters_.Add(cid_.merge_finalized);
  TransitionToMerged(plan);
}

void Node::HandleMergeFinalize(NodeId from, const raft::MergeFinalize& m) {
  (void)from;
  const auto& cfg = config_.Current();
  if (cfg.merge_outcome_index == 0 || !cfg.merge_outcome_commit ||
      !cfg.merge_outcome_plan || cfg.merge_outcome_plan->tx != m.tx) {
    return;
  }
  if (cfg.merge_outcome_index > commit_) {
    // We hold the outcome entry but have not seen it commit; the finalize
    // implies it is committed cluster-wide.
    commit_ = cfg.merge_outcome_index;
    ApplyCommitted();
  }
  // If the apply above ran OnMergeOutcomeApplied as a coordinator follower,
  // we still hold the old config; transition now.
  const auto& cfg2 = config_.Current();
  if (cfg2.merge_outcome_plan && cfg2.merge_outcome_plan->tx == m.tx &&
      cfg2.merge_outcome_index <= applied_) {
    raft::MergePlan plan = *cfg2.merge_outcome_plan;
    TransitionToMerged(plan);
  }
}

void Node::ResumeUnsettledAbort() {
  if (merge_.phase != MergePhase::kIdle) return;
  for (const auto& [tx, plan] : unsettled_aborts_) {
    if (plan.SourceOf(id_) != plan.coordinator) continue;
    merge_ = MergeRuntime{};
    merge_.phase = MergePhase::kCommitting;
    merge_.plan = plan;
    merge_.outcome_is_commit = false;
    merge_.outcome_applied_self = true;  // the abort applied before clearing
    merge_.retry_countdown = opts_.merge_retry_ticks;
    merge_.contact = DefaultContacts(plan);
    counters_.Add(cid_.merge_abort_resumed);
    SendCommits();
    return;  // one transaction at a time; settling chains to the next
  }
}

void Node::ResumeMergeAsLeader() {
  const auto& cfg = config_.Current();
  if (!cfg.merge_tx.has_value()) {
    // No transaction recorded in the config — but an applied abort may
    // still await participant acks (the apply clears the config record).
    ResumeUnsettledAbort();
    return;
  }
  int my_source = cfg.merge_tx->SourceOf(id_);
  if (my_source != cfg.merge_tx->coordinator) return;  // participants react

  merge_ = MergeRuntime{};
  merge_.retry_countdown = opts_.merge_retry_ticks;
  if (cfg.merge_outcome_index > 0 && cfg.merge_outcome_plan) {
    merge_.phase = MergePhase::kCommitting;
    merge_.plan = *cfg.merge_outcome_plan;
    merge_.outcome_is_commit = cfg.merge_outcome_commit;
    merge_.outcome_applied_self = cfg.merge_outcome_index <= applied_;
    merge_.contact = DefaultContacts(merge_.plan);
    SendCommits();
  } else {
    merge_.phase = MergePhase::kPreparing;
    merge_.plan = *cfg.merge_tx;
    merge_.local_tx_applied = cfg.merge_tx_index <= applied_;
    merge_.contact = DefaultContacts(merge_.plan);
    SendPrepares();
  }
  counters_.Add(cid_.merge_resumed);
}

// --------------------------------------------------------------------------
// Transition + snapshot exchange.

void Node::TransitionToMerged(const raft::MergePlan& plan) {
  RLOG_INFO("merge", "n%u transitions to merged cluster (tx=%llu, E=%u)", id_,
            static_cast<unsigned long long>(plan.tx), plan.new_epoch);
  counters_.Add(cid_.merge_transitioned);
  FailPendingClients(Code::kUnavailable);

  raft::ReconfigRecord rec;
  rec.kind = raft::ReconfigRecord::Kind::kMerge;
  rec.epoch = plan.new_epoch;
  rec.uid = plan.new_uid;
  rec.members = plan.ResumeMembers();
  rec.range = plan.new_range;
  history_.push_back(std::move(rec));

  // Arm GC for this merge's sealed snapshots (done reports may already have
  // arrived from fast members — merge, never overwrite, the entry).
  ExchangeGc& gc = exchange_gc_[plan.tx];
  gc.resumed = plan.ResumeMembers();
  gc.targets = plan.AllMembers();
  if (gc.retry_countdown <= 0) gc.retry_countdown = opts_.merge_retry_ticks;

  // The merged cluster starts fresh: the log begins with the C_new entry,
  // committed at term 0 of E_new (§III-C.2 "Resumption").
  term_ = EpochTerm::Make(plan.new_epoch, 0).raw();
  voted_for_ = kNoNode;
  log_.Reset(0, 0);
  raft::LogEntry genesis;
  genesis.index = 1;
  genesis.term = term_;
  genesis.payload = raft::ConfMergeOutcome{plan, true};
  log_.Append(genesis);
  commit_ = 1;
  applied_ = 1;
  snapshot_.reset();

  raft::ConfigState ns;
  ns.mode = raft::ConfigMode::kStable;
  ns.members = plan.ResumeMembers();
  std::sort(ns.members.begin(), ns.members.end());
  ns.range = plan.new_range;
  ns.uid = plan.new_uid;
  config_.ForceState(std::move(ns), 1);

  role_ = Role::kFollower;
  leader_ = kNoNode;
  votes_.clear();
  ClearProgress();
  DropPendingAcks();
  merge_ = MergeRuntime{};
  ResetElectionTimer();
  RegisterWithNaming();

  if (IsRetired()) {
    // Resize-at-merge dropped us; we keep serving our sealed snapshot to
    // the resumed members but hold no merged state ourselves.
    machine_->Reset(KeyRange::Empty());
    PersistExchangeMetaNow();  // the armed GC entry survives reboots
    return;
  }
  StartExchange(plan);
}

void Node::StartExchange(const raft::MergePlan& plan) {
  if (opts_.recorder != nullptr && exchange_span_ == 0) {
    exchange_span_ = opts_.recorder->BeginSpan(
        id_, obs::Name::kMergeExchange, obs::TraceCtx{}, plan.tx);
  }
  Exchange ex;
  ex.plan = plan;
  ex.my_source = plan.SourceOf(id_);
  ex.retry_countdown = opts_.merge_retry_ticks;
  for (size_t j = 0; j < plan.sources.size(); ++j) {
    int sj = static_cast<int>(j);
    auto it = exchange_store_.find({plan.tx, sj});
    if (it != exchange_store_.end()) {
      ex.have[sj] = it->second;
    } else {
      ex.contact[sj] = plan.sources[j].members.front();
    }
  }
  exchange_ = std::move(ex);
  // The pending plan is durable from here: a crash at any point until the
  // assembled store is snapshotted boots back into this exchange.
  PersistExchangeMetaNow();
  // Fan the pull out to every member of each missing source: whichever has
  // sealed its snapshot answers (and the rest push on sealing), so a single
  // lagging contact cannot stall the exchange.
  for (const auto& [sj, contact] : exchange_->contact) {
    (void)contact;
    if (opts_.recorder != nullptr && exchange_span_ != 0) {
      opts_.recorder->Emit(id_, obs::Name::kExchangePull, obs::TraceCtx{},
                           exchange_->plan.tx, static_cast<uint64_t>(sj));
    }
    for (NodeId n :
         exchange_->plan.sources[static_cast<size_t>(sj)].members) {
      if (n == id_) continue;
      raft::SnapPullReq req;
      req.from = id_;
      req.tx = exchange_->plan.tx;
      req.source_index = sj;
      Send(n, req);
    }
  }
  MaybeFinishExchange();
}

void Node::ExchangeTick() {
  if (!exchange_.has_value()) return;
  if (--exchange_->retry_countdown > 0) return;
  exchange_->retry_countdown = opts_.merge_retry_ticks;
  for (auto& [sj, contact] : exchange_->contact) {
    (void)contact;
    if (exchange_->have.count(sj) > 0) continue;
    for (NodeId n :
         exchange_->plan.sources[static_cast<size_t>(sj)].members) {
      if (n == id_) continue;
      raft::SnapPullReq req;
      req.from = id_;
      req.tx = exchange_->plan.tx;
      req.source_index = sj;
      Send(n, req);
    }
  }
}

void Node::HandleSnapPullReq(NodeId from, const raft::SnapPullReq& m) {
  raft::SnapPullReply reply;
  reply.from = id_;
  reply.tx = m.tx;
  reply.source_index = m.source_index;
  auto it = exchange_store_.find({m.tx, m.source_index});
  if (it != exchange_store_.end()) {
    reply.ready = true;
    reply.snap = it->second;
  } else {
    // Not sealed yet (e.g. a deferring coordinator-cluster member): push
    // the snapshot the moment it becomes available.
    exchange_waiters_[{m.tx, m.source_index}].insert(from);
  }
  Send(from, std::move(reply));
}

void Node::HandleSnapPullReply(NodeId from, const raft::SnapPullReply& m) {
  (void)from;
  if (!exchange_.has_value() || exchange_->plan.tx != m.tx) return;
  if (!m.ready || !m.snap) return;
  exchange_->have[m.source_index] = m.snap;
  MaybeFinishExchange();
}

void Node::MaybeFinishExchange() {
  if (!exchange_.has_value()) return;
  if (exchange_->have.size() < exchange_->plan.sources.size()) return;

  // Assemble the merged state: restore the lowest range, then absorb the
  // rest in key order (ranges are adjacent by construction).
  std::vector<sm::SnapshotPtr> snaps;
  snaps.reserve(exchange_->have.size());
  for (const auto& [sj, snap] : exchange_->have) snaps.push_back(snap);
  std::sort(snaps.begin(), snaps.end(),
            [](const sm::SnapshotPtr& a, const sm::SnapshotPtr& b) {
              return a->range.lo() < b->range.lo();
            });
  if (Status s = machine_->Restore(*snaps.front()); !s.ok()) {
    RLOG_ERROR("merge", "n%u snapshot restore failed: %s", id_,
               s.ToString().c_str());
  }
  for (size_t i = 1; i < snaps.size(); ++i) {
    Status s = machine_->MergeIn(*snaps[i]);
    if (!s.ok()) {
      RLOG_ERROR("merge", "n%u snapshot merge failed: %s", id_,
                 s.ToString().c_str());
    }
  }
  raft::MergePlan plan = exchange_->plan;
  exchange_.reset();
  if (opts_.recorder != nullptr && exchange_span_ != 0) {
    opts_.recorder->Emit(id_, obs::Name::kExchangeDone, obs::TraceCtx{},
                         plan.tx, machine_->Size());
    opts_.recorder->EndSpan(id_, obs::Name::kMergeExchange, exchange_span_,
                            obs::Outcome::kOk, plan.tx);
    exchange_span_ = 0;
  }
  counters_.Add(cid_.merge_exchange_done);
  RLOG_INFO("merge", "n%u finished snapshot exchange (%zu items)", id_,
            machine_->Size());
  // Announce completion so holders can GC their sealed snapshots once every
  // resumed member is through (retransmitted from ExchangeGcTick until this
  // node prunes its own copy).
  {
    ExchangeGc& gc = exchange_gc_[plan.tx];  // armed in TransitionToMerged
    gc.self_done = true;
    gc.done.insert(id_);
    gc.retry_countdown = opts_.merge_retry_ticks;
    raft::ExchangeDone ann;
    ann.from = id_;
    ann.tx = plan.tx;
    for (NodeId n : gc.targets) {
      if (n != id_) Send(n, ann);
    }
  }
  MaybePruneExchange(plan.tx);
  // Entries replicated while we were exchanging can now apply.
  ApplyCommitted();
  // Compact through the merged log's genesis: the outcome entry carries no
  // data (the store was assembled from exchanged snapshots just now), so a
  // member added to the merged cluster later must catch up via
  // InstallSnapshot — which carries the store — rather than replaying a
  // data-less log.
  snapshot_ = BuildSnapshot();
  if (storage_ != nullptr) storage_->InstallSnapshot(snapshot_);
  log_.CompactTo(snapshot_->last_index, snapshot_->last_term);
  counters_.Add(cid_.log_compactions);
  // Only now — with the assembled store durable in the snapshot — may the
  // pending-exchange marker clear: a crash a moment earlier boots back
  // into the exchange and re-pulls, a crash after boots from the snapshot.
  PersistExchangeMetaNow();
  ResetElectionTimer();
  // Expedite the first election of the merged cluster: the lowest resumed
  // member campaigns immediately instead of waiting for a full election
  // timeout (a deterministic choice, so no duelling candidates). Everyone
  // else keeps the normal randomized timeout as the fallback.
  auto resume = plan.ResumeMembers();
  if (!resume.empty() && id_ == *std::min_element(resume.begin(), resume.end()) &&
      role_ == Role::kFollower && leader_ == kNoNode && CanCampaign()) {
    StartElection();
  }
}

// --------------------------------------------------------------------------
// Exchange-store garbage collection: without it every merge a node
// participates in leaves one sealed snapshot behind forever, so chained
// merges grow exchange_store_ without bound.

void Node::HandleExchangeDone(NodeId from, const raft::ExchangeDone& m) {
  auto it = exchange_gc_.find(m.tx);
  if (it == exchange_gc_.end()) {
    auto held = exchange_store_.lower_bound({m.tx, -1});
    bool holds = held != exchange_store_.end() && held->first.first == m.tx;
    if (!holds) {
      // Nothing retained for this tx: either we already pruned (every
      // resumed member had reported done) or we were wiped since. Echo our
      // own completion so the sender — who may have missed our broadcast —
      // does not retransmit forever.
      raft::ExchangeDone echo;
      echo.from = id_;
      echo.tx = m.tx;
      Send(from, echo);
      return;
    }
    // Sealed but not yet transitioned (e.g. a deferring coordinator-cluster
    // member): buffer the report; TransitionToMerged fills the member lists.
    it = exchange_gc_.emplace(m.tx, ExchangeGc{}).first;
  }
  bool grew = it->second.done.insert(from).second;
  MaybePruneExchange(m.tx);
  if (grew) PersistExchangeMetaNow();
}

void Node::ExchangeGcTick() {
  for (auto& [tx, gc] : exchange_gc_) {
    if (!gc.self_done) continue;  // only completed members gossip
    if (--gc.retry_countdown > 0) continue;
    gc.retry_countdown = opts_.merge_retry_ticks;
    raft::ExchangeDone ann;
    ann.from = id_;
    ann.tx = tx;
    for (NodeId n : gc.targets) {
      if (n != id_) Send(n, ann);
    }
  }
}

void Node::MaybePruneExchange(TxId tx) {
  auto it = exchange_gc_.find(tx);
  if (it == exchange_gc_.end()) return;
  const ExchangeGc& gc = it->second;
  if (gc.resumed.empty()) return;  // member lists unknown until transition
  for (NodeId n : gc.resumed) {
    if (gc.done.count(n) == 0) return;
  }
  // Every resumed member holds the merged state: the sealed snapshots can
  // never be pulled again (a restarting member resumes its exchange from
  // peers that finished, i.e. from their live stores via InstallSnapshot).
  for (auto e = exchange_store_.lower_bound({tx, -1});
       e != exchange_store_.end() && e->first.first == tx;) {
    e = exchange_store_.erase(e);
  }
  for (auto w = exchange_waiters_.lower_bound({tx, -1});
       w != exchange_waiters_.end() && w->first.first == tx;) {
    w = exchange_waiters_.erase(w);
  }
  exchange_gc_.erase(it);
  if (storage_ != nullptr) {
    storage_->PruneSealed(tx);
    PersistExchangeMetaNow();
  }
  counters_.Add(cid_.merge_exchange_pruned);
}

}  // namespace recraft::core
