// The ReCraft split protocol (§III-B): SplitEnterJoint, SplitLeaveJoint,
// the CommitNotify multicast, and split completion (epoch bump + shrink).
#include "common/logging.h"
#include "core/node.h"

namespace recraft::core {

Status Node::StartSplit(const raft::AdminSplit& req) {
  if (!opts_.enable_recraft) return Rejected("recraft features disabled");
  if (role_ != Role::kLeader) return NotLeader();
  if (Status s = CheckReconfigPreconditions(); !s.ok()) return s;

  const auto& cfg = config_.Current();
  if (req.groups.size() < 2) return Rejected("split needs >= 2 groups");
  if (req.split_keys.size() + 1 != req.groups.size()) {
    return Rejected("split needs groups-1 split keys");
  }

  // The groups must partition the current membership exactly: every member
  // in exactly one group, no strangers.
  std::set<NodeId> seen;
  size_t total = 0;
  for (const auto& g : req.groups) {
    if (g.empty()) return Rejected("empty subcluster group");
    for (NodeId n : g) {
      if (!cfg.IsMember(n)) {
        return Rejected("node " + std::to_string(n) + " not a member");
      }
      if (!seen.insert(n).second) {
        return Rejected("node " + std::to_string(n) + " in two groups");
      }
      ++total;
    }
  }
  if (total != cfg.members.size()) {
    return Rejected("groups must cover all members");
  }

  auto ranges = cfg.range.SplitAt(req.split_keys);
  if (!ranges.ok()) return ranges.status();

  raft::SplitPlan plan;
  uint32_t next_epoch = current_et().epoch() + 1;
  for (size_t i = 0; i < req.groups.size(); ++i) {
    raft::SubCluster sub;
    sub.members = req.groups[i];
    std::sort(sub.members.begin(), sub.members.end());
    sub.range = (*ranges)[i];
    sub.uid = raft::DeriveSplitUid(cfg.uid, next_epoch, static_cast<int>(i));
    plan.subs.push_back(std::move(sub));
  }

  // SplitEnterJoint (Fig. 2): propose C_joint; it applies wait-free on
  // append, changing the election quorum to joint-over-subclusters while
  // commits keep using C_old.
  auto idx = Propose(raft::ConfSplitJoint{std::move(plan)});
  if (!idx.ok()) return idx.status();
  if (opts_.recorder != nullptr) {
    split_span_ = opts_.recorder->BeginSpan(id_, obs::Name::kSplit, cur_ctx_,
                                            req.groups.size());
  }
  counters_.Add(cid_.split_enter_joint);
  RLOG_INFO("split", "n%u proposed C_joint at %llu", id_,
            static_cast<unsigned long long>(*idx));
  return OkStatus();
}

void Node::OnSplitJointCommitted(Index index) {
  const auto& cfg = config_.Current();
  if (opts_.recorder != nullptr && split_span_ != 0) {
    opts_.recorder->Emit(id_, obs::Name::kSplitJointCommitted,
                         obs::TraceCtx{}, index);
  }
  if (role_ != Role::kLeader) return;
  if (cfg.mode != raft::ConfigMode::kSplitJoint || cfg.joint_index != index) {
    return;  // superseded (e.g. we are already leaving)
  }
  Status s = ProposeSplitLeaveJoint();
  if (!s.ok()) {
    RLOG_WARN("split", "n%u leave-joint failed: %s", id_,
              s.ToString().c_str());
  }
}

Status Node::ProposeSplitLeaveJoint() {
  const auto& cfg = config_.Current();
  // SplitLeaveJoint preconditions (Fig. 2 line 21): in joint mode and the
  // C_joint entry committed.
  if (cfg.mode != raft::ConfigMode::kSplitJoint) {
    return Rejected("not in split joint mode");
  }
  if (cfg.joint_index > commit_) return Rejected("C_joint not committed");
  auto idx = Propose(raft::ConfSplitNew{cfg.split});
  if (!idx.ok()) return idx.status();
  if (opts_.recorder != nullptr && split_span_ != 0) {
    opts_.recorder->Emit(id_, obs::Name::kSplitLeaveProposed, obs::TraceCtx{},
                         *idx);
  }
  counters_.Add(cid_.split_leave_joint);
  RLOG_INFO("split", "n%u proposed split C_new at %llu", id_,
            static_cast<unsigned long long>(*idx));
  return OkStatus();
}

void Node::CompleteSplit() {
  const auto cfg = config_.Current();  // copy: we rewrite the tracker below
  if (cfg.mode != raft::ConfigMode::kSplitLeaving) return;
  const Index cnew_index = cfg.cnew_index;
  const uint64_t cnew_term = log_.TermAt(cnew_index);
  int sub_idx = cfg.split.SubOf(id_);
  if (sub_idx < 0) {
    RLOG_ERROR("split", "n%u not in any subcluster of committed split", id_);
    return;
  }
  const raft::SubCluster mine = cfg.split.subs[static_cast<size_t>(sub_idx)];
  const bool was_leader = role_ == Role::kLeader;

  // SplitLeaveJoint line 30: the leader notifies all C_old members of the
  // commit so sibling subclusters can leave joint mode and elect leaders.
  if (was_leader && opts_.enable_commit_notify) {
    raft::CommitNotify cn;
    cn.et = term_;
    cn.from = id_;
    cn.cnew_index = cnew_index;
    cn.cnew_term = cnew_term;
    for (NodeId n : cfg.members) {
      if (n != id_) Send(n, cn);
    }
  }

  // Answer the admin that requested the split.
  if (split_admin_client_ != kNoNode) {
    ReplyToClient(split_admin_client_, split_admin_req_id_, OkStatus());
    split_admin_client_ = kNoNode;
    split_admin_req_id_ = 0;
  }

  // The post-split epoch derives from the C_new entry's own epoch (one past
  // it), NOT from the node's current term: a boot-from-storage replay runs
  // this handler with the *restored* post-split term already in place, and
  // deriving from current_et() would bump the epoch a second time. In live
  // runs the two are identical (the epoch cannot change between appending
  // and applying C_new).
  uint32_t new_epoch = raft::EpochTerm(cnew_term).epoch() + 1;
  RLOG_INFO("split", "n%u completes split into sub %d %s at epoch %u", id_,
            sub_idx, mine.ToString().c_str(), new_epoch);

  // Shrink the state machine to the subcluster's range.
  (void)machine_->RestrictRange(mine.range);

  raft::ConfigState ns;
  ns.mode = raft::ConfigMode::kStable;
  ns.members = mine.members;
  ns.range = mine.range;
  ns.uid = mine.uid;
  config_.ForceState(std::move(ns), cnew_index);

  bool replayed = false;  // already completed before a crash+reboot
  for (const auto& prior : history_) {
    if (prior.epoch == new_epoch && prior.uid == mine.uid) replayed = true;
  }
  if (!replayed) {
    raft::ReconfigRecord rec;
    rec.kind = raft::ReconfigRecord::Kind::kSplit;
    rec.epoch = new_epoch;
    rec.uid = mine.uid;
    rec.members = mine.members;
    rec.range = mine.range;
    rec.boundary_index = cnew_index;
    history_.push_back(std::move(rec));
  }

  // Epoch bump; each node carries its own term number into the new epoch so
  // stale leaders of distinct old terms stay distinguishable (election
  // safety per (cluster, epoch, term)). On a replay whose restored term is
  // already at (or past) the new epoch this is a no-op — in particular the
  // vote must NOT reset, or a rebooted node could double-vote in a term it
  // already voted in.
  if (current_et().epoch() < new_epoch) {
    term_ = EpochTerm::Make(new_epoch, current_et().term()).raw();
    voted_for_ = kNoNode;
  }
  if (opts_.recorder != nullptr && split_span_ != 0) {
    opts_.recorder->EndSpan(id_, obs::Name::kSplit, split_span_,
                            obs::Outcome::kOk, new_epoch);
    split_span_ = 0;
  }
  counters_.Add(cid_.split_completed);

  Role prior = role_;
  role_ = Role::kFollower;
  leader_ = kNoNode;
  votes_.clear();
  ClearProgress();
  if (prior == Role::kLeader) FailPendingClients(Code::kNotLeader);
  ResetElectionTimer();
  RegisterWithNaming();

  // The old leader campaigns immediately in its subcluster: it is the most
  // up-to-date node, so the subcluster resumes within one round trip and
  // the split causes no visible throughput dip (Fig. 7a).
  if (was_leader) StartElection();
}

void Node::HandleCommitNotify(NodeId from, const raft::CommitNotify& m) {
  EpochTerm met(m.et);
  const auto& cfg = config_.Current();
  if (met.epoch() < current_et().epoch()) return;  // we already moved on
  if (cfg.mode == raft::ConfigMode::kSplitLeaving &&
      cfg.cnew_index == m.cnew_index &&
      log_.Matches(m.cnew_index, m.cnew_term)) {
    commit_ = std::max(commit_, m.cnew_index);
    ApplyCommitted();  // CompleteSplit fires when the C_new entry applies
    return;
  }
  if (commit_ < m.cnew_index) {
    // We miss the split C_new entry (or the whole split): catch up by
    // pulling committed entries from the notifier.
    StartPull(from);
  }
}

}  // namespace recraft::core
