// The ReCraft consensus node: complete Raft (leader election, log
// replication, snapshots, membership change) extended with the paper's
// self-contained reconfigurations:
//
//  * split   — SplitEnterJoint / SplitLeaveJoint with distinct election and
//              commit quorums, CommitNotify multicast, epoch bump (§III-B);
//  * merge   — cluster-level 2PC (prepare / commit-abort) through each
//              cluster's own log, snapshot exchange, resumption at
//              (E_new, term 0) (§III-C);
//  * membership — AddAndResize / RemoveAndResize / ResizeQuorum (§IV), plus
//              vanilla Raft AR-RPC and joint consensus as baselines;
//  * recovery — pull-based catch-up across epochs, reconfiguration history,
//              and the naming-service fallback (§III-B, §V).
//
// The node is driven entirely by Tick() and Receive(); all outbound traffic
// goes through the send callback. It is deterministic given its RNG seed.
#pragma once

#include <cassert>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "common/metrics.h"
#include "common/rng.h"
#include "obs/trace.h"
#include "raft/config.h"
#include "raft/config_tracker.h"
#include "raft/epoch_term.h"
#include "raft/log.h"
#include "raft/messages.h"
#include "sm/state_machine.h"
#include "storage/storage.h"

namespace recraft::core {

using raft::EpochTerm;

struct Options {
  Duration tick_interval = 10 * kMillisecond;
  int heartbeat_ticks = 1;              // heartbeat every N ticks
  int election_timeout_min_ticks = 10;  // randomized in [min, max]
  int election_timeout_max_ticks = 20;
  size_t max_entries_per_append = 128;
  size_t max_inflight_appends = 16;  // per-follower pipelining depth
  /// Auto-propose ResizeQuorum after an Add/RemoveAndResize commits with a
  /// non-majority quorum (the paper presents them as separate RPCs; chaining
  /// is the common deployment).
  bool auto_resize_quorum = true;
  /// Auto-propose JointLeave after a JointEnter commits (vanilla JC flow).
  bool auto_joint_leave = true;
  /// Take a snapshot and compact the log every this many applied entries
  /// (0 disables automatic compaction).
  size_t snapshot_threshold = 0;
  int pull_retry_ticks = 15;
  int merge_retry_ticks = 10;    // 2PC and snapshot-exchange retransmission
  /// Ticks of total silence (no leader, failed elections, failed pulls)
  /// before falling back to the naming service (§V). 0 disables.
  int naming_fallback_ticks = 0;
  NodeId naming_service = kNoNode;
  /// When false the node behaves as a plain Raft/etcd node: split, merge and
  /// the resize RPC family are rejected and epochs never change. Used for
  /// the Fig. 6 overhead comparison.
  bool enable_recraft = true;
  /// Record every applied entry for the harness's safety checkers. Off by
  /// default (benches would accumulate unbounded traces).
  bool trace_applied = false;
  /// Ablation switches (bench/ablation_design): disable the CommitNotify
  /// multicast after a split commit, or the pull recovery path entirely.
  bool enable_commit_notify = true;
  bool enable_pull = true;
  /// Leader-side client-request admission per tick (0 = unlimited). Models
  /// the per-node processing/storage bottleneck of the paper's testbed
  /// (512 B writes on Ceph volumes): a saturated cluster's throughput then
  /// scales by splitting, as in Fig. 7a. ReadIndex reads are exempt: they
  /// never touch the log or the WAL.
  size_t max_client_requests_per_tick = 0;
  /// Constructs the node's replicated state machine. The node is state-
  /// machine-agnostic; the harness injects the machine type world-wide
  /// (the KV machine by default, the queue machine, ...).
  sm::MachineFactory machine_factory;
  /// Ticks between retransmissions of an unanswered ReadIndex probe round.
  int read_probe_retry_ticks = 3;
  /// Armed flight recorder (obs/trace.h) shared by the whole world; null =
  /// disarmed. Strictly observational: the node emits trace records and
  /// opens protocol spans through it, but no recorded value ever feeds back
  /// into behavior, so the execution digest is identical either way.
  obs::Recorder* recorder = nullptr;
};

enum class Role : uint8_t { kFollower = 0, kCandidate, kLeader };
const char* RoleName(Role r);

/// Coordinator-side 2PC phase, exposed for fault-injection benches (Table I).
enum class MergePhase : uint8_t {
  kIdle = 0,
  kPreparing,   // CTX' proposed, collecting prepare replies
  kCommitting,  // outcome proposed, collecting commit acks
};

class Node {
 public:
  /// Outbound transport. The callback must deliver asynchronously: it must
  /// NOT call back into this node (Receive/Tick) synchronously, because
  /// handlers invoke Send while holding references into internal maps
  /// (progress_, pending_, merge_ state). The simulator satisfies this by
  /// routing every send through the event queue.
  using SendFn = std::function<void(NodeId to, raft::MessagePtr msg)>;

  /// `genesis` must list the initial members (including `id` unless the node
  /// starts as a learner-to-be-added) with a valid range and uid. `storage`
  /// (optional, non-owning, must outlive the node) receives every durable
  /// mutation from the start — including the genesis entry.
  Node(NodeId id, Options opts, raft::ConfigState genesis, Rng rng,
       SendFn send, storage::Storage* storage = nullptr);

  /// Boot purely from durable state: replays `storage`'s WAL/snapshot into
  /// a fresh node (hard state, log, KV store, configuration, merge-exchange
  /// runtime) with no access to any previous incarnation's memory. The
  /// harness's CrashNode/RestartNode pair is built on this.
  Node(NodeId id, Options opts, storage::Storage* storage, Rng rng,
       SendFn send);

  // --- simulator driver -------------------------------------------------
  void Tick();
  /// `ctx` is the sender's causal trace context (from the network's
  /// delivery handler); outbound sends triggered by this message inherit
  /// it, so a client op can be followed across the replication fan-out.
  void Receive(NodeId from, const raft::Message& m, obs::TraceCtx ctx = {});
  /// Invoked by the storage backend (from the top of the event loop) when a
  /// group-commit flush completes: releases durability-gated follower acks
  /// and re-runs the leader's commit accounting.
  void OnStorageDurable();

  /// Crash/restart. Persistent state (term, vote, log, commit, applied
  /// machine state, configuration, history) survives; volatile leadership
  /// state, timers and pending client replies/reads do not.
  void OnCrash();
  void OnRestart();

  // --- introspection ----------------------------------------------------
  NodeId id() const { return id_; }
  Role role() const { return role_; }
  bool IsLeader() const { return role_ == Role::kLeader; }
  EpochTerm current_et() const { return EpochTerm(term_); }
  uint32_t epoch() const { return current_et().epoch(); }
  Index commit_index() const { return commit_; }
  Index last_applied() const { return applied_; }
  Index last_log_index() const { return log_.last_index(); }
  const raft::RaftLog& log() const { return log_; }
  const raft::ConfigState& config() const { return config_.Current(); }
  ClusterUid cluster_uid() const { return config().uid; }
  /// The replicated state machine (opaque to the consensus core). Tests
  /// that need the concrete type downcast via the machine's Name().
  const sm::StateMachine& machine() const { return *machine_; }
  sm::StateMachine& machine() { return *machine_; }
  /// Linearizable reads waiting for quorum confirmation / apply catch-up.
  size_t pending_read_count() const { return pending_reads_.size(); }
  NodeId leader_hint() const { return leader_; }
  MergePhase merge_phase() const { return merge_.phase; }
  bool merge_exchange_pending() const { return exchange_.has_value(); }
  /// Sealed merge snapshots still retained for data exchange. Bounded by
  /// the ExchangeDone gossip (see merge.cpp): entries are pruned once every
  /// resumed member reports its exchange complete.
  size_t exchange_store_size() const { return exchange_store_.size(); }
  /// Aborted merges this coordinator-source member still tracks for
  /// retransmission (cleared by the replicated ConfAbortSettled marker).
  size_t unsettled_abort_count() const { return unsettled_aborts_.size(); }
  storage::Storage* storage() { return storage_; }
  bool IsRetired() const { return !config().IsMember(id_); }
  const std::vector<raft::ReconfigRecord>& history() const { return history_; }
  CounterSet& counters() { return counters_; }
  const CounterSet& counters() const { return counters_; }
  const Options& options() const { return opts_; }

  /// The key range this node would currently accept client commands for.
  const KeyRange& EffectiveRange() const;

  /// Entries applied so far, for the harness's safety checkers: calls `fn`
  /// for each applied (cluster uid, epoch, index, entry) tuple since the
  /// last drain.
  struct AppliedRecord {
    ClusterUid uid;
    uint32_t epoch;
    Index index;
    uint64_t term;
    size_t payload_hash;
    bool is_cmd = false;
    sm::Command cmd;  // valid when is_cmd (opaque; checkers decode)
  };
  std::vector<AppliedRecord> DrainApplied() { return std::move(applied_trace_); }

 private:
  friend class NodeTestPeer;

  // -- helpers (node.cpp) -------------------------------------------------
  void InternCounters();
  void TickBody();
  void Send(NodeId to, raft::Message m);
  void ResetElectionTimer();
  /// Persist (term, vote, commit) if any changed since the last persist.
  /// Called from the Tick/Receive epilogues — the single chokepoint through
  /// which every hard-state mutation reaches storage before any message
  /// sent by the same event can be delivered.
  void MaybePersistHard();
  /// Drop durability-gated acks whose log positions were invalidated
  /// (truncation, snapshot install, log reset).
  void DropPendingAcks();
  /// Rebuild the node from storage_->Load(): install the snapshot, replay
  /// the log into the config tracker, re-seed the merge-exchange runtime,
  /// then apply committed entries to rebuild the KV store (recovery.cpp).
  void BootFromStorage();
  /// Serialize the current exchange_/exchange_gc_ state to storage.
  void PersistExchangeMetaNow();
  bool CanCampaign() const;
  void BecomeFollower(EpochTerm et, NodeId leader);
  /// Handle an incoming epoch-term: adopt same-epoch higher terms, trigger
  /// split completion or pull recovery for higher epochs. Returns true if
  /// the message should continue to be processed under the (possibly
  /// updated) local term.
  bool ObserveEt(EpochTerm et, NodeId from);
  void ApplyCommitted();
  void ApplyEntry(const raft::LogEntry& e);
  void RecordApplied(const raft::LogEntry& e);
  void FailPendingClients(Code code);
  void ReplyToClient(NodeId client, uint64_t req_id, Status s,
                     std::string value = {}, obs::TraceCtx ctx = {});
  void RegisterWithNaming();

  // -- election (election.cpp) ---------------------------------------------
  void StartElection();
  void BecomeLeader();
  void HandleRequestVote(NodeId from, const raft::RequestVote& m);
  void HandleVoteReply(NodeId from, const raft::VoteReply& m);

  // -- replication (replication.cpp) ----------------------------------------
  struct Progress {
    Index next = 1;
    Index match = 0;
    size_t inflight = 0;
    bool snapshotting = false;
    int ticks_since_ack = 0;  // for the leader's quorum check (lease)
  };
  std::vector<NodeId> ReplicationTargets() const;
  /// Leader-side progress lookup that cannot dangle or resurrect: returns
  /// nullptr unless this node leads and `peer` is a current replication
  /// target (tracking state is created lazily for newly added members).
  /// Any call that can apply committed entries (AdvanceCommit,
  /// ApplyCommitted, Propose, ObserveEt) invalidates the returned pointer —
  /// re-fetch after such calls.
  Progress* LeaderProgress(NodeId peer);
  /// The only teardown path for progress_. Bumps progress_gen_ so
  /// WithProgress can assert that no reconfiguration invalidated a live
  /// reference.
  void ClearProgress();
  /// Drops tracking state for peers outside the current replication target
  /// set (after a committed member removal): their straggler replies must
  /// not keep replication traffic flowing across the membership boundary.
  void PruneProgress();
  /// Runs `fn(Progress&)` for `peer` if this node leads and tracks it;
  /// returns false otherwise. The safe default for reply handlers: mutate
  /// tracking fields inside `fn`, run anything that can reenter the apply
  /// path (AdvanceCommit, MaybeSendAppend, Propose) only after it returns.
  /// A debug assertion catches callbacks that mutate progress_ underneath
  /// their own reference — the reconfig-reentrancy use-after-free class.
  template <typename Fn>
  bool WithProgress(NodeId peer, Fn&& fn) {
    if (role_ != Role::kLeader) return false;
    auto it = progress_.find(peer);
    if (it == progress_.end()) return false;
    const uint64_t gen = progress_gen_;
    fn(it->second);
    (void)gen;
    assert(gen == progress_gen_ &&
           "progress_ cleared while a Progress& was live; move the "
           "reentrant call out of the WithProgress callback");
    return true;
  }
  void BroadcastAppend(bool heartbeat);
  void MaybeSendAppend(NodeId peer, bool force_empty);
  void HandleAppendEntries(NodeId from, const raft::AppendEntries& m);
  void HandleAppendReply(NodeId from, const raft::AppendReply& m);
  void HandleInstallSnapshot(NodeId from, const raft::InstallSnapshot& m);
  void HandleInstallSnapshotReply(NodeId from,
                                  const raft::InstallSnapshotReply& m);
  void AdvanceCommit();
  Result<Index> Propose(raft::Payload payload);
  void MaybeCompact();
  raft::RaftSnapshotPtr BuildSnapshot() const;

  // -- client/admin (node.cpp) ----------------------------------------------
  void HandleClientRequest(NodeId from, const raft::ClientRequest& m);
  void HandleRangeSnapReq(NodeId from, const raft::RangeSnapReq& m);
  void HandleBootstrapReq(NodeId from, const raft::BootstrapReq& m);
  /// Wipe all state and restart as a member of a freshly bootstrapped
  /// cluster (TC baseline's "install snapshot + config and restart" step).
  void Reinit(const raft::ConfigState& genesis, sm::SnapshotPtr data);

  // -- linearizable reads (read.cpp): the ReadIndex path --------------------
  /// Register a read: capture read_index = commit_, confirm leadership with
  /// a probe round, serve from the applied machine state. Zero log entries.
  void HandleReadRequest(NodeId from, uint64_t req_id,
                         const raft::ReadRequest& m);
  void HandleReadIndexProbe(NodeId from, const raft::ReadIndexProbe& m);
  void HandleReadIndexAck(NodeId from, const raft::ReadIndexAck& m);
  /// Serve every read whose probe round confirmed and whose read_index has
  /// been applied; then launch the next probe round if reads are waiting.
  void ServeConfirmedReads();
  void MaybeLaunchReadProbe();
  void BroadcastReadProbe();
  void FailPendingReads(Code code);
  void ReadTick();

  // -- membership (membership.cpp) -------------------------------------------
  Status CheckReconfigPreconditions() const;
  Status ValidateMemberChange(const raft::MemberChange& mc) const;
  Status StartMemberChange(const raft::MemberChange& mc);
  void OnMemberChangeCommitted(const raft::ConfMember& cm, Index index);

  // -- split (split.cpp) ------------------------------------------------------
  Status StartSplit(const raft::AdminSplit& req);
  Status ProposeSplitLeaveJoint();
  void OnSplitJointCommitted(Index index);
  void CompleteSplit();
  void HandleCommitNotify(NodeId from, const raft::CommitNotify& m);

  // -- merge (merge.cpp) ------------------------------------------------------
  struct MergeRuntime {
    MergePhase phase = MergePhase::kIdle;
    raft::MergePlan plan;
    bool local_tx_applied = false;
    std::map<int, raft::MergePrepareReply> prepare_replies;
    std::set<int> commit_acks;
    bool outcome_is_commit = false;
    bool outcome_applied_self = false;
    std::map<int, NodeId> contact;  // per-source current contact node
    int retry_countdown = 0;
    uint64_t admin_req_id = 0;
    NodeId admin_client = kNoNode;
  };
  /// Snapshot-exchange state after a committed merge (all members).
  struct Exchange {
    raft::MergePlan plan;
    int my_source = -1;
    std::map<int, sm::SnapshotPtr> have;
    std::map<int, NodeId> contact;
    int retry_countdown = 0;
  };
  /// Post-merge pruning of exchange_store_: every participant (resumed or
  /// retired by resize-at-merge) tracks which resumed members finished
  /// their snapshot exchange; once all have, the sealed snapshots for that
  /// transaction are dropped. Members that finished gossip ExchangeDone
  /// (retransmitted until they prune, so a lost message only delays GC).
  struct ExchangeGc {
    std::vector<NodeId> resumed;  // must all report done before pruning
    std::vector<NodeId> targets;  // broadcast set: every plan member
    std::set<NodeId> done;
    bool self_done = false;       // this node finished and broadcasts
    int retry_countdown = 0;
  };
  Status StartMerge(const raft::AdminMerge& req, uint64_t req_id,
                    NodeId client);
  void HandleMergePrepareReq(NodeId from, const raft::MergePrepareReq& m);
  void HandleMergePrepareReply(NodeId from, const raft::MergePrepareReply& m);
  void HandleMergeCommitReq(NodeId from, const raft::MergeCommitReq& m);
  void HandleMergeCommitReply(NodeId from, const raft::MergeCommitReply& m);
  void HandleMergeFinalize(NodeId from, const raft::MergeFinalize& m);
  void HandleSnapPullReq(NodeId from, const raft::SnapPullReq& m);
  void HandleSnapPullReply(NodeId from, const raft::SnapPullReply& m);
  void OnMergeTxApplied(const raft::ConfMergeTx& tx, Index index);
  void OnMergeOutcomeApplied(const raft::ConfMergeOutcome& oc, Index index);
  void MaybeFinishPrepare();
  void ProposeMergeOutcome(bool commit);
  void SendPrepares();
  void SendCommits();
  void ResumeMergeAsLeader();
  /// A fresh coordinator-cluster leader resumes retransmitting a fully
  /// applied abort whose participant acks are still outstanding (the config
  /// no longer records the tx; unsettled_aborts_ does).
  void ResumeUnsettledAbort();
  void TransitionToMerged(const raft::MergePlan& plan);
  void MergeTick();
  void StartExchange(const raft::MergePlan& plan);
  void ExchangeTick();
  void MaybeFinishExchange();
  void FinishMergeAsCoordinator();
  void HandleExchangeDone(NodeId from, const raft::ExchangeDone& m);
  void ExchangeGcTick();
  void MaybePruneExchange(TxId tx);

  // -- recovery (recovery.cpp) -------------------------------------------------
  void StartPull(NodeId target);
  void PullTick();
  void HandlePullRequest(NodeId from, const raft::PullRequest& m);
  void HandlePullReply(NodeId from, const raft::PullReply& m);
  void HandleNamingLookupReply(const raft::NamingLookupReply& m);
  void InstallSnapshotState(const raft::RaftSnapshot& snap, EpochTerm et);

  // -- state ---------------------------------------------------------------
  const NodeId id_;
  const Options opts_;
  SendFn send_;
  Rng rng_;
  /// Pluggable persistence backend (may be null: purely volatile node, the
  /// pre-storage behavior). Non-owning; the harness keeps the durable
  /// medium alive across node incarnations.
  storage::Storage* storage_ = nullptr;
  storage::HardState persisted_hard_;

  // Persistent (survives crash/restart).
  uint64_t term_ = 0;  // EpochTerm raw
  NodeId voted_for_ = kNoNode;
  raft::RaftLog log_;
  Index commit_ = 0;
  Index applied_ = 0;
  /// The replicated state machine, built by opts_.machine_factory. Never
  /// null after construction; the core only speaks the sm interface.
  sm::MachinePtr machine_;
  raft::ConfigTracker config_;
  std::vector<raft::ReconfigRecord> history_;
  raft::RaftSnapshotPtr snapshot_;  // last compaction point
  /// Aborted merge transactions awaiting participant acks, kept by every
  /// coordinator-source member so ANY later leader can resume the abort
  /// retransmission (the C_abort apply clears the config's merge fields).
  /// Erased when the replicated ConfAbortSettled marker applies; survives
  /// compaction inside RaftSnapshot::unsettled_aborts.
  std::map<TxId, raft::MergePlan> unsettled_aborts_;
  /// Snapshots retained to serve merge data exchange: (tx, source) -> snap.
  /// Grows by one entry per merge this node participates in and is only
  /// reclaimed by Reinit; acceptable at current scale (entries are shared
  /// pointers), revisit when long-lived clusters chain many merges.
  std::map<std::pair<TxId, int>, sm::SnapshotPtr> exchange_store_;
  /// Requesters that asked for a snapshot we had not sealed yet; answered
  /// as soon as it becomes available (avoids polling latency). Mutation
  /// discipline: OnMergeOutcomeApplied finishes iterating a waiter set
  /// before erasing it, and Send never re-enters (SendFn contract), so no
  /// iterator escapes a mutation.
  std::map<std::pair<TxId, int>, std::set<NodeId>> exchange_waiters_;
  /// Per-merge GC bookkeeping (see ExchangeGc). Entries are erased when the
  /// transaction's snapshots are pruned, so the map itself stays bounded.
  std::map<TxId, ExchangeGc> exchange_gc_;

  // Volatile.
  Role role_ = Role::kFollower;
  NodeId leader_ = kNoNode;
  int ticks_since_heard_ = 0;
  int election_timeout_ = 10;
  int heartbeat_countdown_ = 1;
  std::set<NodeId> votes_;
  std::map<NodeId, Progress> progress_;
  /// Bumped by ClearProgress on every teardown (step-down, re-election,
  /// split completion, merge transition, snapshot install, restart). Lets
  /// WithProgress assert in debug builds that a Progress& never survives a
  /// reentrant apply.
  uint64_t progress_gen_ = 0;
  struct PendingClient {
    uint64_t req_id;
    NodeId client;
    obs::TraceCtx ctx;  // request's causal context, restored at apply/reply
  };
  std::map<Index, PendingClient> pending_;
  /// Follower acks gated on WAL durability: an AppendReply must not claim
  /// `match` until every entry at or below it is durable, or a crash could
  /// lose an entry the leader's commit quorum counted. Released by
  /// OnStorageDurable; re-validated (term + entry term at match) at send
  /// time so a truncation cannot resurrect a stale claim.
  struct PendingAck {
    NodeId to;
    raft::AppendReply reply;
    uint64_t match_term;
    obs::TraceCtx ctx;  // the gated append's context, restored at release
  };
  std::deque<PendingAck> pending_acks_;
  /// Client requests beyond this tick's admission budget (see
  /// max_client_requests_per_tick), served FIFO on subsequent ticks.
  std::deque<std::pair<NodeId, raft::ClientRequest>> deferred_requests_;
  size_t tick_budget_used_ = 0;
  /// ReadIndex runtime (leader only). A registered read waits for (a) the
  /// probe round assigned to it to collect an election quorum of same-term
  /// acks — proof no newer leader could have committed past read_index —
  /// and (b) applied_ to reach its read_index. Reads registered while a
  /// probe is in flight join the NEXT round: an ack only vouches for
  /// leadership at the moment the follower sent it, which must postdate the
  /// read's registration.
  struct PendingRead {
    uint64_t req_id = 0;
    NodeId client = kNoNode;
    sm::Command query;
    Index read_index = 0;
    uint64_t seq = 0;  // probe round that must confirm before serving
    obs::TraceCtx ctx;  // request's causal context, restored at serve time
  };
  std::deque<PendingRead> pending_reads_;
  uint64_t read_seq_ = 0;        // latest probe round launched
  uint64_t read_confirmed_ = 0;  // highest quorum-confirmed round
  bool read_probe_inflight_ = false;
  std::set<NodeId> read_acks_;
  int read_retry_countdown_ = 0;
  MergeRuntime merge_;
  std::optional<Exchange> exchange_;
  uint64_t split_admin_req_id_ = 0;
  NodeId split_admin_client_ = kNoNode;
  // Pull recovery.
  NodeId pull_target_ = kNoNode;
  int pull_countdown_ = 0;
  int pull_attempts_ = 0;
  int silent_ticks_ = 0;  // for the naming-service fallback
  bool naming_query_inflight_ = false;

  std::vector<AppliedRecord> applied_trace_;
  CounterSet counters_;
  // Flight-recorder runtime (observation only, null/zero when disarmed).
  // cur_ctx_ is the context of the message being handled — every Send made
  // while it is set inherits it. Span ids track this node's open protocol
  // spans; 0 = no span open.
  obs::TraceCtx cur_ctx_;
  uint64_t election_span_ = 0;
  uint64_t split_span_ = 0;
  uint64_t merge_span_ = 0;
  uint64_t exchange_span_ = 0;
  uint64_t member_span_ = 0;
  uint64_t read_span_ = 0;
  // Pre-interned handles for every counter the node bumps from message /
  // apply / tick paths (see CounterSet). The string Add() API re-hashes the
  // name per increment, so node code always goes through these ids; the
  // `recraft-hot-path-hygiene` lint check enforces that.
  struct HotCounters {
    CounterSet::Id msg_sent, msg_recv, entries_applied, append_sent, commits;
    CounterSet::Id client_proposed, proposed;
    CounterSet::Id election_started, election_votes_granted, election_won;
    CounterSet::Id member_proposed, member_committed;
    CounterSet::Id merge_started, merge_prepared, merge_commit_received;
    CounterSet::Id merge_aborted, merge_abort_finalized, merge_finalized;
    CounterSet::Id merge_abort_resumed, merge_resumed, merge_transitioned;
    CounterSet::Id merge_exchange_done, merge_exchange_pruned;
    CounterSet::Id split_enter_joint, split_leave_joint, split_completed;
    CounterSet::Id log_compactions;
    CounterSet::Id storage_ack_released, storage_ack_deferred;
    CounterSet::Id leader_stepdown, leader_lost_quorum;
    CounterSet::Id recovery_epoch_gap, recovery_naming_lookup;
    CounterSet::Id recovery_pull_started, recovery_pull_applied;
    CounterSet::Id recovery_install_snapshot, recovery_exchange_resumed;
    CounterSet::Id node_crash, node_restart, node_reinit, node_boot;
    CounterSet::Id node_boot_amnesia;
    CounterSet::Id client_deferred;
    CounterSet::Id read_barrier_wait, read_accepted, read_probe_sent;
    CounterSet::Id read_probe_retry, read_quorum_confirmed, read_served;
    CounterSet::Id invariant_committed_conflict;
    CounterSet::Id repl_stale_peer_dropped, repl_snapshot_sent;
    CounterSet::Id repl_truncations;
  };
  HotCounters cid_{};
};

}  // namespace recraft::core
