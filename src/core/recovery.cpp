// Pull-based recovery across epochs (§III-B), snapshot install, and the
// naming-service fallback for long-term failures (§V).
//
// Pull rules: only *committed* entries are served, only by nodes that fully
// completed their reconfiguration (stable mode, no pending exchange), and a
// reply never crosses the responder's epoch boundary — so a node can never
// receive a sibling subcluster's post-split entries. When the responder has
// compacted (or reset, after a merge) past the requested position it falls
// back to a full snapshot.
#include "common/logging.h"
#include "core/node.h"

namespace recraft::core {

namespace {
constexpr int kMaxPullAttempts = 8;
}

void Node::StartPull(NodeId target) {
  if (!opts_.enable_pull) return;     // ablation: no self-rescue
  if (exchange_.has_value()) return;  // merge exchange has its own path
  if (pull_target_ == target && pull_countdown_ > 0) return;
  pull_target_ = target;
  pull_countdown_ = opts_.pull_retry_ticks;
  pull_attempts_ = 0;
  // A candidate that is told to pull abandons its campaign (§III-B,
  // EnterElection returns FAILURE after pullLog).
  if (role_ == Role::kCandidate) {
    role_ = Role::kFollower;
    votes_.clear();
  }
  counters_.Add(cid_.recovery_pull_started);
  raft::PullRequest req;
  req.from = id_;
  req.epoch = current_et().epoch();
  req.next_idx = commit_ + 1;
  Send(target, std::move(req));
}

void Node::PullTick() {
  if (--pull_countdown_ > 0) return;
  if (++pull_attempts_ > kMaxPullAttempts) {
    // Give up on this source; normal election timeouts (and the naming
    // fallback) take over.
    pull_target_ = kNoNode;
    pull_attempts_ = 0;
    return;
  }
  // Rotate through known peers: the original target may itself be outdated
  // or unreachable ("the puller can contact different nodes", §III-B).
  const auto& members = config_.Current().members;
  if (!members.empty()) {
    auto it = std::find(members.begin(), members.end(), pull_target_);
    if (it != members.end() && members.size() > 1) {
      size_t next = (static_cast<size_t>(it - members.begin()) + 1) %
                    members.size();
      if (members[next] != id_) pull_target_ = members[next];
    }
  }
  pull_countdown_ = opts_.pull_retry_ticks;
  raft::PullRequest req;
  req.from = id_;
  req.epoch = current_et().epoch();
  req.next_idx = commit_ + 1;
  Send(pull_target_, std::move(req));
}

void Node::HandlePullRequest(NodeId from, const raft::PullRequest& m) {
  const auto& cfg = config_.Current();
  // Only fully reconfigured nodes serve pulls: a node halfway through
  // applying a split C_new must not be treated as a source (§III-B
  // "Subtle Corner Cases").
  if (cfg.mode != raft::ConfigMode::kStable || exchange_.has_value()) return;
  uint32_t my_epoch = current_et().epoch();
  if (my_epoch < m.epoch) return;

  raft::PullReply reply;
  reply.from = id_;
  reply.epoch = my_epoch;

  if (my_epoch == m.epoch) {
    // Same-configuration catch-up (restoring an offline peer, §V). Members
    // get committed entries; a non-member (a node that slept through its
    // own removal) gets a snapshot whose embedded configuration tells it
    // the world moved on. Only nodes that *address us as a peer* reach
    // this path, so serving our committed state is safe.
    if (!cfg.IsMember(m.from)) {
      reply.snap = snapshot_ ? snapshot_ : BuildSnapshot();
      Send(from, std::move(reply));
      return;
    }
    if (m.next_idx <= log_.base_index()) {
      reply.snap = snapshot_ ? snapshot_ : BuildSnapshot();
    } else {
      reply.entries = log_.Slice(m.next_idx, commit_);
      reply.commit = commit_;
    }
    Send(from, std::move(reply));
    return;
  }

  // Requester is behind by at least one epoch: find the boundary it must
  // cross next — the first reconfiguration that raised our epoch past its.
  const raft::ReconfigRecord* boundary = nullptr;
  for (const auto& rec : history_) {
    if (rec.epoch > m.epoch) {
      boundary = &rec;
      break;
    }
  }
  if (boundary == nullptr) return;  // inconsistent history; stay silent

  if (boundary->kind == raft::ReconfigRecord::Kind::kSplit) {
    Index upto = boundary->boundary_index;  // the split C_new entry
    if (m.next_idx > log_.base_index()) {
      reply.entries = log_.Slice(m.next_idx, std::min(upto, commit_));
      reply.commit = std::min(upto, commit_);
      reply.capped = true;
      Send(from, std::move(reply));
      return;
    }
    // Entries below the boundary are compacted away. If the requester is a
    // member of *our* cluster our snapshot is exactly what it needs; a
    // sibling-subcluster node must find a peer that still has the prefix.
    if (cfg.IsMember(m.from)) {
      reply.snap = snapshot_ ? snapshot_ : BuildSnapshot();
      Send(from, std::move(reply));
    }
    return;
  }
  // Merge boundary: the log restarted, index-based pulls cannot cross it.
  // A full snapshot carries the merged state, configuration and history;
  // non-members learn from it that (and where) the world moved on.
  reply.snap = BuildSnapshot();
  reply.capped = true;
  Send(from, std::move(reply));
}

void Node::HandlePullReply(NodeId from, const raft::PullReply& m) {
  (void)from;
  if (m.snap != nullptr) {
    const auto& snap = *m.snap;
    bool i_am_member = snap.config.IsMember(id_);
    // Install if it moves us forward. Non-members install too: the embedded
    // history tells a retired or superseded node where its lineage went.
    if (snap.last_index > commit_ ||
        snap.config.uid != config_.Current().uid) {
      InstallSnapshotState(snap, EpochTerm(snap.last_term));
      counters_.Add(i_am_member ? "recovery.snap_installed"
                                : "recovery.snap_retired");
    }
    pull_target_ = kNoNode;
    pull_attempts_ = 0;
    return;
  }
  if (m.entries.empty()) return;  // nothing useful yet; retries continue
  for (const auto& e : m.entries) {
    if (e.index <= log_.base_index()) continue;
    if (log_.Matches(e.index, e.term)) continue;
    if (e.index <= commit_) {
      counters_.Add(cid_.invariant_committed_conflict);
      return;
    }
    if (e.index <= log_.last_index()) {
      log_.TruncateFrom(e.index);
      config_.OnTruncate(e.index);
      DropPendingAcks();
    }
    // Gap between our log end and the pulled batch: ask again from our end.
    if (e.index != log_.last_index() + 1) break;
    log_.Append(e);
    config_.OnAppend(e);
  }
  Index new_commit = std::min<Index>(m.commit, log_.last_index());
  if (new_commit > commit_) {
    commit_ = new_commit;
    ApplyCommitted();  // may run CompleteSplit and bump our epoch
  }
  pull_target_ = kNoNode;
  pull_attempts_ = 0;
  counters_.Add(cid_.recovery_pull_applied);
}

void Node::InstallSnapshotState(const raft::RaftSnapshot& snap, EpochTerm et) {
  snapshot_ = std::make_shared<raft::RaftSnapshot>(snap);
  // Blob before log reset: a crash in between leaves the old log plus a
  // newer snapshot — recovery prefers whichever the WAL marker survived
  // with; both states are consistent.
  if (storage_ != nullptr) storage_->InstallSnapshot(snapshot_);
  if (snap.state) (void)machine_->Restore(*snap.state);
  log_.Reset(snap.last_index, snap.last_term);
  DropPendingAcks();
  commit_ = snap.last_index;
  applied_ = snap.last_index;
  config_.ForceState(snap.config, snap.last_index);
  unsettled_aborts_ = snap.unsettled_aborts;
  // Merge histories: keep ours, add unseen records (they are ordered by
  // epoch; a simple de-dup by (epoch, uid) suffices).
  for (const auto& rec : snap.history) {
    bool seen = false;
    for (const auto& mine : history_) {
      if (mine.epoch == rec.epoch && mine.uid == rec.uid) {
        seen = true;
        break;
      }
    }
    if (!seen) history_.push_back(rec);
  }
  if (et.raw() > term_) {
    term_ = et.raw();
    voted_for_ = kNoNode;
  }
  role_ = Role::kFollower;
  votes_.clear();
  ClearProgress();
  FailPendingClients(Code::kUnavailable);
  // If we were waiting on a merge exchange and the snapshot is the merged
  // cluster's state, the wait is over. The snapshot (with the merged data)
  // is already durable above, so clearing the pending marker is safe.
  if (exchange_.has_value() &&
      snap.config.uid == exchange_->plan.new_uid) {
    exchange_.reset();
    PersistExchangeMetaNow();
  }
  ResetElectionTimer();
  counters_.Add(cid_.recovery_install_snapshot);
}

// ---------------------------------------------------------------------------
// Boot from storage: reconstruct a node purely from its durable image —
// no volatile state from any previous incarnation survives. Used by the
// harness's CrashNode/RestartNode pair and exercised by the crash-recovery
// chaos suites.

void Node::BootFromStorage() {
  counters_.Add(cid_.node_boot);
  raft::ConfigState blank;
  blank.range = KeyRange::Empty();

  auto loaded = storage_->Load();
  if (!loaded.ok()) {
    // Unrecoverable medium: boot as an amnesiac spare. Votes and terms are
    // flushed synchronously, so even this cannot double-vote; peers restore
    // the node through the §V paths (pull, InstallSnapshot).
    RLOG_ERROR("boot", "n%u: storage load failed: %s", id_,
               loaded.status().ToString().c_str());
    counters_.Add(cid_.node_boot_amnesia);
    config_.Init(std::move(blank));
    log_.Attach(storage_);
    return;
  }
  storage::BootImage img = std::move(*loaded);
  config_.Init(std::move(blank));
  if (!img.present) {
    // Blank disk: a spare that never held state.
    log_.Attach(storage_);
    return;
  }

  term_ = img.hard.term;
  voted_for_ = img.hard.voted_for;

  if (img.snap != nullptr) {
    const raft::RaftSnapshot& snap = *img.snap;
    if (snap.state != nullptr) {
      (void)machine_->Restore(*snap.state);
    } else {
      machine_->Reset(snap.config.range);
    }
    config_.ForceState(snap.config, snap.last_index);
    history_ = snap.history;
    unsettled_aborts_ = snap.unsettled_aborts;
    snapshot_ = img.snap;
  }
  log_.BootSetBase(img.base_index, img.base_term);
  applied_ = img.base_index;

  // A merged cluster's log begins with its committed outcome entry, whose
  // configuration was force-installed by TransitionToMerged rather than
  // derived from the entry (the tracker treats outcome entries as pending
  // resolutions). Rebuild that fiat state the same way — before replaying
  // the rest of the log, so post-merge config entries stack on top of it.
  bool merged_genesis = false;
  if (img.snap == nullptr && img.base_index == 0 && !img.entries.empty()) {
    if (const auto* oc = std::get_if<raft::ConfMergeOutcome>(
            &img.entries.front().payload);
        oc != nullptr && oc->commit && img.entries.front().index == 1) {
      merged_genesis = true;
      const raft::MergePlan& plan = oc->plan;
      raft::ConfigState ns;
      ns.mode = raft::ConfigMode::kStable;
      ns.members = plan.ResumeMembers();
      std::sort(ns.members.begin(), ns.members.end());
      ns.range = plan.new_range;
      ns.uid = plan.new_uid;
      config_.ForceState(std::move(ns), 1);
      term_ = std::max(term_, EpochTerm::Make(plan.new_epoch, 0).raw());
      bool seen = false;
      for (const auto& rec : history_) {
        if (rec.uid == plan.new_uid && rec.epoch == plan.new_epoch) {
          seen = true;
        }
      }
      if (!seen) {
        raft::ReconfigRecord rec;
        rec.kind = raft::ReconfigRecord::Kind::kMerge;
        rec.epoch = plan.new_epoch;
        rec.uid = plan.new_uid;
        rec.members = plan.ResumeMembers();
        rec.range = plan.new_range;
        history_.push_back(std::move(rec));
      }
      machine_->Reset(IsRetired() ? KeyRange::Empty() : plan.new_range);
    }
  }

  // Replay entries into the cache and the wait-free config tracker. The
  // merged-genesis entry is already reflected in the forced state — feeding
  // it to the tracker again would mark the resolved merge as pending.
  for (const auto& e : img.entries) {
    if (!(merged_genesis && e.index == 1)) config_.OnAppend(e);
    log_.BootAppend(e);  // copies into the fresh log's own slabs (cold path)
  }
  commit_ = std::min<Index>(std::max<Index>(img.hard.commit, applied_),
                            log_.last_index());

  // Merge-exchange runtime: sealed snapshots this node serves, and GC
  // bookkeeping for pruning them.
  exchange_store_ = std::move(img.sealed);
  for (const auto& g : img.exchange.gc) {
    ExchangeGc gc;
    gc.resumed = g.resumed;
    gc.targets = g.targets;
    gc.done.insert(g.done.begin(), g.done.end());
    gc.self_done = g.self_done;
    gc.retry_countdown = opts_.merge_retry_ticks;
    exchange_gc_[g.tx] = std::move(gc);
  }

  // The cache now mirrors durable state: attach the sink so new mutations
  // persist (replayed state must not be echoed back).
  log_.Attach(storage_);

  // Resume a pending snapshot exchange *before* applying: the store lacks
  // other sources' data, so the deferred-apply guard must hold. Only when
  // the durable log already is the merged one — otherwise the replay below
  // re-runs the transition and starts the exchange itself.
  if (img.exchange.pending_plan.has_value() && !exchange_.has_value() &&
      config_.Current().uid == img.exchange.pending_plan->new_uid) {
    counters_.Add(cid_.recovery_exchange_resumed);
    StartExchange(*img.exchange.pending_plan);
  }

  // Rebuild the state machine by replaying committed entries through the
  // normal apply path (reconfig handlers re-run with their replay guards).
  ApplyCommitted();
  RLOG_INFO("boot", "n%u booted from storage: base=%llu last=%llu commit=%llu",
            id_, static_cast<unsigned long long>(log_.base_index()),
            static_cast<unsigned long long>(log_.last_index()),
            static_cast<unsigned long long>(commit_));
}

void Node::PersistExchangeMetaNow() {
  if (storage_ == nullptr) return;
  storage::ExchangeMeta meta;
  if (exchange_.has_value()) meta.pending_plan = exchange_->plan;
  for (const auto& [tx, gc] : exchange_gc_) {
    storage::ExchangeGcImage img;
    img.tx = tx;
    img.resumed = gc.resumed;
    img.targets = gc.targets;
    img.done.assign(gc.done.begin(), gc.done.end());
    img.self_done = gc.self_done;
    meta.gc.push_back(std::move(img));
  }
  storage_->PersistExchangeMeta(meta);
}

void Node::HandleNamingLookupReply(const raft::NamingLookupReply& m) {
  naming_query_inflight_ = false;
  if (m.clusters.empty()) return;
  // Prefer a cluster that covers our key range (our lineage's successor);
  // fall back to any cluster listing us as a member.
  const raft::NamingRegister* best = nullptr;
  for (const auto& c : m.clusters) {
    if (c.uid == config_.Current().uid && c.epoch <= current_et().epoch()) {
      continue;  // that's us
    }
    if (c.range.Overlaps(EffectiveRange())) {
      if (best == nullptr || c.epoch > best->epoch) best = &c;
    }
  }
  if (best == nullptr) {
    for (const auto& c : m.clusters) {
      if (std::find(c.members.begin(), c.members.end(), id_) !=
          c.members.end()) {
        best = &c;
        break;
      }
    }
  }
  if (best == nullptr || best->members.empty()) return;
  silent_ticks_ = 0;
  StartPull(best->members.front());
}

}  // namespace recraft::core
