// Single-cluster membership change (§IV): ReCraft's AddAndResize /
// RemoveAndResize / ResizeQuorum family plus the two Raft baselines
// (AR-RPC and joint consensus), all wait-free, all gated by P1/P2'/P3.
#include "common/logging.h"
#include "core/node.h"

namespace recraft::core {

Status Node::CheckReconfigPreconditions() const {
  const auto& cfg = config_.Current();
  // P1: all prior reconfiguration entries committed and no multi-step
  // reconfiguration (split phase, joint mode, merge transaction) unresolved.
  if (config_.CurrentIndex() > commit_) {
    return Rejected("P1: uncommitted configuration entry");
  }
  if (cfg.ReconfigPending()) {
    return Rejected("P1: reconfiguration in progress");
  }
  // P3: the leader has committed an entry in its current term (the no-op it
  // proposes on election). Terms are monotone in the log, so checking the
  // term at the commit index suffices.
  if (commit_ == 0 || log_.TermAt(commit_) != term_) {
    return Busy("P3: no entry committed in current term yet");
  }
  return OkStatus();
}

Status Node::ValidateMemberChange(const raft::MemberChange& mc) const {
  const auto& cfg = config_.Current();
  const size_t n_old = cfg.members.size();
  auto is_member = [&](NodeId n) { return cfg.IsMember(n); };
  switch (mc.kind) {
    case raft::MemberChangeKind::kAddAndResize: {
      if (!opts_.enable_recraft) return Rejected("recraft features disabled");
      if (mc.nodes.empty()) return Rejected("no nodes to add");
      for (NodeId n : mc.nodes) {
        if (is_member(n)) {
          return Rejected("node " + std::to_string(n) + " already a member");
        }
      }
      return OkStatus();
    }
    case raft::MemberChangeKind::kRemoveAndResize: {
      if (!opts_.enable_recraft) return Rejected("recraft features disabled");
      if (mc.nodes.empty()) return Rejected("no nodes to remove");
      for (NodeId n : mc.nodes) {
        if (!is_member(n)) {
          return Rejected("node " + std::to_string(n) + " not a member");
        }
      }
      // P2' cap (§IV-A): removing r >= Q_old nodes cannot preserve quorum
      // overlap in one step; the caller must chain multiple removals.
      if (mc.nodes.size() >= raft::MajorityOf(n_old)) {
        return Rejected("RemoveAndResize: must remove fewer than Q_old nodes");
      }
      return OkStatus();
    }
    case raft::MemberChangeKind::kResizeQuorum:
      if (!opts_.enable_recraft) return Rejected("recraft features disabled");
      if (cfg.fixed_quorum == 0) {
        return Rejected("quorum already at majority");
      }
      return OkStatus();
    case raft::MemberChangeKind::kAddServer:
      if (mc.nodes.size() != 1) return Rejected("AddServer takes one node");
      if (is_member(mc.nodes[0])) return Rejected("already a member");
      return OkStatus();
    case raft::MemberChangeKind::kRemoveServer:
      if (mc.nodes.size() != 1) return Rejected("RemoveServer takes one node");
      if (!is_member(mc.nodes[0])) return Rejected("not a member");
      if (n_old == 1) return Rejected("cannot empty the cluster");
      return OkStatus();
    case raft::MemberChangeKind::kJointEnter:
      if (mc.nodes.empty()) return Rejected("empty target membership");
      return OkStatus();
    case raft::MemberChangeKind::kJointLeave:
      if (!cfg.vanilla_joint) return Rejected("not in joint mode");
      return OkStatus();
  }
  return Rejected("unknown change kind");
}

Status Node::StartMemberChange(const raft::MemberChange& mc) {
  if (role_ != Role::kLeader) return NotLeader();
  if (Status s = ValidateMemberChange(mc); !s.ok()) return s;
  // Leaving joint mode and resizing the quorum are the *second* step of a
  // pending reconfiguration: P1's "in progress" clause does not apply, but
  // the first step must be committed.
  bool second_step = mc.kind == raft::MemberChangeKind::kJointLeave ||
                     mc.kind == raft::MemberChangeKind::kResizeQuorum;
  if (second_step) {
    if (config_.CurrentIndex() > commit_) {
      return Rejected("P1: previous step not committed");
    }
  } else {
    if (Status s = CheckReconfigPreconditions(); !s.ok()) return s;
  }
  // Begin before Propose: on a single-node quorum the entry commits and
  // applies synchronously, and OnMemberChangeCommitted closes this span.
  if (opts_.recorder != nullptr && member_span_ == 0) {
    member_span_ = opts_.recorder->BeginSpan(
        id_, obs::Name::kMemberChange, cur_ctx_,
        mc.nodes.empty() ? 0 : mc.nodes[0]);
  }
  auto idx = Propose(raft::ConfMember{mc});
  if (!idx.ok()) {
    if (opts_.recorder != nullptr && member_span_ != 0) {
      opts_.recorder->EndSpan(id_, obs::Name::kMemberChange, member_span_,
                              obs::Outcome::kError);
      member_span_ = 0;
    }
    return idx.status();
  }
  counters_.Add(cid_.member_proposed);
  RLOG_INFO("member", "n%u proposed %s at %llu", id_,
            mc.ToString().c_str(), static_cast<unsigned long long>(*idx));
  return OkStatus();
}

void Node::OnMemberChangeCommitted(const raft::ConfMember& cm, Index index) {
  (void)index;
  // Copy, not reference: the wait-free chaining below (auto ResizeQuorum /
  // JointLeave) re-enters Propose -> config_.OnAppend, and on a single-node
  // quorum the chained entry commits and applies synchronously — paths that
  // mutate the tracker while a `const auto&` here would still be live (the
  // second use-after-free of the reconfig-reentrancy family). The decisions
  // below are specified against the state as of *this* commit anyway.
  const raft::ConfigState cfg = config_.Current();
  if (opts_.recorder != nullptr && member_span_ != 0) {
    opts_.recorder->EndSpan(id_, obs::Name::kMemberChange, member_span_,
                            obs::Outcome::kOk, index);
    member_span_ = 0;
  }
  counters_.Add(cid_.member_committed);

  bool membership_changed = cm.change.kind != raft::MemberChangeKind::kResizeQuorum &&
                            cm.change.kind != raft::MemberChangeKind::kJointLeave;
  if (membership_changed) {
    raft::ReconfigRecord rec;
    rec.kind = raft::ReconfigRecord::Kind::kMember;
    rec.epoch = current_et().epoch();  // membership changes keep the epoch
    rec.uid = cfg.uid;
    rec.members = cfg.members;
    rec.range = cfg.range;
    // A boot-from-storage replay re-runs this handler; don't duplicate the
    // record a pre-crash incarnation (or an installed snapshot) left.
    bool dup = !history_.empty() && history_.back().kind == rec.kind &&
               history_.back().epoch == rec.epoch &&
               history_.back().uid == rec.uid &&
               history_.back().members == rec.members;
    if (!dup) history_.push_back(std::move(rec));
  }

  if (role_ != Role::kLeader) return;

  // Stop replicating to peers this change removed. Runs inside the apply
  // path, where (by the progress_ discipline in replication.cpp) no caller
  // holds a Progress reference, so the erase cannot dangle anything.
  PruneProgress();

  // Wait-free chaining of the second consensus step.
  if (opts_.auto_resize_quorum && cfg.fixed_quorum > 0 &&
      (cm.change.kind == raft::MemberChangeKind::kAddAndResize ||
       cm.change.kind == raft::MemberChangeKind::kRemoveAndResize)) {
    raft::MemberChange resize;
    resize.kind = raft::MemberChangeKind::kResizeQuorum;
    Status s = StartMemberChange(resize);
    if (!s.ok()) {
      RLOG_WARN("member", "n%u auto ResizeQuorum failed: %s", id_,
                s.ToString().c_str());
    }
  }
  if (opts_.auto_joint_leave &&
      cm.change.kind == raft::MemberChangeKind::kJointEnter) {
    raft::MemberChange leave;
    leave.kind = raft::MemberChangeKind::kJointLeave;
    Status s = StartMemberChange(leave);
    if (!s.ok()) {
      RLOG_WARN("member", "n%u auto JointLeave failed: %s", id_,
                s.ToString().c_str());
    }
  }

  if (!cfg.ReconfigPending() && cfg.fixed_quorum == 0) {
    RegisterWithNaming();
  }

  // A leader that committed its own removal steps down (Raft dissertation
  // §4.2.2); the remaining members elect among themselves.
  if (!cfg.IsMember(id_)) {
    RLOG_INFO("member", "n%u removed itself; stepping down", id_);
    BecomeFollower(current_et(), kNoNode);
  }
}

}  // namespace recraft::core
