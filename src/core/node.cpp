// Node lifecycle, message dispatch, the apply path and client handling.
#include "core/node.h"

#include <cassert>

#include "common/logging.h"

namespace recraft::core {

const char* RoleName(Role r) {
  switch (r) {
    case Role::kFollower: return "follower";
    case Role::kCandidate: return "candidate";
    case Role::kLeader: return "leader";
  }
  return "?";
}

void Node::InternCounters() {
  cid_.msg_sent = counters_.Intern("msg.sent");
  cid_.msg_recv = counters_.Intern("msg.recv");
  cid_.entries_applied = counters_.Intern("entries.applied");
  cid_.append_sent = counters_.Intern("repl.append_sent");
  cid_.commits = counters_.Intern("repl.commits");
  cid_.client_proposed = counters_.Intern("client.proposed");
  cid_.proposed = counters_.Intern("repl.proposed");
  cid_.election_started = counters_.Intern("election.started");
  cid_.election_votes_granted = counters_.Intern("election.votes_granted");
  cid_.election_won = counters_.Intern("election.won");
  cid_.member_proposed = counters_.Intern("member.proposed");
  cid_.member_committed = counters_.Intern("member.committed");
  cid_.merge_started = counters_.Intern("merge.started");
  cid_.merge_prepared = counters_.Intern("merge.prepared");
  cid_.merge_commit_received = counters_.Intern("merge.commit_received");
  cid_.merge_aborted = counters_.Intern("merge.aborted");
  cid_.merge_abort_finalized = counters_.Intern("merge.abort_finalized");
  cid_.merge_finalized = counters_.Intern("merge.finalized");
  cid_.merge_abort_resumed = counters_.Intern("merge.abort_resumed");
  cid_.merge_resumed = counters_.Intern("merge.resumed");
  cid_.merge_transitioned = counters_.Intern("merge.transitioned");
  cid_.merge_exchange_done = counters_.Intern("merge.exchange_done");
  cid_.merge_exchange_pruned = counters_.Intern("merge.exchange_pruned");
  cid_.split_enter_joint = counters_.Intern("split.enter_joint");
  cid_.split_leave_joint = counters_.Intern("split.leave_joint");
  cid_.split_completed = counters_.Intern("split.completed");
  cid_.log_compactions = counters_.Intern("log.compactions");
  cid_.storage_ack_released = counters_.Intern("storage.ack_released");
  cid_.storage_ack_deferred = counters_.Intern("storage.ack_deferred");
  cid_.leader_stepdown = counters_.Intern("leader.stepdown");
  cid_.leader_lost_quorum = counters_.Intern("leader.lost_quorum");
  cid_.recovery_epoch_gap = counters_.Intern("recovery.epoch_gap");
  cid_.recovery_naming_lookup = counters_.Intern("recovery.naming_lookup");
  cid_.recovery_pull_started = counters_.Intern("recovery.pull_started");
  cid_.recovery_pull_applied = counters_.Intern("recovery.pull_applied");
  cid_.recovery_install_snapshot = counters_.Intern("recovery.install_snapshot");
  cid_.recovery_exchange_resumed = counters_.Intern("recovery.exchange_resumed");
  cid_.node_crash = counters_.Intern("node.crash");
  cid_.node_restart = counters_.Intern("node.restart");
  cid_.node_reinit = counters_.Intern("node.reinit");
  cid_.node_boot = counters_.Intern("node.boot");
  cid_.node_boot_amnesia = counters_.Intern("node.boot_amnesia");
  cid_.client_deferred = counters_.Intern("client.deferred");
  cid_.read_barrier_wait = counters_.Intern("read.barrier_wait");
  cid_.read_accepted = counters_.Intern("read.accepted");
  cid_.read_probe_sent = counters_.Intern("read.probe_sent");
  cid_.read_probe_retry = counters_.Intern("read.probe_retry");
  cid_.read_quorum_confirmed = counters_.Intern("read.quorum_confirmed");
  cid_.read_served = counters_.Intern("read.served");
  cid_.invariant_committed_conflict =
      counters_.Intern("invariant.committed_conflict");
  cid_.repl_stale_peer_dropped = counters_.Intern("repl.stale_peer_dropped");
  cid_.repl_snapshot_sent = counters_.Intern("repl.snapshot_sent");
  cid_.repl_truncations = counters_.Intern("repl.truncations");
}

Node::Node(NodeId id, Options opts, raft::ConfigState genesis, Rng rng,
           SendFn send, storage::Storage* storage)
    : id_(id),
      opts_(opts),
      send_(std::move(send)),
      rng_(rng),
      storage_(storage) {
  assert(opts_.machine_factory &&
         "Options::machine_factory must be set (the harness installs the KV "
         "machine by default)");
  machine_ = opts_.machine_factory(genesis.range);
  InternCounters();
  if (storage_ != nullptr) {
    storage_->SetDurableCallback([this]() { OnStorageDurable(); });
    // Attached before the genesis append so the bootstrap entry is durable.
    log_.Attach(storage_);
  }
  bool bootstrap = !genesis.members.empty();
  raft::ConfInit init;
  init.members = genesis.members;
  init.range = genesis.range;
  init.uid = genesis.uid;
  config_.Init(std::move(genesis));
  if (bootstrap) {
    // Write the genesis configuration as entry 1 so the log is
    // self-contained for nodes added later (they replay membership from the
    // log instead of relying on out-of-band genesis state).
    raft::LogEntry e;
    e.index = 1;
    e.term = 0;
    e.payload = std::move(init);
    log_.Append(e);
    commit_ = 1;
    applied_ = 1;
  }
  ResetElectionTimer();
  // Stagger initial timeouts so the first election converges quickly.
  ticks_since_heard_ = static_cast<int>(rng_.Uniform(
      0, static_cast<uint64_t>(opts_.election_timeout_min_ticks)));
  MaybePersistHard();
}

Node::Node(NodeId id, Options opts, storage::Storage* storage, Rng rng,
           SendFn send)
    : id_(id),
      opts_(opts),
      send_(std::move(send)),
      rng_(rng),
      storage_(storage) {
  assert(opts_.machine_factory && "Options::machine_factory must be set");
  machine_ = opts_.machine_factory(KeyRange::Empty());
  InternCounters();
  assert(storage_ != nullptr && "boot-from-storage needs a backend");
  storage_->SetDurableCallback([this]() { OnStorageDurable(); });
  BootFromStorage();  // recovery.cpp; attaches the log sink itself
  ResetElectionTimer();
  ticks_since_heard_ = static_cast<int>(rng_.Uniform(
      0, static_cast<uint64_t>(opts_.election_timeout_min_ticks)));
  MaybePersistHard();
}

void Node::MaybePersistHard() {
  if (storage_ == nullptr) return;
  storage::HardState hs{term_, voted_for_, commit_};
  if (hs == persisted_hard_) return;
  persisted_hard_ = hs;
  storage_->PersistHardState(hs);
}

void Node::DropPendingAcks() { pending_acks_.clear(); }

void Node::OnStorageDurable() {
  if (storage_ == nullptr) return;
  const Index durable = storage_->DurableIndex();
  while (!pending_acks_.empty()) {
    PendingAck& pa = pending_acks_.front();
    if (pa.reply.match > durable) break;
    // Re-validate: the ack's claim must still describe this log (same term,
    // same entry term at the claimed match position).
    if (pa.reply.et == term_ &&
        log_.TermAt(pa.reply.match) == pa.match_term) {
      counters_.Add(cid_.storage_ack_released);
      if (opts_.recorder != nullptr && pa.ctx.valid()) {
        opts_.recorder->Emit(id_, obs::Name::kAckReleased, pa.ctx,
                             pa.reply.match);
      }
      cur_ctx_ = pa.ctx;  // ack inherits the causal context of its append
      Send(pa.to, pa.reply);
      cur_ctx_ = obs::TraceCtx{};
    }
    pending_acks_.pop_front();
  }
  // The leader's own vote in the commit quorum is gated on durability;
  // a completed flush can advance the commit index.
  if (role_ == Role::kLeader) AdvanceCommit();
  MaybePersistHard();
}

void Node::Send(NodeId to, raft::Message m) {
  counters_.Add(cid_.msg_sent);
  auto msg = raft::MakeMessage(std::move(m));
  // Outbound messages inherit the causal context of the event being
  // processed (set by Receive); annotation only, wire bytes are unchanged.
  if (opts_.recorder != nullptr && cur_ctx_.valid()) {
    msg.set_trace_ctx(cur_ctx_);
  }
  send_(to, msg);
}

void Node::ResetElectionTimer() {
  ticks_since_heard_ = 0;
  election_timeout_ = static_cast<int>(
      rng_.Uniform(static_cast<uint64_t>(opts_.election_timeout_min_ticks),
                   static_cast<uint64_t>(opts_.election_timeout_max_ticks)));
}

bool Node::CanCampaign() const {
  if (exchange_.has_value()) return false;  // §III-C: merge snapshots first
  if (IsRetired()) return false;
  return true;
}

void Node::BecomeFollower(EpochTerm et, NodeId leader) {
  if (opts_.recorder != nullptr && election_span_ != 0) {
    opts_.recorder->EndSpan(id_, obs::Name::kElection, election_span_,
                            obs::Outcome::kLost, et.raw());
    election_span_ = 0;
  }
  bool term_changed = et.raw() != term_;
  if (term_changed) {
    term_ = et.raw();
    voted_for_ = kNoNode;
  }
  if (role_ == Role::kLeader) {
    counters_.Add(cid_.leader_stepdown);
    FailPendingClients(Code::kNotLeader);
  }
  role_ = Role::kFollower;
  votes_.clear();
  ClearProgress();
  leader_ = leader;
}

bool Node::ObserveEt(EpochTerm et, NodeId from) {
  EpochTerm cur(term_);
  if (et.raw() <= cur.raw()) return true;
  if (et.epoch() == cur.epoch()) {
    BecomeFollower(et, kNoNode);
    return true;
  }
  // Higher epoch: the sender completed a reconfiguration we have not.
  const auto& cfg = config_.Current();

  // A coordinator-cluster leader deliberately lags its own merge's epoch
  // while it collects 2PC commit acks ("applies last", §III-C.1): traffic
  // from already-transitioned members is expected, not an epoch gap.
  if (role_ == Role::kLeader && merge_.phase == MergePhase::kCommitting &&
      merge_.outcome_is_commit && merge_.plan.new_epoch == et.epoch()) {
    return false;
  }

  if (cfg.mode == raft::ConfigMode::kSplitLeaving &&
      log_.HasEntry(cfg.cnew_index)) {
    // An epoch can only advance past ours once our split's C_new committed
    // (§III-B): complete our own side, then re-examine the message.
    commit_ = std::max(commit_, cfg.cnew_index);
    ApplyCommitted();  // runs CompleteSplit when the C_new entry applies
    return ObserveEt(et, from);
  }

  // A committed merge outcome whose E_new matches the observed epoch: the
  // merged cluster is live; transition now (we deferred as a coordinator-
  // cluster member, or lost the MergeFinalize).
  if (cfg.merge_outcome_index > 0 && cfg.merge_outcome_index <= commit_ &&
      cfg.merge_outcome_commit && cfg.merge_outcome_plan &&
      cfg.merge_outcome_plan->new_epoch == et.epoch()) {
    raft::MergePlan plan = *cfg.merge_outcome_plan;
    TransitionToMerged(plan);
    return ObserveEt(et, from);
  }

  // We miss the reconfiguration entirely: recover by pulling from the
  // sender (§III-B "Pulling through EnterElection and HandleVote").
  counters_.Add(cid_.recovery_epoch_gap);
  StartPull(from);
  return false;
}

void Node::Tick() {
  TickBody();
  MaybePersistHard();
}

void Node::TickBody() {
  // Fresh admission budget; serve requests deferred by a saturated leader.
  tick_budget_used_ = 0;
  while (!deferred_requests_.empty() &&
         (opts_.max_client_requests_per_tick == 0 ||
          tick_budget_used_ < opts_.max_client_requests_per_tick)) {
    auto [from, req] = std::move(deferred_requests_.front());
    deferred_requests_.pop_front();
    HandleClientRequest(from, req);
  }
  // Exchange GC runs regardless of role or a pending exchange: a node can
  // still be gossiping completion of an earlier merge while a later one is
  // exchanging.
  ExchangeGcTick();
  if (exchange_.has_value()) {
    ExchangeTick();
    return;
  }
  if (pull_target_ != kNoNode) {
    PullTick();
  }
  if (role_ == Role::kLeader) {
    if (--heartbeat_countdown_ <= 0) {
      heartbeat_countdown_ = opts_.heartbeat_ticks;
      BroadcastAppend(/*heartbeat=*/true);
    }
    // CheckQuorum (Raft dissertation §6.2): a leader that cannot reach an
    // election quorum within two election timeouts steps down, so a
    // partitioned leader stops serving (and Table I's "operation stops"
    // failure counts are observable).
    bool any_peer = false;
    for (auto& [peer, p] : progress_) {
      ++p.ticks_since_ack;
      any_peer = true;
    }
    if (any_peer) {
      std::set<NodeId> live{id_};
      int lease = 2 * opts_.election_timeout_max_ticks;
      for (const auto& [peer, p] : progress_) {
        if (p.ticks_since_ack < lease) live.insert(peer);
      }
      if (!raft::ElectionQuorum(config_.Current()).Satisfied(live)) {
        counters_.Add(cid_.leader_lost_quorum);
        BecomeFollower(current_et(), kNoNode);
        ResetElectionTimer();
        return;
      }
    }
    MergeTick();
    ReadTick();  // retransmit an unanswered ReadIndex probe round
    silent_ticks_ = 0;
    return;
  }
  ++ticks_since_heard_;
  if (ticks_since_heard_ >= election_timeout_) {
    ++silent_ticks_;
    if (opts_.naming_fallback_ticks > 0 &&
        silent_ticks_ >= opts_.naming_fallback_ticks &&
        opts_.naming_service != kNoNode && !naming_query_inflight_) {
      naming_query_inflight_ = true;
      counters_.Add(cid_.recovery_naming_lookup);
      Send(opts_.naming_service, raft::NamingLookupReq{id_});
    }
    if (CanCampaign()) {
      StartElection();
    } else {
      ResetElectionTimer();
    }
  }
}

void Node::Receive(NodeId from, const raft::Message& m, obs::TraceCtx ctx) {
  counters_.Add(cid_.msg_recv);
  // All sends triggered by handling this message inherit its causal context
  // (see Send); cleared on exit so timer-driven sends stay context-free.
  cur_ctx_ = ctx;
  std::visit(
      [&](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, raft::RequestVote>) {
          HandleRequestVote(from, body);
        } else if constexpr (std::is_same_v<T, raft::VoteReply>) {
          HandleVoteReply(from, body);
        } else if constexpr (std::is_same_v<T, raft::AppendEntries>) {
          HandleAppendEntries(from, body);
        } else if constexpr (std::is_same_v<T, raft::AppendReply>) {
          HandleAppendReply(from, body);
        } else if constexpr (std::is_same_v<T, raft::InstallSnapshot>) {
          HandleInstallSnapshot(from, body);
        } else if constexpr (std::is_same_v<T, raft::InstallSnapshotReply>) {
          HandleInstallSnapshotReply(from, body);
        } else if constexpr (std::is_same_v<T, raft::CommitNotify>) {
          HandleCommitNotify(from, body);
        } else if constexpr (std::is_same_v<T, raft::PullRequest>) {
          HandlePullRequest(from, body);
        } else if constexpr (std::is_same_v<T, raft::PullReply>) {
          HandlePullReply(from, body);
        } else if constexpr (std::is_same_v<T, raft::MergePrepareReq>) {
          HandleMergePrepareReq(from, body);
        } else if constexpr (std::is_same_v<T, raft::MergePrepareReply>) {
          HandleMergePrepareReply(from, body);
        } else if constexpr (std::is_same_v<T, raft::MergeCommitReq>) {
          HandleMergeCommitReq(from, body);
        } else if constexpr (std::is_same_v<T, raft::MergeCommitReply>) {
          HandleMergeCommitReply(from, body);
        } else if constexpr (std::is_same_v<T, raft::MergeFinalize>) {
          HandleMergeFinalize(from, body);
        } else if constexpr (std::is_same_v<T, raft::ExchangeDone>) {
          HandleExchangeDone(from, body);
        } else if constexpr (std::is_same_v<T, raft::SnapPullReq>) {
          HandleSnapPullReq(from, body);
        } else if constexpr (std::is_same_v<T, raft::SnapPullReply>) {
          HandleSnapPullReply(from, body);
        } else if constexpr (std::is_same_v<T, raft::ReadIndexProbe>) {
          HandleReadIndexProbe(from, body);
        } else if constexpr (std::is_same_v<T, raft::ReadIndexAck>) {
          HandleReadIndexAck(from, body);
        } else if constexpr (std::is_same_v<T, raft::ClientRequest>) {
          HandleClientRequest(from, body);
        } else if constexpr (std::is_same_v<T, raft::RangeSnapReq>) {
          HandleRangeSnapReq(from, body);
        } else if constexpr (std::is_same_v<T, raft::BootstrapReq>) {
          HandleBootstrapReq(from, body);
        } else if constexpr (std::is_same_v<T, raft::NamingLookupReply>) {
          HandleNamingLookupReply(body);
        }
        // NamingRegister / NamingLookupReq are handled by the naming actor.
      },
      m);
  cur_ctx_ = obs::TraceCtx{};
  // Hard-state chokepoint: everything this event mutated becomes durable
  // before any message it sent can be delivered (delivery has latency, and
  // crash injection lands between events).
  MaybePersistHard();
}

void Node::OnCrash() {
  counters_.Add(cid_.node_crash);
  // The network already drops traffic; nothing to do here. State is kept as
  // the "persisted" image.
}

void Node::OnRestart() {
  counters_.Add(cid_.node_restart);
  // Spans that were open at crash time never see their end; drop the ids so
  // post-restart protocol runs open fresh spans. Must precede the exchange
  // resumption below, which opens a new exchange span.
  cur_ctx_ = obs::TraceCtx{};
  election_span_ = 0;
  split_span_ = 0;
  merge_span_ = 0;
  exchange_span_ = 0;
  member_span_ = 0;
  read_span_ = 0;
  role_ = Role::kFollower;
  leader_ = kNoNode;
  votes_.clear();
  ClearProgress();
  pending_.clear();
  pending_reads_.clear();
  read_probe_inflight_ = false;
  read_acks_.clear();
  deferred_requests_.clear();
  DropPendingAcks();
  ResetElectionTimer();
  // A coordinator mid-2PC recovers from its committed log when it next
  // becomes leader (ResumeMergeAsLeader); forget the volatile runtime.
  merge_ = MergeRuntime{};
  // Snapshot exchange must resume: contacts and collected remote snapshots
  // are volatile, the plan and our own snapshot are not.
  if (exchange_.has_value()) {
    raft::MergePlan plan = exchange_->plan;
    exchange_.reset();
    StartExchange(plan);
  }
  pull_target_ = kNoNode;
  pull_countdown_ = 0;
  silent_ticks_ = 0;
  naming_query_inflight_ = false;
}

const KeyRange& Node::EffectiveRange() const {
  const auto& cfg = config_.Current();
  if (cfg.mode == raft::ConfigMode::kSplitLeaving) {
    int sub = cfg.split.SubOf(id_);
    if (sub >= 0) return cfg.split.subs[static_cast<size_t>(sub)].range;
  }
  return cfg.range;
}

// --------------------------------------------------------------------------
// Apply path.

void Node::ApplyCommitted() {
  while (applied_ < commit_) {
    // Defer application while a merge's snapshot exchange is incomplete:
    // the log replicates normally but the store lacks the other
    // subclusters' data (§III-C.2).
    if (exchange_.has_value()) break;
    // ApplyEntry can reset the whole log (merge resumption); re-read state
    // every iteration.
    Index next = applied_ + 1;
    if (!log_.HasEntry(next)) break;  // reset underneath us
    raft::LogEntry entry = log_.At(next);
    applied_ = next;
    ApplyEntry(entry);
  }
  MaybeCompact();  // every replica compacts, not just the leader
  // A confirmed read may have been waiting for its read_index to apply.
  if (!pending_reads_.empty()) ServeConfirmedReads();
}

void Node::RecordApplied(const raft::LogEntry& e) {
  if (!opts_.trace_applied) return;
  AppliedRecord rec;
  rec.uid = config_.Current().uid;
  rec.epoch = current_et().epoch();
  rec.index = e.index;
  rec.term = e.term;
  if (const auto* cmd = std::get_if<sm::Command>(&e.payload)) {
    rec.payload_hash =
        std::hash<std::string>{}(cmd->key) * 31 +
        std::hash<std::string_view>{}(std::string_view(
            reinterpret_cast<const char*>(cmd->body.data()),
            cmd->body.size())) *
            7;
    rec.is_cmd = true;
    rec.cmd = *cmd;
  } else {
    rec.payload_hash = std::hash<std::string>{}(e.Describe());
  }
  applied_trace_.push_back(std::move(rec));
}

void Node::ApplyEntry(const raft::LogEntry& e) {
  RecordApplied(e);
  counters_.Add(cid_.entries_applied);
  if (const auto* cmd = std::get_if<sm::Command>(&e.payload)) {
    sm::CmdResult res = machine_->Apply(*cmd);
    auto it = pending_.find(e.index);
    if (it != pending_.end()) {
      if (opts_.recorder != nullptr && it->second.ctx.valid()) {
        opts_.recorder->Emit(id_, obs::Name::kApply, it->second.ctx, e.index,
                             e.term);
      }
      ReplyToClient(it->second.client, it->second.req_id, res.status,
                    res.payload, it->second.ctx);
      pending_.erase(it);
    }
    return;
  }
  if (std::holds_alternative<raft::NoOp>(e.payload)) {
    auto it = pending_.find(e.index);
    if (it != pending_.end()) {
      ReplyToClient(it->second.client, it->second.req_id, OkStatus(), {},
                    it->second.ctx);
      pending_.erase(it);
    }
    return;
  }
  if (std::holds_alternative<raft::ConfInit>(e.payload)) {
    // Replayed only by nodes that joined after bootstrap: adopt the genesis
    // range for the (still empty) machine. Membership was applied wait-free
    // on append by the config tracker.
    if (machine_->range().empty() || machine_->Size() == 0) {
      machine_->Reset(config_.StateAtOrBefore(e.index).range);
    }
    return;
  }
  if (std::holds_alternative<raft::ConfSplitJoint>(e.payload)) {
    OnSplitJointCommitted(e.index);
    return;
  }
  if (std::holds_alternative<raft::ConfSplitNew>(e.payload)) {
    // Commit of the split C_new entry: this node's split is decided;
    // complete it (notify, shrink, epoch bump).
    CompleteSplit();
    return;
  }
  if (const auto* cm = std::get_if<raft::ConfMember>(&e.payload)) {
    OnMemberChangeCommitted(*cm, e.index);
    return;
  }
  if (const auto* tx = std::get_if<raft::ConfMergeTx>(&e.payload)) {
    OnMergeTxApplied(*tx, e.index);
    return;
  }
  if (const auto* oc = std::get_if<raft::ConfMergeOutcome>(&e.payload)) {
    OnMergeOutcomeApplied(*oc, e.index);
    return;
  }
  if (const auto* as = std::get_if<raft::ConfAbortSettled>(&e.payload)) {
    // Every participant acked the abort of `tx`: drop the retransmission
    // bookkeeping. Replay-safe (erasing an absent tx is a no-op).
    unsettled_aborts_.erase(as->tx);
    // Chain: if this leader carries further unsettled aborts (back-to-back
    // aborted merges across leader changes), resume the next one.
    if (role_ == Role::kLeader && merge_.phase == MergePhase::kIdle) {
      ResumeUnsettledAbort();
    }
    return;
  }
  if (const auto* sr = std::get_if<raft::ConfSetRange>(&e.payload)) {
    if (sr->absorb) {
      Status s = machine_->MergeIn(*sr->absorb);
      if (!s.ok()) {
        RLOG_ERROR("range", "n%u absorb failed: %s", id_,
                   s.ToString().c_str());
      }
    } else if (machine_->range().ContainsRange(sr->range)) {
      (void)machine_->RestrictRange(sr->range);
    }
    auto it = pending_.find(e.index);
    if (it != pending_.end()) {
      ReplyToClient(it->second.client, it->second.req_id, OkStatus(), {},
                    it->second.ctx);
      pending_.erase(it);
    }
    return;
  }
}

void Node::FailPendingClients(Code code) {
  // Safe to iterate while replying: ReplyToClient only enqueues on the
  // network (the SendFn contract forbids synchronous re-entry), so nothing
  // can mutate pending_ mid-loop.
  for (const auto& [idx, pc] : pending_) {
    ReplyToClient(pc.client, pc.req_id, Status(code), {}, pc.ctx);
  }
  pending_.clear();
  // Pending ReadIndex reads die with the leadership that registered them
  // (every FailPendingClients site is such a boundary): the probe quorum
  // that would have confirmed them can no longer vouch for this node.
  FailPendingReads(code);
}

void Node::ReplyToClient(NodeId client, uint64_t req_id, Status s,
                         std::string value, obs::TraceCtx ctx) {
  if (client == kNoNode) return;
  raft::ClientReply reply;
  reply.req_id = req_id;
  reply.from = id_;
  reply.status = std::move(s);
  reply.value = std::move(value);
  reply.leader_hint = leader_;
  reply.serving_range = EffectiveRange();
  reply.epoch = current_et().epoch();
  // An explicit context (reply after an async hop: durability gate, apply)
  // overrides whatever event context is live; Send picks up cur_ctx_.
  const obs::TraceCtx saved = cur_ctx_;
  if (ctx.valid()) cur_ctx_ = ctx;
  if (opts_.recorder != nullptr && cur_ctx_.valid()) {
    opts_.recorder->Emit(id_, obs::Name::kReply, cur_ctx_, req_id,
                         static_cast<uint64_t>(reply.status.code()));
  }
  Send(client, std::move(reply));
  cur_ctx_ = saved;
}

void Node::RegisterWithNaming() {
  if (opts_.naming_service == kNoNode) return;
  const auto& cfg = config_.Current();
  raft::NamingRegister reg;
  reg.uid = cfg.uid;
  reg.epoch = current_et().epoch();
  reg.members = cfg.members;
  reg.range = cfg.range;
  Send(opts_.naming_service, std::move(reg));
}

// --------------------------------------------------------------------------
// Client / admin requests.

void Node::HandleClientRequest(NodeId from, const raft::ClientRequest& m) {
  if (role_ != Role::kLeader) {
    ReplyToClient(from, m.req_id, NotLeader());
    return;
  }
  if (const auto* read = std::get_if<raft::ReadRequest>(&m.body)) {
    HandleReadRequest(from, m.req_id, *read);
    return;
  }
  if (const auto* cmd = std::get_if<sm::Command>(&m.body)) {
    // Every command routes by its key; "" is a legal coordinate (the
    // lowest), contained only by the leftmost shard's range.
    if (!EffectiveRange().Contains(cmd->key)) {
      // The reply carries EffectiveRange()/epoch, so a routing client can
      // tell a stale shard map apart from a bad key.
      ReplyToClient(from, m.req_id,
                    WrongShard("key " + cmd->key + " outside " +
                               EffectiveRange().ToString()));
      return;
    }
    // Leader-side admission: past the per-tick budget, requests queue and
    // are served on later ticks (models the storage bottleneck).
    if (opts_.max_client_requests_per_tick > 0) {
      if (tick_budget_used_ >= opts_.max_client_requests_per_tick) {
        deferred_requests_.emplace_back(from, m);
        counters_.Add(cid_.client_deferred);
        return;
      }
      ++tick_budget_used_;
    }
    // Once a merge outcome is in the log the data is sealed: the merge
    // blocks client traffic until the merged cluster resumes (§III-C.2).
    if (config_.Current().merge_outcome_index > 0) {
      ReplyToClient(from, m.req_id, Busy("merge in progress"));
      return;
    }
    // Register the pending reply *before* proposing: on a single-node
    // cluster Propose commits and applies synchronously.
    Index next = log_.last_index() + 1;
    pending_[next] = PendingClient{m.req_id, from, cur_ctx_};
    if (opts_.recorder != nullptr && cur_ctx_.valid()) {
      opts_.recorder->Emit(id_, obs::Name::kPropose, cur_ctx_, next, term_);
    }
    auto idx = Propose(*cmd);
    if (!idx.ok()) {
      pending_.erase(next);
      ReplyToClient(from, m.req_id, idx.status());
      return;
    }
    counters_.Add(cid_.client_proposed);
    return;
  }
  if (const auto* split = std::get_if<raft::AdminSplit>(&m.body)) {
    // Register the completion slot *before* starting: if the whole split
    // ever commits and applies synchronously inside StartSplit,
    // CompleteSplit must find the requester to answer (registering after
    // would leave a stale slot that misfires on the next split).
    const uint64_t prev_req_id = split_admin_req_id_;
    const NodeId prev_client = split_admin_client_;
    split_admin_req_id_ = m.req_id;
    split_admin_client_ = from;
    Status s = StartSplit(*split);
    // The split reply is sent on completion; failures reply immediately —
    // restoring the slot, so a rejected duplicate request cannot orphan an
    // in-flight split's pending reply.
    if (!s.ok()) {
      split_admin_req_id_ = prev_req_id;
      split_admin_client_ = prev_client;
      ReplyToClient(from, m.req_id, s);
    }
    return;
  }
  if (const auto* merge = std::get_if<raft::AdminMerge>(&m.body)) {
    Status s = StartMerge(*merge, m.req_id, from);
    if (!s.ok()) ReplyToClient(from, m.req_id, s);
    return;
  }
  if (const auto* member = std::get_if<raft::AdminMember>(&m.body)) {
    Status s = StartMemberChange(member->change);
    ReplyToClient(from, m.req_id, s);
    return;
  }
  if (const auto* sr = std::get_if<raft::AdminSetRange>(&m.body)) {
    const auto& cfg = config_.Current();
    if (cfg.range == sr->range && !sr->absorb) {
      ReplyToClient(from, m.req_id, OkStatus());  // idempotent retry
      return;
    }
    if (Status s = CheckReconfigPreconditions(); !s.ok()) {
      ReplyToClient(from, m.req_id, s);
      return;
    }
    Index next = log_.last_index() + 1;
    pending_[next] = PendingClient{m.req_id, from, cur_ctx_};
    auto idx = Propose(raft::ConfSetRange{sr->range, sr->absorb});
    if (!idx.ok()) {
      pending_.erase(next);
      ReplyToClient(from, m.req_id, idx.status());
    }
    return;
  }
}

void Node::HandleRangeSnapReq(NodeId from, const raft::RangeSnapReq& m) {
  raft::RangeSnapReply reply;
  reply.from = id_;
  reply.range = m.range;
  if (role_ != Role::kLeader) {
    reply.retry = true;
    reply.leader_hint = leader_;
    Send(from, std::move(reply));
    return;
  }
  auto snap = machine_->TakeSnapshot(m.range);
  if (!snap.ok()) {
    reply.retry = false;
    Send(from, std::move(reply));
    return;
  }
  reply.ok = true;
  reply.snap = *snap;
  Send(from, std::move(reply));
}

void Node::HandleBootstrapReq(NodeId from, const raft::BootstrapReq& m) {
  // Idempotency: if we already carry this genesis identity, just ack.
  if (config_.Current().uid != m.genesis.uid || m.genesis.uid == 0) {
    Reinit(m.genesis, m.data);
  }
  raft::BootstrapAck ack;
  ack.from = id_;
  ack.op_id = m.op_id;
  Send(from, std::move(ack));
}

void Node::Reinit(const raft::ConfigState& genesis, sm::SnapshotPtr data) {
  counters_.Add(cid_.node_reinit);
  // Wipe the durable medium first: the node sheds its previous identity
  // entirely (the TC terminate step), then re-persists the new genesis
  // through the normal log/hard-state paths below.
  if (storage_ != nullptr) {
    storage_->WipeAll();
    persisted_hard_ = storage::HardState{};
  }
  term_ = 0;
  voted_for_ = kNoNode;
  log_.Reset(0, 0);
  commit_ = 0;
  applied_ = 0;
  machine_->Reset(genesis.range);
  history_.clear();
  snapshot_.reset();
  exchange_store_.clear();
  exchange_waiters_.clear();
  exchange_gc_.clear();
  unsettled_aborts_.clear();
  role_ = Role::kFollower;
  leader_ = kNoNode;
  votes_.clear();
  ClearProgress();
  pending_.clear();
  pending_reads_.clear();
  read_probe_inflight_ = false;
  read_acks_.clear();
  DropPendingAcks();
  merge_ = MergeRuntime{};
  exchange_.reset();
  pull_target_ = kNoNode;
  split_admin_client_ = kNoNode;

  raft::ConfigState g = genesis;
  bool bootstrap = !g.members.empty();
  raft::ConfInit init;
  init.members = g.members;
  init.range = g.range;
  init.uid = g.uid;
  config_.Init(std::move(g));
  if (bootstrap) {
    raft::LogEntry e;
    e.index = 1;
    e.term = 0;
    e.payload = std::move(init);
    log_.Append(e);
    commit_ = 1;
    applied_ = 1;
  }
  if (data) {
    // Installed data is the snapshot base beneath the genesis entry; the
    // machine adopts the genesis range, discarding anything outside it.
    (void)machine_->Restore(*data);
    (void)machine_->Rebase(genesis.range);
  }
  ResetElectionTimer();
}

}  // namespace recraft::core
