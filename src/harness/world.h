// The World wires nodes, the simulated network, the naming service and
// clients into one deterministic run, and provides the admin operations
// (split / merge / membership change) and probes that the tests, examples
// and benchmark harnesses drive.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/node.h"
#include "obs/trace.h"
#include "kv/kv_machine.h"
#include "kv/service.h"
#include "net/clock.h"
#include "net/transport.h"
#include "shard/shard_map.h"
#include "sim/clock.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/transport.h"
#include "storage/sim_disk.h"
#include "storage/storage.h"
#include "storage/wal_storage.h"

namespace recraft::harness {

inline constexpr NodeId kNamingServiceId = 900;
inline constexpr NodeId kAdminId = 901;
inline constexpr NodeId kFirstClientId = 1000;

/// What backs each node's durable state.
enum class StorageMode {
  kNone = 0,   // purely volatile nodes (the historical behavior)
  kInMemory,   // InMemoryStorage: boot-from-storage without byte modeling
  kWal,        // WalStorage over a per-node SimDisk (crash injection works)
};

struct WorldOptions {
  uint64_t seed = 1;
  sim::NetworkOptions net;
  core::Options node;  // template for every node created; if
                       // node.machine_factory is unset the World installs
                       // kv::KvMachineFactory (the default workload)
  bool with_naming_service = true;
  StorageMode storage = StorageMode::kNone;
  storage::WalStorage::Options wal;      // kWal only
  storage::SimDisk::Options disk;        // kWal only
  /// Arm the flight recorder (obs/trace.h): the World binds it to the sim
  /// clock and hands it to the network, every node and every WAL instance.
  /// Null = disarmed. Arming must not change the execution digest.
  obs::Recorder* recorder = nullptr;
};

/// Checked access to the concrete KV store behind a node's machine — for
/// tests, checkers and benches only (the consensus core never downcasts).
const kv::Store& KvStoreOf(const core::Node& n);

/// The DNS-like registry of §V: loosely consistent, assumed always
/// available. Clusters register after reconfigurations; stranded nodes look
/// the directory up to find a peer to pull from.
class NamingService {
 public:
  void HandleRegister(const raft::NamingRegister& reg);
  raft::NamingLookupReply Directory() const;
  size_t size() const { return clusters_.size(); }

 private:
  std::map<ClusterUid, raft::NamingRegister> clusters_;
};

class World {
 public:
  explicit World(WorldOptions opts);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  // --- topology ----------------------------------------------------------
  /// Create a cluster of `n` fresh nodes over `range`. Nodes get the next
  /// free ids. Returns the member ids.
  std::vector<NodeId> CreateCluster(size_t n, KeyRange range = KeyRange::Full());
  /// Create a node that is not yet a member of anything (to be added via a
  /// membership change).
  NodeId CreateSpareNode();

  /// Create `n_shards` clusters of `nodes_per_shard` nodes tiling the full
  /// key space at `boundaries` (n_shards - 1 keys), wait for their leaders,
  /// and seed the hosted shard map. Returns the shard ids in range order.
  Result<std::vector<shard::ShardId>> BootstrapShards(
      size_t n_shards, size_t nodes_per_shard,
      const std::vector<std::string>& boundaries,
      Duration timeout = 30 * kSecond);

  /// Wipe a node back to a blank spare (the TC baseline's terminate step:
  /// BootstrapReq with an empty genesis). Used to recycle nodes freed by a
  /// merge before they staff a future split.
  Status WipeNode(NodeId id, Duration timeout = 5 * kSecond);

  /// The authoritative shard map (§V's always-available overlay stand-in):
  /// the placement driver mutates it, routing clients cache copies of it.
  shard::ShardMap& shard_map() { return shard_map_; }
  const shard::ShardMap& shard_map() const { return shard_map_; }

  core::Node& node(NodeId id);
  const core::Node& node(NodeId id) const;
  bool HasNode(NodeId id) const { return nodes_.count(id) > 0; }
  std::vector<NodeId> AllNodeIds() const;

  sim::EventQueue& events() { return events_; }
  sim::Network& net() { return net_; }
  /// The seam views the nodes actually talk through (the sim adapters).
  net::Transport& transport() { return transport_; }
  net::Clock& clock() { return clock_; }
  const WorldOptions& options() const { return opts_; }
  TimePoint now() const { return events_.now(); }
  Rng& rng() { return rng_; }
  const NamingService& naming() const { return naming_; }

  // --- fault injection -----------------------------------------------------
  void Crash(NodeId id);
  void Restart(NodeId id);
  bool IsCrashed(NodeId id) const { return net_.IsCrashed(id); }

  /// Hard crash: destroy the node object entirely — every byte of volatile
  /// state is gone — applying `spec` to its not-yet-durable writes (torn
  /// tail, partial batch, ...). Requires a storage mode. The durable medium
  /// (SimDisk / InMemoryStorage) survives for RestartNode.
  Status CrashNode(NodeId id, const storage::CrashSpec& spec = {});
  /// Rebuild a CrashNode'd node purely from its durable medium (WAL replay,
  /// snapshot load, merge-exchange resumption) and rejoin it to the world.
  Status RestartNode(NodeId id);
  /// True when the node was taken down by CrashNode and not yet restarted.
  bool IsDown(NodeId id) const { return nodes_.count(id) == 0; }
  /// The node's storage backend (null in kNone mode or while down).
  storage::Storage* NodeStorage(NodeId id);
  /// The node's durable medium (null outside kWal mode). Survives CrashNode,
  /// so nemeses can keep a latency spike or fsync stall armed across a
  /// reboot.
  storage::SimDisk* NodeDisk(NodeId id);

  /// Override one node's tick interval (clock skew injection: a fast or
  /// slow local clock changes election/heartbeat pacing relative to its
  /// peers). 0 restores WorldOptions::node.tick_interval. Takes effect at
  /// the node's next tick; survives soft Crash/Restart and CrashNode.
  void SetTickInterval(NodeId id, Duration interval);
  Duration TickIntervalOf(NodeId id) const;

  // --- time control ---------------------------------------------------------
  void RunFor(Duration d) { events_.RunFor(d); }
  bool RunUntil(const std::function<bool()>& pred, Duration timeout);

  // --- probes -----------------------------------------------------------------
  /// The live leader among `members` (kNoNode if none). With several
  /// claimants (stale leaders), the one with the highest epoch-term wins.
  NodeId LeaderOf(const std::vector<NodeId>& members) const;
  bool WaitForLeader(const std::vector<NodeId>& members,
                     Duration timeout = 5 * kSecond);
  /// Current configuration as seen by the (highest-epoch) live member.
  raft::ConfigState ConfigOf(const std::vector<NodeId>& members) const;

  // --- admin operations (synchronous: run the event loop until done) ---------
  /// Split the cluster owning `members` into groups at split_keys.
  Status AdminSplit(const std::vector<NodeId>& members,
                    const std::vector<std::vector<NodeId>>& groups,
                    const std::vector<std::string>& split_keys,
                    Duration timeout = 10 * kSecond);
  /// Merge the clusters (each given by its current member list); the first
  /// is the coordinator. resume_members optionally resizes at merge.
  Status AdminMerge(const std::vector<std::vector<NodeId>>& clusters,
                    std::vector<NodeId> resume_members = {},
                    Duration timeout = 30 * kSecond);
  Status AdminMemberChange(const std::vector<NodeId>& members,
                           const raft::MemberChange& change,
                           Duration timeout = 10 * kSecond);
  /// Arbitrary membership target using ReCraft ops, chaining removals of
  /// r >= Q_old across steps as §IV-B requires. Returns consensus steps
  /// taken (for the §VII-E bench) or an error.
  Result<int> AdminResizeTo(const std::vector<NodeId>& members,
                            const std::vector<NodeId>& target,
                            Duration timeout = 15 * kSecond);

  /// Build a merge draft from the live configurations of `clusters`.
  Result<raft::MergePlan> MakeMergeDraft(
      const std::vector<std::vector<NodeId>>& clusters);

  /// Send a raw client request to a specific node and await the reply.
  Result<raft::ClientReply> Call(NodeId to, raft::ClientBody body,
                                 Duration timeout = 5 * kSecond);

  /// Convenience synchronous KV operations routed to the cluster leader
  /// (retrying NotLeader); used by tests and examples. Get travels through
  /// the log (the legacy read path, schedule-stable for existing tests);
  /// ReadGet / Scan use the leader's ReadIndex path and append nothing.
  Status Put(const std::vector<NodeId>& members, const std::string& key,
             const std::string& value, Duration timeout = 5 * kSecond);
  Result<std::string> Get(const std::vector<NodeId>& members,
                          const std::string& key,
                          Duration timeout = 5 * kSecond);
  Result<std::string> ReadGet(const std::vector<NodeId>& members,
                              const std::string& key,
                              Duration timeout = 5 * kSecond);
  Result<kv::Response> Scan(const std::vector<NodeId>& members,
                            const std::string& lo, const std::string& hi,
                            uint32_t limit, Duration timeout = 5 * kSecond);
  /// Compare-and-swap: expected "" requires the key to be absent. A
  /// mismatch surfaces as kConflict with the current value in the result.
  Result<kv::Response> Cas(const std::vector<NodeId>& members,
                           const std::string& key, const std::string& expected,
                           const std::string& desired,
                           Duration timeout = 5 * kSecond);

  /// Preload a cluster with `n` sequential keys (for the split/merge
  /// latency benches) sized `value_bytes` each.
  Status Preload(const std::vector<NodeId>& members, size_t n,
                 size_t value_bytes, const std::string& prefix = "k");

  uint64_t NextTxId() { return next_tx_id_++; }
  uint64_t NextReqId() { return next_req_id_++; }

  /// One-call failure forensics: per-node role / term / commit / applied /
  /// durable horizon plus network and per-disk counters. Used by the sweep
  /// test failure path and tools so CI failures are self-describing.
  void DumpDiagnostics(std::ostream& os) const;

 private:
  void ScheduleTick(NodeId id);
  void TickNode(NodeId id, uint64_t gen);
  /// Create (or re-create, for WAL reboots) the storage backend for `id`.
  /// Returns null in kNone mode.
  storage::Storage* MakeStorage(NodeId id, bool fresh_instance);
  void RegisterNodeHandler(NodeId id);
  Result<raft::ClientReply> CallLeader(const std::vector<NodeId>& members,
                                       raft::ClientBody body,
                                       Duration timeout);

  WorldOptions opts_;
  Rng rng_;
  sim::EventQueue events_;
  sim::Network net_;
  // Seam adapters over events_/net_: every node send, delivery and storage
  // timer flows through these, exactly as recraftd flows through
  // UdpTransport/SystemClock. Declared after what they wrap.
  sim::SimClock clock_{&events_};
  sim::SimTransport transport_{&net_};
  NamingService naming_;
  shard::ShardMap shard_map_;
  // Durable media outlive node objects: disks (kWal) persist for the whole
  // run; storages_ holds the live backend per node (replaced on WAL reboot
  // so recovery genuinely reparses disk bytes). Declared before nodes_ so
  // nodes (which hold raw Storage pointers) are destroyed first.
  std::map<NodeId, std::shared_ptr<storage::SimDisk>> disks_;
  std::map<NodeId, storage::StoragePtr> storages_;
  std::map<NodeId, std::unique_ptr<core::Node>> nodes_;
  /// Incarnation counter per node: stale tick chains from before a
  /// CrashNode notice the bump and die off.
  std::map<NodeId, uint64_t> node_gen_;
  /// Per-node tick-interval overrides (clock skew injection).
  std::map<NodeId, Duration> tick_override_;
  NodeId next_node_id_ = 1;
  uint64_t next_tx_id_ = 1;
  uint64_t next_req_id_ = 1;
  std::map<uint64_t, raft::ClientReply> admin_replies_;
};

}  // namespace recraft::harness
