#include "harness/sweep.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>
#include <thread>

#include "harness/checkers.h"
#include "harness/client.h"
#include "harness/nemesis.h"
#include "harness/world.h"

namespace recraft::harness {

std::string WorldVerdict::ReproLine() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "--seed=%llu --mix=%s --ticks=%llu%s digest=%016llx",
                static_cast<unsigned long long>(seed), mix.c_str(),
                static_cast<unsigned long long>(chaos_ticks),
                injected ? " --inject-divergence" : "",
                static_cast<unsigned long long>(digest));
  return buf;
}

WorldVerdict RunSweepWorld(const SweepOptions& opts, uint64_t seed) {
  WorldVerdict v;
  v.seed = seed;
  v.mix = opts.mix;
  v.chaos_ticks = opts.chaos_ticks;
  v.injected = opts.inject_divergence;

  auto mix = NemesisMix::Make(opts.mix);
  if (!mix.ok()) {
    v.violations.push_back(mix.status().ToString());
    return v;
  }

  WorldOptions wo;
  wo.seed = seed;
  wo.node.trace_applied = true;  // feeds the safety checkers
  wo.storage = StorageMode::kWal;
  // Group commit (not synchronous flush) so disk-latency and fsync-stall
  // nemeses genuinely delay the durability acks/commit votes are gated on.
  wo.wal.flush_interval = 500;
  wo.recorder = opts.recorder;
  World world(wo);

  auto snapshot_run = [&]() {
    v.digest = world.events().execution_digest();
    v.events = world.events().events_executed();
    v.sim_end = world.now();
  };

  auto members = world.CreateCluster(opts.cluster_size);
  std::vector<NodeId> spares;
  for (size_t i = 0; i < opts.spares; ++i) {
    spares.push_back(world.CreateSpareNode());
  }
  if (!world.WaitForLeader(members, 10 * kSecond)) {
    v.violations.push_back("no initial leader");
    snapshot_run();
    return v;
  }

  SafetyChecker checker(world);
  checker.AttachPeriodic();

  Router router;
  Router::Entry entry;
  entry.members = members;
  entry.range = KeyRange::Full();
  router.SetClusters({entry});

  ClientOptions copts;
  copts.key_space = opts.key_space;
  copts.value_bytes = opts.value_bytes;
  copts.retry_timeout = 300 * kMillisecond;
  copts.get_fraction = 0.1;
  copts.scan_fraction = 0.05;
  copts.cas_fraction = 0.1;
  copts.zipf_theta = 0.9;  // skewed, so hot-key migration matters
  copts.key_offset = mix->hot_key_offset();
  copts.recorder = opts.recorder;
  ClientFleet fleet(world, router, opts.clients, copts);
  fleet.Start();

  NemesisTargets targets;
  targets.members = members;
  targets.spares = spares;
  mix->Arm(world, targets, seed);
  world.RunFor(static_cast<Duration>(opts.chaos_ticks) *
               wo.node.tick_interval);
  mix->Disarm();  // heals every outstanding fault, restarts downed nodes
  v.nemesis_activations = mix->TotalActivations();

  fleet.Stop();
  // Belt and braces: nemeses heal their own faults, but a whole world must
  // end fault-free before the convergence clock starts.
  world.net().HealAll();

  // Converge on whatever configuration the churn left behind: stable
  // config, a leader, everything committed and applied everywhere.
  raft::ConfigState cfg;
  bool settled = world.RunUntil(
      [&]() {
        cfg = world.ConfigOf(members);
        if (cfg.members.empty() || cfg.ReconfigPending() ||
            cfg.fixed_quorum != 0) {
          return false;
        }
        NodeId l = world.LeaderOf(cfg.members);
        if (l == kNoNode) return false;
        Index commit = world.node(l).commit_index();
        if (commit < world.node(l).last_log_index()) return false;
        for (NodeId id : cfg.members) {
          if (!world.HasNode(id) || world.IsCrashed(id)) return false;
          if (world.node(id).last_applied() < commit) return false;
        }
        return true;
      },
      opts.settle_timeout);
  v.converged = settled;
  if (!settled) v.violations.push_back("did not converge after heal");

  checker.Observe();
  for (const auto& viol : checker.violations()) v.violations.push_back(viol);

  if (settled) {
    auto it = checker.applied_kv().find(cfg.uid);
    std::vector<kv::Command> commands =
        it == checker.applied_kv().end() ? std::vector<kv::Command>{}
                                         : it->second;
    if (opts.inject_divergence) {
      // A phantom write the system never executed: the replayed history now
      // disagrees with every live store, which is exactly what a real
      // linearizability bug would look like to the checker.
      kv::Command phantom;
      phantom.op = kv::OpType::kPut;
      phantom.key = "k00000000";
      phantom.value = "phantom-divergence";
      commands.push_back(phantom);
    }
    KvHistoryChecker kv_checker;
    for (NodeId id : cfg.members) {
      auto diffs = kv_checker.CompareStore(commands, KvStoreOf(world.node(id)));
      for (auto& d : diffs) {
        v.violations.push_back("node " + std::to_string(id) + ": " + d);
      }
    }
  }

  v.client_ops = fleet.TotalOps();
  LatencyRecorder pooled = fleet.PooledLatency();
  v.lat_p50 = pooled.Percentile(50.0);
  v.lat_p99 = pooled.Percentile(99.0);
  v.lat_p999 = pooled.Percentile(99.9);
  snapshot_run();
  if (!v.ok()) {
    // Capture the world's terminal state alongside the verdict: by the time
    // a caller sees the violation the world is gone.
    std::ostringstream diag;
    world.DumpDiagnostics(diag);
    v.diagnostics = diag.str();
  }
  return v;
}

SweepResult RunSweep(const SweepOptions& opts, uint64_t first_seed,
                     size_t count, size_t threads) {
  SweepResult result;
  result.verdicts.resize(count);
  if (count == 0) return result;
  threads = std::max<size_t>(1, std::min(threads, count));

  // One world per worker at a time; workers touch only their claimed slots,
  // so the verdict array — digests included — is independent of how the
  // seeds landed on threads.
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      size_t i = next.fetch_add(1);
      if (i >= count) return;
      result.verdicts[i] = RunSweepWorld(opts, first_seed + i);
    }
  };
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  for (const auto& verdict : result.verdicts) {
    if (!verdict.ok()) ++result.failures;
  }
  return result;
}

}  // namespace recraft::harness
