#include "harness/client.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace recraft::harness {

namespace {
/// zeta(n, theta) = sum_{i=1..n} 1/i^theta — computed once per client.
double Zetan(uint64_t n, double theta) {
  double z = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    z += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return z;
}
}  // namespace

void Router::UpdateCluster(const KeyRange& range,
                           std::vector<NodeId> members) {
  // Drop every entry overlapping the new range, then insert the new one.
  std::vector<Entry> next;
  for (auto& e : clusters_) {
    if (!e.range.Overlaps(range)) next.push_back(std::move(e));
  }
  Entry fresh;
  fresh.range = range;
  fresh.members = std::move(members);
  next.push_back(std::move(fresh));
  clusters_ = std::move(next);
}

Router::Entry* Router::Resolve(const std::string& key) {
  for (auto& e : clusters_) {
    if (e.range.Contains(key)) return &e;
  }
  return nullptr;
}

bool Router::Refetch() {
  if (authority_ == nullptr) return false;
  if (fetched_version_ == authority_->version() && !clusters_.empty()) {
    return false;
  }
  std::vector<Entry> next;
  for (const shard::ShardInfo& s : authority_->Shards()) {
    Entry e;
    e.members = s.members;
    e.range = s.range;
    e.epoch = s.epoch;
    e.shard = s.id;
    e.leader_hint = s.leader_hint;
    // Keep a locally learned hint when the shard survived unchanged.
    for (const Entry& old : clusters_) {
      if (old.shard == s.id && old.leader_hint != kNoNode) {
        e.leader_hint = old.leader_hint;
        e.epoch = std::max(e.epoch, old.epoch);
        break;
      }
    }
    next.push_back(std::move(e));
  }
  clusters_ = std::move(next);
  fetched_version_ = authority_->version();
  return true;
}

// ---------------------------------------------------------------------------

ClosedLoopClient::ClosedLoopClient(World& world, Router& router, NodeId id,
                                   ClientOptions opts)
    : world_(world),
      router_(router),
      id_(id),
      opts_(opts),
      rng_(Mix64(0xc11e47, id)) {
  if (opts_.batch_size == 0) opts_.batch_size = 1;
  if (opts_.zipf_theta > 0.0) {
    // Gray et al., "Quickly generating billion-record synthetic databases":
    // one uniform draw per key, deterministic given the client RNG.
    const double theta = opts_.zipf_theta;
    const double n = static_cast<double>(opts_.key_space);
    zipf_zetan_ = Zetan(opts_.key_space, theta);
    const double zeta2 = Zetan(2, theta);
    zipf_alpha_ = 1.0 / (1.0 - theta);
    zipf_eta_ = (1.0 - std::pow(2.0 / n, 1.0 - theta)) /
                (1.0 - zeta2 / zipf_zetan_);
  }
  world_.net().Register(
      id_, [this](NodeId, std::shared_ptr<const void> payload, size_t,
                  obs::TraceCtx) {
        const auto& m =
            *std::static_pointer_cast<const raft::Message>(payload);
        if (const auto* reply = std::get_if<raft::ClientReply>(&m)) {
          OnReply(*reply);
        }
      });
}

ClosedLoopClient::~ClosedLoopClient() { world_.net().Unregister(id_); }

void ClosedLoopClient::Start() {
  running_ = true;
  IssueNext();
}

uint64_t ClosedLoopClient::NextKey() {
  uint64_t rank;
  if (opts_.zipf_theta <= 0.0) {
    rank = rng_.Uniform(0, opts_.key_space - 1);
  } else {
    const double u = rng_.NextDouble();
    const double uz = u * zipf_zetan_;
    if (uz < 1.0) {
      rank = 0;
    } else if (uz < 1.0 + std::pow(0.5, opts_.zipf_theta)) {
      rank = 1;
    } else {
      const double n = static_cast<double>(opts_.key_space);
      auto k = static_cast<uint64_t>(
          n * std::pow(zipf_eta_ * u - zipf_eta_ + 1.0, zipf_alpha_));
      rank = std::min<uint64_t>(k, opts_.key_space - 1);
    }
  }
  // Rotation happens after the draw, so a live offset change redirects the
  // hot set without perturbing any RNG stream.
  if (opts_.key_offset != nullptr) {
    rank = (rank + *opts_.key_offset) % opts_.key_space;
  }
  return rank;
}

void ClosedLoopClient::IssueNext() {
  if (!running_) return;
  ++generation_;
  round_.clear();
  round_.resize(opts_.batch_size);
  char buf[48];
  for (PendingOp& op : round_) {
    uint64_t k = NextKey();
    std::snprintf(buf, sizeof(buf), "%s%08llu", opts_.key_prefix.c_str(),
                  static_cast<unsigned long long>(k));
    op.cmd.key = buf;
    op.cmd.client_id = id_;
    op.cmd.seq = next_seq_++;
    // Draw order is load-bearing for deterministic schedules: with the new
    // fractions at their 0 defaults this consumes exactly the historical
    // RNG stream (one key draw, plus one Chance when get_fraction > 0).
    if (opts_.get_fraction > 0 && rng_.Chance(opts_.get_fraction)) {
      op.cmd.op = kv::OpType::kGet;
    } else if (opts_.scan_fraction > 0 && rng_.Chance(opts_.scan_fraction)) {
      op.cmd.op = kv::OpType::kScan;
      op.cmd.scan_hi.clear();  // to the shard's end, capped by the limit
      op.cmd.scan_limit = opts_.scan_limit;
    } else if (opts_.cas_fraction > 0 && rng_.Chance(opts_.cas_fraction)) {
      op.cmd.op = kv::OpType::kCas;
      op.cmd.value.assign(opts_.value_bytes, 'x');
      // Alternate between expect-present and expect-absent so both CAS
      // outcomes (OK and kConflict) occur under load.
      if (op.cmd.seq % 2 == 0) op.cmd.expected.assign(opts_.value_bytes, 'x');
    } else {
      op.cmd.op = kv::OpType::kPut;
      op.cmd.value.assign(opts_.value_bytes, 'x');
    }
    if (opts_.recorder != nullptr) {
      op.trace_id = opts_.recorder->NewTraceId();
      op.span = opts_.recorder->BeginSpan(
          id_, obs::Name::kClientOp, obs::TraceCtx{op.trace_id, 0},
          static_cast<uint64_t>(op.cmd.op));
    }
  }
  // Batch per shard: ops bound for the same group leave back-to-back.
  if (round_.size() > 1) {
    std::stable_sort(round_.begin(), round_.end(),
                     [this](const PendingOp& a, const PendingOp& b) {
                       Router::Entry* ea = router_.Resolve(a.cmd.key);
                       Router::Entry* eb = router_.Resolve(b.cmd.key);
                       auto ka = ea ? ea->shard : shard::kNoShard;
                       auto kb = eb ? eb->shard : shard::kNoShard;
                       if (ka != kb) return ka < kb;
                       return a.cmd.key < b.cmd.key;
                     });
  }
  round_open_ = round_.size();
  for (size_t i = 0; i < round_.size(); ++i) SendOp(i);
  ArmRoundTimeout();
}

void ClosedLoopClient::SendOp(size_t idx) {
  if (!running_) return;
  PendingOp& op = round_[idx];
  Router::Entry* entry = router_.Resolve(op.cmd.key);
  if (entry == nullptr || entry->members.empty()) {
    // No routing information: try to refresh, else wait for the round
    // timeout to retry.
    router_.Refetch();
    entry = router_.Resolve(op.cmd.key);
    if (entry == nullptr || entry->members.empty()) return;
  }
  NodeId target = entry->leader_hint;
  if (target == kNoNode ||
      std::find(entry->members.begin(), entry->members.end(), target) ==
          entry->members.end()) {
    target = entry->members[entry->rotate++ % entry->members.size()];
  }
  op.req_id = world_.NextReqId();
  if (op.issued_at == 0) op.issued_at = world_.now();
  raft::ClientRequest req;
  req.req_id = op.req_id;
  req.from = id_;
  // Reads ride the ReadIndex path: the leader confirms its commit index
  // with one probe round and serves from applied state — no log entry, no
  // WAL flush, no replication fan-out per read.
  if (kv::IsReadOnly(op.cmd.op) && !opts_.reads_via_log) {
    req.body = raft::ReadRequest{kv::EncodeCommand(op.cmd)};
  } else {
    req.body = kv::EncodeCommand(op.cmd);
  }
  auto msg = raft::MakeMessage(raft::Message(req));
  if (op.trace_id != 0) {
    msg.set_trace_ctx(obs::TraceCtx{op.trace_id, op.span});
    if (++op.attempts > 1 && opts_.recorder != nullptr) {
      opts_.recorder->Emit(id_, obs::Name::kClientRetry,
                           obs::TraceCtx{op.trace_id, op.span}, op.attempts);
    }
  }
  world_.net().Send(id_, target, msg, msg.wire_bytes(), msg.trace_ctx());
}

void ClosedLoopClient::ScheduleResend(size_t idx, Duration delay) {
  uint64_t gen = generation_;
  world_.events().Schedule(
      delay, [this, gen, idx, alive = std::weak_ptr<int>(alive_)]() {
        if (alive.expired() || !running_ || gen != generation_) return;
        if (idx >= round_.size() || round_[idx].done) return;
        SendOp(idx);
      });
}

void ClosedLoopClient::ArmRoundTimeout() {
  uint64_t gen = generation_;
  world_.events().Schedule(
      opts_.retry_timeout, [this, gen, alive = std::weak_ptr<int>(alive_)]() {
        if (!alive.expired()) OnRoundTimeout(gen);
      });
}

void ClosedLoopClient::OnRoundTimeout(uint64_t generation) {
  if (!running_ || generation != generation_) return;
  // Lost messages or a dead routing target: re-send everything still open
  // (same sequence numbers — the session layer deduplicates), dropping
  // leader hints so another member gets probed.
  for (size_t i = 0; i < round_.size(); ++i) {
    if (round_[i].done) continue;
    ++retries_;
    Router::Entry* entry = router_.Resolve(round_[i].cmd.key);
    if (entry != nullptr) entry->leader_hint = kNoNode;
    SendOp(i);
  }
  ArmRoundTimeout();
}

void ClosedLoopClient::CompleteOp(PendingOp& op, const raft::ClientReply& reply) {
  op.done = true;
  ++ops_done_;
  if (op.span != 0 && opts_.recorder != nullptr) {
    opts_.recorder->EndSpan(id_, obs::Name::kClientOp, op.span,
                            reply.status.ok() ? obs::Outcome::kOk
                                              : obs::Outcome::kError,
                            static_cast<uint64_t>(reply.status.code()),
                            op.trace_id);
  }
  if (kv::IsReadOnly(op.cmd.op)) ++reads_done_;
  Duration lat = world_.now() - op.issued_at;
  latency_.Record(lat);
  if (opts_.latency != nullptr) opts_.latency->Record(lat);
  if (opts_.throughput != nullptr) opts_.throughput->Record(world_.now());
  if (opts_.on_op_complete) opts_.on_op_complete(op.cmd.key, world_.now());
  Router::Entry* entry = router_.Resolve(op.cmd.key);
  if (entry != nullptr) {
    entry->leader_hint = reply.from;
    if (reply.epoch > entry->epoch) {
      // The group reconfigured since the map was fetched; if it no longer
      // serves the cached range, our whole copy is suspect.
      entry->epoch = reply.epoch;
      if (!(reply.serving_range == entry->range)) router_.Refetch();
    }
  }
  if (--round_open_ == 0) IssueNext();
}

void ClosedLoopClient::OnReply(const raft::ClientReply& reply) {
  if (!running_) return;
  size_t idx = round_.size();
  for (size_t i = 0; i < round_.size(); ++i) {
    if (!round_[i].done && round_[i].req_id == reply.req_id) {
      idx = i;
      break;
    }
  }
  if (idx == round_.size()) return;  // stale transmission's reply
  PendingOp& op = round_[idx];
  Code code = reply.status.code();

  if (code == Code::kNotLeader || code == Code::kBusy ||
      code == Code::kUnavailable) {
    ++retries_;
    Router::Entry* entry = router_.Resolve(op.cmd.key);
    if (entry != nullptr) entry->leader_hint = reply.leader_hint;
    // Brief backoff so a mid-reconfiguration group is not hammered.
    ScheduleResend(idx, 10 * kMillisecond);
    return;
  }
  if (code == Code::kWrongShard || code == Code::kOutOfRange) {
    // Stale routing: the replying group does not serve the key (wrong
    // shard), or the command committed after a split moved the range
    // (out-of-range at apply). Refetch the map and re-route.
    ++retries_;
    ++wrong_shard_retries_;
    if (!router_.Refetch()) {
      // Same map version (or manual mode): drop the hint so rotation finds
      // a member of whichever group took over.
      Router::Entry* entry = router_.Resolve(op.cmd.key);
      if (entry != nullptr) entry->leader_hint = kNoNode;
    }
    ScheduleResend(idx, 10 * kMillisecond);
    return;
  }
  // Success (OK / NotFound for gets and deletes count as completed ops).
  CompleteOp(op, reply);
}

// ---------------------------------------------------------------------------

ClientFleet::ClientFleet(World& world, Router& router, size_t n,
                         ClientOptions opts) {
  opts.throughput = &throughput_;
  for (size_t i = 0; i < n; ++i) {
    clients_.push_back(std::make_unique<ClosedLoopClient>(
        world, router, static_cast<NodeId>(kFirstClientId + i), opts));
  }
}

void ClientFleet::Start() {
  for (auto& c : clients_) c->Start();
}

void ClientFleet::Stop() {
  for (auto& c : clients_) c->Stop();
}

uint64_t ClientFleet::TotalOps() const {
  uint64_t n = 0;
  for (const auto& c : clients_) n += c->ops_done();
  return n;
}

uint64_t ClientFleet::TotalReads() const {
  uint64_t n = 0;
  for (const auto& c : clients_) n += c->reads_done();
  return n;
}

uint64_t ClientFleet::TotalWrongShardRetries() const {
  uint64_t n = 0;
  for (const auto& c : clients_) n += c->wrong_shard_retries();
  return n;
}

LatencyRecorder ClientFleet::PooledLatency() const {
  LatencyRecorder pooled;
  for (const auto& c : clients_) pooled.Merge(c->latency());
  return pooled;
}

}  // namespace recraft::harness
