#include "harness/client.h"

#include <cstdio>

namespace recraft::harness {

void Router::UpdateCluster(const KeyRange& range,
                           std::vector<NodeId> members) {
  // Drop every entry overlapping the new range, then insert the new one.
  std::vector<Entry> next;
  for (auto& e : clusters_) {
    if (!e.range.Overlaps(range)) next.push_back(std::move(e));
  }
  Entry fresh;
  fresh.range = range;
  fresh.members = std::move(members);
  next.push_back(std::move(fresh));
  clusters_ = std::move(next);
}

Router::Entry* Router::Resolve(const std::string& key) {
  for (auto& e : clusters_) {
    if (e.range.Contains(key)) return &e;
  }
  return nullptr;
}

ClosedLoopClient::ClosedLoopClient(World& world, Router& router, NodeId id,
                                   ClientOptions opts)
    : world_(world),
      router_(router),
      id_(id),
      opts_(opts),
      rng_(Mix64(0xc11e47, id)) {
  world_.net().Register(
      id_, [this](NodeId, std::shared_ptr<const void> payload, size_t) {
        const auto& m =
            *std::static_pointer_cast<const raft::Message>(payload);
        if (const auto* reply = std::get_if<raft::ClientReply>(&m)) {
          OnReply(*reply);
        }
      });
}

ClosedLoopClient::~ClosedLoopClient() { world_.net().Unregister(id_); }

void ClosedLoopClient::Start() {
  running_ = true;
  IssueNext();
}

void ClosedLoopClient::IssueNext() {
  if (!running_) return;
  char buf[48];
  uint64_t k = rng_.Uniform(0, opts_.key_space - 1);
  std::snprintf(buf, sizeof(buf), "%s%08llu", opts_.key_prefix.c_str(),
                static_cast<unsigned long long>(k));
  current_ = kv::Command{};
  current_.key = buf;
  current_.client_id = id_;
  current_.seq = next_seq_++;
  if (opts_.get_fraction > 0 && rng_.Chance(opts_.get_fraction)) {
    current_.op = kv::OpType::kGet;
  } else {
    current_.op = kv::OpType::kPut;
    current_.value.assign(opts_.value_bytes, 'x');
  }
  issued_at_ = world_.now();
  SendCurrent();
}

void ClosedLoopClient::SendCurrent() {
  if (!running_) return;
  Router::Entry* entry = router_.Resolve(current_.key);
  if (entry == nullptr || entry->members.empty()) {
    // No routing information; back off and retry.
    uint64_t gen = ++generation_;
    world_.events().Schedule(
        opts_.retry_timeout,
        [this, gen, alive = std::weak_ptr<int>(alive_)]() {
          if (!alive.expired()) OnTimeout(gen);
        });
    return;
  }
  NodeId target = entry->leader_hint;
  if (target == kNoNode ||
      std::find(entry->members.begin(), entry->members.end(), target) ==
          entry->members.end()) {
    target = entry->members[entry->rotate++ % entry->members.size()];
  }
  current_req_id_ = world_.NextReqId();
  raft::ClientRequest req;
  req.req_id = current_req_id_;
  req.from = id_;
  req.body = current_;
  world_.net().Send(id_, target, raft::MakeMessage(raft::Message(req)),
                    32 + current_.WireBytes());
  uint64_t gen = ++generation_;
  world_.events().Schedule(
      opts_.retry_timeout, [this, gen, alive = std::weak_ptr<int>(alive_)]() {
        if (!alive.expired()) OnTimeout(gen);
      });
}

void ClosedLoopClient::OnTimeout(uint64_t generation) {
  if (!running_ || generation != generation_) return;
  ++retries_;
  // Same command, same sequence number: the session layer deduplicates.
  Router::Entry* entry = router_.Resolve(current_.key);
  if (entry != nullptr) entry->leader_hint = kNoNode;  // try someone else
  SendCurrent();
}

void ClosedLoopClient::OnReply(const raft::ClientReply& reply) {
  if (!running_ || reply.req_id != current_req_id_) return;
  Router::Entry* entry = router_.Resolve(current_.key);
  if (reply.status.code() == Code::kNotLeader ||
      reply.status.code() == Code::kBusy ||
      reply.status.code() == Code::kUnavailable) {
    ++retries_;
    if (entry != nullptr) entry->leader_hint = reply.leader_hint;
    ++generation_;
    // Brief backoff so a mid-reconfiguration cluster is not hammered.
    uint64_t gen = generation_;
    world_.events().Schedule(
        10 * kMillisecond, [this, gen, alive = std::weak_ptr<int>(alive_)]() {
          if (!alive.expired() && running_ && gen == generation_) {
            SendCurrent();
          }
        });
    world_.events().Schedule(
        opts_.retry_timeout + 10 * kMillisecond,
        [this, gen, alive = std::weak_ptr<int>(alive_)]() {
          if (!alive.expired()) OnTimeout(gen);
        });
    return;
  }
  if (reply.status.code() == Code::kOutOfRange) {
    // Routing table stale (a split/merge moved the range): re-resolve.
    ++retries_;
    ++generation_;
    uint64_t gen = generation_;
    world_.events().Schedule(
        10 * kMillisecond, [this, gen, alive = std::weak_ptr<int>(alive_)]() {
          if (!alive.expired() && running_ && gen == generation_) {
            SendCurrent();
          }
        });
    return;
  }
  // Success (OK / NotFound for gets and deletes count as completed ops).
  if (entry != nullptr) entry->leader_hint = reply.from;
  ++generation_;
  ++ops_done_;
  Duration lat = world_.now() - issued_at_;
  latency_.Record(lat);
  if (opts_.latency != nullptr) opts_.latency->Record(lat);
  if (opts_.throughput != nullptr) opts_.throughput->Record(world_.now());
  if (opts_.on_op_complete) opts_.on_op_complete(current_.key, world_.now());
  IssueNext();
}

ClientFleet::ClientFleet(World& world, Router& router, size_t n,
                         ClientOptions opts) {
  opts.throughput = &throughput_;
  for (size_t i = 0; i < n; ++i) {
    clients_.push_back(std::make_unique<ClosedLoopClient>(
        world, router, static_cast<NodeId>(kFirstClientId + i), opts));
  }
}

void ClientFleet::Start() {
  for (auto& c : clients_) c->Start();
}

void ClientFleet::Stop() {
  for (auto& c : clients_) c->Stop();
}

uint64_t ClientFleet::TotalOps() const {
  uint64_t n = 0;
  for (const auto& c : clients_) n += c->ops_done();
  return n;
}

LatencyRecorder ClientFleet::PooledLatency() const {
  LatencyRecorder pooled;
  for (const auto& c : clients_) pooled.Merge(c->latency());
  return pooled;
}

}  // namespace recraft::harness
