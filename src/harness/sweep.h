// Seeded chaos-world sweeps: build a cluster + client fleet + nemesis mix
// from a single seed, run it, and check every safety property the harness
// knows (SafetyChecker invariants + KvHistoryChecker store/history
// agreement). Each world is a pure function of (seed, SweepOptions), so a
// failing verdict carries a single-line repro that replays the exact run in
// one process — the sweep runner's whole reason to exist.
//
// RunSweep fans worlds out across a thread pool, one world per thread at a
// time, with zero shared mutable state between worlds (each owns its event
// queue, RNGs, network and disks); verdicts land in per-seed slots, so the
// result — including each world's execution digest — is identical whether
// the sweep ran on 1 thread or N.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/trace.h"

namespace recraft::harness {

struct SweepOptions {
  /// Nemesis scenario preset; see NemesisMix::KnownMixes().
  std::string mix = "all";
  size_t cluster_size = 5;
  size_t spares = 2;         // churn-storm fodder
  size_t clients = 4;
  /// Chaos window length, in node tick intervals (default tick = 10 ms).
  uint64_t chaos_ticks = 200;
  Duration settle_timeout = 60 * kSecond;
  uint64_t key_space = 512;
  size_t value_bytes = 16;
  /// Corrupt the *checked history* (never the system) with one phantom
  /// write, so every world fails its store/history comparison: proves the
  /// catch -> repro-line -> deterministic-replay pipeline end to end.
  bool inject_divergence = false;
  /// Optional flight recorder, armed for the whole world (nodes, network,
  /// WALs, clients). Pure observation — the digest is identical armed or
  /// not — so it is safe to re-run a failing seed with this set and export
  /// the trace. Never share one recorder across parallel sweep worlds.
  obs::Recorder* recorder = nullptr;
};

struct WorldVerdict {
  uint64_t seed = 0;
  std::string mix;
  uint64_t chaos_ticks = 0;
  bool injected = false;
  uint64_t digest = 0;  // EventQueue::execution_digest() at verdict time
  uint64_t events = 0;
  Duration sim_end = 0;
  uint64_t client_ops = 0;
  uint64_t nemesis_activations = 0;
  /// Client-op latency percentiles, pooled across the fleet (microseconds).
  Duration lat_p50 = 0;
  Duration lat_p99 = 0;
  Duration lat_p999 = 0;
  bool converged = false;
  std::vector<std::string> violations;
  /// World::DumpDiagnostics output, captured at verdict time when the world
  /// failed (empty on clean worlds): per-node roles/indices, network and
  /// disk counters, event-queue digest.
  std::string diagnostics;

  bool ok() const { return converged && violations.empty(); }
  /// Single-line repro, pasteable as tools/sweep arguments:
  ///   --seed=S --mix=M --ticks=T digest=D
  std::string ReproLine() const;
};

/// Run one seeded world to a verdict. Deterministic: same (opts, seed) ->
/// same digest, same violations, bit for bit.
WorldVerdict RunSweepWorld(const SweepOptions& opts, uint64_t seed);

struct SweepResult {
  std::vector<WorldVerdict> verdicts;  // indexed by seed order
  size_t failures = 0;
};

/// Run seeds [first_seed, first_seed + count) across `threads` workers.
/// Workers only write their own verdict slots; aggregation happens after
/// the join, so nothing about the result depends on thread interleaving.
SweepResult RunSweep(const SweepOptions& opts, uint64_t first_seed,
                     size_t count, size_t threads);

}  // namespace recraft::harness
