// Workload clients and the range router. ClosedLoopClient keeps a fixed
// number of outstanding requests (one per client, as in the paper's etcd
// benchmark clients); the Router maps keys to clusters and caches leader
// hints, standing in for the etcd overlay that redirects requests to the
// right subcluster after splits and merges.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "harness/world.h"

namespace recraft::harness {

/// The overlay's view of the sharded key space.
class Router {
 public:
  struct Entry {
    std::vector<NodeId> members;
    KeyRange range;
    NodeId leader_hint = kNoNode;
    size_t rotate = 0;  // round-robin cursor when no hint is known
  };

  void SetClusters(std::vector<Entry> clusters) {
    clusters_ = std::move(clusters);
  }
  /// Replace the entry covering `range` (after a split/merge completes).
  void UpdateCluster(const KeyRange& range, std::vector<NodeId> members);

  Entry* Resolve(const std::string& key);
  size_t NumClusters() const { return clusters_.size(); }
  const std::vector<Entry>& clusters() const { return clusters_; }

 private:
  std::vector<Entry> clusters_;
};

struct ClientOptions {
  uint64_t key_space = 100000;
  size_t value_bytes = 512;       // the paper uses 512 B requests
  std::string key_prefix = "k";
  Duration retry_timeout = 1 * kSecond;
  double get_fraction = 0.0;      // paper evaluates writes
  /// Record a completion into this series (shared across clients for the
  /// throughput-over-time figures). May be null.
  ThroughputSeries* throughput = nullptr;
  LatencyRecorder* latency = nullptr;  // may be null; per-client otherwise
  /// Invoked on every completed op, e.g. to bucket throughput per
  /// subcluster by key (Figs. 7a/8a).
  std::function<void(const std::string& key, TimePoint when)> on_op_complete;
};

/// A closed-loop client: issues one request, waits for the reply (or the
/// retry timeout), then issues the next. Retries preserve the sequence
/// number, so the session layer deduplicates re-executions.
class ClosedLoopClient {
 public:
  ClosedLoopClient(World& world, Router& router, NodeId id, ClientOptions opts);
  ~ClosedLoopClient();

  void Start();
  void Stop() { running_ = false; }

  uint64_t ops_done() const { return ops_done_; }
  uint64_t retries() const { return retries_; }
  const LatencyRecorder& latency() const { return latency_; }

 private:
  void IssueNext();
  void SendCurrent();
  void OnReply(const raft::ClientReply& reply);
  void OnTimeout(uint64_t generation);

  World& world_;
  Router& router_;
  const NodeId id_;
  ClientOptions opts_;
  Rng rng_;
  bool running_ = false;

  uint64_t next_seq_ = 1;
  uint64_t generation_ = 0;  // invalidates stale timeout events
  kv::Command current_;
  uint64_t current_req_id_ = 0;
  TimePoint issued_at_ = 0;

  uint64_t ops_done_ = 0;
  uint64_t retries_ = 0;
  LatencyRecorder latency_;
  /// Liveness token: scheduled timeout events hold a weak_ptr so they
  /// become no-ops when the client is destroyed before they fire.
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

/// A fleet of closed-loop clients sharing a router and a throughput series.
class ClientFleet {
 public:
  ClientFleet(World& world, Router& router, size_t n, ClientOptions opts);

  void Start();
  void Stop();
  uint64_t TotalOps() const;
  /// Pooled latency across all clients.
  LatencyRecorder PooledLatency() const;
  ThroughputSeries& throughput() { return throughput_; }

 private:
  ThroughputSeries throughput_;
  std::vector<std::unique_ptr<ClosedLoopClient>> clients_;
};

}  // namespace recraft::harness
