// Workload clients and the map-driven range router.
//
// The Router is the client-side cache of the shard map: in map-driven mode
// it copies the World-hosted authority (the etcd-overlay stand-in) and
// refetches when a reply proves the copy stale — a kWrongShard rejection,
// or a successful reply whose serving range/epoch disagree with the cached
// entry. The legacy manual mode (SetClusters/UpdateCluster) remains for
// tests and benches that steer routing by hand.
//
// ClosedLoopClient keeps a bounded round of outstanding requests (one per
// round by default, as in the paper's etcd benchmark clients); rounds with
// batch_size > 1 are grouped per shard so ops to the same group go out
// back-to-back. Retries preserve sequence numbers, so the session layer
// deduplicates re-executions.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "harness/world.h"
#include "shard/shard_map.h"

namespace recraft::harness {

/// The overlay's view of the sharded key space.
class Router {
 public:
  struct Entry {
    std::vector<NodeId> members;
    KeyRange range;
    NodeId leader_hint = kNoNode;
    size_t rotate = 0;  // round-robin cursor when no hint is known
    uint32_t epoch = 0;
    shard::ShardId shard = shard::kNoShard;
  };

  Router() = default;
  /// Map-driven mode: cache `authority` (usually World::shard_map()) and
  /// refetch from it on demand.
  explicit Router(const shard::ShardMap* authority) : authority_(authority) {
    Refetch();
  }

  void SetClusters(std::vector<Entry> clusters) {
    clusters_ = std::move(clusters);
  }
  /// Replace the entry covering `range` (after a split/merge completes).
  void UpdateCluster(const KeyRange& range, std::vector<NodeId> members);

  Entry* Resolve(const std::string& key);

  /// Re-copy from the authority, preserving leader hints of unchanged
  /// shards. Returns true when a newer map version was installed; always
  /// false in manual mode.
  bool Refetch();
  uint64_t fetched_version() const { return fetched_version_; }

  size_t NumClusters() const { return clusters_.size(); }
  const std::vector<Entry>& clusters() const { return clusters_; }

 private:
  const shard::ShardMap* authority_ = nullptr;
  uint64_t fetched_version_ = 0;
  std::vector<Entry> clusters_;
};

struct ClientOptions {
  uint64_t key_space = 100000;
  size_t value_bytes = 512;       // the paper uses 512 B requests
  std::string key_prefix = "k";
  Duration retry_timeout = 1 * kSecond;
  double get_fraction = 0.0;      // paper evaluates writes
  /// Fractions of the remaining (non-get) ops issued as bounded range
  /// reads and compare-and-swaps. Gets and scans use the leader's
  /// ReadIndex path (no log entry) unless reads_via_log is set.
  double scan_fraction = 0.0;
  double cas_fraction = 0.0;
  uint32_t scan_limit = 8;
  /// Zipfian key skew (YCSB-style): 0 = uniform; theta in (0,1), e.g. 0.99
  /// concentrates most traffic on a few hot keys.
  double zipf_theta = 0.0;
  /// When set, the drawn key rank is rotated by *key_offset (mod key_space)
  /// before naming the key. The hot-key-migration nemesis points every
  /// client here and rewrites the offset live, moving the Zipfian hot set
  /// around the key space without touching client RNG streams.
  const uint64_t* key_offset = nullptr;
  /// Legacy read path: route gets/scans through the log as commands.
  bool reads_via_log = false;
  /// Requests issued per round, grouped per shard. 1 = classic closed loop.
  size_t batch_size = 1;
  /// Record a completion into this series (shared across clients for the
  /// throughput-over-time figures). May be null.
  ThroughputSeries* throughput = nullptr;
  LatencyRecorder* latency = nullptr;  // may be null; per-client otherwise
  /// Invoked on every completed op, e.g. to bucket throughput per
  /// subcluster by key (Figs. 7a/8a) or feed the placement driver's load
  /// accounting.
  std::function<void(const std::string& key, TimePoint when)> on_op_complete;
  /// Armed flight recorder: every issued op gets a trace id and a
  /// client.op span, and requests carry the causal context into the
  /// cluster. Null = disarmed (no trace ids are drawn). Observation only.
  obs::Recorder* recorder = nullptr;
};

/// A closed-loop client: issues one round of requests, waits for all
/// replies (retrying on timeouts, leader changes and stale routing), then
/// issues the next round.
class ClosedLoopClient {
 public:
  ClosedLoopClient(World& world, Router& router, NodeId id, ClientOptions opts);
  ~ClosedLoopClient();

  void Start();
  void Stop() { running_ = false; }

  uint64_t ops_done() const { return ops_done_; }
  uint64_t reads_done() const { return reads_done_; }
  uint64_t retries() const { return retries_; }
  /// Retries caused specifically by stale routing (kWrongShard or a command
  /// applied outside the executing group's range).
  uint64_t wrong_shard_retries() const { return wrong_shard_retries_; }
  const LatencyRecorder& latency() const { return latency_; }

 private:
  struct PendingOp {
    kv::Command cmd;
    uint64_t req_id = 0;     // of the latest transmission
    TimePoint issued_at = 0;
    bool done = false;
    uint64_t trace_id = 0;   // flight-recorder causality (0 when disarmed)
    uint64_t span = 0;       // open client.op span
    uint32_t attempts = 0;
  };

  void IssueNext();
  void SendOp(size_t idx);
  void ScheduleResend(size_t idx, Duration delay);
  void ArmRoundTimeout();
  void OnReply(const raft::ClientReply& reply);
  void OnRoundTimeout(uint64_t generation);
  void CompleteOp(PendingOp& op, const raft::ClientReply& reply);

  World& world_;
  Router& router_;
  const NodeId id_;
  ClientOptions opts_;
  Rng rng_;
  bool running_ = false;

  uint64_t NextKey();

  uint64_t next_seq_ = 1;
  uint64_t generation_ = 0;  // bumped per round; invalidates stale events
  std::vector<PendingOp> round_;
  size_t round_open_ = 0;
  // Zipfian generator state (Gray et al.), precomputed when zipf_theta > 0.
  double zipf_zetan_ = 0.0;
  double zipf_eta_ = 0.0;
  double zipf_alpha_ = 0.0;

  uint64_t ops_done_ = 0;
  uint64_t reads_done_ = 0;
  uint64_t retries_ = 0;
  uint64_t wrong_shard_retries_ = 0;
  LatencyRecorder latency_;
  /// Liveness token: scheduled events hold a weak_ptr so they become no-ops
  /// when the client is destroyed before they fire.
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

/// A fleet of closed-loop clients sharing a router and a throughput series.
class ClientFleet {
 public:
  ClientFleet(World& world, Router& router, size_t n, ClientOptions opts);

  void Start();
  void Stop();
  uint64_t TotalOps() const;
  uint64_t TotalReads() const;
  uint64_t TotalWrongShardRetries() const;
  /// Pooled latency across all clients.
  LatencyRecorder PooledLatency() const;
  ThroughputSeries& throughput() { return throughput_; }

 private:
  ThroughputSeries throughput_;
  std::vector<std::unique_ptr<ClosedLoopClient>> clients_;
};

}  // namespace recraft::harness
