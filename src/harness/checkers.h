// Runtime checkers for the safety properties the paper proves (§VI):
//
//  * Election Safety (Def. 2)        — at most one leader per
//                                      (cluster, epoch, term), ever;
//  * Log Matching / State Machine
//    Safety (Defs. 3, 7, Thm. 1)     — applied entries at the same
//                                      (cluster, index) are identical on
//                                      every node;
//  * Cluster Well-Formedness (Def. 6)— same-epoch clusters are identical or
//                                      disjoint;
//  * Session linearizability          — per-key reads observe the committed
//                                      write order, sessions apply at most
//                                      once.
//
// The checkers observe the world (sampled every tick and on demand) and
// drain the nodes' applied-entry traces; property tests sweep random fault
// schedules and assert no violation is ever recorded.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "harness/world.h"

namespace recraft::harness {

class SafetyChecker {
 public:
  explicit SafetyChecker(World& world) : world_(world) {}

  /// Sample leadership and configurations now, and drain applied traces.
  /// Call frequently (e.g. every simulated tick) during property tests.
  void Observe();

  /// Install a recurring observation event (every `interval`).
  void AttachPeriodic(Duration interval = 10 * kMillisecond);

  const std::vector<std::string>& violations() const { return violations_; }
  bool ok() const { return violations_.empty(); }
  /// Human-readable summary of all violations (empty string when ok).
  std::string Report() const;

  /// Applied kv-commands per cluster uid in apply order (for the
  /// linearizability checker below).
  const std::map<ClusterUid, std::vector<kv::Command>>& applied_kv() const {
    return applied_kv_;
  }

 private:
  void CheckElectionSafety();
  void CheckWellFormedness();
  void DrainApplied();
  void Violate(std::string what);

  World& world_;
  // (uid, epoch, term) -> leader node observed.
  std::map<std::tuple<ClusterUid, uint32_t, uint32_t>, NodeId> leaders_;
  // (uid, index) -> (term, payload hash) of the applied entry.
  std::map<std::pair<ClusterUid, Index>, std::pair<uint64_t, size_t>> applied_;
  // First observer of each (uid, index): detect divergent re-application.
  std::map<ClusterUid, std::vector<kv::Command>> applied_kv_;
  std::set<std::pair<ClusterUid, Index>> kv_recorded_;
  std::vector<std::string> violations_;
};

/// Replays a cluster's applied command sequence with the same session-dedup
/// semantics as kv::Store (a retried command re-committed at a later index
/// must not mutate twice) and returns the implied final state. Tests compare
/// it against live stores: together with SafetyChecker's single-apply-order
/// guarantee this witnesses linearizability of the KV service.
class KvHistoryChecker {
 public:
  /// Replay commands; the result maps key -> value for keys within `range`.
  std::map<std::string, std::string> Replay(
      const std::vector<kv::Command>& commands,
      const KeyRange& range = KeyRange::Full());

  /// Compare a live store against the replayed history. Returns
  /// discrepancies (restricted to the store's own range).
  std::vector<std::string> CompareStore(
      const std::vector<kv::Command>& commands, const kv::Store& store);
};

}  // namespace recraft::harness
