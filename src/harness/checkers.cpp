#include "harness/checkers.h"

#include "common/logging.h"
#include "kv/service.h"

namespace recraft::harness {

void SafetyChecker::Violate(std::string what) {
  RLOG_ERROR("check", "%s", what.c_str());
  violations_.push_back(std::move(what));
}

void SafetyChecker::Observe() {
  CheckElectionSafety();
  CheckWellFormedness();
  DrainApplied();
}

void SafetyChecker::AttachPeriodic(Duration interval) {
  world_.events().Schedule(interval, [this, interval]() {
    Observe();
    AttachPeriodic(interval);
  });
}

void SafetyChecker::CheckElectionSafety() {
  // Definition 2: at most one leader per (cluster, epoch, term) — across
  // the entire run, not just at an instant.
  for (NodeId id : world_.AllNodeIds()) {
    if (world_.IsCrashed(id)) continue;
    const auto& n = world_.node(id);
    if (!n.IsLeader()) continue;
    auto key = std::make_tuple(n.cluster_uid(), n.current_et().epoch(),
                               n.current_et().term());
    auto [it, inserted] = leaders_.emplace(key, id);
    if (!inserted && it->second != id) {
      Violate("election safety: nodes " + std::to_string(it->second) +
              " and " + std::to_string(id) + " both led cluster " +
              std::to_string(std::get<0>(key)) + " at " +
              raft::EpochTerm::Make(std::get<1>(key), std::get<2>(key))
                  .ToString());
    }
  }
}

void SafetyChecker::CheckWellFormedness() {
  // Definition 6: two clusters of the same epoch are identical or disjoint.
  // Observed configurations of nodes mid-recovery can be stale, so compare
  // only stable nodes of the same epoch.
  std::map<std::pair<uint32_t, ClusterUid>, std::vector<NodeId>> membership;
  for (NodeId id : world_.AllNodeIds()) {
    if (world_.IsCrashed(id)) continue;
    const auto& n = world_.node(id);
    if (n.config().mode != raft::ConfigMode::kStable) continue;
    if (n.IsRetired()) continue;
    membership[{n.epoch(), n.cluster_uid()}] = n.config().members;
  }
  std::map<uint32_t, std::vector<std::pair<ClusterUid, std::vector<NodeId>>>>
      by_epoch;
  for (const auto& [key, members] : membership) {
    by_epoch[key.first].push_back({key.second, members});
  }
  for (const auto& [epoch, clusters] : by_epoch) {
    for (size_t i = 0; i < clusters.size(); ++i) {
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        // Different uids at the same epoch must have disjoint members.
        std::set<NodeId> a(clusters[i].second.begin(),
                           clusters[i].second.end());
        bool overlap = false;
        for (NodeId n : clusters[j].second) {
          if (a.count(n) > 0) {
            overlap = true;
            break;
          }
        }
        if (overlap) {
          Violate("well-formedness: clusters " +
                  std::to_string(clusters[i].first) + " and " +
                  std::to_string(clusters[j].first) + " of epoch " +
                  std::to_string(epoch) + " share members");
        }
      }
    }
  }
}

void SafetyChecker::DrainApplied() {
  for (NodeId id : world_.AllNodeIds()) {
    auto records = world_.node(id).DrainApplied();
    for (const auto& rec : records) {
      auto key = std::make_pair(rec.uid, rec.index);
      auto val = std::make_pair(rec.term, rec.payload_hash);
      auto [it, inserted] = applied_.emplace(key, val);
      if (!inserted && it->second != val) {
        Violate("state machine safety: cluster " + std::to_string(rec.uid) +
                " index " + std::to_string(rec.index) +
                " applied divergent entries (node " + std::to_string(id) +
                ")");
      }
      if (rec.is_cmd && inserted) {
        // Commands are opaque at the consensus layer; the KV linearizability
        // checker decodes them back. Non-KV machines' commands (a queue
        // world) simply do not decode and are covered by the payload-hash
        // state-machine-safety check above.
        if (auto cmd = kv::DecodeCommand(rec.cmd); cmd.ok()) {
          applied_kv_[rec.uid].push_back(std::move(*cmd));
        }
      }
    }
  }
}

std::string SafetyChecker::Report() const {
  std::string out;
  for (const auto& v : violations_) {
    out += v;
    out += "\n";
  }
  return out;
}

std::map<std::string, std::string> KvHistoryChecker::Replay(
    const std::vector<kv::Command>& commands, const KeyRange& range) {
  std::map<std::string, std::string> state;
  std::map<uint64_t, uint64_t> session_high;  // client -> highest seq applied
  for (const auto& cmd : commands) {
    if (cmd.client_id != 0 && cmd.seq != 0) {
      auto it = session_high.find(cmd.client_id);
      if (it != session_high.end() && cmd.seq <= it->second) {
        continue;  // duplicate of an already-applied command: no effect
      }
      session_high[cmd.client_id] = cmd.seq;
    }
    if (!range.Contains(cmd.key)) continue;
    switch (cmd.op) {
      case kv::OpType::kPut:
        state[cmd.key] = cmd.value;
        break;
      case kv::OpType::kDelete:
        state.erase(cmd.key);
        break;
      case kv::OpType::kCas: {
        // Same conditional semantics as the store: expected "" = absent.
        auto it = state.find(cmd.key);
        const std::string current = it == state.end() ? "" : it->second;
        if (current == cmd.expected) state[cmd.key] = cmd.value;
        break;
      }
      case kv::OpType::kGet:
      case kv::OpType::kScan:
        break;  // reads do not mutate
    }
  }
  return state;
}

std::vector<std::string> KvHistoryChecker::CompareStore(
    const std::vector<kv::Command>& commands, const kv::Store& store) {
  std::vector<std::string> diffs;
  auto expected = Replay(commands, store.range());
  for (const auto& [k, v] : expected) {
    auto got = store.Get(k);
    if (!got.ok()) {
      diffs.push_back("missing key " + k);
    } else if (*got != v) {
      diffs.push_back("key " + k + " expected '" + v + "' got '" + *got + "'");
    }
  }
  if (store.size() != expected.size()) {
    diffs.push_back("store has " + std::to_string(store.size()) +
                    " keys, history implies " +
                    std::to_string(expected.size()));
  }
  return diffs;
}

}  // namespace recraft::harness
