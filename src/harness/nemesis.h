// Composable, schedulable fault injectors ("nemeses", after the Jepsen
// convention) driven entirely through the simulator's event queue: every
// toggle is a scheduled event drawn from a per-nemesis forked RNG, so a
// chaos run stays a pure function of (seed, configuration) and any failure
// replays exactly from its seed.
//
// Each Nemesis alternates quiet and active phases. Entering an active phase
// calls Inflict() (which draws victims and fault parameters from the
// nemesis' own RNG and records what it did); leaving calls Heal(), which
// undoes exactly the faults this nemesis inflicted — never a blanket
// Network::HealAll(), so independent nemeses compose without clobbering
// each other's state. Disarm() stops the schedule and heals; it is
// idempotent and safe to call from outside the event loop.
//
// Nemeses must never call the World's synchronous admin helpers (those
// re-enter the event loop); anything consensus-shaped (the churn storm) is
// fire-and-forget raw messages from kAdminId.
//
// NemesisMix bundles named behaviors into scenario presets ("classic",
// "gray", "disk", ... "all") for the sweep runner; see MakeNemesis() /
// NemesisMix::Make() for the catalogs.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "harness/world.h"

namespace recraft::harness {

/// Which nodes a nemesis may victimize.
struct NemesisTargets {
  std::vector<NodeId> members;  // consensus members under test
  std::vector<NodeId> spares;   // non-members (churn storms add/remove these)
};

/// Phase-length bounds (inclusive, microseconds) for the on/off schedule.
struct NemesisSchedule {
  Duration min_quiet = 100 * kMillisecond;
  Duration max_quiet = 400 * kMillisecond;
  Duration min_active = 50 * kMillisecond;
  Duration max_active = 250 * kMillisecond;
};

class Nemesis {
 public:
  explicit Nemesis(std::string name) : name_(std::move(name)) {}
  virtual ~Nemesis();

  Nemesis(const Nemesis&) = delete;
  Nemesis& operator=(const Nemesis&) = delete;

  const std::string& name() const { return name_; }

  /// Start the on/off schedule on `world`'s event queue. The first phase is
  /// quiet, so a freshly armed mix lets the cluster do some work before the
  /// first fault lands.
  void Arm(World& world, NemesisTargets targets, Rng rng);
  /// Stop scheduling and heal anything currently inflicted. Idempotent;
  /// already-queued toggle events become no-ops.
  void Disarm();

  bool armed() const { return armed_; }
  bool active() const { return active_; }
  /// Completed Inflict() calls — tests assert the schedule actually fired.
  uint64_t activations() const { return activations_; }

  NemesisSchedule& schedule() { return schedule_; }

 protected:
  /// Draw victims/parameters from `rng`, apply the fault, and remember what
  /// was done so Heal() can undo precisely that.
  virtual void Inflict(World& world, Rng& rng) = 0;
  virtual void Heal(World& world) = 0;

  NemesisTargets targets_;

 private:
  void Toggle(World& world);
  void ScheduleToggle(World& world);

  std::string name_;
  NemesisSchedule schedule_;
  Rng rng_{0};
  bool armed_ = false;
  bool active_ = false;
  uint64_t activations_ = 0;
  /// Liveness token (holding the armed world): queued toggle events hold a
  /// weak_ptr and die silently once the nemesis is disarmed or destroyed.
  std::shared_ptr<World*> alive_;
};

// --- behavior catalog -------------------------------------------------------
// Constructible directly for targeted tests; MakeNemesis() covers them all
// by name for the mix presets.

/// Symmetric partition: isolates a random minority group of members.
/// Owns the Network's group-partition state — at most one per mix.
class PartitionNemesis final : public Nemesis {
 public:
  PartitionNemesis() : Nemesis("partition") {}

 private:
  void Inflict(World& world, Rng& rng) override;
  void Heal(World& world) override;
};

/// Asymmetric partition: one victim loses a random *direction* of a random
/// subset of its links (built on Network::BlockOneWay).
class AsymPartitionNemesis final : public Nemesis {
 public:
  AsymPartitionNemesis() : Nemesis("asym-partition") {}

 private:
  void Inflict(World& world, Rng& rng) override;
  void Heal(World& world) override;

  std::vector<std::pair<NodeId, NodeId>> blocked_;  // (from, to)
};

/// Gray one-way loss: a victim's outbound (or inbound) links drop messages
/// with a drawn probability (possibly 1.0 — certain loss without an RNG
/// draw, see Network::SetLinkDropProbability).
class OneWayLossNemesis final : public Nemesis {
 public:
  OneWayLossNemesis() : Nemesis("oneway-loss") {}

 private:
  void Inflict(World& world, Rng& rng) override;
  void Heal(World& world) override;

  std::vector<std::pair<NodeId, NodeId>> lossy_;  // (from, to)
};

/// Slow links: a subset of directed member links gets an elevated latency.
class SlowLinksNemesis final : public Nemesis {
 public:
  SlowLinksNemesis() : Nemesis("slow-links") {}

 private:
  void Inflict(World& world, Rng& rng) override;
  void Heal(World& world) override;

  std::vector<std::pair<NodeId, NodeId>> slowed_;  // (from, to)
};

/// Disk-latency spike: victims' fsyncs take extra time, deferring group
/// commit (and the acks / commit votes gated on durability). kWal only;
/// silently idle otherwise.
class DiskLatencyNemesis final : public Nemesis {
 public:
  DiskLatencyNemesis() : Nemesis("disk-latency") {}

 private:
  void Inflict(World& world, Rng& rng) override;
  void Heal(World& world) override;

  std::vector<NodeId> victims_;
};

/// Fsync stall: one victim's disk stops completing fsyncs entirely — the
/// classic gray failure where a node looks alive but cannot persist. kWal
/// only; silently idle otherwise.
class FsyncStallNemesis final : public Nemesis {
 public:
  FsyncStallNemesis() : Nemesis("fsync-stall") {}

 private:
  void Inflict(World& world, Rng& rng) override;
  void Heal(World& world) override;

  NodeId victim_ = kNoNode;
};

/// Clock skew: victims' local tick interval is scaled into [0.5x, 2x],
/// desynchronizing election timeouts and heartbeat pacing.
class ClockSkewNemesis final : public Nemesis {
 public:
  ClockSkewNemesis() : Nemesis("clock-skew") {}

 private:
  void Inflict(World& world, Rng& rng) override;
  void Heal(World& world) override;

  std::vector<NodeId> victims_;
};

/// Membership churn storm: repeatedly adds/removes a dedicated spare via
/// fire-and-forget ReCraft membership changes sent to the current leader.
/// Requires at least one spare in the targets; idle otherwise.
class ChurnStormNemesis final : public Nemesis {
 public:
  ChurnStormNemesis() : Nemesis("churn") {}

  uint64_t changes_requested() const { return changes_requested_; }

 private:
  void Inflict(World& world, Rng& rng) override;
  void Heal(World& world) override;
  void SendChange(World& world);

  NodeId spare_ = kNoNode;
  uint64_t changes_requested_ = 0;
};

/// Rolling crash wave: hard-crashes (CrashNode, with a drawn in-flight
/// write-mangling CrashSpec) up to a minority of members per phase, and
/// restarts them on heal. Falls back to soft Crash/Restart when the world
/// has no storage mode.
class CrashWaveNemesis final : public Nemesis {
 public:
  CrashWaveNemesis() : Nemesis("crash-wave") {}

 private:
  void Inflict(World& world, Rng& rng) override;
  void Heal(World& world) override;

  std::vector<NodeId> downed_hard_;
  std::vector<NodeId> downed_soft_;
};

/// Zipfian hot-key migration: rotates the client fleet's key ranks by a
/// live offset, moving the hot set around the key space mid-run. Wire the
/// fleet with ClientOptions::key_offset = nemesis.offset_ptr().
class HotKeyNemesis final : public Nemesis {
 public:
  HotKeyNemesis() : Nemesis("hotkey") {}

  const uint64_t* offset_ptr() const { return &offset_; }
  uint64_t offset() const { return offset_; }

 private:
  void Inflict(World& world, Rng& rng) override;
  void Heal(World& world) override;

  uint64_t offset_ = 0;
};

/// All individual behavior names, in catalog order.
std::vector<std::string> NemesisNames();
/// Construct a behavior by catalog name; null for unknown names.
std::unique_ptr<Nemesis> MakeNemesis(const std::string& name);

/// A named bundle of nemeses armed and disarmed together — one scenario in
/// the sweep matrix.
class NemesisMix {
 public:
  /// Preset catalog: "none", "classic" (partition + crash wave + slow
  /// links), "gray" (asymmetric partition + one-way loss + slow links),
  /// "disk" (latency spikes + fsync stall + crash wave), "clock" (skew +
  /// partition), "churn" (churn storm + crash wave), "hotkey" (hot-key
  /// migration + partition), "all" (everything).
  static Result<NemesisMix> Make(const std::string& mix_name);
  static std::vector<std::string> KnownMixes();

  NemesisMix(NemesisMix&&) = default;
  NemesisMix& operator=(NemesisMix&&) = default;
  ~NemesisMix();

  /// Arm every behavior with an independent RNG forked from `seed`.
  void Arm(World& world, const NemesisTargets& targets, uint64_t seed);
  /// Disarm (and heal) every behavior. Idempotent.
  void Disarm();

  const std::string& name() const { return name_; }
  const std::vector<std::unique_ptr<Nemesis>>& nemeses() const {
    return nemeses_;
  }
  uint64_t TotalActivations() const;
  /// The hot-key offset to wire into ClientOptions::key_offset; null when
  /// the mix has no hotkey behavior.
  const uint64_t* hot_key_offset() const {
    return hotkey_ == nullptr ? nullptr : hotkey_->offset_ptr();
  }

 private:
  explicit NemesisMix(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::vector<std::unique_ptr<Nemesis>> nemeses_;
  HotKeyNemesis* hotkey_ = nullptr;  // borrowed from nemeses_
};

}  // namespace recraft::harness
