#include "harness/nemesis.h"

#include <algorithm>
#include <cassert>

#include "raft/messages.h"

namespace recraft::harness {

namespace {

/// Fisher-Yates over a copy, driven by the nemesis' own RNG.
std::vector<NodeId> Shuffled(const std::vector<NodeId>& in, Rng& rng) {
  std::vector<NodeId> v = in;
  for (size_t i = v.size(); i > 1; --i) {
    size_t j = rng.Uniform(0, i - 1);
    std::swap(v[i - 1], v[j]);
  }
  return v;
}

}  // namespace

Nemesis::~Nemesis() = default;

void Nemesis::Arm(World& world, NemesisTargets targets, Rng rng) {
  Disarm();
  targets_ = std::move(targets);
  rng_ = rng;
  armed_ = true;
  alive_ = std::make_shared<World*>(&world);
  ScheduleToggle(world);
}

void Nemesis::Disarm() {
  if (!armed_) return;
  armed_ = false;
  World* world = alive_ ? *alive_ : nullptr;
  alive_.reset();  // orphans every queued toggle event
  if (active_ && world != nullptr) {
    Heal(*world);
    active_ = false;
  }
}

void Nemesis::ScheduleToggle(World& world) {
  Duration lo = active_ ? schedule_.min_active : schedule_.min_quiet;
  Duration hi = active_ ? schedule_.max_active : schedule_.max_quiet;
  Duration d = rng_.Uniform(lo, std::max(lo, hi));
  std::weak_ptr<World*> alive = alive_;
  world.events().Schedule(d, [this, alive]() {
    auto token = alive.lock();
    if (token == nullptr) return;  // disarmed since this was queued
    Toggle(**token);
  });
}

void Nemesis::Toggle(World& world) {
  if (!armed_) return;
  if (active_) {
    Heal(world);
    active_ = false;
  } else {
    Inflict(world, rng_);
    active_ = true;
    ++activations_;
  }
  ScheduleToggle(world);
}

// --- partition --------------------------------------------------------------

void PartitionNemesis::Inflict(World& world, Rng& rng) {
  const auto& m = targets_.members;
  if (m.size() < 2) return;
  auto order = Shuffled(m, rng);
  size_t cap = std::max<size_t>(1, (m.size() - 1) / 2);
  size_t k = rng.Uniform(1, cap);
  std::vector<NodeId> minority(order.begin(),
                               order.begin() + static_cast<ptrdiff_t>(k));
  std::vector<NodeId> majority(order.begin() + static_cast<ptrdiff_t>(k),
                               order.end());
  world.net().SetPartitions({minority, majority});
}

void PartitionNemesis::Heal(World& world) { world.net().ClearPartitions(); }

// --- asymmetric partition ---------------------------------------------------

void AsymPartitionNemesis::Inflict(World& world, Rng& rng) {
  const auto& m = targets_.members;
  if (m.size() < 2) return;
  auto order = Shuffled(m, rng);
  NodeId victim = order[0];
  for (size_t i = 1; i < order.size(); ++i) {
    if (!rng.Chance(0.6)) continue;
    NodeId peer = order[i];
    if (rng.Chance(0.5)) {
      blocked_.emplace_back(peer, victim);
    } else {
      blocked_.emplace_back(victim, peer);
    }
  }
  if (blocked_.empty()) blocked_.emplace_back(order[1], victim);
  for (const auto& [from, to] : blocked_) world.net().BlockOneWay(from, to);
}

void AsymPartitionNemesis::Heal(World& world) {
  for (const auto& [from, to] : blocked_) world.net().UnblockOneWay(from, to);
  blocked_.clear();
}

// --- one-way loss -----------------------------------------------------------

void OneWayLossNemesis::Inflict(World& world, Rng& rng) {
  const auto& m = targets_.members;
  if (m.size() < 2) return;
  auto order = Shuffled(m, rng);
  NodeId victim = order[0];
  bool outbound = rng.Chance(0.5);
  // Half the time total loss (p = 1.0, drawn-free on the send path), half
  // the time a heavy-but-partial p in [0.5, 1.0).
  double p = rng.Chance(0.5) ? 1.0 : 0.5 + rng.NextDouble() * 0.5;
  for (size_t i = 1; i < order.size(); ++i) {
    NodeId peer = order[i];
    if (outbound) {
      lossy_.emplace_back(victim, peer);
    } else {
      lossy_.emplace_back(peer, victim);
    }
  }
  for (const auto& [from, to] : lossy_) {
    world.net().SetLinkDropProbability(from, to, p);
  }
}

void OneWayLossNemesis::Heal(World& world) {
  for (const auto& [from, to] : lossy_) {
    world.net().ClearLinkDropProbability(from, to);
  }
  lossy_.clear();
}

// --- slow links -------------------------------------------------------------

void SlowLinksNemesis::Inflict(World& world, Rng& rng) {
  const auto& m = targets_.members;
  if (m.size() < 2) return;
  size_t n = rng.Uniform(1, std::max<size_t>(1, m.size() / 2));
  for (size_t i = 0; i < n; ++i) {
    NodeId a = m[rng.Uniform(0, m.size() - 1)];
    NodeId b = m[rng.Uniform(0, m.size() - 1)];
    if (a == b) continue;
    Duration lat = rng.Uniform(5 * kMillisecond, 25 * kMillisecond);
    world.net().SetLinkLatency(a, b, lat);
    slowed_.emplace_back(a, b);
  }
}

void SlowLinksNemesis::Heal(World& world) {
  for (const auto& [from, to] : slowed_) {
    world.net().ClearLinkLatency(from, to);
  }
  slowed_.clear();
}

// --- disk latency spike -----------------------------------------------------

void DiskLatencyNemesis::Inflict(World& world, Rng& rng) {
  for (NodeId m : targets_.members) {
    bool hit = rng.Chance(0.4);  // drawn for every member: stable stream
    storage::SimDisk* disk = world.NodeDisk(m);
    if (!hit || disk == nullptr) continue;
    disk->SetExtraFsyncLatency(rng.Uniform(2 * kMillisecond, 20 * kMillisecond));
    victims_.push_back(m);
  }
  if (victims_.empty() && !targets_.members.empty()) {
    NodeId m = targets_.members[rng.Uniform(0, targets_.members.size() - 1)];
    if (storage::SimDisk* disk = world.NodeDisk(m)) {
      disk->SetExtraFsyncLatency(rng.Uniform(2 * kMillisecond, 20 * kMillisecond));
      victims_.push_back(m);
    }
  }
}

void DiskLatencyNemesis::Heal(World& world) {
  for (NodeId m : victims_) {
    if (storage::SimDisk* disk = world.NodeDisk(m)) {
      disk->SetExtraFsyncLatency(0);
    }
  }
  victims_.clear();
}

// --- fsync stall ------------------------------------------------------------

void FsyncStallNemesis::Inflict(World& world, Rng& rng) {
  if (targets_.members.empty()) return;
  NodeId m = targets_.members[rng.Uniform(0, targets_.members.size() - 1)];
  storage::SimDisk* disk = world.NodeDisk(m);
  if (disk == nullptr) return;
  disk->SetFsyncStalled(true);
  victim_ = m;
}

void FsyncStallNemesis::Heal(World& world) {
  if (victim_ == kNoNode) return;
  if (storage::SimDisk* disk = world.NodeDisk(victim_)) {
    disk->SetFsyncStalled(false);
  }
  victim_ = kNoNode;
}

// --- clock skew -------------------------------------------------------------

void ClockSkewNemesis::Inflict(World& world, Rng& rng) {
  Duration base = world.options().node.tick_interval;
  for (NodeId m : targets_.members) {
    if (!rng.Chance(0.5)) continue;
    Duration skewed = rng.Uniform(std::max<Duration>(1, base / 2), base * 2);
    world.SetTickInterval(m, skewed);
    victims_.push_back(m);
  }
  if (victims_.empty() && !targets_.members.empty()) {
    NodeId m = targets_.members[rng.Uniform(0, targets_.members.size() - 1)];
    world.SetTickInterval(m, base * 2);
    victims_.push_back(m);
  }
}

void ClockSkewNemesis::Heal(World& world) {
  for (NodeId m : victims_) world.SetTickInterval(m, 0);
  victims_.clear();
}

// --- churn storm ------------------------------------------------------------

void ChurnStormNemesis::SendChange(World& world) {
  raft::ConfigState cfg = world.ConfigOf(targets_.members);
  if (cfg.members.empty()) return;  // all down right now; skip this phase
  NodeId leader = world.LeaderOf(cfg.members);
  if (leader == kNoNode) leader = cfg.members.front();
  bool has_spare = std::find(cfg.members.begin(), cfg.members.end(),
                             spare_) != cfg.members.end();
  raft::MemberChange mc;
  mc.kind = has_spare ? raft::MemberChangeKind::kRemoveAndResize
                      : raft::MemberChangeKind::kAddAndResize;
  mc.nodes = {spare_};
  // Fire-and-forget: nemeses run inside event callbacks where the World's
  // synchronous admin helpers (which re-enter the event loop) are off
  // limits. The reply lands in the admin stash and is evicted unread.
  raft::ClientRequest req;
  req.req_id = world.NextReqId();
  req.from = kAdminId;
  req.body = raft::AdminMember{mc};
  auto msg = raft::MakeMessage(raft::Message(req));
  world.net().Send(kAdminId, leader, msg, msg.wire_bytes());
  ++changes_requested_;
}

void ChurnStormNemesis::Inflict(World& world, Rng& rng) {
  (void)rng;
  if (spare_ == kNoNode) {
    if (targets_.spares.empty()) return;  // nothing to churn with
    spare_ = targets_.spares.front();
  }
  SendChange(world);
}

void ChurnStormNemesis::Heal(World& world) {
  if (spare_ == kNoNode) return;
  raft::ConfigState cfg = world.ConfigOf(targets_.members);
  bool has_spare = std::find(cfg.members.begin(), cfg.members.end(),
                             spare_) != cfg.members.end();
  // Undo = ask for the spare back out; if the add itself is still in
  // flight the next phase (or the sweep's convergence wait) settles it.
  if (has_spare) SendChange(world);
}

// --- crash wave -------------------------------------------------------------

void CrashWaveNemesis::Inflict(World& world, Rng& rng) {
  const auto& m = targets_.members;
  if (m.size() < 3) return;  // need a crashable minority
  size_t down = 0;
  std::vector<NodeId> up;
  for (NodeId id : m) {
    if (world.IsDown(id) || world.IsCrashed(id)) {
      ++down;
    } else {
      up.push_back(id);
    }
  }
  size_t cap = (m.size() - 1) / 2;
  if (down >= cap || up.empty()) return;
  auto order = Shuffled(up, rng);
  size_t n = rng.Uniform(1, cap - down);
  n = std::min(n, order.size());
  bool hard = world.options().storage != StorageMode::kNone;
  for (size_t i = 0; i < n; ++i) {
    NodeId id = order[i];
    if (hard) {
      storage::CrashSpec spec;
      spec.point = static_cast<storage::CrashPoint>(rng.Uniform(
          0, 2));  // kLosePending | kTornTail | kPartialBatch
      if (world.CrashNode(id, spec).ok()) downed_hard_.push_back(id);
    } else {
      world.Crash(id);
      downed_soft_.push_back(id);
    }
  }
}

void CrashWaveNemesis::Heal(World& world) {
  for (NodeId id : downed_hard_) {
    if (world.IsDown(id)) (void)world.RestartNode(id);
  }
  downed_hard_.clear();
  for (NodeId id : downed_soft_) world.Restart(id);
  downed_soft_.clear();
}

// --- hot-key migration ------------------------------------------------------

void HotKeyNemesis::Inflict(World& world, Rng& rng) {
  (void)world;
  // Any nonzero rotation; clients reduce it modulo their key space.
  offset_ = rng.Uniform(1, 1u << 20);
}

void HotKeyNemesis::Heal(World& world) {
  (void)world;
  offset_ = 0;
}

// --- catalog ----------------------------------------------------------------

std::vector<std::string> NemesisNames() {
  return {"partition",    "asym-partition", "oneway-loss", "slow-links",
          "disk-latency", "fsync-stall",    "clock-skew",  "churn",
          "crash-wave",   "hotkey"};
}

std::unique_ptr<Nemesis> MakeNemesis(const std::string& name) {
  if (name == "partition") return std::make_unique<PartitionNemesis>();
  if (name == "asym-partition") return std::make_unique<AsymPartitionNemesis>();
  if (name == "oneway-loss") return std::make_unique<OneWayLossNemesis>();
  if (name == "slow-links") return std::make_unique<SlowLinksNemesis>();
  if (name == "disk-latency") return std::make_unique<DiskLatencyNemesis>();
  if (name == "fsync-stall") return std::make_unique<FsyncStallNemesis>();
  if (name == "clock-skew") return std::make_unique<ClockSkewNemesis>();
  if (name == "churn") return std::make_unique<ChurnStormNemesis>();
  if (name == "crash-wave") return std::make_unique<CrashWaveNemesis>();
  if (name == "hotkey") return std::make_unique<HotKeyNemesis>();
  return nullptr;
}

namespace {

std::vector<std::string> MixBehaviors(const std::string& mix) {
  if (mix == "none") return {};
  if (mix == "classic") return {"partition", "crash-wave", "slow-links"};
  if (mix == "gray") return {"asym-partition", "oneway-loss", "slow-links"};
  if (mix == "disk") return {"disk-latency", "fsync-stall", "crash-wave"};
  if (mix == "clock") return {"clock-skew", "partition"};
  if (mix == "churn") return {"churn", "crash-wave"};
  if (mix == "hotkey") return {"hotkey", "partition"};
  if (mix == "all") return NemesisNames();
  return {"?"};  // sentinel: unknown mix
}

}  // namespace

std::vector<std::string> NemesisMix::KnownMixes() {
  return {"none", "classic", "gray", "disk", "clock", "churn", "hotkey",
          "all"};
}

Result<NemesisMix> NemesisMix::Make(const std::string& mix_name) {
  auto behaviors = MixBehaviors(mix_name);
  if (behaviors.size() == 1 && behaviors[0] == "?") {
    return Rejected("unknown nemesis mix: " + mix_name);
  }
  NemesisMix mix(mix_name);
  for (const auto& b : behaviors) {
    auto n = MakeNemesis(b);
    assert(n != nullptr && "catalog mismatch");
    if (b == "hotkey") mix.hotkey_ = static_cast<HotKeyNemesis*>(n.get());
    mix.nemeses_.push_back(std::move(n));
  }
  return mix;
}

NemesisMix::~NemesisMix() { Disarm(); }

void NemesisMix::Arm(World& world, const NemesisTargets& targets,
                     uint64_t seed) {
  for (size_t i = 0; i < nemeses_.size(); ++i) {
    // Independent streams: nemesis i's choices depend only on (seed, i),
    // never on what its siblings drew.
    nemeses_[i]->Arm(world, targets, Rng(Mix64(seed, 0x4e4d0 + i)));
  }
}

void NemesisMix::Disarm() {
  for (auto& n : nemeses_) n->Disarm();
}

uint64_t NemesisMix::TotalActivations() const {
  uint64_t total = 0;
  for (const auto& n : nemeses_) total += n->activations();
  return total;
}

}  // namespace recraft::harness
