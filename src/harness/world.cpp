#include "harness/world.h"

#include <cassert>
#include <ostream>
#include <string_view>

#include "common/logging.h"

namespace recraft::harness {

void NamingService::HandleRegister(const raft::NamingRegister& reg) {
  auto it = clusters_.find(reg.uid);
  if (it == clusters_.end() || it->second.epoch <= reg.epoch) {
    clusters_[reg.uid] = reg;
  }
}

raft::NamingLookupReply NamingService::Directory() const {
  raft::NamingLookupReply reply;
  for (const auto& [uid, reg] : clusters_) reply.clusters.push_back(reg);
  return reply;
}

const kv::Store& KvStoreOf(const core::Node& n) {
  assert(std::string_view(n.machine().Name()) == "kv" &&
         "KvStoreOf on a non-KV machine");
  return static_cast<const kv::KvMachine&>(n.machine()).store();
}

World::World(WorldOptions opts)
    : opts_(opts),
      rng_(opts.seed),
      net_(events_, opts.net, Rng(Mix64(opts.seed, 0x4e70))) {
  // The KV machine is the default workload; worlds for other machines
  // (e.g. sm::QueueMachineFactory) inject theirs via WorldOptions::node.
  if (!opts_.node.machine_factory) {
    opts_.node.machine_factory = kv::KvMachineFactory();
  }
  if (opts_.recorder != nullptr) {
    opts_.recorder->BindClock(events_.now_ptr());
    net_.set_recorder(opts_.recorder);
    opts_.node.recorder = opts_.recorder;
  }
  if (opts_.with_naming_service) {
    transport_.Bind(kNamingServiceId,
                    [this](NodeId from, const raft::Message& m,
                           obs::TraceCtx ctx) {
                      if (const auto* reg =
                              std::get_if<raft::NamingRegister>(&m)) {
                        naming_.HandleRegister(*reg);
                      } else if (std::get_if<raft::NamingLookupReq>(&m) !=
                                 nullptr) {
                        auto reply = raft::MakeMessage(
                            raft::Message(naming_.Directory()));
                        reply.set_trace_ctx(ctx);
                        transport_.Send(kNamingServiceId, from, reply);
                      }
                    });
  }
  transport_.Bind(kAdminId, [this](NodeId, const raft::Message& m,
                                   obs::TraceCtx) {
    if (const auto* reply = std::get_if<raft::ClientReply>(&m)) {
      admin_replies_[reply->req_id] = *reply;
      // Fire-and-forget senders (nemesis churn storms) never collect their
      // replies; bound the stash so they cannot grow it without limit.
      // req_ids are monotone, so the oldest key is the stalest reply.
      while (admin_replies_.size() > 4096) {
        admin_replies_.erase(admin_replies_.begin());
      }
    }
  });
}

World::~World() = default;

storage::Storage* World::MakeStorage(NodeId id, bool fresh_instance) {
  switch (opts_.storage) {
    case StorageMode::kNone:
      return nullptr;
    case StorageMode::kInMemory:
      // The object *is* the durable medium: one instance for the whole run.
      if (storages_.count(id) == 0) {
        storages_[id] = std::make_unique<storage::InMemoryStorage>();
      }
      return storages_[id].get();
    case StorageMode::kWal: {
      if (disks_.count(id) == 0) {
        disks_[id] = std::make_shared<storage::SimDisk>(opts_.disk);
      }
      if (fresh_instance || storages_.count(id) == 0) {
        auto wal = std::make_unique<storage::WalStorage>(disks_[id], &clock_,
                                                         opts_.wal);
        if (opts_.recorder != nullptr) {
          wal->SetRecorder(opts_.recorder, id);
        }
        storages_[id] = std::move(wal);
      }
      return storages_[id].get();
    }
  }
  return nullptr;
}

void World::RegisterNodeHandler(NodeId id) {
  transport_.Bind(id, [this, id](NodeId from, const raft::Message& m,
                                 obs::TraceCtx ctx) {
    auto it = nodes_.find(id);
    if (it == nodes_.end()) return;  // down (CrashNode) — delivery dropped
    it->second->Receive(from, m, ctx);
  });
}

std::vector<NodeId> World::CreateCluster(size_t n, KeyRange range) {
  std::vector<NodeId> members;
  members.reserve(n);
  for (size_t i = 0; i < n; ++i) members.push_back(next_node_id_++);

  raft::ConfigState genesis;
  genesis.members = members;
  genesis.range = range;
  genesis.uid = Mix64(opts_.seed, members.front());

  for (NodeId id : members) {
    core::Options node_opts = opts_.node;
    if (opts_.with_naming_service) node_opts.naming_service = kNamingServiceId;
    auto send = [this, id](NodeId to, raft::MessagePtr msg) {
      transport_.Send(id, to, msg);
    };
    nodes_[id] = std::make_unique<core::Node>(
        id, node_opts, genesis, Rng(Mix64(opts_.seed, 0xabc0 + id)),
        std::move(send), MakeStorage(id, /*fresh_instance=*/false));
    RegisterNodeHandler(id);
    ScheduleTick(id);
  }
  return members;
}

NodeId World::CreateSpareNode() {
  NodeId id = next_node_id_++;
  // A spare starts as a non-member with an empty configuration: it idles
  // (cannot campaign) until a membership change adds it and the leader
  // catches it up via appends or a snapshot.
  raft::ConfigState genesis;
  genesis.members = {};       // retired until added
  genesis.range = KeyRange::Empty();
  genesis.uid = 0;
  core::Options node_opts = opts_.node;
  if (opts_.with_naming_service) node_opts.naming_service = kNamingServiceId;
  auto send = [this, id](NodeId to, raft::MessagePtr msg) {
    transport_.Send(id, to, msg);
  };
  nodes_[id] = std::make_unique<core::Node>(
      id, node_opts, genesis, Rng(Mix64(opts_.seed, 0xabc0 + id)),
      std::move(send), MakeStorage(id, /*fresh_instance=*/false));
  RegisterNodeHandler(id);
  ScheduleTick(id);
  return id;
}

Result<std::vector<shard::ShardId>> World::BootstrapShards(
    size_t n_shards, size_t nodes_per_shard,
    const std::vector<std::string>& boundaries, Duration timeout) {
  if (n_shards == 0) return Rejected("need at least one shard");
  if (boundaries.size() + 1 != n_shards) {
    return Rejected("need exactly n_shards - 1 boundary keys");
  }
  std::vector<KeyRange> ranges;
  if (n_shards == 1) {
    ranges.push_back(KeyRange::Full());
  } else {
    auto split = KeyRange::Full().SplitAt(boundaries);
    if (!split.ok()) return split.status();
    ranges = *split;
  }
  std::vector<shard::ShardInfo> infos;
  for (const KeyRange& range : ranges) {
    auto members = CreateCluster(nodes_per_shard, range);
    if (!WaitForLeader(members, timeout)) {
      return Timeout("no leader for shard over " + range.ToString());
    }
    shard::ShardInfo si;
    si.range = range;
    si.members = members;
    NodeId leader = LeaderOf(members);
    si.leader_hint = leader;
    si.epoch = node(leader).epoch();
    si.uid = node(leader).cluster_uid();
    infos.push_back(std::move(si));
  }
  if (Status s = shard_map_.Bootstrap(std::move(infos)); !s.ok()) return s;
  std::vector<shard::ShardId> ids;
  for (const auto& si : shard_map_.Shards()) ids.push_back(si.id);
  return ids;
}

Status World::WipeNode(NodeId id, Duration timeout) {
  if (!HasNode(id)) return NotFound("no node " + std::to_string(id));
  raft::BootstrapReq req;
  req.from = kAdminId;
  req.op_id = NextReqId();
  req.genesis = raft::ConfigState{};  // memberless: the node becomes a spare
  req.genesis.range = KeyRange::Empty();
  auto msg = raft::MakeMessage(raft::Message(req));
  transport_.Send(kAdminId, id, msg);
  bool ok = RunUntil(
      [&]() {
        // The node can be hard-crashed by chaos while we wait: that is a
        // wipe failure, not a license to deref a destroyed object.
        if (!HasNode(id)) return false;
        return node(id).config().members.empty() &&
               node(id).cluster_uid() == 0;
      },
      timeout);
  return ok ? OkStatus() : Timeout("node did not reinitialize");
}

void World::ScheduleTick(NodeId id) {
  // Stagger tick phases across nodes so the world has no artificial global
  // synchrony.
  Duration offset = rng_.Uniform(0, opts_.node.tick_interval - 1);
  uint64_t gen = node_gen_[id];
  events_.Schedule(offset, [this, id, gen]() { TickNode(id, gen); });
}

void World::TickNode(NodeId id, uint64_t gen) {
  if (gen != node_gen_[id]) return;  // stale chain from before a CrashNode
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  if (!net_.IsCrashed(id)) it->second->Tick();
  events_.Schedule(TickIntervalOf(id),
                   [this, id, gen]() { TickNode(id, gen); });
}

void World::SetTickInterval(NodeId id, Duration interval) {
  if (interval == 0) {
    tick_override_.erase(id);
  } else {
    tick_override_[id] = interval;
  }
}

Duration World::TickIntervalOf(NodeId id) const {
  auto it = tick_override_.find(id);
  return it == tick_override_.end() ? opts_.node.tick_interval : it->second;
}

core::Node& World::node(NodeId id) {
  auto it = nodes_.find(id);
  assert(it != nodes_.end());
  return *it->second;
}

const core::Node& World::node(NodeId id) const {
  auto it = nodes_.find(id);
  assert(it != nodes_.end());
  return *it->second;
}

std::vector<NodeId> World::AllNodeIds() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, n] : nodes_) ids.push_back(id);
  return ids;
}

void World::Crash(NodeId id) {
  net_.Crash(id);
  if (HasNode(id)) node(id).OnCrash();
}

void World::Restart(NodeId id) {
  net_.Restart(id);
  if (HasNode(id)) node(id).OnRestart();
}

storage::Storage* World::NodeStorage(NodeId id) {
  auto it = storages_.find(id);
  return it == storages_.end() ? nullptr : it->second.get();
}

storage::SimDisk* World::NodeDisk(NodeId id) {
  auto it = disks_.find(id);
  return it == disks_.end() ? nullptr : it->second.get();
}

Status World::CrashNode(NodeId id, const storage::CrashSpec& spec) {
  if (opts_.storage == StorageMode::kNone) {
    return Rejected("CrashNode needs a storage mode (WorldOptions::storage)");
  }
  if (!HasNode(id)) return NotFound("no node " + std::to_string(id));
  net_.Crash(id);
  node(id).OnCrash();
  ++node_gen_[id];  // kills the tick chain at its next firing
  // Mangle the in-flight (unacknowledged) writes per the crash spec, then
  // destroy every byte of volatile state. In WAL mode the storage instance
  // dies too: recovery must reparse the disk, not reuse a live model.
  if (auto it = storages_.find(id); it != storages_.end()) {
    it->second->Crash(spec);
    if (opts_.storage == StorageMode::kWal) storages_.erase(it);
  }
  nodes_.erase(id);
  return OkStatus();
}

Status World::RestartNode(NodeId id) {
  if (opts_.storage == StorageMode::kNone) {
    return Rejected("RestartNode needs a storage mode");
  }
  if (HasNode(id)) return Rejected("node is up; use Restart for soft faults");
  bool known = storages_.count(id) > 0 || disks_.count(id) > 0;
  if (!known) return NotFound("node " + std::to_string(id) + " never existed");
  net_.Restart(id);
  core::Options node_opts = opts_.node;
  if (opts_.with_naming_service) node_opts.naming_service = kNamingServiceId;
  auto send = [this, id](NodeId to, raft::MessagePtr msg) {
    transport_.Send(id, to, msg);
  };
  // A fresh deterministic RNG stream per incarnation: same seed would replay
  // the same election jitter, different incarnations must not correlate.
  uint64_t gen = ++node_gen_[id];
  nodes_[id] = std::make_unique<core::Node>(
      id, node_opts, MakeStorage(id, /*fresh_instance=*/true),
      Rng(Mix64(opts_.seed, 0xb007'0000ull + id + (gen << 16))),
      std::move(send));
  RegisterNodeHandler(id);
  ScheduleTick(id);
  return OkStatus();
}

bool World::RunUntil(const std::function<bool()>& pred, Duration timeout) {
  return events_.RunUntilPred(pred, events_.now() + timeout);
}

NodeId World::LeaderOf(const std::vector<NodeId>& members) const {
  NodeId best = kNoNode;
  uint64_t best_et = 0;
  for (NodeId id : members) {
    if (!HasNode(id) || net_.IsCrashed(id)) continue;
    const auto& n = node(id);
    if (n.IsLeader() && n.current_et().raw() >= best_et) {
      best = id;
      best_et = n.current_et().raw();
    }
  }
  return best;
}

bool World::WaitForLeader(const std::vector<NodeId>& members,
                          Duration timeout) {
  return RunUntil([&]() { return LeaderOf(members) != kNoNode; }, timeout);
}

raft::ConfigState World::ConfigOf(const std::vector<NodeId>& members) const {
  const core::Node* best = nullptr;
  for (NodeId id : members) {
    if (!HasNode(id) || net_.IsCrashed(id)) continue;
    const auto& n = node(id);
    if (best == nullptr || n.current_et().raw() > best->current_et().raw()) {
      best = &n;
    }
  }
  // Every member down (crash chaos): an empty state, never a dead deref —
  // callers treat memberless configs as "nothing to do" and fail softly.
  if (best == nullptr) {
    raft::ConfigState none;
    none.range = KeyRange::Empty();
    return none;
  }
  return best->config();
}

// ---------------------------------------------------------------------------
// Synchronous request helpers.

Result<raft::ClientReply> World::Call(NodeId to, raft::ClientBody body,
                                      Duration timeout) {
  uint64_t req_id = NextReqId();
  raft::ClientRequest req;
  req.req_id = req_id;
  req.from = kAdminId;
  req.body = std::move(body);
  auto msg = raft::MakeMessage(raft::Message(req));
  transport_.Send(kAdminId, to, msg);
  bool got = RunUntil(
      [&]() { return admin_replies_.count(req_id) > 0; }, timeout);
  if (!got) return Timeout("no reply from node " + std::to_string(to));
  raft::ClientReply reply = admin_replies_[req_id];
  admin_replies_.erase(req_id);
  return reply;
}

Result<raft::ClientReply> World::CallLeader(const std::vector<NodeId>& members,
                                            raft::ClientBody body,
                                            Duration timeout) {
  TimePoint deadline = now() + timeout;
  size_t rotate = 0;
  while (now() < deadline) {
    NodeId target = LeaderOf(members);
    if (target == kNoNode) {
      target = members[rotate++ % members.size()];
      RunFor(50 * kMillisecond);
      if (LeaderOf(members) == kNoNode) continue;
      target = LeaderOf(members);
    }
    auto reply = Call(target, body, std::min<Duration>(deadline - now(),
                                                       2 * kSecond));
    if (!reply.ok()) continue;  // timeout: retry (leader may have moved)
    if (reply->status.code() == Code::kNotLeader ||
        reply->status.code() == Code::kBusy) {
      // NotLeader: follow the hint on the next probe. Busy: transient (P3
      // no-op still committing, or a merge blocking); retry shortly.
      RunFor(20 * kMillisecond);
      continue;
    }
    return reply;
  }
  return Timeout("no leader answered");
}

Status World::Put(const std::vector<NodeId>& members, const std::string& key,
                  const std::string& value, Duration timeout) {
  kv::Command cmd;
  cmd.op = kv::OpType::kPut;
  cmd.key = key;
  cmd.value = value;
  auto reply = CallLeader(members, kv::EncodeCommand(cmd), timeout);
  if (!reply.ok()) return reply.status();
  return reply->status;
}

Result<std::string> World::Get(const std::vector<NodeId>& members,
                               const std::string& key, Duration timeout) {
  kv::Command cmd;
  cmd.op = kv::OpType::kGet;
  cmd.key = key;
  auto reply = CallLeader(members, kv::EncodeCommand(cmd), timeout);
  if (!reply.ok()) return reply.status();
  if (!reply->status.ok()) return reply->status;
  return reply->value;
}

Result<std::string> World::ReadGet(const std::vector<NodeId>& members,
                                   const std::string& key, Duration timeout) {
  kv::Command cmd;
  cmd.op = kv::OpType::kGet;
  cmd.key = key;
  auto reply =
      CallLeader(members, raft::ReadRequest{kv::EncodeCommand(cmd)}, timeout);
  if (!reply.ok()) return reply.status();
  if (!reply->status.ok()) return reply->status;
  return reply->value;
}

Result<kv::Response> World::Scan(const std::vector<NodeId>& members,
                                 const std::string& lo, const std::string& hi,
                                 uint32_t limit, Duration timeout) {
  kv::Command cmd;
  cmd.op = kv::OpType::kScan;
  cmd.key = lo;
  cmd.scan_hi = hi;
  cmd.scan_limit = limit;
  auto reply =
      CallLeader(members, raft::ReadRequest{kv::EncodeCommand(cmd)}, timeout);
  if (!reply.ok()) return reply.status();
  if (!reply->status.ok()) return reply->status;
  return kv::DecodeResponse(kv::OpType::kScan, reply->status, reply->value);
}

Result<kv::Response> World::Cas(const std::vector<NodeId>& members,
                                const std::string& key,
                                const std::string& expected,
                                const std::string& desired, Duration timeout) {
  kv::Command cmd;
  cmd.op = kv::OpType::kCas;
  cmd.key = key;
  cmd.expected = expected;
  cmd.value = desired;
  auto reply = CallLeader(members, kv::EncodeCommand(cmd), timeout);
  if (!reply.ok()) return reply.status();
  // kConflict is a *valid* CAS outcome, not a transport failure: surface it
  // as a Response so callers can read the actual current value.
  return kv::DecodeResponse(kv::OpType::kCas, reply->status, reply->value);
}

Status World::Preload(const std::vector<NodeId>& members, size_t n,
                      size_t value_bytes, const std::string& prefix) {
  std::string value(value_bytes, 'v');
  char buf[32];
  for (size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof(buf), "%s%08zu", prefix.c_str(), i);
    Status s = Put(members, buf, value);
    if (!s.ok()) return s;
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Admin operations.

Status World::AdminSplit(const std::vector<NodeId>& members,
                         const std::vector<std::vector<NodeId>>& groups,
                         const std::vector<std::string>& split_keys,
                         Duration timeout) {
  raft::AdminSplit body;
  body.groups = groups;
  body.split_keys = split_keys;
  auto reply = CallLeader(members, body, timeout);
  if (!reply.ok()) return reply.status();
  return reply->status;
}

Result<raft::MergePlan> World::MakeMergeDraft(
    const std::vector<std::vector<NodeId>>& clusters) {
  raft::MergePlan plan;
  plan.tx = NextTxId();
  plan.coordinator = 0;
  for (const auto& members : clusters) {
    if (members.empty()) return Rejected("empty cluster in merge draft");
    raft::ConfigState cfg = ConfigOf(members);
    if (cfg.members.empty()) {
      return Unavailable("no live member to describe a merge source");
    }
    raft::SubCluster src;
    src.members = cfg.members;
    std::sort(src.members.begin(), src.members.end());
    src.range = cfg.range;
    src.uid = cfg.uid;
    plan.sources.push_back(std::move(src));
  }
  return plan;
}

Status World::AdminMerge(const std::vector<std::vector<NodeId>>& clusters,
                         std::vector<NodeId> resume_members, Duration timeout) {
  auto plan = MakeMergeDraft(clusters);
  if (!plan.ok()) return plan.status();
  plan->resume_members = std::move(resume_members);
  raft::AdminMerge body;
  body.draft = *plan;
  auto reply = CallLeader(clusters.front(), body, timeout);
  if (!reply.ok()) return reply.status();
  return reply->status;
}

Status World::AdminMemberChange(const std::vector<NodeId>& members,
                                const raft::MemberChange& change,
                                Duration timeout) {
  auto reply = CallLeader(members, raft::AdminMember{change}, timeout);
  if (!reply.ok()) return reply.status();
  return reply->status;
}

Result<int> World::AdminResizeTo(const std::vector<NodeId>& members,
                                 const std::vector<NodeId>& target,
                                 Duration timeout) {
  TimePoint deadline = now() + timeout;
  std::vector<NodeId> current = ConfigOf(members).members;
  std::vector<NodeId> goal = target;
  std::sort(goal.begin(), goal.end());
  int steps = 0;
  auto wait_settled = [&]() {
    return RunUntil(
        [&]() {
          NodeId l = LeaderOf(goal.empty() ? current : goal);
          if (l == kNoNode) l = LeaderOf(current);
          if (l == kNoNode) return false;
          const auto& cfg = node(l).config();
          return !cfg.ReconfigPending() && cfg.fixed_quorum == 0 &&
                 node(l).commit_index() >= node(l).log().last_index();
        },
        deadline > now() ? deadline - now() : 0);
  };

  while (now() < deadline) {
    current = ConfigOf(current).members;
    std::vector<NodeId> to_add, to_remove;
    for (NodeId n : goal) {
      if (std::find(current.begin(), current.end(), n) == current.end()) {
        to_add.push_back(n);
      }
    }
    for (NodeId n : current) {
      if (std::find(goal.begin(), goal.end(), n) == goal.end()) {
        to_remove.push_back(n);
      }
    }
    if (to_add.empty() && to_remove.empty()) return steps;

    raft::MemberChange mc;
    if (!to_add.empty()) {
      mc.kind = raft::MemberChangeKind::kAddAndResize;
      mc.nodes = to_add;
    } else {
      // §IV-B: at most Q_old - 1 removals per step; chain if necessary.
      size_t cap = raft::MajorityOf(current.size()) - 1;
      if (cap == 0) return Rejected("cannot shrink a cluster of this size");
      if (to_remove.size() > cap) to_remove.resize(cap);
      mc.kind = raft::MemberChangeKind::kRemoveAndResize;
      mc.nodes = to_remove;
    }
    Status s = AdminMemberChange(current, mc,
                                 deadline > now() ? deadline - now() : 0);
    if (!s.ok()) return s;
    ++steps;
    if (!wait_settled()) return Timeout("membership change did not settle");
  }
  return Timeout("resize did not finish");
}

void World::DumpDiagnostics(std::ostream& os) const {
  os << "=== world diagnostics @ " << FormatTime(events_.now())
     << " (seed=" << opts_.seed << ") ===\n";
  os << "-- nodes --\n";
  for (const auto& [id, n] : nodes_) {
    Index durable = 0;
    if (auto it = storages_.find(id); it != storages_.end()) {
      durable = it->second->DurableIndex();
    }
    os << "  node " << id << ": " << core::RoleName(n->role())
       << " et=" << n->current_et().raw() << " epoch=" << n->epoch()
       << " commit=" << n->commit_index() << " applied=" << n->last_applied()
       << " last_log=" << n->last_log_index() << " durable=" << durable
       << " uid=" << n->cluster_uid()
       << " merge_phase=" << static_cast<int>(n->merge_phase())
       << " pending_reads=" << n->pending_read_count()
       << (net_.IsCrashed(id) ? "  [CRASHED]" : "") << "\n";
  }
  for (const auto& [id, disk] : disks_) {
    if (nodes_.count(id) == 0) {
      os << "  node " << id << ": DOWN (hard-crashed, durable medium kept)\n";
    }
  }
  os << "-- network --\n";
  for (const auto& [name, value] : net_.counters().all()) {
    if (value != 0) os << "  " << name << " = " << value << "\n";
  }
  os << "  blocked_links = " << net_.blocked_link_count()
     << "  link_overrides = " << net_.link_override_count() << "\n";
  os << "-- disks --\n";
  for (const auto& [id, disk] : disks_) {
    const auto& s = disk->stats();
    os << "  disk " << id << ": flushes=" << s.flushes
       << " flushed_bytes=" << s.flushed_bytes
       << " appended_bytes=" << s.appended_bytes << " io_busy=" << s.io_busy
       << "us crash_lost_bytes=" << s.crash_lost_bytes << "\n";
  }
  os << "-- events --\n";
  os << "  executed=" << events_.events_executed()
     << " pending=" << events_.pending() << " digest=" << std::hex
     << events_.execution_digest() << std::dec << "\n";
}

}  // namespace recraft::harness
