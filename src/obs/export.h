// Trace export: Chrome-trace / Perfetto JSON (load trace-<seed>.json in
// ui.perfetto.dev or chrome://tracing) and a human-readable critical-path
// summary for one traced operation. Shared by tools/trace and the sweep
// violation repro path.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/trace.h"

namespace recraft::obs {

/// Write the records as Chrome-trace JSON: one track (pid/tid = node id)
/// per node, spans as nestable async begin/end events (no nesting
/// discipline required — concurrent client ops and crossing protocol spans
/// are the norm), instants as thread-scoped "i" events, plus process_name
/// metadata so Perfetto labels each track "node <id>". Records must be in
/// chronological order (TraceBuffer::Snapshot/Recorder::Snapshot order);
/// per-track timestamps are then monotone by construction.
void ExportChromeTrace(const std::vector<TraceRecord>& records,
                       std::ostream& os);

/// Trace ids present in the records, in first-appearance order, restricted
/// to ids that begin a kClientOp span (i.e. traced client operations).
std::vector<uint64_t> ClientOpTraceIds(const std::vector<TraceRecord>& records);

/// The traced client op with the longest begin->end latency; 0 if none
/// completed inside the buffer window.
uint64_t SlowestClientOp(const std::vector<TraceRecord>& records);

/// Print every record of `trace_id` as a timeline with deltas from the
/// first record — the critical path of one client op across routing,
/// replication fan-out, the durability gate, apply and reply.
void PrintCriticalPath(const std::vector<TraceRecord>& records,
                       uint64_t trace_id, std::ostream& os);

}  // namespace recraft::obs
