// Causal trace context carried in message metadata. Kept in its own tiny
// header so raft/messages.h can embed it without pulling in the recorder.
//
// A TraceCtx is pure annotation: it never feeds back into protocol behavior,
// wire-byte accounting, or the event schedule, so a world runs to the same
// execution digest whether contexts are populated or not (asserted by
// obs_test). trace_id groups every record caused by one logical operation
// (e.g. a client request and all the replication/durability traffic it
// spawns); parent_span names the span that emitted the message.
#pragma once

#include <cstdint>

namespace recraft::obs {

struct TraceCtx {
  uint64_t trace_id = 0;     // 0 = untraced
  uint64_t parent_span = 0;  // 0 = no enclosing span

  bool valid() const { return trace_id != 0; }
};

}  // namespace recraft::obs
