#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <string>

namespace recraft::obs {

namespace {

const char* KindStr(Kind k) {
  switch (k) {
    case Kind::kInstant:
      return "instant";
    case Kind::kSpanBegin:
      return "begin";
    case Kind::kSpanEnd:
      return "end";
  }
  return "?";
}

const char* OutcomeStr(uint64_t b) {
  switch (static_cast<Outcome>(b)) {
    case Outcome::kNone:
      return "none";
    case Outcome::kOk:
      return "ok";
    case Outcome::kLost:
      return "lost";
    case Outcome::kAborted:
      return "aborted";
    case Outcome::kError:
      return "error";
  }
  return "?";
}

void AppendU64(std::string* s, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  s->append(buf);
}

// One Chrome-trace event object. All names come from the interned table and
// contain no characters needing JSON escaping.
std::string EventJson(const TraceRecord& r) {
  std::string e = "{\"name\":\"";
  e += NameStr(r.name);
  e += "\",\"cat\":\"recraft\",\"ph\":\"";
  switch (r.kind) {
    case Kind::kInstant:
      e += "i";
      break;
    case Kind::kSpanBegin:
      e += "b";
      break;
    case Kind::kSpanEnd:
      e += "e";
      break;
  }
  e += "\",\"ts\":";
  AppendU64(&e, r.ts);
  e += ",\"pid\":";
  AppendU64(&e, r.node);
  e += ",\"tid\":";
  AppendU64(&e, r.node);
  if (r.kind == Kind::kInstant) {
    e += ",\"s\":\"t\"";
  } else {
    // Nestable async events pair begin/end through their id.
    e += ",\"id2\":{\"local\":\"0x";
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIx64, r.span);
    e += buf;
    e += "\"}";
  }
  e += ",\"args\":{";
  bool first = true;
  auto arg = [&](const char* k, uint64_t v) {
    if (!first) e += ",";
    first = false;
    e += "\"";
    e += k;
    e += "\":";
    AppendU64(&e, v);
  };
  if (r.trace_id != 0) arg("trace", r.trace_id);
  if (r.parent != 0) arg("parent_span", r.parent);
  arg("a", r.a);
  arg("b", r.b);
  if (r.kind == Kind::kSpanEnd) {
    if (!first) e += ",";
    first = false;
    e += "\"outcome\":\"";
    e += OutcomeStr(r.b);
    e += "\"";
  }
  e += "}}";
  return e;
}

}  // namespace

void ExportChromeTrace(const std::vector<TraceRecord>& records,
                       std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  // Label each node's track. std::set: deterministic ordered iteration.
  std::set<NodeId> nodes;
  for (const TraceRecord& r : records) nodes.insert(r.node);
  for (NodeId n : nodes) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << n
       << ",\"tid\":" << n << ",\"args\":{\"name\":\"node " << n << "\"}}";
  }
  for (const TraceRecord& r : records) {
    if (!first) os << ",";
    first = false;
    os << "\n" << EventJson(r);
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::vector<uint64_t> ClientOpTraceIds(
    const std::vector<TraceRecord>& records) {
  std::vector<uint64_t> ids;
  std::set<uint64_t> seen;
  for (const TraceRecord& r : records) {
    if (r.name != Name::kClientOp || r.kind != Kind::kSpanBegin) continue;
    if (r.trace_id == 0 || !seen.insert(r.trace_id).second) continue;
    ids.push_back(r.trace_id);
  }
  return ids;
}

uint64_t SlowestClientOp(const std::vector<TraceRecord>& records) {
  std::map<uint64_t, TimePoint> begin_ts;  // span id -> begin ts
  std::map<uint64_t, uint64_t> span_trace;
  uint64_t best_trace = 0;
  TimePoint best_latency = 0;
  for (const TraceRecord& r : records) {
    if (r.name != Name::kClientOp) continue;
    if (r.kind == Kind::kSpanBegin) {
      begin_ts[r.span] = r.ts;
      span_trace[r.span] = r.trace_id;
    } else if (r.kind == Kind::kSpanEnd) {
      auto it = begin_ts.find(r.span);
      if (it == begin_ts.end()) continue;
      const TimePoint lat = r.ts - it->second;
      if (lat >= best_latency) {
        best_latency = lat;
        best_trace = span_trace[r.span];
      }
    }
  }
  return best_trace;
}

void PrintCriticalPath(const std::vector<TraceRecord>& records,
                       uint64_t trace_id, std::ostream& os) {
  std::vector<const TraceRecord*> chain;
  for (const TraceRecord& r : records) {
    if (r.trace_id == trace_id && trace_id != 0) chain.push_back(&r);
  }
  os << "trace " << trace_id << ": " << chain.size() << " record(s)\n";
  if (chain.empty()) {
    os << "  (no records — op predates the ring window or id is unknown)\n";
    return;
  }
  const TimePoint t0 = chain.front()->ts;
  for (const TraceRecord* r : chain) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  +%8" PRIu64 "us  node %-5u  %-22s %-7s a=%" PRIu64
                  " b=%" PRIu64,
                  r->ts - t0, r->node, NameStr(r->name), KindStr(r->kind),
                  r->a, r->b);
    os << line;
    if (r->kind == Kind::kSpanEnd) os << "  outcome=" << OutcomeStr(r->b);
    os << "\n";
  }
  os << "  total: " << (chain.back()->ts - t0) << "us\n";
}

}  // namespace recraft::obs
