// Deterministic flight recorder: a fixed-capacity ring buffer of POD trace
// records stamped with simulated time. The recorder is pure observation —
// it draws no randomness, schedules no events, allocates only at arm time,
// and never feeds a value back into the protocols — so arming it leaves the
// execution digest bit-identical (obs_test pins this with the recorder
// disabled, armed, and wrapping).
//
// Record names are a closed, compile-time interned table (obs::Name): emit
// sites pass an enumerator, never a string, so the hot path writes a few
// words into the ring and the recraft-trace-hygiene lint can flag any
// string literal smuggled into an emit call.
//
// Span ids and trace ids come from recorder-owned monotonic counters, which
// makes them deterministic in execution order: the trace for a (seed, mix,
// ticks) world is itself replay-stable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "obs/trace_ctx.h"

namespace recraft::obs {

// Interned trace-record names. Append only; NameStr() must stay in sync.
enum class Name : uint16_t {
  kNone = 0,

  // Network instants (a = peer id, b = bytes).
  kNetSend,
  kNetDeliver,
  kNetDropSrcCrashed,
  kNetDropDstCrashed,
  kNetDropPartition,
  kNetDropOneWay,
  kNetDropRandom,
  kNetDropUnregistered,

  // Node instants along the client-op causal chain.
  kPropose,      // a = log index, b = term
  kApply,        // a = log index
  kReply,        // a = client id, b = status
  kAckDeferred,  // replication ack parked on the durability gate (a = index)
  kAckReleased,  // durability reached, parked ack sent (a = index)

  // Storage instants (a = records flushed, b = 1 if fsync-path flush).
  kWalFlush,

  // Client instants.
  kClientRetry,  // a = attempt count, b = last status

  // Spans (b = outcome on the end record; see Outcome).
  kClientOp,        // a = op kind on begin
  kElection,        // a = term
  kSplit,           // propose -> joint -> C_new -> settle
  kMerge,           // cluster-level 2PC on the coordinator (a = tx id)
  kMergeExchange,   // snapshot transfer into the merged cluster (a = tx id)
  kMemberChange,    // a = node being added/removed
  kReadRound,       // one ReadIndex probe round (a = read index)

  // Protocol instants inside the spans above.
  kSplitJointCommitted,   // a = log index
  kSplitLeaveProposed,    // a = log index
  kMergePrepareSent,      // a = tx id, b = target cluster leader
  kMergeCommitSent,       // a = tx id, b = 1 commit / 0 abort
  kMergeOutcomeApplied,   // a = tx id, b = 1 commit / 0 abort
  kExchangePull,          // a = tx id, b = source node
  kExchangeDone,          // a = tx id

  kCount
};

// Span outcome codes carried in the end record's `b` argument.
enum class Outcome : uint64_t {
  kNone = 0,
  kOk = 1,
  kLost = 2,     // superseded / stepped down / lost election
  kAborted = 3,  // explicit protocol abort (merge 2PC abort path)
  kError = 4,
};

// Static name table; indexed by Name.
const char* NameStr(Name n);

enum class Kind : uint8_t {
  kInstant = 0,
  kSpanBegin = 1,
  kSpanEnd = 2,
};

// One POD ring-buffer slot. `a` and `b` are name-specific arguments (see
// the Name enum comments); `span`/`parent` link span begin/end pairs and
// causal parents, `trace_id` groups records of one logical operation.
struct TraceRecord {
  TimePoint ts = 0;
  uint64_t trace_id = 0;
  uint64_t span = 0;
  uint64_t parent = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  NodeId node = 0;
  Name name = Name::kNone;
  Kind kind = Kind::kInstant;
};

// Fixed-capacity overwrite-oldest ring of TraceRecords. No allocation after
// construction; wrapping drops the oldest records (total() keeps counting).
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity) : buf_(capacity == 0 ? 1 : capacity) {}

  void Push(const TraceRecord& r) {
    buf_[pushed_ % buf_.size()] = r;
    ++pushed_;
  }

  size_t capacity() const { return buf_.size(); }
  /// Records currently held (<= capacity).
  size_t size() const {
    return pushed_ < buf_.size() ? static_cast<size_t>(pushed_) : buf_.size();
  }
  /// Records ever pushed, including overwritten ones.
  uint64_t total() const { return pushed_; }
  bool wrapped() const { return pushed_ > buf_.size(); }

  /// Surviving records, oldest first.
  std::vector<TraceRecord> Snapshot() const;

 private:
  std::vector<TraceRecord> buf_;
  uint64_t pushed_ = 0;
};

// The per-world flight recorder. One instance serves every emitter in a
// world (nodes, network, storage, clients); worlds are single-threaded so
// no synchronization is needed, and sweep worlds never share a recorder.
// A null Recorder* at an emit site means "disarmed" — the entire cost of a
// disarmed world is one pointer test per emit point.
class Recorder {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit Recorder(size_t capacity = kDefaultCapacity) : buf_(capacity) {}

  /// Bind the simulated clock. The recorder reads it, never advances it.
  void BindClock(const TimePoint* now) { now_ = now; }

  /// Fresh trace id for a new logical operation (deterministic: ids are
  /// assigned in execution order).
  uint64_t NewTraceId() { return ++next_trace_; }

  void Emit(NodeId node, Name name, TraceCtx ctx = {}, uint64_t a = 0,
            uint64_t b = 0) {
    TraceRecord r;
    r.ts = Now();
    r.trace_id = ctx.trace_id;
    r.parent = ctx.parent_span;
    r.a = a;
    r.b = b;
    r.node = node;
    r.name = name;
    r.kind = Kind::kInstant;
    buf_.Push(r);
  }

  /// Open a span; returns its id (0 is never a valid span id).
  uint64_t BeginSpan(NodeId node, Name name, TraceCtx ctx = {},
                     uint64_t a = 0) {
    const uint64_t id = ++next_span_;
    TraceRecord r;
    r.ts = Now();
    r.trace_id = ctx.trace_id;
    r.span = id;
    r.parent = ctx.parent_span;
    r.a = a;
    r.node = node;
    r.name = name;
    r.kind = Kind::kSpanBegin;
    buf_.Push(r);
    return r.span;
  }

  void EndSpan(NodeId node, Name name, uint64_t span,
               Outcome outcome = Outcome::kOk, uint64_t a = 0,
               uint64_t trace_id = 0) {
    TraceRecord r;
    r.ts = Now();
    r.trace_id = trace_id;
    r.span = span;
    r.a = a;
    r.b = static_cast<uint64_t>(outcome);
    r.node = node;
    r.name = name;
    r.kind = Kind::kSpanEnd;
    buf_.Push(r);
  }

  std::vector<TraceRecord> Snapshot() const { return buf_.Snapshot(); }
  const TraceBuffer& buffer() const { return buf_; }

 private:
  TimePoint Now() const { return now_ != nullptr ? *now_ : 0; }

  TraceBuffer buf_;
  const TimePoint* now_ = nullptr;
  uint64_t next_trace_ = 0;
  uint64_t next_span_ = 0;
};

}  // namespace recraft::obs
