#include "obs/trace.h"

#include <array>

namespace recraft::obs {

namespace {

constexpr std::array<const char*, static_cast<size_t>(Name::kCount)> kNames = {
    "none",
    // network
    "net.send",
    "net.deliver",
    "net.drop.src_crashed",
    "net.drop.dst_crashed",
    "net.drop.partition",
    "net.drop.oneway",
    "net.drop.random",
    "net.drop.unregistered",
    // node causal chain
    "node.propose",
    "node.apply",
    "node.reply",
    "node.ack_deferred",
    "node.ack_released",
    // storage
    "wal.flush",
    // client
    "client.retry",
    // spans
    "client.op",
    "election",
    "split",
    "merge",
    "merge.exchange",
    "member_change",
    "read.round",
    // protocol instants
    "split.joint_committed",
    "split.leave_proposed",
    "merge.prepare_sent",
    "merge.commit_sent",
    "merge.outcome_applied",
    "exchange.pull",
    "exchange.done",
};

}  // namespace

const char* NameStr(Name n) {
  const auto i = static_cast<size_t>(n);
  if (i >= kNames.size()) return "invalid";
  return kNames[i];
}

std::vector<TraceRecord> TraceBuffer::Snapshot() const {
  std::vector<TraceRecord> out;
  const size_t live = size();
  out.reserve(live);
  const size_t cap = buf_.size();
  const size_t start = pushed_ > cap ? static_cast<size_t>(pushed_ % cap) : 0;
  for (size_t i = 0; i < live; ++i) {
    out.push_back(buf_[(start + i) % cap]);
  }
  return out;
}

}  // namespace recraft::obs
