#include "tc/cluster_manager.h"

#include "common/logging.h"

namespace recraft::tc {

const char* CmPhaseName(CmPhase p) {
  switch (p) {
    case CmPhase::kIdle: return "idle";
    case CmPhase::kRemoving: return "removing";
    case CmPhase::kSnapshotting: return "snapshotting";
    case CmPhase::kRestarting: return "restarting";
    case CmPhase::kRangeChange: return "range-change";
    case CmPhase::kMergeSnapshot: return "merge-snapshot";
    case CmPhase::kMergeInject: return "merge-inject";
    case CmPhase::kMergeTerminate: return "merge-terminate";
    case CmPhase::kMergeRejoin: return "merge-rejoin";
    case CmPhase::kDone: return "done";
    case CmPhase::kFailed: return "failed";
  }
  return "?";
}

ClusterManager::ClusterManager(harness::World& world, NodeId id,
                               TcOptions opts)
    : world_(world), id_(id), opts_(opts) {
  world_.net().Register(
      id_, [this](NodeId from, std::shared_ptr<const void> payload, size_t,
                  obs::TraceCtx) {
        OnMessage(from,
                  *std::static_pointer_cast<const raft::Message>(payload));
      });
  // Self-rescheduling tick, frozen (but still re-armed) while crashed.
  tick_event_ =
      world_.events().Schedule(opts_.tick_interval, [this]() { RearmTick(); });
}

void ClusterManager::RearmTick() {
  if (!world_.IsCrashed(id_)) Tick();
  tick_event_ =
      world_.events().Schedule(opts_.tick_interval, [this]() { RearmTick(); });
}

ClusterManager::~ClusterManager() {
  world_.events().Cancel(tick_event_);
  world_.net().Unregister(id_);
}

NodeId ClusterManager::GuessLeader(const std::vector<NodeId>& members) const {
  if (leader_hint_ != kNoNode &&
      std::find(members.begin(), members.end(), leader_hint_) !=
          members.end()) {
    return leader_hint_;
  }
  NodeId l = world_.LeaderOf(members);
  return l != kNoNode ? l : members.front();
}

void ClusterManager::StartSplit(SplitOp op) {
  split_ = std::move(op);
  merge_.reset();
  if (standby_armed_) return;  // hold until the primary dies
  op_start_ = phase_start_ = world_.now();
  timings_ = CmTimings{};
  group_cursor_ = 1;
  node_cursor_ = 0;
  snaps_.clear();
  BeginPhase(CmPhase::kRemoving);
  Advance();
}

void ClusterManager::StartMerge(MergeOp op) {
  merge_ = std::move(op);
  split_.reset();
  if (standby_armed_) return;
  op_start_ = phase_start_ = world_.now();
  timings_ = CmTimings{};
  group_cursor_ = 1;
  node_cursor_ = 0;
  snaps_.clear();
  BeginPhase(CmPhase::kMergeSnapshot);
  Advance();
}

void ClusterManager::MonitorAsStandby(NodeId primary) {
  primary_ = primary;
  standby_armed_ = true;
}

void ClusterManager::BeginPhase(CmPhase next) {
  RecordPhaseDuration();
  phase_ = next;
  phase_start_ = world_.now();
  retry_countdown_ = 0;
  leader_hint_ = kNoNode;
  RLOG_DEBUG("tc", "cm%u enters phase %s", id_, CmPhaseName(next));
}

void ClusterManager::RecordPhaseDuration() {
  Duration d = world_.now() - phase_start_;
  switch (phase_) {
    case CmPhase::kRemoving: timings_.remove += d; break;
    case CmPhase::kSnapshotting: timings_.snapshot += d; break;
    case CmPhase::kRestarting: timings_.restart += d; break;
    case CmPhase::kRangeChange: timings_.range_change += d; break;
    case CmPhase::kMergeSnapshot: timings_.snapshot += d; break;
    case CmPhase::kMergeInject: timings_.inject += d; break;
    case CmPhase::kMergeTerminate: timings_.terminate += d; break;
    case CmPhase::kMergeRejoin: timings_.rejoin += d; break;
    default: break;
  }
  if (phase_ != CmPhase::kIdle) timings_.total = world_.now() - op_start_;
}

void ClusterManager::Tick() {
  // Standby takeover: re-execute the stored operation when the primary is
  // down (all steps are idempotent).
  if (standby_armed_ && primary_ != kNoNode && world_.IsCrashed(primary_)) {
    standby_armed_ = false;
    RLOG_INFO("tc", "cm%u takes over from crashed primary cm%u", id_,
              primary_);
    if (split_.has_value()) {
      SplitOp op = *split_;
      StartSplit(std::move(op));
    } else if (merge_.has_value()) {
      MergeOp op = *merge_;
      StartMerge(std::move(op));
    }
    return;
  }
  if (phase_ == CmPhase::kIdle || phase_ == CmPhase::kDone ||
      phase_ == CmPhase::kFailed) {
    return;
  }
  if (phase_ == CmPhase::kRestarting && restart_ready_at_ != 0) {
    if (world_.now() >= restart_ready_at_ && pending_acks_.empty()) {
      restart_ready_at_ = 0;
      ++group_cursor_;
      node_cursor_ = 0;
      Advance();
    }
    return;
  }
  if (retry_countdown_ > opts_.tick_interval) {
    retry_countdown_ -= opts_.tick_interval;
    return;
  }
  retry_countdown_ = opts_.retry_interval;
  leader_hint_ = kNoNode;  // re-probe on retry
  SendCurrent();
}

void ClusterManager::Advance() {
  if (split_.has_value()) {
    SplitAdvance();
  } else if (merge_.has_value()) {
    MergeAdvance();
  }
}

// ---------------------------------------------------------------------------
// Split: remove -> snapshot -> restart -> range change.

void ClusterManager::SplitAdvance() {
  const SplitOp& op = *split_;
  switch (phase_) {
    case CmPhase::kRemoving: {
      // Remove every node of groups[1..], one AR-RPC at a time.
      if (group_cursor_ >= op.groups.size()) {
        group_cursor_ = 1;
        node_cursor_ = 0;
        BeginPhase(CmPhase::kSnapshotting);
        SplitAdvance();
        return;
      }
      if (node_cursor_ >= op.groups[group_cursor_].size()) {
        ++group_cursor_;
        node_cursor_ = 0;
        SplitAdvance();
        return;
      }
      SendCurrent();
      return;
    }
    case CmPhase::kSnapshotting: {
      if (group_cursor_ >= op.groups.size()) {
        group_cursor_ = 1;
        node_cursor_ = 0;
        BeginPhase(CmPhase::kRestarting);
        SplitAdvance();
        return;
      }
      SendCurrent();
      return;
    }
    case CmPhase::kRestarting: {
      if (group_cursor_ >= op.groups.size()) {
        BeginPhase(CmPhase::kRangeChange);
        SplitAdvance();
        return;
      }
      // Bootstrap every node of the group, then hold for the restart delay.
      pending_acks_.clear();
      for (NodeId n : op.groups[group_cursor_]) pending_acks_.insert(n);
      restart_ready_at_ = world_.now() + opts_.restart_delay;
      SendCurrent();
      return;
    }
    case CmPhase::kRangeChange:
      SendCurrent();
      return;
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// Merge: snapshot each absorbed cluster -> inject -> terminate -> rejoin.

void ClusterManager::MergeAdvance() {
  const MergeOp& op = *merge_;
  switch (phase_) {
    case CmPhase::kMergeSnapshot: {
      if (group_cursor_ >= op.clusters.size()) {
        group_cursor_ = 1;
        BeginPhase(CmPhase::kMergeInject);
        MergeAdvance();
        return;
      }
      SendCurrent();
      return;
    }
    case CmPhase::kMergeInject: {
      if (group_cursor_ >= op.clusters.size()) {
        group_cursor_ = 1;
        node_cursor_ = 0;
        BeginPhase(CmPhase::kMergeTerminate);
        MergeAdvance();
        return;
      }
      SendCurrent();
      return;
    }
    case CmPhase::kMergeTerminate: {
      if (group_cursor_ >= op.clusters.size()) {
        group_cursor_ = 1;
        node_cursor_ = 0;
        BeginPhase(CmPhase::kMergeRejoin);
        MergeAdvance();
        return;
      }
      pending_acks_.clear();
      for (NodeId n : op.clusters[group_cursor_]) pending_acks_.insert(n);
      SendCurrent();
      return;
    }
    case CmPhase::kMergeRejoin: {
      if (group_cursor_ >= op.clusters.size()) {
        RecordPhaseDuration();
        phase_ = CmPhase::kDone;
        RLOG_INFO("tc", "cm%u merge done in %s", id_,
                  FormatTime(timings_.total).c_str());
        return;
      }
      if (node_cursor_ >= op.clusters[group_cursor_].size()) {
        ++group_cursor_;
        node_cursor_ = 0;
        MergeAdvance();
        return;
      }
      SendCurrent();
      return;
    }
    default:
      return;
  }
}

void ClusterManager::SendCurrent() {
  if (split_.has_value()) {
    const SplitOp& op = *split_;
    switch (phase_) {
      case CmPhase::kRemoving: {
        if (group_cursor_ >= op.groups.size() ||
            node_cursor_ >= op.groups[group_cursor_].size()) {
          return;
        }
        raft::MemberChange mc;
        mc.kind = raft::MemberChangeKind::kRemoveServer;
        mc.nodes = {op.groups[group_cursor_][node_cursor_]};
        raft::ClientRequest req;
        req.req_id = world_.NextReqId();
        step_reqs_.insert(req.req_id);
        req.from = id_;
        req.body = raft::AdminMember{mc};
        auto msg = raft::MakeMessage(raft::Message(req));
        world_.net().Send(id_, GuessLeader(op.source_members), msg,
                          msg.wire_bytes());
        return;
      }
      case CmPhase::kSnapshotting: {
        raft::RangeSnapReq req;
        req.from = id_;
        req.range = op.ranges[group_cursor_];
        auto msg = raft::MakeMessage(raft::Message(req));
        world_.net().Send(id_, GuessLeader(op.source_members), msg,
                          msg.wire_bytes());
        return;
      }
      case CmPhase::kRestarting: {
        raft::ConfigState genesis;
        genesis.members = op.groups[group_cursor_];
        std::sort(genesis.members.begin(), genesis.members.end());
        genesis.range = op.ranges[group_cursor_];
        genesis.uid =
            Mix64(0x7c17 + opts_.op_salt, Mix64(id_, group_cursor_ + op_seq_));
        for (NodeId n : pending_acks_) {
          raft::BootstrapReq req;
          req.from = id_;
          req.op_id = opts_.op_salt * 100000 + op_seq_ * 1000 + group_cursor_;
          req.genesis = genesis;
          req.data = snaps_[group_cursor_];
          auto msg = raft::MakeMessage(raft::Message(req));
          world_.net().Send(id_, n, msg, msg.wire_bytes());
        }
        return;
      }
      case CmPhase::kRangeChange: {
        raft::AdminSetRange body;
        body.range = op.ranges[0];
        raft::ClientRequest req;
        req.req_id = world_.NextReqId();
        step_reqs_.insert(req.req_id);
        req.from = id_;
        req.body = body;
        // Only the remaining source members: after the bootstrap the split-
        // out nodes lead their own cluster and must not get this request.
        auto msg = raft::MakeMessage(raft::Message(req));
        world_.net().Send(id_, GuessLeader(op.groups[0]), msg,
                          msg.wire_bytes());
        return;
      }
      default:
        return;
    }
  }
  if (merge_.has_value()) {
    const MergeOp& op = *merge_;
    switch (phase_) {
      case CmPhase::kMergeSnapshot: {
        raft::RangeSnapReq req;
        req.from = id_;
        req.range = op.ranges[group_cursor_];
        auto msg = raft::MakeMessage(raft::Message(req));
        world_.net().Send(id_, GuessLeader(op.clusters[group_cursor_]), msg,
                          msg.wire_bytes());
        return;
      }
      case CmPhase::kMergeInject: {
        // Extend the survivor's range cluster by cluster, absorbing data.
        std::vector<KeyRange> parts;
        for (size_t i = 0; i <= group_cursor_; ++i) parts.push_back(op.ranges[i]);
        auto merged = KeyRange::MergeAdjacent(parts);
        if (!merged.ok()) {
          phase_ = CmPhase::kFailed;
          return;
        }
        raft::AdminSetRange body;
        body.range = *merged;
        body.absorb = snaps_[group_cursor_];
        raft::ClientRequest req;
        req.req_id = world_.NextReqId();
        step_reqs_.insert(req.req_id);
        req.from = id_;
        req.body = body;
        auto msg = raft::MakeMessage(raft::Message(std::move(req)));
        world_.net().Send(id_, GuessLeader(op.clusters[0]), msg,
                          msg.wire_bytes());
        return;
      }
      case CmPhase::kMergeTerminate: {
        raft::ConfigState empty;
        empty.members = {};
        empty.range = KeyRange::Empty();
        empty.uid = Mix64(0xdead + opts_.op_salt, op_seq_);
        for (NodeId n : pending_acks_) {
          raft::BootstrapReq req;
          req.from = id_;
          req.op_id = opts_.op_salt * 100000 + op_seq_ * 2000 + group_cursor_;
          req.genesis = empty;
          auto msg = raft::MakeMessage(raft::Message(req));
          world_.net().Send(id_, n, msg, msg.wire_bytes());
        }
        return;
      }
      case CmPhase::kMergeRejoin: {
        raft::MemberChange mc;
        mc.kind = raft::MemberChangeKind::kAddServer;
        mc.nodes = {op.clusters[group_cursor_][node_cursor_]};
        raft::ClientRequest req;
        req.req_id = world_.NextReqId();
        step_reqs_.insert(req.req_id);
        req.from = id_;
        req.body = raft::AdminMember{mc};
        auto msg = raft::MakeMessage(raft::Message(req));
        world_.net().Send(id_, GuessLeader(op.clusters[0]), msg,
                          msg.wire_bytes());
        return;
      }
      default:
        return;
    }
  }
}

void ClusterManager::OnMessage(NodeId from, const raft::Message& m) {
  if (const auto* reply = std::get_if<raft::ClientReply>(&m)) {
    if (step_reqs_.count(reply->req_id) == 0) return;
    if (reply->status.ok() ||
        // Idempotent re-execution: "not a member" / "already a member"
        // rejections mean the step already happened.
        (reply->status.code() == Code::kRejected &&
         (reply->status.message().find("not a member") != std::string::npos ||
          reply->status.message().find("already a member") !=
              std::string::npos))) {
      step_reqs_.clear();
      if (phase_ == CmPhase::kRemoving) {
        ++node_cursor_;
        retry_countdown_ = 0;
        Advance();
      } else if (phase_ == CmPhase::kMergeRejoin) {
        ++node_cursor_;
        retry_countdown_ = opts_.retry_interval;  // let the joiner settle
        Advance();
      } else if (phase_ == CmPhase::kRangeChange) {
        RecordPhaseDuration();
        phase_ = CmPhase::kDone;
        RLOG_INFO("tc", "cm%u split done in %s", id_,
                  FormatTime(timings_.total).c_str());
      } else if (phase_ == CmPhase::kMergeInject) {
        ++group_cursor_;
        Advance();
      }
      return;
    }
    if (reply->status.code() == Code::kNotLeader &&
        reply->leader_hint != kNoNode) {
      leader_hint_ = reply->leader_hint;
      SendCurrent();
    }
    // Other failures: the tick-driven retry handles it.
    return;
  }
  if (const auto* snap = std::get_if<raft::RangeSnapReply>(&m)) {
    if (phase_ != CmPhase::kSnapshotting && phase_ != CmPhase::kMergeSnapshot) {
      return;
    }
    if (snap->retry) {
      if (snap->leader_hint != kNoNode) {
        leader_hint_ = snap->leader_hint;
        SendCurrent();
      }
      return;
    }
    if (!snap->ok || !snap->snap) return;
    // Match the reply to its step by the echoed range (duplicate replies
    // from retransmissions may arrive after the cursor moved on).
    const auto& ranges = split_.has_value() ? split_->ranges : merge_->ranges;
    size_t idx = ranges.size();
    for (size_t i = 0; i < ranges.size(); ++i) {
      if (ranges[i] == snap->range) {
        idx = i;
        break;
      }
    }
    if (idx >= ranges.size()) return;
    snaps_[idx] = snap->snap;
    if (idx == group_cursor_) {
      ++group_cursor_;
      retry_countdown_ = 0;
      Advance();
    }
    return;
  }
  if (const auto* ack = std::get_if<raft::BootstrapAck>(&m)) {
    (void)ack;
    pending_acks_.erase(from);
    if (pending_acks_.empty() && phase_ == CmPhase::kMergeTerminate) {
      ++group_cursor_;
      Advance();
    }
    // kRestarting waits for restart_ready_at_ in Tick().
    return;
  }
}

// ---------------------------------------------------------------------------

Result<CmTimings> RunTcSplit(harness::World& world, NodeId cm_id, SplitOp op,
                             TcOptions opts, Duration timeout) {
  ClusterManager cm(world, cm_id, opts);
  cm.StartSplit(std::move(op));
  bool ok = world.RunUntil([&]() { return cm.done() || cm.failed(); }, timeout);
  if (!ok || cm.failed()) {
    return Timeout(std::string("TC split stuck in phase ") +
                   CmPhaseName(cm.phase()));
  }
  return cm.timings();
}

Result<CmTimings> RunTcMerge(harness::World& world, NodeId cm_id, MergeOp op,
                             TcOptions opts, Duration timeout) {
  ClusterManager cm(world, cm_id, opts);
  cm.StartMerge(std::move(op));
  bool ok = world.RunUntil([&]() { return cm.done() || cm.failed(); }, timeout);
  if (!ok || cm.failed()) {
    return Timeout(std::string("TC merge stuck in phase ") +
                   CmPhaseName(cm.phase()));
  }
  return cm.timings();
}

}  // namespace recraft::tc
