// TC baseline: the TiKV/CockroachDB-style split and merge emulation of
// §VII-B/C, driven by an external Cluster Manager (CM) actor that issues the
// same sequence of steps as the paper's etcd-admin-tool script:
//
//   split:  remove the splitting nodes via membership changes -> snapshot
//           the moving range from the source -> install snapshot + config
//           on the removed nodes and restart them as a new cluster ->
//           shrink the source's range.
//   merge:  snapshot each absorbed cluster -> inject its data into the
//           survivor (consensus bulk-load) -> terminate the absorbed
//           cluster's nodes -> re-add them to the survivor one at a time
//           (each catches up via a leader snapshot).
//
// The CM is a single actor — the single point of failure the paper calls
// out (Table I). An optional standby list emulates a replicated CM: a
// standby adopts and idempotently re-executes the operation when the
// primary dies.
#pragma once

#include <optional>
#include <set>

#include "harness/world.h"

namespace recraft::tc {

struct TcOptions {
  Duration tick_interval = 10 * kMillisecond;
  Duration retry_interval = 100 * kMillisecond;
  /// Emulated time to restart a wiped node as a member of the new cluster.
  Duration restart_delay = 200 * kMillisecond;
  /// Mixed into bootstrap identities and idempotency tokens. Callers that
  /// run many operations (the shard-plane rebalancer) pass a fresh salt per
  /// operation so a later op's BootstrapReq can never alias an earlier one.
  uint64_t op_salt = 0;
};

struct SplitOp {
  std::vector<NodeId> source_members;           // current cluster
  std::vector<std::vector<NodeId>> groups;      // [0] stays with the source
  std::vector<KeyRange> ranges;                 // one per group
};

struct MergeOp {
  std::vector<std::vector<NodeId>> clusters;  // [0] survives
  std::vector<KeyRange> ranges;               // one per cluster
};

enum class CmPhase : uint8_t {
  kIdle = 0,
  // split
  kRemoving,
  kSnapshotting,
  kRestarting,
  kRangeChange,
  // merge
  kMergeSnapshot,
  kMergeInject,
  kMergeTerminate,
  kMergeRejoin,
  kDone,
  kFailed,
};

const char* CmPhaseName(CmPhase p);

/// Per-phase wall-clock (simulated) durations, the TC bars of Figs. 7b / 8b.
struct CmTimings {
  Duration remove = 0;
  Duration snapshot = 0;
  Duration restart = 0;
  Duration range_change = 0;
  Duration inject = 0;
  Duration terminate = 0;
  Duration rejoin = 0;
  Duration total = 0;
};

class ClusterManager {
 public:
  ClusterManager(harness::World& world, NodeId id, TcOptions opts = {});
  ~ClusterManager();

  /// Begin driving the operation. A standby (see MonitorAsStandby) stores
  /// the op and waits instead.
  void StartSplit(SplitOp op);
  void StartMerge(MergeOp op);

  /// Configure this CM as a hot standby of `primary` for whatever operation
  /// it is given via StartSplit/StartMerge: it re-executes the operation
  /// from scratch (every step is idempotent) when the primary dies.
  void MonitorAsStandby(NodeId primary);

  CmPhase phase() const { return phase_; }
  bool done() const { return phase_ == CmPhase::kDone; }
  bool failed() const { return phase_ == CmPhase::kFailed; }
  const CmTimings& timings() const { return timings_; }
  NodeId id() const { return id_; }

 private:
  void Tick();
  void RearmTick();
  void OnMessage(NodeId from, const raft::Message& m);
  void BeginPhase(CmPhase next);
  void RecordPhaseDuration();
  void Advance();       // issue the next request for the current phase
  void SendCurrent();   // (re)transmit the outstanding request
  NodeId GuessLeader(const std::vector<NodeId>& members) const;

  // Split step helpers.
  void SplitAdvance();
  void MergeAdvance();

  harness::World& world_;
  const NodeId id_;
  TcOptions opts_;

  CmPhase phase_ = CmPhase::kIdle;
  std::optional<SplitOp> split_;
  std::optional<MergeOp> merge_;
  CmTimings timings_;
  TimePoint op_start_ = 0;
  TimePoint phase_start_ = 0;

  // Progress within the current phase.
  size_t group_cursor_ = 1;   // split: group being carved out; merge: cluster
  size_t node_cursor_ = 0;    // node within the group
  std::map<size_t, sm::SnapshotPtr> snaps_;  // per group/cluster
  std::set<NodeId> pending_acks_;
  std::set<uint64_t> step_reqs_;  // outstanding request ids for this step
  uint64_t op_seq_ = 1;
  TimePoint restart_ready_at_ = 0;
  Duration retry_countdown_ = 0;
  NodeId leader_hint_ = kNoNode;

  // Standby emulation.
  NodeId primary_ = kNoNode;
  bool standby_armed_ = false;
  sim::EventId tick_event_ = sim::kNoEvent;
};

/// Convenience synchronous drivers used by tests and benches: run the world
/// until the CM finishes (or times out).
Result<CmTimings> RunTcSplit(harness::World& world, NodeId cm_id, SplitOp op,
                             TcOptions opts = {},
                             Duration timeout = 120 * kSecond);
Result<CmTimings> RunTcMerge(harness::World& world, NodeId cm_id, MergeOp op,
                             TcOptions opts = {},
                             Duration timeout = 120 * kSecond);

}  // namespace recraft::tc
