#include "common/codec.h"

namespace recraft {

Result<uint8_t> Decoder::GetU8() {
  if (auto s = Need(1); !s.ok()) return s;
  return data_[pos_++];
}

Result<uint32_t> Decoder::GetU32() {
  if (auto s = Need(4); !s.ok()) return s;
  uint32_t v;
  std::memcpy(&v, data_ + pos_, 4);
  pos_ += 4;
  return v;
}

Result<uint64_t> Decoder::GetU64() {
  if (auto s = Need(8); !s.ok()) return s;
  uint64_t v;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  return v;
}

Result<bool> Decoder::GetBool() {
  auto v = GetU8();
  if (!v.ok()) return v.status();
  return *v != 0;
}

Result<std::string> Decoder::GetString() {
  auto n = GetU32();
  if (!n.ok()) return n.status();
  if (auto s = Need(*n); !s.ok()) return s;
  std::string out(reinterpret_cast<const char*>(data_ + pos_), *n);
  pos_ += *n;
  return out;
}

Result<std::vector<uint8_t>> Decoder::GetBytes() {
  auto n = GetU32();
  if (!n.ok()) return n.status();
  if (auto s = Need(*n); !s.ok()) return s;
  std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + *n);
  pos_ += *n;
  return out;
}

const char* CodeName(Code c) {
  switch (c) {
    case Code::kOk: return "OK";
    case Code::kNotLeader: return "NOT_LEADER";
    case Code::kNotFound: return "NOT_FOUND";
    case Code::kRejected: return "REJECTED";
    case Code::kBusy: return "BUSY";
    case Code::kTimeout: return "TIMEOUT";
    case Code::kUnavailable: return "UNAVAILABLE";
    case Code::kConflict: return "CONFLICT";
    case Code::kOutOfRange: return "OUT_OF_RANGE";
    case Code::kInternal: return "INTERNAL";
    case Code::kWrongShard: return "WRONG_SHARD";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string s = CodeName(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace recraft
