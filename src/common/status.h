// Lightweight Status / Result types. The protocol code is exception-free on
// its hot paths; errors flow through these values.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace recraft {

enum class Code : uint8_t {
  kOk = 0,
  kNotLeader,        // request must go to the cluster leader
  kNotFound,         // key or object absent
  kRejected,         // precondition (P1/P2'/P3) or validation failure
  kBusy,             // an incompatible operation is in flight
  kTimeout,          // operation did not finish within its deadline
  kUnavailable,      // no quorum reachable / node down
  kConflict,         // lost to a concurrent update (e.g. stale term)
  kOutOfRange,       // key outside this cluster's range
  kInternal,         // invariant violation: indicates a bug
  kWrongShard,       // request routed to a group that does not serve the key;
                     // the reply carries the group's serving range and epoch
                     // so the router can detect a stale shard map
};

const char* CodeName(Code c);

class [[nodiscard]] Status {
 public:
  Status() : code_(Code::kOk) {}
  explicit Status(Code code, std::string msg = {})
      : code_(code), msg_(std::move(msg)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "REJECTED: pending reconfiguration" — for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& o) const { return code_ == o.code_; }

 private:
  Code code_;
  std::string msg_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status NotLeader(std::string m = {}) {
  return Status(Code::kNotLeader, std::move(m));
}
inline Status NotFound(std::string m = {}) {
  return Status(Code::kNotFound, std::move(m));
}
inline Status Rejected(std::string m = {}) {
  return Status(Code::kRejected, std::move(m));
}
inline Status Busy(std::string m = {}) { return Status(Code::kBusy, std::move(m)); }
inline Status Timeout(std::string m = {}) {
  return Status(Code::kTimeout, std::move(m));
}
inline Status Unavailable(std::string m = {}) {
  return Status(Code::kUnavailable, std::move(m));
}
inline Status Conflict(std::string m = {}) {
  return Status(Code::kConflict, std::move(m));
}
inline Status OutOfRange(std::string m = {}) {
  return Status(Code::kOutOfRange, std::move(m));
}
inline Status Internal(std::string m = {}) {
  return Status(Code::kInternal, std::move(m));
}
inline Status WrongShard(std::string m = {}) {
  return Status(Code::kWrongShard, std::move(m));
}

/// Result<T>: either a value or a non-ok Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}            // NOLINT implicit
  Result(Status status) : v_(std::move(status)) {      // NOLINT implicit
    assert(!std::get<Status>(v_).ok() && "ok Status carries no value");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }
  T& value() {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(v_);
  }
  T value_or(T def) const { return ok() ? std::get<T>(v_) : std::move(def); }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace recraft
