// Measurement primitives for the benchmark harness: latency histograms,
// windowed throughput counters and simple summary statistics.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace recraft {

/// Collects duration samples; percentiles computed on demand.
class LatencyRecorder {
 public:
  void Record(Duration d) { samples_.push_back(d); }
  size_t count() const { return samples_.size(); }
  void Clear() { samples_.clear(); }

  double MeanUs() const;
  Duration Percentile(double p) const;  // p in [0,100]
  Duration Min() const;
  Duration Max() const;

  const std::vector<Duration>& samples() const { return samples_; }
  void Merge(const LatencyRecorder& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

 private:
  mutable std::vector<Duration> samples_;
};

/// Counts events into fixed-width time windows so benches can print
/// per-second throughput series (Fig. 7a / 8a). Windows are a dense array
/// indexed by t / window — recording is an increment, not a map probe.
class ThroughputSeries {
 public:
  explicit ThroughputSeries(Duration window = kSecond) : window_(window) {}

  void Record(TimePoint t, uint64_t n = 1) {
    uint64_t w = t / window_;
    if (w >= buckets_.size()) buckets_.resize(w + 1, 0);
    buckets_[w] += n;
  }

  /// Requests per second in window `i` (0-based).
  double Rate(uint64_t i) const;
  uint64_t NumWindows() const { return buckets_.size(); }
  Duration window() const { return window_; }

 private:
  Duration window_;
  std::vector<uint64_t> buckets_;
};

/// Named monotonically increasing counters (messages sent, elections, ...).
/// Hot paths intern a name once (usually at construction) and Add() through
/// the returned id — a plain array increment. The string API stays for cold
/// paths, tests and reporting.
class CounterSet {
 public:
  using Id = uint32_t;

  /// Intern `name`, returning a stable O(1) handle (idempotent).
  Id Intern(std::string_view name);

  void Add(Id id, uint64_t n = 1) { values_[id] += n; }
  uint64_t Get(Id id) const { return values_[id]; }

  void Add(std::string_view name, uint64_t n = 1) { Add(Intern(name), n); }
  uint64_t Get(std::string_view name) const;

  /// Name-sorted snapshot for reporting. Interned-but-untouched counters
  /// report 0, like any other never-incremented counter.
  std::map<std::string, uint64_t> all() const;

 private:
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, Id, StringHash, std::equal_to<>> index_;
  std::vector<std::string> names_;
  std::vector<uint64_t> values_;
};

}  // namespace recraft
