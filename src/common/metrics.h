// Measurement primitives for the benchmark harness: latency histograms,
// windowed throughput counters and simple summary statistics.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace recraft {

/// Collects duration samples; percentiles computed on demand.
class LatencyRecorder {
 public:
  void Record(Duration d) { samples_.push_back(d); }
  size_t count() const { return samples_.size(); }
  void Clear() { samples_.clear(); }

  double MeanUs() const;
  Duration Percentile(double p) const;  // p in [0,100]
  Duration Min() const;
  Duration Max() const;

  const std::vector<Duration>& samples() const { return samples_; }
  void Merge(const LatencyRecorder& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

 private:
  mutable std::vector<Duration> samples_;
};

/// Counts events into fixed-width time windows so benches can print
/// per-second throughput series (Fig. 7a / 8a). Windows are a dense array
/// indexed by t / window — recording is an increment, not a map probe.
class ThroughputSeries {
 public:
  explicit ThroughputSeries(Duration window = kSecond) : window_(window) {}

  void Record(TimePoint t, uint64_t n = 1) {
    uint64_t w = t / window_;
    if (w >= buckets_.size()) buckets_.resize(w + 1, 0);
    buckets_[w] += n;
  }

  /// Requests per second in window `i` (0-based).
  double Rate(uint64_t i) const;
  uint64_t NumWindows() const { return buckets_.size(); }
  Duration window() const { return window_; }

 private:
  Duration window_;
  std::vector<uint64_t> buckets_;
};

/// Named monotonically increasing counters (messages sent, elections, ...).
/// Hot paths intern a name once (usually at construction) and Add() through
/// the returned id — a plain array increment. The string API stays for cold
/// paths, tests and reporting.
class CounterSet {
 public:
  using Id = uint32_t;

  /// Intern `name`, returning a stable O(1) handle (idempotent).
  Id Intern(std::string_view name);

  void Add(Id id, uint64_t n = 1) { values_[id] += n; }
  uint64_t Get(Id id) const { return values_[id]; }

  void Add(std::string_view name, uint64_t n = 1) { Add(Intern(name), n); }
  uint64_t Get(std::string_view name) const;

  /// Name-sorted snapshot for reporting. Interned-but-untouched counters
  /// report 0, like any other never-incremented counter.
  std::map<std::string, uint64_t> all() const;

 private:
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, Id, StringHash, std::equal_to<>> index_;
  std::vector<std::string> names_;
  std::vector<uint64_t> values_;
};

/// HDR-style log-bucketed histogram: values land in 2^exp buckets, each
/// subdivided into kSubBuckets linear sub-buckets, giving a bounded
/// relative error (~1/kSubBuckets) with O(1) record and a few hundred
/// bytes of fixed state — unlike LatencyRecorder there is no per-sample
/// allocation, so it can sit on always-on paths.
class Histogram {
 public:
  static constexpr uint32_t kSubBits = 4;  // 16 sub-buckets per octave
  static constexpr uint32_t kSubBuckets = 1u << kSubBits;
  static constexpr uint32_t kOctaves = 64 - kSubBits;
  static constexpr uint32_t kBuckets = kOctaves * kSubBuckets;

  void Record(uint64_t v, uint64_t n = 1);

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ ? min_ : 0; }
  uint64_t max() const { return max_; }
  uint64_t sum() const { return sum_; }
  double Mean() const { return count_ ? double(sum_) / double(count_) : 0.0; }

  /// Value at percentile p in [0,100]; the representative value of the
  /// bucket holding the p-th sample (upper bucket bound, clamped to max()).
  uint64_t Percentile(double p) const;

  void Merge(const Histogram& other);
  void Clear() { *this = Histogram(); }

  const std::vector<uint64_t>& buckets() const { return buckets_; }

 private:
  static uint32_t BucketOf(uint64_t v);
  static uint64_t BucketUpperBound(uint32_t b);

  std::vector<uint64_t> buckets_ = std::vector<uint64_t>(kBuckets, 0);
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = std::numeric_limits<uint64_t>::max();
  uint64_t max_ = 0;
};

/// A last-write-wins instantaneous value (queue depth, shard key count)
/// that also tracks the high-water mark.
class Gauge {
 public:
  void Set(int64_t v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void Add(int64_t d) { Set(value_ + d); }
  int64_t value() const { return value_; }
  int64_t max() const { return max_; }

 private:
  int64_t value_ = 0;
  int64_t max_ = std::numeric_limits<int64_t>::min();
};

/// Named registry of histograms, gauges and counters — the reporting
/// surface for per-node and per-shard metrics. Lookup interns the name on
/// first use and returns a stable reference; hot paths cache the
/// reference. Snapshots are name-sorted (deterministic).
class MetricRegistry {
 public:
  Histogram& histogram(std::string_view name);
  Gauge& gauge(std::string_view name);
  CounterSet& counters() { return counters_; }
  const CounterSet& counters() const { return counters_; }

  struct HistogramStats {
    uint64_t count = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    double mean = 0.0;
    uint64_t p50 = 0;
    uint64_t p99 = 0;
    uint64_t p999 = 0;
  };

  struct Snapshot {
    std::map<std::string, HistogramStats> histograms;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, uint64_t> counters;
  };

  Snapshot Snap() const;

 private:
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  CounterSet counters_;
};

}  // namespace recraft
