// Measurement primitives for the benchmark harness: latency histograms,
// windowed throughput counters and simple summary statistics.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace recraft {

/// Collects duration samples; percentiles computed on demand.
class LatencyRecorder {
 public:
  void Record(Duration d) { samples_.push_back(d); }
  size_t count() const { return samples_.size(); }
  void Clear() { samples_.clear(); }

  double MeanUs() const;
  Duration Percentile(double p) const;  // p in [0,100]
  Duration Min() const;
  Duration Max() const;

  const std::vector<Duration>& samples() const { return samples_; }
  void Merge(const LatencyRecorder& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

 private:
  mutable std::vector<Duration> samples_;
};

/// Counts events into fixed-width time windows so benches can print
/// per-second throughput series (Fig. 7a / 8a).
class ThroughputSeries {
 public:
  explicit ThroughputSeries(Duration window = kSecond) : window_(window) {}

  void Record(TimePoint t, uint64_t n = 1) { buckets_[t / window_] += n; }

  /// Requests per second in window `i` (0-based).
  double Rate(uint64_t i) const;
  uint64_t NumWindows() const;
  Duration window() const { return window_; }

 private:
  Duration window_;
  std::map<uint64_t, uint64_t> buckets_;
};

/// Named monotonically increasing counters (messages sent, elections, ...).
class CounterSet {
 public:
  void Add(const std::string& name, uint64_t n = 1) { counters_[name] += n; }
  uint64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, uint64_t>& all() const { return counters_; }

 private:
  std::map<std::string, uint64_t> counters_;
};

}  // namespace recraft
