// Simple binary encoder/decoder used to serialize snapshots and to account
// for on-wire sizes. Little-endian, length-prefixed strings, varint-free for
// simplicity (fixed-width integers).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace recraft {

class Encoder {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }
  /// Length-prefixed byte blob (nested encodings, e.g. kv snapshots).
  void PutBytes(const std::vector<uint8_t>& b) {
    PutU32(static_cast<uint32_t>(b.size()));
    PutRaw(b.data(), b.size());
  }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutRaw(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<uint8_t> buf_;
};

class Decoder {
 public:
  /// Views, not copies: the buffer must outlive the decoder.
  explicit Decoder(const std::vector<uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Decoder(const std::string& buf)
      : data_(reinterpret_cast<const uint8_t*>(buf.data())),
        size_(buf.size()) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<bool> GetBool();
  Result<std::string> GetString();
  Result<std::vector<uint8_t>> GetBytes();

  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  Status Need(size_t n) {
    if (pos_ + n > size_) return Internal("codec: truncated buffer");
    return OkStatus();
  }
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace recraft
