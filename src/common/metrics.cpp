#include "common/metrics.h"

namespace recraft {

double LatencyRecorder::MeanUs() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (auto s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

Duration LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) return 0;
  std::sort(samples_.begin(), samples_.end());
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t i = static_cast<size_t>(rank);
  return samples_[std::min(i, samples_.size() - 1)];
}

Duration LatencyRecorder::Min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

Duration LatencyRecorder::Max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double ThroughputSeries::Rate(uint64_t i) const {
  auto it = buckets_.find(i);
  if (it == buckets_.end()) return 0.0;
  return static_cast<double>(it->second) /
         (static_cast<double>(window_) / static_cast<double>(kSecond));
}

uint64_t ThroughputSeries::NumWindows() const {
  if (buckets_.empty()) return 0;
  return buckets_.rbegin()->first + 1;
}

}  // namespace recraft
