#include "common/metrics.h"

namespace recraft {

double LatencyRecorder::MeanUs() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (auto s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

Duration LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) return 0;
  std::sort(samples_.begin(), samples_.end());
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t i = static_cast<size_t>(rank);
  return samples_[std::min(i, samples_.size() - 1)];
}

Duration LatencyRecorder::Min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

Duration LatencyRecorder::Max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double ThroughputSeries::Rate(uint64_t i) const {
  if (i >= buckets_.size()) return 0.0;
  return static_cast<double>(buckets_[i]) /
         (static_cast<double>(window_) / static_cast<double>(kSecond));
}

CounterSet::Id CounterSet::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  Id id = static_cast<Id>(values_.size());
  names_.emplace_back(name);
  values_.push_back(0);
  index_.emplace(names_.back(), id);
  return id;
}

uint64_t CounterSet::Get(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? 0 : values_[it->second];
}

std::map<std::string, uint64_t> CounterSet::all() const {
  std::map<std::string, uint64_t> out;
  for (size_t i = 0; i < names_.size(); ++i) out[names_[i]] = values_[i];
  return out;
}

uint32_t Histogram::BucketOf(uint64_t v) {
  if (v < kSubBuckets) return static_cast<uint32_t>(v);
  // Octave o >= 1 covers [2^(kSubBits+o-1), 2^(kSubBits+o)); within it the
  // kSubBuckets linear sub-buckets each span 2^(o-1) values.
  const uint32_t msb = 63u - static_cast<uint32_t>(__builtin_clzll(v));
  const uint32_t octave = msb - kSubBits + 1;
  const uint32_t sub =
      static_cast<uint32_t>(v >> (octave - 1)) - kSubBuckets;
  uint32_t b = octave * kSubBuckets + sub;
  return b < kBuckets ? b : kBuckets - 1;
}

uint64_t Histogram::BucketUpperBound(uint32_t b) {
  if (b < kSubBuckets) return b;
  const uint32_t octave = b / kSubBuckets;
  const uint32_t sub = b % kSubBuckets;
  const uint64_t lower = static_cast<uint64_t>(kSubBuckets + sub)
                         << (octave - 1);
  return lower + ((1ULL << (octave - 1)) - 1);
}

void Histogram::Record(uint64_t v, uint64_t n) {
  buckets_[BucketOf(v)] += n;
  count_ += n;
  sum_ += v * n;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  const uint64_t rank =
      static_cast<uint64_t>(clamped / 100.0 * double(count_ - 1));
  uint64_t seen = 0;
  for (uint32_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > rank) {
      return std::max(min_, std::min(BucketUpperBound(b), max_));
    }
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  for (uint32_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram()).first;
  }
  return it->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge()).first;
  }
  return it->second;
}

MetricRegistry::Snapshot MetricRegistry::Snap() const {
  Snapshot s;
  for (const auto& [name, h] : histograms_) {
    HistogramStats st;
    st.count = h.count();
    st.min = h.min();
    st.max = h.max();
    st.mean = h.Mean();
    st.p50 = h.Percentile(50.0);
    st.p99 = h.Percentile(99.0);
    st.p999 = h.Percentile(99.9);
    s.histograms.emplace(name, st);
  }
  for (const auto& [name, g] : gauges_) s.gauges.emplace(name, g.value());
  s.counters = counters_.all();
  return s;
}

}  // namespace recraft
