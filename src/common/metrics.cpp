#include "common/metrics.h"

namespace recraft {

double LatencyRecorder::MeanUs() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (auto s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

Duration LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) return 0;
  std::sort(samples_.begin(), samples_.end());
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t i = static_cast<size_t>(rank);
  return samples_[std::min(i, samples_.size() - 1)];
}

Duration LatencyRecorder::Min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

Duration LatencyRecorder::Max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double ThroughputSeries::Rate(uint64_t i) const {
  if (i >= buckets_.size()) return 0.0;
  return static_cast<double>(buckets_[i]) /
         (static_cast<double>(window_) / static_cast<double>(kSecond));
}

CounterSet::Id CounterSet::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  Id id = static_cast<Id>(values_.size());
  names_.emplace_back(name);
  values_.push_back(0);
  index_.emplace(names_.back(), id);
  return id;
}

uint64_t CounterSet::Get(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? 0 : values_[it->second];
}

std::map<std::string, uint64_t> CounterSet::all() const {
  std::map<std::string, uint64_t> out;
  for (size_t i = 0; i < names_.size(); ++i) out[names_[i]] = values_[i];
  return out;
}

}  // namespace recraft
