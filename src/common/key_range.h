// Key ranges: half-open lexicographic intervals [lo, hi) over string keys.
// An empty hi represents +infinity. Clusters own one contiguous range each;
// splits partition a range at chosen keys and merges concatenate adjacent
// ranges, as in the paper's etcd/TiKV setting.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace recraft {

class KeyRange {
 public:
  /// Full key space [ "", +inf ).
  KeyRange() = default;
  KeyRange(std::string lo, std::string hi);

  static KeyRange Full() { return KeyRange(); }
  static KeyRange Empty();

  const std::string& lo() const { return lo_; }
  const std::string& hi() const { return hi_; }
  bool hi_is_inf() const { return hi_inf_; }

  bool empty() const;
  bool Contains(const std::string& key) const;
  /// Three-way position of `key` relative to this range: negative when the
  /// key sorts below lo, 0 when the range contains it, positive when it is at
  /// or above hi. The shard map's binary-search lookup builds on this.
  int CompareKey(const std::string& key) const;
  bool ContainsRange(const KeyRange& other) const;
  bool Overlaps(const KeyRange& other) const;
  /// True when `this.hi == other.lo` (they can merge into one interval).
  bool AdjacentBefore(const KeyRange& other) const;

  /// Split this range at `keys` (strictly increasing, strictly inside the
  /// range). Returns keys.size()+1 subranges covering this range exactly.
  Result<std::vector<KeyRange>> SplitAt(const std::vector<std::string>& keys) const;

  /// Concatenation of adjacent ranges; fails if not adjacent/ordered.
  static Result<KeyRange> MergeAdjacent(const std::vector<KeyRange>& parts);

  bool operator==(const KeyRange& o) const;
  std::string ToString() const;

 private:
  std::string lo_;
  std::string hi_;
  bool hi_inf_ = true;
};

}  // namespace recraft
