#include "common/key_range.h"

#include <algorithm>

namespace recraft {

KeyRange::KeyRange(std::string lo, std::string hi)
    : lo_(std::move(lo)), hi_(std::move(hi)), hi_inf_(hi_.empty()) {}

KeyRange KeyRange::Empty() {
  KeyRange r;
  r.lo_ = "\x01";
  r.hi_ = "\x01";
  r.hi_inf_ = false;
  return r;
}

bool KeyRange::empty() const { return !hi_inf_ && lo_ >= hi_; }

bool KeyRange::Contains(const std::string& key) const {
  if (key < lo_) return false;
  return hi_inf_ || key < hi_;
}

int KeyRange::CompareKey(const std::string& key) const {
  if (key < lo_) return -1;
  if (!hi_inf_ && key >= hi_) return 1;
  return 0;
}

bool KeyRange::ContainsRange(const KeyRange& other) const {
  if (other.empty()) return true;
  if (other.lo_ < lo_) return false;
  if (hi_inf_) return true;
  if (other.hi_inf_) return false;
  return other.hi_ <= hi_;
}

bool KeyRange::Overlaps(const KeyRange& other) const {
  if (empty() || other.empty()) return false;
  bool this_below = !hi_inf_ && hi_ <= other.lo_;
  bool other_below = !other.hi_inf_ && other.hi_ <= lo_;
  return !this_below && !other_below;
}

bool KeyRange::AdjacentBefore(const KeyRange& other) const {
  return !hi_inf_ && hi_ == other.lo_;
}

Result<std::vector<KeyRange>> KeyRange::SplitAt(
    const std::vector<std::string>& keys) const {
  if (keys.empty()) return Rejected("split needs at least one split key");
  std::string prev = lo_;
  for (const auto& k : keys) {
    if (k <= prev) return Rejected("split keys must be increasing and > lo");
    if (!hi_inf_ && k >= hi_) return Rejected("split key outside range");
    prev = k;
  }
  std::vector<KeyRange> out;
  out.reserve(keys.size() + 1);
  std::string lo = lo_;
  for (const auto& k : keys) {
    out.emplace_back(lo, k);
    lo = k;
  }
  out.emplace_back(lo, hi_inf_ ? std::string() : hi_);
  return out;
}

Result<KeyRange> KeyRange::MergeAdjacent(const std::vector<KeyRange>& parts) {
  if (parts.empty()) return Rejected("nothing to merge");
  std::vector<KeyRange> sorted = parts;
  std::sort(sorted.begin(), sorted.end(),
            [](const KeyRange& a, const KeyRange& b) { return a.lo() < b.lo(); });
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    if (!sorted[i].AdjacentBefore(sorted[i + 1])) {
      return Rejected("ranges not adjacent: " + sorted[i].ToString() + " / " +
                      sorted[i + 1].ToString());
    }
  }
  const KeyRange& last = sorted.back();
  return KeyRange(sorted.front().lo(),
                  last.hi_is_inf() ? std::string() : last.hi());
}

bool KeyRange::operator==(const KeyRange& o) const {
  return lo_ == o.lo_ && hi_inf_ == o.hi_inf_ && (hi_inf_ || hi_ == o.hi_);
}

std::string KeyRange::ToString() const {
  return "[" + (lo_.empty() ? "-inf" : lo_) + ", " + (hi_inf_ ? "+inf" : hi_) +
         ")";
}

}  // namespace recraft
