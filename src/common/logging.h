// Minimal leveled logger aware of simulated time. Logging is off by default
// in tests/benches and can be enabled per-run for debugging.
#pragma once

#include <cstdio>
#include <string>

#include "common/types.h"

namespace recraft {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& Global();

  void set_level(LogLevel lvl) { level_ = lvl; }
  LogLevel level() const { return level_; }

  /// The world installs a clock callback so log lines carry simulated time.
  using NowFn = TimePoint (*)(void*);
  void set_clock(NowFn fn, void* ctx) {
    now_fn_ = fn;
    now_ctx_ = ctx;
  }

  bool Enabled(LogLevel lvl) const { return lvl >= level_; }

  void Log(LogLevel lvl, const char* tag, const std::string& msg);

 private:
  LogLevel level_ = LogLevel::kOff;
  NowFn now_fn_ = nullptr;
  void* now_ctx_ = nullptr;
};

std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

#define RLOG(lvl, tag, ...)                                              \
  do {                                                                   \
    if (::recraft::Logger::Global().Enabled(lvl)) {                      \
      ::recraft::Logger::Global().Log(lvl, tag,                          \
                                      ::recraft::StrFormat(__VA_ARGS__)); \
    }                                                                    \
  } while (0)

#define RLOG_TRACE(tag, ...) RLOG(::recraft::LogLevel::kTrace, tag, __VA_ARGS__)
#define RLOG_DEBUG(tag, ...) RLOG(::recraft::LogLevel::kDebug, tag, __VA_ARGS__)
#define RLOG_INFO(tag, ...) RLOG(::recraft::LogLevel::kInfo, tag, __VA_ARGS__)
#define RLOG_WARN(tag, ...) RLOG(::recraft::LogLevel::kWarn, tag, __VA_ARGS__)
#define RLOG_ERROR(tag, ...) RLOG(::recraft::LogLevel::kError, tag, __VA_ARGS__)

}  // namespace recraft
