#include "common/logging.h"

#include <cstdarg>
#include <cstdio>

namespace recraft {

std::string FormatTime(TimePoint t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llus",
                static_cast<unsigned long long>(t / kSecond),
                static_cast<unsigned long long>((t % kSecond) / kMillisecond));
  return buf;
}

Logger& Logger::Global() {
  static Logger logger;
  return logger;
}

void Logger::Log(LogLevel lvl, const char* tag, const std::string& msg) {
  static const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR"};
  TimePoint now = now_fn_ ? now_fn_(now_ctx_) : 0;
  std::fprintf(stderr, "[%s %-5s %s] %s\n", FormatTime(now).c_str(),
               kNames[static_cast<int>(lvl)], tag, msg.c_str());
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace recraft
