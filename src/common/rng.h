// Deterministic pseudo-random number generation. Every component that needs
// randomness owns an Rng forked from the world's master seed so that a run is
// a pure function of (seed, configuration).
#pragma once

#include <cstdint>

namespace recraft {

/// splitmix64 — used to expand seeds and as a cheap mixing function.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of two 64-bit values; used to derive cluster uids and
/// per-component seeds.
inline uint64_t Mix64(uint64_t a, uint64_t b) {
  uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return SplitMix64(s);
}

/// xoshiro256** — fast, high-quality, deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    for (auto& w : s_) w = SplitMix64(seed);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t Uniform(uint64_t lo, uint64_t hi) {
    return lo + Next() % (hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / (1ULL << 53)); }

  /// Bernoulli trial.
  bool Chance(double p) { return NextDouble() < p; }

  /// Fork a new independent generator (for a sub-component).
  Rng Fork() { return Rng(Next()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace recraft
