// Fundamental identifier and time types shared by every ReCraft module.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace recraft {

/// Identifies a node (process) in the simulated world. Node ids are global:
/// a node keeps its id across splits, merges and membership changes.
using NodeId = uint32_t;

/// Identifies an actor that is not a consensus node (clients, cluster
/// managers, the naming service). Shares the NodeId space so the simulated
/// network can route to anything.
using ActorId = NodeId;

/// Log position, 1-based; 0 means "no entry".
using Index = uint64_t;

/// Simulated time in microseconds since the start of the run.
using TimePoint = uint64_t;

/// Simulated duration in microseconds.
using Duration = uint64_t;

/// A stable identity for a logical cluster. The genesis cluster has uid 0;
/// split children and merged clusters derive fresh uids (see cluster_uid()).
using ClusterUid = uint64_t;

/// Identifies a merge transaction (cluster-level 2PC).
using TxId = uint64_t;

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();
inline constexpr Index kNoIndex = 0;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1000 * 1000;

/// Render a simulated time as "12.345s" for logs and bench output.
std::string FormatTime(TimePoint t);

}  // namespace recraft
