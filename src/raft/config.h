// Cluster configurations, reconfiguration plans, and quorum specifications.
//
// A node's *effective configuration* (ConfigState) is derived from the most
// recent configuration entry in its log, applied wait-free on append as in
// Raft. During ReCraft's split the election quorum and the commit quorum
// differ (§III-B); QuorumSpec captures every quorum shape used by the
// protocol: majority, fixed-size (the membership change's C_new-q), joint
// over subclusters (split), and Raft's old+new joint consensus (baseline).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/key_range.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace recraft::raft {

inline size_t MajorityOf(size_t n) { return n / 2 + 1; }

/// Fixed quorum of the intermediate configuration C_new-q (§IV-A).
/// Adding n nodes:    Q = N_old + n - Q_old + 1.
/// Removing r nodes:  Q = N_old     - Q_old + 1 (requires r < Q_old).
/// Both are the smallest quorum sizes over the *new* member set whose every
/// quorum overlaps every majority quorum of C_old.
inline size_t AddResizeQuorum(size_t n_old, size_t n_added) {
  return n_old + n_added - MajorityOf(n_old) + 1;
}
inline size_t RemoveResizeQuorum(size_t n_old) {
  return n_old - MajorityOf(n_old) + 1;
}

/// Vote counts for Raft joint consensus commits under C_old,new (§IV-B):
/// best case (shared nodes' votes arrive first) and worst case.
inline size_t JointBestVotes(size_t n_old, size_t n_new) {
  return std::max(MajorityOf(n_old), MajorityOf(n_new));
}
inline size_t JointWorstVotes(size_t n_old, size_t n_new) {
  size_t diff = n_old > n_new ? n_old - n_new : n_new - n_old;
  return diff + std::min(MajorityOf(n_old), MajorityOf(n_new));
}

/// One subcluster in a split or merge plan: its members and key range.
struct SubCluster {
  std::vector<NodeId> members;  // kept sorted
  KeyRange range;
  ClusterUid uid = 0;  // identity the subcluster assumes when independent

  bool Contains(NodeId n) const {
    return std::binary_search(members.begin(), members.end(), n);
  }
  std::string ToString() const;
};

/// C_new of a split: how the parent divides into disjoint subclusters.
struct SplitPlan {
  std::vector<SubCluster> subs;

  /// Index of the subcluster containing `n`, or -1.
  int SubOf(NodeId n) const;
  std::string ToString() const;
};

/// The merge transaction intent (CTX / C_new of a merge).
struct MergePlan {
  TxId tx = 0;
  std::vector<SubCluster> sources;  // the merging clusters, coordinator first
  int coordinator = 0;              // index into sources
  uint32_t new_epoch = 0;           // E_max + 1; fixed at the commit phase
  ClusterUid new_uid = 0;
  KeyRange new_range;               // concatenation of source ranges
  /// Resize-at-merge: if non-empty, only these nodes resume in the merged
  /// cluster. Must contain every member of at least one source (§III-C.2).
  std::vector<NodeId> resume_members;

  int SourceOf(NodeId n) const;
  std::vector<NodeId> AllMembers() const;
  std::vector<NodeId> ResumeMembers() const;  // resume_members or union
  std::string ToString() const;
};

/// Single-cluster membership change request (§IV plus the two Raft
/// baselines).
enum class MemberChangeKind : uint8_t {
  kAddAndResize = 0,    // ReCraft: add n nodes, quorum -> Q_new-q
  kRemoveAndResize,     // ReCraft: remove r < Q_old nodes, quorum -> Q_new-q
  kResizeQuorum,        // ReCraft: reset quorum to majority
  kAddServer,           // Raft AR-RPC: add one node
  kRemoveServer,        // Raft AR-RPC: remove one node
  kJointEnter,          // Raft JC: C_old,new
  kJointLeave,          // Raft JC: C_new
};

const char* MemberChangeKindName(MemberChangeKind k);

struct MemberChange {
  MemberChangeKind kind = MemberChangeKind::kAddAndResize;
  std::vector<NodeId> nodes;  // added/removed; kJointEnter: full new members
  std::string ToString() const;
};

/// A quorum specification: (member-set, needed-count) groups combined with
/// AND (default) or OR. AND: every group needs `need` acks (joint
/// consensus). OR: any single group sufficing is enough — Definition 5's
/// *constituent consensus*, used to commit the split C_new entry with a
/// majority of any one subcluster.
class QuorumSpec {
 public:
  struct Group {
    std::vector<NodeId> members;  // sorted
    size_t need = 0;
  };

  static QuorumSpec Majority(std::vector<NodeId> members);
  static QuorumSpec Fixed(std::vector<NodeId> members, size_t need);
  /// Majority of each subcluster (ReCraft split joint mode, Definition 5's
  /// "joint consensus").
  static QuorumSpec JointSubs(const std::vector<SubCluster>& subs);
  /// Majority of any ONE subcluster (Definition 5's "constituent
  /// consensus").
  static QuorumSpec AnySub(const std::vector<SubCluster>& subs);
  /// Raft joint consensus: majority of old AND majority of new.
  static QuorumSpec JointOldNew(std::vector<NodeId> old_members,
                                std::vector<NodeId> new_members);

  bool Satisfied(const std::set<NodeId>& acks) const;
  bool Contains(NodeId n) const;

  /// Minimum number of distinct nodes that can satisfy this spec (votes
  /// needed in the best case) — used by the Fig. 5 analysis.
  size_t MinSatisfyingVotes() const;

  const std::vector<Group>& groups() const { return groups_; }
  std::string ToString() const;

 private:
  std::vector<Group> groups_;
  bool any_ = false;  // OR-combine groups (constituent consensus)
};

/// How far a node has progressed through a split (§III-B).
enum class ConfigMode : uint8_t {
  kStable = 0,
  kSplitJoint,    // C_joint appended: election quorum joint, commit C_old
  kSplitLeaving,  // split C_new appended: commit quorum C_sub for entries
                  // >= cnew_index, election still joint until C_new commits
};

/// The effective configuration a node derives from its log. Value type so
/// the config tracker can push/pop states as entries append/truncate.
struct ConfigState {
  ConfigMode mode = ConfigMode::kStable;
  std::vector<NodeId> members;  // current replication set (C_old in splits)
  /// 0 = use majority; otherwise the fixed quorum size of C_new-q.
  size_t fixed_quorum = 0;
  KeyRange range;
  ClusterUid uid = 0;

  // Split bookkeeping (modes kSplitJoint / kSplitLeaving).
  SplitPlan split;
  Index joint_index = 0;  // index of the C_joint entry
  Index cnew_index = 0;   // index of the split C_new entry

  // Raft joint consensus baseline (C_old,new committed, awaiting C_new).
  bool vanilla_joint = false;
  std::vector<NodeId> jc_old;

  // A merge transaction committed into this cluster's log and not yet
  // resolved (CTX' appended, outcome pending).
  std::optional<MergePlan> merge_tx;
  Index merge_tx_index = 0;
  bool merge_decision_ok = false;
  // The 2PC outcome entry, once appended (it applies only on commit).
  Index merge_outcome_index = 0;
  bool merge_outcome_commit = false;
  std::optional<MergePlan> merge_outcome_plan;

  bool IsMember(NodeId n) const {
    return std::find(members.begin(), members.end(), n) != members.end();
  }
  size_t CommitQuorumSize() const {
    return fixed_quorum > 0 ? fixed_quorum : MajorityOf(members.size());
  }
  /// True while any reconfiguration is unresolved (pending split phase,
  /// vanilla joint mode, or an open merge transaction). Part of P1.
  bool ReconfigPending() const {
    return mode != ConfigMode::kStable || vanilla_joint || merge_tx.has_value();
  }
  std::string ToString() const;
};

/// Election quorum for a node in configuration `c` (§III-B): joint over all
/// subclusters while a split is in progress, otherwise majority/fixed of the
/// member set.
QuorumSpec ElectionQuorum(const ConfigState& c);

/// Commit quorum for the entry at `index` under configuration `c`. During
/// kSplitLeaving, entries at or after the split C_new entry commit with the
/// node's own subcluster majority; earlier entries with C_old's majority.
/// `self` selects which subcluster counts as "own".
QuorumSpec CommitQuorum(const ConfigState& c, Index index, NodeId self);

/// Derive a deterministic subcluster uid: hash of (parent uid, epoch, i).
ClusterUid DeriveSplitUid(ClusterUid parent, uint32_t epoch, int sub_index);
ClusterUid DeriveMergeUid(TxId tx);

std::string NodesToString(const std::vector<NodeId>& nodes);

}  // namespace recraft::raft
