#include "raft/config.h"

#include <cassert>

namespace recraft::raft {

std::string NodesToString(const std::vector<NodeId>& nodes) {
  std::string s = "{";
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(nodes[i]);
  }
  return s + "}";
}

std::string SubCluster::ToString() const {
  return NodesToString(members) + range.ToString();
}

int SplitPlan::SubOf(NodeId n) const {
  for (size_t i = 0; i < subs.size(); ++i) {
    if (subs[i].Contains(n)) return static_cast<int>(i);
  }
  return -1;
}

std::string SplitPlan::ToString() const {
  std::string s = "split[";
  for (size_t i = 0; i < subs.size(); ++i) {
    if (i) s += " | ";
    s += subs[i].ToString();
  }
  return s + "]";
}

int MergePlan::SourceOf(NodeId n) const {
  for (size_t i = 0; i < sources.size(); ++i) {
    if (sources[i].Contains(n)) return static_cast<int>(i);
  }
  return -1;
}

std::vector<NodeId> MergePlan::AllMembers() const {
  std::vector<NodeId> all;
  for (const auto& s : sources) {
    all.insert(all.end(), s.members.begin(), s.members.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

std::vector<NodeId> MergePlan::ResumeMembers() const {
  return resume_members.empty() ? AllMembers() : resume_members;
}

std::string MergePlan::ToString() const {
  std::string s = "merge[tx=" + std::to_string(tx);
  for (const auto& src : sources) s += " " + src.ToString();
  return s + "]";
}

const char* MemberChangeKindName(MemberChangeKind k) {
  switch (k) {
    case MemberChangeKind::kAddAndResize: return "AddAndResize";
    case MemberChangeKind::kRemoveAndResize: return "RemoveAndResize";
    case MemberChangeKind::kResizeQuorum: return "ResizeQuorum";
    case MemberChangeKind::kAddServer: return "AddServer";
    case MemberChangeKind::kRemoveServer: return "RemoveServer";
    case MemberChangeKind::kJointEnter: return "JointEnter";
    case MemberChangeKind::kJointLeave: return "JointLeave";
  }
  return "?";
}

std::string MemberChange::ToString() const {
  return std::string(MemberChangeKindName(kind)) + NodesToString(nodes);
}

QuorumSpec QuorumSpec::Majority(std::vector<NodeId> members) {
  std::sort(members.begin(), members.end());
  QuorumSpec q;
  size_t need = MajorityOf(members.size());
  q.groups_.push_back(Group{std::move(members), need});
  return q;
}

QuorumSpec QuorumSpec::Fixed(std::vector<NodeId> members, size_t need) {
  std::sort(members.begin(), members.end());
  assert(need >= 1 && need <= members.size());
  QuorumSpec q;
  q.groups_.push_back(Group{std::move(members), need});
  return q;
}

QuorumSpec QuorumSpec::JointSubs(const std::vector<SubCluster>& subs) {
  QuorumSpec q;
  for (const auto& s : subs) {
    auto members = s.members;
    std::sort(members.begin(), members.end());
    size_t need = MajorityOf(members.size());
    q.groups_.push_back(Group{std::move(members), need});
  }
  return q;
}

QuorumSpec QuorumSpec::AnySub(const std::vector<SubCluster>& subs) {
  QuorumSpec q = JointSubs(subs);
  q.any_ = true;
  return q;
}

QuorumSpec QuorumSpec::JointOldNew(std::vector<NodeId> old_members,
                                   std::vector<NodeId> new_members) {
  std::sort(old_members.begin(), old_members.end());
  std::sort(new_members.begin(), new_members.end());
  QuorumSpec q;
  size_t old_need = MajorityOf(old_members.size());
  size_t new_need = MajorityOf(new_members.size());
  q.groups_.push_back(Group{std::move(old_members), old_need});
  q.groups_.push_back(Group{std::move(new_members), new_need});
  return q;
}

bool QuorumSpec::Satisfied(const std::set<NodeId>& acks) const {
  for (const auto& g : groups_) {
    size_t have = 0;
    for (NodeId n : g.members) {
      if (acks.count(n) > 0) ++have;
    }
    if (any_) {
      if (have >= g.need) return true;
    } else if (have < g.need) {
      return false;
    }
  }
  return !any_;
}

bool QuorumSpec::Contains(NodeId n) const {
  for (const auto& g : groups_) {
    if (std::binary_search(g.members.begin(), g.members.end(), n)) return true;
  }
  return false;
}

size_t QuorumSpec::MinSatisfyingVotes() const {
  if (any_) {
    size_t best = SIZE_MAX;
    for (const auto& g : groups_) best = std::min(best, g.need);
    return best == SIZE_MAX ? 0 : best;
  }
  // Greedy: nodes shared between groups count toward each group, so the
  // minimum vote set takes shared nodes first. With at most two groups
  // (our only multi-group shapes) the greedy bound is exact; for joint-subs
  // the groups are disjoint so the answer is the sum.
  std::set<NodeId> picked;
  for (const auto& g : groups_) {
    size_t have = 0;
    for (NodeId n : g.members) {
      if (picked.count(n) > 0) ++have;
    }
    // Prefer members that appear in later groups as the extra votes.
    for (NodeId n : g.members) {
      if (have >= g.need) break;
      if (picked.count(n) > 0) continue;
      bool shared = false;
      for (const auto& g2 : groups_) {
        if (&g2 == &g) continue;
        if (std::binary_search(g2.members.begin(), g2.members.end(), n)) {
          shared = true;
          break;
        }
      }
      if (shared) {
        picked.insert(n);
        ++have;
      }
    }
    for (NodeId n : g.members) {
      if (have >= g.need) break;
      if (picked.insert(n).second) ++have;
    }
  }
  return picked.size();
}

std::string QuorumSpec::ToString() const {
  std::string s = "quorum[";
  for (size_t i = 0; i < groups_.size(); ++i) {
    if (i) s += " & ";
    s += std::to_string(groups_[i].need) + " of " +
         NodesToString(groups_[i].members);
  }
  return s + "]";
}

std::string ConfigState::ToString() const {
  std::string s = "cfg{" + NodesToString(members);
  if (fixed_quorum > 0) s += " q=" + std::to_string(fixed_quorum);
  switch (mode) {
    case ConfigMode::kStable: break;
    case ConfigMode::kSplitJoint: s += " JOINT@" + std::to_string(joint_index); break;
    case ConfigMode::kSplitLeaving:
      s += " LEAVING@" + std::to_string(cnew_index);
      break;
  }
  if (vanilla_joint) s += " JC-joint";
  if (merge_tx) s += " " + merge_tx->ToString();
  s += " " + range.ToString() + "}";
  return s;
}

QuorumSpec ElectionQuorum(const ConfigState& c) {
  switch (c.mode) {
    case ConfigMode::kSplitJoint:
    case ConfigMode::kSplitLeaving:
      // §III-B: the election quorum stays joint over all subclusters until
      // the split C_new entry is confirmed committed (at which point the
      // node leaves these modes entirely).
      return QuorumSpec::JointSubs(c.split.subs);
    case ConfigMode::kStable:
      break;
  }
  if (c.vanilla_joint) {
    return QuorumSpec::JointOldNew(c.jc_old, c.members);
  }
  if (c.fixed_quorum > 0) {
    return QuorumSpec::Fixed(c.members, c.fixed_quorum);
  }
  return QuorumSpec::Majority(c.members);
}

QuorumSpec CommitQuorum(const ConfigState& c, Index index, NodeId self) {
  switch (c.mode) {
    case ConfigMode::kSplitJoint:
      // Joint mode commits with C_old's quorum: C_joint's quorums subsume
      // C_old's, so this is safe and faster (§III-B "Differences").
      return QuorumSpec::Majority(c.members);
    case ConfigMode::kSplitLeaving: {
      // Entries up to and including the split C_new entry commit by
      // *constituent consensus* — a majority of any one subcluster
      // (Definition 5 and the Leader Completeness proof's case 2). Every
      // future joint-mode leader's election quorum intersects every
      // subcluster's majority, so a C_new held by one subcluster's
      // majority can never be lost. This is also what gives phase 2 its
      // N(f_sub+1) fault tolerance (Table I): any live subcluster majority
      // lets the split finish.
      if (index <= c.cnew_index) return QuorumSpec::AnySub(c.split.subs);
      int sub = c.split.SubOf(self);
      if (sub >= 0) {
        return QuorumSpec::Majority(c.split.subs[static_cast<size_t>(sub)].members);
      }
      // A leader is always a member of some subcluster; a non-member cannot
      // be asked for a commit quorum, but fall back safely to C_old.
      return QuorumSpec::Majority(c.members);
    }
    case ConfigMode::kStable:
      break;
  }
  if (c.vanilla_joint) {
    return QuorumSpec::JointOldNew(c.jc_old, c.members);
  }
  if (c.fixed_quorum > 0) {
    return QuorumSpec::Fixed(c.members, c.fixed_quorum);
  }
  return QuorumSpec::Majority(c.members);
}

ClusterUid DeriveSplitUid(ClusterUid parent, uint32_t epoch, int sub_index) {
  return Mix64(Mix64(parent, epoch),
               0x5b117ULL + static_cast<uint64_t>(sub_index));
}

ClusterUid DeriveMergeUid(TxId tx) { return Mix64(0x6e45eULL, tx); }

}  // namespace recraft::raft
