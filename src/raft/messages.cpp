#include "raft/messages.h"

namespace recraft::raft {

namespace {

struct BytesVisitor {
  size_t operator()(const RequestVote&) const { return 40; }
  size_t operator()(const VoteReply&) const { return 24; }
  size_t operator()(const AppendEntries& m) const {
    size_t n = 48;
    for (const auto& e : m.entries) n += e.WireBytes();
    return n;
  }
  size_t operator()(const AppendReply&) const { return 40; }
  size_t operator()(const InstallSnapshot& m) const {
    return 24 + (m.snap ? m.snap->WireBytes() : 0);
  }
  size_t operator()(const InstallSnapshotReply&) const { return 24; }
  size_t operator()(const CommitNotify&) const { return 32; }
  size_t operator()(const PullRequest&) const { return 24; }
  size_t operator()(const PullReply& m) const {
    size_t n = 40 + (m.snap ? m.snap->WireBytes() : 0);
    for (const auto& e : m.entries) n += e.WireBytes();
    return n;
  }
  size_t operator()(const MergePrepareReq& m) const {
    return 32 + m.plan.sources.size() * 64;
  }
  size_t operator()(const MergePrepareReply&) const { return 40; }
  size_t operator()(const MergeCommitReq& m) const {
    return 32 + m.plan.sources.size() * 64;
  }
  size_t operator()(const MergeCommitReply&) const { return 32; }
  size_t operator()(const MergeFinalize&) const { return 24; }
  size_t operator()(const ExchangeDone&) const { return 24; }
  size_t operator()(const SnapPullReq&) const { return 24; }
  size_t operator()(const SnapPullReply& m) const {
    return 32 + (m.snap ? m.snap->SerializedBytes() : 0);
  }
  size_t operator()(const ReadIndexProbe&) const { return 32; }
  size_t operator()(const ReadIndexAck&) const { return 32; }
  size_t operator()(const ClientRequest& m) const {
    if (const auto* cmd = std::get_if<sm::Command>(&m.body)) {
      return 24 + cmd->WireBytes();
    }
    if (const auto* read = std::get_if<ReadRequest>(&m.body)) {
      return 24 + read->query.WireBytes();
    }
    if (const auto* sr = std::get_if<AdminSetRange>(&m.body)) {
      return 128 + (sr->absorb ? sr->absorb->SerializedBytes() : 0);
    }
    return 128;
  }
  size_t operator()(const ClientReply& m) const {
    return 56 + m.value.size() + m.serving_range.lo().size() +
           m.serving_range.hi().size();
  }
  size_t operator()(const RangeSnapReq&) const { return 32; }
  size_t operator()(const RangeSnapReply& m) const {
    return 40 + (m.snap ? m.snap->SerializedBytes() : 0);
  }
  size_t operator()(const BootstrapReq& m) const {
    return 128 + (m.data ? m.data->SerializedBytes() : 0);
  }
  size_t operator()(const BootstrapAck&) const { return 24; }
  size_t operator()(const NamingRegister& m) const {
    return 48 + m.members.size() * 8;
  }
  size_t operator()(const NamingLookupReq&) const { return 16; }
  size_t operator()(const NamingLookupReply& m) const {
    return 16 + m.clusters.size() * 64;
  }
};

struct NameVisitor {
  const char* operator()(const RequestVote&) const { return "RequestVote"; }
  const char* operator()(const VoteReply&) const { return "VoteReply"; }
  const char* operator()(const AppendEntries&) const { return "AppendEntries"; }
  const char* operator()(const AppendReply&) const { return "AppendReply"; }
  const char* operator()(const InstallSnapshot&) const {
    return "InstallSnapshot";
  }
  const char* operator()(const InstallSnapshotReply&) const {
    return "InstallSnapshotReply";
  }
  const char* operator()(const CommitNotify&) const { return "CommitNotify"; }
  const char* operator()(const PullRequest&) const { return "PullRequest"; }
  const char* operator()(const PullReply&) const { return "PullReply"; }
  const char* operator()(const MergePrepareReq&) const {
    return "MergePrepareReq";
  }
  const char* operator()(const MergePrepareReply&) const {
    return "MergePrepareReply";
  }
  const char* operator()(const MergeCommitReq&) const {
    return "MergeCommitReq";
  }
  const char* operator()(const MergeCommitReply&) const {
    return "MergeCommitReply";
  }
  const char* operator()(const MergeFinalize&) const { return "MergeFinalize"; }
  const char* operator()(const ExchangeDone&) const { return "ExchangeDone"; }
  const char* operator()(const SnapPullReq&) const { return "SnapPullReq"; }
  const char* operator()(const SnapPullReply&) const { return "SnapPullReply"; }
  const char* operator()(const ReadIndexProbe&) const {
    return "ReadIndexProbe";
  }
  const char* operator()(const ReadIndexAck&) const { return "ReadIndexAck"; }
  const char* operator()(const ClientRequest&) const { return "ClientRequest"; }
  const char* operator()(const ClientReply&) const { return "ClientReply"; }
  const char* operator()(const RangeSnapReq&) const { return "RangeSnapReq"; }
  const char* operator()(const RangeSnapReply&) const {
    return "RangeSnapReply";
  }
  const char* operator()(const BootstrapReq&) const { return "BootstrapReq"; }
  const char* operator()(const BootstrapAck&) const { return "BootstrapAck"; }
  const char* operator()(const NamingRegister&) const {
    return "NamingRegister";
  }
  const char* operator()(const NamingLookupReq&) const {
    return "NamingLookupReq";
  }
  const char* operator()(const NamingLookupReply&) const {
    return "NamingLookupReply";
  }
};

}  // namespace

size_t MessageBytes(const Message& m) { return std::visit(BytesVisitor{}, m); }

const char* MessageName(const Message& m) {
  return std::visit(NameVisitor{}, m);
}

}  // namespace recraft::raft
