// Every RPC exchanged by nodes, clients, cluster managers and the naming
// service. The simulated network carries them as shared_ptr<const Message>;
// sizes for bandwidth accounting come from MessageBytes().
#pragma once

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "obs/trace_ctx.h"
#include "raft/config.h"
#include "raft/entry.h"
#include "raft/entry_slab.h"
#include "sm/state_machine.h"

namespace recraft::raft {

/// A reconfiguration history record, retained even after log compaction so
/// long-partitioned nodes and clusters can find their successors (§V).
struct ReconfigRecord {
  enum class Kind : uint8_t { kSplit = 0, kMerge, kMember };
  Kind kind = Kind::kMember;
  uint32_t epoch = 0;          // epoch in force after the reconfiguration
  ClusterUid uid = 0;          // cluster identity after
  std::vector<NodeId> members;
  KeyRange range;
  /// For splits: the log index of the C_new entry — the epoch boundary a
  /// pull reply must not cross (a sibling's post-split entries would leak).
  Index boundary_index = 0;
};

/// A consensus-level snapshot: the applied state-machine image plus the log
/// position and configuration it covers.
struct RaftSnapshot {
  Index last_index = 0;
  uint64_t last_term = 0;  // EpochTerm raw
  sm::SnapshotPtr state;
  ConfigState config;
  std::vector<ReconfigRecord> history;
  /// Aborted merge transactions this (coordinator-source) node must keep
  /// retransmitting until every participant acks — survives compaction of
  /// the C_abort entry, and thus leader changes and reboots (see
  /// ConfAbortSettled).
  std::map<TxId, MergePlan> unsettled_aborts;

  size_t WireBytes() const {
    return 128 + (state ? state->SerializedBytes() : 0) + history.size() * 64 +
           unsettled_aborts.size() * 96;
  }
};
using RaftSnapshotPtr = std::shared_ptr<const RaftSnapshot>;

// ---------------------------------------------------------------------------
// Core Raft RPCs (epoch-term aware).

struct RequestVote {
  uint64_t et = 0;  // candidate's EpochTerm
  NodeId candidate = kNoNode;
  Index last_idx = 0;
  uint64_t last_term = 0;
};

struct VoteReply {
  uint64_t et = 0;
  NodeId from = kNoNode;
  bool granted = false;
  /// §III-B HandleVote: set when the responder's epoch exceeds the
  /// candidate's — "pull committed entries from me instead of campaigning".
  bool pull = false;
};

struct AppendEntries {
  uint64_t et = 0;
  NodeId leader = kNoNode;
  Index prev_idx = 0;
  uint64_t prev_term = 0;
  /// Zero-copy view over the leader's log slabs: fanning one batch out to N
  /// peers shares one set of immutable slab slots instead of materializing
  /// N entry vectors (see raft/entry_slab.h).
  EntrySpan entries;
  Index commit = 0;
};

struct AppendReply {
  uint64_t et = 0;
  NodeId from = kNoNode;
  bool ok = false;
  Index match = 0;          // highest index known replicated on follower
  Index conflict_hint = 0;  // follower's suggestion for next_idx on reject
};

struct InstallSnapshot {
  uint64_t et = 0;
  NodeId leader = kNoNode;
  RaftSnapshotPtr snap;
};

struct InstallSnapshotReply {
  uint64_t et = 0;
  NodeId from = kNoNode;
  Index applied = 0;
};

// ---------------------------------------------------------------------------
// ReCraft split protocol.

/// Multicast to all C_old members once the split C_new entry commits, so
/// sibling subclusters holding the entry learn of its commit and can elect
/// their own leaders (§III-B SplitLeaveJoint, line 30).
struct CommitNotify {
  uint64_t et = 0;  // sender's EpochTerm *before* the epoch bump
  NodeId from = kNoNode;
  Index cnew_index = 0;
  uint64_t cnew_term = 0;  // term of the C_new entry, so receivers can match
};

/// Pull-based recovery: request committed entries starting at next_idx.
struct PullRequest {
  NodeId from = kNoNode;
  uint32_t epoch = 0;  // requester's epoch, so the responder can cap
  Index next_idx = 0;
};

struct PullReply {
  NodeId from = kNoNode;
  uint32_t epoch = 0;            // responder's epoch
  EntrySpan entries;             // committed entries only (shared slab view)
  Index commit = 0;              // responder's commit index (possibly capped)
  /// True when the reply stops at the responder's epoch boundary: the
  /// requester must apply the boundary reconfiguration before pulling more.
  bool capped = false;
  /// Fallback when the responder compacted past next_idx.
  RaftSnapshotPtr snap;
};

// ---------------------------------------------------------------------------
// ReCraft merge protocol (cluster-level 2PC + snapshot exchange).

struct MergePrepareReq {
  NodeId from = kNoNode;  // coordinator's leader (reply target)
  MergePlan plan;
};

struct MergePrepareReply {
  NodeId from = kNoNode;
  TxId tx = 0;
  int source_index = -1;
  bool ok = false;
  /// Transient failure (not leader / no quorum yet): coordinator retries.
  bool retry = false;
  NodeId leader_hint = kNoNode;
  uint32_t epoch = 0;  // responder cluster's epoch, for E_new = E_max + 1
};

struct MergeCommitReq {
  NodeId from = kNoNode;
  TxId tx = 0;
  bool commit = false;  // false = abort
  MergePlan plan;       // final plan with new_epoch/new_uid filled
};

struct MergeCommitReply {
  NodeId from = kNoNode;
  TxId tx = 0;
  int source_index = -1;
  bool ok = false;
  bool retry = false;
  NodeId leader_hint = kNoNode;
};

/// Coordinator-cluster leader -> its own followers: all subclusters
/// acknowledged the 2PC commit; transition to the merged cluster now. The
/// coordinator cluster "applies last" (§III-C.1), so its members defer the
/// transition until this signal (or until they observe E_new traffic).
struct MergeFinalize {
  NodeId from = kNoNode;
  TxId tx = 0;
};

/// Post-merge garbage collection: a resumed member announces it has
/// completed the snapshot exchange for `tx`. Once every resumed member has
/// announced, holders prune the sealed snapshots retained for that merge
/// (`exchange_store_`) — chained merges would otherwise grow the retained
/// set without bound. Retransmitted until the sender itself prunes.
struct ExchangeDone {
  NodeId from = kNoNode;
  TxId tx = 0;
};

/// Data-exchange phase: pull subcluster `source_index`'s snapshot.
struct SnapPullReq {
  NodeId from = kNoNode;
  TxId tx = 0;
  int source_index = -1;
};

struct SnapPullReply {
  NodeId from = kNoNode;
  TxId tx = 0;
  int source_index = -1;
  bool ready = false;
  sm::SnapshotPtr snap;
};

// ---------------------------------------------------------------------------
// ReadIndex (linearizable leases-free reads, Raft §6.4): the leader records
// its commit index for a batch of pending reads, confirms it is still the
// leader with one probe round (a quorum of same-term acks), then serves the
// reads from applied state — no log entry, no WAL flush, no replication
// fan-out per read.

/// Leader -> followers: "confirm round `seq` of my term". Retransmitted
/// until the round's quorum is reached; acts as a heartbeat on receipt.
struct ReadIndexProbe {
  uint64_t et = 0;
  NodeId from = kNoNode;
  uint64_t seq = 0;
};

/// Follower -> leader. `ok` is false when the responder's term is higher —
/// the deposed leader steps down and fails its pending reads (the client
/// retries at the new leader), which is exactly what makes stale-leader
/// reads impossible.
struct ReadIndexAck {
  uint64_t et = 0;
  NodeId from = kNoNode;
  uint64_t seq = 0;
  bool ok = false;
};

// ---------------------------------------------------------------------------
// Client / admin interface.

struct AdminSplit {
  /// Member groups and split keys; the leader validates against its current
  /// configuration and builds the SplitPlan (C_joint / C_new payloads).
  std::vector<std::vector<NodeId>> groups;
  std::vector<std::string> split_keys;  // groups.size() - 1 keys
};

struct AdminMerge {
  /// Draft plan: sources describe the clusters to merge (coordinator is the
  /// cluster receiving this request; it must be sources[plan.coordinator]).
  MergePlan draft;
};

struct AdminMember {
  MemberChange change;
};

/// TC baseline: replace the cluster's range (optionally absorbing bulk
/// data) through a consensus entry, as the cluster manager's admin-tool
/// script would.
struct AdminSetRange {
  KeyRange range;
  sm::SnapshotPtr absorb;
};

/// A linearizable read served via the ReadIndex path instead of the log.
/// The query body is opaque to the node (the machine's Query decodes it);
/// query.key routes and range-checks it like any command.
struct ReadRequest {
  sm::Command query;
};

using ClientBody = std::variant<sm::Command, ReadRequest, AdminSplit,
                                AdminMerge, AdminMember, AdminSetRange>;

struct ClientRequest {
  uint64_t req_id = 0;
  NodeId from = kNoNode;
  ClientBody body;
};

struct ClientReply {
  uint64_t req_id = 0;
  NodeId from = kNoNode;
  Status status;
  /// Opaque result payload (the machine's CmdResult::payload): a value for
  /// gets, an encoded entry batch for scans — the typed service layer
  /// (kv::DecodeResponse) interprets it.
  std::string value;
  NodeId leader_hint = kNoNode;
  /// The key range the replying node currently serves and its consensus
  /// epoch. Routing clients compare these against their cached shard map:
  /// a kWrongShard rejection (or a reply from a higher epoch with a
  /// different range) means the map is stale and must be refetched.
  KeyRange serving_range;
  uint32_t epoch = 0;
};

// ---------------------------------------------------------------------------
// TC baseline (cluster-manager-driven split/merge emulation, §VII-B/C).

/// Fetch a point-in-time snapshot of `range` from a cluster's leader (the
/// CM's data-migration step; transfer time is charged by the network).
struct RangeSnapReq {
  NodeId from = kNoNode;
  KeyRange range;
};

struct RangeSnapReply {
  NodeId from = kNoNode;
  bool ok = false;
  bool retry = false;
  NodeId leader_hint = kNoNode;
  KeyRange range;  // echoed from the request (matches replies to steps)
  sm::SnapshotPtr snap;
};

/// Wipe a node and restart it as a member of a freshly bootstrapped cluster
/// with the given data (the CM's "install snapshot + config and restart"
/// step). An empty member list retires the node (TC merge termination).
struct BootstrapReq {
  NodeId from = kNoNode;
  uint64_t op_id = 0;  // idempotency token
  ConfigState genesis;
  sm::SnapshotPtr data;  // may be null
};

struct BootstrapAck {
  NodeId from = kNoNode;
  uint64_t op_id = 0;
};

// ---------------------------------------------------------------------------
// Naming service (§V): a loosely consistent, always-available registry used
// only for long-term failure recovery.

struct NamingRegister {
  ClusterUid uid = 0;
  uint32_t epoch = 0;
  std::vector<NodeId> members;
  KeyRange range;
};

struct NamingLookupReq {
  NodeId from = kNoNode;
};

struct NamingLookupReply {
  std::vector<NamingRegister> clusters;
};

// ---------------------------------------------------------------------------

using Message =
    std::variant<RequestVote, VoteReply, AppendEntries, AppendReply,
                 InstallSnapshot, InstallSnapshotReply, CommitNotify,
                 PullRequest, PullReply, MergePrepareReq, MergePrepareReply,
                 MergeCommitReq, MergeCommitReply, MergeFinalize, ExchangeDone,
                 SnapPullReq, SnapPullReply, ReadIndexProbe, ReadIndexAck,
                 ClientRequest, ClientReply, RangeSnapReq, RangeSnapReply,
                 BootstrapReq, BootstrapAck, NamingRegister, NamingLookupReq,
                 NamingLookupReply>;

/// On-wire size estimate for bandwidth accounting.
size_t MessageBytes(const Message& m);

/// Short human-readable tag ("AppendEntries", ...) for logs and traces.
const char* MessageName(const Message& m);

/// Shared handle to an immutable message, created by MakeMessage. Carries
/// the message's on-wire size, computed exactly once — senders that fan a
/// message out (heartbeats, commit notifies) used to re-walk the payload
/// with MessageBytes on every Send. Converts to the network's opaque
/// payload type; receivers cast back to `const Message`.
///
/// Also carries the flight recorder's causal TraceCtx as out-of-band
/// metadata: pure annotation, excluded from wire_bytes() (MessageBytes
/// walks msg only), and mutable-after-make because a sender stamps the
/// context between MakeMessage and Send. Worlds are single-threaded, so
/// the mutation is unsynchronized by design.
class MessagePtr {
 public:
  MessagePtr() = default;

  const Message& operator*() const { return rec_->msg; }
  const Message* operator->() const { return &rec_->msg; }
  const Message* get() const { return rec_ ? &rec_->msg : nullptr; }
  explicit operator bool() const { return rec_ != nullptr; }

  /// On-wire size for bandwidth accounting, memoized at MakeMessage.
  size_t wire_bytes() const { return rec_ ? rec_->bytes : 0; }

  obs::TraceCtx trace_ctx() const {
    return rec_ ? rec_->ctx : obs::TraceCtx{};
  }
  void set_trace_ctx(obs::TraceCtx ctx) const {
    if (rec_) rec_->ctx = ctx;
  }

  /// View as the network's opaque payload (shares ownership).
  std::shared_ptr<const Message> shared() const {
    if (!rec_) return nullptr;
    return std::shared_ptr<const Message>(rec_, &rec_->msg);
  }
  /* implicit */ operator std::shared_ptr<const void>() const {  // NOLINT
    return shared();
  }

 private:
  struct Rec {
    size_t bytes = 0;
    mutable obs::TraceCtx ctx;  // annotation only; never on the wire
    Message msg;
  };

  explicit MessagePtr(std::shared_ptr<const Rec> rec) : rec_(std::move(rec)) {}

  template <typename T>
  friend MessagePtr MakeMessage(T&& body);

  std::shared_ptr<const Rec> rec_;
};

template <typename T>
MessagePtr MakeMessage(T&& body) {
  auto rec = std::make_shared<MessagePtr::Rec>();
  rec->msg = Message(std::forward<T>(body));
  rec->bytes = MessageBytes(rec->msg);
  return MessagePtr(std::move(rec));
}

}  // namespace recraft::raft
