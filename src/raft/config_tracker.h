// Tracks the effective configuration as entries are appended, truncated and
// compacted — Raft's wait-free reconfiguration rule ("a node uses the latest
// configuration in its log, committed or not") generalized with ReCraft's
// split/merge payloads. The tracker keeps the stack of configuration-bearing
// entries so a truncation rolls the configuration back correctly.
#pragma once

#include <deque>

#include "raft/config.h"
#include "raft/entry.h"

namespace recraft::raft {

/// Pure transition: the configuration that results from appending `entry`
/// while in configuration `cur`. ConfMergeOutcome entries do not change the
/// configuration at append time (the merge applies only once committed,
/// §III-C); they are tracked so P1 can see the pending resolution.
Result<ConfigState> ApplyConfEntry(const ConfigState& cur, const LogEntry& entry);

class ConfigTracker {
 public:
  /// Install the genesis configuration (in force from index 0).
  void Init(ConfigState genesis);

  /// Reference-stability contract: the returned reference survives OnAppend
  /// (the stack is a deque, so pushing a new configuration never relocates
  /// existing records) but NOT ForceState or an OnTruncate that pops the
  /// record it points at. Node handlers therefore must not hold it across
  /// anything that can apply a committed reconfiguration (split completion,
  /// merge transition, snapshot install) — copy first or re-fetch after.
  const ConfigState& Current() const { return stack_.back().state; }
  /// Index of the entry that produced the current configuration.
  Index CurrentIndex() const { return stack_.back().index; }

  /// The configuration in force at `index` (deepest record with
  /// record.index <= index). Used when snapshotting at an applied index that
  /// may trail an appended-but-uncommitted configuration entry.
  const ConfigState& StateAtOrBefore(Index index) const;

  /// Observe an appended entry; updates the configuration when it is a
  /// config entry. Returns false (and leaves state unchanged) if the entry
  /// is an invalid transition — callers treat that as a protocol bug.
  bool OnAppend(const LogEntry& entry);

  /// Roll back past a truncation: drop records with index >= from.
  void OnTruncate(Index from);

  /// Replace the whole stack (snapshot install / split completion / merge
  /// resumption): `state` is in force as of `index`.
  void ForceState(ConfigState state, Index index);

  /// Number of configuration records currently tracked (genesis included).
  size_t depth() const { return stack_.size(); }

 private:
  struct Record {
    Index index = 0;
    ConfigState state;
  };
  std::deque<Record> stack_;
};

}  // namespace recraft::raft
