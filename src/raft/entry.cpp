#include "raft/entry.h"

namespace recraft::raft {

namespace {
struct BytesVisitor {
  size_t operator()(const NoOp&) const { return 1; }
  size_t operator()(const sm::Command& c) const { return c.WireBytes(); }
  size_t operator()(const ConfInit& c) const {
    return 32 + c.members.size() * 8;
  }
  size_t operator()(const ConfSplitJoint& c) const {
    return 32 + c.plan.subs.size() * 64;
  }
  size_t operator()(const ConfSplitNew& c) const {
    return 32 + c.plan.subs.size() * 64;
  }
  size_t operator()(const ConfMember& c) const {
    return 16 + c.change.nodes.size() * 8;
  }
  size_t operator()(const ConfMergeTx& c) const {
    return 48 + c.plan.sources.size() * 64;
  }
  size_t operator()(const ConfMergeOutcome& c) const {
    return 48 + c.plan.sources.size() * 64;
  }
  size_t operator()(const ConfSetRange& c) const {
    return 48 + (c.absorb ? c.absorb->SerializedBytes() : 0);
  }
  size_t operator()(const ConfAbortSettled&) const { return 16; }
};

struct DescribeVisitor {
  std::string operator()(const NoOp&) const { return "noop"; }
  std::string operator()(const ConfInit& c) const {
    return "Cinit:" + NodesToString(c.members) + c.range.ToString();
  }
  std::string operator()(const sm::Command& c) const {
    return "cmd(" + c.key + "," + std::to_string(c.body.size()) + "B)";
  }
  std::string operator()(const ConfSplitJoint& c) const {
    return "Cjoint:" + c.plan.ToString();
  }
  std::string operator()(const ConfSplitNew& c) const {
    return "Cnew:" + c.plan.ToString();
  }
  std::string operator()(const ConfMember& c) const {
    return c.change.ToString();
  }
  std::string operator()(const ConfMergeTx& c) const {
    return "CTX(" + std::string(c.decision_ok ? "OK" : "NO") + "):" +
           c.plan.ToString();
  }
  std::string operator()(const ConfMergeOutcome& c) const {
    return std::string(c.commit ? "Cmerge:" : "Cabort:") + c.plan.ToString();
  }
  std::string operator()(const ConfSetRange& c) const {
    return "Crange:" + c.range.ToString() + (c.absorb ? "+absorb" : "");
  }
  std::string operator()(const ConfAbortSettled& c) const {
    return "CabortSettled(tx=" + std::to_string(c.tx) + ")";
  }
};
}  // namespace

size_t LogEntry::WireBytes() const {
  return 16 + std::visit(BytesVisitor{}, payload);
}

std::string LogEntry::Describe() const {
  return std::to_string(index) + "@" + et().ToString() + ":" +
         std::visit(DescribeVisitor{}, payload);
}

}  // namespace recraft::raft
