// Refcounted immutable entry slabs — the shared storage behind the log, the
// AppendEntries / PullReply fan-out and the storage backends' mirrors.
//
// The old hot path materialized a fresh std::vector<LogEntry> per peer per
// send (RaftLog::Slice) and deep-copied every appended entry again into each
// storage mirror; PR 3's profile put that at ~8% of e2e wall time. Instead,
// entries now live in append-only slabs (EntrySlab) shared by shared_ptr:
//
//   * EntrySlab  — a fixed-capacity arena. Strictly append-only: a slot, once
//     written by PushBack, is never moved or mutated (the backing vector's
//     capacity is reserved up front, so pushes never reallocate). That makes
//     every published slot immutable for as long as anyone holds the slab —
//     the property that lets in-flight messages, storage mirrors and the log
//     cache all point at the same bytes while the log truncates underneath
//     them (a truncated slot simply stops being referenced; it is never
//     overwritten, because the slab's write cursor only moves forward).
//   * EntryRef   — one (slab, position) handle; the unit the LogSink API now
//     carries so storage mirrors share the slab instead of copying the entry.
//   * EntrySpan  — an immutable view over a run of slab slots (possibly
//     spanning slabs). This is what RaftLog::Slice returns and what
//     AppendEntries / PullReply carry: building one copies a couple of
//     segment descriptors, never entries.
//   * EntryList  — the growable segmented list behind RaftLog and the storage
//     mirrors: PushOwned fills a tail slab the list allocates, PushShared
//     adopts another list's slab by reference (the zero-copy path from
//     RaftLog into InMemoryStorage / WalStorage's model).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <memory>
#include <vector>

#include "raft/entry.h"

namespace recraft::raft {

class EntrySlab {
 public:
  /// Default arena size. Big enough that sequential appends coalesce into a
  /// handful of segments, small enough that a truncated slab's dead slots
  /// don't pin much memory.
  static constexpr uint32_t kDefaultCapacity = 64;

  explicit EntrySlab(uint32_t capacity = kDefaultCapacity) {
    slots_.reserve(capacity);
  }
  EntrySlab(const EntrySlab&) = delete;
  EntrySlab& operator=(const EntrySlab&) = delete;

  uint32_t size() const { return static_cast<uint32_t>(slots_.size()); }
  bool full() const { return slots_.size() == slots_.capacity(); }
  const LogEntry& at(uint32_t i) const {
    assert(i < slots_.size());
    return slots_[i];
  }

  /// Append one entry; returns its slot. The slot is immutable from here on.
  uint32_t PushBack(LogEntry e) {
    assert(!full());
    slots_.push_back(std::move(e));
    return static_cast<uint32_t>(slots_.size() - 1);
  }

 private:
  // NOLINTNEXTLINE(recraft-entry-copy): the slab IS the one owning store every span shares
  std::vector<LogEntry> slots_;  // capacity reserved once; never reallocates
};

using SlabPtr = std::shared_ptr<EntrySlab>;

/// A shared handle to one immutable entry. Implicitly constructible from a
/// bare LogEntry (a single-slot slab) so cold-path callers — boot replay,
/// unit tests, benches driving a LogSink directly — stay source-compatible.
class EntryRef {
 public:
  EntryRef() = default;
  EntryRef(SlabPtr slab, uint32_t pos) : slab_(std::move(slab)), pos_(pos) {}
  /* implicit */ EntryRef(const LogEntry& e)  // NOLINT(runtime/explicit)
      : slab_(std::make_shared<EntrySlab>(1)) {
    pos_ = slab_->PushBack(e);
  }

  const LogEntry& operator*() const { return slab_->at(pos_); }
  const LogEntry* operator->() const { return &slab_->at(pos_); }
  const SlabPtr& slab() const { return slab_; }
  uint32_t pos() const { return pos_; }

 private:
  SlabPtr slab_;
  uint32_t pos_ = 0;
};

/// An immutable view over a run of entries held in shared slabs. Copying a
/// span copies segment descriptors (refcount bumps), not entries.
class EntrySpan {
 public:
  struct Segment {
    SlabPtr slab;
    uint32_t begin = 0;
    uint32_t len = 0;
  };

  EntrySpan() = default;
  /// Materializing constructor for literal assignment (tests build
  /// `ae.entries = {e}`): copies the listed entries into a fresh slab.
  EntrySpan(std::initializer_list<LogEntry> entries) {
    if (entries.size() == 0) return;
    auto slab = std::make_shared<EntrySlab>(
        static_cast<uint32_t>(entries.size()));
    for (const auto& e : entries) slab->PushBack(e);
    size_ = entries.size();
    segs_.push_back(Segment{std::move(slab), 0, static_cast<uint32_t>(size_)});
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const LogEntry& front() const {
    assert(!empty());
    return segs_.front().slab->at(segs_.front().begin);
  }
  const LogEntry& back() const {
    assert(!empty());
    const Segment& s = segs_.back();
    return s.slab->at(s.begin + s.len - 1);
  }

  const LogEntry& operator[](size_t i) const {
    assert(i < size_);
    for (const Segment& s : segs_) {
      if (i < s.len) return s.slab->at(s.begin + static_cast<uint32_t>(i));
      i -= s.len;
    }
    __builtin_unreachable();
  }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = LogEntry;
    using difference_type = std::ptrdiff_t;
    using pointer = const LogEntry*;
    using reference = const LogEntry&;

    const_iterator() = default;
    const_iterator(const Segment* seg, const Segment* end, uint32_t off)
        : seg_(seg), end_(end), off_(off) {}

    reference operator*() const { return seg_->slab->at(seg_->begin + off_); }
    pointer operator->() const { return &**this; }
    const_iterator& operator++() {
      if (++off_ == seg_->len) {
        ++seg_;
        off_ = 0;
      }
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator t = *this;
      ++*this;
      return t;
    }
    bool operator==(const const_iterator& o) const {
      return seg_ == o.seg_ && off_ == o.off_;
    }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

   private:
    const Segment* seg_ = nullptr;
    const Segment* end_ = nullptr;
    uint32_t off_ = 0;
  };

  const_iterator begin() const {
    return {segs_.data(), segs_.data() + segs_.size(), 0};
  }
  const_iterator end() const {
    return {segs_.data() + segs_.size(), segs_.data() + segs_.size(), 0};
  }

  void PushSegment(SlabPtr slab, uint32_t begin, uint32_t len) {
    assert(len > 0);
    size_ += len;
    segs_.push_back(Segment{std::move(slab), begin, len});
  }

 private:
  std::vector<Segment> segs_;
  size_t size_ = 0;
};

/// Growable ordered entry list over shared slabs: the storage behind RaftLog
/// and the backends' durable-model mirrors. Supports the operations those
/// call sites need — append (owned or shared), pop at either end, positional
/// reads, and zero-copy sub-span extraction.
class EntryList {
 public:
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const LogEntry& front() const {
    assert(!empty());
    return segs_.front().slab->at(segs_.front().begin);
  }
  const LogEntry& back() const {
    assert(!empty());
    const Seg& s = segs_.back();
    return s.slab->at(s.begin + s.len - 1);
  }

  /// Entry at logical position `i` (0-based from the current front).
  /// Sequential access (apply loops) hits a cached segment hint; random
  /// access binary-searches the segment directory.
  const LogEntry& At(size_t i) const {
    const Seg& s = SegFor(i);
    return s.slab->at(s.begin + static_cast<uint32_t>(head_ + i - s.start));
  }

  EntryRef RefAt(size_t i) const {
    const Seg& s = SegFor(i);
    return EntryRef(s.slab,
                    s.begin + static_cast<uint32_t>(head_ + i - s.start));
  }

  /// Zero-copy view of [pos, pos+count). Copies segment descriptors only.
  EntrySpan Span(size_t pos, size_t count) const {
    EntrySpan out;
    if (count == 0) return out;
    assert(pos + count <= size_);
    size_t seg_idx = SegIndexFor(pos);
    uint64_t abs = head_ + pos;
    size_t left = count;
    for (; left > 0; ++seg_idx) {
      const Seg& s = segs_[seg_idx];
      uint32_t off = static_cast<uint32_t>(abs - s.start);
      uint32_t take = static_cast<uint32_t>(
          std::min<uint64_t>(left, s.len - off));
      out.PushSegment(s.slab, s.begin + off, take);
      abs += take;
      left -= take;
    }
    return out;
  }

  /// Append into the list's own tail slab (allocating a fresh slab when the
  /// current one fills). Returns the shared handle to the stored entry.
  EntryRef PushOwned(LogEntry e) {
    if (tail_ == nullptr || tail_->full()) {
      tail_ = std::make_shared<EntrySlab>(EntrySlab::kDefaultCapacity);
    }
    uint32_t pos = tail_->PushBack(std::move(e));
    Adopt(tail_, pos);
    return EntryRef(tail_, pos);
  }

  /// Append by reference into another list's slab — the zero-copy path from
  /// the log into the storage mirrors. Contiguous refs into the same slab
  /// coalesce into one segment.
  void PushShared(const EntryRef& ref) { Adopt(ref.slab(), ref.pos()); }

  void PopBack() {
    assert(!empty());
    Seg& s = segs_.back();
    if (--s.len == 0) segs_.pop_back();
    --size_;
    hint_ = 0;
  }

  void PopFront() {
    assert(!empty());
    Seg& s = segs_.front();
    ++s.begin;
    ++s.start;
    if (--s.len == 0) segs_.pop_front();
    ++head_;
    --size_;
    hint_ = 0;
  }

  void Clear() {
    segs_.clear();
    tail_.reset();
    size_ = 0;
    head_ = 0;
    hint_ = 0;
  }

 private:
  struct Seg {
    SlabPtr slab;
    uint32_t begin = 0;  // first slot of this segment within the slab
    uint32_t len = 0;
    uint64_t start = 0;  // absolute position of the segment's first entry
  };

  void Adopt(const SlabPtr& slab, uint32_t pos) {
    if (!segs_.empty()) {
      Seg& s = segs_.back();
      if (s.slab == slab && pos == s.begin + s.len) {
        ++s.len;
        ++size_;
        return;
      }
    }
    segs_.push_back(Seg{slab, pos, 1, head_ + size_});
    ++size_;
  }

  size_t SegIndexFor(size_t i) const {
    assert(i < size_);
    uint64_t abs = head_ + i;
    // Fast path: the segment that answered the previous lookup, or its
    // successor (sequential scans).
    for (size_t h = hint_; h < std::min(hint_ + 2, segs_.size()); ++h) {
      const Seg& s = segs_[h];
      if (abs >= s.start && abs < s.start + s.len) {
        hint_ = h;
        return h;
      }
    }
    size_t lo = 0;
    size_t hi = segs_.size();
    while (hi - lo > 1) {
      size_t mid = (lo + hi) / 2;
      if (segs_[mid].start <= abs) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    hint_ = lo;
    return lo;
  }

  const Seg& SegFor(size_t i) const { return segs_[SegIndexFor(i)]; }

  std::deque<Seg> segs_;
  SlabPtr tail_;  // slab PushOwned is currently filling
  size_t size_ = 0;
  uint64_t head_ = 0;  // absolute position of the current front entry
  mutable size_t hint_ = 0;
};

}  // namespace recraft::raft
