#include "raft/config_tracker.h"

#include <cassert>

#include "common/logging.h"

namespace recraft::raft {

namespace {

Result<ConfigState> ApplyMemberChange(const ConfigState& cur,
                                      const MemberChange& mc) {
  ConfigState next = cur;
  auto& members = next.members;
  auto add = [&members](const std::vector<NodeId>& ns) {
    for (NodeId n : ns) {
      if (std::find(members.begin(), members.end(), n) == members.end()) {
        members.push_back(n);
      }
    }
    std::sort(members.begin(), members.end());
  };
  auto remove = [&members](const std::vector<NodeId>& ns) {
    for (NodeId n : ns) {
      members.erase(std::remove(members.begin(), members.end(), n),
                    members.end());
    }
  };
  const size_t n_old = cur.members.size();
  switch (mc.kind) {
    case MemberChangeKind::kAddAndResize:
      if (mc.nodes.empty()) return Rejected("AddAndResize: no nodes");
      add(mc.nodes);
      next.fixed_quorum = AddResizeQuorum(n_old, next.members.size() - n_old);
      if (next.fixed_quorum == MajorityOf(next.members.size())) {
        next.fixed_quorum = 0;  // C_new-q already equals C_new
      }
      break;
    case MemberChangeKind::kRemoveAndResize: {
      if (mc.nodes.empty()) return Rejected("RemoveAndResize: no nodes");
      remove(mc.nodes);
      size_t removed = n_old - next.members.size();
      if (removed >= MajorityOf(n_old)) {
        return Rejected("RemoveAndResize: r must be < Q_old");
      }
      next.fixed_quorum = RemoveResizeQuorum(n_old);
      if (next.fixed_quorum == MajorityOf(next.members.size())) {
        next.fixed_quorum = 0;
      }
      break;
    }
    case MemberChangeKind::kResizeQuorum:
      next.fixed_quorum = 0;
      break;
    case MemberChangeKind::kAddServer:
      if (mc.nodes.size() != 1) return Rejected("AddServer: exactly one node");
      add(mc.nodes);
      if (next.members.size() != n_old + 1) {
        return Rejected("AddServer: node already a member");
      }
      break;
    case MemberChangeKind::kRemoveServer:
      if (mc.nodes.size() != 1) {
        return Rejected("RemoveServer: exactly one node");
      }
      remove(mc.nodes);
      if (next.members.size() != n_old - 1) {
        return Rejected("RemoveServer: node not a member");
      }
      break;
    case MemberChangeKind::kJointEnter:
      if (mc.nodes.empty()) return Rejected("JointEnter: empty target");
      next.vanilla_joint = true;
      next.jc_old = cur.members;
      next.members = mc.nodes;
      std::sort(next.members.begin(), next.members.end());
      break;
    case MemberChangeKind::kJointLeave:
      if (!cur.vanilla_joint) return Rejected("JointLeave: not in joint mode");
      next.vanilla_joint = false;
      next.jc_old.clear();
      break;
  }
  if (next.members.empty()) return Rejected("membership change empties cluster");
  return next;
}

}  // namespace

Result<ConfigState> ApplyConfEntry(const ConfigState& cur,
                                   const LogEntry& entry) {
  if (const auto* init = std::get_if<ConfInit>(&entry.payload)) {
    ConfigState next;
    next.mode = ConfigMode::kStable;
    next.members = init->members;
    std::sort(next.members.begin(), next.members.end());
    next.range = init->range;
    next.uid = init->uid;
    return next;
  }
  if (const auto* j = std::get_if<ConfSplitJoint>(&entry.payload)) {
    ConfigState next = cur;
    next.mode = ConfigMode::kSplitJoint;
    next.split = j->plan;
    next.joint_index = entry.index;
    next.cnew_index = 0;
    return next;
  }
  if (const auto* n = std::get_if<ConfSplitNew>(&entry.payload)) {
    ConfigState next = cur;
    next.mode = ConfigMode::kSplitLeaving;
    next.split = n->plan;
    next.cnew_index = entry.index;
    return next;
  }
  if (const auto* m = std::get_if<ConfMember>(&entry.payload)) {
    return ApplyMemberChange(cur, m->change);
  }
  if (const auto* tx = std::get_if<ConfMergeTx>(&entry.payload)) {
    ConfigState next = cur;
    next.merge_tx = tx->plan;
    next.merge_tx_index = entry.index;
    next.merge_decision_ok = tx->decision_ok;
    return next;
  }
  if (const auto* sr = std::get_if<ConfSetRange>(&entry.payload)) {
    ConfigState next = cur;
    next.range = sr->range;
    return next;
  }
  if (const auto* oc = std::get_if<ConfMergeOutcome>(&entry.payload)) {
    // The outcome applies only once committed (§III-C); membership and
    // quorums are unchanged at append time. Remember it so the node can
    // resume an interrupted 2PC and so P1 keeps blocking until resolution.
    ConfigState next = cur;
    next.merge_outcome_index = entry.index;
    next.merge_outcome_commit = oc->commit;
    next.merge_outcome_plan = oc->plan;
    return next;
  }
  return cur;
}

void ConfigTracker::Init(ConfigState genesis) {
  stack_.clear();
  stack_.push_back(Record{0, std::move(genesis)});
}

bool ConfigTracker::OnAppend(const LogEntry& entry) {
  if (!entry.IsConfig()) return true;
  auto next = ApplyConfEntry(Current(), entry);
  if (!next.ok()) {
    RLOG_ERROR("config", "invalid conf transition at %llu: %s",
               static_cast<unsigned long long>(entry.index),
               next.status().ToString().c_str());
    return false;
  }
  stack_.push_back(Record{entry.index, std::move(*next)});
  return true;
}

const ConfigState& ConfigTracker::StateAtOrBefore(Index index) const {
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    if (it->index <= index) return it->state;
  }
  return stack_.front().state;
}

void ConfigTracker::OnTruncate(Index from) {
  while (stack_.size() > 1 && stack_.back().index >= from) {
    stack_.pop_back();
  }
}

void ConfigTracker::ForceState(ConfigState state, Index index) {
  stack_.clear();
  stack_.push_back(Record{index, std::move(state)});
}

}  // namespace recraft::raft
