// The replicated log: a contiguous run of entries above a compacted base
// (the snapshot position). Provides the primitives the node builds Raft's
// matching/truncation rules on, plus Reset() for the merge protocol's
// fresh-log resumption.
//
// Persistence: the in-memory list is a *cached view* over an optional
// LogSink (the pluggable storage backend). Every structural mutation —
// append, truncate, compact, reset — is forwarded to the attached sink, so
// call sites throughout the node (replication, pull recovery, merge
// resumption, proposals) persist without knowing storage exists. Reads
// always come from the cache; recovery rebuilds the cache from the sink's
// durable contents before attaching it.
//
// Entries live in refcounted append-only slabs (raft/entry_slab.h): Slice
// returns a zero-copy EntrySpan over them (one AppendEntries batch costs a
// couple of segment descriptors per peer, not an entry deep-copy), and
// OnLogAppend hands the sink a shared EntryRef so the storage mirrors point
// at the same slab slots the log cache does.
#pragma once

#include <cassert>

#include "raft/entry.h"
#include "raft/entry_slab.h"

namespace recraft::raft {

/// Receives every structural log mutation, in order. Implemented by the
/// storage backends; attach with RaftLog::Attach *after* the cache has been
/// rebuilt from durable state (boot must not re-persist what it replays).
class LogSink {
 public:
  virtual ~LogSink() = default;
  /// `e` shares the log's slab slot — sinks that mirror the log keep the
  /// reference instead of copying the entry. (A bare LogEntry converts
  /// implicitly for cold-path callers.)
  virtual void OnLogAppend(const EntryRef& e) = 0;
  virtual void OnLogTruncateFrom(Index i) = 0;
  virtual void OnLogCompactTo(Index i, uint64_t term) = 0;
  virtual void OnLogReset(Index base, uint64_t term) = 0;
};

class RaftLog {
 public:
  /// Attach (or detach, with nullptr) the persistence sink. Mutations from
  /// this point on are forwarded after updating the cache.
  void Attach(LogSink* sink) { sink_ = sink; }
  /// Base (snapshot) position: entries exist for indices in
  /// (base_index, last_index].
  Index base_index() const { return base_index_; }
  uint64_t base_term() const { return base_term_; }
  Index first_index() const { return base_index_ + 1; }
  Index last_index() const { return base_index_ + entries_.size(); }
  uint64_t last_term() const {
    return entries_.empty() ? base_term_ : entries_.back().term;
  }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  bool HasEntry(Index i) const {
    return i > base_index_ && i <= last_index();
  }

  /// Term at index i; valid for base_index() too. Returns 0 when the index
  /// is compacted away or beyond the log.
  uint64_t TermAt(Index i) const {
    if (i == base_index_) return base_term_;
    if (!HasEntry(i)) return 0;
    return entries_.At(i - base_index_ - 1).term;
  }

  const LogEntry& At(Index i) const {
    assert(HasEntry(i));
    return entries_.At(i - base_index_ - 1);
  }

  /// True when (i, term) matches this log — the AppendEntries consistency
  /// check. Index 0 with term 0 always matches (empty-log case).
  bool Matches(Index i, uint64_t term) const {
    if (i == 0) return term == 0;
    if (i < base_index_) return true;  // compacted: implied committed, matches
    if (i == base_index_) return term == base_term_;
    if (!HasEntry(i)) return false;
    return TermAt(i) == term;
  }

  /// Append one entry; index must be last_index()+1.
  void Append(LogEntry e) {
    assert(e.index == last_index() + 1);
    EntryRef ref = entries_.PushOwned(std::move(e));
    if (sink_ != nullptr) sink_->OnLogAppend(ref);
  }

  /// Remove all entries with index >= i. i must be > base_index().
  void TruncateFrom(Index i) {
    assert(i > base_index_);
    if (i > last_index()) return;
    while (last_index() >= i) entries_.PopBack();
    if (sink_ != nullptr) sink_->OnLogTruncateFrom(i);
  }

  /// Drop entries up to and including i (log compaction after a snapshot).
  void CompactTo(Index i, uint64_t term) {
    assert(i >= base_index_);
    if (i == base_index_) return;
    size_t drop = std::min(static_cast<size_t>(i - base_index_), entries_.size());
    for (size_t k = 0; k < drop; ++k) entries_.PopFront();
    base_index_ = i;
    base_term_ = term;
    if (sink_ != nullptr) sink_->OnLogCompactTo(i, term);
  }

  /// Discard everything and restart at the given base. Used when a merged
  /// cluster resumes (the log "begins with the C_new entry") and when a
  /// snapshot is installed.
  void Reset(Index base, uint64_t term) {
    entries_.Clear();
    base_index_ = base;
    base_term_ = term;
    if (sink_ != nullptr) sink_->OnLogReset(base, term);
  }

  /// Rebuild the cache from durable state at boot: appends without sink
  /// forwarding (the entry is already durable — echoing it back would
  /// double-write the WAL).
  void BootAppend(LogEntry e) {
    assert(sink_ == nullptr && "attach the sink after the cache is rebuilt");
    assert(e.index == last_index() + 1);
    entries_.PushOwned(std::move(e));
  }
  void BootSetBase(Index base, uint64_t term) {
    assert(entries_.empty());
    base_index_ = base;
    base_term_ = term;
  }

  /// View of entries in [lo, hi] (inclusive, clamped to available range).
  /// Zero-copy: the span shares the log's slabs, and stays valid after
  /// truncation (slab slots are append-only, never overwritten).
  EntrySpan Slice(Index lo, Index hi) const {
    lo = std::max(lo, first_index());
    hi = std::min(hi, last_index());
    if (lo > hi) return {};
    return entries_.Span(lo - base_index_ - 1, hi - lo + 1);
  }

  /// Total payload bytes above the base (for GC accounting).
  size_t ApproxBytes() const {
    size_t n = 0;
    for (size_t i = 0; i < entries_.size(); ++i) {
      n += entries_.At(i).WireBytes();
    }
    return n;
  }

 private:
  EntryList entries_;
  Index base_index_ = 0;
  uint64_t base_term_ = 0;
  LogSink* sink_ = nullptr;
};

}  // namespace recraft::raft
