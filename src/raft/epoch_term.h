// Epoch-prefixed term numbers (§III-A of the paper). The epoch occupies the
// upper 32 bits and the Raft term the lower 32, so comparing the raw 64-bit
// value orders configurations across splits and merges: any message from a
// newer epoch dominates all terms of older epochs. Epochs bump only when a
// split completes or a merged cluster resumes — never on membership changes.
#pragma once

#include <cstdint>
#include <string>

namespace recraft::raft {

class EpochTerm {
 public:
  constexpr EpochTerm() = default;
  constexpr explicit EpochTerm(uint64_t raw) : raw_(raw) {}
  static constexpr EpochTerm Make(uint32_t epoch, uint32_t term) {
    return EpochTerm((static_cast<uint64_t>(epoch) << 32) | term);
  }

  constexpr uint64_t raw() const { return raw_; }
  constexpr uint32_t epoch() const { return static_cast<uint32_t>(raw_ >> 32); }
  constexpr uint32_t term() const {
    return static_cast<uint32_t>(raw_ & 0xffffffffULL);
  }

  /// Next term within the same epoch (candidate stepping up).
  constexpr EpochTerm NextTerm() const { return EpochTerm(raw_ + 1); }

  /// First term of the next epoch: (epoch+1, term 0). Used when a split
  /// completes; a merged cluster instead jumps to Make(E_new, 0).
  constexpr EpochTerm NextEpoch() const { return Make(epoch() + 1, 0); }

  constexpr auto operator<=>(const EpochTerm&) const = default;

  std::string ToString() const {
    return "e" + std::to_string(epoch()) + "t" + std::to_string(term());
  }

 private:
  uint64_t raw_ = 0;
};

}  // namespace recraft::raft
