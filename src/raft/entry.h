// Log entries and their payloads. Configuration changes travel as special
// log entries applied wait-free on append (Raft reconfiguration style);
// ReCraft adds the split (C_joint / C_new), merge-transaction (CTX') and
// merge-outcome (C_new / C_abort) payloads.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "raft/config.h"
#include "raft/epoch_term.h"
#include "sm/state_machine.h"

namespace recraft::raft {

struct NoOp {};

/// The genesis configuration, written as entry 1 of every bootstrap log so
/// the log is self-contained: a brand-new node added later reconstructs the
/// full membership/range by replay alone.
struct ConfInit {
  std::vector<NodeId> members;
  KeyRange range;
  ClusterUid uid = 0;
};

/// C_joint: enter the split's joint mode (changes the election quorum only).
struct ConfSplitJoint {
  SplitPlan plan;
};

/// Split C_new: leave joint mode; each node extracts its own C_sub.
struct ConfSplitNew {
  SplitPlan plan;
};

/// Single-cluster membership change (ReCraft resize family or Raft
/// baselines).
struct ConfMember {
  MemberChange change;
};

/// CTX': the merge transaction with this cluster's local 2PC decision.
struct ConfMergeTx {
  MergePlan plan;
  bool decision_ok = false;
};

/// The 2PC outcome: C_new (commit=true) or C_abort (commit=false).
struct ConfMergeOutcome {
  MergePlan plan;
  bool commit = false;
};

/// Replace the cluster's key range, optionally absorbing a bulk snapshot of
/// an adjacent range. Used by the TC (TiKV/CockroachDB-emulation) baseline:
/// its cluster manager shrinks the source cluster after a split and grows
/// the surviving cluster (with the coalesced data) during a merge.
struct ConfSetRange {
  KeyRange range;
  sm::SnapshotPtr absorb;  // may be null (pure range change)
};

/// Coordinator-cluster marker: every participant acknowledged the abort of
/// merge transaction `tx`, so members may drop the retransmission state they
/// kept since C_abort applied. Without this record a coordinator leader
/// elected *after* the abort applied had nothing to resume from (the abort
/// clears the config's merge fields), and a participant whose one-shot abort
/// fan-out was lost stayed blocked forever.
struct ConfAbortSettled {
  TxId tx = 0;
};

using Payload = std::variant<NoOp, sm::Command, ConfInit, ConfSplitJoint,
                             ConfSplitNew, ConfMember, ConfMergeTx,
                             ConfMergeOutcome, ConfSetRange, ConfAbortSettled>;

struct LogEntry {
  Index index = 0;
  uint64_t term = 0;  // EpochTerm raw value at creation
  Payload payload;

  EpochTerm et() const { return EpochTerm(term); }
  bool IsConfig() const {
    return !std::holds_alternative<NoOp>(payload) &&
           !std::holds_alternative<sm::Command>(payload);
  }
  size_t WireBytes() const;
  std::string Describe() const;
};

}  // namespace recraft::raft
