// Pull-based recovery and long-term failure handling (§III-B, §V): PULL vote
// responses, epoch-boundary capping, snapshot fallbacks, reconfiguration
// history and the naming-service path — plus hard-reboot variants where the
// node object is destroyed and rebuilt purely from its WAL (storage mode).
#include "storage/wal_storage.h"
#include "tests/test_util.h"

namespace recraft::test {
namespace {

TEST(Recovery, OfflineNodeCatchesUpFromPeers) {
  // §V "Restoring a Node": live members contact and update it.
  World w(TestWorldOptions(1));
  auto c = w.CreateCluster(3);
  ASSERT_TRUE(w.WaitForLeader(c));
  NodeId victim = c[0] == w.LeaderOf(c) ? c[1] : c[0];
  w.Crash(victim);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(w.Put(c, "k" + std::to_string(i), "v").ok());
  }
  w.Restart(victim);
  ExpectConverged(w, c);
  EXPECT_EQ(harness::KvStoreOf(w.node(victim)).size(), 10u);
}

TEST(Recovery, PullServesOnlyCommittedEntries) {
  // A node that is mid-split (Leaving, not stable) must not serve pulls.
  World w(TestWorldOptions(2));
  auto c = w.CreateCluster(6);
  ASSERT_TRUE(w.WaitForLeader(c));
  NodeId leader = w.LeaderOf(c);
  // Directly probe HandlePullRequest behaviour through the message layer: a
  // stable node answers, and the reply contains only committed entries.
  ASSERT_TRUE(w.Put(c, "a", "1").ok());
  raft::PullRequest req;
  req.from = harness::kAdminId;
  req.epoch = 0;
  req.next_idx = 1;
  // Use a non-member requester: same-epoch pulls are only served to
  // members, so this must be ignored.
  w.net().Send(harness::kAdminId, leader,
               raft::MakeMessage(raft::Message(req)), 32);
  w.RunFor(200 * kMillisecond);
  // (No crash + no reply handling here: the absence of a crash is the test;
  // member-to-member pulls are covered by the split/merge suites.)
  SUCCEED();
}

TEST(Recovery, EpochBoundaryCapsPulledEntries) {
  // After a split, a laggard pulling from a completed sibling must not
  // receive the sibling's post-split entries (they belong to a different
  // subcluster's range).
  World w(TestWorldOptions(3));
  harness::SafetyChecker checker(w);
  checker.AttachPeriodic();
  auto c = w.CreateCluster(6);
  ASSERT_TRUE(w.WaitForLeader(c));
  ASSERT_TRUE(w.Put(c, "a", "1").ok());
  std::vector<NodeId> g1{c[0], c[1], c[2]}, g2{c[3], c[4], c[5]};
  // A member of g2 sleeps through the split.
  NodeId sleeper = g2[2] == w.LeaderOf(c) ? g2[1] : g2[2];
  w.Crash(sleeper);
  ASSERT_TRUE(w.AdminSplit(c, {g1, g2}, {"m"}).ok());
  ASSERT_TRUE(w.WaitForLeader(g1));
  // g1 commits fresh post-split entries the sleeper must never see.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(w.Put(g1, "g1-" + std::to_string(i), "x").ok());
  }
  w.Restart(sleeper);
  ASSERT_TRUE(w.RunUntil(
      [&]() {
        return w.node(sleeper).epoch() == 1 &&
               w.node(sleeper).config().mode == raft::ConfigMode::kStable;
      },
      15 * kSecond));
  // The sleeper ended in g2 with g2's range; no g1 keys leaked into it.
  EXPECT_TRUE(w.RunUntil(
      [&]() { return w.node(sleeper).config().members == g2; }, 5 * kSecond));
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(
        harness::KvStoreOf(w.node(sleeper)).Get("g1-" + std::to_string(i)).ok());
  }
  EXPECT_TRUE(checker.ok()) << checker.Report();
}

TEST(Recovery, HistorySurvivesCompaction) {
  auto opts = TestWorldOptions(4);
  opts.node.snapshot_threshold = 10;
  World w(opts);
  auto c = w.CreateCluster(6);
  ASSERT_TRUE(w.WaitForLeader(c));
  std::vector<NodeId> g1{c[0], c[1], c[2]}, g2{c[3], c[4], c[5]};
  ASSERT_TRUE(w.AdminSplit(c, {g1, g2}, {"m"}).ok());
  ASSERT_TRUE(w.WaitForLeader(g1));
  // Force compaction well past the split boundary.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(w.Put(g1, "a" + std::to_string(i), "v").ok());
  }
  NodeId l = w.LeaderOf(g1);
  ASSERT_GT(w.node(l).log().base_index(), 0u);
  // The reconfiguration history still records the split (for §V recovery).
  bool has_split = false;
  for (const auto& rec : w.node(l).history()) {
    if (rec.kind == raft::ReconfigRecord::Kind::kSplit) has_split = true;
  }
  EXPECT_TRUE(has_split);
}

TEST(Recovery, SnapshotFallbackAfterCompaction) {
  // A node that misses the split AND whose peers compacted their logs past
  // the boundary recovers via the snapshot path.
  auto opts = TestWorldOptions(5);
  opts.node.snapshot_threshold = 10;
  World w(opts);
  auto c = w.CreateCluster(6);
  ASSERT_TRUE(w.WaitForLeader(c));
  std::vector<NodeId> g1{c[0], c[1], c[2]}, g2{c[3], c[4], c[5]};
  NodeId sleeper = g2[1];
  if (sleeper == w.LeaderOf(c)) sleeper = g2[0];
  w.Crash(sleeper);
  ASSERT_TRUE(w.AdminSplit(c, {g1, g2}, {"m"}).ok());
  std::vector<NodeId> g2_live;
  for (NodeId id : g2) {
    if (id != sleeper) g2_live.push_back(id);
  }
  ASSERT_TRUE(w.WaitForLeader(g2_live));
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(w.Put(g2_live, "z" + std::to_string(i), "v").ok());
  }
  w.Restart(sleeper);
  ASSERT_TRUE(w.RunUntil(
      [&]() {
        return w.node(sleeper).epoch() == 1 &&
               w.node(sleeper).last_applied() >= 40;
      },
      20 * kSecond))
      << "sleeper at " << w.node(sleeper).config().ToString();
}

TEST(Recovery, NamingServiceRestoresAbandonedNode) {
  // §V "Restoring a Cluster" second case: all the node's peers were
  // removed; it finds the successor through the naming service.
  auto opts = TestWorldOptions(6);
  opts.node.naming_fallback_ticks = 30;
  World w(opts);
  auto c = w.CreateCluster(4);
  ASSERT_TRUE(w.WaitForLeader(c));
  ASSERT_TRUE(w.Put(c, "k", "v").ok());
  NodeId sleeper = c[3] == w.LeaderOf(c) ? c[2] : c[3];
  w.Crash(sleeper);
  // Remove the sleeper, then every other node it knew changes identity via
  // a split — its config members no longer answer as peers it can use.
  ASSERT_TRUE(w.AdminMemberChange(
                   c, Change(raft::MemberChangeKind::kRemoveAndResize,
                             {sleeper}))
                  .ok());
  std::vector<NodeId> rest;
  for (NodeId id : c) {
    if (id != sleeper) rest.push_back(id);
  }
  ASSERT_TRUE(w.RunUntil(
      [&]() {
        NodeId l = w.LeaderOf(rest);
        return l != kNoNode && w.node(l).config().members == rest;
      },
      10 * kSecond));
  ASSERT_TRUE(w.Put(rest, "post", "x").ok());
  w.Restart(sleeper);
  // The sleeper still believes in the old 4-node config; its peers answer
  // (they are alive), so it catches up and learns of its removal.
  ASSERT_TRUE(w.RunUntil([&]() { return w.node(sleeper).IsRetired(); },
                         20 * kSecond))
      << w.node(sleeper).config().ToString();
}

TEST(Recovery, NamingServiceTracksReconfigurations) {
  World w(TestWorldOptions(7));
  auto c = w.CreateCluster(6);
  ASSERT_TRUE(w.WaitForLeader(c));
  EXPECT_GE(w.naming().size(), 0u);
  std::vector<NodeId> g1{c[0], c[1], c[2]}, g2{c[3], c[4], c[5]};
  ASSERT_TRUE(w.AdminSplit(c, {g1, g2}, {"m"}).ok());
  ASSERT_TRUE(w.WaitForLeader(g1));
  ASSERT_TRUE(w.WaitForLeader(g2));
  ASSERT_TRUE(w.RunUntil([&]() { return w.naming().size() >= 2; },
                         10 * kSecond));
  // Directory lists both subclusters with their ranges.
  auto dir = w.naming().Directory();
  bool left = false, right = false;
  for (const auto& reg : dir.clusters) {
    if (reg.range == KeyRange("", "m")) left = true;
    if (reg.range == KeyRange("m", "")) right = true;
  }
  EXPECT_TRUE(left);
  EXPECT_TRUE(right);
}

TEST(Recovery, HardRebootAcrossSplitEpochBoundary) {
  // The §III-B laggard scenario with a *hard* crash: the sleeper is
  // destroyed before the split, reboots from its pre-split WAL image
  // (epoch 0 state), and must cross the epoch boundary via pull/snapshot
  // recovery — ending in its own subcluster with no sibling keys leaked.
  WorldOptions opts = TestWorldOptions(20);
  opts.storage = harness::StorageMode::kWal;
  opts.wal.flush_interval = 1 * kMillisecond;
  World w(opts);
  harness::SafetyChecker checker(w);
  checker.AttachPeriodic();
  auto c = w.CreateCluster(6);
  ASSERT_TRUE(w.WaitForLeader(c));
  ASSERT_TRUE(w.Put(c, "a", "1").ok());
  w.RunFor(50 * kMillisecond);
  std::vector<NodeId> g1{c[0], c[1], c[2]}, g2{c[3], c[4], c[5]};
  NodeId sleeper = g2[2] == w.LeaderOf(c) ? g2[1] : g2[2];
  ASSERT_TRUE(
      w.CrashNode(sleeper, {storage::CrashPoint::kPartialBatch}).ok());
  ASSERT_TRUE(w.AdminSplit(c, {g1, g2}, {"m"}).ok());
  ASSERT_TRUE(w.WaitForLeader(g1));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(w.Put(g1, "g1-" + std::to_string(i), "x").ok());
  }
  ASSERT_TRUE(w.RestartNode(sleeper).ok());
  // The reboot restored pre-split epoch-0 state from disk alone...
  EXPECT_EQ(w.node(sleeper).epoch(), 0u);
  // ...and the live protocols carry it across the boundary.
  ASSERT_TRUE(w.RunUntil(
      [&]() {
        return w.node(sleeper).epoch() == 1 &&
               w.node(sleeper).config().mode == raft::ConfigMode::kStable;
      },
      20 * kSecond));
  EXPECT_TRUE(w.RunUntil(
      [&]() { return w.node(sleeper).config().members == g2; }, 5 * kSecond));
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(
        harness::KvStoreOf(w.node(sleeper)).Get("g1-" + std::to_string(i)).ok());
  }
  EXPECT_TRUE(checker.ok()) << checker.Report();
}

TEST(Recovery, CrashedLeaderRejoinsAsFollower) {
  World w(TestWorldOptions(8));
  auto c = w.CreateCluster(5);
  ASSERT_TRUE(w.WaitForLeader(c));
  NodeId old_leader = w.LeaderOf(c);
  w.Crash(old_leader);
  ASSERT_TRUE(w.WaitForLeader(c));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(w.Put(c, "k" + std::to_string(i), "v").ok());
  }
  w.Restart(old_leader);
  ExpectConverged(w, c);
  EXPECT_EQ(harness::KvStoreOf(w.node(old_leader)).size(), 5u);
  // Exactly one leader afterwards.
  w.RunFor(kSecond);
  int leaders = 0;
  for (NodeId id : c) {
    if (w.node(id).IsLeader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

}  // namespace
}  // namespace recraft::test
