// Membership change (§IV): AddAndResize / RemoveAndResize / ResizeQuorum,
// the AR-RPC and joint-consensus baselines, quorum-overlap math, precondition
// enforcement (P1/P2'/P3) and fault tolerance in the intermediate config.
#include "tests/test_util.h"

namespace recraft::test {
namespace {

using raft::MemberChangeKind;

struct MemberFixture {
  explicit MemberFixture(uint64_t seed, size_t n = 3,
                         bool auto_resize = true) {
    auto opts = TestWorldOptions(seed);
    opts.node.auto_resize_quorum = auto_resize;
    w = std::make_unique<World>(opts);
    cluster = w->CreateCluster(n);
    EXPECT_TRUE(w->WaitForLeader(cluster));
    EXPECT_TRUE(w->Put(cluster, "seed", "v").ok());
  }
  bool Settled(const std::vector<NodeId>& target,
               Duration timeout = 10 * kSecond) {
    std::vector<NodeId> goal = target;
    std::sort(goal.begin(), goal.end());
    return w->RunUntil(
        [&]() {
          NodeId l = w->LeaderOf(goal);
          if (l == kNoNode) return false;
          const auto& n = w->node(l);
          const auto& cfg = n.config();
          return cfg.members == goal && cfg.fixed_quorum == 0 &&
                 !cfg.ReconfigPending() &&
                 n.commit_index() >= n.log().last_index();
        },
        timeout);
  }
  std::unique_ptr<World> w;
  std::vector<NodeId> cluster;
};

TEST(MemberMath, AddResizeQuorumFormula) {
  // Figure 1c: 2-node cluster + 3 nodes -> Q_new-q = 4.
  EXPECT_EQ(raft::AddResizeQuorum(2, 3), 4u);
  // Adding 1 to a 3-node cluster: Q = 3+1-2+1 = 3 = majority(4): one step.
  EXPECT_EQ(raft::AddResizeQuorum(3, 1), 3u);
  EXPECT_EQ(raft::AddResizeQuorum(3, 1), raft::MajorityOf(4));
  // Adding 2 to an even cluster needs no resize step (§IV-B).
  EXPECT_EQ(raft::AddResizeQuorum(4, 2), raft::MajorityOf(6));
  // Adding 2 to an odd cluster does.
  EXPECT_GT(raft::AddResizeQuorum(3, 2), raft::MajorityOf(5));
}

TEST(MemberMath, RemoveResizeQuorumFormula) {
  // Q_new-q = N_old - Q_old + 1; overlap with every old majority.
  EXPECT_EQ(raft::RemoveResizeQuorum(5), 3u);
  EXPECT_EQ(raft::RemoveResizeQuorum(4), 2u);
  EXPECT_EQ(raft::RemoveResizeQuorum(3), 2u);
  for (size_t n_old = 2; n_old <= 9; ++n_old) {
    for (size_t r = 1; r < raft::MajorityOf(n_old); ++r) {
      size_t q = raft::RemoveResizeQuorum(n_old);
      size_t n_new = n_old - r;
      ASSERT_LE(q, n_new) << "infeasible quorum for N=" << n_old << " r=" << r;
      // Overlap: any Q_old of old and q of new intersect. Worst case the
      // old quorum contains all removed nodes.
      ASSERT_GT(q + (raft::MajorityOf(n_old) - r), n_new)
          << "no overlap for N=" << n_old << " r=" << r;
      // Never below the new majority (q only shrinks via ResizeQuorum).
      ASSERT_GE(q, raft::MajorityOf(n_new));
    }
  }
}

TEST(MemberMath, JointConsensusVoteBounds) {
  // §IV-B: V_best = max(Q_new, Q_old), V_worst = |N_new-N_old| +
  // min(Q_new, Q_old). Reconfiguring 2 -> 5: best 3, worst 5.
  EXPECT_EQ(raft::JointBestVotes(2, 5), 3u);
  EXPECT_EQ(raft::JointWorstVotes(2, 5), 5u);
  // ReCraft needs 4 votes there (Fig. 1): worse than JC best by 1, better
  // than JC worst by 1.
  EXPECT_EQ(raft::AddResizeQuorum(2, 3), 4u);
}

TEST(Membership, AddAndResizeSingleNode) {
  MemberFixture f(1);
  NodeId fresh = f.w->CreateSpareNode();
  ASSERT_TRUE(f.w->AdminMemberChange(
                   f.cluster, Change(MemberChangeKind::kAddAndResize, {fresh}))
                  .ok());
  auto target = f.cluster;
  target.push_back(fresh);
  ASSERT_TRUE(f.Settled(target));
  // The new node learned the data.
  ASSERT_TRUE(f.w->RunUntil(
      [&]() { return harness::KvStoreOf(f.w->node(fresh)).size() == 1; }, 5 * kSecond));
}

TEST(Membership, AddTwoNodesAtOnce) {
  MemberFixture f(2, 4);  // even cluster: single consensus step (§IV-B)
  NodeId a = f.w->CreateSpareNode();
  NodeId b = f.w->CreateSpareNode();
  ASSERT_TRUE(f.w->AdminMemberChange(
                   f.cluster, Change(MemberChangeKind::kAddAndResize, {a, b}))
                  .ok());
  auto target = f.cluster;
  target.push_back(a);
  target.push_back(b);
  ASSERT_TRUE(f.Settled(target));
}

TEST(Membership, RemoveOneNode) {
  MemberFixture f(3, 5);
  std::vector<NodeId> target(f.cluster.begin(), f.cluster.end() - 1);
  ASSERT_TRUE(f.w->AdminMemberChange(f.cluster,
                                     Change(MemberChangeKind::kRemoveAndResize,
                                            {f.cluster.back()}))
                  .ok());
  ASSERT_TRUE(f.Settled(target));
}

TEST(Membership, RemoveTwoNodesAtOnce) {
  MemberFixture f(4, 5);
  std::vector<NodeId> target(f.cluster.begin(), f.cluster.end() - 2);
  ASSERT_TRUE(f.w->AdminMemberChange(
                   f.cluster,
                   Change(MemberChangeKind::kRemoveAndResize,
                          {f.cluster[3], f.cluster[4]}))
                  .ok());
  ASSERT_TRUE(f.Settled(target));
}

TEST(Membership, RemoveQuorumManyRejected) {
  MemberFixture f(5, 5);
  // r = 3 = Q_old violates P2' and must be rejected outright.
  Status s = f.w->AdminMemberChange(
      f.cluster, Change(MemberChangeKind::kRemoveAndResize,
                        {f.cluster[2], f.cluster[3], f.cluster[4]}));
  EXPECT_EQ(s.code(), Code::kRejected);
}

TEST(Membership, ResizeToChainsRemovals) {
  // 5 -> 2 is infeasible in one step (r=3 >= Q_old=3): AdminResizeTo must
  // chain removals, matching §VII-E's "extra consensus step" case.
  MemberFixture f(6, 5);
  std::vector<NodeId> target{f.cluster[0], f.cluster[1]};
  auto steps = f.w->AdminResizeTo(f.cluster, target, 30 * kSecond);
  ASSERT_TRUE(steps.ok()) << steps.status().ToString();
  EXPECT_GE(*steps, 2);
  ASSERT_TRUE(f.Settled(target));
}

TEST(Membership, RemovedLeaderStepsDown) {
  MemberFixture f(7, 3);
  ASSERT_TRUE(f.w->RunUntil(
      [&]() { return f.w->LeaderOf(f.cluster) != kNoNode; }, 5 * kSecond));
  NodeId leader = f.w->LeaderOf(f.cluster);
  std::vector<NodeId> target;
  for (NodeId id : f.cluster) {
    if (id != leader) target.push_back(id);
  }
  ASSERT_TRUE(f.w->AdminMemberChange(
                   f.cluster,
                   Change(MemberChangeKind::kRemoveAndResize, {leader}))
                  .ok());
  ASSERT_TRUE(f.Settled(target));
  ASSERT_TRUE(f.w->RunUntil([&]() { return !f.w->node(leader).IsLeader(); },
                            5 * kSecond));
  EXPECT_TRUE(f.w->node(leader).IsRetired());
}

TEST(Membership, VanillaAddServerRpc) {
  MemberFixture f(8, 3);
  NodeId fresh = f.w->CreateSpareNode();
  ASSERT_TRUE(f.w->AdminMemberChange(
                   f.cluster, Change(MemberChangeKind::kAddServer, {fresh}))
                  .ok());
  auto target = f.cluster;
  target.push_back(fresh);
  ASSERT_TRUE(f.Settled(target));
}

TEST(Membership, VanillaRemoveServerRpc) {
  MemberFixture f(9, 4);
  std::vector<NodeId> target(f.cluster.begin(), f.cluster.end() - 1);
  ASSERT_TRUE(f.w->AdminMemberChange(f.cluster,
                                     Change(MemberChangeKind::kRemoveServer,
                                            {f.cluster.back()}))
                  .ok());
  ASSERT_TRUE(f.Settled(target));
}

TEST(Membership, VanillaJointConsensus) {
  MemberFixture f(10, 3);
  NodeId a = f.w->CreateSpareNode();
  NodeId b = f.w->CreateSpareNode();
  // Arbitrary change in one JC operation: replace one node and add two.
  std::vector<NodeId> target{f.cluster[0], f.cluster[1], a, b};
  ASSERT_TRUE(f.w->AdminMemberChange(
                   f.cluster, Change(MemberChangeKind::kJointEnter, target))
                  .ok());
  ASSERT_TRUE(f.Settled(target));
}

TEST(Membership, WorksWithRecraftDisabled) {
  // The baselines must run with enable_recraft=false, the resize family not.
  auto opts = TestWorldOptions(11);
  opts.node.enable_recraft = false;
  World w(opts);
  auto c = w.CreateCluster(3);
  ASSERT_TRUE(w.WaitForLeader(c));
  ASSERT_TRUE(w.Put(c, "k", "v").ok());
  NodeId fresh = w.CreateSpareNode();
  EXPECT_EQ(w.AdminMemberChange(
                 c, Change(MemberChangeKind::kAddAndResize, {fresh}))
                .code(),
            Code::kRejected);
  EXPECT_TRUE(
      w.AdminMemberChange(c, Change(MemberChangeKind::kAddServer, {fresh}))
          .ok());
}

TEST(Membership, PreconditionP1BlocksOverlappingChanges) {
  // Two back-to-back changes: the second must wait for (or be rejected
  // until) the first to commit; the end state reflects both eventually.
  MemberFixture f(12, 3, /*auto_resize=*/false);
  NodeId a = f.w->CreateSpareNode();
  NodeId b = f.w->CreateSpareNode();
  ASSERT_TRUE(f.w->AdminMemberChange(
                   f.cluster, Change(MemberChangeKind::kAddAndResize, {a}))
                  .ok());
  // Immediately try another change: P1 may reject it while the first is
  // uncommitted or while the quorum is still resized.
  Status s = f.w->AdminMemberChange(
      f.cluster, Change(MemberChangeKind::kAddAndResize, {b}));
  // With auto_resize off, the config sits at fixed quorum: ReconfigPending
  // is false (AddAndResize leaves no pending phase) but a second add is
  // legal; what P1 forbids is an *uncommitted* conf entry. Accept either
  // outcome, then settle explicitly.
  if (!s.ok()) {
    EXPECT_EQ(s.code(), Code::kRejected);
  }
  // Resize the quorum manually to finish.
  auto cur = f.w->ConfigOf(f.cluster).members;
  if (f.w->ConfigOf(cur).fixed_quorum != 0) {
    ASSERT_TRUE(f.w->AdminMemberChange(
                     cur, Change(MemberChangeKind::kResizeQuorum))
                    .ok());
  }
  ASSERT_TRUE(f.w->RunUntil(
      [&]() {
        NodeId l = f.w->LeaderOf(cur);
        return l != kNoNode && f.w->node(l).config().fixed_quorum == 0;
      },
      10 * kSecond));
}

TEST(Membership, IntermediateQuorumToleratesFailure) {
  // Figure 1c discussion: 2 + 3 nodes, C_new-q has Q=4; any ONE node can
  // fail during the intermediate config and the cluster still commits.
  MemberFixture f(13, 2, /*auto_resize=*/false);
  std::vector<NodeId> fresh;
  for (int i = 0; i < 3; ++i) fresh.push_back(f.w->CreateSpareNode());
  ASSERT_TRUE(f.w->AdminMemberChange(
                   f.cluster, Change(MemberChangeKind::kAddAndResize, fresh))
                  .ok());
  auto target = f.cluster;
  target.insert(target.end(), fresh.begin(), fresh.end());
  // Let the new nodes catch up, then fail one of them.
  ASSERT_TRUE(f.w->RunUntil(
      [&]() {
        NodeId l = f.w->LeaderOf(target);
        return l != kNoNode && f.w->node(l).config().fixed_quorum == 4;
      },
      10 * kSecond));
  f.w->Crash(fresh[0]);
  EXPECT_TRUE(f.w->Put(target, "during-resize", "v", 5 * kSecond).ok());
  // But two failures exceed f = 5 - 4 = 1: commits stall.
  f.w->Crash(fresh[1]);
  EXPECT_FALSE(f.w->Put(target, "stalled", "v", 2 * kSecond).ok());
  // Heal and finish.
  f.w->Restart(fresh[0]);
  f.w->Restart(fresh[1]);
  ASSERT_TRUE(f.w->RunUntil(
      [&]() { return f.w->LeaderOf(target) != kNoNode; }, 10 * kSecond));
}

TEST(Membership, HistoryRecordsChanges) {
  MemberFixture f(14, 3);
  NodeId fresh = f.w->CreateSpareNode();
  ASSERT_TRUE(f.w->AdminMemberChange(
                   f.cluster, Change(MemberChangeKind::kAddAndResize, {fresh}))
                  .ok());
  auto target = f.cluster;
  target.push_back(fresh);
  ASSERT_TRUE(f.Settled(target));
  NodeId l = f.w->LeaderOf(target);
  bool found = false;
  for (const auto& rec : f.w->node(l).history()) {
    if (rec.kind == raft::ReconfigRecord::Kind::kMember &&
        rec.members.size() == 4) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace recraft::test
